package mrdspark

import (
	"testing"

	"mrdspark/internal/exec"
	"mrdspark/internal/experiments"
	"mrdspark/internal/workload"
)

// BenchmarkExecSCC really executes SCC — generated rows, live block
// managers, shuffles — under full MRD: the end-to-end cost of the
// execution engine, as opposed to BenchmarkSimulateSCC's modeled run.
// Small partitions keep the byte plane light so the decision plane and
// runtime overheads dominate, which is what the baseline tracks.
func BenchmarkExecSCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := workload.Build("SCC", workload.Params{DataRows: 32})
		if err != nil {
			b.Fatal(err)
		}
		e, err := exec.New(spec, exec.Config{Policy: experiments.SpecMRD})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
