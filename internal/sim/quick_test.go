package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickEngineOrdering: events scheduled at arbitrary times fire in
// non-decreasing time order, and equal times fire in schedule order.
func TestQuickEngineOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		type fired struct {
			at  int64
			seq int
		}
		var got []fired
		for i, tt := range times {
			i, at := i, int64(tt)
			e.At(at, func() { got = append(got, fired{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		// And the fire times are exactly the sorted schedule.
		want := make([]int64, len(times))
		for i, tt := range times {
			want[i] = int64(tt)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range got {
			if got[i].at != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeviceConservation: a random request mix is fully served,
// total busy time equals the sum of per-request service times, and
// within each priority class completions preserve submission order.
func TestQuickDeviceConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		d := NewDevice(e, 1_000) // 1000 B/s: 1 byte = 1000 µs
		n := 1 + rng.Intn(40)
		var wantBusy int64
		var demandOrder, bgOrder []int
		var demandDone, bgDone []int
		for i := 0; i < n; i++ {
			bytes := int64(1 + rng.Intn(50))
			wantBusy += bytes * 1_000_000 / 1_000
			i := i
			if rng.Intn(2) == 0 {
				demandOrder = append(demandOrder, i)
				d.Transfer(bytes, Demand, func() { demandDone = append(demandDone, i) })
			} else {
				bgOrder = append(bgOrder, i)
				d.Transfer(bytes, Background, func() { bgDone = append(bgDone, i) })
			}
		}
		e.Run()
		if len(demandDone) != len(demandOrder) || len(bgDone) != len(bgOrder) {
			return false
		}
		for i := range demandOrder {
			if demandDone[i] != demandOrder[i] {
				return false
			}
		}
		for i := range bgOrder {
			if bgDone[i] != bgOrder[i] {
				return false
			}
		}
		return d.Busy == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSlotsNeverOverSubscribe: under random acquire/hold
// durations, concurrency never exceeds the slot count and every
// acquirer eventually runs.
func TestQuickSlotsNeverOverSubscribe(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		width := 1 + rng.Intn(4)
		s := NewSlots(e, width)
		n := 1 + rng.Intn(50)
		running, peak, done := 0, 0, 0
		for i := 0; i < n; i++ {
			hold := int64(1 + rng.Intn(20))
			s.Acquire(func() {
				running++
				if running > peak {
					peak = running
				}
				e.After(hold, func() {
					running--
					done++
					s.Release()
				})
			})
		}
		e.Run()
		return peak <= width && done == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
