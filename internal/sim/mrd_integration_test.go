package sim

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/dag"
	"mrdspark/internal/fault"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
)

// junkFlowGraph builds the paper's §3.3 motivating pattern: "gap" is
// created early and read only at the very end, while a stream of
// short-lived "junk" RDDs is created and consumed in between. A
// recency policy keeps the recently-touched junk and evicts gap; a
// distance policy purges each junk generation the moment it dies and
// keeps gap resident.
func junkFlowGraph() (*dag.Graph, *dag.RDD) {
	g := dag.New()
	src := g.Source("in", 2, 1<<10, dag.WithCost(10))
	gap := src.Map("gap", dag.WithCost(10)).Persist(block.MemoryAndDisk)
	g.Count(gap)
	for i := 0; i < 4; i++ {
		junk := src.Map("junk", dag.WithCost(10)).Persist(block.MemoryAndDisk)
		g.Count(junk)                              // create the generation
		g.Count(junk.Map("use", dag.WithCost(10))) // consume it
	}
	g.Count(gap.Map("return", dag.WithCost(10))) // the gapped reference
	return g, gap
}

// twoGapGraph: blocks a and b are both created up front, read at
// stages 3 and 5 respectively, with padding stages in between. With a
// one-block cache, whichever is evicted must come back — by demand
// promote under plain policies, by prefetch under MRD.
func twoGapGraph() (*dag.Graph, *dag.RDD, *dag.RDD) {
	g := dag.New()
	src := g.Source("in", 2, 1<<10, dag.WithCost(10))
	a := src.Map("a", dag.WithCost(10)).Persist(block.MemoryAndDisk)
	b := src.Map("b", dag.WithCost(10)).Persist(block.MemoryAndDisk)
	g.Count(a.ZipPartitions("create", b)) // stage 0: creates both
	g.Count(src.Map("pad1", dag.WithCost(10)))
	g.Count(src.Map("pad2", dag.WithCost(10)))
	g.Count(a.Map("ra", dag.WithCost(10))) // stage 3: read a
	g.Count(src.Map("pad3", dag.WithCost(10)))
	g.Count(b.Map("rb", dag.WithCost(10))) // stage 5: read b
	return g, a, b
}

func mrdFactory(g *dag.Graph, opts core.Options) *core.Manager {
	return core.NewManager(g, core.NewRecurringProfiler(refdist.FromGraph(g)), opts)
}

func TestMRDKeepsGappedBlockLRUDoesNot(t *testing.T) {
	// Two blocks per node fit: gap plus one junk generation.
	cl := tinyCluster(2 << 10)

	g1, _ := junkFlowGraph()
	lru, err := Run(g1, cl, policy.NewLRU(), "junkflow")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := junkFlowGraph()
	mrd, err := Run(g2, cl, mrdFactory(g2, core.Options{DisablePrefetch: true}), "junkflow")
	if err != nil {
		t.Fatal(err)
	}
	if mrd.HitRatio() <= lru.HitRatio() {
		t.Errorf("MRD hit %.2f <= LRU hit %.2f on the junk-flow pattern", mrd.HitRatio(), lru.HitRatio())
	}
	if mrd.HitRatio() != 1 {
		t.Errorf("MRD hit = %.2f, want 1.0 (gap kept, junk purged)", mrd.HitRatio())
	}
	if lru.Misses == 0 {
		t.Error("LRU missed nothing; the scenario exerts no pressure")
	}
}

func TestMRDPurgeFreesDeadBlocks(t *testing.T) {
	g, _ := junkFlowGraph()
	run, err := Run(g, tinyCluster(1<<20), mrdFactory(g, core.Options{}), "purge")
	if err != nil {
		t.Fatal(err)
	}
	// With ample cache nothing is evicted by pressure; dead junk
	// generations are purged proactively.
	if run.PurgedBlocks == 0 {
		t.Error("no blocks purged despite dead RDDs")
	}
	if run.Evictions != 0 {
		t.Errorf("pressure evictions = %d with ample cache", run.Evictions)
	}
}

func TestMRDPrefetchRestoresEvictedBlocks(t *testing.T) {
	// One-block cache: b is evicted when a returns; after a dies the
	// purge frees the slot and MRD prefetches b back before stage 5.
	cl := tinyCluster(1 << 10)
	g, _, b := twoGapGraph()
	run, err := Run(g, cl, mrdFactory(g, core.Options{}), "prefetch")
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchIssued == 0 {
		t.Fatal("no prefetches issued")
	}
	if run.PrefetchUsed == 0 {
		t.Error("prefetched blocks never used")
	}
	// And the prefetch turned b's reads into hits.
	if run.Hits < int64(b.NumPartitions) {
		t.Errorf("hits = %d, want at least b's %d partitions", run.Hits, b.NumPartitions)
	}
}

func TestMRDPrefetchBeatsLRUOnGapReturn(t *testing.T) {
	cl := tinyCluster(1 << 10)
	g1, _, _ := twoGapGraph()
	lru, err := Run(g1, cl, policy.NewLRU(), "twogap")
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _ := twoGapGraph()
	mrd, err := Run(g2, cl, mrdFactory(g2, core.Options{}), "twogap")
	if err != nil {
		t.Fatal(err)
	}
	if mrd.HitRatio() <= lru.HitRatio() {
		t.Errorf("MRD hit %.2f <= LRU hit %.2f", mrd.HitRatio(), lru.HitRatio())
	}
}

func TestPrefetchAccountingConsistent(t *testing.T) {
	g, _, _ := twoGapGraph()
	run, err := Run(g, tinyCluster(1<<10), mrdFactory(g, core.Options{}), "acct")
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchUsed+run.PrefetchWasted > run.PrefetchIssued {
		t.Errorf("prefetch accounting: used %d + wasted %d > issued %d",
			run.PrefetchUsed, run.PrefetchWasted, run.PrefetchIssued)
	}
}

func TestNodeFailureRecovers(t *testing.T) {
	g, _ := junkFlowGraph()
	s, err := New(g, tinyCluster(1<<20), mrdFactory(g, core.Options{}), "fail")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOptions(Options{Fault: fault.Crash(0, 3)}); err != nil {
		t.Fatal(err)
	}
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run did not complete all jobs after failure: %d", run.Jobs)
	}
	// Failure wipes node 0's disk, so the lost gap block must be
	// recomputed at its return.
	if run.Recomputes == 0 {
		t.Error("no recomputation after node loss")
	}
}

func TestNodeFailureNotifiesFactory(t *testing.T) {
	g, _ := junkFlowGraph()
	mgr := mrdFactory(g, core.Options{})
	s, err := New(g, tinyCluster(1<<20), mgr, "fail2")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOptions(Options{Fault: fault.Crash(1, 2)}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if mgr.Stats().TableReissues != 1 {
		t.Errorf("table reissues = %d, want 1", mgr.Stats().TableReissues)
	}
}

func TestMRDFullRunDeterministic(t *testing.T) {
	mk := func() (*dag.Graph, *core.Manager) {
		g, _ := junkFlowGraph()
		return g, mrdFactory(g, core.Options{})
	}
	g1, f1 := mk()
	a, err := Run(g1, tinyCluster(2<<10), f1, "det")
	if err != nil {
		t.Fatal(err)
	}
	g2, f2 := mk()
	b, err := Run(g2, tinyCluster(2<<10), f2, "det")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("MRD runs differ:\n%+v\n%+v", a, b)
	}
}

func TestHitsPlusMissesMatchScheduledReads(t *testing.T) {
	// With MEMORY_AND_DISK everywhere, every scheduled read resolves
	// to exactly one hit or miss; the totals must match the profile.
	g, gap := junkFlowGraph()
	profile := refdist.FromGraph(g)
	var wantReads int64
	for _, id := range profile.RDDs() {
		wantReads += int64(len(profile.Reads(id))) * int64(gap.NumPartitions)
	}
	run, err := Run(g, tinyCluster(2<<10), policy.NewLRU(), "count")
	if err != nil {
		t.Fatal(err)
	}
	if run.Hits+run.Misses != wantReads {
		t.Errorf("hits+misses = %d, want %d scheduled block reads", run.Hits+run.Misses, wantReads)
	}
}
