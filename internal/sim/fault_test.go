package sim

import (
	"strings"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/dag"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/policy"
)

// shuffleGraph: a cached RDD plus repeated shuffles, so runs move
// remote bytes (the fetch-retry model needs network traffic to bite).
func shuffleGraph() *dag.Graph {
	g := dag.New()
	src := g.Source("in", 4, 1<<12, dag.WithCost(10))
	data := src.Map("parse", dag.WithCost(10)).Persist(block.MemoryAndDisk)
	g.Count(data)
	for i := 0; i < 3; i++ {
		g.Count(data.ReduceByKey("agg", dag.WithCost(10)))
	}
	return g
}

func mustRunFault(t *testing.T, g *dag.Graph, cache int64, f policy.Factory, sched *fault.Schedule) *Simulation {
	t.Helper()
	s, err := New(g, tinyCluster(cache), f, "fault")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOptions(Options{Fault: sched}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiNodeFailureCompletes(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 2, Kind: fault.NodeCrash, Node: 0},
		{Stage: 5, Kind: fault.NodeCrash, Node: 1},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete after two crashes: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 2 {
		t.Errorf("NodeCrashes = %d, want 2", run.NodeCrashes)
	}
	if run.FaultWarning != "" {
		t.Errorf("unexpected warning: %s", run.FaultWarning)
	}
}

func TestCrashWithRejoin(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 2, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 3},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	s.EnableTrace()
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 1 || run.NodeRejoins != 1 {
		t.Errorf("crashes/rejoins = %d/%d, want 1/1", run.NodeCrashes, run.NodeRejoins)
	}
	var failAt, rejoinAt int64 = -1, -1
	for _, ev := range s.Trace() {
		switch ev.Kind {
		case "node-fail":
			failAt = ev.At
		case "node-rejoin":
			rejoinAt = ev.At
		}
	}
	if failAt < 0 || rejoinAt < failAt {
		t.Errorf("rejoin (t=%d) does not follow failure (t=%d)", rejoinAt, failAt)
	}
}

func TestDownNodeRunsNoTasks(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 1, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 100},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete with one node down: %d jobs", run.Jobs)
	}
	for _, ns := range s.PerNode() {
		if ns.Node == 1 {
			if !ns.Down {
				t.Error("node 1 not reported down")
			}
			if ns.CacheBlocks != 0 {
				t.Errorf("down node holds %d cached blocks", ns.CacheBlocks)
			}
		}
	}
}

func TestReplicationTurnsRecomputesIntoReplicaHits(t *testing.T) {
	crashAt := func(repl int) metrics.Run {
		g, _ := junkFlowGraph()
		sched := fault.Crash(0, 3)
		sched.Seed = 1
		sched.Replication = repl
		s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
		return s.Run()
	}
	unreplicated := crashAt(1)
	replicated := crashAt(2)
	if unreplicated.ReplicaHits != 0 {
		t.Errorf("replica hits without replication: %d", unreplicated.ReplicaHits)
	}
	if replicated.ReplicaWriteBytes == 0 {
		t.Error("replication factor 2 wrote no replicas")
	}
	if replicated.ReplicaHits == 0 {
		t.Error("crash with replication produced no replica hits")
	}
	if replicated.RecomputeBytes >= unreplicated.RecomputeBytes {
		t.Errorf("replication did not reduce recomputation: %d >= %d",
			replicated.RecomputeBytes, unreplicated.RecomputeBytes)
	}
}

func TestRetryExhaustionEscalatesToRecompute(t *testing.T) {
	g := shuffleGraph()
	sched := &fault.Schedule{Seed: 7, FetchFailureRate: 0.9, MaxFetchRetries: 1}
	s := mustRunFault(t, g, 1<<20, policy.NewLRU(), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete under flaky network: %d jobs", run.Jobs)
	}
	if run.FetchRetries == 0 {
		t.Error("90% failure rate produced no retries")
	}
	if run.FetchGiveUps == 0 {
		t.Error("90% failure rate with 1 retry never exhausted the budget")
	}
	if run.RecomputeBytes == 0 {
		t.Error("exhausted fetches were not charged as recomputation")
	}
}

func TestFlakyFetchSlowsButCompletes(t *testing.T) {
	run := func(rate float64) metrics.Run {
		g := shuffleGraph()
		s := mustRunFault(t, g, 1<<20, policy.NewLRU(),
			&fault.Schedule{Seed: 7, FetchFailureRate: rate})
		return s.Run()
	}
	healthy := run(0)
	flaky := run(0.3)
	if flaky.JCT <= healthy.JCT {
		t.Errorf("flaky network did not slow the run: %d <= %d", flaky.JCT, healthy.JCT)
	}
}

func TestStragglerSlowsRun(t *testing.T) {
	run := func(sched *fault.Schedule) metrics.Run {
		g, _ := junkFlowGraph()
		s := mustRunFault(t, g, 1<<20, policy.NewLRU(), sched)
		return s.Run()
	}
	healthy := run(&fault.Schedule{Seed: 1})
	slow := run(&fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 1, Kind: fault.Straggler, Node: 0, DiskFactor: 20, NetFactor: 20, Duration: 8},
	}})
	if slow.StragglerEvents != 1 {
		t.Errorf("StragglerEvents = %d, want 1", slow.StragglerEvents)
	}
	if slow.JCT <= healthy.JCT {
		t.Errorf("straggler did not slow the run: %d <= %d", slow.JCT, healthy.JCT)
	}
}

func TestLoseBlockForcesRecovery(t *testing.T) {
	g, gap := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 3, Kind: fault.LoseBlock, Block: gap.Block(0)},
		{Stage: 3, Kind: fault.LoseBlock, Block: gap.Block(1)},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.BlocksLost != 2 {
		t.Errorf("BlocksLost = %d, want 2", run.BlocksLost)
	}
	if run.Recomputes == 0 {
		t.Error("lost blocks were never recomputed")
	}
}

func TestCorruptBlockDetectedAtRead(t *testing.T) {
	// Tiny cache forces a and b to spill to disk; corrupting a's disk
	// copy between its creation and its stage-3 read turns the promote
	// into a detect-and-recompute.
	g, a, _ := twoGapGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 2, Kind: fault.CorruptBlock, Block: a.Block(0)},
		{Stage: 2, Kind: fault.CorruptBlock, Block: a.Block(1)},
	}}
	s := mustRunFault(t, g, 1<<10, policy.NewLRU(), sched)
	run := s.Run()
	if run.BlocksCorrupted == 0 {
		t.Error("no corruption detected at read time")
	}
	if run.Recomputes == 0 {
		t.Error("corrupt blocks were never recomputed")
	}
}

func TestChaosRunDeterministicSameSeed(t *testing.T) {
	run := func() metrics.Run {
		g, _ := junkFlowGraph()
		sched := &fault.Schedule{
			Seed:             42,
			FetchFailureRate: 0.2,
			Replication:      2,
			Events: []fault.Event{
				{Stage: 2, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 2},
				{Stage: 4, Kind: fault.Straggler, Node: 0, DiskFactor: 3, NetFactor: 3, Duration: 2},
				{Stage: 6, Kind: fault.NodeCrash, Node: 0},
			},
		}
		s := mustRunFault(t, g, 2<<10, mrdFactory(g, core.Options{ReissueDelayStages: 1}), sched)
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed chaos runs differ:\n%+v\n%+v", a, b)
	}
}

func TestUnfiredEventsRecordWarning(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 1000, Kind: fault.NodeCrash, Node: 0},
	}}
	s := mustRunFault(t, g, 1<<20, policy.NewLRU(), sched)
	run := s.Run()
	if run.FaultWarning == "" {
		t.Fatal("event at stage 1000 fired nothing and no warning was recorded")
	}
	if !strings.Contains(run.FaultWarning, "never fired") {
		t.Errorf("warning %q does not name the unfired events", run.FaultWarning)
	}
	if run.NodeCrashes != 0 {
		t.Errorf("phantom crash recorded: %d", run.NodeCrashes)
	}
}

func TestSetOptionsValidatesSchedule(t *testing.T) {
	g, _ := junkFlowGraph()
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "bad")
	if err != nil {
		t.Fatal(err)
	}
	bad := &fault.Schedule{Events: []fault.Event{{Kind: fault.NodeCrash, Node: 99}}}
	if err := s.SetOptions(Options{Fault: bad}); err == nil {
		t.Error("SetOptions accepted a crash of a nonexistent node")
	}
	if err := s.SetOptions(Options{Fault: &fault.Schedule{Replication: 3}}); err == nil {
		t.Error("SetOptions accepted replication factor above the node count")
	}
}

func TestAuditHoldsUnderChaos(t *testing.T) {
	g, _, _ := twoGapGraph()
	sched := &fault.Schedule{Seed: 3, Replication: 2, FetchFailureRate: 0.3,
		Events: []fault.Event{
			{Stage: 2, Kind: fault.NodeCrash, Node: 0, RejoinAfter: 2},
			{Stage: 4, Kind: fault.NodeCrash, Node: 1},
		}}
	s := mustRunFault(t, g, 1<<10, mrdFactory(g, core.Options{}), sched)
	s.Run()
	if err := s.Audit(); err != nil {
		t.Errorf("ledger audit failed after chaos run: %v", err)
	}
}
