package sim

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
)

// TestCrashTwiceBeforeRejoinReplacesNode pins the crash-then-crash
// fix: a node crashed with a pending rejoin window that crashes again
// with RejoinAfter == 0 is replaced immediately — the second crash
// must not leave the stale down window standing (the original code
// only wrote the down state when RejoinAfter > 0, so the replacement
// inherited the first crash's window and sat out the rest of the run).
func TestCrashTwiceBeforeRejoinReplacesNode(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		// The first crash's rejoin stage is past the end of the run.
		{Stage: 2, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 100},
		// The second crash, before the rejoin, replaces the node.
		{Stage: 4, Kind: fault.NodeCrash, Node: 1},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete after double crash: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 2 {
		t.Errorf("NodeCrashes = %d, want 2", run.NodeCrashes)
	}
	for _, ns := range s.PerNode() {
		if ns.Node == 1 && ns.Down {
			t.Error("node 1 still down at run end: second crash resurrected the first crash's rejoin window")
		}
	}
	if err := s.Audit(); err != nil {
		t.Errorf("audit after double crash: %v", err)
	}
}

// TestCrashTwiceWithSecondRejoinWindow covers the other double-crash
// arm: the second crash carries its own rejoin window, which must
// replace (not extend) the first one.
func TestCrashTwiceWithSecondRejoinWindow(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 1, Kind: fault.NodeCrash, Node: 0, RejoinAfter: 100},
		{Stage: 3, Kind: fault.NodeCrash, Node: 0, RejoinAfter: 2},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 2 || run.NodeRejoins != 1 {
		t.Errorf("crashes/rejoins = %d/%d, want 2/1 (the second window fires, the first is dead)",
			run.NodeCrashes, run.NodeRejoins)
	}
	for _, ns := range s.PerNode() {
		if ns.Node == 0 && ns.Down {
			t.Error("node 0 still down: the second crash's shorter rejoin window did not take effect")
		}
	}
	if err := s.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

// TestStragglerWindowOverlappingCrash runs a straggler window that a
// crash of the same node interrupts: the run must complete with the
// books balanced (the crash wipes the node while its devices are
// slowed; the straggle window then expires over the replacement).
func TestStragglerWindowOverlappingCrash(t *testing.T) {
	g, _ := junkFlowGraph()
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 1, Kind: fault.Straggler, Node: 1, DiskFactor: 8, NetFactor: 8, Duration: 6},
		{Stage: 3, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 2},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 1 || run.NodeRejoins != 1 {
		t.Errorf("crashes/rejoins = %d/%d, want 1/1", run.NodeCrashes, run.NodeRejoins)
	}
	if run.StragglerEvents != 1 {
		t.Errorf("StragglerEvents = %d, want 1", run.StragglerEvents)
	}
	if err := s.Audit(); err != nil {
		t.Errorf("audit with straggler overlapping crash: %v", err)
	}
}

// TestLoseBlockOnCrashedHome drops a block whose home node is already
// down from a crash: the loss must be a clean no-op against the wiped
// stores (no phantom eviction, no negative occupancy), and the run
// must still complete and audit.
func TestLoseBlockOnCrashedHome(t *testing.T) {
	g, gap := junkFlowGraph()
	// gap has 2 partitions on a 2-node cluster: partition 1 homes on
	// node 1, which the first event crashes and keeps down.
	sched := &fault.Schedule{Seed: 1, Events: []fault.Event{
		{Stage: 2, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 4},
		{Stage: 3, Kind: fault.LoseBlock, Block: block.ID{RDD: gap.ID, Partition: 1}},
	}}
	s := mustRunFault(t, g, 1<<20, mrdFactory(g, core.Options{}), sched)
	run := s.Run()
	if run.Jobs != len(g.Jobs) {
		t.Errorf("run incomplete: %d jobs", run.Jobs)
	}
	if run.NodeCrashes != 1 {
		t.Errorf("NodeCrashes = %d, want 1", run.NodeCrashes)
	}
	if err := s.Audit(); err != nil {
		t.Errorf("audit after losing a block on a crashed home: %v", err)
	}
}
