package sim

import (
	"testing"

	"mrdspark/internal/dag"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
)

// TestRefusedPutEmitsNoInsertEvent pins the phantom-insert fix: a
// block larger than the whole store is refused by Put, and a refused
// Put must not emit a KindInsert event — the trace would otherwise
// claim residency for a block that was never cached, which the
// invariant auditor (and any replay consumer) would count as resident.
func TestRefusedPutEmitsNoInsertEvent(t *testing.T) {
	g := dag.New()
	src := g.Source("in", 2, 1<<12, dag.WithCost(10))
	big := src.Map("big", dag.WithCost(10)).Cache()
	g.Count(big)
	g.Count(big.Map("reread", dag.WithCost(10)))

	// Cache smaller than one block: every Put of big's blocks refuses.
	s, err := New(g, tinyCluster(1<<10), policy.NewLRU(), "refused")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	rec.Attach(s.Bus())
	run := s.Run()

	inserts := 0
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindInsert {
			inserts++
		}
	}
	if inserts != 0 {
		t.Errorf("%d insert events for refused Puts; a refused Put must not claim residency", inserts)
	}
	// The re-read still misses and recomputes — the block was never
	// resident anywhere.
	if run.Hits != 0 {
		t.Errorf("Hits = %d, want 0 (nothing ever fits the cache)", run.Hits)
	}
	if run.Recomputes == 0 {
		t.Error("no recomputes: the re-read of the uncacheable RDD must recompute")
	}
	if err := s.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}
