package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEngineSteadyStateAllocs pins the engine's hot path at zero
// allocations: once the slab, free list, and heap have grown to the
// run's high-water mark, scheduling and firing events must reuse those
// arrays. The original container/heap engine boxed every event twice
// (Push and Pop each box the struct into `any`), which dominated the
// allocation profile of full simulations.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		if n++; n < 100 {
			// Two events live at once so the heap genuinely reorders.
			e.After(3, tick)
			e.After(1, func() {})
		}
	}
	e.After(1, tick)
	e.Run() // warm the slab/heap/free arrays

	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		e.After(1, tick)
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("warmed engine allocates %.1f times per run, want 0", allocs)
	}
}

// TestEnginePopClearsSlot is the regression test for the original
// eventHeap.Pop bug: the popped element was not zeroed, so the backing
// array kept the fired closure — and everything it captured — live
// until the slot happened to be overwritten. The slab engine must
// clear a slot when the event fires.
func TestEnginePopClearsSlot(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		payload := make([]byte, 1<<10)
		e.After(int64(i%7), func() { _ = payload })
	}
	e.Run()
	if live := e.slabLive(); live != 0 {
		t.Errorf("%d slab slots still hold closures after Run; popped events must be cleared", live)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after Run", e.Pending())
	}
}

// TestEngineMatchesReferenceModel drives the slab/heap engine and a
// naive reference scheduler (sort all events by (at, seq)) with the
// same randomized workload — including events scheduled from inside
// handlers — and requires the identical firing sequence. This is the
// tie-break semantics guard: timestamp order, scheduling order within
// a timestamp.
func TestEngineMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		type ref struct {
			at  int64
			seq int
			id  int
		}
		var (
			e       = NewEngine()
			got     []int
			want    []int
			pending []ref
			seq     int
			nextID  int
		)
		// The reference model mirrors every At call; delays and fan-out
		// are derived from the shared rng *before* scheduling so both
		// sides see the same workload.
		var schedule func(at int64, fanout int)
		schedule = func(at int64, fanout int) {
			if nextID >= 500 { // bound the branching process
				return
			}
			id := nextID
			nextID++
			pending = append(pending, ref{at: at, seq: seq, id: id})
			seq++
			e.At(at, func() {
				got = append(got, id)
				for i := 0; i < fanout; i++ {
					d := int64(rng.Intn(5)) // 0 delays exercise same-time nesting
					schedule(e.Now()+d, rng.Intn(3))
				}
			})
		}
		for i := 0; i < 20; i++ {
			schedule(int64(rng.Intn(10)), rng.Intn(3))
		}
		e.Run()

		// Reference firing order: all events sorted by (at, seq). A
		// handler can only schedule events with at >= the firing time
		// and a larger seq, so the engine's firing sequence is strictly
		// increasing in (at, seq) and one final sort reproduces it.
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].at != pending[b].at {
				return pending[a].at < pending[b].at
			}
			return pending[a].seq < pending[b].seq
		})
		for _, r := range pending {
			want = append(want, r.id)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, reference has %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing order diverges at %d: engine=%v reference=%v",
					trial, i, got[:i+1], want[:i+1])
			}
		}
	}
}
