package sim

import (
	"fmt"
	"strings"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/fault"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
)

// This file interprets a fault.Schedule against the running
// simulation: it fires crash/straggler/block events at stage
// boundaries, reroutes work around down nodes, maintains replica
// copies, and models remote-fetch retry with exponential backoff.
// Everything here is deterministic: event order follows the schedule,
// and the only randomness is the seeded fetch-failure stream.

// applyFaults runs at each stage boundary (before stageIx advances):
// first recoveries — straggler windows that expired and crashed nodes
// due to rejoin — then the events scheduled for this stage.
func (s *Simulation) applyFaults() {
	if s.opts.Fault == nil {
		return
	}
	for _, n := range s.nodes {
		if n.down && n.rejoinAt <= s.stageIx {
			n.down = false
			s.run.NodeRejoins++
			s.bus.Emit(obs.Ev(obs.KindNodeRejoin, n.id))
		}
		if n.slowUntil != 0 && n.slowUntil <= s.stageIx {
			n.slowUntil = 0
			n.diskDev.SetSlowdown(1)
			n.netDev.SetSlowdown(1)
			s.bus.Emit(obs.Ev(obs.KindStraggleEnd, n.id))
		}
	}
	for _, ev := range s.faultsAt[s.stageIx] {
		switch ev.Kind {
		case fault.NodeCrash:
			s.crashNode(ev)
		case fault.Straggler:
			n := s.nodes[ev.Node]
			n.diskDev.SetSlowdown(ev.DiskFactor)
			n.netDev.SetSlowdown(ev.NetFactor)
			n.slowUntil = s.stageIx + ev.Duration
			s.run.StragglerEvents++
			s.bus.Emit(obs.Ev(obs.KindStraggleBegin, n.id))
		case fault.LoseBlock:
			s.loseBlock(ev.Block)
		case fault.CorruptBlock:
			home := s.nodes[cluster.HomeNode(ev.Block, len(s.nodes))]
			if home.disk.Has(ev.Block) {
				s.corrupt[ev.Block] = true
				s.bus.Emit(obs.BlockEv(obs.KindBlockCorrupt, home.id, ev.Block, 0))
			}
		}
	}
}

// crashNode wipes the node — memory, local disk (replica copies
// included) and policy state — and notifies the factory so it can
// re-issue distributed state (the MRD_Table re-send of §4.4). With
// RejoinAfter > 0 the node stays down until the rejoin stage; with
// replication factor 1 the node's share of the application's shuffle
// output so far is lost too, and its regeneration is charged as
// background recovery work.
func (s *Simulation) crashNode(ev fault.Event) {
	n := s.nodes[ev.Node]
	s.run.NodeCrashes++
	s.bus.Emit(obs.Ev(obs.KindNodeFail, n.id))

	// Prefetches that landed on the node die with it; settle the
	// ledger so Audit's used+wasted+pending == issued still holds.
	// (Map iteration: the operations are per-id counter updates, so
	// order does not affect the outcome.)
	for id := range s.prefetched {
		if cluster.HomeNode(id, len(s.nodes)) == n.id {
			s.run.PrefetchWasted++
			delete(s.prefetched, id)
		}
	}

	n.mem.Clear()
	n.disk.Clear()
	n.pol = s.factory.NewNodePolicy(n.id)
	n.mem = cluster.NewMemoryStore(s.cfg.CacheBytes, n.pol)

	// Other homes lose the replicas this node held for them.
	s.dropReplicaCounts(n.id)

	if s.replication() == 1 {
		// The node's 1/N share of all shuffle bytes written so far must
		// be regenerated before dependent stages re-read it; charge the
		// rewrite to the replacement node's disk at background priority.
		lost := s.run.ShuffleWriteBytes / int64(len(s.nodes))
		if lost > 0 {
			s.run.RecomputeBytes += lost
			s.run.DiskWriteBytes += lost
			n.diskDev.Transfer(lost, Background, func() {})
		}
	}

	// A crash always resolves the node's down window from scratch:
	// RejoinAfter == 0 means immediate replacement even when an earlier
	// crash left the node down with a pending rejoin (crash-then-crash
	// before rejoin must not resurrect the stale window).
	n.down = ev.RejoinAfter > 0
	n.rejoinAt = s.stageIx + ev.RejoinAfter
	if fo, ok := s.factory.(policy.NodeFailureObserver); ok {
		fo.OnNodeFailure(n.id)
	}
}

// loseBlock drops one block's primary copies (home memory and disk).
// Replica copies on other nodes survive, which is what lets the next
// reference take the replica-refetch path instead of lineage.
func (s *Simulation) loseBlock(id block.ID) {
	home := s.nodes[cluster.HomeNode(id, len(s.nodes))]
	removed := home.mem.Remove(id)
	if home.disk.Has(id) {
		home.disk.Remove(id)
		removed = true
	}
	if !removed {
		return
	}
	s.run.BlocksLost++
	s.bus.Emit(obs.BlockEv(obs.KindBlockLost, home.id, id, 0))
	if s.prefetched[id] {
		s.run.PrefetchWasted++
		delete(s.prefetched, id)
	}
}

// replication returns the schedule's normalized replication factor.
func (s *Simulation) replication() int { return s.opts.Fault.ReplicationFactor() }

// execNode places task p, skipping down nodes (their work lands on the
// next alive node, concentrating load the way a real cluster does).
func (s *Simulation) execNode(p int) *node {
	n := s.nodes[p%len(s.nodes)]
	for i := 1; n.down && i <= len(s.nodes); i++ {
		n = s.nodes[(p+i)%len(s.nodes)]
	}
	return n
}

// diskHas reports a usable on-disk copy: present and not corrupt.
func (s *Simulation) diskHas(n *node, id block.ID) bool {
	return n.disk.Has(id) && !s.corrupt[id]
}

// replicate ships R-1 replica copies of a newly inserted block to the
// next nodes' disks at background priority, and records the replica
// count in the home node's memory-store bookkeeping.
func (s *Simulation) replicate(home *node, info block.Info) {
	r := s.replication()
	if r == 1 {
		return
	}
	placed := 0
	for k := 1; k < r; k++ {
		rn := s.nodes[(info.ID.Partition+k)%len(s.nodes)]
		if rn.down {
			continue
		}
		if !rn.disk.HasReplica(info.ID) {
			rn.disk.PutReplica(info.ID, info.Size)
			s.run.ReplicaWriteBytes += info.Size
			s.bus.Emit(obs.BlockEv(obs.KindReplicaWrite, rn.id, info.ID, info.Size))
			// The copy crosses the home NIC and lands on the replica
			// node's disk, both off the critical path.
			home.netDev.Transfer(info.Size, Background, func() {})
			rn.diskDev.Transfer(info.Size, Background, func() {})
		}
		placed++
	}
	home.mem.SetReplicaCount(info.ID, placed)
}

// dropReplicaCounts tells every surviving home that the replicas the
// crashed node held are gone. Placement is deterministic — copy k of
// block q lives on node (q.Partition+k) mod N — so each home can tell
// whether the crashed node was in its replica set without a scan of
// the crashed disk.
func (s *Simulation) dropReplicaCounts(crashed int) {
	r := s.replication()
	if r == 1 {
		return
	}
	n := len(s.nodes)
	for _, home := range s.nodes {
		if home.id == crashed {
			continue
		}
		for _, id := range home.mem.Blocks() {
			for k := 1; k < r; k++ {
				if (id.Partition+k)%n == crashed {
					if c := home.mem.ReplicaCount(id); c > 0 {
						home.mem.SetReplicaCount(id, c-1)
					}
				}
			}
		}
	}
}

// findReplica locates a surviving, usable replica of the block among
// its deterministic placement slots, preferring the nearest slot.
func (s *Simulation) findReplica(id block.ID) (*node, bool) {
	r := s.replication()
	home := cluster.HomeNode(id, len(s.nodes))
	for k := 1; k < r; k++ {
		rn := s.nodes[(home+k)%len(s.nodes)]
		// corrupt flags only the home-disk copy; replicas are clean.
		if !rn.down && rn.disk.HasReplica(id) {
			return rn, true
		}
	}
	return nil, false
}

// restorable reports whether the block can be brought back without
// lineage recomputation: a usable local disk copy or a surviving
// replica. The manager's prefetch phase sees this via ClusterOps, so
// after a crash MRD proactively re-warms the replacement node from
// replicas.
func (s *Simulation) restorable(n *node, id block.ID) bool {
	if s.diskHas(n, id) {
		return true
	}
	_, ok := s.findReplica(id)
	return ok
}

// fetchWithRetry models one remote block fetch under the schedule's
// failure rate: each attempt charges the transfer to the reader's NIC;
// failed attempts add exponential backoff (simulated time, holding the
// task slot) and retry up to the budget. It returns false when the
// budget is exhausted — the caller escalates to lineage recomputation.
// node is the reading node, for event attribution; every fetch emits a
// remote-fetch event whose value is the modeled service latency (wire
// time for all attempts plus accumulated backoff).
func (s *Simulation) fetchWithRetry(node int, w *taskWork, bytes int64) bool {
	wireUs := bytes * 1_000_000 / s.cfg.NetBytesPerSec
	f := s.opts.Fault
	if f == nil || f.FetchFailureRate == 0 {
		w.netBytes += bytes
		s.bus.Emit(obs.Ev(obs.KindRemoteFetch, node).
			WithBytes(bytes).WithValue(wireUs).WithVerdict("ok"))
		return true
	}
	backoff := f.Backoff()
	retries := f.Retries()
	latency := int64(0)
	for attempt := 0; ; attempt++ {
		w.netBytes += bytes
		latency += wireUs
		if s.frng.Float64() >= f.FetchFailureRate {
			s.bus.Emit(obs.Ev(obs.KindRemoteFetch, node).
				WithBytes(bytes).WithValue(latency).WithVerdict("ok"))
			return true
		}
		if attempt >= retries {
			s.run.FetchGiveUps++
			s.bus.Emit(obs.Ev(obs.KindFetchGiveUp, node))
			s.bus.Emit(obs.Ev(obs.KindRemoteFetch, node).
				WithBytes(bytes).WithValue(latency).WithVerdict("giveup"))
			return false
		}
		s.run.FetchRetries++
		delay := backoff << attempt
		w.computeUs += delay
		latency += delay
		s.bus.Emit(obs.Ev(obs.KindFetchRetry, node).WithValue(delay))
	}
}

// noteUnfiredFaults validates the schedule against what actually ran:
// an event whose stage index lies at or beyond the executed stage
// count never fired, and a run that silently reported healthy numbers
// as if it were a fault run is exactly the bug this warning surfaces.
func (s *Simulation) noteUnfiredFaults() {
	if s.opts.Fault == nil {
		return
	}
	var unfired []string
	for _, ev := range s.opts.Fault.Events {
		if ev.Stage >= s.stageIx {
			unfired = append(unfired, ev.String())
		}
	}
	if len(unfired) > 0 {
		s.run.FaultWarning = fmt.Sprintf(
			"fault schedule events never fired (only %d stages executed): %s",
			s.stageIx, strings.Join(unfired, ", "))
	}
}
