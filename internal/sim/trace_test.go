package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
)

func TestTraceDisabledByDefault(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(s.Trace()) != 0 {
		t.Errorf("trace collected without EnableTrace: %d events", len(s.Trace()))
	}
}

func TestTraceRecordsCacheLifecycle(t *testing.T) {
	g, _, _ := twoGapGraph()
	mgr := mrdFactory(g, core.Options{})
	s, err := New(g, tinyCluster(1<<10), mgr, "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	run := s.Run()

	kinds := map[string]int{}
	var prev int64
	for _, ev := range s.Trace() {
		kinds[ev.Kind]++
		if ev.At < prev {
			t.Fatalf("trace out of order at %+v", ev)
		}
		prev = ev.At
	}
	if kinds["stage-start"] != run.StagesExecuted {
		t.Errorf("stage-start events = %d, want %d", kinds["stage-start"], run.StagesExecuted)
	}
	if int64(kinds["hit"]) != run.Hits {
		t.Errorf("hit events = %d, want %d", kinds["hit"], run.Hits)
	}
	if int64(kinds["promote"]) != run.DiskPromotes {
		t.Errorf("promote events = %d, want %d", kinds["promote"], run.DiskPromotes)
	}
	if int64(kinds["purge"]) != run.PurgedBlocks {
		t.Errorf("purge events = %d, want %d", kinds["purge"], run.PurgedBlocks)
	}
	if int64(kinds["prefetch-issue"]) != run.PrefetchIssued {
		t.Errorf("prefetch-issue events = %d, want %d", kinds["prefetch-issue"], run.PrefetchIssued)
	}
	if kinds["insert"] == 0 {
		t.Error("no insert events")
	}
}

func TestWriteTraceJSONLines(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<10), policy.NewLRU(), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	s.Run()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Trace()) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(s.Trace()))
	}
	for _, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", ln, err)
		}
	}
}

func TestTraceFailureEvent(t *testing.T) {
	g, _ := junkFlowGraph()
	s, err := New(g, tinyCluster(1<<20), mrdFactory(g, core.Options{}), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	if err := s.SetOptions(Options{Fault: fault.Crash(1, 2)}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for _, ev := range s.Trace() {
		if ev.Kind == "node-fail" && ev.Node == 1 {
			return
		}
	}
	t.Error("node failure not traced")
}

// TestTraceStageJobContext verifies the original trace bug stays
// fixed: every event between a stage-start and the next stage-start
// carries exactly that stage's ID and job — including fault and
// manager-decision events at the stage boundary.
func TestTraceStageJobContext(t *testing.T) {
	g, _, _ := twoGapGraph()
	s, err := New(g, tinyCluster(1<<10), mrdFactory(g, core.Options{}), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	s.Run()

	stage, job := -1, -1
	blockEvents := 0
	for _, ev := range s.Trace() {
		if ev.Kind == "stage-start" {
			stage, job = ev.Stage, ev.Job
		}
		if stage < 0 {
			t.Fatalf("%s event before any stage-start", ev.Kind)
		}
		if ev.Stage != stage || ev.Job != job {
			t.Fatalf("%s at t=%d carries stage %d/job %d, executing stage is %d/job %d",
				ev.Kind, ev.At, ev.Stage, ev.Job, stage, job)
		}
		if ev.Block != "" {
			blockEvents++
		}
	}
	if blockEvents == 0 {
		t.Fatal("trace has no block events to check")
	}
}

// TestTraceDeterministic: two simulations of the same graph on the
// same cluster must produce byte-identical serialized event streams —
// the property that makes recorded traces diffable across runs.
func TestTraceDeterministic(t *testing.T) {
	render := func() []byte {
		g, _, _ := twoGapGraph()
		s, err := New(g, tinyCluster(1<<10), mrdFactory(g, core.Options{}), "t")
		if err != nil {
			t.Fatal(err)
		}
		s.EnableTrace()
		s.Run()
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Error("same-seed runs produced different event streams")
	}
}

// TestReplayMatchesLiveAggregation: replaying a recorded JSONL trace
// through a fresh aggregator (what cmd/mrdreport does offline) must
// reproduce the live aggregator's per-stage and per-node sums.
func TestReplayMatchesLiveAggregation(t *testing.T) {
	g, _, _ := twoGapGraph()
	s, err := New(g, tinyCluster(1<<10), mrdFactory(g, core.Options{}), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	live := s.Observe()
	s.Run()

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := obs.Replay(events)

	ls, rs := live.StageStats(), replayed.StageStats()
	if len(ls) == 0 || len(ls) != len(rs) {
		t.Fatalf("stage counts differ: live %d, replayed %d", len(ls), len(rs))
	}
	for i := range ls {
		if ls[i] != rs[i] {
			t.Errorf("stage %d diverged:\n live   %+v\n replay %+v", i, ls[i], rs[i])
		}
	}
	ln, rn := live.NodeStats(), replayed.NodeStats()
	if len(ln) != len(rn) {
		t.Fatalf("node counts differ: live %d, replayed %d", len(ln), len(rn))
	}
	for i := range ln {
		l, r := ln[i], rn[i]
		// Device busy time is injected from the simulator after the
		// run; it never enters the event stream.
		l.DiskBusyUs, l.NetBusyUs = 0, 0
		if l != r {
			t.Errorf("node %d diverged:\n live   %+v\n replay %+v", i, l, r)
		}
	}
}
