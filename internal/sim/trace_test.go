package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/policy"
)

func TestTraceDisabledByDefault(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(s.Trace()) != 0 {
		t.Errorf("trace collected without EnableTrace: %d events", len(s.Trace()))
	}
}

func TestTraceRecordsCacheLifecycle(t *testing.T) {
	g, _, _ := twoGapGraph()
	mgr := mrdFactory(g, core.Options{})
	s, err := New(g, tinyCluster(1<<10), mgr, "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	run := s.Run()

	kinds := map[string]int{}
	var prev int64
	for _, ev := range s.Trace() {
		kinds[ev.Kind]++
		if ev.At < prev {
			t.Fatalf("trace out of order at %+v", ev)
		}
		prev = ev.At
	}
	if kinds["stage-start"] != run.StagesExecuted {
		t.Errorf("stage-start events = %d, want %d", kinds["stage-start"], run.StagesExecuted)
	}
	if int64(kinds["hit"]) != run.Hits {
		t.Errorf("hit events = %d, want %d", kinds["hit"], run.Hits)
	}
	if int64(kinds["promote"]) != run.DiskPromotes {
		t.Errorf("promote events = %d, want %d", kinds["promote"], run.DiskPromotes)
	}
	if int64(kinds["purge"]) != run.PurgedBlocks {
		t.Errorf("purge events = %d, want %d", kinds["purge"], run.PurgedBlocks)
	}
	if int64(kinds["prefetch-issue"]) != run.PrefetchIssued {
		t.Errorf("prefetch-issue events = %d, want %d", kinds["prefetch-issue"], run.PrefetchIssued)
	}
	if kinds["insert"] == 0 {
		t.Error("no insert events")
	}
}

func TestWriteTraceJSONLines(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<10), policy.NewLRU(), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	s.Run()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Trace()) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(s.Trace()))
	}
	for _, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", ln, err)
		}
	}
}

func TestTraceFailureEvent(t *testing.T) {
	g, _ := junkFlowGraph()
	s, err := New(g, tinyCluster(1<<20), mrdFactory(g, core.Options{}), "t")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	if err := s.SetOptions(Options{Fault: fault.Crash(1, 2)}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for _, ev := range s.Trace() {
		if ev.Kind == "node-fail" && ev.Node == 1 {
			return
		}
	}
	t.Error("node failure not traced")
}
