package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/core"
	"mrdspark/internal/dag"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
)

// randomApp builds a random but well-formed application: a source, a
// mix of narrow/wide transforms, some cached (MEMORY_AND_DISK so every
// read resolves to a hit or a promote), actions sprinkled through.
func randomApp(rng *rand.Rand) *dag.Graph {
	g := dag.New()
	rdds := []*dag.RDD{g.Source("in", 2+rng.Intn(4), int64(1+rng.Intn(8))<<10, dag.WithCost(10))}
	steps := 4 + rng.Intn(14)
	actions := 0
	for i := 0; i < steps; i++ {
		p := rdds[rng.Intn(len(rdds))]
		var r *dag.RDD
		switch rng.Intn(5) {
		case 0:
			r = p.Map(fmt.Sprintf("m%d", i), dag.WithCost(10))
		case 1:
			r = p.Filter(fmt.Sprintf("f%d", i), dag.WithSizeFactor(0.7), dag.WithCost(10))
		case 2:
			r = p.ReduceByKey(fmt.Sprintf("r%d", i), dag.WithCost(10))
		case 3:
			q := rdds[rng.Intn(len(rdds))]
			r = p.Union(fmt.Sprintf("u%d", i), q)
		case 4:
			r = p.GroupByKey(fmt.Sprintf("g%d", i), dag.WithSizeFactor(0.8), dag.WithCost(10))
		}
		if rng.Intn(3) == 0 {
			r.Persist(block.MemoryAndDisk)
		}
		rdds = append(rdds, r)
		if rng.Intn(3) == 0 {
			g.Count(r)
			actions++
		}
	}
	if actions == 0 {
		g.Count(rdds[len(rdds)-1])
	}
	return g
}

func allFactories(g *dag.Graph) map[string]policy.Factory {
	return map[string]policy.Factory{
		"LRU":        policy.NewLRU(),
		"FIFO":       policy.NewFIFO(),
		"LFU":        policy.NewLFU(),
		"Hyperbolic": policy.NewHyperbolic(),
		"GDS":        policy.NewGDS(),
		"LRC":        policy.NewLRC(g),
		"MemTune":    policy.NewMemTune(g),
		"MIN":        policy.NewMIN(g),
		"MRD": core.NewManager(g,
			core.NewRecurringProfiler(refdist.FromGraph(g)), core.Options{}),
		"MRD-adhoc": core.NewManager(g, core.NewAppProfiler(), core.Options{}),
	}
}

// TestCrossPolicyInvariants runs random applications under every
// policy and checks the laws that must hold regardless of eviction
// decisions:
//
//   - the run completes with the DAG's job/stage counts;
//   - hits + misses is identical across policies (the demand read
//     schedule is policy-independent when all blocks are restorable);
//   - with MEMORY_AND_DISK caching there are no recomputes;
//   - prefetch accounting never over-counts.
func TestCrossPolicyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		seed := rng.Int63()
		cl := tinyCluster(int64(2+rng.Intn(6)) << 10)
		var wantReads int64 = -1
		var wantJobs, wantStages int

		mk := func() *dag.Graph { return randomApp(rand.New(rand.NewSource(seed))) }
		for name, f := range allFactories(mk()) {
			g := mk() // fresh graph per run (factories bind to their own)
			factory := f
			if name == "LRC" || name == "MemTune" || name == "MIN" ||
				name == "MRD" || name == "MRD-adhoc" {
				// DAG-bound factories must be rebuilt against the
				// graph instance they run on.
				factory = allFactories(g)[name]
			}
			run, err := Run(g, cl, factory, "rand")
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if wantReads < 0 {
				wantReads = run.Hits + run.Misses
				wantJobs, wantStages = run.Jobs, run.StagesExecuted
			}
			if got := run.Hits + run.Misses; got != wantReads {
				t.Errorf("trial %d %s: reads = %d, other policies saw %d", trial, name, got, wantReads)
			}
			if run.Jobs != wantJobs || run.StagesExecuted != wantStages {
				t.Errorf("trial %d %s: workflow %d/%d, want %d/%d",
					trial, name, run.Jobs, run.StagesExecuted, wantJobs, wantStages)
			}
			if run.Recomputes != 0 {
				t.Errorf("trial %d %s: %d recomputes with restorable blocks", trial, name, run.Recomputes)
			}
			if run.PrefetchUsed+run.PrefetchWasted > run.PrefetchIssued {
				t.Errorf("trial %d %s: prefetch accounting broken: %d+%d > %d",
					trial, name, run.PrefetchUsed, run.PrefetchWasted, run.PrefetchIssued)
			}
			if run.JCT <= 0 || run.JCT > run.WallTime {
				t.Errorf("trial %d %s: time accounting broken: JCT=%d wall=%d",
					trial, name, run.JCT, run.WallTime)
			}
		}
	}
}

// TestOraclesDominateOnRandomApps: across random apps, the informed
// policies should not lose badly to uninformed ones on hit ratio in
// aggregate. Individual apps may favour anyone; the sum may not.
func TestOraclesDominateOnRandomApps(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var minHits, lruHits, mrdHits float64
	for trial := 0; trial < 40; trial++ {
		seed := rng.Int63()
		cl := tinyCluster(int64(2+rng.Intn(4)) << 10)
		mk := func() *dag.Graph { return randomApp(rand.New(rand.NewSource(seed))) }

		g1 := mk()
		lru, err := Run(g1, cl, policy.NewLRU(), "rand")
		if err != nil {
			t.Fatal(err)
		}
		g2 := mk()
		min, err := Run(g2, cl, policy.NewMIN(g2), "rand")
		if err != nil {
			t.Fatal(err)
		}
		g3 := mk()
		mrd, err := Run(g3, cl, mrdFactory(g3, core.Options{DisablePrefetch: true}), "rand")
		if err != nil {
			t.Fatal(err)
		}
		lruHits += lru.HitRatio()
		minHits += min.HitRatio()
		mrdHits += mrd.HitRatio()
	}
	if minHits < lruHits-0.5 {
		t.Errorf("MIN aggregate hits %.2f well below LRU %.2f", minHits, lruHits)
	}
	if mrdHits < lruHits-0.5 {
		t.Errorf("MRD aggregate hits %.2f well below LRU %.2f", mrdHits, lruHits)
	}
}

// TestAuditAfterRandomRuns: the post-run consistency audit passes for
// every policy on random applications.
func TestAuditAfterRandomRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		seed := rng.Int63()
		cl := tinyCluster(int64(2+rng.Intn(5)) << 10)
		g := randomApp(rand.New(rand.NewSource(seed)))
		for name, f := range allFactories(g) {
			// DAG-bound factories are already bound to g here.
			s, err := New(g, cl, f, "audit")
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			if err := s.Audit(); err != nil {
				t.Errorf("trial %d %s: %v", trial, name, err)
			}
			break // one policy per graph instance; factories bind to g
		}
		// And explicitly audit an MRD run with prefetching.
		g2 := randomApp(rand.New(rand.NewSource(seed)))
		s, err := New(g2, cl, mrdFactory(g2, core.Options{}), "audit-mrd")
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		if err := s.Audit(); err != nil {
			t.Errorf("trial %d MRD: %v", trial, err)
		}
	}
}

func TestAuditBeforeRunErrors(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Audit(); err == nil {
		t.Error("Audit before Run did not error")
	}
}
