package sim

import (
	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/obs"
)

// planStage turns a stage into per-task work units. Planning resolves
// every cached-RDD read the stage performs against the current cache
// state (hit, promote-from-disk, or recompute-from-lineage), charges
// the resulting I/O and compute to the task that reads each block, and
// schedules the cache inserts the tasks will perform when they finish.
//
// Block placement: partition q of any RDD lives on node q mod N (tasks
// are placed the same way, so creation is always local). A stage whose
// task count differs from a read RDD's partition count reads some
// blocks remotely; remote reads are charged to the reader's NIC.
func (s *Simulation) planStage(st *dag.Stage) []taskWork {
	works := make([]taskWork, st.NumTasks)
	ctx := &planCtx{sim: s, works: works, numTasks: st.NumTasks}

	// Resolve the stage's read frontier: the nearest materialized
	// cached RDD on each narrow path from the target.
	reads, _ := dag.StageFrontier(st, func(id int) bool { return s.created[id] })
	for _, r := range reads {
		for q := 0; q < r.NumPartitions; q++ {
			ctx.resolveBlock(r, q)
		}
	}

	// The pipelined chain each task computes: walk from the target
	// down to read boundaries.
	members := chainMembers(st.Target, s.created)
	var computeUs, srcBytes, shufLocal, shufRemote int64
	var creations []*dag.RDD
	for _, m := range members {
		computeUs += m.CostPerPart
		if m.IsSource() {
			srcBytes += m.PartSize
		}
		for _, d := range m.Deps {
			if d.Type != dag.Shuffle {
				continue
			}
			per := d.Parent.Size() / int64(st.NumTasks)
			n := int64(len(s.nodes))
			shufRemote += per * (n - 1) / n
			shufLocal += per - per*(n-1)/n
		}
		if m.Cached && !s.created[m.ID] {
			creations = append(creations, m)
		}
	}
	s.run.StageInputBytes += (srcBytes + shufLocal + shufRemote) * int64(st.NumTasks)
	s.run.ShuffleReadBytes += (shufLocal + shufRemote) * int64(st.NumTasks)
	for p := range works {
		w := &works[p]
		w.computeUs += computeUs
		w.diskBytes += srcBytes + shufLocal
		// The task's remote shuffle read crosses the network and is
		// subject to the fault schedule's fetch-failure model; an
		// exhausted retry budget is Spark's shuffle-fetch failure —
		// the missing map outputs are regenerated, charged here as
		// local recomputation I/O.
		if shufRemote > 0 && !s.fetchWithRetry(s.execNode(p).id, w, shufRemote) {
			s.run.RecomputeBytes += shufRemote
			w.diskBytes += shufRemote
		}
		if st.Kind == dag.ShuffleMap {
			w.shuffleWrite = st.Target.PartSize
			s.run.ShuffleWriteBytes += w.shuffleWrite
		}
		for _, m := range creations {
			q := p % m.NumPartitions
			w.inserts = append(w.inserts, insert{node: cluster.HomePartition(q, len(s.nodes)), info: m.BlockInfo(q)})
		}
	}
	// Mark chain creations materialized: from the next stage on they
	// are read boundaries.
	for _, m := range creations {
		s.created[m.ID] = true
	}
	return works
}

// chainMembers walks target's narrow ancestry, stopping at cached RDDs
// that are already materialized (read boundaries). If the target
// itself is such a boundary the stage computes nothing — e.g. a second
// action over a fully cached RDD.
func chainMembers(target *dag.RDD, created map[int]bool) []*dag.RDD {
	if target.Cached && created[target.ID] {
		return nil
	}
	seen := map[int]bool{}
	var out []*dag.RDD
	var walk func(r *dag.RDD)
	walk = func(r *dag.RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		out = append(out, r)
		for _, d := range r.Deps {
			if d.Type != dag.Narrow {
				continue
			}
			if d.Parent.Cached && created[d.Parent.ID] {
				continue // read boundary, resolved per block
			}
			walk(d.Parent)
		}
	}
	walk(target)
	return out
}

// planCtx carries per-stage planning state: which blocks were already
// resolved (a block is read once per stage even if reachable through
// several chain paths).
type planCtx struct {
	sim      *Simulation
	works    []taskWork
	numTasks int
	resolved map[block.ID]bool
}

// resolveBlock resolves one read of a cached block down the recovery
// ladder: cache hit (free locally, a fetch remotely), promote from the
// home node's disk, re-fetch from a surviving replica, and finally
// recompute from lineage. Remote fetches on every rung are subject to
// the fault schedule's failure rate with bounded retry; an exhausted
// budget drops to the next rung. Costs are charged to the reader task
// q mod numTasks; the block's home is node q mod N.
func (c *planCtx) resolveBlock(r *dag.RDD, q int) {
	id := r.Block(q)
	if c.resolved == nil {
		c.resolved = map[block.ID]bool{}
	}
	if c.resolved[id] {
		return
	}
	c.resolved[id] = true

	s := c.sim
	home := cluster.HomeNode(id, len(s.nodes))
	hn := s.nodes[home]
	reader := q % c.numTasks
	readerNode := s.execNode(reader).id
	w := &c.works[reader]
	// deserUs: reading spilled or replicated bytes back costs CPU too;
	// Spark deserializes disk bytes into JVM objects (~150 MB/s).
	deserUs := r.PartSize * 1_000_000 / (150 << 20)

	s.run.StageInputBytes += r.PartSize
	if hn.mem.Get(id) {
		s.run.Hits++
		s.bus.Emit(obs.BlockEv(obs.KindHit, home, id, r.PartSize))
		if s.prefetched[id] {
			s.run.PrefetchUsed++
			delete(s.prefetched, id)
		}
		// A remote hit still moves bytes over the reader's NIC — and
		// under a flaky network that fetch can exhaust its retries, in
		// which case the reader rebuilds the partition locally from
		// lineage (the cached copy stays resident at home).
		if home != readerNode && !s.fetchWithRetry(readerNode, w, r.PartSize) {
			s.run.RecomputeBytes += r.PartSize
			s.bus.Emit(obs.BlockEv(obs.KindRecompute, readerNode, id, r.PartSize))
			c.chainCost(r, q, w)
		}
		return
	}
	s.run.Misses++
	s.bus.Emit(obs.BlockEv(obs.KindMiss, home, id, r.PartSize))

	// A corrupt home-disk copy is detected at this read and dropped,
	// pushing the miss down to the replica or lineage rung.
	if hn.disk.Has(id) && s.corrupt[id] {
		delete(s.corrupt, id)
		hn.disk.Remove(id)
		s.run.BlocksCorrupted++
		s.bus.Emit(obs.BlockEv(obs.KindCorruptDetect, home, id, r.PartSize))
	}

	if s.diskHas(hn, id) {
		fetched := true
		if home == readerNode {
			w.diskBytes += r.PartSize
		} else {
			fetched = s.fetchWithRetry(readerNode, w, r.PartSize)
		}
		if fetched {
			s.run.DiskPromotes++
			s.bus.Emit(obs.BlockEv(obs.KindPromote, home, id, r.PartSize))
			w.computeUs += deserUs
			w.inserts = append(w.inserts, insert{node: home, info: r.BlockInfo(q)})
			return
		}
	}

	// Primary copies gone (eviction, node failure, injected loss):
	// before paying for lineage, try a surviving replica.
	if rn, ok := s.findReplica(id); ok {
		fetched := true
		if rn.id == readerNode {
			w.diskBytes += r.PartSize
		} else {
			fetched = s.fetchWithRetry(readerNode, w, r.PartSize)
		}
		if fetched {
			s.run.ReplicaHits++
			s.bus.Emit(obs.BlockEv(obs.KindReplicaHit, rn.id, id, r.PartSize))
			w.computeUs += deserUs
			w.inserts = append(w.inserts, insert{node: home, info: r.BlockInfo(q)})
			return
		}
	}

	// Last rung: recompute from lineage, then re-cache.
	s.run.Recomputes++
	s.run.RecomputeBytes += r.PartSize
	s.bus.Emit(obs.BlockEv(obs.KindRecompute, home, id, r.PartSize))
	c.chainCost(r, q, w)
	w.inserts = append(w.inserts, insert{node: home, info: r.BlockInfo(q)})
}

// chainCost charges the work to recompute one partition of r from its
// lineage: compute costs up the narrow chain, source re-reads, shuffle
// re-reads (shuffle outputs stay materialized on disk for the whole
// application), and reads of materialized cached ancestors.
func (c *planCtx) chainCost(r *dag.RDD, q int, w *taskWork) {
	s := c.sim
	w.computeUs += r.CostPerPart
	if r.IsSource() {
		w.diskBytes += r.PartSize
		return
	}
	for _, d := range r.Deps {
		if d.Type == dag.Shuffle {
			per := d.Parent.Size() / int64(r.NumPartitions)
			n := int64(len(s.nodes))
			remote := per * (n - 1) / n
			w.netBytes += remote
			w.diskBytes += per - remote
			continue
		}
		p := d.Parent
		pq := q % p.NumPartitions
		if p.Cached && s.created[p.ID] {
			c.resolveBlock(p, pq)
			continue
		}
		c.chainCost(p, pq, w)
	}
}
