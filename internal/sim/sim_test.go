package sim

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/policy"
)

// tinyCluster is a 2-node, 1-core cluster with generous cache.
func tinyCluster(cache int64) cluster.Config {
	return cluster.Config{
		Name: "tiny", Nodes: 2, CoresPerNode: 1,
		CacheBytes:      cache,
		DiskBytesPerSec: 1 << 20, // 1 MB/s = 1 byte/µs
		NetBytesPerSec:  1 << 20,
	}
}

// cachedReuseGraph: data cached and read by two later jobs.
func cachedReuseGraph(level block.StorageLevel) (*dag.Graph, *dag.RDD) {
	g := dag.New()
	data := g.Source("in", 4, 1<<10, dag.WithCost(10)).
		Map("parse", dag.WithCost(10)).Persist(level)
	g.Count(data)
	g.Count(data.Map("u1", dag.WithCost(10)))
	g.Count(data.Map("u2", dag.WithCost(10)))
	return g, data
}

func TestRunCompletesAndCountsWorkflow(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	run, err := Run(g, tinyCluster(1<<20), policy.NewLRU(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if run.JCT <= 0 {
		t.Error("JCT not positive")
	}
	if run.Jobs != 3 || run.StagesExecuted != 3 || run.StagesSkipped != 0 {
		t.Errorf("workflow = %d jobs, %d stages, %d skipped", run.Jobs, run.StagesExecuted, run.StagesSkipped)
	}
	if run.TasksExecuted != 12 {
		t.Errorf("tasks = %d, want 12 (3 stages x 4 partitions)", run.TasksExecuted)
	}
}

func TestCacheHitsWithAmpleCache(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	run, err := Run(g, tinyCluster(1<<20), policy.NewLRU(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 creates the 4 blocks; stages 1 and 2 read them: 8 hits.
	if run.Hits != 8 || run.Misses != 0 {
		t.Errorf("hits/misses = %d/%d, want 8/0", run.Hits, run.Misses)
	}
	if run.HitRatio() != 1 {
		t.Errorf("hit ratio = %v", run.HitRatio())
	}
}

func TestMissPromotesFromDisk(t *testing.T) {
	// Cache fits one block only: every read misses and promotes.
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	run, err := Run(g, tinyCluster(1<<10), policy.NewLRU(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if run.Misses == 0 || run.DiskPromotes != run.Misses {
		t.Errorf("misses=%d promotes=%d: MEMORY_AND_DISK misses must all promote", run.Misses, run.DiskPromotes)
	}
	if run.Recomputes != 0 {
		t.Errorf("recomputes = %d, want 0 with disk copies", run.Recomputes)
	}
}

func TestMissRecomputesMemoryOnly(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryOnly)
	run, err := Run(g, tinyCluster(1<<10), policy.NewLRU(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if run.Recomputes == 0 || run.DiskPromotes != 0 {
		t.Errorf("MEMORY_ONLY misses must recompute: promotes=%d recomputes=%d", run.DiskPromotes, run.Recomputes)
	}
}

func TestSkippedStagesDoNotExecute(t *testing.T) {
	g := dag.New()
	agg := g.Source("in", 4, 1<<10).ReduceByKey("r")
	g.Count(agg)
	g.Count(agg.Map("m"))
	run, err := Run(g, tinyCluster(1<<20), policy.NewLRU(), "skip")
	if err != nil {
		t.Fatal(err)
	}
	if run.StagesExecuted != 3 {
		t.Errorf("executed = %d, want 3 (map + 2 results)", run.StagesExecuted)
	}
	if run.StagesSkipped != 1 {
		t.Errorf("skipped = %d, want 1 (reused shuffle stage)", run.StagesSkipped)
	}
}

func TestDeterminism(t *testing.T) {
	for _, mk := range []func() policy.Factory{
		func() policy.Factory { return policy.NewLRU() },
		func() policy.Factory { return policy.NewLFU() },
	} {
		g, _ := cachedReuseGraph(block.MemoryAndDisk)
		a, err := Run(g, tinyCluster(3<<10), mk(), "det")
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := cachedReuseGraph(block.MemoryAndDisk)
		b, err := Run(g2, tinyCluster(3<<10), mk(), "det")
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("nondeterministic runs:\n%+v\n%+v", a, b)
		}
	}
}

func TestSimulationSingleUse(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "once")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	s.Run()
}

func TestInvalidConfigRejected(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	if _, err := New(g, cluster.Config{}, policy.NewLRU(), "bad"); err == nil {
		t.Error("zero cluster config accepted")
	}
}

func TestShuffleChargesDiskAndNetwork(t *testing.T) {
	g := dag.New()
	agg := g.Source("in", 4, 1<<12).ReduceByKey("r")
	g.Count(agg)
	run, err := Run(g, tinyCluster(1<<20), policy.NewLRU(), "shuffle")
	if err != nil {
		t.Fatal(err)
	}
	if run.ShuffleWriteBytes == 0 || run.ShuffleReadBytes == 0 {
		t.Errorf("shuffle volumes = %d/%d", run.ShuffleReadBytes, run.ShuffleWriteBytes)
	}
	if run.NetReadBytes == 0 {
		t.Error("no network traffic for a shuffle on 2 nodes")
	}
}

func TestSourceReadsChargedToDisk(t *testing.T) {
	g := dag.New()
	g.Count(g.Source("in", 4, 1<<12).Map("m"))
	run, err := Run(g, tinyCluster(1<<20), policy.NewLRU(), "src")
	if err != nil {
		t.Fatal(err)
	}
	if run.DiskReadBytes < 4<<12 {
		t.Errorf("disk reads = %d, want at least the source size %d", run.DiskReadBytes, 4<<12)
	}
}

func TestJCTScalesWithMisses(t *testing.T) {
	big, _ := cachedReuseGraph(block.MemoryAndDisk)
	hit, err := Run(big, tinyCluster(1<<20), policy.NewLRU(), "big")
	if err != nil {
		t.Fatal(err)
	}
	small, _ := cachedReuseGraph(block.MemoryAndDisk)
	miss, err := Run(small, tinyCluster(1<<10), policy.NewLRU(), "small")
	if err != nil {
		t.Fatal(err)
	}
	if miss.JCT <= hit.JCT {
		t.Errorf("missing runs not slower: %d <= %d", miss.JCT, hit.JCT)
	}
}

func TestWriteBehindCreatesDiskCopies(t *testing.T) {
	g, data := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "wb")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for p := 0; p < data.NumPartitions; p++ {
		home := p % 2
		if !s.nodes[home].disk.Has(data.Block(p)) {
			t.Errorf("block %d missing from disk after write-behind", p)
		}
	}
}

func TestMemoryOnlyLeavesNoDiskCopies(t *testing.T) {
	g, data := cachedReuseGraph(block.MemoryOnly)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "mo")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for p := 0; p < data.NumPartitions; p++ {
		if s.nodes[p%2].disk.Has(data.Block(p)) {
			t.Errorf("MEMORY_ONLY block %d spilled to disk", p)
		}
	}
}

func TestTimelineCoversRun(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "tl")
	if err != nil {
		t.Fatal(err)
	}
	run := s.Run()
	spans := s.Timeline()
	if len(spans) != run.StagesExecuted {
		t.Fatalf("timeline spans = %d, want %d", len(spans), run.StagesExecuted)
	}
	var prevEnd int64
	for i, sp := range spans {
		if sp.End < sp.Start {
			t.Errorf("span %d ends before it starts: %+v", i, sp)
		}
		if sp.Start < prevEnd {
			t.Errorf("span %d overlaps the previous stage (stages are serial): %+v", i, sp)
		}
		prevEnd = sp.End
		if sp.Tasks <= 0 || (sp.Kind != "shuffleMap" && sp.Kind != "result") {
			t.Errorf("span %d malformed: %+v", i, sp)
		}
	}
	if last := spans[len(spans)-1]; last.End != run.JCT {
		t.Errorf("last span ends at %d, JCT is %d", last.End, run.JCT)
	}
}

func TestPerNodeStatsConsistent(t *testing.T) {
	g, _ := cachedReuseGraph(block.MemoryAndDisk)
	s, err := New(g, tinyCluster(1<<20), policy.NewLRU(), "pn")
	if err != nil {
		t.Fatal(err)
	}
	run := s.Run()
	stats := s.PerNode()
	if len(stats) != 2 {
		t.Fatalf("nodes = %d", len(stats))
	}
	var diskBusy, netBusy, evictions int64
	for i, ns := range stats {
		if ns.Node != i {
			t.Errorf("node index %d = %d", i, ns.Node)
		}
		if ns.CacheUsed < 0 || ns.CacheBlocks < 0 {
			t.Errorf("negative node stats: %+v", ns)
		}
		diskBusy += ns.DiskBusy
		netBusy += ns.NetBusy
		evictions += ns.Evictions
	}
	if diskBusy != run.DiskBusy || netBusy != run.NetBusy {
		t.Errorf("per-node busy %d/%d != run totals %d/%d", diskBusy, netBusy, run.DiskBusy, run.NetBusy)
	}
	if evictions != run.Evictions {
		t.Errorf("per-node evictions %d != run total %d", evictions, run.Evictions)
	}
}
