package sim

import (
	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
)

// clusterOps is the policy.ClusterOps control surface over a running
// simulation — the channel through which the MRDmanager (and MemTune)
// issue purge orders and prefetch requests to the worker nodes.
type clusterOps struct {
	s *Simulation
}

var _ policy.ClusterOps = clusterOps{}

func (o clusterOps) NumNodes() int { return len(o.s.nodes) }

func (o clusterOps) HomeNode(id block.ID) int { return cluster.HomeNode(id, len(o.s.nodes)) }

func (o clusterOps) Resident(node int, id block.ID) bool {
	return o.s.nodes[node].mem.Contains(id)
}

// OnDisk reports restorability without recomputation: a usable local
// disk copy or, under replication, a surviving replica elsewhere. The
// manager's prefetch phase therefore re-warms a crashed-and-replaced
// node from replicas instead of writing the block off.
func (o clusterOps) OnDisk(node int, id block.ID) bool {
	return o.s.restorable(o.s.nodes[node], id)
}

func (o clusterOps) FreeBytes(node int) int64 { return o.s.nodes[node].mem.Free() }

func (o clusterOps) PrefetchOutcomes() (used, wasted int64) {
	return o.s.run.PrefetchUsed, o.s.run.PrefetchWasted
}

func (o clusterOps) CapacityBytes(node int) int64 { return o.s.nodes[node].mem.Capacity() }

// Evict implements the manager-initiated proactive eviction (purge).
func (o clusterOps) Evict(node int, id block.ID) bool {
	s := o.s
	if !s.nodes[node].mem.Remove(id) {
		return false
	}
	s.run.PurgedBlocks++
	s.bus.Emit(obs.BlockEv(obs.KindPurge, node, id, 0))
	if s.prefetched[id] {
		s.run.PrefetchWasted++
		delete(s.prefetched, id)
	}
	return true
}

// Prefetch loads the block at background priority — from the node's
// local disk, or from a surviving replica when the local copy is gone
// (a crashed-and-replaced node re-warming) — and inserts it into
// memory on arrival, evicting via the node's policy if space is
// needed then.
func (o clusterOps) Prefetch(node int, info block.Info) {
	s := o.s
	n := s.nodes[node]
	if n.down || n.mem.Contains(info.ID) || s.inFlight[info.ID] || !s.restorable(n, info.ID) {
		return
	}
	s.inFlight[info.ID] = true
	s.run.PrefetchIssued++
	s.bus.Emit(obs.BlockEv(obs.KindPrefetchIssue, node, info.ID, info.Size))
	arrive := func() {
		delete(s.inFlight, info.ID)
		s.bus.Emit(obs.BlockEv(obs.KindPrefetchArrive, node, info.ID, info.Size))
		// Aborted arrivals (node crashed mid-flight, block demand-
		// inserted meanwhile, or the store rejected it) settle the
		// ledger as wasted so Audit's used+wasted+pending == issued
		// invariant survives fault schedules.
		if n.down || n.mem.Contains(info.ID) {
			s.run.PrefetchWasted++
			return
		}
		// Arbitrated policies (the MRD CacheMonitor) veto arrivals
		// whose evictions would displace blocks at least as urgent as
		// the incoming one; other policies take the paper's fully
		// aggressive path.
		var evicted []block.Info
		var ok bool
		if arb, isArb := n.pol.(policy.PrefetchArbiter); isArb {
			evicted, ok = n.mem.PutGuarded(info, func(victim block.ID) bool {
				return arb.AllowPrefetchEviction(info, victim)
			})
		} else {
			evicted, ok = n.mem.Put(info)
		}
		s.noteEvictions(evicted)
		s.notePeak()
		if !ok {
			s.run.PrefetchWasted++
			return
		}
		s.prefetched[info.ID] = true
		s.replicate(n, info)
	}
	if s.diskHas(n, info.ID) {
		n.diskDev.Transfer(info.Size, Background, func() {
			s.run.DiskReadBytes += info.Size
			arrive()
		})
		return
	}
	// Replica restore: read the surviving copy's disk, cross the NIC,
	// land in the home node's memory (and disk, for later promotes).
	rn, _ := s.findReplica(info.ID)
	rn.diskDev.Transfer(info.Size, Background, func() {
		s.run.DiskReadBytes += info.Size
		n.netDev.Transfer(info.Size, Background, func() {
			s.run.NetReadBytes += info.Size
			if !n.down {
				n.disk.Put(info.ID, info.Size)
			}
			arrive()
		})
	})
}
