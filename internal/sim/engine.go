// Package sim is a deterministic discrete-event simulator of a Spark
// cluster executing an application DAG: per-node CPU task slots, disk
// and NIC queues with demand/background priorities, stage-by-stage
// scheduling with data locality, shuffle I/O, and the cache
// interactions (hits, misses, promotes, recomputes, evictions,
// prefetches) the cache-management policies compete on.
package sim

// Engine is a minimal deterministic discrete-event loop. Events fire
// in timestamp order; ties break in scheduling order, which keeps runs
// reproducible bit for bit.
//
// Events live in a reusable slab arena; the priority queue is a binary
// heap of int32 slab indices. Compared to the original container/heap
// implementation this removes the two interface-boxing allocations per
// event (Push and Pop both box a 24-byte struct into `any`), and both
// the slab and the heap reuse their backing arrays across the whole
// run, so a warmed engine schedules and fires events allocation-free
// (see TestEngineSteadyStateAllocs).
type Engine struct {
	now    int64 // microseconds of simulated time
	nextID int64
	slab   []event // arena; slot i holds the event heap entries point at
	free   []int32 // recycled slab slots
	heap   []int32 // binary heap of slab indices ordered by (at, seq)
}

type event struct {
	at  int64
	seq int64
	fn  func()
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn at absolute time t (clamped to now: the past is not
// rewritable).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	ev := event{at: t, seq: e.nextID, fn: fn}
	e.nextID++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		e.slab[idx] = ev
	} else {
		idx = int32(len(e.slab))
		e.slab = append(e.slab, ev)
	}
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

// After schedules fn d microseconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue drains, returning the final
// simulated time.
func (e *Engine) Run() int64 {
	for len(e.heap) > 0 {
		idx := e.pop()
		ev := e.slab[idx]
		// Clear the popped slot before firing: the slab must not keep
		// the closure (and everything it captures) live until the slot
		// is recycled.
		e.slab[idx] = event{}
		e.free = append(e.free, idx)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events (test helper).
func (e *Engine) Pending() int { return len(e.heap) }

// less orders two slab slots by (timestamp, scheduling order). Both
// fields together form a strict total order, so any heap yields the
// same pop sequence.
func (e *Engine) less(i, j int32) bool {
	a, b := &e.slab[i], &e.slab[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum slab index from the heap.
func (e *Engine) pop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	// Sift the relocated last element down.
	h = e.heap
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			min = r
		}
		if !e.less(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// slabLive returns how many slab slots still hold a closure (test
// helper: after Run drains the queue it must be zero, or popped events
// would pin their captured state until the slot is recycled).
func (e *Engine) slabLive() int {
	live := 0
	for i := range e.slab {
		if e.slab[i].fn != nil {
			live++
		}
	}
	return live
}
