// Package sim is a deterministic discrete-event simulator of a Spark
// cluster executing an application DAG: per-node CPU task slots, disk
// and NIC queues with demand/background priorities, stage-by-stage
// scheduling with data locality, shuffle I/O, and the cache
// interactions (hits, misses, promotes, recomputes, evictions,
// prefetches) the cache-management policies compete on.
package sim

import "container/heap"

// Engine is a minimal deterministic discrete-event loop. Events fire
// in timestamp order; ties break in scheduling order, which keeps runs
// reproducible bit for bit.
type Engine struct {
	now    int64 // microseconds of simulated time
	nextID int64
	queue  eventHeap
}

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn at absolute time t (clamped to now: the past is not
// rewritable).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, event{at: t, seq: e.nextID, fn: fn})
	e.nextID++
}

// After schedules fn d microseconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue drains, returning the final
// simulated time.
func (e *Engine) Run() int64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events (test helper).
func (e *Engine) Pending() int { return e.queue.Len() }
