package sim

import (
	"io"

	"mrdspark/internal/obs"
)

// This file is the compatibility surface over the internal/obs event
// bus, which replaced the original ad-hoc trace collector. The
// guarantees for existing WriteTrace users:
//
//   - EnableTrace/Trace/WriteTrace keep working unchanged.
//   - The JSON-lines format keeps the legacy field names (at, node,
//     kind, block, stage, job) with the legacy kind strings; stage and
//     job are now filled on every event (they used to be 0 on all
//     block events), and new fields (bytes, value, verdict) appear
//     when set.
//   - Events without a block now omit the "block" field (they used to
//     carry the misleading literal "rdd_0_0").
//   - New event kinds (miss, task-start/end, stage-end, fault and
//     policy-decision events) appear in the stream; consumers keying
//     on known kinds are unaffected.
type TraceEvent struct {
	At    int64  `json:"at"` // µs
	Node  int    `json:"node"`
	Kind  string `json:"kind"` // an obs.Kind wire name; see internal/obs
	Block string `json:"block,omitempty"`
	Stage int    `json:"stage,omitempty"`
	Job   int    `json:"job,omitempty"`
}

// EnableTrace turns on full event collection (before Run). It attaches
// an obs.Recorder to the simulation's event bus.
func (s *Simulation) EnableTrace() {
	if s.rec == nil {
		s.rec = obs.NewRecorder()
		s.rec.Attach(s.bus)
	}
}

// Trace returns the collected events in emission order, converted to
// the legacy TraceEvent shape. Raw events are available from
// Recorder/Bus via Observe.
func (s *Simulation) Trace() []TraceEvent {
	if s.rec == nil {
		return nil
	}
	events := s.rec.Events()
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		te := TraceEvent{
			At: ev.At, Node: ev.Node, Kind: ev.Kind.String(),
			Stage: ev.Stage, Job: ev.Job,
		}
		if ev.HasBlock {
			te.Block = ev.Block.String()
		}
		out[i] = te
	}
	return out
}

// WriteTrace writes the trace as JSON lines in the obs wire format (a
// field superset of the legacy format; see the compat notes above).
func (s *Simulation) WriteTrace(w io.Writer) error {
	if s.rec == nil {
		return nil
	}
	return s.rec.WriteJSONL(w)
}
