package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"mrdspark/internal/block"
)

// TraceEvent is one entry of the optional run trace: every cache and
// scheduling decision with its simulated timestamp. Traces exist for
// debugging policies and for post-hoc analysis; they are off by
// default (a full SCC run produces tens of thousands of events).
type TraceEvent struct {
	At    int64  `json:"at"` // µs
	Node  int    `json:"node"`
	Kind  string `json:"kind"` // stage-start, hit, promote, recompute, insert, evict, purge, prefetch-issue, prefetch-arrive, node-fail
	Block string `json:"block,omitempty"`
	Stage int    `json:"stage,omitempty"`
	Job   int    `json:"job,omitempty"`
}

// EnableTrace turns on event collection (before Run).
func (s *Simulation) EnableTrace() { s.traceOn = true }

// Trace returns the collected events in emission order.
func (s *Simulation) Trace() []TraceEvent { return s.trace }

// WriteTrace writes the trace as JSON lines.
func (s *Simulation) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range s.trace {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("sim: writing trace: %w", err)
		}
	}
	return nil
}

func (s *Simulation) traceEvent(kind string, node int, id block.ID) {
	if !s.traceOn {
		return
	}
	s.trace = append(s.trace, TraceEvent{
		At: s.eng.Now(), Node: node, Kind: kind, Block: id.String(),
	})
}

func (s *Simulation) traceStage(stageID, jobID int) {
	if !s.traceOn {
		return
	}
	s.trace = append(s.trace, TraceEvent{
		At: s.eng.Now(), Kind: "stage-start", Stage: stageID, Job: jobID,
	})
}
