package sim

import (
	"testing"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %d", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []int64
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	var fired int64 = -1
	e.At(100, func() {
		e.At(50, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 100 {
		t.Errorf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("pending after run = %d", e.Pending())
	}
}

func TestSlotsLimitConcurrency(t *testing.T) {
	e := NewEngine()
	s := NewSlots(e, 2)
	running, maxRunning, done := 0, 0, 0
	task := func() {
		running++
		if running > maxRunning {
			maxRunning = running
		}
		e.After(10, func() {
			running--
			done++
			s.Release()
		})
	}
	for i := 0; i < 5; i++ {
		s.Acquire(task)
	}
	e.Run()
	if maxRunning != 2 {
		t.Errorf("max concurrency = %d, want 2", maxRunning)
	}
	if done != 5 {
		t.Errorf("done = %d", done)
	}
	if s.Free() != 2 || s.Waiting() != 0 {
		t.Errorf("slots end state: free=%d waiting=%d", s.Free(), s.Waiting())
	}
}

func TestSlotsFIFOHandoff(t *testing.T) {
	e := NewEngine()
	s := NewSlots(e, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Acquire(func() {
			order = append(order, i)
			e.After(1, s.Release)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("handoff order = %v", order)
		}
	}
}

func TestDeviceServiceTime(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, 1_000_000) // 1 MB/s => 1 byte/µs
	var doneAt int64
	d.Transfer(500, Demand, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 500 {
		t.Errorf("500-byte transfer at 1B/µs finished at %d", doneAt)
	}
	if d.Busy != 500 {
		t.Errorf("busy accounting = %d", d.Busy)
	}
}

func TestDeviceDemandBeatsBackground(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, 1_000_000)
	var order []string
	// Occupy the device, then queue one background and one demand
	// request; demand must be served first even though it arrived
	// second.
	d.Transfer(100, Demand, func() { order = append(order, "first") })
	d.Transfer(100, Background, func() { order = append(order, "bg") })
	d.Transfer(100, Demand, func() { order = append(order, "demand") })
	e.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "demand" || order[2] != "bg" {
		t.Errorf("service order = %v", order)
	}
}

func TestDeviceZeroBytesCompletesImmediately(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, 1_000_000)
	fired := false
	d.Transfer(0, Demand, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Errorf("zero transfer: fired=%v now=%d", fired, e.Now())
	}
}

func TestDeviceNoPreemption(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, 1_000_000)
	var bgDone, demandDone int64
	d.Transfer(1000, Background, func() { bgDone = e.Now() })
	e.At(10, func() {
		d.Transfer(10, Demand, func() { demandDone = e.Now() })
	})
	e.Run()
	if bgDone != 1000 {
		t.Errorf("background transfer interrupted: done at %d", bgDone)
	}
	if demandDone != 1010 {
		t.Errorf("demand after in-service background: done at %d, want 1010", demandDone)
	}
}

func TestDeviceMinimumServiceTime(t *testing.T) {
	e := NewEngine()
	d := NewDevice(e, 1<<40) // absurd bandwidth
	var doneAt int64 = -1
	d.Transfer(1, Demand, func() { doneAt = e.Now() })
	e.Run()
	if doneAt < 1 {
		t.Errorf("service time below 1µs floor: %d", doneAt)
	}
}
