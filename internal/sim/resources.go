package sim

// queue is an allocation-friendly FIFO: a slice with a head index.
// Popping clears the vacated slot (so completed callbacks are
// GC-reclaimable) and the backing array is reused — either by
// resetting when the queue drains or by compacting once the dead
// prefix dominates — instead of the repeated re-allocation the old
// `q = q[1:]; append(q, ...)` pattern caused.
type queue[T any] struct {
	buf  []T
	head int
}

func (q *queue[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *queue[T]) len() int { return len(q.buf) - q.head }

func (q *queue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 32 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// Slots models a node's CPU task slots (Spark executor cores) as a
// counting semaphore with a FIFO wait queue. A task holds its slot for
// its entire lifetime — I/O waits included — matching Spark's
// thread-per-task executor.
type Slots struct {
	eng     *Engine
	free    int
	waiting queue[func()]
}

// NewSlots creates a slot pool of the given width.
func NewSlots(eng *Engine, n int) *Slots { return &Slots{eng: eng, free: n} }

// Acquire runs fn as soon as a slot is available (possibly
// immediately, in the current event).
func (s *Slots) Acquire(fn func()) {
	if s.free > 0 {
		s.free--
		fn()
		return
	}
	s.waiting.push(fn)
}

// Release frees a slot, handing it to the oldest waiter if any. The
// waiter runs in a fresh event at the current time so release sites
// don't nest arbitrarily deep.
func (s *Slots) Release() {
	if s.waiting.len() > 0 {
		s.eng.After(0, s.waiting.pop())
		return
	}
	s.free++
}

// Free returns the number of available slots (test helper).
func (s *Slots) Free() int { return s.free }

// Waiting returns the number of queued acquirers (test helper).
func (s *Slots) Waiting() int { return s.waiting.len() }

// Priority classes for device requests: demand I/O (tasks blocked on
// it) is always served before background I/O (prefetches, write-behind
// spills).
type Priority int

const (
	// Demand I/O blocks a running task.
	Demand Priority = iota
	// Background I/O is opportunistic (prefetch, write-behind).
	Background
)

type ioReq struct {
	bytes int64
	done  func()
}

// Device is a single-server FIFO queue with two priority classes,
// modeling one node's disk or NIC. Service time is bytes/bandwidth; a
// request in service is not preempted, but all queued demand requests
// are served before any background request — which is exactly how
// prefetch I/O "steals" only otherwise-idle bandwidth.
type Device struct {
	eng         *Engine
	bytesPerSec int64
	busy        bool
	demand      queue[ioReq]
	background  queue[ioReq]
	// cur is the completion callback of the request in service;
	// completeFn is the service-end event handler, bound once at
	// construction so entering service allocates no closure.
	cur        func()
	completeFn func()
	// slow multiplies service times (>= 1); fault injection uses it to
	// model transient stragglers (a degraded disk or congested NIC).
	slow float64

	// Busy accumulates total service time, for utilization metrics.
	Busy int64
}

// NewDevice creates a device with the given bandwidth in bytes per
// second of simulated time.
func NewDevice(eng *Engine, bytesPerSec int64) *Device {
	d := &Device{eng: eng, bytesPerSec: bytesPerSec, slow: 1}
	d.completeFn = d.complete
	return d
}

// SetSlowdown sets the service-time multiplier; factors below 1 are
// clamped to 1 (the device never speeds up past its bandwidth). It
// affects requests entering service from now on, not one in flight.
func (d *Device) SetSlowdown(f float64) {
	if f < 1 {
		f = 1
	}
	d.slow = f
}

// Slowdown returns the current service-time multiplier.
func (d *Device) Slowdown() float64 { return d.slow }

// Transfer enqueues a request for the given byte count; done fires
// when the transfer completes. Zero-byte requests complete in a fresh
// immediate event.
func (d *Device) Transfer(bytes int64, prio Priority, done func()) {
	if bytes <= 0 {
		d.eng.After(0, done)
		return
	}
	req := ioReq{bytes: bytes, done: done}
	if prio == Demand {
		d.demand.push(req)
	} else {
		d.background.push(req)
	}
	d.serve()
}

func (d *Device) serve() {
	if d.busy {
		return
	}
	var req ioReq
	switch {
	case d.demand.len() > 0:
		req = d.demand.pop()
	case d.background.len() > 0:
		req = d.background.pop()
	default:
		return
	}
	d.busy = true
	dur := req.bytes * 1_000_000 / d.bytesPerSec
	if d.slow > 1 {
		dur = int64(float64(dur) * d.slow)
	}
	if dur < 1 {
		dur = 1
	}
	d.Busy += dur
	d.cur = req.done
	d.eng.After(dur, d.completeFn)
}

// complete ends the in-service request: identical ordering to the old
// per-request closure (clear busy, fire the callback — which may
// enqueue and immediately start new work — then serve the queue).
func (d *Device) complete() {
	done := d.cur
	d.cur = nil
	d.busy = false
	done()
	d.serve()
}

// QueueLen returns pending request counts (test helper).
func (d *Device) QueueLen() (demand, background int) {
	return d.demand.len(), d.background.len()
}
