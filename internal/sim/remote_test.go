package sim

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/policy"
)

// threeNodeCluster forces home/reader mismatches: blocks live on
// partition mod 3, tasks of a 2-task stage on task-index mod 3.
func threeNodeCluster(cache int64) cluster.Config {
	return cluster.Config{
		Name: "three", Nodes: 3, CoresPerNode: 1,
		CacheBytes:      cache,
		DiskBytesPerSec: 1 << 20,
		NetBytesPerSec:  1 << 20,
	}
}

// remoteReadGraph: data has 6 partitions; the reading stage has only 2
// tasks, so four of the six blocks are read by a task on a different
// node than the block's home.
func remoteReadGraph() (*dag.Graph, *dag.RDD) {
	g := dag.New()
	data := g.Source("in", 6, 1<<10, dag.WithCost(10)).
		Map("parse", dag.WithCost(10)).Persist(block.MemoryAndDisk)
	g.Count(data) // creates all six blocks at their homes
	// A 2-task reader: narrow chain onto a 2-partition RDD whose
	// frontier is the 6-partition cached data.
	reader := data.Map("use", dag.WithPartitions(2), dag.WithCost(10))
	g.Count(reader)
	return g, data
}

func TestRemoteHitsMoveBytesOverNIC(t *testing.T) {
	g, _ := remoteReadGraph()
	run, err := Run(g, threeNodeCluster(1<<20), policy.NewLRU(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	if run.Misses != 0 {
		t.Fatalf("unexpected misses: %d", run.Misses)
	}
	// Blocks 0..5: reader task = q mod 2 on node (q mod 2); home = q
	// mod 3. Remote for q = 2,3,4,5 -> 4 blocks of 1 KiB over the NIC.
	if run.NetReadBytes != 4<<10 {
		t.Errorf("remote hit bytes = %d, want %d", run.NetReadBytes, 4<<10)
	}
}

func TestRemotePromotesChargeReaderNIC(t *testing.T) {
	// One-block cache: all reads miss and promote; the remote ones go
	// over the network instead of the local disk.
	g, _ := remoteReadGraph()
	run, err := Run(g, threeNodeCluster(1<<10), policy.NewLRU(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	if run.DiskPromotes == 0 {
		t.Fatal("expected promote misses")
	}
	if run.NetReadBytes < 4<<10 {
		t.Errorf("remote promotes moved %d bytes over NIC, want at least %d", run.NetReadBytes, 4<<10)
	}
}

func TestHomePlacementIsPartitionModNodes(t *testing.T) {
	g, data := remoteReadGraph()
	s, err := New(g, threeNodeCluster(1<<20), policy.NewLRU(), "place")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for q := 0; q < data.NumPartitions; q++ {
		home := q % 3
		if !s.nodes[home].mem.Contains(data.Block(q)) {
			t.Errorf("block %d not resident on home node %d", q, home)
		}
		for n := 0; n < 3; n++ {
			if n != home && s.nodes[n].mem.Contains(data.Block(q)) {
				t.Errorf("block %d resident on non-home node %d", q, n)
			}
		}
	}
}
