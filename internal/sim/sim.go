package sim

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
)

// Options tunes a simulation beyond the cluster config.
type Options struct {
	// Fault is the fault-injection and recovery schedule: node crashes
	// (with optional rejoin), stragglers, block loss/corruption, flaky
	// remote fetches with bounded retry, and the replication factor
	// for cached and shuffle blocks. nil injects nothing. It replaces
	// the old single FailNode/FailAtStage pair (see fault.Crash for
	// the equivalent one-event schedule).
	Fault *fault.Schedule
}

// DefaultOptions returns options with fault injection disabled.
func DefaultOptions() Options { return Options{} }

// node bundles one worker's stores and device queues.
type node struct {
	id      int
	mem     *cluster.MemoryStore
	disk    *cluster.DiskStore
	pol     policy.Policy
	cpu     *Slots
	diskDev *Device
	netDev  *Device

	// down marks a crashed node that has not yet rejoined: it runs no
	// tasks and accepts no inserts until rejoinAt.
	down     bool
	rejoinAt int // stageIx at which the node rejoins (valid while down)
	// slowUntil ends the node's current straggler window (0 = none).
	slowUntil int
}

// Simulation executes one application DAG on one simulated cluster
// under one cache policy. Create with New, run once with Run.
type Simulation struct {
	eng     *Engine
	cfg     cluster.Config
	g       *dag.Graph
	factory policy.Factory
	opts    Options

	nodes []*node
	run   metrics.Run

	// created marks RDDs whose blocks have been materialized, which
	// turns them into read boundaries for later stages.
	created map[int]bool
	// prefetched marks blocks brought in by prefetch and not yet hit,
	// for used/wasted accounting.
	prefetched map[block.ID]bool
	// inFlight guards against duplicate prefetch orders for a block.
	inFlight map[block.ID]bool
	// corrupt marks blocks whose home-node disk copy has rotted (fault
	// injection); detection happens at the next demand read.
	corrupt map[block.ID]bool
	// faultsAt indexes the schedule's events by executed-stage index.
	faultsAt map[int][]fault.Event
	// frng draws the remote-fetch failure stream (seeded, splitmix64).
	frng *fault.RNG

	finish   int64
	stageIx  int // count of executed stages, for failure injection
	ran      bool
	timeline []metrics.StageSpan

	// bus is the run's observability event bus (internal/obs). It exists
	// on every simulation but stays disabled — and free — until
	// something subscribes (EnableTrace, Observe, or a direct Bus call).
	bus *obs.Bus
	rec *obs.Recorder
	agg *obs.Aggregator
}

// New assembles a simulation. The factory mints one policy per node;
// cluster-aware factories are attached to the control surface.
func New(g *dag.Graph, cfg cluster.Config, factory policy.Factory, workload string) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid DAG: %w", err)
	}
	s := &Simulation{
		eng:        NewEngine(),
		cfg:        cfg,
		g:          g,
		factory:    factory,
		opts:       DefaultOptions(),
		created:    map[int]bool{},
		prefetched: map[block.ID]bool{},
		inFlight:   map[block.ID]bool{},
		corrupt:    map[block.ID]bool{},
		faultsAt:   map[int][]fault.Event{},
		bus:        obs.New(),
	}
	s.bus.SetClock(s.eng.Now)
	if at, ok := factory.(obs.Attacher); ok {
		at.AttachBus(s.bus)
	}
	s.run.Workload = workload
	s.run.Policy = factory.Name()
	for i := 0; i < cfg.Nodes; i++ {
		pol := factory.NewNodePolicy(i)
		s.nodes = append(s.nodes, &node{
			id:      i,
			mem:     cluster.NewMemoryStore(cfg.CacheBytes, pol),
			disk:    cluster.NewDiskStore(),
			pol:     pol,
			cpu:     NewSlots(s.eng, cfg.CoresPerNode),
			diskDev: NewDevice(s.eng, cfg.DiskBytesPerSec),
			netDev:  NewDevice(s.eng, cfg.NetBytesPerSec),
		})
	}
	if ca, ok := factory.(policy.ClusterAware); ok {
		ca.Attach(clusterOps{s})
	}
	return s, nil
}

// SetOptions replaces the simulation options (before Run), validating
// the fault schedule against the cluster. The per-stage event index
// and the seeded fetch-failure RNG are rebuilt here so two simulations
// given equal schedules replay identically.
func (s *Simulation) SetOptions(o Options) error {
	if s.ran {
		return fmt.Errorf("sim: SetOptions after Run")
	}
	if err := o.Fault.Validate(len(s.nodes)); err != nil {
		return err
	}
	s.opts = o
	s.faultsAt = map[int][]fault.Event{}
	if o.Fault != nil {
		for _, ev := range o.Fault.Events {
			s.faultsAt[ev.Stage] = append(s.faultsAt[ev.Stage], ev)
		}
		s.frng = fault.NewRNG(o.Fault.Seed)
	}
	return nil
}

// Run executes the application to completion and returns its metrics.
// A Simulation is single-use.
func (s *Simulation) Run() metrics.Run {
	if s.ran {
		panic("sim: Simulation is single-use; create a new one per run")
	}
	s.ran = true
	s.eng.After(0, func() { s.startJob(0) })
	s.run.WallTime = s.eng.Run()
	s.run.JCT = s.finish
	s.noteUnfiredFaults()
	for _, n := range s.nodes {
		s.run.DiskBusy += n.diskDev.Busy
		s.run.NetBusy += n.netDev.Busy
		if s.agg != nil {
			s.agg.SetNodeBusy(n.id, n.diskDev.Busy, n.netDev.Busy)
		}
	}
	return s.run
}

// Bus exposes the run's event bus for custom subscribers (before Run).
func (s *Simulation) Bus() *obs.Bus { return s.bus }

// Observe attaches (once) and returns the run's streaming aggregator:
// per-stage and per-node statistics, timeline lanes, and the four run
// histograms. Call before Run; read the aggregates after.
func (s *Simulation) Observe() *obs.Aggregator {
	if s.agg == nil {
		s.agg = obs.NewAggregator()
		s.agg.Attach(s.bus)
	}
	return s.agg
}

// Timeline returns the per-stage spans of the completed run, in
// execution order.
func (s *Simulation) Timeline() []metrics.StageSpan { return s.timeline }

// NodeStats is one worker's view of the run, for locality and balance
// analysis.
type NodeStats struct {
	Node          int
	CacheUsed     int64 // bytes resident at the end
	CacheBlocks   int
	DiskBlocks    int
	ReplicaBlocks int   // replica copies held for blocks homed elsewhere
	DiskBusy      int64 // µs
	NetBusy       int64 // µs
	Evictions     int64
	Down          bool // still down (crashed, never rejoined) at the end
}

// PerNode returns each worker's statistics after the run.
func (s *Simulation) PerNode() []NodeStats {
	out := make([]NodeStats, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = NodeStats{
			Node:          i,
			CacheUsed:     n.mem.Used(),
			CacheBlocks:   n.mem.Len(),
			DiskBlocks:    n.disk.Len(),
			ReplicaBlocks: n.disk.ReplicaLen(),
			DiskBusy:      n.diskDev.Busy,
			NetBusy:       n.netDev.Busy,
			Evictions:     n.mem.Evictions,
			Down:          n.down,
		}
	}
	return out
}

// Audit cross-checks internal consistency after a completed run: store
// occupancy never above capacity, prefetch bookkeeping fully drained,
// and every still-tracked prefetched block actually resident. Tests
// call it after integration runs; it returns the first violation.
func (s *Simulation) Audit() error {
	if !s.ran {
		return fmt.Errorf("sim: Audit before Run")
	}
	for _, n := range s.nodes {
		if n.mem.Used() > n.mem.Capacity() {
			return fmt.Errorf("sim: node %d over capacity: %d > %d", n.id, n.mem.Used(), n.mem.Capacity())
		}
		if n.mem.Used() < 0 {
			return fmt.Errorf("sim: node %d negative occupancy %d", n.id, n.mem.Used())
		}
	}
	if len(s.inFlight) != 0 {
		return fmt.Errorf("sim: %d prefetches still in flight after drain", len(s.inFlight))
	}
	for id := range s.prefetched {
		if !s.nodes[cluster.HomeNode(id, len(s.nodes))].mem.Contains(id) {
			return fmt.Errorf("sim: prefetched block %v tracked but not resident", id)
		}
	}
	if s.run.PrefetchUsed+s.run.PrefetchWasted+int64(len(s.prefetched)) != s.run.PrefetchIssued {
		return fmt.Errorf("sim: prefetch ledger broken: used %d + wasted %d + pending %d != issued %d",
			s.run.PrefetchUsed, s.run.PrefetchWasted, len(s.prefetched), s.run.PrefetchIssued)
	}
	return nil
}

// Run is the convenience entry point: build and run in one call.
func Run(g *dag.Graph, cfg cluster.Config, factory policy.Factory, workload string) (metrics.Run, error) {
	s, err := New(g, cfg, factory, workload)
	if err != nil {
		return metrics.Run{}, err
	}
	return s.Run(), nil
}

func (s *Simulation) startJob(i int) {
	if i >= len(s.g.Jobs) {
		s.finish = s.eng.Now()
		return
	}
	job := s.g.Jobs[i]
	s.run.Jobs++
	s.run.StagesSkipped += job.SkippedStages()
	if jo, ok := s.factory.(policy.JobObserver); ok {
		jo.OnJobSubmit(job)
	}
	s.startStage(job, 0, func() { s.startJob(i + 1) })
}

func (s *Simulation) startStage(job *dag.Job, k int, done func()) {
	if k >= len(job.NewStages) {
		done()
		return
	}
	st := job.NewStages[k]
	// Stage context is set — and the boundary announced — before fault
	// injection and policy callbacks run, so every event they emit
	// carries the stage that is about to execute.
	s.bus.SetStage(st.ID, job.ID)
	s.bus.Emit(obs.Ev(obs.KindStageStart, obs.ClusterScope).
		WithValue(int64(st.NumTasks)).WithVerdict(st.Kind.String()))
	s.applyFaults()
	s.stageIx++
	if so, ok := s.factory.(policy.StageObserver); ok {
		so.OnStageStart(st.ID, job.ID)
	}
	s.run.StagesExecuted++
	span := metrics.StageSpan{
		StageID: st.ID, JobID: job.ID, Kind: st.Kind.String(),
		Tasks: st.NumTasks, Start: s.eng.Now(),
	}
	s.execStage(st, func() {
		span.End = s.eng.Now()
		s.timeline = append(s.timeline, span)
		s.bus.Emit(obs.Ev(obs.KindStageEnd, obs.ClusterScope).
			WithValue(span.End - span.Start))
		s.startStage(job, k+1, done)
	})
}

// taskWork is everything one task does: demand disk I/O, demand
// network I/O, compute, a shuffle write, and cache inserts at the end.
type taskWork struct {
	diskBytes    int64
	netBytes     int64
	computeUs    int64
	shuffleWrite int64
	inserts      []insert
}

// insert is a cache write targeted at a block's home node.
type insert struct {
	node int
	info block.Info
}

func (s *Simulation) execStage(st *dag.Stage, done func()) {
	works := s.planStage(st)
	remaining := len(works)
	for p := range works {
		p := p
		w := works[p]
		n := s.execNode(p)
		n.cpu.Acquire(func() {
			s.runTask(n, w, func() {
				n.cpu.Release()
				remaining--
				if remaining == 0 {
					done()
				}
			})
		})
	}
}

func (s *Simulation) runTask(n *node, w taskWork, done func()) {
	s.run.TasksExecuted++
	s.run.DiskReadBytes += w.diskBytes
	s.run.NetReadBytes += w.netBytes
	s.bus.Emit(obs.Ev(obs.KindTaskStart, n.id).WithValue(w.computeUs))
	n.diskDev.Transfer(w.diskBytes, Demand, func() {
		n.netDev.Transfer(w.netBytes, Demand, func() {
			s.eng.After(w.computeUs, func() {
				s.run.DiskWriteBytes += w.shuffleWrite
				n.diskDev.Transfer(w.shuffleWrite, Demand, func() {
					for _, ins := range w.inserts {
						s.insertBlock(ins)
					}
					s.bus.Emit(obs.Ev(obs.KindTaskEnd, n.id))
					done()
				})
			})
		})
	})
}

// insertBlock places a newly materialized (or promoted) block into its
// home node's memory store, spilling a write-behind disk copy for
// MEMORY_AND_DISK blocks so later misses and prefetches can read it
// back without recomputation. Under replication, R-1 replica copies
// are shipped to the next nodes' disks at background priority. While
// the home node is down (crashed, awaiting rejoin) the insert is
// dropped: the block stays uncached and later references recompute it.
func (s *Simulation) insertBlock(ins insert) {
	n := s.nodes[ins.node]
	if n.down {
		return
	}
	if ins.info.Level == block.MemoryAndDisk && !s.diskHas(n, ins.info.ID) {
		n.disk.Put(ins.info.ID, ins.info.Size)
		delete(s.corrupt, ins.info.ID)
		s.run.DiskWriteBytes += ins.info.Size
		n.diskDev.Transfer(ins.info.Size, Background, func() {})
	}
	evicted, ok := n.mem.Put(ins.info)
	// Emit the insert only when the store accepted it: a refused Put
	// (oversized block, or every resident block protected) must not put
	// a phantom residency claim on the trace.
	if ok {
		s.bus.Emit(obs.BlockEv(obs.KindInsert, ins.node, ins.info.ID, ins.info.Size))
	}
	s.noteEvictions(evicted)
	if ok {
		s.replicate(n, ins.info)
	}
	s.notePeak()
}

// notePeak updates the cluster-wide occupancy high-water mark.
func (s *Simulation) notePeak() {
	var used int64
	for _, n := range s.nodes {
		used += n.mem.Used()
	}
	if used > s.run.PeakCacheUsed {
		s.run.PeakCacheUsed = used
	}
}

func (s *Simulation) noteEvictions(evicted []block.Info) {
	s.run.Evictions += int64(len(evicted))
	for _, ev := range evicted {
		s.bus.Emit(obs.BlockEv(obs.KindEvict, cluster.HomeNode(ev.ID, len(s.nodes)), ev.ID, ev.Size))
		if s.prefetched[ev.ID] {
			s.run.PrefetchWasted++
			delete(s.prefetched, ev.ID)
		}
	}
}
