package sim

import (
	"bytes"
	"compress/gzip"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/refdist"
	"mrdspark/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// sccTraceBytes runs the full SCC workload under full MRD with tracing
// enabled and returns the JSONL trace bytes.
func sccTraceBytes(t testing.TB) []byte {
	t.Helper()
	cfg := cluster.Main().WithCache(160 << 20)
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(spec.Graph,
		core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{})
	s, err := New(spec.Graph, cfg, mgr, "SCC")
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	s.Run()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSCCTraceMatchesGolden is the cross-engine equivalence guard: the
// JSONL trace of a full SCC simulation must be byte-identical to the
// golden recorded with the original container/heap event engine. Any
// change to event ordering — engine internals, tie-breaking, policy
// decision order — shows up here as a byte diff. Regenerate with
// `go test ./internal/sim -run TestSCCTraceMatchesGolden -update-golden`
// only when an ordering change is intended and understood.
func TestSCCTraceMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	got := sccTraceBytes(t)
	path := filepath.Join("testdata", "scc_mrd_trace.jsonl.gz")

	if *updateGolden {
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(got); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d events, %d raw bytes, %d compressed",
			bytes.Count(got, []byte("\n")), len(got), buf.Len())
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden missing (run with -update-golden): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s\n(%d vs %d lines)",
					i+1, gl[i], wl[i], len(gl), len(wl))
			}
		}
		t.Fatalf("trace length differs: got %d lines, want %d", len(gl), len(wl))
	}
}
