package block

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	tests := []struct {
		id   ID
		want string
	}{
		{ID{RDD: 0, Partition: 0}, "rdd_0_0"},
		{ID{RDD: 7, Partition: 12}, "rdd_7_12"},
		{ID{RDD: 103, Partition: 5}, "rdd_103_5"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestIDLess(t *testing.T) {
	tests := []struct {
		a, b ID
		want bool
	}{
		{ID{1, 0}, ID{2, 0}, true},
		{ID{2, 0}, ID{1, 0}, false},
		{ID{1, 3}, ID{1, 4}, true},
		{ID{1, 4}, ID{1, 3}, false},
		{ID{1, 3}, ID{1, 3}, false},
		{ID{1, 9}, ID{2, 0}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestIDLessIsStrictWeakOrdering(t *testing.T) {
	// Irreflexive and asymmetric over random pairs; total over
	// distinct IDs.
	f := func(a, b ID) bool {
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDSortOrder(t *testing.T) {
	ids := []ID{{3, 1}, {0, 5}, {3, 0}, {0, 0}, {1, 2}}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	want := []ID{{0, 0}, {0, 5}, {1, 2}, {3, 0}, {3, 1}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestStorageLevelString(t *testing.T) {
	if got := MemoryOnly.String(); got != "MEMORY_ONLY" {
		t.Errorf("MemoryOnly.String() = %q", got)
	}
	if got := MemoryAndDisk.String(); got != "MEMORY_AND_DISK" {
		t.Errorf("MemoryAndDisk.String() = %q", got)
	}
	if got := StorageLevel(42).String(); got != "StorageLevel(42)" {
		t.Errorf("unknown level String() = %q", got)
	}
}

func TestInfoCarriesIdentity(t *testing.T) {
	info := Info{ID: ID{RDD: 4, Partition: 2}, Size: 1 << 20, Level: MemoryAndDisk}
	if info.ID.RDD != 4 || info.ID.Partition != 2 || info.Size != 1<<20 || info.Level != MemoryAndDisk {
		t.Errorf("Info fields corrupted: %+v", info)
	}
}
