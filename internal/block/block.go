// Package block defines the identity and metadata of cacheable data
// blocks. A block is one partition of an RDD, mirroring Spark's
// rdd_<rddID>_<partition> block naming. Blocks are the unit of caching,
// eviction and prefetching throughout the system.
package block

import "fmt"

// ID identifies a single RDD partition block, the unit of cache
// management. It corresponds to Spark's RDDBlockId.
type ID struct {
	RDD       int // the owning RDD's ID
	Partition int // partition index within the RDD
}

// String renders the ID in Spark's canonical block-name format.
func (id ID) String() string {
	return fmt.Sprintf("rdd_%d_%d", id.RDD, id.Partition)
}

// ParseID parses the canonical rdd_<rddID>_<partition> block name back
// into an ID — the inverse of String, used when replaying traces.
func ParseID(s string) (ID, error) {
	var id ID
	if _, err := fmt.Sscanf(s, "rdd_%d_%d", &id.RDD, &id.Partition); err != nil {
		return ID{}, fmt.Errorf("block: bad block name %q: %v", s, err)
	}
	return id, nil
}

// Less orders IDs first by RDD, then by partition. It provides the
// deterministic tiebreak order used by policies and tests.
func (id ID) Less(other ID) bool {
	if id.RDD != other.RDD {
		return id.RDD < other.RDD
	}
	return id.Partition < other.Partition
}

// StorageLevel describes where a block's bytes may live, mirroring
// Spark's StorageLevel (simplified to the levels the paper exercises).
type StorageLevel int

const (
	// MemoryOnly blocks live in the memory store and are dropped
	// (and later recomputed) when evicted. Spark's MEMORY_ONLY.
	MemoryOnly StorageLevel = iota
	// MemoryAndDisk blocks are spilled to the local disk store on
	// eviction and can be reloaded without recomputation.
	MemoryAndDisk
)

// String returns the Spark-style name of the storage level.
func (l StorageLevel) String() string {
	switch l {
	case MemoryOnly:
		return "MEMORY_ONLY"
	case MemoryAndDisk:
		return "MEMORY_AND_DISK"
	default:
		return fmt.Sprintf("StorageLevel(%d)", int(l))
	}
}

// Info carries the immutable metadata of a block known to the block
// managers: its size and the storage level requested by the program.
type Info struct {
	ID    ID
	Size  int64 // bytes
	Level StorageLevel
}
