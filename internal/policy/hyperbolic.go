package policy

import (
	"mrdspark/internal/block"
)

// Hyperbolic implements hyperbolic caching (Blankstein et al., USENIX
// ATC 2017), one of the DAG-oblivious policies the paper's §2 cites as
// orthogonal related work. Each block's priority is its access
// frequency divided by its time in cache — blocks that earn few hits
// per unit of residence are evicted first. The original system samples
// candidates for O(1) eviction; at simulator scale we evaluate the
// priority exactly, which only makes the baseline stronger.
//
// Time is measured in accesses observed by the node (a logical clock),
// which is how the original evaluates priorities without wall-clock
// dependence.
type Hyperbolic struct{}

// NewHyperbolic returns the hyperbolic-caching factory.
func NewHyperbolic() *Hyperbolic { return &Hyperbolic{} }

// Name implements Factory.
func (*Hyperbolic) Name() string { return "Hyperbolic" }

// NewNodePolicy implements Factory.
func (*Hyperbolic) NewNodePolicy(int) Policy {
	return &hyperbolicNode{entries: map[block.ID]*hypEntry{}}
}

type hypEntry struct {
	hits    int
	addedAt int64
}

type hyperbolicNode struct {
	clock   int64
	entries map[block.ID]*hypEntry
}

func (n *hyperbolicNode) OnAdd(id block.ID) {
	n.clock++
	n.entries[id] = &hypEntry{hits: 1, addedAt: n.clock}
}

func (n *hyperbolicNode) OnAccess(id block.ID) {
	n.clock++
	if e, ok := n.entries[id]; ok {
		e.hits++
	}
}

func (n *hyperbolicNode) OnRemove(id block.ID) {
	delete(n.entries, id)
}

// priority returns hits per unit of residence time. Fresh blocks
// (residence 0) get their raw hit count — effectively protected, as in
// the original.
func (n *hyperbolicNode) priority(e *hypEntry) float64 {
	age := n.clock - e.addedAt
	if age <= 0 {
		age = 1
	}
	return float64(e.hits) / float64(age)
}

func (n *hyperbolicNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestP := 0.0
	for id, e := range n.entries {
		if !evictable(id) {
			continue
		}
		p := n.priority(e)
		// Deterministic tiebreak on the block ID.
		if !found || p < bestP || (p == bestP && id.Less(best)) {
			best, bestP, found = id, p, true
		}
	}
	return best, found
}
