package policy

import (
	"testing"

	"mrdspark/internal/block"
)

// op is one step of a scripted access pattern.
type op struct {
	kind string // "add", "access", "remove"
	id   block.ID
}

func opAdd(r, p int) op    { return op{"add", bid(r, p)} }
func opAccess(r, p int) op { return op{"access", bid(r, p)} }
func opRemove(r, p int) op { return op{"remove", bid(r, p)} }

// drain applies the script to a fresh node policy and then evicts until
// the node is empty, returning the full eviction order — the complete
// preference ranking the policy assigns to the resident set.
func drain(t *testing.T, n Policy, ops []op) []block.ID {
	t.Helper()
	for _, o := range ops {
		switch o.kind {
		case "add":
			n.OnAdd(o.id)
		case "access":
			n.OnAccess(o.id)
		case "remove":
			n.OnRemove(o.id)
		}
	}
	var got []block.ID
	for {
		v, ok := n.Victim(all)
		if !ok {
			return got
		}
		got = append(got, v)
		n.OnRemove(v)
	}
}

// TestEvictionOrder scripts an access pattern per policy and asserts
// the complete eviction order, LFU, GDS and hyperbolic side by side.
func TestEvictionOrder(t *testing.T) {
	costByRDD := func(costs map[int]float64) func(block.ID) float64 {
		return func(id block.ID) float64 { return costs[id.RDD] }
	}
	cases := []struct {
		name    string
		factory Factory
		ops     []op
		order   []block.ID
	}{
		{
			name:    "LFU by frequency",
			factory: NewLFU(),
			ops: []op{
				opAdd(1, 0), opAdd(2, 0), opAdd(3, 0),
				opAccess(2, 0), opAccess(2, 0), opAccess(3, 0),
			},
			order: []block.ID{bid(1, 0), bid(3, 0), bid(2, 0)},
		},
		{
			name:    "LFU ties break by least recent use",
			factory: NewLFU(),
			ops: []op{
				opAdd(1, 0), opAdd(2, 0),
				opAccess(2, 0), opAccess(1, 0), // equal counts; 2 is older
			},
			order: []block.ID{bid(2, 0), bid(1, 0)},
		},
		{
			name:    "LFU forgets removed blocks",
			factory: NewLFU(),
			ops: []op{
				opAdd(1, 0), opAdd(2, 0), opAccess(1, 0),
				opRemove(1, 0), opAdd(3, 0),
			},
			order: []block.ID{bid(2, 0), bid(3, 0)},
		},
		{
			name:    "GDS by restore cost with inflation",
			factory: &GDS{CostOf: costByRDD(map[int]float64{1: 4, 2: 2, 3: 1})},
			// Credits 4, 2, 1: the cheapest-to-restore block goes first,
			// and inflation after each eviction never reorders the rest.
			ops:   []op{opAdd(1, 0), opAdd(2, 0), opAdd(3, 0)},
			order: []block.ID{bid(3, 0), bid(2, 0), bid(1, 0)},
		},
		{
			name:    "GDS uniform costs tie-break by block ID",
			factory: NewGDS(),
			ops:     []op{opAdd(2, 1), opAdd(1, 0), opAdd(1, 1)},
			order:   []block.ID{bid(1, 0), bid(1, 1), bid(2, 1)},
		},
		{
			name:    "hyperbolic by hits per residence time",
			factory: NewHyperbolic(),
			ops: []op{
				opAdd(1, 0), opAdd(2, 0), opAdd(3, 0),
				opAccess(1, 0), opAccess(1, 0), opAccess(1, 0), opAccess(1, 0),
				opAccess(2, 0), opAccess(2, 0),
			},
			// Equal ages to within the clock skew of insertion order;
			// hit counts 5, 3, 1 rank the drain.
			order: []block.ID{bid(3, 0), bid(2, 0), bid(1, 0)},
		},
		{
			name:    "hyperbolic old idle block loses to young one",
			factory: NewHyperbolic(),
			ops: []op{
				opAdd(1, 0),
				// Unrelated traffic ages block 1 without hits.
				opAdd(9, 0), opAccess(9, 0), opAccess(9, 0), opAccess(9, 0),
				opAccess(9, 0), opAccess(9, 0), opAccess(9, 0), opRemove(9, 0),
				opAdd(2, 0),
			},
			order: []block.ID{bid(1, 0), bid(2, 0)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := drain(t, tc.factory.NewNodePolicy(0), tc.ops)
			if len(got) != len(tc.order) {
				t.Fatalf("evicted %v, want %v", got, tc.order)
			}
			for i := range got {
				if got[i] != tc.order[i] {
					t.Fatalf("eviction %d = %v, want %v (full order %v vs %v)",
						i, got[i], tc.order[i], got, tc.order)
				}
			}
		})
	}
}

// TestVictimRespectsFilter pins the evictable-filter contract for the
// policies above: a protected preferred victim falls through to the
// next choice, and a fully protected node yields no victim.
func TestVictimRespectsFilter(t *testing.T) {
	factories := []Factory{NewLFU(), NewGDS(), NewHyperbolic()}
	for _, f := range factories {
		t.Run(f.Name(), func(t *testing.T) {
			n := f.NewNodePolicy(0)
			low, high := bid(1, 0), bid(2, 0)
			n.OnAdd(low)
			n.OnAdd(high)
			n.OnAccess(high) // every policy now prefers evicting low
			v, ok := n.Victim(func(id block.ID) bool { return id != low })
			if !ok || v != high {
				t.Errorf("filtered victim = %v, want %v", v, high)
			}
			if _, ok := n.Victim(func(block.ID) bool { return false }); ok {
				t.Error("victim despite nothing evictable")
			}
		})
	}
}

// TestRecencyListOrder covers the shared LRU ordering helper the same
// way: scripted touches, then a full drain through lruVictim.
func TestRecencyListOrder(t *testing.T) {
	cases := []struct {
		name  string
		ops   []op // kind "add" means touch here
		order []block.ID
	}{
		{
			name:  "insertion order",
			ops:   []op{opAdd(1, 0), opAdd(2, 0), opAdd(3, 0)},
			order: []block.ID{bid(1, 0), bid(2, 0), bid(3, 0)},
		},
		{
			name:  "touch refreshes recency",
			ops:   []op{opAdd(1, 0), opAdd(2, 0), opAdd(1, 0)},
			order: []block.ID{bid(2, 0), bid(1, 0)},
		},
		{
			name:  "remove drops the entry",
			ops:   []op{opAdd(1, 0), opAdd(2, 0), opAdd(3, 0), opRemove(2, 0)},
			order: []block.ID{bid(1, 0), bid(3, 0)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newRecencyList()
			for _, o := range tc.ops {
				switch o.kind {
				case "add":
					l.touch(o.id)
				case "remove":
					l.remove(o.id)
				}
			}
			if l.len() != len(tc.order) {
				t.Fatalf("len = %d, want %d", l.len(), len(tc.order))
			}
			var got []block.ID
			for {
				v, ok := l.lruVictim(all)
				if !ok {
					break
				}
				got = append(got, v)
				if !l.contains(v) {
					t.Fatalf("victim %v not tracked", v)
				}
				l.remove(v)
			}
			for i := range tc.order {
				if i >= len(got) || got[i] != tc.order[i] {
					t.Fatalf("drain = %v, want %v", got, tc.order)
				}
			}
		})
	}
}
