package policy

import (
	"math/rand"
	"testing"

	"mrdspark/internal/block"
)

func bid(rdd, part int) block.ID { return block.ID{RDD: rdd, Partition: part} }

func all(block.ID) bool { return true }

func TestLRUVictimIsLeastRecentlyUsed(t *testing.T) {
	n := NewLRU().NewNodePolicy(0)
	n.OnAdd(bid(1, 0))
	n.OnAdd(bid(2, 0))
	n.OnAdd(bid(3, 0))
	n.OnAccess(bid(1, 0)) // order now: 1, 3, 2 (MRU..LRU: 1,3,2)

	v, ok := n.Victim(all)
	if !ok || v != bid(2, 0) {
		t.Errorf("victim = %v, want rdd_2_0", v)
	}
	n.OnRemove(v)
	v, ok = n.Victim(all)
	if !ok || v != bid(3, 0) {
		t.Errorf("second victim = %v, want rdd_3_0", v)
	}
}

func TestLRUVictimRespectsFilter(t *testing.T) {
	n := NewLRU().NewNodePolicy(0)
	n.OnAdd(bid(1, 0))
	n.OnAdd(bid(2, 0))
	v, ok := n.Victim(func(id block.ID) bool { return id != bid(1, 0) })
	if !ok || v != bid(2, 0) {
		t.Errorf("victim = %v, want rdd_2_0", v)
	}
	if _, ok := n.Victim(func(block.ID) bool { return false }); ok {
		t.Error("victim found with nothing evictable")
	}
}

func TestLRUEmptyStore(t *testing.T) {
	n := NewLRU().NewNodePolicy(0)
	if _, ok := n.Victim(all); ok {
		t.Error("victim from empty policy")
	}
}

func TestFIFOIgnoresAccesses(t *testing.T) {
	n := NewFIFO().NewNodePolicy(0)
	n.OnAdd(bid(1, 0))
	n.OnAdd(bid(2, 0))
	n.OnAccess(bid(1, 0)) // must not rescue 1
	v, ok := n.Victim(all)
	if !ok || v != bid(1, 0) {
		t.Errorf("FIFO victim = %v, want rdd_1_0 (insertion order)", v)
	}
}

func TestLFUVictimLowestCountThenLRU(t *testing.T) {
	n := NewLFU().NewNodePolicy(0)
	n.OnAdd(bid(1, 0))
	n.OnAdd(bid(2, 0))
	n.OnAdd(bid(3, 0))
	n.OnAccess(bid(1, 0))
	n.OnAccess(bid(1, 0))
	n.OnAccess(bid(2, 0))
	// counts: 1->2, 2->1, 3->0
	v, ok := n.Victim(all)
	if !ok || v != bid(3, 0) {
		t.Errorf("LFU victim = %v, want rdd_3_0", v)
	}
	n.OnRemove(bid(3, 0))
	v, _ = n.Victim(all)
	if v != bid(2, 0) {
		t.Errorf("next LFU victim = %v, want rdd_2_0", v)
	}
	// Tie: equal counts fall back to least-recent.
	n.OnAccess(bid(2, 0)) // counts now 1->2, 2->2
	v, _ = n.Victim(all)
	if v != bid(1, 0) {
		t.Errorf("LFU tie victim = %v, want least-recently-used rdd_1_0", v)
	}
}

// referenceLRU is an oracle implementation against which the list-based
// LRU is property-tested: victim = minimum last-access time.
type referenceLRU struct {
	clock int
	last  map[block.ID]int
}

func (r *referenceLRU) touch(id block.ID) {
	r.clock++
	r.last[id] = r.clock
}

func (r *referenceLRU) victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, bestT, found := block.ID{}, 0, false
	for id, tm := range r.last {
		if !evictable(id) {
			continue
		}
		if !found || tm < bestT {
			best, bestT, found = id, tm, true
		}
	}
	return best, found
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := NewLRU().NewNodePolicy(0)
		ref := &referenceLRU{last: map[block.ID]int{}}
		resident := map[block.ID]bool{}
		for op := 0; op < 300; op++ {
			id := bid(rng.Intn(5), rng.Intn(4))
			switch rng.Intn(4) {
			case 0, 1: // add or re-add
				if !resident[id] {
					n.OnAdd(id)
					ref.touch(id)
					resident[id] = true
				}
			case 2:
				if resident[id] {
					n.OnAccess(id)
					ref.touch(id)
				}
			case 3:
				if resident[id] && rng.Intn(2) == 0 {
					n.OnRemove(id)
					delete(ref.last, id)
					delete(resident, id)
				}
			}
			got, gok := n.Victim(all)
			want, wok := ref.victim(all)
			if gok != wok || (gok && got != want) {
				t.Fatalf("trial %d op %d: victim = %v/%v, want %v/%v", trial, op, got, gok, want, wok)
			}
		}
	}
}

func TestFactoriesMintIndependentNodes(t *testing.T) {
	f := NewLRU()
	a, b := f.NewNodePolicy(0), f.NewNodePolicy(1)
	a.OnAdd(bid(1, 0))
	if _, ok := b.Victim(all); ok {
		t.Error("node policies share state")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tt := range []struct {
		f    Factory
		want string
	}{
		{NewLRU(), "LRU"}, {NewFIFO(), "FIFO"}, {NewLFU(), "LFU"},
	} {
		if got := tt.f.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
