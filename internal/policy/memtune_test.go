package policy

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// fakeOps is a minimal ClusterOps for driving cluster-aware policies
// in isolation.
type fakeOps struct {
	nodes      int
	resident   map[block.ID]bool
	onDisk     map[block.ID]bool
	free       int64
	capacity   int64
	evicted    []block.ID
	prefetched []block.Info
}

func newFakeOps(nodes int, free, capacity int64) *fakeOps {
	return &fakeOps{
		nodes: nodes, free: free, capacity: capacity,
		resident: map[block.ID]bool{}, onDisk: map[block.ID]bool{},
	}
}

func (f *fakeOps) NumNodes() int                    { return f.nodes }
func (f *fakeOps) HomeNode(id block.ID) int         { return id.Partition % f.nodes }
func (f *fakeOps) Resident(_ int, id block.ID) bool { return f.resident[id] }
func (f *fakeOps) OnDisk(_ int, id block.ID) bool   { return f.onDisk[id] }
func (f *fakeOps) FreeBytes(int) int64              { return f.free }
func (f *fakeOps) CapacityBytes(int) int64          { return f.capacity }

func (f *fakeOps) Evict(_ int, id block.ID) bool {
	if !f.resident[id] {
		return false
	}
	delete(f.resident, id)
	f.evicted = append(f.evicted, id)
	return true
}

func (f *fakeOps) Prefetch(_ int, info block.Info) {
	f.prefetched = append(f.prefetched, info)
}

func (f *fakeOps) PrefetchOutcomes() (used, wasted int64) { return 0, 0 }

// memTuneGraph: data read by stage 1, extra read by stage 2.
func memTuneGraph() (*dag.Graph, *dag.RDD, *dag.RDD) {
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	data := src.Map("data").Cache()
	extra := src.Map("extra").Cache()
	g.Count(data.ZipPartitions("create", extra)) // stage 0 creates both
	g.Count(data.Map("u1"))                      // stage 1 reads data
	g.Count(extra.Map("u2"))                     // stage 2 reads extra
	return g, data, extra
}

func TestMemTuneWindowProtectsRunnableStage(t *testing.T) {
	g, data, extra := memTuneGraph()
	f := NewMemTune(g)
	f.SetPrefetch(false)
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))
	n.OnAdd(extra.Block(0))
	n.OnAccess(extra.Block(0)) // data would be the LRU victim

	stage1 := g.ExecutedStages()[1]
	f.OnStageStart(stage1.ID, 1)
	// The runnable stage needs data, so the window protects it:
	// extra is evicted first despite being more recently used.
	v, ok := n.Victim(all)
	if !ok || v != extra.Block(0) {
		t.Errorf("victim = %v, want extra (outside window)", v)
	}
}

func TestMemTuneFallsBackToLRUInsideWindow(t *testing.T) {
	g, data, _ := memTuneGraph()
	f := NewMemTune(g)
	f.SetPrefetch(false)
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))
	n.OnAdd(data.Block(1))
	n.OnAccess(data.Block(0))

	stage1 := g.ExecutedStages()[1]
	f.OnStageStart(stage1.ID, 1)
	// Everything resident is in the window: plain LRU applies.
	v, ok := n.Victim(all)
	if !ok || v != data.Block(1) {
		t.Errorf("victim = %v, want the LRU block within the window", v)
	}
}

func TestMemTunePrefetchesRunnableStageInputs(t *testing.T) {
	g, data, _ := memTuneGraph()
	f := NewMemTune(g)
	ops := newFakeOps(2, 10<<20, 20<<20)
	f.Attach(ops)
	// One of data's blocks is on disk and not resident.
	ops.onDisk[data.Block(0)] = true
	ops.onDisk[data.Block(1)] = true
	ops.resident[data.Block(1)] = true

	stage1 := g.ExecutedStages()[1]
	f.OnStageStart(stage1.ID, 1)
	if len(ops.prefetched) != 1 || ops.prefetched[0].ID != data.Block(0) {
		t.Errorf("prefetched = %v, want exactly data block 0", ops.prefetched)
	}
}

func TestMemTuneDoesNotForcePrefetch(t *testing.T) {
	g, data, _ := memTuneGraph()
	f := NewMemTune(g)
	ops := newFakeOps(2, 0, 20<<20) // no free memory
	f.Attach(ops)
	ops.onDisk[data.Block(0)] = true

	stage1 := g.ExecutedStages()[1]
	f.OnStageStart(stage1.ID, 1)
	if len(ops.prefetched) != 0 {
		t.Errorf("MemTune must only fill free space, prefetched %v", ops.prefetched)
	}
}

func TestMemTuneWithoutClusterOps(t *testing.T) {
	// Detached MemTune (no Attach) must still make eviction decisions
	// without panicking on stage starts.
	g, data, _ := memTuneGraph()
	f := NewMemTune(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))
	f.OnStageStart(g.ExecutedStages()[1].ID, 1)
	if _, ok := n.Victim(all); !ok {
		t.Error("no victim from detached MemTune")
	}
}

func TestMemTuneName(t *testing.T) {
	g, _, _ := memTuneGraph()
	if NewMemTune(g).Name() != "MemTune" {
		t.Error("name wrong")
	}
}
