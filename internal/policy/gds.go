package policy

import (
	"mrdspark/internal/block"
)

// GDS implements GreedyDual-Size (Cao & Irani, USENIX 1997), the
// classic size/cost-aware web-caching policy, as an additional
// DAG-oblivious baseline: each block carries credit
// H = L + cost/size, where L is an inflation value raised to the
// evicted block's credit on every eviction; the lowest-credit block
// goes first. With the per-byte restore cost our simulator charges,
// cost/size is constant and GDS degenerates gracefully toward
// LRU-with-aging — which is exactly the regime the experiments probe;
// callers can supply per-RDD costs to explore the general form.
type GDS struct {
	// CostOf returns the restore cost of a block (arbitrary units).
	// nil means uniform cost.
	CostOf func(id block.ID) float64
	// SizeOf returns the block's size; nil means uniform size.
	SizeOf func(id block.ID) float64
}

// NewGDS returns a GreedyDual-Size factory with uniform costs/sizes.
func NewGDS() *GDS { return &GDS{} }

// Name implements Factory.
func (*GDS) Name() string { return "GDS" }

// NewNodePolicy implements Factory.
func (g *GDS) NewNodePolicy(int) Policy {
	return &gdsNode{shared: g, credit: map[block.ID]float64{}}
}

type gdsNode struct {
	shared *GDS
	l      float64 // inflation
	credit map[block.ID]float64
}

func (n *gdsNode) value(id block.ID) float64 {
	cost, size := 1.0, 1.0
	if n.shared.CostOf != nil {
		cost = n.shared.CostOf(id)
	}
	if n.shared.SizeOf != nil {
		size = n.shared.SizeOf(id)
	}
	if size <= 0 {
		size = 1
	}
	return n.l + cost/size
}

func (n *gdsNode) OnAdd(id block.ID)    { n.credit[id] = n.value(id) }
func (n *gdsNode) OnAccess(id block.ID) { n.credit[id] = n.value(id) }
func (n *gdsNode) OnRemove(id block.ID) { delete(n.credit, id) }

func (n *gdsNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestH := 0.0
	for id, h := range n.credit {
		if !evictable(id) {
			continue
		}
		if !found || h < bestH || (h == bestH && id.Less(best)) {
			best, bestH, found = id, h, true
		}
	}
	if found {
		// Inflate: future blocks must out-earn the evicted one.
		if h := n.credit[best]; h > n.l {
			n.l = h
		}
	}
	return best, found
}
