package policy

import "mrdspark/internal/block"

// LFU evicts the block with the fewest accesses since insertion,
// breaking ties by least-recent use. Like FIFO it is a reference
// policy for tests and ablations rather than a paper baseline.
type LFU struct{}

// NewLFU returns the LFU policy factory.
func NewLFU() *LFU { return &LFU{} }

// Name implements Factory.
func (*LFU) Name() string { return "LFU" }

// NewNodePolicy implements Factory.
func (*LFU) NewNodePolicy(int) Policy {
	return &lfuNode{count: map[block.ID]int{}, list: newRecencyList()}
}

type lfuNode struct {
	count map[block.ID]int
	list  *recencyList // recency tiebreak
}

func (n *lfuNode) OnAdd(id block.ID) {
	n.count[id] = 0
	n.list.touch(id)
}

func (n *lfuNode) OnAccess(id block.ID) {
	n.count[id]++
	n.list.touch(id)
}

func (n *lfuNode) OnRemove(id block.ID) {
	delete(n.count, id)
	n.list.remove(id)
}

func (n *lfuNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestCount := 0
	// Walk from least- to most-recently used so that among equal
	// counts the least-recently-used block wins.
	for e := n.list.order.Back(); e != nil; e = e.Prev() {
		id := e.Value.(block.ID)
		if !evictable(id) {
			continue
		}
		if c := n.count[id]; !found || c < bestCount {
			best, bestCount, found = id, c, true
		}
	}
	return best, found
}
