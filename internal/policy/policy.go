// Package policy defines the cache-management interfaces the simulated
// cluster drives, plus the baseline policies the paper compares MRD
// against: Spark's default LRU, the DAG-aware LRC and MemTune, and the
// FIFO/LFU/Belady-MIN references used in tests and ablations.
//
// A Factory owns whatever state is shared across the cluster (reference
// tables, profiles) and mints one Policy per worker node; the per-node
// Policy makes local eviction decisions, mirroring the paper's
// MRDmanager / CacheMonitor split. Factories that need to observe
// execution implement the optional StageObserver / JobObserver /
// ClusterAware interfaces.
package policy

import (
	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// Policy makes eviction decisions for a single node's memory store.
// The store calls the On* hooks as blocks come and go, and Victim when
// it must free space. Implementations need not be safe for concurrent
// use; the simulator is single-threaded by design.
type Policy interface {
	// OnAdd notifies that the block became resident in memory.
	OnAdd(id block.ID)
	// OnAccess notifies a read hit on a resident block.
	OnAccess(id block.ID)
	// OnRemove notifies that the block left memory (eviction or purge,
	// including evictions initiated by the policy itself).
	OnRemove(id block.ID)
	// Victim selects the next block to evict among resident blocks for
	// which evictable returns true. It returns false when no resident
	// block is evictable.
	Victim(evictable func(block.ID) bool) (block.ID, bool)
}

// Factory mints per-node policies and carries cluster-wide shared
// state.
type Factory interface {
	Name() string
	NewNodePolicy(nodeID int) Policy
}

// StageObserver is implemented by factories that track execution
// progress at stage granularity (LRC, MemTune, MRD).
type StageObserver interface {
	// OnStageStart fires when the stage begins executing; jobID is the
	// stage's job. Stages execute in ascending stage-ID order.
	OnStageStart(stageID, jobID int)
}

// JobObserver is implemented by factories that consume DAG information
// per job submission (the ad-hoc mode of the paper's AppProfiler).
type JobObserver interface {
	OnJobSubmit(j *dag.Job)
}

// ClusterOps is the control surface the simulator exposes to
// cluster-aware factories: inspection of every node's store, proactive
// eviction (the paper's all-out purge order) and prefetch requests.
type ClusterOps interface {
	NumNodes() int
	// HomeNode returns the node that computes (and caches) the block,
	// i.e. the locality-preferred placement.
	HomeNode(id block.ID) int
	// Resident reports whether the block is in the node's memory.
	Resident(node int, id block.ID) bool
	// OnDisk reports whether the block's bytes are available on the
	// node's local disk (and hence prefetchable without recompute).
	OnDisk(node int, id block.ID) bool
	// FreeBytes returns the node's unused memory-store capacity.
	FreeBytes(node int) int64
	// CapacityBytes returns the node's total memory-store capacity.
	CapacityBytes(node int) int64
	// Evict drops the block from the node's memory store immediately.
	// It reports whether the block was resident and unpinned.
	Evict(node int, id block.ID) bool
	// Prefetch asks the node to load the block from its local disk in
	// the background. The store will evict via the node's policy if
	// needed on completion. Duplicate and already-resident requests
	// are ignored.
	Prefetch(node int, info block.Info)
	// PrefetchOutcomes reports cluster-wide prefetch feedback — how
	// many prefetched blocks have been hit and how many were evicted
	// unused so far. This is the paper's reportCacheStatus channel
	// (Table 2): the monitors' status reports the manager bases
	// prefetch decisions on.
	PrefetchOutcomes() (used, wasted int64)
}

// ClusterAware is implemented by factories that issue cluster-wide
// operations (MRD, MemTune). Attach is called once before the run.
type ClusterAware interface {
	Attach(ops ClusterOps)
}

// NodeFailureObserver is implemented by factories that must react to a
// worker-node loss (the paper's §4.4 fault-tolerance path: the manager
// re-issues the MRD table to the replacement node).
type NodeFailureObserver interface {
	OnNodeFailure(node int)
}

// PrefetchArbiter is implemented by node policies that can judge
// whether completing a prefetch is worth evicting a specific resident
// block. Without an arbiter a prefetch arrival evicts through the
// normal victim path unconditionally — the paper's fully aggressive
// Algorithm 1 behaviour, which §4.4 acknowledges can be
// counter-productive when the eviction is no better than the load.
type PrefetchArbiter interface {
	AllowPrefetchEviction(incoming block.Info, victim block.ID) bool
}
