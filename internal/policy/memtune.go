package policy

import (
	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// MemTune approximates the caching behaviour of MemTune (Xu et al.,
// IPDPS 2016; paper §2): it uses DAG dependencies, but only those of
// currently runnable tasks. Blocks needed by the executing stage form
// the protection window; everything outside the window is evicted
// first (in LRU order), and window blocks available on disk are
// prefetched when they fit in free memory. The window never looks past
// the runnable stage — precisely the lack of time-locality
// discretization the paper criticizes.
//
// MemTune's dynamic repartitioning of JVM memory between execution and
// storage pools is out of scope: the paper's comparison (its Fig 6) is
// against the caching behaviour, and the simulator has a fixed storage
// pool.
type MemTune struct {
	// stageReads maps stage ID -> cached RDDs that stage reads.
	stageReads map[int][]*dag.RDD
	window     map[int]bool // RDD IDs needed by the runnable stage
	ops        ClusterOps
	prefetch   bool
}

// NewMemTune returns a MemTune factory over the application DAG. The
// stage dependency lists it consumes are runtime-scheduler information,
// so no recurring profile is involved. Prefetching of runnable-stage
// inputs is enabled by default, matching the published system.
func NewMemTune(g *dag.Graph) *MemTune {
	return &MemTune{stageReads: g.StageReads(), window: map[int]bool{}, prefetch: true}
}

// SetPrefetch toggles MemTune's runnable-stage prefetching (used by
// ablation benches).
func (m *MemTune) SetPrefetch(on bool) { m.prefetch = on }

// Name implements Factory.
func (m *MemTune) Name() string { return "MemTune" }

// Attach implements ClusterAware.
func (m *MemTune) Attach(ops ClusterOps) { m.ops = ops }

// OnStageStart implements StageObserver: rebuild the protection window
// for the newly runnable stage and prefetch its inputs.
func (m *MemTune) OnStageStart(stageID, _ int) {
	m.window = map[int]bool{}
	reads := m.stageReads[stageID]
	for _, r := range reads {
		m.window[r.ID] = true
	}
	if m.ops == nil || !m.prefetch {
		return
	}
	for _, r := range reads {
		for p := 0; p < r.NumPartitions; p++ {
			id := r.Block(p)
			node := m.ops.HomeNode(id)
			if m.ops.Resident(node, id) || !m.ops.OnDisk(node, id) {
				continue
			}
			// MemTune only fills free space; it does not force
			// evictions for prefetches.
			if r.PartSize <= m.ops.FreeBytes(node) {
				m.ops.Prefetch(node, r.BlockInfo(p))
			}
		}
	}
}

// NewNodePolicy implements Factory.
func (m *MemTune) NewNodePolicy(int) Policy {
	return &memTuneNode{shared: m, list: newRecencyList()}
}

type memTuneNode struct {
	shared *MemTune
	list   *recencyList
}

func (n *memTuneNode) OnAdd(id block.ID)    { n.list.touch(id) }
func (n *memTuneNode) OnAccess(id block.ID) { n.list.touch(id) }
func (n *memTuneNode) OnRemove(id block.ID) { n.list.remove(id) }

func (n *memTuneNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	// First pass: LRU among blocks outside the protection window.
	if id, ok := n.list.lruVictim(func(id block.ID) bool {
		return evictable(id) && !n.shared.window[id.RDD]
	}); ok {
		return id, true
	}
	// Everything resident is needed by the runnable stage: fall back
	// to plain LRU.
	return n.list.lruVictim(evictable)
}
