package policy

import (
	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// MIN is Belady's optimal replacement oracle (paper §3.1): evict the
// block whose next use lies furthest in the future, with full knowledge
// of the access schedule. At the paper's stage granularity this is the
// upper bound MRD's eviction side approximates; it exists here as a
// sanity bound for tests and an ablation reference, never as a
// deployable policy.
type MIN struct {
	profile  *refdist.Profile
	curStage int
}

// NewMIN returns the clairvoyant factory over the complete application
// profile (the oracle sees the whole DAG regardless of how the run is
// configured).
func NewMIN(g *dag.Graph) *MIN {
	return &MIN{profile: refdist.FromGraph(g)}
}

// Name implements Factory.
func (m *MIN) Name() string { return "MIN" }

// OnStageStart implements StageObserver.
func (m *MIN) OnStageStart(stageID, _ int) { m.curStage = stageID }

// NewNodePolicy implements Factory.
func (m *MIN) NewNodePolicy(int) Policy {
	return &minNode{shared: m, resident: map[block.ID]bool{}}
}

type minNode struct {
	shared   *MIN
	resident map[block.ID]bool
}

func (n *minNode) OnAdd(id block.ID)    { n.resident[id] = true }
func (n *minNode) OnAccess(block.ID)    {}
func (n *minNode) OnRemove(id block.ID) { delete(n.resident, id) }

// key orders blocks by next use: never-used-again blocks sort after
// everything, then by stage distance, then by partition index within
// the stage (tasks touch partitions in roughly ascending order).
func (n *minNode) key(id block.ID) (int, int) {
	d := n.shared.profile.StageDistanceConsumed(id.RDD, n.shared.curStage)
	if refdist.IsInfinite(d) {
		return int(^uint(0) >> 1), id.Partition
	}
	return d, id.Partition
}

func (n *minNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestD, bestP := -1, -1
	for id := range n.resident {
		if !evictable(id) {
			continue
		}
		d, p := n.key(id)
		switch {
		case !found, d > bestD, d == bestD && p > bestP,
			d == bestD && p == bestP && best.Less(id):
			best, bestD, bestP, found = id, d, p, true
		}
	}
	return best, found
}
