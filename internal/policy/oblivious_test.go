package policy

import (
	"testing"

	"mrdspark/internal/block"
)

func TestHyperbolicPrefersHighHitRate(t *testing.T) {
	n := NewHyperbolic().NewNodePolicy(0).(*hyperbolicNode)
	hot := bid(1, 0)
	cold := bid(2, 0)
	n.OnAdd(hot)
	n.OnAdd(cold)
	// hot earns many hits, cold none: cold's priority decays with the
	// logical clock.
	for i := 0; i < 10; i++ {
		n.OnAccess(hot)
	}
	v, ok := n.Victim(all)
	if !ok || v != cold {
		t.Errorf("victim = %v, want cold block", v)
	}
}

func TestHyperbolicAgeDecaysPriority(t *testing.T) {
	n := NewHyperbolic().NewNodePolicy(0).(*hyperbolicNode)
	old := bid(1, 0)
	young := bid(2, 0)
	n.OnAdd(old)
	// Advance the clock with unrelated traffic so old's residence
	// grows without hits.
	filler := bid(9, 0)
	n.OnAdd(filler)
	for i := 0; i < 50; i++ {
		n.OnAccess(filler)
	}
	n.OnRemove(filler)
	n.OnAdd(young)
	v, ok := n.Victim(all)
	if !ok || v != old {
		t.Errorf("victim = %v, want the aged block", v)
	}
}

func TestHyperbolicRemoveAndFilter(t *testing.T) {
	n := NewHyperbolic().NewNodePolicy(0)
	a, b := bid(1, 0), bid(2, 0)
	n.OnAdd(a)
	n.OnAdd(b)
	n.OnRemove(a)
	v, ok := n.Victim(all)
	if !ok || v != b {
		t.Errorf("victim = %v", v)
	}
	if _, ok := n.Victim(func(block.ID) bool { return false }); ok {
		t.Error("victim despite filter")
	}
	n.OnRemove(b)
	if _, ok := n.Victim(all); ok {
		t.Error("victim from empty node")
	}
}

func TestGDSInflationAges(t *testing.T) {
	n := NewGDS().NewNodePolicy(0).(*gdsNode)
	a, b := bid(1, 0), bid(2, 0)
	n.OnAdd(a) // credit 1 (L=0)
	v, ok := n.Victim(all)
	if !ok || v != a {
		t.Fatalf("victim = %v", v)
	}
	n.OnRemove(a) // inflation L rises to 1
	n.OnAdd(a)    // credit 2
	n.OnAdd(b)    // credit 2
	// Access a: refreshed to current L+1 = 2 (same). Evict: deterministic
	// ID tiebreak among equal credits.
	v, ok = n.Victim(all)
	if !ok || v != a {
		t.Errorf("victim = %v, want lowest-credit / lowest-ID", v)
	}
}

func TestGDSCostAware(t *testing.T) {
	g := &GDS{
		CostOf: func(id block.ID) float64 {
			if id.RDD == 1 {
				return 10 // expensive to restore
			}
			return 1
		},
	}
	n := g.NewNodePolicy(0)
	cheap := bid(2, 0)
	dear := bid(1, 0)
	n.OnAdd(dear)
	n.OnAdd(cheap)
	v, ok := n.Victim(all)
	if !ok || v != cheap {
		t.Errorf("victim = %v, want the cheap block", v)
	}
}

func TestGDSSizeAware(t *testing.T) {
	g := &GDS{
		SizeOf: func(id block.ID) float64 {
			if id.RDD == 1 {
				return 100 // big block: low credit per byte
			}
			return 1
		},
	}
	n := g.NewNodePolicy(0)
	big := bid(1, 0)
	small := bid(2, 0)
	n.OnAdd(big)
	n.OnAdd(small)
	v, ok := n.Victim(all)
	if !ok || v != big {
		t.Errorf("victim = %v, want the big block", v)
	}
}

func TestObliviousFactoryNames(t *testing.T) {
	if NewHyperbolic().Name() != "Hyperbolic" || NewGDS().Name() != "GDS" {
		t.Error("names wrong")
	}
}

func TestHyperbolicDeterministic(t *testing.T) {
	// Same operation sequence, same victim, every time: the logical
	// clock makes the earlier-added block slightly older (lower
	// priority), so it is the deterministic choice.
	for trial := 0; trial < 5; trial++ {
		n := NewHyperbolic().NewNodePolicy(0)
		n.OnAdd(bid(2, 1))
		n.OnAdd(bid(1, 3))
		n.OnAccess(bid(2, 1))
		n.OnAccess(bid(1, 3))
		v, _ := n.Victim(all)
		if v != bid(2, 1) {
			t.Fatalf("trial %d: victim %v, want the earlier-added block", trial, v)
		}
	}
}
