package policy

import (
	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// LRC implements Least Reference Count (Yu et al., INFOCOM 2017; paper
// §2): every block carries the number of not-yet-consumed downstream
// references derived from the DAG, the count decreases as references
// are consumed, and the block with the lowest remaining count is
// evicted. The paper's critique — which MRD addresses — is that a block
// with many references far in the future keeps a high count and
// wrongly escapes eviction.
//
// The reference table is shared across the cluster; each node breaks
// count ties by local recency.
type LRC struct {
	profile  *refdist.Profile
	adHoc    bool
	curStage int
}

// NewLRC returns an LRC factory with the whole-application reference
// profile known up front (the recurring-application setting).
func NewLRC(g *dag.Graph) *LRC {
	return &LRC{profile: refdist.FromGraph(g)}
}

// NewLRCAdHoc returns an LRC factory that learns the DAG one job at a
// time via OnJobSubmit.
func NewLRCAdHoc() *LRC {
	return &LRC{profile: refdist.NewProfile(), adHoc: true}
}

// Name implements Factory.
func (l *LRC) Name() string { return "LRC" }

// OnJobSubmit implements JobObserver: in ad-hoc mode the profile grows
// as jobs are submitted.
func (l *LRC) OnJobSubmit(j *dag.Job) {
	if l.adHoc {
		l.profile.AddJob(j)
	}
}

// OnStageStart implements StageObserver: advancing the stage pointer
// is what consumes references and decrements counts.
func (l *LRC) OnStageStart(stageID, _ int) { l.curStage = stageID }

// remaining returns the block's not-yet-consumed reference count. The
// currently executing stage's reference is treated as consumed — a
// stage's reads resolve when it starts, and LRC decrements the count
// "after each reference".
func (l *LRC) remaining(id block.ID) int {
	reads := l.profile.Reads(id.RDD)
	n := 0
	for _, r := range reads {
		if r.Stage > l.curStage {
			n++
		}
	}
	return n
}

// NewNodePolicy implements Factory.
func (l *LRC) NewNodePolicy(int) Policy {
	return &lrcNode{shared: l, list: newRecencyList()}
}

type lrcNode struct {
	shared *LRC
	list   *recencyList
}

func (n *lrcNode) OnAdd(id block.ID)    { n.list.touch(id) }
func (n *lrcNode) OnAccess(id block.ID) { n.list.touch(id) }
func (n *lrcNode) OnRemove(id block.ID) { n.list.remove(id) }

func (n *lrcNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestCount := 0
	// Least-recently-used wins ties among equal counts.
	for e := n.list.order.Back(); e != nil; e = e.Prev() {
		id := e.Value.(block.ID)
		if !evictable(id) {
			continue
		}
		if c := n.shared.remaining(id); !found || c < bestCount {
			best, bestCount, found = id, c, true
			if c == 0 {
				return best, true // nothing beats a dead block
			}
		}
	}
	return best, found
}
