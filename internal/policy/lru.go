package policy

import "mrdspark/internal/block"

// LRU is Spark's default cache policy (paper §2): evict the block that
// has gone the longest without access. It is DAG-oblivious; each node
// decides independently from local recency.
type LRU struct{}

// NewLRU returns the LRU policy factory.
func NewLRU() *LRU { return &LRU{} }

// Name implements Factory.
func (*LRU) Name() string { return "LRU" }

// NewNodePolicy implements Factory.
func (*LRU) NewNodePolicy(int) Policy { return &lruNode{list: newRecencyList()} }

type lruNode struct {
	list *recencyList
}

func (n *lruNode) OnAdd(id block.ID)    { n.list.touch(id) }
func (n *lruNode) OnAccess(id block.ID) { n.list.touch(id) }
func (n *lruNode) OnRemove(id block.ID) { n.list.remove(id) }

func (n *lruNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	return n.list.lruVictim(evictable)
}

// FIFO evicts in insertion order regardless of accesses. It is a test
// and ablation reference, not a paper baseline.
type FIFO struct{}

// NewFIFO returns the FIFO policy factory.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Factory.
func (*FIFO) Name() string { return "FIFO" }

// NewNodePolicy implements Factory.
func (*FIFO) NewNodePolicy(int) Policy { return &fifoNode{list: newRecencyList()} }

type fifoNode struct {
	list *recencyList
}

func (n *fifoNode) OnAdd(id block.ID)    { n.list.touch(id) }
func (n *fifoNode) OnAccess(block.ID)    {}
func (n *fifoNode) OnRemove(id block.ID) { n.list.remove(id) }

func (n *fifoNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	return n.list.lruVictim(evictable)
}
