package policy

import (
	"container/list"

	"mrdspark/internal/block"
)

// recencyList is an intrusive LRU ordering shared by several policies:
// front = most recently used, back = least recently used.
type recencyList struct {
	order *list.List
	elem  map[block.ID]*list.Element
}

func newRecencyList() *recencyList {
	return &recencyList{order: list.New(), elem: map[block.ID]*list.Element{}}
}

// touch moves the block to the most-recently-used position, inserting
// it if absent.
func (l *recencyList) touch(id block.ID) {
	if e, ok := l.elem[id]; ok {
		l.order.MoveToFront(e)
		return
	}
	l.elem[id] = l.order.PushFront(id)
}

// remove drops the block from the ordering.
func (l *recencyList) remove(id block.ID) {
	if e, ok := l.elem[id]; ok {
		l.order.Remove(e)
		delete(l.elem, id)
	}
}

// contains reports whether the block is tracked.
func (l *recencyList) contains(id block.ID) bool {
	_, ok := l.elem[id]
	return ok
}

// len returns the number of tracked blocks.
func (l *recencyList) len() int { return l.order.Len() }

// lruVictim returns the least-recently-used block accepted by the
// filter.
func (l *recencyList) lruVictim(evictable func(block.ID) bool) (block.ID, bool) {
	for e := l.order.Back(); e != nil; e = e.Prev() {
		id := e.Value.(block.ID)
		if evictable(id) {
			return id, true
		}
	}
	return block.ID{}, false
}
