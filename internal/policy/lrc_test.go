package policy

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// lrcGraph: data cached, read at stages 1, 2 and 3 (single-stage jobs);
// other cached, read at stage 2 only.
func lrcGraph() (*dag.Graph, *dag.RDD, *dag.RDD) {
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	data := src.Map("data").Cache()
	other := src.Map("other").Cache()
	g.Count(data.ZipPartitions("both", other)) // stage 0: creates both
	g.Count(data.Map("u1"))                    // stage 1
	g.Count(data.ZipPartitions("u2", other))   // stage 2: reads both
	g.Count(data.Map("u3"))                    // stage 3
	return g, data, other
}

func TestLRCCountsAndDecrement(t *testing.T) {
	g, data, other := lrcGraph()
	f := NewLRC(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))
	n.OnAdd(other.Block(0))

	f.OnStageStart(1, 1)
	// The stage-1 reference is consumed: data has reads at stages 2
	// and 3 remaining (2); other at stage 2 (1).
	v, ok := n.Victim(all)
	if !ok || v != other.Block(0) {
		t.Errorf("victim = %v, want other (lower count)", v)
	}

	f.OnStageStart(2, 2)
	// data has 1 remaining (stage 3); other 0: other is dead, evicted
	// first.
	v, _ = n.Victim(all)
	if v != other.Block(0) {
		t.Errorf("victim = %v, want dead other", v)
	}
	n.OnRemove(other.Block(0))
	v, ok = n.Victim(all)
	if !ok || v != data.Block(0) {
		t.Errorf("victim = %v, want data", v)
	}
}

func TestLRCTieBreaksByRecency(t *testing.T) {
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	a := src.Map("a").Cache()
	b := src.Map("b").Cache()
	g.Count(a.ZipPartitions("ab", b))  // creates both
	g.Count(a.ZipPartitions("use", b)) // one read each: equal counts
	f := NewLRC(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(a.Block(0))
	n.OnAdd(b.Block(0))
	n.OnAccess(a.Block(0)) // b is now least recent
	f.OnStageStart(0, 0)   // both reads (stage 1) still ahead: tie
	v, _ := n.Victim(all)
	if v != b.Block(0) {
		t.Errorf("tie victim = %v, want least-recently-used b", v)
	}
}

func TestLRCAdHocLearnsPerJob(t *testing.T) {
	g, data, _ := lrcGraph()
	f := NewLRCAdHoc()
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))

	// No jobs submitted: everything counts zero.
	if c := f.remaining(data.Block(0)); c != 0 {
		t.Errorf("count before any job = %d", c)
	}
	for _, j := range g.Jobs {
		f.OnJobSubmit(j)
	}
	f.OnStageStart(1, 1)
	if c := f.remaining(data.Block(0)); c != 2 {
		t.Errorf("count after all jobs = %d, want 2 (stage-1 ref consumed)", c)
	}
}

func TestLRCRecurringSeesWholeDAGUpFront(t *testing.T) {
	g, data, _ := lrcGraph()
	f := NewLRC(g)
	// Before any stage starts (curStage 0 = the creation stage), all
	// three reads lie ahead.
	if c := f.remaining(data.Block(0)); c != 3 {
		t.Errorf("recurring initial count = %d, want 3", c)
	}
	// OnJobSubmit must not double-count in recurring mode.
	f.OnJobSubmit(g.Jobs[0])
	if c := f.remaining(data.Block(0)); c != 3 {
		t.Errorf("count after job submit = %d, want 3", c)
	}
}

func TestLRCVictimNoneEvictable(t *testing.T) {
	g, data, _ := lrcGraph()
	f := NewLRC(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(data.Block(0))
	if _, ok := n.Victim(func(block.ID) bool { return false }); ok {
		t.Error("victim with nothing evictable")
	}
}
