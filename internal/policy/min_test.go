package policy

import (
	"testing"

	"mrdspark/internal/dag"
)

// minGraph: near read at stages 1 and 2, far read at stage 3, dead
// after creation.
func minGraph() (*dag.Graph, *dag.RDD, *dag.RDD, *dag.RDD) {
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	near := src.Map("near").Cache()
	far := src.Map("far").Cache()
	dead := src.Map("dead").Cache()
	g.Count(near.ZipPartitions("all", far).ZipPartitions("all2", dead)) // stage 0
	g.Count(near.Map("u1"))                                             // stage 1
	g.Count(near.Map("u1b"))                                            // stage 2
	g.Count(far.Map("u2"))                                              // stage 3
	return g, near, far, dead
}

func TestMINEvictsFurthestUse(t *testing.T) {
	g, near, far, dead := minGraph()
	f := NewMIN(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(near.Block(0))
	n.OnAdd(far.Block(0))
	n.OnAdd(dead.Block(0))

	f.OnStageStart(1, 1)
	v, ok := n.Victim(all)
	if !ok || v != dead.Block(0) {
		t.Errorf("victim = %v, want never-used-again dead", v)
	}
	n.OnRemove(dead.Block(0))
	v, _ = n.Victim(all)
	if v != far.Block(0) {
		t.Errorf("victim = %v, want furthest-use far", v)
	}
	n.OnRemove(far.Block(0))
	v, _ = n.Victim(all)
	if v != near.Block(0) {
		t.Errorf("victim = %v, want near as last resort", v)
	}
}

func TestMINBreaksTiesByPartition(t *testing.T) {
	g, near, _, _ := minGraph()
	f := NewMIN(g)
	n := f.NewNodePolicy(0)
	n.OnAdd(near.Block(0))
	n.OnAdd(near.Block(1))
	f.OnStageStart(1, 1)
	v, _ := n.Victim(all)
	if v != near.Block(1) {
		t.Errorf("tie victim = %v, want the higher partition (touched later in the stage)", v)
	}
}

func TestMINIgnoresConfiguredBlindness(t *testing.T) {
	// MIN is an oracle: it sees the full schedule regardless of how
	// far execution has progressed.
	g, near, far, _ := minGraph()
	f := NewMIN(g)
	f.OnStageStart(2, 3)
	n := f.NewNodePolicy(0)
	n.OnAdd(near.Block(0)) // its stage-2 read is being consumed: dead next
	n.OnAdd(far.Block(0))  // read at stage 3: live
	v, ok := n.Victim(all)
	if !ok || v != near.Block(0) {
		t.Errorf("victim = %v, want consumed near", v)
	}
}
