package workload

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// The eight graph-computation SparkBench workloads. All are built on a
// GraphX-style Pregel loop: per superstep, messages are aggregated
// along edges (a shuffle), vertices are updated by joining the
// messages in, and both are cached; an action materializes the round.
// Old vertex/message generations stop being referenced — the exact
// pattern where reference distance beats recency and reference counts.

func init() {
	register("PR", PageRank)
	register("TC", TriangleCount)
	register("SP", ShortestPaths)
	register("LP", LabelPropagation)
	register("SVD", SVDPlusPlus)
	register("CC", ConnectedComponents)
	register("SCC", StronglyConnectedComponents)
	register("PO", PregelOperation)
}

// pregelCfg shapes one Pregel-style workload.
type pregelCfg struct {
	name, fullName string
	category       string
	jobType        JobType
	inputBytes     int64
	parts          int
	iters          int
	// actionEvery materializes (creates a job) every k supersteps.
	actionEvery int
	// wideUpdate performs the vertex update through a shuffle join
	// (3 stages per superstep) instead of a co-partitioned zip (2).
	wideUpdate bool
	// twoPhaseAggregate adds a second message-combine shuffle per
	// superstep (4 stages per superstep with wideUpdate).
	twoPhaseAggregate bool
	// historyEvery makes the final job reference every k-th
	// superstep's vertex and message generations (0 = none, 1 = all):
	// label-history extraction in LP/SCC, sampled convergence checks
	// elsewhere. This is the source of the long reference gaps in
	// Table 1.
	historyEvery int
	// lagRef makes each superstep's vertex update also read the
	// generation from lagRef supersteps ago (delta/convergence
	// tracking), creating medium reference gaps.
	lagRef int
	// chainDepth inserts extra cheap narrow links into each
	// superstep's message and update chains, matching GraphX's habit
	// of materializing many intermediate RDDs per iteration (vertex
	// replication views, triplet fields, shipped attributes) — this is
	// what drives Table 3's RDD counts (377 for LP, 560 for SCC)
	// without touching stage counts or reference schedules.
	chainDepth int
	// msgFactor scales message volume relative to vertex data (drives
	// shuffle intensity).
	msgFactor float64
	// rate is the compute intensity in MB/s.
	rate int64
	// buildJobs controls how many materialization jobs graph loading
	// takes (degree computation etc.).
	buildJobs int
}

// buildPregel constructs the DAG for a Pregel-style workload.
func buildPregel(cfg pregelCfg, p Params) *Spec {
	input := defaultInt64(p.InputBytes, cfg.inputBytes)
	parts := defaultInt(p.Partitions, cfg.parts)
	iters := defaultInt(p.Iterations, cfg.iters)
	partSize := input / int64(parts)
	if partSize < 4*KB {
		partSize = 4 * KB
	}

	g := dag.New()
	src := g.Source("hdfs:edges", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	parsed := src.Map("parseEdges", dag.WithCost(costAt(partSize, cfg.rate)))
	edges := parsed.PartitionBy("edgePartitions", dag.WithSizeFactor(1.3),
		dag.WithCost(costAt(partSize, cfg.rate))).Persist(block.MemoryAndDisk)
	vertices := edges.ReduceByKey("vertices", dag.WithSizeFactor(0.5),
		dag.WithCost(costAt(partSize, cfg.rate))).Persist(block.MemoryAndDisk)
	g.Count(vertices)
	for b := 1; b < cfg.buildJobs; b++ {
		// Additional graph-construction passes (degrees, initial
		// attributes) revisit the cached structure.
		deg := vertices.ZipPartitions(fmt.Sprintf("degrees-%d", b), edges,
			dag.WithCost(costAt(partSize, cfg.rate)))
		g.Count(deg)
	}

	vSize := vertices.PartSize
	mSize := int64(float64(vSize) * cfg.msgFactor)
	if mSize < 4*KB {
		mSize = 4 * KB
	}

	vcur := vertices
	var vHist, mHist []*dag.RDD
	pendingAction := false
	for i := 0; i < iters; i++ {
		// Message generation along the triplets. The stage *reads* the
		// full cached vertex and edge structures, but only the
		// messages — a small fraction of the graph, as in real Pregel
		// rounds — cross the shuffle (the paper's Table 3 shuffle
		// volumes sit orders of magnitude below its stage inputs).
		triplets := vcur.ZipPartitions(fmt.Sprintf("triplets-%d", i), edges,
			dag.WithPartSize(mSize), dag.WithCost(costAt(vSize+partSize, cfg.rate)))
		for d := 0; d < cfg.chainDepth; d++ {
			triplets = triplets.Map(fmt.Sprintf("tripletView-%d-%d", i, d), dag.WithCost(50))
		}
		msgs := triplets.ReduceByKey(fmt.Sprintf("messages-%d", i),
			dag.WithPartSize(mSize), dag.WithCost(costAt(mSize, cfg.rate)))
		if cfg.twoPhaseAggregate {
			msgs = msgs.ReduceByKey(fmt.Sprintf("combine-%d", i),
				dag.WithPartSize(mSize), dag.WithCost(costAt(mSize, cfg.rate)))
		}
		// Per-superstep generations spill to local disk on eviction —
		// the restorable substrate the paper's prefetching workflow
		// presumes (a block must exist on disk or a remote node to be
		// fetched back; see DESIGN.md on the MEMORY_AND_DISK
		// substitution).
		msgs = msgs.Persist(block.MemoryAndDisk)
		mHist = append(mHist, msgs)

		// Vertex program: re-key the (small) active message set when
		// configured, then update the vertex partitions co-partitioned.
		active := msgs
		if cfg.wideUpdate {
			active = msgs.PartitionBy(fmt.Sprintf("activeSet-%d", i),
				dag.WithCost(costAt(mSize, cfg.rate)))
		}
		joined := vcur.ZipPartitions(fmt.Sprintf("joinMsgs-%d", i), active,
			dag.WithPartSize(vSize), dag.WithCost(costAt(vSize, mixedMBps)))
		for d := 0; d < cfg.chainDepth; d++ {
			joined = joined.Map(fmt.Sprintf("vertexView-%d-%d", i, d), dag.WithCost(50))
		}
		if cfg.lagRef > 0 && i >= cfg.lagRef {
			// Convergence delta against an older generation.
			joined = joined.ZipPartitions(fmt.Sprintf("delta-%d", i), vHist[i-cfg.lagRef],
				dag.WithCost(costAt(vSize, cfg.rate)))
		}
		vcur = joined.MapValues(fmt.Sprintf("vprog-%d", i),
			dag.WithCost(costAt(vSize, mixedMBps))).Persist(block.MemoryAndDisk)
		vHist = append(vHist, vcur)

		pendingAction = true
		if cfg.actionEvery > 0 && (i+1)%cfg.actionEvery == 0 {
			g.Count(vcur) // materialize the round (activeMessages check)
			pendingAction = false
		}
	}
	if pendingAction {
		g.Count(vcur)
	}

	// Final extraction job; with history enabled it unions sampled
	// generations back in (label history, convergence traces).
	final := vcur.Map("result", dag.WithCost(costAt(vSize, cfg.rate)))
	if cfg.historyEvery > 0 {
		var hist []*dag.RDD
		for i := 0; i < len(vHist)-1; i += cfg.historyEvery {
			hist = append(hist, vHist[i], mHist[i])
		}
		if len(hist) > 0 {
			final = final.Union("history", hist...)
		}
	}
	g.Count(final)

	return &Spec{
		Name:       cfg.name,
		FullName:   cfg.fullName,
		Suite:      "SparkBench",
		Category:   cfg.category,
		JobType:    cfg.jobType,
		InputBytes: input,
		Iterations: iters,
		Graph:      g,
	}
}

// PageRank builds the PR workload: 934 MB of edges, eight rank
// iterations materialized every other round (Table 3: 7 jobs / 69
// stages of which 21 active).
func PageRank(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "PR", fullName: "Page Rank",
		category: "Web Search", jobType: IOIntensive,
		inputBytes: 934 * MB, parts: 48,
		iters: 8, actionEvery: 2,
		historyEvery: 1, lagRef: 2, chainDepth: 2, msgFactor: 0.15,
		rate: ioLightMBps, buildJobs: 2,
	}, p)
}

// ConnectedComponents builds the CC workload: component propagation
// materialized every other superstep (Table 3: 6 jobs / 50 stages of
// which 19 active).
func ConnectedComponents(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "CC", fullName: "Connected Component",
		category: "Other Workloads", jobType: IOIntensive,
		inputBytes: 2400 * MB, parts: 64,
		iters: 8, actionEvery: 2,
		historyEvery: 2, lagRef: 3, chainDepth: 1, msgFactor: 0.15,
		rate: ioLightMBps, buildJobs: 1,
	}, p)
}

// LabelPropagation builds the LP workload: 21 supersteps, an action
// per superstep, two shuffles per superstep, and full label-history
// extraction at the end (Table 3: 23 jobs / 858 stages of which 87
// active; Table 1's largest reference distances alongside SCC).
func LabelPropagation(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "LP", fullName: "Label Propagation",
		category: "Other Workloads", jobType: IOIntensive,
		inputBytes: 600 * MB, parts: 48,
		iters: 21, actionEvery: 1,
		wideUpdate: true, twoPhaseAggregate: true,
		historyEvery: 2, lagRef: 7, chainDepth: 5, msgFactor: 0.2,
		rate: ioLightMBps, buildJobs: 1,
	}, p)
}

// StronglyConnectedComponents builds the SCC workload: like LP but
// with forward and backward reachability phases (Table 3: 26 jobs /
// 839 stages of which 93 active).
func StronglyConnectedComponents(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "SCC", fullName: "Strongly Connected Component",
		category: "Other Workloads", jobType: IOIntensive,
		inputBytes: 400 * MB, parts: 48,
		iters: 23, actionEvery: 1,
		wideUpdate: true, twoPhaseAggregate: true,
		historyEvery: 2, lagRef: 8, chainDepth: 8, msgFactor: 0.2,
		rate: ioLightMBps, buildJobs: 2,
	}, p)
}

// PregelOperation builds the PO workload: a generic Pregel computation
// with per-superstep materialization and no history pass (Table 3: 17
// jobs / 467 stages of which 65 active).
func PregelOperation(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "PO", fullName: "Pregel Operation",
		category: "Other Workloads", jobType: IOIntensive,
		inputBytes: 1400 * MB, parts: 64,
		iters: 13, actionEvery: 1,
		wideUpdate: true, twoPhaseAggregate: true,
		lagRef: 4, chainDepth: 7, msgFactor: 0.2,
		rate: ioLightMBps, buildJobs: 1,
	}, p)
}

// SVDPlusPlus builds the SVD++ workload: factor refinement supersteps
// with sampled history references (Table 3: 14 jobs / 103 stages of
// which 27 active).
func SVDPlusPlus(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "SVD", fullName: "SVD++",
		category: "Graph Computation", jobType: IOIntensive,
		inputBytes: 453 * MB, parts: 48,
		iters: 11, actionEvery: 1,
		historyEvery: 2, lagRef: 3, chainDepth: 2, msgFactor: 0.5,
		rate: ioLightMBps, buildJobs: 2,
	}, p)
}

// ShortestPaths builds the SP workload: two frontier-expansion
// supersteps and a single materialization (Table 3: 3 jobs / 8 stages
// of which 7 active; near-zero reference distances).
func ShortestPaths(p Params) *Spec {
	return buildPregel(pregelCfg{
		name: "SP", fullName: "Shortest Paths",
		category: "Other Workloads", jobType: Mixed,
		inputBytes: 2900 * MB, parts: 64,
		iters: 2, actionEvery: 2,
		msgFactor: 0.3,
		rate:      mixedMBps, buildJobs: 1,
	}, p)
}

// TriangleCount builds the TC workload: not iterative — one graph
// construction job and one deep counting job whose chain caches
// several intermediates that are barely re-read (Table 3: 2 jobs / 11
// stages / 74 RDDs with only 0.8 references per RDD).
func TriangleCount(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 268*MB)
	parts := defaultInt(p.Partitions, 32)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:edges", parts, partSize, dag.WithCost(costAt(partSize, mixedMBps)))
	parsed := src.Map("parseEdges", dag.WithCost(costAt(partSize, mixedMBps)))
	canon := parsed.Map("canonicalEdges", dag.WithCost(costAt(partSize, mixedMBps)))
	edges := canon.PartitionBy("edgePartitions", dag.WithSizeFactor(1.2),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	vertices := edges.ReduceByKey("vertices", dag.WithSizeFactor(0.5),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(vertices) // job 0: build the graph

	// Triangle counting: neighbor sets, set intersections along the
	// triplets, per-vertex counts. Heavy shuffles (Table 3: 9.4 GB
	// shuffled from 268 MB input), many cached intermediates.
	nbrSets := vertices.ZipPartitions("collectNeighbors", edges,
		dag.WithSizeFactor(8), dag.WithCost(costAt(partSize, mixedMBps))).
		GroupByKey("neighborSets", dag.WithSizeFactor(8),
			dag.WithCost(costAt(partSize*8, mixedMBps))).Persist(block.MemoryAndDisk)
	setGraph := nbrSets.ZipPartitions("setGraph", edges,
		dag.WithCost(costAt(partSize*8, mixedMBps))).Persist(block.MemoryAndDisk)
	shipped := setGraph.Map("shipSets", dag.WithCost(costAt(partSize*8, mixedMBps)))
	inter := shipped.PartitionBy("edgeSets", dag.WithSizeFactor(1.0),
		dag.WithCost(costAt(partSize*8, mixedMBps))).
		MapPartitions("intersect", dag.WithSizeFactor(0.2),
			dag.WithCost(costAt(partSize*8, cpuHeavyMBps))).Persist(block.MemoryAndDisk)
	counts := inter.ReduceByKey("vertexCounts", dag.WithSizeFactor(0.1),
		dag.WithCost(costAt(partSize, mixedMBps))).
		ReduceByKey("globalCounts", dag.WithPartitions(4),
			dag.WithCost(costAt(partSize, mixedMBps)))
	total := counts.ZipPartitions("checkTriangles", nbrSets,
		dag.WithCost(costAt(partSize, mixedMBps)))
	g.Count(total) // job 1: the count

	return &Spec{
		Name:       "TC",
		FullName:   "Triangle Count",
		Suite:      "SparkBench",
		Category:   "Graph Computation",
		JobType:    Mixed,
		InputBytes: input,
		Iterations: 0,
		Graph:      g,
	}
}
