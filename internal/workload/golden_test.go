package workload

import (
	"testing"

	"mrdspark/internal/refdist"
)

// The golden ranges pin each workload's Table 1 characteristics to a
// band around the paper's published values, so generator changes that
// silently break the characterization fail loudly. Bands are
// deliberately loose where our generators deviate (documented in
// EXPERIMENTS.md) and tight where the reproduction is close.
func TestGoldenDistanceCharacteristics(t *testing.T) {
	type band struct {
		loStage, hiStage float64 // avg stage distance
		maxStageLo       int     // minimum acceptable max stage distance
		maxStageHi       int
	}
	golden := map[string]band{
		"KM":   {4.0, 8.0, 10, 25},    // paper 5.34 / 19
		"LinR": {1.2, 2.5, 2, 10},     // paper 1.76 / 8
		"LogR": {1.2, 2.5, 2, 10},     // paper 2.00 / 9
		"SVM":  {1.5, 4.0, 3, 12},     // paper 1.96 / 10
		"DT":   {3.0, 6.5, 10, 20},    // paper 4.38 / 15
		"MF":   {2.0, 4.5, 4, 20},     // paper 3.31 / 18
		"PR":   {2.5, 7.5, 8, 22},     // paper 6.08 / 19
		"TC":   {0.8, 2.5, 2, 8},      // paper 1.23 / 6
		"SP":   {0.8, 2.0, 1, 6},      // paper 1.19 / 4
		"LP":   {15.0, 36.0, 55, 110}, // paper 28.37 / 85; ours ~20 (EXPERIMENTS.md)
		"SVD":  {4.0, 9.0, 15, 30},    // paper 6.82 / 23
		"CC":   {2.3, 6.5, 8, 20},     // paper 5.31 / 16
		"SCC":  {16.0, 38.0, 60, 120}, // paper 29.96 / 90; ours ~22
		"PO":   {2.0, 7.0, 5, 20},     // paper 5.45 / 16
	}
	for name, b := range golden {
		spec, err := Build(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		st := refdist.FromGraph(spec.Graph).Stats()
		if st.AvgStageDistance < b.loStage || st.AvgStageDistance > b.hiStage {
			t.Errorf("%s avg stage distance %.2f outside golden band [%.1f, %.1f]",
				name, st.AvgStageDistance, b.loStage, b.hiStage)
		}
		if st.MaxStageDistance < b.maxStageLo || st.MaxStageDistance > b.maxStageHi {
			t.Errorf("%s max stage distance %d outside golden band [%d, %d]",
				name, st.MaxStageDistance, b.maxStageLo, b.maxStageHi)
		}
	}
}

// Pin the Table 3 shape facts the experiments lean on hardest.
func TestGoldenWorkflowShapes(t *testing.T) {
	type shape struct {
		jobsLo, jobsHi     int
		activeLo, activeHi int
		totalLo            int // total stages at least (skipped blowup)
	}
	golden := map[string]shape{
		"KM":  {15, 19, 18, 24, 18},   // paper 17 / 20 / 20
		"LP":  {20, 26, 60, 110, 400}, // paper 23 / 87 / 858
		"SCC": {23, 29, 65, 120, 500}, // paper 26 / 93 / 839
		"PO":  {13, 18, 45, 80, 300},  // paper 17 / 65 / 467
		"PR":  {6, 9, 14, 24, 35},     // paper 7 / 21 / 69
		"TC":  {2, 2, 6, 12, 6},       // paper 2 / 11 / 11
		"MF":  {6, 10, 22, 40, 60},    // paper 8 / 22 / 64
	}
	for name, g := range golden {
		spec, err := Build(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		c := spec.Graph.Characterize()
		if c.Jobs < g.jobsLo || c.Jobs > g.jobsHi {
			t.Errorf("%s jobs %d outside [%d, %d]", name, c.Jobs, g.jobsLo, g.jobsHi)
		}
		if c.ActiveStages < g.activeLo || c.ActiveStages > g.activeHi {
			t.Errorf("%s active stages %d outside [%d, %d]", name, c.ActiveStages, g.activeLo, g.activeHi)
		}
		if c.Stages < g.totalLo {
			t.Errorf("%s total stages %d below %d (skipped-stage blowup lost)", name, c.Stages, g.totalLo)
		}
	}
}

// KM's reference counts hit the paper's Table 3 numbers exactly; keep
// them exact.
func TestGoldenKMReferenceCounts(t *testing.T) {
	spec, _ := Build("KM", Params{})
	c := spec.Graph.Characterize()
	if c.RefsPerRDD < 5.4 || c.RefsPerRDD > 5.8 {
		t.Errorf("KM refs/RDD = %.2f, want ≈5.57 (paper exact)", c.RefsPerRDD)
	}
	if c.RefsPerStage < 1.8 || c.RefsPerStage > 2.1 {
		t.Errorf("KM refs/stage = %.2f, want ≈1.95 (paper exact)", c.RefsPerStage)
	}
}
