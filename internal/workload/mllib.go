package workload

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// The six machine-learning-style SparkBench workloads (Table 3). Each
// follows the job/stage skeleton of the real MLlib implementation:
// cached training data, driver-side model state (no lineage chaining
// between iterations — MLlib collects and re-broadcasts weights), and
// one job per optimization step.

func init() {
	register("KM", KMeans)
	register("LinR", LinearRegression)
	register("LogR", LogisticRegression)
	register("SVM", SVM)
	register("DT", DecisionTree)
	register("MF", MatrixFactorization)
}

// gradientDescent builds the shared skeleton of the regression-family
// workloads (MLlib's GradientDescent.runMiniBatchSGD): parse and cache
// the training set, one counting job, then per iteration a sampled
// gradient computation aggregated through a small shuffle, and a final
// prediction pass.
func gradientDescent(name, fullName string, p Params, defIters int, defInput int64, extraAggStage bool, validateEvery int) *Spec {
	input := defaultInt64(p.InputBytes, defInput)
	parts := defaultInt(p.Partitions, int(input/(24*MB))+1)
	iters := defaultInt(p.Iterations, defIters)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:"+name, parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	tokens := src.Map("tokenize", dag.WithCost(costAt(partSize, ioLightMBps)))
	points := tokens.Map("labeledPoints", dag.WithSizeFactor(0.9), dag.WithCost(costAt(partSize, mixedMBps)))
	data := points.Map("features", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(data) // materialize the training set

	var aggs []*dag.RDD
	for i := 0; i < iters; i++ {
		batch := data.Sample(fmt.Sprintf("miniBatch-%d", i), dag.WithSizeFactor(0.3),
			dag.WithCost(costAt(partSize, ioLightMBps)))
		feats := batch.Map(fmt.Sprintf("withWeights-%d", i), dag.WithCost(50))
		grad := feats.MapPartitions(fmt.Sprintf("gradient-%d", i), dag.WithPartSize(16*KB),
			dag.WithCost(costAt(partSize, cpuHeavyMBps)))
		agg := grad.ReduceByKey(fmt.Sprintf("aggregate-%d", i), dag.WithPartitions(4),
			dag.WithCost(costAt(16*KB, mixedMBps)))
		if extraAggStage {
			// treeAggregate depth 2: a second, narrower combine level.
			agg = agg.ReduceByKey(fmt.Sprintf("treeCombine-%d", i), dag.WithPartitions(1),
				dag.WithCost(costAt(16*KB, mixedMBps)))
		}
		aggs = append(aggs, agg)
		g.Collect(agg) // one job per optimization step

		// Periodic convergence validation over the gradient history:
		// its job DAG re-traverses the earlier aggregation shuffles,
		// which therefore reappear as skipped stages (SVM's Table 3
		// gap between total and active stages).
		if validateEvery > 0 && (i+1)%validateEvery == 0 && i > 0 {
			histo := aggs[0].Union(fmt.Sprintf("gradHistory-%d", i), aggs[1:]...)
			g.Collect(histo.Map(fmt.Sprintf("convergence-%d", i),
				dag.WithCost(costAt(16*KB, mixedMBps))))
		}
	}

	predict := data.Map("predict", dag.WithCost(costAt(partSize, cpuHeavyMBps)))
	g.Count(predict) // final error evaluation

	return &Spec{
		Name:       name,
		FullName:   fullName,
		Suite:      "SparkBench",
		JobType:    CPUIntensive,
		InputBytes: input,
		Iterations: iters,
		Graph:      g,
	}
}

// LinearRegression builds the LinR workload: 7.7 GB input, 4 SGD
// iterations (Table 3: 6 jobs / 9 stages, 5 references to the cached
// training set).
func LinearRegression(p Params) *Spec {
	s := gradientDescent("LinR", "Linear Regression", p, 4, 7700*MB, false, 0)
	s.Category = "Other Workloads"
	return s
}

// LogisticRegression builds the LogR workload: 11.1 GB input, 5 SGD
// iterations (Table 3: 7 jobs / 10 stages, 6 references).
func LogisticRegression(p Params) *Spec {
	s := gradientDescent("LogR", "Logistic Regression", p, 5, 11100*MB, false, 0)
	s.Category = "Machine Learning"
	return s
}

// SVM builds the SVM workload: 3.8 GB input, 8 iterations with a
// two-level treeAggregate (Table 3: 10 jobs / 28 stages of which 17
// active).
func SVM(p Params) *Spec {
	s := gradientDescent("SVM", "SVM", p, 6, 3800*MB, true, 3)
	s.Category = "Machine Learning"
	// The extra combine level makes later jobs' closures include the
	// earlier tree-combine shuffles, giving SVM its skipped stages.
	return s
}

// KMeans builds the KM workload following MLlib: cached points and
// norms, a k-means|| initialization whose per-round candidate sets are
// all revisited when the initial centers are weighted and again at the
// final cost evaluation, then Lloyd iterations (every third iteration
// re-aggregates through a shuffle). Table 3: 17 jobs / 20 stages / 37
// RDDs, ~5.6 references per cached RDD.
func KMeans(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 5500*MB)
	parts := defaultInt(p.Partitions, int(input/(24*MB))+1)
	iters := defaultInt(p.Iterations, 9)
	const initRounds = 5
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:points", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	raw := src.Map("tokenize", dag.WithCost(costAt(partSize, ioLightMBps)))
	data := raw.Map("vectors", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	norms := data.Map("norms", dag.WithSizeFactor(0.05),
		dag.WithCost(costAt(partSize, ioLightMBps))).Persist(block.MemoryAndDisk)
	g.Count(data)

	// k-means|| initialization: each round samples new center
	// candidates against the current ones.
	samples := make([]*dag.RDD, 0, initRounds)
	for r := 0; r < initRounds; r++ {
		cand := data.ZipPartitions(fmt.Sprintf("distances-%d", r), norms,
			dag.WithCost(costAt(partSize, mixedMBps))).
			Sample(fmt.Sprintf("candidates-%d", r), dag.WithSizeFactor(0.001),
				dag.WithCost(costAt(partSize, ioLightMBps))).
			Persist(block.MemoryAndDisk)
		samples = append(samples, cand)
		g.Collect(cand)
	}
	// Weight all candidate sets to pick the initial centers.
	union := samples[0].Union("allCandidates", samples[1:]...)
	g.Collect(union.Map("weights", dag.WithCost(costAt(64*KB, mixedMBps))))

	// Lloyd iterations.
	for i := 0; i < iters; i++ {
		assign := data.ZipPartitions(fmt.Sprintf("assign-%d", i), norms,
			dag.WithCost(costAt(partSize, mixedMBps)))
		partial := assign.MapPartitions(fmt.Sprintf("partialSums-%d", i),
			dag.WithPartSize(128*KB), dag.WithCost(costAt(partSize, mixedMBps)))
		if i%3 == 2 {
			// Periodic global re-aggregation through a shuffle.
			agg := partial.ReduceByKey(fmt.Sprintf("centerUpdate-%d", i),
				dag.WithPartitions(4), dag.WithCost(costAt(128*KB, mixedMBps)))
			g.Collect(agg)
		} else {
			g.Collect(partial)
		}
	}

	// Final cost evaluation revisits data, norms and the candidate
	// history.
	cost := data.ZipPartitions("cost", norms, dag.WithCost(costAt(partSize, mixedMBps))).
		Union("costWithCandidates", union)
	g.Count(cost)

	return &Spec{
		Name:       "KM",
		FullName:   "K-Means",
		Suite:      "SparkBench",
		Category:   "Machine Learning",
		JobType:    Mixed,
		InputBytes: input,
		Iterations: iters,
		Graph:      g,
	}
}

// DecisionTree builds the DT workload: cached parsed data and bagged
// tree input, one statistics-aggregation job per tree level, and a
// final prediction pass over both cached sets (Table 3: 10 jobs / 16
// stages; Table 1's max stage distance of 15 comes from the training
// data being revisited only at the end).
func DecisionTree(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 3500*MB)
	parts := defaultInt(p.Partitions, int(input/(24*MB))+1)
	levels := defaultInt(p.Iterations, 7)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:samples", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	parsed := src.Map("parse", dag.WithCost(costAt(partSize, mixedMBps)))
	data := parsed.Map("labeledPoints", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(data)

	treeInput := data.MapPartitions("baggedPoints", dag.WithSizeFactor(1.1),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Collect(treeInput.Sample("findSplits", dag.WithSizeFactor(0.01),
		dag.WithCost(costAt(partSize, cpuHeavyMBps))))

	for l := 0; l < levels; l++ {
		nodes := treeInput.Map(fmt.Sprintf("activeNodes-%d", l), dag.WithCost(50))
		stats := nodes.MapPartitions(fmt.Sprintf("nodeStats-%d", l),
			dag.WithPartSize(256*KB), dag.WithCost(costAt(partSize, cpuHeavyMBps)))
		agg := stats.ReduceByKey(fmt.Sprintf("bestSplits-%d", l), dag.WithPartitions(4),
			dag.WithCost(costAt(256*KB, mixedMBps)))
		g.Collect(agg)
	}

	g.Count(data.Map("predict", dag.WithCost(costAt(partSize, cpuHeavyMBps))))

	return &Spec{
		Name:       "DT",
		FullName:   "Decision Tree",
		Suite:      "SparkBench",
		Category:   "Other Workloads",
		JobType:    CPUIntensive,
		InputBytes: input,
		Iterations: levels,
		Graph:      g,
	}
}

// MatrixFactorization builds the MF workload following MLlib ALS:
// cached rating link blocks, alternating user/item factor sweeps each
// made of two shuffles, materialization every other sweep, and a final
// prediction join. The factor lineage chains across sweeps, which is
// what inflates total stages (64) far above active ones (22).
func MatrixFactorization(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 1100*MB)
	parts := defaultInt(p.Partitions, 24)
	sweeps := defaultInt(p.Iterations, 5)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:ratings", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	ratings := src.Map("parseRatings", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	inLinks := ratings.GroupByKey("inLinkBlocks", dag.WithSizeFactor(1.2),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	outLinks := ratings.GroupByKey("outLinkBlocks", dag.WithSizeFactor(1.2),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(inLinks)
	g.Count(outLinks)

	itemF := inLinks.MapValues("initItemFactors", dag.WithSizeFactor(0.4),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	for s := 0; s < sweeps; s++ {
		// Each half-sweep materializes the same intermediate chain the
		// real ALS does: shipped factor blocks, per-block normal
		// equations, the Cholesky solve, regularization.
		userF := outLinks.Join(fmt.Sprintf("userFactors-%d", s), itemF,
			dag.WithSizeFactor(0.4), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Map(fmt.Sprintf("shipUser-%d", s), dag.WithCost(50)).
			MapPartitions(fmt.Sprintf("normalEqUser-%d", s), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Map(fmt.Sprintf("choleskyUser-%d", s), dag.WithCost(50)).
			MapValues(fmt.Sprintf("solveUser-%d", s), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Persist(block.MemoryAndDisk)
		itemF = inLinks.Join(fmt.Sprintf("itemFactors-%d", s), userF,
			dag.WithSizeFactor(0.4), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Map(fmt.Sprintf("shipItem-%d", s), dag.WithCost(50)).
			MapPartitions(fmt.Sprintf("normalEqItem-%d", s), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Map(fmt.Sprintf("choleskyItem-%d", s), dag.WithCost(50)).
			MapValues(fmt.Sprintf("solveItem-%d", s), dag.WithCost(costAt(partSize, cpuHeavyMBps))).
			Persist(block.MemoryAndDisk)
		g.Count(itemF) // materialize each sweep (ALS checkpointing cadence)
	}
	predictions := outLinks.Join("predict", itemF, dag.WithSizeFactor(0.5),
		dag.WithCost(costAt(partSize, mixedMBps)))
	g.Count(predictions)

	return &Spec{
		Name:       "MF",
		FullName:   "Matrix Factorization",
		Suite:      "SparkBench",
		Category:   "Machine Learning",
		JobType:    Mixed,
		InputBytes: input,
		Iterations: sweeps,
		Graph:      g,
	}
}
