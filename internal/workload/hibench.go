package workload

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// The six HiBench workloads of Table 1. The paper's preliminary study
// found their reference distances too small for MRD to exploit and
// dropped them from the performance experiments; they exist here to
// reproduce the Table 1 characterization that justified that decision.

func init() {
	register("HB-Sort", HiBenchSort)
	register("HB-WordCount", HiBenchWordCount)
	register("HB-TeraSort", HiBenchTeraSort)
	register("HB-PageRank", HiBenchPageRank)
	register("HB-Bayes", HiBenchBayes)
	register("HB-KMeans", HiBenchKMeans)
}

func hibenchSpec(name, fullName string, input int64, g *dag.Graph) *Spec {
	return &Spec{
		Name:       name,
		FullName:   fullName,
		Suite:      "HiBench",
		Category:   "Micro/Websearch/ML",
		JobType:    IOIntensive,
		InputBytes: input,
		Graph:      g,
	}
}

// HiBenchSort: one pass, one shuffle, nothing cached — every reference
// distance is zero.
func HiBenchSort(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 3*GB)
	parts := defaultInt(p.Partitions, 24)
	partSize := input / int64(parts)
	g := dag.New()
	src := g.Source("hdfs:records", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	sorted := src.Map("parse", dag.WithCost(costAt(partSize, ioLightMBps))).
		SortByKey("sort", dag.WithCost(costAt(partSize, ioLightMBps)))
	g.SaveAsFile(sorted)
	return hibenchSpec("HB-Sort", "HiBench Sort", input, g)
}

// HiBenchWordCount: map + reduceByKey, nothing cached.
func HiBenchWordCount(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 3*GB)
	parts := defaultInt(p.Partitions, 24)
	partSize := input / int64(parts)
	g := dag.New()
	src := g.Source("hdfs:text", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	counts := src.FlatMap("words", dag.WithSizeFactor(1.2), dag.WithCost(costAt(partSize, mixedMBps))).
		ReduceByKey("counts", dag.WithSizeFactor(0.05), dag.WithCost(costAt(partSize, mixedMBps)))
	g.SaveAsFile(counts)
	return hibenchSpec("HB-WordCount", "HiBench WordCount", input, g)
}

// HiBenchTeraSort: a sampling job over the cached input followed
// immediately by the sort job — one reference at distance one.
func HiBenchTeraSort(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 3*GB)
	parts := defaultInt(p.Partitions, 24)
	partSize := input / int64(parts)
	g := dag.New()
	src := g.Source("hdfs:records", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	data := src.Map("parse", dag.WithCost(costAt(partSize, ioLightMBps))).Persist(block.MemoryAndDisk)
	g.Collect(data.Sample("rangeBounds", dag.WithSizeFactor(0.001),
		dag.WithCost(costAt(partSize, ioLightMBps))))
	sorted := data.SortByKey("teraSort", dag.WithCost(costAt(partSize, ioLightMBps)))
	g.SaveAsFile(sorted)
	return hibenchSpec("HB-TeraSort", "HiBench TeraSort", input, g)
}

// HiBenchPageRank: the Hadoop-style chained implementation — each
// iteration feeds the next directly, with no caching of anything but
// the link table, giving near-zero distances (unlike the GraphX
// implementation in SparkBench).
func HiBenchPageRank(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 1*GB)
	parts := defaultInt(p.Partitions, 24)
	iters := defaultInt(p.Iterations, 3)
	partSize := input / int64(parts)
	g := dag.New()
	src := g.Source("hdfs:links", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	links := src.Map("parseLinks", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	ranks := links.MapValues("initRanks", dag.WithSizeFactor(0.3),
		dag.WithCost(costAt(partSize, mixedMBps)))
	for i := 0; i < iters; i++ {
		contribs := links.ZipPartitions(fmt.Sprintf("contribs-%d", i), ranks,
			dag.WithCost(costAt(partSize, mixedMBps)))
		ranks = contribs.ReduceByKey(fmt.Sprintf("ranks-%d", i), dag.WithSizeFactor(0.3),
			dag.WithCost(costAt(partSize, mixedMBps)))
	}
	g.SaveAsFile(ranks) // a single job evaluates the whole chain
	return hibenchSpec("HB-PageRank", "HiBench PageRank", input, g)
}

// HiBenchBayes: Naive Bayes training — a few aggregation jobs over the
// cached training set.
func HiBenchBayes(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 2*GB)
	parts := defaultInt(p.Partitions, 24)
	partSize := input / int64(parts)
	g := dag.New()
	src := g.Source("hdfs:docs", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	data := src.Map("vectorize", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(data)
	labelCounts := data.MapPartitions("labelCounts", dag.WithPartSize(64*KB),
		dag.WithCost(costAt(partSize, mixedMBps))).
		ReduceByKey("aggLabels", dag.WithPartitions(4), dag.WithCost(costAt(64*KB, mixedMBps))).
		Cache()
	g.Collect(labelCounts)
	termFreqs := data.MapPartitions("termFreqs", dag.WithPartSize(1*MB),
		dag.WithCost(costAt(partSize, mixedMBps))).
		ReduceByKey("aggTerms", dag.WithPartitions(8), dag.WithCost(costAt(1*MB, mixedMBps))).
		Cache()
	g.Collect(termFreqs)
	// Model assembly works on the aggregated statistics only...
	idf := termFreqs.MapValues("idf", dag.WithCost(costAt(1*MB, mixedMBps)))
	g.Collect(idf)
	priors := labelCounts.MapValues("priors", dag.WithCost(costAt(64*KB, mixedMBps)))
	g.Collect(priors)
	// ...until the final posterior evaluation revisits the training set.
	model := data.Map("posterior", dag.WithCost(costAt(partSize, mixedMBps)))
	g.Count(model)
	return hibenchSpec("HB-Bayes", "HiBench Bayes", input, g)
}

// HiBenchKMeans: structurally the MLlib K-Means loop, like the
// SparkBench variant but with a longer Lloyd phase relative to
// initialization (Table 1: the one HiBench workload with substantial
// distances).
func HiBenchKMeans(p Params) *Spec {
	if p.Iterations == 0 {
		p.Iterations = 12
	}
	if p.InputBytes == 0 {
		p.InputBytes = 4 * GB
	}
	s := KMeans(p)
	return hibenchSpec("HB-KMeans", "HiBench K-Means", p.InputBytes, s.Graph)
}
