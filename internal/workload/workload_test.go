package workload

import (
	"testing"

	"mrdspark/internal/refdist"
)

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Build(name, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Errorf("spec name %q != %q", spec.Name, name)
			}
			if spec.Graph == nil || len(spec.Graph.Jobs) == 0 {
				t.Fatal("empty graph")
			}
			if err := spec.Graph.Validate(); err != nil {
				t.Fatalf("invalid DAG: %v", err)
			}
			if spec.InputBytes <= 0 {
				t.Error("input bytes not set")
			}
			if spec.Suite != "SparkBench" && spec.Suite != "HiBench" && spec.Suite != "Extensions" {
				t.Errorf("suite = %q", spec.Suite)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, err := Get("KM"); err != nil {
		t.Errorf("known workload rejected: %v", err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Build("nope", Params{}); err == nil {
		t.Error("Build of unknown workload accepted")
	}
	if len(Names()) != 23 {
		t.Errorf("registry holds %d workloads, want 23 (14 SparkBench + 6 HiBench + 3 extensions)", len(Names()))
	}
	if len(SparkBenchNames()) != 14 {
		t.Errorf("SparkBench names = %d, want 14", len(SparkBenchNames()))
	}
}

// Table 3's job counts are exact structural facts of the generators;
// pin the ones the experiments rely on.
func TestJobCountsMatchTable3(t *testing.T) {
	want := map[string]int{
		"KM": 17, "LinR": 6, "LogR": 7, "TC": 2, "SP": 3,
		"LP": 23, "SCC": 26, "PO": 15, "DT": 10, "MF": 8,
	}
	for name, jobs := range want {
		spec, err := Build(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(spec.Graph.Jobs); got != jobs {
			t.Errorf("%s jobs = %d, want %d", name, got, jobs)
		}
	}
}

func TestIterativeWorkloadsHaveSkippedStages(t *testing.T) {
	for _, name := range []string{"LP", "SCC", "PO", "MF", "PR", "CC"} {
		spec, _ := Build(name, Params{})
		c := spec.Graph.Characterize()
		if c.Stages <= c.ActiveStages {
			t.Errorf("%s: total %d <= active %d; lineage closure should inflate totals",
				name, c.Stages, c.ActiveStages)
		}
	}
}

func TestDistanceOrderingAcrossWorkloads(t *testing.T) {
	// The relative ordering the paper's Table 1 establishes and §5.10
	// leans on: LP and SCC far above everything; TC and SP near the
	// bottom; HiBench Sort/WordCount at zero.
	stats := map[string]refdist.Stats{}
	for _, name := range Names() {
		spec, _ := Build(name, Params{})
		stats[name] = refdist.FromGraph(spec.Graph).Stats()
	}
	for _, big := range []string{"LP", "SCC"} {
		for _, small := range []string{"TC", "SP", "LinR", "LogR", "KM", "PR"} {
			if stats[big].AvgStageDistance <= stats[small].AvgStageDistance {
				t.Errorf("%s avg stage distance %.2f <= %s %.2f",
					big, stats[big].AvgStageDistance, small, stats[small].AvgStageDistance)
			}
		}
	}
	for _, zero := range []string{"HB-Sort", "HB-WordCount"} {
		if s := stats[zero]; s.AvgStageDistance != 0 || s.MaxStageDistance != 0 {
			t.Errorf("%s distances = %+v, want all zero", zero, s)
		}
	}
	if stats["HB-KMeans"].AvgStageDistance < 3 {
		t.Errorf("HB-KMeans avg = %.2f, want substantial (paper: 6.60)", stats["HB-KMeans"].AvgStageDistance)
	}
}

func TestIterationsParameterScalesJobs(t *testing.T) {
	for _, name := range []string{"KM", "LinR", "LP", "PO", "MF", "DT"} {
		base, _ := Build(name, Params{})
		if base.Iterations == 0 {
			t.Errorf("%s has no iteration parameter", name)
			continue
		}
		tripled, _ := Build(name, Params{Iterations: 3 * base.Iterations})
		if len(tripled.Graph.Jobs) <= len(base.Graph.Jobs) {
			t.Errorf("%s: tripling iterations did not add jobs (%d -> %d)",
				name, len(base.Graph.Jobs), len(tripled.Graph.Jobs))
		}
		if tripled.Graph.ActiveStages() <= base.Graph.ActiveStages() {
			t.Errorf("%s: tripling iterations did not add stages", name)
		}
	}
}

func TestParamsOverrides(t *testing.T) {
	spec, _ := Build("PR", Params{Partitions: 12, InputBytes: 100 << 20})
	if spec.InputBytes != 100<<20 {
		t.Errorf("input override ignored: %d", spec.InputBytes)
	}
	src := spec.Graph.RDDs[0]
	if src.NumPartitions != 12 {
		t.Errorf("partition override ignored: %d", src.NumPartitions)
	}
}

func TestJobTypesMatchTable3(t *testing.T) {
	want := map[string]JobType{
		"KM": Mixed, "LinR": CPUIntensive, "LogR": CPUIntensive, "SVM": CPUIntensive,
		"DT": CPUIntensive, "MF": Mixed, "PR": IOIntensive, "TC": Mixed, "SP": Mixed,
		"LP": IOIntensive, "SVD": IOIntensive, "CC": IOIntensive, "SCC": IOIntensive,
		"PO": IOIntensive,
	}
	for name, jt := range want {
		spec, _ := Build(name, Params{})
		if spec.JobType != jt {
			t.Errorf("%s job type = %q, want %q", name, spec.JobType, jt)
		}
	}
}

func TestCachedRDDsExist(t *testing.T) {
	// Every SparkBench workload caches something (that is the point);
	// Sort and WordCount cache nothing.
	for _, name := range SparkBenchNames() {
		spec, _ := Build(name, Params{})
		if len(spec.Graph.CachedRDDs()) == 0 {
			t.Errorf("%s caches nothing", name)
		}
	}
	for _, name := range []string{"HB-Sort", "HB-WordCount"} {
		spec, _ := Build(name, Params{})
		if len(spec.Graph.CachedRDDs()) != 0 {
			t.Errorf("%s should cache nothing", name)
		}
	}
}

func TestCostAtFloorsAndScales(t *testing.T) {
	if costAt(1, 100) != 100 {
		t.Errorf("tiny input must hit the 100µs floor, got %d", costAt(1, 100))
	}
	if costAt(100*MB, 100) != 1_000_000 {
		t.Errorf("100MB at 100MB/s = %d µs, want 1s", costAt(100*MB, 100))
	}
	if costAt(10*MB, cpuHeavyMBps) <= costAt(10*MB, ioLightMBps) {
		t.Error("CPU-heavy rate must cost more than I/O-light")
	}
}

func TestExtensionWorkloads(t *testing.T) {
	for _, name := range []string{"EXT-BFS", "EXT-GBT", "EXT-StarJoin"} {
		spec, err := Build(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if spec.Suite != "Extensions" {
			t.Errorf("%s suite = %q", name, spec.Suite)
		}
		if err := spec.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(spec.Graph.CachedRDDs()) == 0 {
			t.Errorf("%s caches nothing", name)
		}
		st := refdist.FromGraph(spec.Graph).Stats()
		if st.Gaps == 0 {
			t.Errorf("%s has no reference gaps; cache management is moot", name)
		}
	}
	// Extensions stay out of the paper suites.
	for _, name := range SparkBenchNames() {
		if len(name) >= 4 && name[:4] == "EXT-" {
			t.Errorf("extension %s leaked into SparkBench names", name)
		}
	}
}
