// Package workload generates the application DAGs of the paper's
// benchmark suites: the fourteen SparkBench workloads of Table 3 and
// the six HiBench workloads of Table 1. Generators reproduce the
// *structure* that matters to cache management — job/stage counts,
// cached-RDD reference schedules, data volumes, CPU-vs-I/O intensity —
// following the shape of the real MLlib/GraphX implementations
// (gradient-descent loops, ALS sweeps, Pregel supersteps), not their
// numerical kernels.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// Byte-size helpers.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// JobType is the paper's Table 3 classification.
type JobType string

// Job types from Table 3.
const (
	CPUIntensive JobType = "CPU intensive"
	IOIntensive  JobType = "I/O intensive"
	Mixed        JobType = "Mixed"
)

// Params configures a generator. Zero values select the workload's
// defaults (which are tuned to the paper's Table 1/Table 3
// characteristics).
type Params struct {
	// Partitions is the base parallelism; defaults per workload.
	Partitions int
	// InputBytes scales the input dataset; defaults to Table 3's size.
	InputBytes int64
	// Iterations overrides the workload's iteration parameter where
	// one exists (0 = default). Fig 10 triples it.
	Iterations int
	// Seed, when nonzero, perturbs partition sizes and compute costs
	// by up to ±10% deterministically — "just new data as input" for
	// a recurring application. The paper averages each configuration
	// over 20 runs; distinct seeds make that averaging meaningful in
	// a deterministic simulator.
	Seed int64
	// MemoryOnly flips every cached RDD to MEMORY_ONLY (Spark's
	// default cache()): evicted blocks are lost and recompute from
	// lineage on the next reference instead of promoting from disk.
	// The evaluation default is the restorable MEMORY_AND_DISK mode
	// the paper's prefetching presumes (DESIGN.md §4); this switch
	// drives the storage-level study.
	MemoryOnly bool

	// DataRows and DataSkew parameterize the *executed* data plane
	// (internal/exec): the number of key/value rows generated per
	// source partition and the fraction of rows drawn from a small hot
	// key set (0 = uniform keys). Generation is a pure function of
	// (Seed, RDD, partition, DataRows, DataSkew), so executed inputs —
	// and therefore every operator output and shuffle — are
	// byte-identical across runs with equal Params. The simulator
	// ignores both fields, but they live here so the experiment run
	// cache (keyed on the whole Params struct) distinguishes runs over
	// different data shapes. Zero means the engine default (see
	// exec.DefaultRows).
	DataRows int
	// DataSkew is the hot-key probability in [0,1); see DataRows.
	DataSkew float64
}

// Spec is a generated workload: its DAG plus the metadata experiments
// report.
type Spec struct {
	Name       string // short name used in the paper's figures (KM, PR, ...)
	FullName   string
	Suite      string // "SparkBench" or "HiBench"
	Category   string // Table 3's category column
	JobType    JobType
	InputBytes int64
	Iterations int // iterations actually used (0 = not iterative)
	Graph      *dag.Graph
	// Params records the generation parameters the Spec was built with.
	// Generation is a pure function of (Name, Params), so the pair is a
	// complete identity for the DAG — what lets experiment runners
	// memoize simulations.
	Params Params
}

// Generator builds a workload DAG.
type Generator func(Params) *Spec

// registry holds the generators in the paper's Table 1 order.
var registry []struct {
	name string
	gen  Generator
}

func register(name string, gen Generator) {
	registry = append(registry, struct {
		name string
		gen  Generator
	}{name, gen})
}

// Get returns the generator for the short workload name (KM, LinR,
// ...), or an error listing the valid names.
func Get(name string) (Generator, error) {
	for _, e := range registry {
		if e.name == name {
			return e.gen, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, e := range registry {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, names)
}

// Names returns all workload names in Table 1 order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.name)
	}
	return out
}

// SparkBenchNames returns the fourteen SparkBench workload names in
// Table 3 order.
func SparkBenchNames() []string {
	var out []string
	for _, e := range registry {
		s := e.gen(Params{})
		if s.Suite == "SparkBench" {
			out = append(out, e.name)
		}
	}
	return out
}

// Build generates the named workload, or an error for unknown names.
func Build(name string, p Params) (*Spec, error) {
	gen, err := Get(name)
	if err != nil {
		return nil, err
	}
	spec := gen(p)
	spec.Params = p
	if p.Seed != 0 {
		perturb(spec.Graph, p.Seed)
	}
	if p.MemoryOnly {
		for _, r := range spec.Graph.CachedRDDs() {
			r.Persist(block.MemoryOnly)
		}
	}
	return spec, nil
}

// perturb applies the Seed's deterministic ±10% jitter to every RDD's
// partition size and compute cost. The DAG structure — and therefore
// every reference schedule — is untouched: recurring runs see the same
// workflow over different data.
func perturb(g *dag.Graph, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(v int64) int64 {
		if v <= 0 {
			return v
		}
		f := 0.9 + 0.2*rng.Float64()
		out := int64(float64(v) * f)
		if out < 1 {
			out = 1
		}
		return out
	}
	for _, r := range g.RDDs {
		r.PartSize = jitter(r.PartSize)
		r.CostPerPart = jitter(r.CostPerPart)
	}
}

// Compute-intensity cost model: per-partition compute cost expressed
// as an effective processing rate. CPU-intensive workloads crunch each
// byte slowly; I/O-intensive ones stream.
const (
	cpuHeavyMBps = 18  // heavy math per byte (regressions, SVM, trees)
	mixedMBps    = 120 // moderate computation
	ioLightMBps  = 900 // mostly data movement
)

// costAt returns the compute microseconds to process `bytes` at the
// given effective rate in MB/s.
func costAt(bytes int64, mbps int64) int64 {
	c := bytes * 1_000_000 / (mbps * MB)
	if c < 100 {
		c = 100 // floor: task launch + deserialization overhead
	}
	return c
}

func defaultInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func defaultInt64(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}
