package workload

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
)

// The paper's conclusion names "testing with more benchmarks" as
// future work. This file adds three workloads beyond the SparkBench
// and HiBench suites — a breadth-first search, gradient-boosted trees,
// and a TPC-H-style star join — registered under the "Extensions"
// suite. They run everywhere (mrdsim, the facade, the cross-policy
// tests) but stay out of the paper's tables, which are defined by the
// original suites.

func init() {
	register("EXT-BFS", ExtBFS)
	register("EXT-GBT", ExtGBT)
	register("EXT-StarJoin", ExtStarJoin)
}

// ExtBFS builds an unweighted breadth-first search: Pregel frontier
// expansion where each superstep's frontier is a fresh small cached
// RDD and the visited set accumulates — old frontiers die immediately
// (purge-friendly), the visited set is read every superstep.
func ExtBFS(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 1200*MB)
	parts := defaultInt(p.Partitions, 48)
	iters := defaultInt(p.Iterations, 10)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:edges", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	edges := src.Map("parseEdges", dag.WithCost(costAt(partSize, ioLightMBps))).
		PartitionBy("edgePartitions", dag.WithSizeFactor(1.2),
			dag.WithCost(costAt(partSize, ioLightMBps))).Persist(block.MemoryAndDisk)
	visited := edges.ReduceByKey("initVisited", dag.WithSizeFactor(0.3),
		dag.WithCost(costAt(partSize, ioLightMBps))).Persist(block.MemoryAndDisk)
	g.Count(visited)

	frontier := visited.Filter("rootFrontier", dag.WithSizeFactor(0.02),
		dag.WithCost(costAt(partSize, ioLightMBps))).Persist(block.MemoryAndDisk)
	for i := 0; i < iters; i++ {
		expand := frontier.ZipPartitions(fmt.Sprintf("expand-%d", i), edges,
			dag.WithSizeFactor(0.1), dag.WithCost(costAt(partSize, ioLightMBps)))
		next := expand.ReduceByKey(fmt.Sprintf("dedup-%d", i),
			dag.WithCost(costAt(partSize/8, mixedMBps)))
		frontier = next.ZipPartitions(fmt.Sprintf("unvisitedOnly-%d", i), visited,
			dag.WithCost(costAt(partSize/4, mixedMBps))).Persist(block.MemoryAndDisk)
		visited = visited.ZipPartitions(fmt.Sprintf("markVisited-%d", i), frontier,
			dag.WithCost(costAt(partSize/4, mixedMBps))).Persist(block.MemoryAndDisk)
		g.Count(frontier)
	}
	g.Count(visited)

	return &Spec{
		Name: "EXT-BFS", FullName: "Breadth-First Search",
		Suite: "Extensions", Category: "Graph Computation", JobType: IOIntensive,
		InputBytes: input, Iterations: iters, Graph: g,
	}
}

// ExtGBT builds gradient-boosted trees: sequential tree fitting where
// each round reads the cached training data AND the previous round's
// cached residuals — a two-generation live window, the awkward middle
// ground between KM's single hot RDD and LP's long lags.
func ExtGBT(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 2800*MB)
	parts := defaultInt(p.Partitions, int(input/(24*MB))+1)
	rounds := defaultInt(p.Iterations, 8)
	partSize := input / int64(parts)

	g := dag.New()
	src := g.Source("hdfs:samples", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	data := src.Map("parse", dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	g.Count(data)

	residuals := data.Map("initResiduals", dag.WithSizeFactor(0.25),
		dag.WithCost(costAt(partSize, mixedMBps))).Persist(block.MemoryAndDisk)
	for r := 0; r < rounds; r++ {
		stats := data.ZipPartitions(fmt.Sprintf("treeStats-%d", r), residuals,
			dag.WithPartSize(256*KB), dag.WithCost(costAt(partSize, cpuHeavyMBps)))
		tree := stats.ReduceByKey(fmt.Sprintf("bestSplits-%d", r), dag.WithPartitions(4),
			dag.WithCost(costAt(256*KB, mixedMBps)))
		g.Collect(tree)
		residuals = data.ZipPartitions(fmt.Sprintf("updateResiduals-%d", r), residuals,
			dag.WithSizeFactor(0.25), dag.WithCost(costAt(partSize, mixedMBps))).
			Persist(block.MemoryAndDisk)
		g.Count(residuals)
	}

	return &Spec{
		Name: "EXT-GBT", FullName: "Gradient-Boosted Trees",
		Suite: "Extensions", Category: "Machine Learning", JobType: Mixed,
		InputBytes: input, Iterations: rounds, Graph: g,
	}
}

// ExtStarJoin builds a TPC-H-style star join: a large cached fact
// table joined against several small cached dimension tables by a
// sequence of reporting queries, each touching a different dimension
// subset — reference gaps come from dimensions idling between the
// queries that need them.
func ExtStarJoin(p Params) *Spec {
	input := defaultInt64(p.InputBytes, 6*GB)
	parts := defaultInt(p.Partitions, int(input/(32*MB))+1)
	queries := defaultInt(p.Iterations, 9)
	partSize := input / int64(parts)

	g := dag.New()
	factSrc := g.Source("hdfs:fact", parts, partSize, dag.WithCost(costAt(partSize, ioLightMBps)))
	fact := factSrc.Map("parseFact", dag.WithCost(costAt(partSize, mixedMBps))).
		Persist(block.MemoryAndDisk)

	const nDims = 4
	dims := make([]*dag.RDD, nDims)
	for d := 0; d < nDims; d++ {
		dsrc := g.Source(fmt.Sprintf("hdfs:dim%d", d), parts/4+1, partSize/8,
			dag.WithCost(costAt(partSize/8, ioLightMBps)))
		dims[d] = dsrc.Map(fmt.Sprintf("parseDim%d", d),
			dag.WithCost(costAt(partSize/8, mixedMBps))).Persist(block.MemoryAndDisk)
	}
	g.Count(fact)

	for q := 0; q < queries; q++ {
		// Each query filters the fact table and joins one or two
		// dimensions, cycling so every dimension idles between uses.
		filtered := fact.Filter(fmt.Sprintf("where-%d", q), dag.WithSizeFactor(0.3),
			dag.WithCost(costAt(partSize, mixedMBps)))
		joined := filtered.ZipPartitions(fmt.Sprintf("joinDim-%d", q), dims[q%nDims],
			dag.WithCost(costAt(partSize/3, mixedMBps)))
		if q%2 == 1 {
			joined = joined.ZipPartitions(fmt.Sprintf("joinDim2-%d", q), dims[(q+2)%nDims],
				dag.WithCost(costAt(partSize/3, mixedMBps)))
		}
		report := joined.ReduceByKey(fmt.Sprintf("groupBy-%d", q), dag.WithSizeFactor(0.01),
			dag.WithCost(costAt(partSize/3, mixedMBps)))
		g.Collect(report)
	}

	return &Spec{
		Name: "EXT-StarJoin", FullName: "Star-Schema Reporting",
		Suite: "Extensions", Category: "SQL/Reporting", JobType: IOIntensive,
		InputBytes: input, Iterations: queries, Graph: g,
	}
}
