package check

import (
	"fmt"
	"testing"

	"mrdspark/internal/experiments"
)

// TestSimVsExec is the sim-vs-exec differential: six generated
// workloads × two data seeds × four policies, each demanding that the
// executed cache decisions are byte-identical to the advisor's (all
// policies) and to the batch simulator's (class A policies), that the
// engine is deterministic, and that its streams pass the exact
// invariant audit.
func TestSimVsExec(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		w := Generate(GenConfig{Seed: seed, Nodes: 4})
		for _, dataSeed := range []int64{0, 42} {
			for _, p := range ExecPolicies {
				name := fmt.Sprintf("%s/data%d/%s", w.Name, dataSeed, p.Name())
				if err := DiffExec(w, p, dataSeed); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		}
	}
}

// TestExecKillParity is the chaos leg: a worker dies (at a boundary,
// then mid-stage) and the executed output must still be byte-identical
// to a clean run's — lineage recompute, not luck.
func TestExecKillParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w := Generate(GenConfig{Seed: seed, Nodes: 4})
		for _, p := range []experiments.PolicySpec{experiments.SpecMRD, experiments.SpecLRU} {
			if err := DiffExecKill(w, p, 0); err != nil {
				t.Errorf("%s/%s: %v", w.Name, p.Name(), err)
			}
		}
	}
}
