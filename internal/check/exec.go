package check

import (
	"fmt"

	"mrdspark/internal/exec"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/workload"
)

// execLeg is one real execution of a workload — generated rows moving
// through the operators on the master/worker runtime, with the live
// block manager making the cache decisions the other legs only model.
type execLeg struct {
	res    exec.Result
	events []obs.Event
	agg    *obs.Aggregator
}

// execRows keeps the differential suite's executed data plane small:
// the decision plane is independent of row count, and tiny partitions
// keep a 6-workload × 2-seed × 4-policy sweep fast.
const execRows = 32

func runExecLeg(w *Workload, p experiments.PolicySpec, dataSeed int64, kill *exec.KillSpec) (*execLeg, error) {
	spec := &workload.Spec{
		Name:   w.Name,
		Graph:  w.Graph,
		Params: workload.Params{Seed: dataSeed, DataRows: execRows},
	}
	e, err := exec.New(spec, exec.Config{
		Workers:    w.Nodes,
		CacheBytes: w.CacheBytes,
		Policy:     p,
		Kill:       kill,
	})
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	bus := obs.New()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	agg := obs.NewAggregator()
	agg.Attach(bus)
	e.AttachBus(bus)
	res, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("exec run: %w", err)
	}
	return &execLeg{res: res, events: rec.Events(), agg: agg}, nil
}

// DiffExec runs one workload through the real execution engine and
// holds it to the modeled legs:
//
//   - Two executions produce byte-identical per-stage advice
//     fingerprints, job output digests and data-plane counters — the
//     engine is deterministic despite its concurrency.
//   - The executed advice fingerprints are byte-identical to the online
//     advisor's over the same graph, policy and cluster shape — for
//     EVERY policy, because the engine's boundary decision phase is the
//     advisor's procedure run against live stores.
//   - For class A policies the executed per-stage decision digests also
//     match the batch simulator's: sim-predicted and executed cache
//     decisions are the same decisions.
//   - The executed event stream survives JSONL exactly, rebuilds the
//     same Prometheus exposition on replay, and passes the invariant
//     auditor in exact mode; the prefetch ledger conserves, and the
//     engine reads exactly the blocks the DAG forces.
func DiffExec(w *Workload, p experiments.PolicySpec, dataSeed int64) error {
	exA, err := runExecLeg(w, p, dataSeed, nil)
	if err != nil {
		return err
	}
	exB, err := runExecLeg(w, p, dataSeed, nil)
	if err != nil {
		return err
	}
	if err := sameExec(exA, exB); err != nil {
		return fmt.Errorf("exec is nondeterministic: %w", err)
	}

	adv, err := runAdvisorLeg(w, p)
	if err != nil {
		return err
	}
	if len(exA.res.History) != len(adv.advice) {
		return fmt.Errorf("exec ran %d stages, advisor advised %d", len(exA.res.History), len(adv.advice))
	}
	for i := range adv.advice {
		fe, fa := exA.res.History[i].Fingerprint(), adv.advice[i].Fingerprint()
		if fe != fa {
			return fmt.Errorf("executed advice diverged from advisor at stage %d:\n  exec:    %s\n  advisor: %s",
				adv.advice[i].Stage, fe, fa)
		}
	}

	if ClassA(p) {
		sim, err := runSimLeg(w, p)
		if err != nil {
			return err
		}
		if d := diffDigests("sim", StageDigests(sim.events), "exec", StageDigests(exA.events)); d != "" {
			return fmt.Errorf("sim-predicted vs executed decisions diverge: %s", d)
		}
	}

	if err := roundTrip(exA.events); err != nil {
		return fmt.Errorf("exec stream: %w", err)
	}
	if err := samePrometheus(exA.agg, obs.Replay(exA.events)); err != nil {
		return fmt.Errorf("exec stream: %w", err)
	}
	if err := audit(w, exA.events, true); err != nil {
		return fmt.Errorf("exec stream: %w", err)
	}
	r := exA.res
	if got := r.Counters.Hits + r.Counters.Misses; got != w.TotalReads {
		return fmt.Errorf("exec read %d blocks, DAG forces %d", got, w.TotalReads)
	}
	if r.PrefetchIssued != r.PrefetchUsed+r.PrefetchWasted+r.PrefetchPending {
		return fmt.Errorf("exec prefetch ledger leaks: used %d + wasted %d + pending %d != issued %d",
			r.PrefetchUsed, r.PrefetchWasted, r.PrefetchPending, r.PrefetchIssued)
	}
	return nil
}

// DiffExecKill kills one worker mid-run — once deterministically at a
// stage boundary, once mid-stage under the running task wave — and
// demands the job still completes with byte-identical output to a
// clean run (the lineage-recompute guarantee), with the boundary kill
// additionally reproducing its own decision fingerprints exactly.
func DiffExecKill(w *Workload, p experiments.PolicySpec, dataSeed int64) error {
	clean, err := runExecLeg(w, p, dataSeed, nil)
	if err != nil {
		return err
	}
	stages := w.Graph.ExecutedStages()
	if len(stages) < 2 || w.Nodes < 2 {
		return fmt.Errorf("workload %s too small for a kill leg", w.Name)
	}
	kill := exec.KillSpec{Worker: 1, Stage: stages[len(stages)/2].ID}

	bdyA, err := runExecLeg(w, p, dataSeed, &kill)
	if err != nil {
		return fmt.Errorf("boundary kill: %w", err)
	}
	bdyB, err := runExecLeg(w, p, dataSeed, &kill)
	if err != nil {
		return fmt.Errorf("boundary kill: %w", err)
	}
	if err := sameExec(bdyA, bdyB); err != nil {
		return fmt.Errorf("boundary kill is nondeterministic: %w", err)
	}
	if err := sameOutput(clean, bdyA); err != nil {
		return fmt.Errorf("boundary kill changed the answer: %w", err)
	}
	if got := bdyA.res.Counters.Hits + bdyA.res.Counters.Misses; got != w.TotalReads {
		return fmt.Errorf("killed run read %d blocks, DAG forces %d", got, w.TotalReads)
	}

	midKill := kill
	midKill.Mid = true
	mid, err := runExecLeg(w, p, dataSeed, &midKill)
	if err != nil {
		return fmt.Errorf("mid-stage kill: %w", err)
	}
	if err := sameOutput(clean, mid); err != nil {
		return fmt.Errorf("mid-stage kill changed the answer: %w", err)
	}
	return nil
}

// sameExec demands two executions are indistinguishable: same advice
// fingerprints, same outputs, same data-plane counters.
func sameExec(a, b *execLeg) error {
	if len(a.res.History) != len(b.res.History) {
		return fmt.Errorf("%d stages vs %d", len(a.res.History), len(b.res.History))
	}
	for i := range a.res.History {
		fa, fb := a.res.History[i].Fingerprint(), b.res.History[i].Fingerprint()
		if fa != fb {
			return fmt.Errorf("advice %d:\n  %s\n  %s", i, fa, fb)
		}
	}
	if err := sameOutput(a, b); err != nil {
		return err
	}
	ra, rb := a.res, b.res
	if ra.TasksRun != rb.TasksRun || ra.Spills != rb.Spills || ra.SpillBytes != rb.SpillBytes ||
		ra.ShuffleBytes != rb.ShuffleBytes || ra.LineageRecomputes != rb.LineageRecomputes {
		return fmt.Errorf("data counters differ: tasks %d/%d spills %d/%d spillB %d/%d shuffleB %d/%d lineage %d/%d",
			ra.TasksRun, rb.TasksRun, ra.Spills, rb.Spills, ra.SpillBytes, rb.SpillBytes,
			ra.ShuffleBytes, rb.ShuffleBytes, ra.LineageRecomputes, rb.LineageRecomputes)
	}
	return nil
}

// sameOutput demands two executions computed the same answer.
func sameOutput(a, b *execLeg) error {
	if a.res.OutputDigest != b.res.OutputDigest {
		return fmt.Errorf("output digests %#x vs %#x", a.res.OutputDigest, b.res.OutputDigest)
	}
	if len(a.res.JobDigests) != len(b.res.JobDigests) {
		return fmt.Errorf("%d job digests vs %d", len(a.res.JobDigests), len(b.res.JobDigests))
	}
	for i := range a.res.JobDigests {
		if a.res.JobDigests[i] != b.res.JobDigests[i] {
			return fmt.Errorf("job %d digests %#x vs %#x", i, a.res.JobDigests[i], b.res.JobDigests[i])
		}
	}
	return nil
}

// ExecPolicies is the policy matrix the sim-vs-exec suite sweeps: the
// two classic baselines, eviction-only MRD (class A, so sim-exact),
// and full MRD with prefetching (advisor-exact).
var ExecPolicies = []experiments.PolicySpec{
	experiments.SpecLRU,
	experiments.SpecLRC,
	experiments.SpecMRDEvictOnly,
	experiments.SpecMRD,
}
