package check

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"

	"mrdspark/internal/experiments"
	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/service/wire"
	"mrdspark/internal/workload"
)

// transportWorkloads is the sweep for the transport-parity leg: one
// workload per structural family (iterative graph, multi-job SQL-ish,
// ML pipeline, HiBench batch) rather than all 23 — the transports are
// workload-blind, so what matters is varied schedule shapes, not an
// exhaustive catalog.
var transportWorkloads = []string{"SCC", "PR", "TC", "KM", "HB-PageRank", "SVD"}

// TestTransportParity is the differential guarantee the binary protocol
// rides on: for every swept workload and seed, the per-step JSON API,
// the per-step frame protocol, and the streamed frame batch all return
// decision streams byte-identical to the in-process advisor replay.
// Any divergence — codec bug, frame corruption, batch ordering slip —
// lands here as a fingerprint mismatch.
func TestTransportParity(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeFrames(ln)
	t.Cleanup(func() {
		ln.Close()
		ts.Close()
		srv.Close()
	})

	jsonC := client.New(client.Config{BaseURL: ts.URL})
	binC := client.New(client.Config{BaseURL: ts.URL, Binary: true, FrameAddr: ln.Addr().String()})
	t.Cleanup(binC.Close)

	cfg := service.AdvisorConfig{
		Nodes:      4,
		CacheBytes: 64 << 20,
		Policy:     experiments.PolicySpec{Kind: "MRD"},
	}

	for _, name := range transportWorkloads {
		for _, seed := range []int64{0, 11} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				params := workload.Params{Seed: seed}
				spec, err := workload.Build(name, params)
				if err != nil {
					t.Fatal(err)
				}
				adv, err := service.NewAdvisor(spec.Graph, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := service.Replay(adv)
				if err != nil {
					t.Fatal(err)
				}
				steps := service.Schedule(spec.Graph)

				legs := []struct {
					label string
					drive func(id string) ([]service.Advice, error)
				}{
					{"json", func(id string) ([]service.Advice, error) {
						return driveSteps(jsonC, id, name, params, cfg, steps)
					}},
					{"wire", func(id string) ([]service.Advice, error) {
						return driveSteps(binC, id, name, params, cfg, steps)
					}},
					{"batch", func(id string) ([]service.Advice, error) {
						return driveBatch(binC, id, name, params, cfg, steps)
					}},
				}
				for _, leg := range legs {
					id := fmt.Sprintf("tp-%s-%s-%d", leg.label, name, seed)
					got, err := leg.drive(id)
					if err != nil {
						t.Fatalf("%s leg: %v", leg.label, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s leg: %d advices, oracle has %d", leg.label, len(got), len(want))
					}
					for i := range got {
						if g, w := got[i].Fingerprint(), want[i].Fingerprint(); g != w {
							t.Fatalf("%s leg diverged at advice %d:\n  %s: %s\n  oracle: %s", leg.label, i, leg.label, g, w)
						}
					}
				}
			})
		}
	}
}

// driveSteps replays the schedule one call at a time over c.
func driveSteps(c *client.Client, id, name string, params workload.Params, cfg service.AdvisorConfig, steps []service.Step) ([]service.Advice, error) {
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: name, Params: params, Advisor: cfg,
	}); err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	var out []service.Advice
	for _, st := range steps {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, id, st.Job); err != nil {
				return nil, fmt.Errorf("submit job %d: %w", st.Job, err)
			}
			continue
		}
		adv, err := c.Advance(ctx, id, st.Stage)
		if err != nil {
			return nil, fmt.Errorf("advance stage %d: %w", st.Stage, err)
		}
		out = append(out, adv)
	}
	if err := c.DeleteSession(ctx, id); err != nil {
		return nil, fmt.Errorf("delete: %w", err)
	}
	return out, nil
}

// driveBatch replays the whole schedule in one batch call over c.
func driveBatch(c *client.Client, id, name string, params workload.Params, cfg service.AdvisorConfig, steps []service.Step) ([]service.Advice, error) {
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: name, Params: params, Advisor: cfg,
	}); err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	resp, err := c.RunBatch(ctx, id, steps)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	if err := c.DeleteSession(ctx, id); err != nil {
		return nil, fmt.Errorf("delete: %w", err)
	}
	return resp.Advices, nil
}

// FuzzWireFrame throws arbitrary bytes at the frame reader and the
// binary payload codecs. Three properties must hold whatever the
// input: nothing panics, a forged length or count fails with an error
// before any oversized allocation, and any payload that DOES decode
// as an advice survives an encode/decode round trip value-identical —
// so there is no byte sequence that two ends of a connection interpret
// as different decisions.
func FuzzWireFrame(f *testing.F) {
	// A well-formed advice frame, a well-formed batch frame, and the
	// interesting degenerate shapes.
	adviceSeed := func() []byte {
		var e wire.Enc
		e.Begin(wire.Header{Version: wire.Version, Op: wire.OpAdvice, Seq: 1})
		service.AppendAdvicePayload(&e, &service.Advice{
			Stage: 3, Job: 1,
			Decisions: []service.Decision{
				{Kind: "evict", Node: 2, Block: "r4p0"},
				{Kind: "prefetch", Node: 0, Block: "r7p3"},
			},
			Counters: service.Counters{Hits: 5, Misses: 2, Inserts: 3, Evictions: 1},
		})
		frame, err := e.Frame()
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}()
	batchSeed := func() []byte {
		var e wire.Enc
		e.Begin(wire.Header{Version: wire.Version, Op: wire.OpBatch, Seq: 2})
		service.AppendBatchPayload(&e, "fuzz-session", []service.Step{{Job: 0, Stage: -1}, {Job: 0, Stage: 4}})
		frame, err := e.Frame()
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}()
	f.Add(adviceSeed)
	f.Add(batchSeed)
	f.Add([]byte{})                            // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})      // length over MaxFrame
	f.Add([]byte{0, 0, 0, 4, 1, 0x15, 0, 0})   // length under HeaderLen
	f.Add(adviceSeed[:len(adviceSeed)-3])      // truncated mid-payload
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, _, err := wire.ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if len(payload) > wire.MaxFrame {
			t.Fatalf("payload of %d bytes escaped the MaxFrame cap", len(payload))
		}
		// Whatever the opcode claims, both decoders must handle the
		// payload without panicking.
		ad := wire.NewDec(payload)
		adv, advErr := service.DecodeAdvicePayload(&ad)
		bd := wire.NewDec(payload)
		if _, _, err := service.DecodeBatchPayload(&bd); err != nil {
			_ = err
		}
		if advErr != nil {
			return
		}
		// Round trip: re-encoding a decoded advice and decoding it again
		// must reproduce the same value.
		var e wire.Enc
		e.Begin(wire.Header{Version: wire.Version, Op: h.Op, Seq: h.Seq})
		service.AppendAdvicePayload(&e, &adv)
		frame, err := e.Frame()
		if err != nil {
			// Only possible if the re-encoding exceeds MaxFrame, which a
			// decodable input cannot (varint re-encoding never inflates a
			// valid payload past the frame it came from plus slack).
			t.Fatalf("re-encode of decoded advice failed: %v", err)
		}
		_, p2, _, err := wire.ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("re-read of re-encoded frame failed: %v", err)
		}
		d2 := wire.NewDec(p2)
		adv2, err := service.DecodeAdvicePayload(&d2)
		if err != nil {
			t.Fatalf("decode of re-encoded advice failed: %v", err)
		}
		if !reflect.DeepEqual(adv, adv2) {
			t.Fatalf("advice round trip diverged:\n  first:  %+v\n  second: %+v", adv, adv2)
		}
	})
}
