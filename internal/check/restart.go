package check

import (
	"encoding/json"
	"fmt"

	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/service"
)

// runRestartLeg replays the workload like runAdvisorLeg, but kills the
// advisor at every step index in restoreAt and resurrects it the way a
// failed-over shard would: snapshot, JSON wire round trip (the exact
// bytes a DirStore persists), then RestoreAdvisor into a fresh
// process-equivalent — new bus, new recorder, new aggregator, attached
// before op-log replay so the rebuilt session re-emits its whole event
// history. If restore is exact, the final recorder's stream, the final
// aggregator's exposition, the live advice stream, and the prefetch
// ledger are all byte-identical to a run that never died.
func runRestartLeg(w *Workload, p experiments.PolicySpec, restoreAt map[int]bool) (*advisorLeg, error) {
	adv, err := service.NewAdvisor(w.Graph, service.AdvisorConfig{
		Nodes: w.Nodes, CacheBytes: w.CacheBytes, Policy: p,
	})
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	bus := obs.New()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	agg := obs.NewAggregator()
	agg.Attach(bus)
	adv.AttachBus(bus)

	var advice []service.Advice
	for i, st := range service.Schedule(w.Graph) {
		if restoreAt[i] {
			snap := adv.Snapshot("restart-leg")
			data, err := json.Marshal(snap)
			if err != nil {
				return nil, fmt.Errorf("snapshot at step %d: %w", i, err)
			}
			var back service.Snapshot
			if err := json.Unmarshal(data, &back); err != nil {
				return nil, fmt.Errorf("snapshot round trip at step %d: %w", i, err)
			}
			// The old advisor, bus, recorder and aggregator are dropped
			// here — the "process" died. Everything observable must be
			// rebuilt by replay alone.
			bus = obs.New()
			rec = obs.NewRecorder()
			rec.Attach(bus)
			agg = obs.NewAggregator()
			agg.Attach(bus)
			adv, err = service.RestoreAdvisor(&back, w.Graph, bus)
			if err != nil {
				return nil, fmt.Errorf("restore at step %d: %w", i, err)
			}
		}
		if st.Stage < 0 {
			if err := adv.SubmitJob(st.Job); err != nil {
				return nil, fmt.Errorf("restart leg submit job %d: %w", st.Job, err)
			}
			continue
		}
		a, err := adv.Advance(st.Stage)
		if err != nil {
			return nil, fmt.Errorf("restart leg advance stage %d: %w", st.Stage, err)
		}
		advice = append(advice, a)
	}

	leg := &advisorLeg{advice: advice, events: rec.Events(), agg: agg}
	for _, a := range advice {
		leg.sum.Hits += a.Counters.Hits
		leg.sum.Misses += a.Counters.Misses
		leg.sum.Promotes += a.Counters.Promotes
		leg.sum.Recomputes += a.Counters.Recomputes
		leg.sum.Inserts += a.Counters.Inserts
		leg.sum.Evictions += a.Counters.Evictions
		leg.sum.Purged += a.Counters.Purged
		leg.sum.Prefetches += a.Counters.Prefetches
	}
	leg.issued, leg.used, leg.wasted, leg.pending = adv.PrefetchLedger()
	return leg, nil
}

// diffRestart compares the kill-and-restore leg against the baseline
// advisor leg: byte-identical advice fingerprints, identical event
// streams (the restored process re-emits history exactly), identical
// Prometheus expositions, a green exact-mode audit across the restore
// boundaries, and an unchanged prefetch ledger.
func diffRestart(w *Workload, baseline, restart *advisorLeg) error {
	if len(restart.advice) != len(baseline.advice) {
		return fmt.Errorf("kill-and-restore returned %d advices, baseline %d", len(restart.advice), len(baseline.advice))
	}
	for i := range baseline.advice {
		fb, fr := baseline.advice[i].Fingerprint(), restart.advice[i].Fingerprint()
		if fb != fr {
			return fmt.Errorf("kill-and-restore diverged at advice %d:\n  baseline %s\n  restored %s", i, fb, fr)
		}
	}
	if err := sameEvents(baseline.events, restart.events); err != nil {
		return fmt.Errorf("kill-and-restore stream: %w", err)
	}
	if err := samePrometheus(baseline.agg, restart.agg); err != nil {
		return fmt.Errorf("kill-and-restore stream: %w", err)
	}
	if err := audit(w, restart.events, true); err != nil {
		return fmt.Errorf("kill-and-restore stream: %w", err)
	}
	if restart.issued != baseline.issued || restart.used != baseline.used ||
		restart.wasted != baseline.wasted || restart.pending != baseline.pending {
		return fmt.Errorf("kill-and-restore prefetch ledger diverges: issued %d/%d used %d/%d wasted %d/%d pending %d/%d",
			restart.issued, baseline.issued, restart.used, baseline.used,
			restart.wasted, baseline.wasted, restart.pending, baseline.pending)
	}
	return nil
}
