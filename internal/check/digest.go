package check

import (
	"fmt"
	"sort"
	"strings"

	"mrdspark/internal/obs"
)

// cacheKinds are the event kinds that constitute a cache-decision
// stream: what the differential harness compares across
// implementations. Byte sizes are deliberately excluded — the two
// implementations agree on identities but annotate purges with
// different byte detail.
var cacheKinds = map[obs.Kind]bool{
	obs.KindHit:       true,
	obs.KindMiss:      true,
	obs.KindPromote:   true,
	obs.KindRecompute: true,
	obs.KindInsert:    true,
	obs.KindEvict:     true,
	obs.KindPurge:     true,
}

// StageDigests reduces an event stream to its per-stage cache-decision
// multisets: for each stage, the sorted "kind:node:block" entries of
// every cache event. Sorting makes the digest insensitive to the
// within-stage orderings the implementations legitimately differ in
// (the simulator resolves reads at plan time and inserts at task
// completion; the advisor applies reads then inserts) while remaining
// exact about what was decided, where, for which block.
func StageDigests(events []obs.Event) map[int][]string {
	d := map[int][]string{}
	for _, ev := range events {
		if !cacheKinds[ev.Kind] {
			continue
		}
		d[ev.Stage] = append(d[ev.Stage], fmt.Sprintf("%v:%d:%v", ev.Kind, ev.Node, ev.Block))
	}
	for _, entries := range d {
		sort.Strings(entries)
	}
	return d
}

// diffDigests explains the first difference between two per-stage
// digests, or returns "" when they are identical.
func diffDigests(aName string, a map[int][]string, bName string, b map[int][]string) string {
	var stages []int
	seen := map[int]bool{}
	for s := range a {
		stages, seen[s] = append(stages, s), true
	}
	for s := range b {
		if !seen[s] {
			stages = append(stages, s)
		}
	}
	sort.Ints(stages)
	for _, s := range stages {
		ea, eb := a[s], b[s]
		if strings.Join(ea, ",") == strings.Join(eb, ",") {
			continue
		}
		return fmt.Sprintf("stage %d: %s decided %v but %s decided %v", s, aName, firstDelta(ea, eb), bName, firstDelta(eb, ea))
	}
	return ""
}

// firstDelta returns the entries of a missing from b (bounded), or a
// note that a is a subset.
func firstDelta(a, b []string) []string {
	have := map[string]int{}
	for _, e := range b {
		have[e]++
	}
	var extra []string
	for _, e := range a {
		if have[e] > 0 {
			have[e]--
			continue
		}
		if extra = append(extra, e); len(extra) == 4 {
			break
		}
	}
	if len(extra) == 0 {
		return []string{"(subset: fewer events)"}
	}
	return extra
}
