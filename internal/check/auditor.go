package check

import (
	"errors"
	"fmt"
	"strings"

	"mrdspark/internal/block"
	"mrdspark/internal/obs"
)

// AuditorConfig shapes the invariant auditor for one event stream.
type AuditorConfig struct {
	// Nodes bounds the valid worker indices ([0, Nodes), plus
	// obs.ClusterScope).
	Nodes int
	// CacheBytes is the per-node capacity the stream's inserts must
	// respect (checked only under ExactInserts).
	CacheBytes int64
	// ExactInserts marks streams whose insert and prefetch-arrive
	// events are exact residency transitions — the advisor emits them
	// only for successful stores, so capacity and duplicate-insert
	// violations are real. The simulator's plan-time streams
	// over-approximate residency (an aborted prefetch still logs its
	// arrival), so those checks are skipped and the resident set is an
	// upper bound: membership failures are still sound violations.
	ExactInserts bool
	// ExpectedReads, when positive, is the DAG-determined read count
	// the stream's hits+misses must sum to at Finish.
	ExpectedReads int
}

// Auditor validates the conservation laws every advisory event stream
// must satisfy, whichever implementation produced it:
//
//   - Hits, evictions and purges only of blocks the stream previously
//     made resident; node indices in range.
//   - Per-node resident bytes never exceed capacity, and no block is
//     inserted twice without leaving in between (exact streams only).
//   - Prefetch arrivals never exceed prefetch issues.
//   - Every miss is resolved by a disk promote, a replica hit or a
//     recompute; promotes and replica hits never exceed misses.
//   - Node failures clear the node; lost blocks leave the resident set.
//   - Hits+misses equal the DAG-determined read count (when known).
//
// Attach it to a bus (AttachBus) for live auditing or feed a recorded
// stream through Observe, then call Finish for the end-of-stream laws.
type Auditor struct {
	cfg                                             AuditorConfig
	resident                                        []map[block.ID]int64 // per node: block -> size at insert
	bytes                                           []int64
	hits, misses, promotes, recomputes, replicaHits int
	issues, arrives                                 int
	violations                                      []string
}

// NewAuditor builds an auditor for a stream from a cluster of the
// given shape.
func NewAuditor(cfg AuditorConfig) *Auditor {
	a := &Auditor{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		a.resident = append(a.resident, map[block.ID]int64{})
	}
	a.bytes = make([]int64, cfg.Nodes)
	return a
}

// AttachBus subscribes the auditor to a live bus (obs.Attacher), so
// existing integration tests run audited by adding one line.
func (a *Auditor) AttachBus(b *obs.Bus) { b.Subscribe(a.Observe) }

// violate records a violation, keeping the report bounded.
func (a *Auditor) violate(format string, args ...any) {
	if len(a.violations) < 32 {
		a.violations = append(a.violations, fmt.Sprintf(format, args...))
	}
}

// Observe audits one event.
func (a *Auditor) Observe(ev obs.Event) {
	if ev.Node != obs.ClusterScope && (ev.Node < 0 || ev.Node >= a.cfg.Nodes) {
		a.violate("%v event on out-of-range node %d", ev.Kind, ev.Node)
		return
	}
	switch ev.Kind {
	case obs.KindHit:
		a.hits++
		if _, ok := a.resident[ev.Node][ev.Block]; !ok {
			a.violate("stage %d: hit on node %d for %v, which the stream never made resident there", ev.Stage, ev.Node, ev.Block)
		}
	case obs.KindMiss:
		a.misses++
		if _, ok := a.resident[ev.Node][ev.Block]; ok && a.cfg.ExactInserts {
			a.violate("stage %d: miss on node %d for resident block %v", ev.Stage, ev.Node, ev.Block)
		}
	case obs.KindPromote:
		a.promotes++
	case obs.KindRecompute:
		a.recomputes++
	case obs.KindReplicaHit:
		a.replicaHits++
	case obs.KindInsert, obs.KindPrefetchArrive:
		if ev.Kind == obs.KindPrefetchArrive {
			a.arrives++
		}
		if _, ok := a.resident[ev.Node][ev.Block]; ok {
			if a.cfg.ExactInserts {
				a.violate("stage %d: duplicate insert of %v on node %d", ev.Stage, ev.Block, ev.Node)
			}
			return
		}
		a.resident[ev.Node][ev.Block] = ev.Bytes
		a.bytes[ev.Node] += ev.Bytes
		if a.cfg.ExactInserts && a.bytes[ev.Node] > a.cfg.CacheBytes {
			a.violate("stage %d: node %d resident bytes %d exceed capacity %d after inserting %v",
				ev.Stage, ev.Node, a.bytes[ev.Node], a.cfg.CacheBytes, ev.Block)
		}
	case obs.KindEvict, obs.KindPurge:
		size, ok := a.resident[ev.Node][ev.Block]
		if !ok {
			a.violate("stage %d: %v of %v on node %d, which holds no such block", ev.Stage, ev.Kind, ev.Block, ev.Node)
			return
		}
		delete(a.resident[ev.Node], ev.Block)
		a.bytes[ev.Node] -= size
	case obs.KindBlockLost:
		// Loss can target a disk-only or already-evicted block; only
		// resident copies leave the set.
		if size, ok := a.resident[ev.Node][ev.Block]; ok {
			delete(a.resident[ev.Node], ev.Block)
			a.bytes[ev.Node] -= size
		}
	case obs.KindNodeFail:
		a.resident[ev.Node] = map[block.ID]int64{}
		a.bytes[ev.Node] = 0
	case obs.KindPrefetchIssue:
		a.issues++
	}
}

// Finish checks the end-of-stream conservation laws and returns every
// violation the stream accumulated, nil if the stream was clean.
func (a *Auditor) Finish() error {
	if a.arrives > a.issues {
		a.violate("%d prefetch arrivals exceed %d issues", a.arrives, a.issues)
	}
	if a.promotes+a.replicaHits > a.misses {
		a.violate("%d promotes + %d replica hits exceed %d misses", a.promotes, a.replicaHits, a.misses)
	}
	if a.promotes+a.replicaHits+a.recomputes < a.misses {
		a.violate("%d misses not all resolved: %d promotes + %d replica hits + %d recomputes",
			a.misses, a.promotes, a.replicaHits, a.recomputes)
	}
	if a.cfg.ExpectedReads > 0 && a.hits+a.misses != a.cfg.ExpectedReads {
		a.violate("hits %d + misses %d != DAG-determined reads %d", a.hits, a.misses, a.cfg.ExpectedReads)
	}
	return a.Err()
}

// Err returns the violations recorded so far without the end-of-stream
// checks (for mid-stream assertions).
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return errors.New("check: invariant violations:\n  " + strings.Join(a.violations, "\n  "))
}
