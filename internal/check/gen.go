// Package check is the differential correctness harness: it drives the
// project's three implementations of the cache-advisory semantics —
// the batch simulator (internal/sim), the online Advisor
// (internal/service) and the recorded-trace replay path (internal/obs)
// — over seeded random workloads and proves they agree, while an
// invariant auditor validates the conservation laws every event stream
// must satisfy (see DESIGN.md §10).
package check

import (
	"fmt"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/fault"
)

// GenConfig seeds the random-workload generator.
type GenConfig struct {
	// Seed fully determines the generated DAG: equal seeds generate
	// equal workloads, which is what lets fuzz findings be replayed.
	Seed int64
	// Nodes is the model cluster size; every generated RDD has exactly
	// this many partitions (see Generate). 0 means 4.
	Nodes int
}

// Workload is one generated differential-test case: a DAG plus the
// cluster shape to run it on and the read counts the DAG itself
// determines (which the auditor checks both implementations against).
type Workload struct {
	Name       string
	Graph      *dag.Graph
	Nodes      int
	CacheBytes int64
	// TotalReads is the number of cached-block reads the DAG forces:
	// the sum over executed stages of the stage frontier's partition
	// counts. Every implementation must report hits+misses equal to it.
	TotalReads int
	// StageReads maps executed stage ID to its frontier read count.
	StageReads map[int]int
}

// Generate builds a seeded random workload under the structural
// constraints that make cross-implementation comparison exact rather
// than merely statistical:
//
//   - Every RDD has exactly Nodes partitions, so each node holds one
//     block per RDD and the per-node sequence of policy operations is
//     identical between the simulator (task-completion order) and the
//     advisor (partition order) — byte-identical decision streams for
//     prefetch-free policies, not just equal aggregates.
//   - Between any two cached RDDs on a narrow lineage path there is a
//     shuffle, so a stage materializes at most one cached RDD and a
//     lineage recompute never walks through another cached RDD (the
//     simulator's chainCost would count such walks as extra reads the
//     state-only advisor cannot see).
//   - The per-node cache is sized between one block and the total
//     cached footprint, so eviction pressure is real but oversized
//     blocks (refused Puts) cannot occur.
func Generate(cfg GenConfig) *Workload {
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	p := nodes
	rng := fault.NewRNG(cfg.Seed)
	pick := func(n int) int { return int(rng.Uint64() % uint64(n)) }
	factor := func() dag.Opt { return dag.WithSizeFactor(0.6 + float64(pick(9))/10) }

	g := dag.New()
	src := g.Source("src", p, (2+int64(pick(6)))*256*cluster.KB)
	cur := src
	var cached []*dag.RDD
	njobs := 2 + pick(3)
	for j := 0; j < njobs; j++ {
		segs := 1 + pick(3)
		for k := 0; k < segs; k++ {
			// Every segment opens with a shuffle, so a Cache() at the
			// segment's end can never see another cached RDD through
			// narrow lineage.
			tag := fmt.Sprintf("%d_%d", j, k)
			if len(cached) > 0 && pick(3) == 0 {
				cur = cur.Join("join_"+tag, cached[pick(len(cached))], factor())
			} else {
				switch pick(3) {
				case 0:
					cur = cur.ReduceByKey("rbk_"+tag, factor())
				case 1:
					cur = cur.GroupByKey("gbk_"+tag, factor())
				default:
					cur = cur.SortByKey("sbk_"+tag, factor())
				}
			}
			for t, nt := 0, pick(3); t < nt; t++ {
				if pick(2) == 0 {
					cur = cur.Map(fmt.Sprintf("map_%s_%d", tag, t), factor())
				} else {
					cur = cur.Filter(fmt.Sprintf("filter_%s_%d", tag, t), factor())
				}
			}
			if pick(2) == 0 {
				if pick(2) == 0 {
					cur = cur.Persist(block.MemoryAndDisk)
				} else {
					cur = cur.Cache()
				}
				cached = append(cached, cur)
			}
		}
		// Sometimes zip the running chain with an earlier cached RDD
		// before the action: the zip stage then reads several cached
		// RDDs in one frontier, which is what distinguishes stage-start
		// read resolution from read-as-you-insert (the advisor's
		// one-phase interleaving bug only shows on such stages). The zip
		// result is never cached — a cached RDD must not have another on
		// its narrow lineage.
		if len(cached) > 0 && pick(2) == 0 {
			cur = cur.ZipPartitions(fmt.Sprintf("zip_%d", j), cached[pick(len(cached))])
		}
		g.Count(cur)
		// Zip an early cached RDD (churned since, often evicted by now)
		// with the newest one (usually still resident): the zip stage
		// reads both in one frontier, mixing misses with hits — the
		// stage shape where read-resolution order matters most (an
		// eager miss re-insert can displace the block the stage is
		// about to read).
		if len(cached) >= 2 && pick(2) == 0 {
			early := cached[pick((len(cached)+1)/2)]
			late := cached[len(cached)-1]
			if early != late {
				g.Collect(early.ZipPartitions(fmt.Sprintf("zippair_%d", j), late))
			}
		}
		// Re-read an earlier cached RDD directly, and sometimes continue
		// the next job from one — both create the long reference
		// distances the policies under test disagree about.
		if len(cached) > 0 && pick(2) == 0 {
			g.Collect(cached[pick(len(cached))])
		}
		if len(cached) > 0 && pick(3) == 0 {
			cur = cached[pick(len(cached))]
		}
	}
	if len(cached) == 0 {
		c := cur.ReduceByKey("tail_rbk").Map("tail_cached").Cache()
		g.Count(c)
		cached = append(cached, c)
	}
	// A tail of long-reference-distance re-reads: by now the later
	// segments have churned the cache, so revisiting the early cached
	// RDDs forces the misses, disk promotes and (under MRD) prefetches
	// the harness exists to compare.
	tail := 0
	for _, c := range cached {
		if pick(3) > 0 {
			g.Count(c)
			tail++
		}
	}
	if tail == 0 {
		g.Count(cached[0])
	}

	w := &Workload{
		Name:       fmt.Sprintf("gen-%d", cfg.Seed),
		Graph:      g,
		Nodes:      nodes,
		StageReads: map[int]int{},
	}
	// Walk the executed stages exactly as both implementations will, to
	// count the DAG-determined reads and size the cache: enough for the
	// largest block with slack, small enough that the cached footprint
	// does not fit and evictions happen.
	created := map[int]bool{}
	var maxBlock int64
	perNodeTotal := make([]int64, nodes)
	for _, s := range g.ExecutedStages() {
		reads, creates := dag.StageFrontier(s, func(id int) bool { return created[id] })
		n := 0
		for _, r := range reads {
			n += r.NumPartitions
		}
		for _, c := range creates {
			for q := 0; q < c.NumPartitions; q++ {
				perNodeTotal[cluster.HomeNode(c.Block(q), nodes)] += c.PartSize
			}
			created[c.ID] = true
		}
		w.StageReads[s.ID] = n
		w.TotalReads += n
	}
	var footprint int64
	for _, b := range perNodeTotal {
		if b > footprint {
			footprint = b
		}
	}
	for _, r := range g.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
	}
	w.CacheBytes = footprint / 2
	if floor := 2 * maxBlock; w.CacheBytes < floor {
		w.CacheBytes = floor
	}
	return w
}

// Cluster returns the model cluster configuration the workload runs
// on: the generated node count and cache size over the main testbed's
// device rates.
func (w *Workload) Cluster() cluster.Config {
	c := cluster.Main()
	c.Name = w.Name
	c.Nodes = w.Nodes
	return c.WithCache(w.CacheBytes)
}
