package check

import (
	"fmt"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/fault"
	"mrdspark/internal/obs"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// faultedSimEvents runs the workload through the simulator under the
// fault schedule and returns the recorded stream (after the
// simulator's own post-run audit passes).
func faultedSimEvents(t *testing.T, w *Workload, p experiments.PolicySpec, sched *fault.Schedule) []obs.Event {
	t.Helper()
	spec := &workload.Spec{Name: w.Name, Graph: w.Graph}
	s, err := sim.New(w.Graph, w.Cluster(), p.Factory(spec), w.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOptions(sim.Options{Fault: sched}); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	rec.Attach(s.Bus())
	s.Run()
	if err := s.Audit(); err != nil {
		t.Fatalf("sim audit under faults: %v", err)
	}
	return rec.Events()
}

// auditFaulted runs the invariant auditor over a faulted stream.
// ExpectedReads stays unset: recovery work legitimately changes read
// counts; the structural invariants (residency, capacity, conservation
// of the miss-resolution and prefetch ledgers) must still hold.
func auditFaulted(t *testing.T, w *Workload, events []obs.Event) {
	t.Helper()
	aud := NewAuditor(AuditorConfig{Nodes: w.Nodes, CacheBytes: w.CacheBytes})
	for _, ev := range events {
		aud.Observe(ev)
	}
	if err := aud.Finish(); err != nil {
		t.Errorf("auditor over faulted stream: %v", err)
	}
}

// TestAuditorHoldsUnderDoubleFaults drives the differential generator's
// workloads through the simulator under overlapping fault scenarios —
// crash-then-crash before rejoin, a straggler window a crash
// interrupts, and block loss on an already-crashed home — and checks
// the invariant auditor passes over every stream. These are the fault
// interleavings the crash-path fixes in this package's history pinned;
// the auditor keeps them fixed for every policy.
func TestAuditorHoldsUnderDoubleFaults(t *testing.T) {
	specs := []experiments.PolicySpec{{Kind: "LRU"}, {Kind: "MRD"}}
	for seed := int64(1); seed <= 6; seed++ {
		w := Generate(GenConfig{Seed: seed})
		// The generator's blocks all home on partition == node, so a
		// block of the first cached RDD with partition 1 homes on the
		// node the schedules crash.
		lost := block.ID{RDD: w.Graph.CachedRDDs()[0].ID, Partition: 1}
		scheds := map[string]*fault.Schedule{
			"crash-then-crash": {Seed: seed, Events: []fault.Event{
				{Stage: 2, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 100},
				{Stage: 4, Kind: fault.NodeCrash, Node: 1},
			}},
			"straggler-overlaps-crash": {Seed: seed, Events: []fault.Event{
				{Stage: 1, Kind: fault.Straggler, Node: 1, DiskFactor: 6, NetFactor: 6, Duration: 5},
				{Stage: 3, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 2},
			}},
			"lose-block-on-crashed-home": {Seed: seed, Events: []fault.Event{
				{Stage: 1, Kind: fault.NodeCrash, Node: 1, RejoinAfter: 4},
				{Stage: 2, Kind: fault.LoseBlock, Block: lost},
			}},
		}
		for name, sched := range scheds {
			if err := sched.Validate(w.Nodes); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			for _, p := range specs {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, name, p.Name()), func(t *testing.T) {
					events := faultedSimEvents(t, w, p, sched)
					auditFaulted(t, w, events)
				})
			}
		}
	}
}

// TestAuditorHoldsOnExperimentWorkloads wires the invariant auditor
// into the real experiment suite's workloads: every named workload,
// run on the main testbed under the paper's baseline and MRD policies,
// produces a stream with zero violations.
func TestAuditorHoldsOnExperimentWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment workload")
	}
	specs := []experiments.PolicySpec{{Kind: "LRU"}, {Kind: "MRD"}}
	for _, name := range workload.Names() {
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := cluster.Main()
		for _, p := range specs {
			t.Run(name+"/"+p.Name(), func(t *testing.T) {
				s, err := sim.New(spec.Graph, cfg, p.Factory(spec), name)
				if err != nil {
					t.Fatal(err)
				}
				rec := obs.NewRecorder()
				rec.Attach(s.Bus())
				s.Run()
				if err := s.Audit(); err != nil {
					t.Fatalf("sim audit: %v", err)
				}
				aud := NewAuditor(AuditorConfig{Nodes: cfg.Nodes, CacheBytes: cfg.CacheBytes})
				for _, ev := range rec.Events() {
					aud.Observe(ev)
				}
				if err := aud.Finish(); err != nil {
					t.Errorf("auditor: %v", err)
				}
			})
		}
	}
}
