package check

import (
	"bytes"
	"fmt"

	"mrdspark/internal/experiments"
	"mrdspark/internal/metrics"
	"mrdspark/internal/obs"
	"mrdspark/internal/service"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// ClassA reports whether the policy's decisions are a pure function of
// cache state — no prefetching, no runtime-feedback control loops. For
// class A policies the simulator and the advisor must produce
// byte-identical per-stage decision digests; prefetching policies
// (class B) legitimately differ per stage — the simulator's prefetches
// arrive asynchronously on modeled device queues, the advisor's land
// instantly — so they are held to the conservation laws instead.
func ClassA(p experiments.PolicySpec) bool {
	switch p.Kind {
	case "LRU", "FIFO", "LFU", "Hyperbolic", "GDS", "MIN", "LRC":
		return true
	case "MRD":
		return p.MRD.DisablePrefetch
	}
	return false
}

// advisorLeg is one online-Advisor replay of a workload.
type advisorLeg struct {
	advice                        []service.Advice
	events                        []obs.Event
	agg                           *obs.Aggregator
	sum                           service.Counters
	issued, used, wasted, pending int64
}

func runAdvisorLeg(w *Workload, p experiments.PolicySpec) (*advisorLeg, error) {
	adv, err := service.NewAdvisor(w.Graph, service.AdvisorConfig{
		Nodes: w.Nodes, CacheBytes: w.CacheBytes, Policy: p,
	})
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	bus := obs.New()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	agg := obs.NewAggregator()
	agg.Attach(bus)
	adv.AttachBus(bus)
	advice, err := service.Replay(adv)
	if err != nil {
		return nil, fmt.Errorf("advisor replay: %w", err)
	}
	leg := &advisorLeg{advice: advice, events: rec.Events(), agg: agg}
	for _, a := range advice {
		leg.sum.Hits += a.Counters.Hits
		leg.sum.Misses += a.Counters.Misses
		leg.sum.Promotes += a.Counters.Promotes
		leg.sum.Recomputes += a.Counters.Recomputes
		leg.sum.Inserts += a.Counters.Inserts
		leg.sum.Evictions += a.Counters.Evictions
		leg.sum.Purged += a.Counters.Purged
		leg.sum.Prefetches += a.Counters.Prefetches
	}
	leg.issued, leg.used, leg.wasted, leg.pending = adv.PrefetchLedger()
	return leg, nil
}

// simLeg is one batch-simulator run of a workload.
type simLeg struct {
	run    metrics.Run
	events []obs.Event
	agg    *obs.Aggregator
	nodes  []sim.NodeStats
}

func runSimLeg(w *Workload, p experiments.PolicySpec) (*simLeg, error) {
	spec := &workload.Spec{Name: w.Name, Graph: w.Graph}
	s, err := sim.New(w.Graph, w.Cluster(), p.Factory(spec), w.Name)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	agg := s.Observe()
	rec := obs.NewRecorder()
	rec.Attach(s.Bus())
	run := s.Run()
	if err := s.Audit(); err != nil {
		return nil, fmt.Errorf("sim audit: %w", err)
	}
	return &simLeg{run: run, events: rec.Events(), agg: agg, nodes: s.PerNode()}, nil
}

// roundTrip proves the stream survives its JSONL wire format exactly.
func roundTrip(events []obs.Event) error {
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		return fmt.Errorf("write jsonl: %w", err)
	}
	back, err := obs.ReadJSONL(&buf)
	if err != nil {
		return fmt.Errorf("read jsonl: %w", err)
	}
	if err := sameEvents(events, back); err != nil {
		return fmt.Errorf("jsonl round trip: %w", err)
	}
	return nil
}

func sameEvents(a, b []obs.Event) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d events vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}

// samePrometheus proves two aggregators render byte-identical
// Prometheus expositions.
func samePrometheus(live, replayed *obs.Aggregator) error {
	var a, b bytes.Buffer
	if err := obs.WritePrometheus(&a, live); err != nil {
		return err
	}
	if err := obs.WritePrometheus(&b, replayed); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("live and replayed Prometheus expositions differ (%d vs %d bytes)", a.Len(), b.Len())
	}
	return nil
}

// audit runs the invariant auditor over a recorded stream.
func audit(w *Workload, events []obs.Event, exact bool) error {
	aud := NewAuditor(AuditorConfig{
		Nodes: w.Nodes, CacheBytes: w.CacheBytes,
		ExactInserts: exact, ExpectedReads: w.TotalReads,
	})
	for _, ev := range events {
		aud.Observe(ev)
	}
	return aud.Finish()
}

// DiffPolicy runs one workload through all three implementations of
// the advisory semantics — batch simulator, online advisor, recorded
// JSONL replay — and returns the first disagreement:
//
//   - Two independent advisor replays produce byte-identical decision
//     fingerprints; two simulator runs produce identical event streams.
//   - A kill-and-restore replay — the advisor is snapshotted, dropped,
//     and rebuilt from the JSON-round-tripped snapshot at two points
//     mid-schedule — produces byte-identical advice fingerprints, the
//     same event stream, the same Prometheus exposition, and a green
//     exact-mode audit (the shard-failover guarantee).
//   - Both streams survive the JSONL wire format exactly, and an
//     aggregator rebuilt by replaying the recorded stream renders the
//     same Prometheus exposition as the live one.
//   - The invariant auditor passes over both streams (exact mode for
//     the advisor's, residency-upper-bound mode for the simulator's).
//   - Class A policies: per-stage decision digests and every cache
//     counter agree between simulator and advisor. Class B policies:
//     the conservation laws agree (total reads, miss resolution,
//     prefetch ledger).
func DiffPolicy(w *Workload, p experiments.PolicySpec) error {
	advA, err := runAdvisorLeg(w, p)
	if err != nil {
		return err
	}
	advB, err := runAdvisorLeg(w, p)
	if err != nil {
		return err
	}
	if len(advA.advice) != len(advB.advice) {
		return fmt.Errorf("advisor replays returned %d vs %d advices", len(advA.advice), len(advB.advice))
	}
	for i := range advA.advice {
		fa, fb := advA.advice[i].Fingerprint(), advB.advice[i].Fingerprint()
		if fa != fb {
			return fmt.Errorf("advisor replay diverged at advice %d:\n  %s\n  %s", i, fa, fb)
		}
	}
	if err := roundTrip(advA.events); err != nil {
		return fmt.Errorf("advisor stream: %w", err)
	}
	if err := samePrometheus(advA.agg, obs.Replay(advA.events)); err != nil {
		return fmt.Errorf("advisor stream: %w", err)
	}
	if err := audit(w, advA.events, true); err != nil {
		return fmt.Errorf("advisor stream: %w", err)
	}
	if advA.used+advA.wasted+advA.pending != advA.issued {
		return fmt.Errorf("advisor prefetch ledger leaks: used %d + wasted %d + pending %d != issued %d",
			advA.used, advA.wasted, advA.pending, advA.issued)
	}

	// Kill-and-restore leg: die at ~1/3 and ~2/3 of the schedule,
	// resurrect from a JSON-round-tripped snapshot, and demand the
	// resulting run is indistinguishable from one that never died.
	steps := len(service.Schedule(w.Graph))
	restart, err := runRestartLeg(w, p, map[int]bool{steps / 3: true, (2 * steps) / 3: true})
	if err != nil {
		return fmt.Errorf("kill-and-restore leg: %w", err)
	}
	if err := diffRestart(w, advA, restart); err != nil {
		return err
	}

	simA, err := runSimLeg(w, p)
	if err != nil {
		return err
	}
	simB, err := runSimLeg(w, p)
	if err != nil {
		return err
	}
	if err := sameEvents(simA.events, simB.events); err != nil {
		return fmt.Errorf("simulator is nondeterministic: %w", err)
	}
	if err := roundTrip(simA.events); err != nil {
		return fmt.Errorf("sim stream: %w", err)
	}
	// Device busy time is out-of-band state the simulator feeds the live
	// aggregator directly; backfill it so replay parity covers the rest.
	replayed := obs.Replay(simA.events)
	for _, n := range simA.nodes {
		replayed.SetNodeBusy(n.Node, n.DiskBusy, n.NetBusy)
	}
	if err := samePrometheus(simA.agg, replayed); err != nil {
		return fmt.Errorf("sim stream: %w", err)
	}
	if err := audit(w, simA.events, false); err != nil {
		return fmt.Errorf("sim stream: %w", err)
	}

	return diffCross(w, p, simA, advA)
}

// diffCross compares the simulator's and the advisor's views of the
// same workload.
func diffCross(w *Workload, p experiments.PolicySpec, s *simLeg, a *advisorLeg) error {
	if !ClassA(p) {
		// Conservation laws: both sides read exactly what the DAG
		// forces, resolve every miss, and balance the prefetch ledger
		// (the simulator's via sim.Audit, already run).
		if got := s.run.Hits + s.run.Misses; got != int64(w.TotalReads) {
			return fmt.Errorf("sim read %d blocks, DAG forces %d", got, w.TotalReads)
		}
		if got := a.sum.Hits + a.sum.Misses; got != w.TotalReads {
			return fmt.Errorf("advisor read %d blocks, DAG forces %d", got, w.TotalReads)
		}
		if s.run.Misses != s.run.DiskPromotes+s.run.Recomputes+s.run.ReplicaHits {
			return fmt.Errorf("sim misses %d != promotes %d + recomputes %d + replica hits %d",
				s.run.Misses, s.run.DiskPromotes, s.run.Recomputes, s.run.ReplicaHits)
		}
		if a.sum.Misses != a.sum.Promotes+a.sum.Recomputes {
			return fmt.Errorf("advisor misses %d != promotes %d + recomputes %d",
				a.sum.Misses, a.sum.Promotes, a.sum.Recomputes)
		}
		return nil
	}
	// Class A: the decision streams must match event for event.
	if d := diffDigests("sim", StageDigests(s.events), "advisor", StageDigests(a.events)); d != "" {
		return fmt.Errorf("decision digests diverge: %s", d)
	}
	for _, c := range []struct {
		name     string
		sim, adv int64
	}{
		{"hits", s.run.Hits, int64(a.sum.Hits)},
		{"misses", s.run.Misses, int64(a.sum.Misses)},
		{"promotes", s.run.DiskPromotes, int64(a.sum.Promotes)},
		{"recomputes", s.run.Recomputes, int64(a.sum.Recomputes)},
		{"evictions", s.run.Evictions, int64(a.sum.Evictions)},
		{"purged", s.run.PurgedBlocks, int64(a.sum.Purged)},
	} {
		if c.sim != c.adv {
			return fmt.Errorf("%s diverge: sim %d, advisor %d", c.name, c.sim, c.adv)
		}
	}
	return nil
}
