package check

import (
	"fmt"
	"testing"

	"mrdspark/internal/core"
	"mrdspark/internal/experiments"
)

// allSpecs is every registered policy configuration, class A and B.
var allSpecs = []experiments.PolicySpec{
	{Kind: "LRU"},
	{Kind: "FIFO"},
	{Kind: "LFU"},
	{Kind: "Hyperbolic"},
	{Kind: "GDS"},
	{Kind: "MIN"},
	{Kind: "LRC"},
	{Kind: "MemTune"},
	{Kind: "MRD"},
	{Kind: "MRD", MRD: core.Options{DisablePrefetch: true}, Label: "MRD-evict"},
	{Kind: "MRD", MRD: core.Options{DisableEviction: true}, Label: "MRD-prefetch"},
	{Kind: "MRD", MRD: core.Options{DynamicThreshold: true}, Label: "MRD-dynamic"},
}

// diffSeeds is how many random workloads the differential suite sweeps
// (the acceptance floor is 20).
const diffSeeds = 24

// TestGenerateDeterministic pins the generator contract: equal seeds
// build equal workloads, different seeds build different ones.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 7})
	b := Generate(GenConfig{Seed: 7})
	if a.TotalReads != b.TotalReads || a.CacheBytes != b.CacheBytes ||
		len(a.Graph.RDDs) != len(b.Graph.RDDs) || len(a.Graph.Jobs) != len(b.Graph.Jobs) {
		t.Fatalf("seed 7 generated different workloads: %+v vs %+v", a, b)
	}
	c := Generate(GenConfig{Seed: 8})
	if len(a.Graph.RDDs) == len(c.Graph.RDDs) && a.TotalReads == c.TotalReads && a.CacheBytes == c.CacheBytes {
		t.Fatalf("seeds 7 and 8 generated suspiciously identical workloads")
	}
}

// TestGenerateWellFormed checks every swept seed builds a valid,
// cache-exercising workload.
func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(1); seed <= diffSeeds; seed++ {
		w := Generate(GenConfig{Seed: seed})
		if err := w.Graph.Validate(); err != nil {
			t.Fatalf("seed %d: invalid DAG: %v", seed, err)
		}
		if len(w.Graph.CachedRDDs()) == 0 {
			t.Fatalf("seed %d: no cached RDDs", seed)
		}
		if w.TotalReads == 0 {
			t.Fatalf("seed %d: DAG forces no cached reads", seed)
		}
		if err := w.Cluster().Validate(); err != nil {
			t.Fatalf("seed %d: invalid cluster: %v", seed, err)
		}
	}
}

// TestDifferentialAllPolicies is the harness's core guarantee: every
// registered policy, over every swept seed, produces agreeing decision
// streams across the simulator, the online advisor and the recorded
// replay path — byte-identical digests for prefetch-free policies,
// conservation-law agreement for prefetching ones — with the invariant
// auditor passing over both streams.
func TestDifferentialAllPolicies(t *testing.T) {
	for seed := int64(1); seed <= diffSeeds; seed++ {
		w := Generate(GenConfig{Seed: seed})
		for _, p := range allSpecs {
			p := p
			t.Run(fmt.Sprintf("seed%d/%s", seed, p.Name()), func(t *testing.T) {
				if err := DiffPolicy(w, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
