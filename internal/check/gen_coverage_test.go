package check

import (
	"testing"

	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
)

// TestGeneratorCoverage guards the sweep's power: a differential suite
// over workloads that never evict, never miss, never prefetch and
// never mix hits with misses in one stage frontier would pass
// vacuously. These floors are what made the harness able to catch the
// advisor's one-phase read-resolution bug in mutation testing; keep
// them honest when tuning the generator.
func TestGeneratorCoverage(t *testing.T) {
	var evictions, misses, prefetches int64
	mixedStages := 0
	for seed := int64(1); seed <= diffSeeds; seed++ {
		w := Generate(GenConfig{Seed: seed})
		lru, err := runSimLeg(w, experiments.PolicySpec{Kind: "LRU"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evictions += lru.run.Evictions
		misses += lru.run.Misses
		mrd, err := runSimLeg(w, experiments.PolicySpec{Kind: "MRD"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prefetches += mrd.run.PrefetchIssued

		type tally struct{ hits, misses, rdds int }
		stages := map[int]*tally{}
		rdds := map[int]map[int]bool{}
		for _, ev := range lru.events {
			if ev.Kind != obs.KindHit && ev.Kind != obs.KindMiss {
				continue
			}
			if stages[ev.Stage] == nil {
				stages[ev.Stage] = &tally{}
				rdds[ev.Stage] = map[int]bool{}
			}
			rdds[ev.Stage][ev.Block.RDD] = true
			if ev.Kind == obs.KindHit {
				stages[ev.Stage].hits++
			} else {
				stages[ev.Stage].misses++
			}
		}
		for s, c := range stages {
			if len(rdds[s]) >= 2 && c.hits > 0 && c.misses > 0 {
				mixedStages++
			}
		}
	}
	if evictions == 0 {
		t.Errorf("no LRU evictions across %d seeds: no cache pressure", diffSeeds)
	}
	if misses == 0 {
		t.Errorf("no LRU misses across %d seeds: no re-read distance", diffSeeds)
	}
	if prefetches == 0 {
		t.Errorf("no MRD prefetches across %d seeds: class B paths unexercised", diffSeeds)
	}
	if mixedStages == 0 {
		t.Errorf("no multi-RDD stage frontier mixing hits and misses across %d seeds: read-resolution order untested", diffSeeds)
	}
}
