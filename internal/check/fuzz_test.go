package check

import (
	"sort"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/experiments"
	"mrdspark/internal/fault"
	"mrdspark/internal/obs"
	"mrdspark/internal/refdist"
	"mrdspark/internal/service"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// fuzzWorkload maps an arbitrary fuzz seed onto a small pool of
// generated workloads: the interesting state space is the operation
// interleaving, not the DAG count, and a bounded pool keeps every fuzz
// iteration cheap.
func fuzzWorkload(seed int64) *Workload {
	return Generate(GenConfig{Seed: seed&7 + 1})
}

// FuzzAdvisorSchedule drives the online advisor with an arbitrary
// interleaving of job submissions, stage advances (valid and invalid)
// and node failures. Whatever the order, the advisor must never panic,
// must reject out-of-protocol calls with errors, and must keep the
// prefetch ledger conserved after every operation.
func FuzzAdvisorSchedule(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 0, 1, 1, 2, 1, 0, 1, 1})
	f.Add(int64(3), []byte{0, 0, 0, 1, 1, 18, 1, 3, 1, 4, 1, 1, 1})
	f.Add(int64(5), []byte{1, 2, 34, 0, 1, 1, 50, 1, 0, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		w := fuzzWorkload(seed)
		adv, err := service.NewAdvisor(w.Graph, service.AdvisorConfig{
			Nodes: w.Nodes, CacheBytes: w.CacheBytes,
			Policy: experiments.PolicySpec{Kind: "MRD"},
		})
		if err != nil {
			t.Fatal(err)
		}
		stages := w.Graph.ExecutedStages()
		idx := 0
		check := func(when string) {
			issued, used, wasted, pending := adv.PrefetchLedger()
			if used+wasted+pending != issued {
				t.Fatalf("%s: ledger broken: used %d + wasted %d + pending %d != issued %d",
					when, used, wasted, pending, issued)
			}
		}
		for _, b := range ops {
			switch b % 5 {
			case 0:
				_ = adv.SubmitJob(adv.NextJob())
			case 1:
				if idx < len(stages) {
					if _, err := adv.Advance(stages[idx].ID); err == nil {
						idx++
					}
				}
			case 2:
				_ = adv.OnNodeFailure(int(b>>4) % w.Nodes)
			case 3:
				// A stage that is not part of the application must be an
				// error, never a panic or a state change.
				if _, err := adv.Advance(1 << 20); err == nil {
					t.Fatal("advance of a nonexistent stage succeeded")
				}
			case 4:
				// Out-of-order job submission must be rejected unless it
				// happens to be the next one.
				_ = adv.SubmitJob(int(b >> 4))
			}
			check("mid-stream")
		}
		check("final")
	})
}

// FuzzProfileAddJob feeds the ad-hoc profiler jobs in arbitrary
// (repeated, out-of-order) arrival orders. The profile must never
// panic, every RDD's read schedule must come back sorted by
// (stage, job), and Stats/NextRead must stay total.
func FuzzProfileAddJob(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2})
	f.Add(int64(2), []byte{2, 0, 1, 1, 0})
	f.Add(int64(6), []byte{3, 3, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, seed int64, order []byte) {
		if len(order) > 32 {
			order = order[:32]
		}
		w := fuzzWorkload(seed)
		jobs := w.Graph.Jobs
		p := refdist.NewProfile()
		for _, b := range order {
			p.AddJob(jobs[int(b)%len(jobs)])
		}
		for _, id := range p.RDDs() {
			reads := p.Reads(id)
			if !sort.SliceIsSorted(reads, func(a, b int) bool { return reads[a].Less(reads[b]) }) {
				t.Fatalf("rdd %d: read schedule out of order: %v", id, reads)
			}
			for _, r := range reads {
				if _, ok := p.NextRead(id, r.Stage-1); !ok {
					t.Fatalf("rdd %d: NextRead before stage %d found nothing, but a read is scheduled there", id, r.Stage)
				}
			}
		}
		_ = p.Stats()
	})
}

// FuzzFaultSchedule decodes arbitrary bytes into a fault schedule.
// Whatever decodes and validates must run to completion through the
// simulator with the post-run audit and the invariant auditor clean;
// what fails validation must fail with an error, not a panic.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), []byte{0, 2, 1, 3, 0, 4, 1, 0})
	f.Add(int64(2), []byte{1, 1, 1, 5, 2, 3, 1, 9})
	f.Add(int64(4), []byte{3, 2, 0, 7, 0, 1, 1, 0, 2, 4, 1, 2})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) > 24 {
			data = data[:24] // at most 6 events
		}
		w := fuzzWorkload(seed)
		cached := w.Graph.CachedRDDs()
		sched := &fault.Schedule{Seed: seed}
		for i := 0; i+4 <= len(data); i += 4 {
			kind, stage, node, extra := data[i], data[i+1], data[i+2], data[i+3]
			switch kind % 4 {
			case 0:
				sched.Events = append(sched.Events, fault.Event{
					Kind: fault.NodeCrash, Stage: int(stage % 12),
					Node: int(node), RejoinAfter: int(extra % 5),
				})
			case 1:
				sched.Events = append(sched.Events, fault.Event{
					Kind: fault.Straggler, Stage: int(stage % 12), Node: int(node),
					DiskFactor: float64(1 + extra%7), NetFactor: float64(1 + extra%5),
					Duration: 1 + int(stage%4),
				})
			case 2:
				sched.Events = append(sched.Events, fault.Event{
					Kind: fault.LoseBlock, Stage: int(stage % 12),
					Block: block.ID{RDD: cached[int(extra)%len(cached)].ID, Partition: int(node) % w.Nodes},
				})
			default:
				sched.Events = append(sched.Events, fault.Event{
					Kind: fault.CorruptBlock, Stage: int(stage % 12),
					Block: block.ID{RDD: cached[int(extra)%len(cached)].ID, Partition: int(node) % w.Nodes},
				})
			}
		}
		if err := sched.Validate(w.Nodes); err != nil {
			return // invalid schedules must be rejected, and were
		}
		p := experiments.PolicySpec{Kind: "MRD"}
		spec := &workload.Spec{Name: w.Name, Graph: w.Graph}
		s, err := sim.New(w.Graph, w.Cluster(), p.Factory(spec), w.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetOptions(sim.Options{Fault: sched}); err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		rec.Attach(s.Bus())
		s.Run()
		if err := s.Audit(); err != nil {
			t.Fatalf("sim audit under fuzzed faults %v: %v", sched.Events, err)
		}
		aud := NewAuditor(AuditorConfig{Nodes: w.Nodes, CacheBytes: w.CacheBytes})
		for _, ev := range rec.Events() {
			aud.Observe(ev)
		}
		if err := aud.Finish(); err != nil {
			t.Fatalf("auditor under fuzzed faults %v: %v", sched.Events, err)
		}
	})
}

// FuzzRegistryOps hammers the session registry with arbitrary
// create/get/delete/sweep interleavings. The registry must never
// panic, never exceed its session bound, and never resurrect a deleted
// session.
func FuzzRegistryOps(f *testing.F) {
	f.Add(uint8(2), []byte{0, 0, 0, 1, 2, 3, 0, 1})
	f.Add(uint8(1), []byte{0, 0, 2, 2, 0, 3})
	f.Add(uint8(5), []byte{0, 1, 0, 1, 0, 1, 2, 0, 3, 1})
	f.Fuzz(func(t *testing.T, max uint8, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		bound := 1 + int(max%8)
		r := service.NewRegistry(service.RegistryConfig{MaxSessions: bound})
		var ids []string
		deleted := map[string]bool{}
		for _, b := range ops {
			switch b % 4 {
			case 0:
				s := r.Create("fuzz", nil, nil)
				ids = append(ids, s.ID)
			case 1:
				if len(ids) > 0 {
					id := ids[int(b>>2)%len(ids)]
					if s, ok := r.Get(id); ok {
						if deleted[id] {
							t.Fatalf("deleted session %s came back", id)
						}
						if s.ID != id {
							t.Fatalf("Get(%s) returned session %s", id, s.ID)
						}
					}
				}
			case 2:
				if len(ids) > 0 {
					id := ids[int(b>>2)%len(ids)]
					if r.Delete(id) {
						deleted[id] = true
					}
				}
			case 3:
				_ = r.SweepIdle()
			}
			if n := r.Len(); n > bound {
				t.Fatalf("registry holds %d sessions over its bound %d", n, bound)
			}
		}
	})
}
