package obs

import (
	"sort"
	"sync"

	"mrdspark/internal/block"
	"mrdspark/internal/metrics"
)

// Default bucket layouts for the four run histograms.
var (
	// evictDistanceBounds buckets eviction victims by reference
	// distance in stages; infinite-distance victims land in overflow.
	evictDistanceBounds = []int64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	// prefetchLeadBounds buckets issue→first-use lead times (µs).
	prefetchLeadBounds = []int64{1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000}
	// fetchLatencyBounds buckets modeled remote-fetch service latency
	// including retry backoff (µs).
	fetchLatencyBounds = []int64{100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000}
	// recoveryBounds buckets lost-block recovery times: loss or
	// corruption detection to the block being resident again (µs).
	recoveryBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
)

// Aggregator is a streaming bus subscriber that folds the event stream
// into per-stage and per-node statistics, per-node stage lanes for the
// timeline report, and the four run histograms. Subscribe it with
// Attach; read the results after the run — or, for a live view while
// events are still flowing (the advisory server's /metrics endpoint),
// take a detached copy with Snapshot. Observe and every accessor hold
// the aggregator's mutex, so one aggregator may be fed from multiple
// buses and read concurrently.
type Aggregator struct {
	mu      sync.Mutex
	stages  []metrics.StageStats
	stageIx map[int]int // stage ID -> latest index in stages

	nodes map[int]*metrics.NodeStats

	lanes map[[2]int]*metrics.NodeStageSpan // (node, stage) -> span

	// EvictDistance distributes eviction verdicts by reference
	// distance; PrefetchLead distributes prefetch issue→first-use lead
	// times; FetchLatency distributes modeled remote-fetch latencies
	// including retries; RecoveryTime distributes lost-block
	// loss→re-resident times.
	EvictDistance *metrics.Histogram
	PrefetchLead  *metrics.Histogram
	FetchLatency  *metrics.Histogram
	RecoveryTime  *metrics.Histogram

	issued map[block.ID]int64 // prefetch-issue time per in-flight block
	lost   map[block.ID]int64 // loss/corruption-detect time per block
}

// NewAggregator builds an empty aggregator with the default histogram
// bucket layouts.
func NewAggregator() *Aggregator {
	return &Aggregator{
		stageIx:       map[int]int{},
		nodes:         map[int]*metrics.NodeStats{},
		lanes:         map[[2]int]*metrics.NodeStageSpan{},
		EvictDistance: metrics.NewHistogram("evict_ref_distance", "stages", evictDistanceBounds),
		PrefetchLead:  metrics.NewHistogram("prefetch_lead_time", "us", prefetchLeadBounds),
		FetchLatency:  metrics.NewHistogram("remote_fetch_latency", "us", fetchLatencyBounds),
		RecoveryTime:  metrics.NewHistogram("block_recovery_time", "us", recoveryBounds),
		issued:        map[block.ID]int64{},
		lost:          map[block.ID]int64{},
	}
}

// Attach subscribes the aggregator to the bus and returns the detach
// function that unsubscribes it again (see Bus.Subscribe for the
// synchronization contract).
func (a *Aggregator) Attach(b *Bus) (detach func()) { return b.Subscribe(a.Observe) }

// node returns (creating if needed) the stats entry for a worker.
// Cluster-scope events carry no node and are not charged to one.
func (a *Aggregator) node(id int) *metrics.NodeStats {
	n, ok := a.nodes[id]
	if !ok {
		n = &metrics.NodeStats{Node: id}
		a.nodes[id] = n
	}
	return n
}

// stage returns the open stats entry for the event's stage, creating a
// placeholder if an event arrives for a stage never started (drain
// events before the first stage).
func (a *Aggregator) stage(ev Event) *metrics.StageStats {
	if ix, ok := a.stageIx[ev.Stage]; ok {
		return &a.stages[ix]
	}
	a.stages = append(a.stages, metrics.StageStats{StageID: ev.Stage, JobID: ev.Job, StartUs: ev.At, EndUs: ev.At})
	a.stageIx[ev.Stage] = len(a.stages) - 1
	return &a.stages[len(a.stages)-1]
}

// Observe folds one event into the aggregates. It is the bus
// subscriber, safe to call from concurrent buses.
func (a *Aggregator) Observe(ev Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch ev.Kind {
	case KindStageStart:
		// A stage ID can re-execute across recurring jobs; each
		// execution gets a fresh entry and later events bind to it.
		a.stages = append(a.stages, metrics.StageStats{
			StageID: ev.Stage, JobID: ev.Job, Kind: ev.Verdict,
			Tasks: int(ev.Value), StartUs: ev.At, EndUs: ev.At,
		})
		a.stageIx[ev.Stage] = len(a.stages) - 1

	case KindStageEnd:
		a.stage(ev).EndUs = ev.At

	case KindTaskStart:
		a.node(ev.Node).Tasks++
		key := [2]int{ev.Node, ev.Stage}
		ln, ok := a.lanes[key]
		if !ok {
			ln = &metrics.NodeStageSpan{Node: ev.Node, StageID: ev.Stage, JobID: ev.Job, StartUs: ev.At, EndUs: ev.At}
			a.lanes[key] = ln
		}
		if ev.At < ln.StartUs {
			ln.StartUs = ev.At
		}
		ln.Tasks++

	case KindTaskEnd:
		if ln, ok := a.lanes[[2]int{ev.Node, ev.Stage}]; ok && ev.At > ln.EndUs {
			ln.EndUs = ev.At
		}

	case KindHit:
		a.stage(ev).Hits++
		a.node(ev.Node).Hits++
		if t, ok := a.issued[ev.Block]; ok {
			a.PrefetchLead.Observe(ev.At - t)
			a.stage(ev).PrefetchUsed++
			a.node(ev.Node).PrefetchUsed++
			delete(a.issued, ev.Block)
		}

	case KindMiss:
		a.stage(ev).Misses++
		a.node(ev.Node).Misses++

	case KindPromote:
		a.stage(ev).DiskPromotes++
		a.node(ev.Node).DiskPromotes++
		a.addBytes(ev)

	case KindRecompute:
		a.stage(ev).Recomputes++
		a.node(ev.Node).Recomputes++

	case KindInsert:
		a.stage(ev).Inserts++
		a.node(ev.Node).Inserts++
		a.addBytes(ev)
		if t, ok := a.lost[ev.Block]; ok {
			a.RecoveryTime.Observe(ev.At - t)
			delete(a.lost, ev.Block)
		}

	case KindEvict:
		a.stage(ev).Evictions++
		a.node(ev.Node).Evictions++
		a.dropIssued(ev)

	case KindPurge:
		a.stage(ev).Purged++
		a.node(ev.Node).Purged++
		a.dropIssued(ev)

	case KindPrefetchIssue:
		a.stage(ev).PrefetchIssued++
		a.node(ev.Node).PrefetchIssued++
		a.issued[ev.Block] = ev.At

	case KindPrefetchArrive:
		a.addBytes(ev)

	case KindEvictVerdict:
		// Victims with no remaining references (infinite distance,
		// negative sentinel) land in the overflow bucket: "further than
		// any finite distance".
		if ev.Verdict == "mrd" {
			d := ev.Value
			if d < 0 {
				d = evictDistanceBounds[len(evictDistanceBounds)-1] + 1
			}
			a.EvictDistance.Observe(d)
		}

	case KindRemoteFetch:
		a.FetchLatency.Observe(ev.Value)

	case KindFetchRetry:
		a.stage(ev).FetchRetries++

	case KindFetchGiveUp:
		a.stage(ev).FetchGiveUps++

	case KindNodeFail:
		a.node(ev.Node).Crashes++

	case KindStraggleBegin:
		a.node(ev.Node).Stragglers++

	case KindBlockLost, KindCorruptDetect:
		a.lost[ev.Block] = ev.At

	case KindReplicaWrite, KindReplicaHit:
		a.addBytes(ev)
	}
}

func (a *Aggregator) addBytes(ev Event) {
	a.stage(ev).BytesMoved += ev.Bytes
	if ev.Node != ClusterScope {
		a.node(ev.Node).BytesMoved += ev.Bytes
	}
}

// dropIssued settles a prefetched-but-never-used block when it is
// evicted or purged.
func (a *Aggregator) dropIssued(ev Event) {
	if _, ok := a.issued[ev.Block]; ok {
		a.stage(ev).PrefetchWasted++
		if ev.Node != ClusterScope {
			a.node(ev.Node).PrefetchWasted++
		}
		delete(a.issued, ev.Block)
	}
}

// SetNodeBusy records a node's device utilization; the simulator calls
// it once per node when the run completes (busy time lives in the
// device queues, not in events).
func (a *Aggregator) SetNodeBusy(node int, diskUs, netUs int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.node(node)
	n.DiskBusyUs = diskUs
	n.NetBusyUs = netUs
}

// StageStats returns the per-stage statistics in execution order.
func (a *Aggregator) StageStats() []metrics.StageStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]metrics.StageStats(nil), a.stages...)
}

// NodeStats returns the per-node statistics ordered by node index.
func (a *Aggregator) NodeStats() []metrics.NodeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]metrics.NodeStats, 0, len(a.nodes))
	for _, n := range a.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Lanes returns the per-node stage activity spans, ordered by node
// then start time — the rows of the report's per-node timeline.
func (a *Aggregator) Lanes() []metrics.NodeStageSpan {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]metrics.NodeStageSpan, 0, len(a.lanes))
	for _, ln := range a.lanes {
		out = append(out, *ln)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].StartUs != out[j].StartUs {
			return out[i].StartUs < out[j].StartUs
		}
		return out[i].StageID < out[j].StageID
	})
	return out
}

// Histograms returns the four run histograms in a stable order. The
// pointers are live: read them after the run has quiesced, or call
// Histograms on a Snapshot for a concurrent-safe view.
func (a *Aggregator) Histograms() []*metrics.Histogram {
	return []*metrics.Histogram{a.EvictDistance, a.PrefetchLead, a.FetchLatency, a.RecoveryTime}
}

// Snapshot returns a detached deep copy of the aggregates, safe to read
// (or render with WritePrometheus) while events keep flowing into the
// original.
func (a *Aggregator) Snapshot() *Aggregator {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Aggregator{
		stages:        append([]metrics.StageStats(nil), a.stages...),
		stageIx:       make(map[int]int, len(a.stageIx)),
		nodes:         make(map[int]*metrics.NodeStats, len(a.nodes)),
		lanes:         make(map[[2]int]*metrics.NodeStageSpan, len(a.lanes)),
		EvictDistance: cloneHistogram(a.EvictDistance),
		PrefetchLead:  cloneHistogram(a.PrefetchLead),
		FetchLatency:  cloneHistogram(a.FetchLatency),
		RecoveryTime:  cloneHistogram(a.RecoveryTime),
		issued:        make(map[block.ID]int64, len(a.issued)),
		lost:          make(map[block.ID]int64, len(a.lost)),
	}
	for k, v := range a.stageIx {
		s.stageIx[k] = v
	}
	for k, v := range a.nodes {
		n := *v
		s.nodes[k] = &n
	}
	for k, v := range a.lanes {
		ln := *v
		s.lanes[k] = &ln
	}
	for k, v := range a.issued {
		s.issued[k] = v
	}
	for k, v := range a.lost {
		s.lost[k] = v
	}
	return s
}

// cloneHistogram deep-copies a histogram's counts; the immutable bucket
// layout is shared.
func cloneHistogram(h *metrics.Histogram) *metrics.Histogram {
	c := *h
	c.Counts = append([]int64(nil), h.Counts...)
	return &c
}

// SynthesizeRun reconstructs the headline run counters from the
// aggregates — what an offline trace replay can recover when the
// original metrics.Run is not available. I/O volumes and wall time
// live outside the event stream and stay zero.
func (a *Aggregator) SynthesizeRun(workload, policy string) metrics.Run {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := metrics.Run{Workload: workload, Policy: policy}
	jobs := map[int]bool{}
	for _, st := range a.stages {
		r.Hits += st.Hits
		r.Misses += st.Misses
		r.DiskPromotes += st.DiskPromotes
		r.Recomputes += st.Recomputes
		r.Evictions += st.Evictions
		r.PurgedBlocks += st.Purged
		r.PrefetchIssued += st.PrefetchIssued
		r.PrefetchUsed += st.PrefetchUsed
		r.PrefetchWasted += st.PrefetchWasted
		r.FetchRetries += st.FetchRetries
		r.FetchGiveUps += st.FetchGiveUps
		r.StagesExecuted++
		jobs[st.JobID] = true
		if st.EndUs > r.JCT {
			r.JCT = st.EndUs
		}
	}
	r.Jobs = len(jobs)
	for _, n := range a.nodes {
		r.TasksExecuted += n.Tasks
		r.NodeCrashes += n.Crashes
		r.StragglerEvents += n.Stragglers
	}
	return r
}
