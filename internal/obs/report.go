package obs

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"mrdspark/internal/metrics"
)

// Report is everything the single-file HTML run report renders: the
// run's headline counters, the per-stage and per-node aggregates, the
// timeline lanes, the four histograms, and optional baseline runs of
// the same workload for the MRD-vs-baseline comparison table.
type Report struct {
	Title     string
	Run       metrics.Run
	Stages    []metrics.StageStats
	Nodes     []metrics.NodeStats
	Lanes     []metrics.NodeStageSpan
	Hists     []*metrics.Histogram
	Baselines []metrics.Run
}

// Report snapshots the aggregator into a renderable report for the
// completed run.
func (a *Aggregator) Report(run metrics.Run) *Report {
	return &Report{
		Title:  fmt.Sprintf("%s / %s", run.Workload, run.Policy),
		Run:    run,
		Stages: a.StageStats(),
		Nodes:  a.NodeStats(),
		Lanes:  a.Lanes(),
		Hists:  a.Histograms(),
	}
}

// AddBaseline appends a comparison run (same workload, another policy)
// to the report's comparison table.
func (r *Report) AddBaseline(run metrics.Run) { r.Baselines = append(r.Baselines, run) }

// Tableau-10 palette; stages cycle through it so adjacent stages stay
// distinguishable in the timelines.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// Timeline geometry. Rows are laid out top to bottom; the time axis is
// scaled into the fixed content width.
const (
	svgMarginLeft = 90
	svgContentW   = 820
	svgRowH       = 16
	svgRowGap     = 3
	svgAxisH      = 26
)

type svgRect struct {
	X, Y, W, H int
	Fill       string
	Tooltip    string
}

type svgLabel struct {
	X, Y int
	Text string
}

type svgTick struct {
	X     int
	Label string
}

type svgData struct {
	Width, Height int
	PlotH         int // height of the row area, for gridlines
	Rects         []svgRect
	Labels        []svgLabel
	Ticks         []svgTick
}

// fmtUs renders simulated microseconds for humans.
func fmtUs(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// fmtBytes renders byte volumes for humans.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// timeScale maps [t0,t1] onto the SVG content area.
type timeScale struct {
	t0, t1 int64
}

func (s timeScale) x(t int64) int {
	if s.t1 <= s.t0 {
		return svgMarginLeft
	}
	return svgMarginLeft + int(int64(svgContentW)*(t-s.t0)/(s.t1-s.t0))
}

func (s timeScale) ticks() []svgTick {
	const n = 5
	out := make([]svgTick, 0, n+1)
	for i := 0; i <= n; i++ {
		t := s.t0 + (s.t1-s.t0)*int64(i)/n
		out = append(out, svgTick{X: s.x(t), Label: fmtUs(t)})
	}
	return out
}

// stageGantt builds the Spark-UI-style stage timeline: one row per
// executed stage, colored by stage ID.
func stageGantt(stages []metrics.StageStats) svgData {
	if len(stages) == 0 {
		return svgData{Width: svgMarginLeft + svgContentW, Height: svgAxisH}
	}
	sc := timeScale{t0: stages[0].StartUs, t1: stages[0].EndUs}
	for _, st := range stages {
		if st.StartUs < sc.t0 {
			sc.t0 = st.StartUs
		}
		if st.EndUs > sc.t1 {
			sc.t1 = st.EndUs
		}
	}
	d := svgData{Width: svgMarginLeft + svgContentW}
	for i, st := range stages {
		y := i * (svgRowH + svgRowGap)
		x := sc.x(st.StartUs)
		w := sc.x(st.EndUs) - x
		if w < 1 {
			w = 1
		}
		d.Rects = append(d.Rects, svgRect{
			X: x, Y: y, W: w, H: svgRowH,
			Fill: palette[st.StageID%len(palette)],
			Tooltip: fmt.Sprintf("stage %d job %d (%s): %s, %d tasks, %d hits / %d misses",
				st.StageID, st.JobID, st.Kind, fmtUs(st.DurationUs()), st.Tasks, st.Hits, st.Misses),
		})
		d.Labels = append(d.Labels, svgLabel{X: svgMarginLeft - 6, Y: y + svgRowH - 4,
			Text: fmt.Sprintf("S%d j%d", st.StageID, st.JobID)})
	}
	d.PlotH = len(stages) * (svgRowH + svgRowGap)
	d.Height = d.PlotH + svgAxisH
	d.Ticks = sc.ticks()
	return d
}

// nodeGantt builds the per-node timeline: one row per worker, one rect
// per (node, stage) activity span, colored by stage ID.
func nodeGantt(nodes []metrics.NodeStats, lanes []metrics.NodeStageSpan) svgData {
	if len(lanes) == 0 {
		return svgData{Width: svgMarginLeft + svgContentW, Height: svgAxisH}
	}
	sc := timeScale{t0: lanes[0].StartUs, t1: lanes[0].EndUs}
	for _, ln := range lanes {
		if ln.StartUs < sc.t0 {
			sc.t0 = ln.StartUs
		}
		if ln.EndUs > sc.t1 {
			sc.t1 = ln.EndUs
		}
	}
	row := map[int]int{}
	for _, n := range nodes {
		row[n.Node] = len(row)
	}
	d := svgData{Width: svgMarginLeft + svgContentW}
	for _, ln := range lanes {
		ri, ok := row[ln.Node]
		if !ok {
			ri = len(row)
			row[ln.Node] = ri
		}
		y := ri * (svgRowH + svgRowGap)
		x := sc.x(ln.StartUs)
		w := sc.x(ln.EndUs) - x
		if w < 1 {
			w = 1
		}
		d.Rects = append(d.Rects, svgRect{
			X: x, Y: y, W: w, H: svgRowH,
			Fill: palette[ln.StageID%len(palette)],
			Tooltip: fmt.Sprintf("node %d stage %d job %d: %s, %d tasks",
				ln.Node, ln.StageID, ln.JobID, fmtUs(ln.EndUs-ln.StartUs), ln.Tasks),
		})
	}
	order := make([]int, 0, len(row))
	for node := range row {
		order = append(order, node)
	}
	sort.Ints(order)
	for _, node := range order {
		d.Labels = append(d.Labels, svgLabel{X: svgMarginLeft - 6, Y: row[node]*(svgRowH+svgRowGap) + svgRowH - 4,
			Text: fmt.Sprintf("node %d", node)})
	}
	d.PlotH = len(row) * (svgRowH + svgRowGap)
	d.Height = d.PlotH + svgAxisH
	d.Ticks = sc.ticks()
	return d
}

// histData is one histogram prepared for the report's bar tables.
type histData struct {
	Name, Unit string
	Count      int64
	Mean       string
	Min, Max   string
	Rows       []histRow
}

type histRow struct {
	Range string
	Count int64
	Pct   float64 // bar width, percent of the largest bucket
}

func histTable(h *metrics.Histogram) histData {
	d := histData{Name: h.Name, Unit: h.Unit, Count: h.Count}
	if h.Count > 0 {
		d.Mean = fmt.Sprintf("%.1f", h.Mean())
		d.Min, d.Max = fmt.Sprint(h.Min), fmt.Sprint(h.Max)
	}
	var biggest int64 = 1
	for _, c := range h.Counts {
		if c > biggest {
			biggest = c
		}
	}
	if h.Overflow > biggest {
		biggest = h.Overflow
	}
	lo := int64(0)
	for i, bound := range h.Bounds {
		label := fmt.Sprintf("%d – %d", lo, bound)
		if i == 0 {
			label = fmt.Sprintf("≤ %d", bound)
		}
		d.Rows = append(d.Rows, histRow{Range: label, Count: h.Counts[i],
			Pct: 100 * float64(h.Counts[i]) / float64(biggest)})
		lo = bound + 1
	}
	d.Rows = append(d.Rows, histRow{Range: fmt.Sprintf("> %d", h.Bounds[len(h.Bounds)-1]),
		Count: h.Overflow, Pct: 100 * float64(h.Overflow) / float64(biggest)})
	return d
}

// runRow is one line of the comparison table.
type runRow struct {
	Policy    string
	JCT       string
	RelJCT    string // normalized to the first row
	HitPct    string
	Evicted   int64
	Recompute int64
	Prefetch  string
	AccPct    string
}

func makeRunRow(r metrics.Run, base metrics.Run) runRow {
	row := runRow{
		Policy:    r.Policy,
		JCT:       fmtUs(r.JCT),
		RelJCT:    "1.00×",
		HitPct:    fmt.Sprintf("%.1f%%", 100*r.HitRatio()),
		Evicted:   r.Evictions,
		Recompute: r.Recomputes,
		Prefetch:  fmt.Sprintf("%d / %d", r.PrefetchUsed, r.PrefetchIssued),
		AccPct:    fmt.Sprintf("%.0f%%", 100*r.PrefetchAccuracy()),
	}
	if base.JCT > 0 {
		row.RelJCT = fmt.Sprintf("%.2f×", float64(r.JCT)/float64(base.JCT))
	}
	return row
}

// WriteHTML renders the report as one self-contained HTML document:
// inline CSS, inline SVG timelines, no external assets.
func (r *Report) WriteHTML(w io.Writer) error {
	type headline struct{ Label, Value string }
	data := struct {
		Title      string
		Headlines  []headline
		Comparison []runRow
		Stages     []metrics.StageStats
		Nodes      []metrics.NodeStats
		StageGantt svgData
		NodeGantt  svgData
		Hists      []histData
		Warning    string
	}{
		Title:      r.Title,
		StageGantt: stageGantt(r.Stages),
		NodeGantt:  nodeGantt(r.Nodes, r.Lanes),
		Warning:    r.Run.FaultWarning,
	}
	data.Headlines = []headline{
		{"JCT", fmtUs(r.Run.JCT)},
		{"Hit ratio", fmt.Sprintf("%.1f%%", 100*r.Run.HitRatio())},
		{"Hits / misses", fmt.Sprintf("%d / %d", r.Run.Hits, r.Run.Misses)},
		{"Evictions", fmt.Sprint(r.Run.Evictions)},
		{"Purged", fmt.Sprint(r.Run.PurgedBlocks)},
		{"Prefetch used / issued", fmt.Sprintf("%d / %d", r.Run.PrefetchUsed, r.Run.PrefetchIssued)},
		{"Recomputes", fmt.Sprint(r.Run.Recomputes)},
		{"Stage input", fmtBytes(r.Run.StageInputBytes)},
		{"Shuffle r/w", fmtBytes(r.Run.ShuffleReadBytes) + " / " + fmtBytes(r.Run.ShuffleWriteBytes)},
		{"Stages (skipped)", fmt.Sprintf("%d (%d)", r.Run.StagesExecuted, r.Run.StagesSkipped)},
		{"Tasks", fmt.Sprint(r.Run.TasksExecuted)},
	}
	if r.Run.NodeCrashes+r.Run.StragglerEvents+r.Run.BlocksLost+r.Run.BlocksCorrupted > 0 {
		data.Headlines = append(data.Headlines,
			headline{"Faults (crash/straggle/lost/corrupt)", fmt.Sprintf("%d/%d/%d/%d",
				r.Run.NodeCrashes, r.Run.StragglerEvents, r.Run.BlocksLost, r.Run.BlocksCorrupted)})
	}
	data.Comparison = []runRow{makeRunRow(r.Run, r.Run)}
	for _, b := range r.Baselines {
		data.Comparison = append(data.Comparison, makeRunRow(b, r.Run))
	}
	data.Stages = r.Stages
	data.Nodes = r.Nodes
	for _, h := range r.Hists {
		data.Hists = append(data.Hists, histTable(h))
	}
	return reportTmpl.Execute(w, data)
}

var reportTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"us":    fmtUs,
	"bytes": fmtBytes,
}).Parse(reportHTML + ganttTmplHTML))

const reportHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mrdspark report — {{.Title}}</title>
<style>
body { font: 14px/1.45 -apple-system, "Segoe UI", Roboto, sans-serif; color: #1b1f24; margin: 2em auto; max-width: 960px; padding: 0 1em; }
h1 { font-size: 1.4em; border-bottom: 2px solid #4e79a7; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #d6d9dd; padding: 3px 8px; text-align: right; }
th { background: #f2f4f7; }
td:first-child, th:first-child { text-align: left; }
.cards { display: flex; flex-wrap: wrap; gap: 8px; }
.card { border: 1px solid #d6d9dd; border-radius: 6px; padding: 6px 12px; background: #fafbfc; }
.card b { display: block; font-size: 16px; }
.card span { color: #57606a; font-size: 12px; }
.bar { background: #4e79a7; height: 10px; display: inline-block; vertical-align: middle; }
.warn { background: #fff3cd; border: 1px solid #ffe69c; padding: .5em 1em; border-radius: 6px; }
svg text { font: 11px sans-serif; fill: #57606a; }
svg .lane { stroke: #fff; stroke-width: .5; }
svg .grid { stroke: #e3e6ea; }
</style>
</head>
<body>
<h1>mrdspark run report — {{.Title}}</h1>

<div class="cards">
{{range .Headlines}}<div class="card"><b>{{.Value}}</b><span>{{.Label}}</span></div>
{{end}}</div>

{{if .Warning}}<p class="warn">{{.Warning}}</p>{{end}}

{{if gt (len .Comparison) 1}}
<h2>Policy comparison</h2>
<table>
<tr><th>policy</th><th>JCT</th><th>vs {{(index .Comparison 0).Policy}}</th><th>hit ratio</th><th>evictions</th><th>recomputes</th><th>prefetch used/issued</th><th>accuracy</th></tr>
{{range .Comparison}}<tr><td>{{.Policy}}</td><td>{{.JCT}}</td><td>{{.RelJCT}}</td><td>{{.HitPct}}</td><td>{{.Evicted}}</td><td>{{.Recompute}}</td><td>{{.Prefetch}}</td><td>{{.AccPct}}</td></tr>
{{end}}</table>
{{end}}

<h2>Stage timeline</h2>
{{template "gantt" .StageGantt}}

<h2>Per-node timeline</h2>
{{template "gantt" .NodeGantt}}

<h2>Stages</h2>
<table>
<tr><th>stage</th><th>job</th><th>kind</th><th>tasks</th><th>duration</th><th>hits</th><th>misses</th><th>promotes</th><th>recomputes</th><th>inserts</th><th>evict</th><th>purge</th><th>pf iss/used/waste</th><th>retry/giveup</th><th>bytes</th></tr>
{{range .Stages}}<tr><td>{{.StageID}}</td><td>{{.JobID}}</td><td>{{.Kind}}</td><td>{{.Tasks}}</td><td>{{us .DurationUs}}</td><td>{{.Hits}}</td><td>{{.Misses}}</td><td>{{.DiskPromotes}}</td><td>{{.Recomputes}}</td><td>{{.Inserts}}</td><td>{{.Evictions}}</td><td>{{.Purged}}</td><td>{{.PrefetchIssued}}/{{.PrefetchUsed}}/{{.PrefetchWasted}}</td><td>{{.FetchRetries}}/{{.FetchGiveUps}}</td><td>{{bytes .BytesMoved}}</td></tr>
{{end}}</table>

<h2>Nodes</h2>
<table>
<tr><th>node</th><th>tasks</th><th>hits</th><th>misses</th><th>promotes</th><th>recomputes</th><th>inserts</th><th>evict</th><th>purge</th><th>pf iss/used/waste</th><th>crashes</th><th>stragglers</th><th>disk busy</th><th>net busy</th><th>bytes</th></tr>
{{range .Nodes}}<tr><td>{{.Node}}</td><td>{{.Tasks}}</td><td>{{.Hits}}</td><td>{{.Misses}}</td><td>{{.DiskPromotes}}</td><td>{{.Recomputes}}</td><td>{{.Inserts}}</td><td>{{.Evictions}}</td><td>{{.Purged}}</td><td>{{.PrefetchIssued}}/{{.PrefetchUsed}}/{{.PrefetchWasted}}</td><td>{{.Crashes}}</td><td>{{.Stragglers}}</td><td>{{us .DiskBusyUs}}</td><td>{{us .NetBusyUs}}</td><td>{{bytes .BytesMoved}}</td></tr>
{{end}}</table>

{{range .Hists}}
<h2>{{.Name}} ({{.Unit}})</h2>
{{if eq .Count 0}}<p>No samples.</p>{{else}}
<p>n={{.Count}}, mean={{.Mean}}, min={{.Min}}, max={{.Max}}</p>
<table>
<tr><th>range ({{.Unit}})</th><th>count</th><th></th></tr>
{{range .Rows}}<tr><td>{{.Range}}</td><td>{{.Count}}</td><td style="text-align:left;width:40%"><span class="bar" style="width:{{printf "%.1f" .Pct}}%"></span></td></tr>
{{end}}</table>
{{end}}
{{end}}

</body>
</html>`

// ganttTmplHTML is the shared SVG Gantt block: the run report's stage
// and node timelines and the trace waterfall (tracereport.go) all
// render through it.
const ganttTmplHTML = `{{define "gantt"}}
<svg width="{{.Width}}" height="{{.Height}}" viewBox="0 0 {{.Width}} {{.Height}}" role="img">
{{range .Ticks}}<line class="grid" x1="{{.X}}" y1="0" x2="{{.X}}" y2="{{$.PlotH}}"/>
<text x="{{.X}}" y="{{$.PlotH}}" dy="14" text-anchor="middle">{{.Label}}</text>
{{end}}{{range .Labels}}<text x="{{.X}}" y="{{.Y}}" text-anchor="end">{{.Text}}</text>
{{end}}{{range .Rects}}<rect class="lane" x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" fill="{{.Fill}}"><title>{{.Tooltip}}</title></rect>
{{end}}</svg>
{{end}}`
