// Package trace is the service tier's distributed-tracing layer: a
// low-overhead span recorder with W3C-style traceparent propagation,
// built on the same discipline as obs.Emit — a disabled (nil) Tracer
// costs one compare and zero allocations on the hot path, so every
// emission site is unconditional.
//
// Spans are value types: Start returns an ActiveSpan on the caller's
// stack, End copies the finished Span into the tracer's fixed-capacity
// ring buffer under a short mutex. The ring overwrites oldest-first and
// never blocks, so a tracer left running forever holds the most recent
// window of spans at a bounded memory cost. Exports (spans.jsonl,
// Chrome trace_event) snapshot the ring; the HTML waterfall in
// internal/obs renders the same snapshot offline.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the propagation header name (W3C Trace Context).
const Header = "traceparent"

// DefaultCapacity is the ring size NewTracer(0) allocates: enough for
// the last few thousand requests' spans without unbounded growth.
const DefaultCapacity = 4096

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the W3C 32-hex-digit form.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t.Hi, t.Lo) }

// SpanID is a 64-bit span identifier, rendered as 16 hex digits.
type SpanID uint64

// String renders the W3C 16-hex-digit form.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is a position in a trace: the trace plus the span that
// new children should name as their parent. The zero value means "no
// context" — Start treats it as the root of a fresh trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the context carries no trace.
func (c SpanContext) IsZero() bool { return c.Trace.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (c SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%016x%016x-%016x-01", c.Trace.Hi, c.Trace.Lo, uint64(c.Span))
}

// Parse parses a traceparent header value. It accepts exactly the
// version-00 grammar this package emits: 00-<32 hex>-<16 hex>-<2 hex>.
// Anything else — including an all-zero trace or span ID, which the
// W3C spec declares invalid — returns ok=false and a zero context, so
// a garbled upstream header degrades to "start a fresh trace".
func Parse(h string) (sc SpanContext, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	hi, ok1 := parseHex64(h[3:19])
	lo, ok2 := parseHex64(h[19:35])
	sp, ok3 := parseHex64(h[36:52])
	if _, ok4 := parseHex64("00" + h[53:55]); !ok1 || !ok2 || !ok3 || !ok4 {
		return SpanContext{}, false
	}
	sc = SpanContext{Trace: TraceID{Hi: hi, Lo: lo}, Span: SpanID(sp)}
	if sc.Trace.IsZero() || sc.Span == 0 {
		return SpanContext{}, false
	}
	return sc, true
}

// parseHex64 decodes exactly 16 lowercase-or-uppercase hex digits
// without allocating.
func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// Span is one completed operation: where it sits in its trace, what it
// was, when it ran and for how long, plus one free-form annotation
// (the advisory tier stores the decision Fingerprint here, which makes
// a trace export double as a decision audit log).
type Span struct {
	Trace   TraceID
	ID      SpanID
	Parent  SpanID // zero for root spans
	Name    string
	StartNs int64 // wall clock, unix nanoseconds
	DurNs   int64
	Attr    string
}

// Tracer records finished spans into a fixed-capacity ring. A nil
// *Tracer is the disabled tracer: Start and End are no-ops that never
// allocate, matching the obs.Emit discipline.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	w       int // overwrite cursor once the ring is full
	total   uint64
	dropped uint64

	ids   atomic.Uint64 // splitmix64 state for trace/span IDs
	nowNs func() int64
}

// NewTracer builds an enabled tracer whose ring holds capacity spans
// (DefaultCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		ring:  make([]Span, 0, capacity),
		nowNs: func() int64 { return time.Now().UnixNano() },
	}
	t.ids.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// SetClock overrides the wall clock (tests want deterministic spans).
func (t *Tracer) SetClock(nowNs func() int64) { t.nowNs = nowNs }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID steps the splitmix64 stream; IDs are unique per tracer and
// never zero (zero is the invalid ID).
func (t *Tracer) nextID() uint64 {
	for {
		z := t.ids.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		if z ^= z >> 31; z != 0 {
			return z
		}
	}
}

// Start begins a span under parent. A zero parent starts a new trace;
// a non-zero one (e.g. parsed from an incoming traceparent header)
// continues it. On a nil tracer Start returns the inert zero
// ActiveSpan and performs no work at all.
func (t *Tracer) Start(parent SpanContext, name string) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	sc := SpanContext{Trace: parent.Trace, Span: SpanID(t.nextID())}
	if sc.Trace.IsZero() {
		sc.Trace = TraceID{Hi: t.nextID(), Lo: t.nextID()}
	}
	return ActiveSpan{t: t, sc: sc, parent: parent.Span, name: name, startNs: t.nowNs()}
}

// finish copies the span into the ring, overwriting the oldest entry
// when full. The lock covers one copy and two integer updates, so the
// hot path never blocks behind an exporter (Spans copies out under the
// same short lock).
func (t *Tracer) finish(sp Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.w] = sp
		t.w++
		if t.w == len(t.ring) {
			t.w = 0
		}
		t.dropped++
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the recorded spans oldest-first (a copy; safe to hold).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.w:]...)
	out = append(out, t.ring[:t.w]...)
	return out
}

// Stats reports lifetime counters: spans recorded and spans the ring
// has overwritten (dropped oldest-first).
func (t *Tracer) Stats() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.dropped
}

// ActiveSpan is a started, not-yet-finished span. It is a plain value:
// passing it around or finishing it allocates nothing. The zero value
// (from a disabled tracer) is inert.
type ActiveSpan struct {
	t       *Tracer
	sc      SpanContext
	parent  SpanID
	name    string
	startNs int64
}

// Context returns the span's position in its trace (zero when inert) —
// what children pass as their parent and what goes on the wire.
func (s ActiveSpan) Context() SpanContext { return s.sc }

// Recording reports whether finishing this span will record anything.
func (s ActiveSpan) Recording() bool { return s.t != nil }

// End finishes the span with no annotation.
func (s ActiveSpan) End() { s.EndWith("") }

// EndWith finishes the span, stamping its duration and annotation and
// committing it to the tracer's ring. No-op on the inert span.
func (s ActiveSpan) EndWith(attr string) {
	if s.t == nil {
		return
	}
	s.t.finish(Span{
		Trace:   s.sc.Trace,
		ID:      s.sc.Span,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.startNs,
		DurNs:   s.t.nowNs() - s.startNs,
		Attr:    attr,
	})
}

// ctxKey keys the SpanContext stored in a request context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc. Only call on the enabled path:
// context.WithValue allocates, which is exactly what the disabled
// tracer must not do.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the SpanContext stored by ContextWith, or the
// zero context. It does not allocate.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
