package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// wireSpan is the JSON-lines wire shape of a Span. IDs travel as hex
// strings (the same digits the traceparent header carries), times as
// integer nanoseconds.
type wireSpan struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
	Attr    string `json:"attr,omitempty"`
}

// MarshalJSON renders the span in the JSONL wire format.
func (s Span) MarshalJSON() ([]byte, error) {
	w := wireSpan{
		Trace:   s.Trace.String(),
		Span:    s.ID.String(),
		Name:    s.Name,
		StartNs: s.StartNs,
		DurNs:   s.DurNs,
		Attr:    s.Attr,
	}
	if s.Parent != 0 {
		w.Parent = s.Parent.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses one wire-format span back.
func (s *Span) UnmarshalJSON(data []byte) error {
	var w wireSpan
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Trace) != 32 {
		return fmt.Errorf("trace: bad trace ID %q", w.Trace)
	}
	hi, ok1 := parseHex64(w.Trace[:16])
	lo, ok2 := parseHex64(w.Trace[16:])
	if !ok1 || !ok2 {
		return fmt.Errorf("trace: bad trace ID %q", w.Trace)
	}
	id, ok := parseHex64(w.Span)
	if !ok || len(w.Span) != 16 {
		return fmt.Errorf("trace: bad span ID %q", w.Span)
	}
	var parent uint64
	if w.Parent != "" {
		if parent, ok = parseHex64(w.Parent); !ok || len(w.Parent) != 16 {
			return fmt.Errorf("trace: bad parent span ID %q", w.Parent)
		}
	}
	*s = Span{
		Trace:   TraceID{Hi: hi, Lo: lo},
		ID:      SpanID(id),
		Parent:  SpanID(parent),
		Name:    w.Name,
		StartNs: w.StartNs,
		DurNs:   w.DurNs,
		Attr:    w.Attr,
	}
	return nil
}

// WriteJSONL writes spans as JSON lines, one span per line.
func WriteJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("trace: writing span JSONL: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a span JSONL stream back (blank lines skipped).
// Concatenating exports from several processes — router plus shards —
// is valid input: the trace IDs stitch them back together.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(b, &sp); err != nil {
			return nil, fmt.Errorf("trace: span line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading span JSONL: %w", err)
	}
	return out, nil
}

// chromeEvent is one Chrome trace_event entry ("X" complete events,
// microsecond timestamps) — the format chrome://tracing and Perfetto
// load directly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TsUs  int64          `json:"ts"`
	DurUs int64          `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the trace_event container object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        string        `json:"otherData,omitempty"`
}

// WriteChromeTrace renders spans in Chrome trace_event format. Each
// trace gets its own tid lane (assigned in first-seen order, so output
// is deterministic for a given span order); span identity and the
// annotation ride in args.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartNs < ordered[j].StartNs })
	lanes := map[TraceID]int{}
	f := chromeFile{TraceEvents: []chromeEvent{}, Meta: "mrdspark service trace"}
	for _, sp := range ordered {
		lane, ok := lanes[sp.Trace]
		if !ok {
			lane = len(lanes) + 1
			lanes[sp.Trace] = lane
		}
		ev := chromeEvent{
			Name:  sp.Name,
			Cat:   "mrd",
			Ph:    "X",
			TsUs:  sp.StartNs / 1000,
			DurUs: sp.DurNs / 1000,
			Pid:   1,
			Tid:   lane,
			Args:  map[string]any{"trace": sp.Trace.String(), "span": sp.ID.String()},
		}
		if sp.Parent != 0 {
			ev.Args["parent"] = sp.Parent.String()
		}
		if sp.Attr != "" {
			ev.Args["attr"] = sp.Attr
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("trace: writing Chrome trace: %w", err)
	}
	return nil
}
