package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestTraceparentRoundTrip: Format → Parse must be the identity, and
// the rendered header must match the W3C version-00 grammar.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start(SpanContext{}, "root")
	h := sp.Context().Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	back, ok := Parse(h)
	if !ok {
		t.Fatalf("Parse(%q) rejected a header this package produced", h)
	}
	if back != sp.Context() {
		t.Errorf("round trip drifted: %+v != %+v", back, sp.Context())
	}
}

// TestParseRejectsGarbage: malformed or spec-invalid (all-zero) headers
// must degrade to "no context", never a half-parsed one.
func TestParseRejectsGarbage(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong version length trick: still 55? no: len 55 but version 01 is fine per len; grammar accepts only leading 00
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace ID
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span ID
		"00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01", // non-hex
		"00 0123456789abcdef0123456789abcdef 0123456789abcdef 01", // wrong separators
	} {
		if sc, ok := Parse(h); ok {
			t.Errorf("Parse(%q) accepted garbage: %+v", h, sc)
		}
	}
}

// TestParentChildLinking: children carry the parent's trace ID and
// name the parent span.
func TestParentChildLinking(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start(SpanContext{}, "root")
	child := tr.Start(root.Context(), "child")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("spans finish in End order; got %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Error("child is not in the parent's trace")
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child.Parent = %s, want the root span ID %s", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("root.Parent = %s, want zero", spans[1].Parent)
	}
}

// TestRingOverflowDropsOldest: a full ring overwrites oldest-first and
// keeps accepting spans without blocking; Stats counts the drops.
func TestRingOverflowDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start(SpanContext{}, fmt.Sprintf("s%d", i)).End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Errorf("ring[%d] = %q, want %q (oldest-first eviction)", i, sp.Name, want)
		}
	}
	total, dropped := tr.Stats()
	if total != 10 || dropped != 6 {
		t.Errorf("Stats() = (%d, %d), want (10, 6)", total, dropped)
	}
}

// TestConcurrentEmitHammer drives many goroutines through Start/End
// while readers snapshot the ring — the -race guard for the span path.
func TestConcurrentEmitHammer(t *testing.T) {
	tr := NewTracer(256)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := tr.Start(SpanContext{}, "worker")
			for i := 0; i < perWorker; i++ {
				tr.Start(root.Context(), "op").EndWith("attr")
			}
			root.End()
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, sp := range tr.Spans() {
				_ = sp.Name
			}
			tr.Stats()
		}
	}()
	wg.Wait()
	<-done
	total, _ := tr.Stats()
	if want := uint64(workers * (perWorker + 1)); total != want {
		t.Errorf("total spans %d, want %d", total, want)
	}
}

// TestDisabledTracerZeroAlloc is the hot-path contract: a nil tracer's
// Start/End (and FromContext on a bare context) allocate nothing.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(SpanContext{}, "hot-path")
		sp.EndWith("never recorded")
		if sp.Recording() {
			t.Fatal("inert span records")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracer: %v allocs/op, want 0", allocs)
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer Spans() = %v, want nil", got)
	}
}

// TestJSONLRoundTrip: write → read → write must be byte-identical, so
// span exports are stable replay inputs for mrdreport.
func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	var now int64
	tr.SetClock(func() int64 { now += 1500; return now })
	root := tr.Start(SpanContext{}, "request")
	tr.Start(root.Context(), "compute").EndWith("stage=3 job=1")
	root.End()

	var first bytes.Buffer
	if err := WriteJSONL(&first, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("write→read→write is not byte-identical:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestChromeTraceShape: the Chrome export must be one JSON object with
// complete ("X") events in microseconds, lanes stable per trace.
func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(16)
	var now int64
	tr.SetClock(func() int64 { now += 2000; return now })
	root := tr.Start(SpanContext{}, "request")
	tr.Start(root.Context(), "compute").End()
	root.End()
	other := tr.Start(SpanContext{}, "other-trace")
	other.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"traceEvents"`, `"ph":"X"`, `"name":"compute"`, `"name":"request"`,
		`"name":"other-trace"`, `"parent"`, `"tid":1`, `"tid":2`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("Chrome trace missing %s in:\n%s", want, out)
		}
	}
}

// BenchmarkSpanDisabled is the zero-alloc benchmark guard for the
// disabled tracer (also recorded in BENCH_baseline.json via the root
// package's wrapper).
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(SpanContext{}, "hot").End()
	}
}

// BenchmarkSpanEnabled prices the enabled path: Start + End + ring
// commit under the tracer mutex.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(DefaultCapacity)
	parent := tr.Start(SpanContext{}, "root").Context()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start(parent, "hot").End()
	}
}
