package obs

import (
	"fmt"
	"io"

	"mrdspark/internal/metrics"
)

// WritePrometheus renders the aggregated run in the Prometheus text
// exposition format (version 0.0.4): per-stage and per-node counters
// with label sets, plus the four run histograms in the cumulative
// le-bucket convention. Output is deterministic — stages in execution
// order, nodes by index — so it golden-tests and diffs cleanly.
//
// A re-executed stage ID (recurring jobs replay their DAG) would
// collide as a label set, so every stage series carries an exec label:
// the stage's position in execution order.
func WritePrometheus(w io.Writer, a *Aggregator) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP mrdspark_stage_events Per-stage event counts by kind.\n")
	bw.printf("# TYPE mrdspark_stage_events counter\n")
	for i, st := range a.StageStats() {
		labels := fmt.Sprintf(`exec="%d",stage="%d",job="%d"`, i, st.StageID, st.JobID)
		for _, c := range []struct {
			kind string
			v    int64
		}{
			{"hit", st.Hits}, {"miss", st.Misses}, {"promote", st.DiskPromotes},
			{"recompute", st.Recomputes}, {"insert", st.Inserts}, {"evict", st.Evictions},
			{"purge", st.Purged}, {"prefetch_issued", st.PrefetchIssued},
			{"prefetch_used", st.PrefetchUsed}, {"prefetch_wasted", st.PrefetchWasted},
			{"fetch_retry", st.FetchRetries}, {"fetch_giveup", st.FetchGiveUps},
		} {
			bw.printf("mrdspark_stage_events{%s,kind=%q} %d\n", labels, c.kind, c.v)
		}
		bw.printf("mrdspark_stage_bytes_moved{%s} %d\n", labels, st.BytesMoved)
		bw.printf("mrdspark_stage_duration_us{%s} %d\n", labels, st.DurationUs())
	}

	bw.printf("# HELP mrdspark_node_events Per-node event counts by kind.\n")
	bw.printf("# TYPE mrdspark_node_events counter\n")
	for _, n := range a.NodeStats() {
		labels := fmt.Sprintf(`node="%d"`, n.Node)
		for _, c := range []struct {
			kind string
			v    int64
		}{
			{"hit", n.Hits}, {"miss", n.Misses}, {"promote", n.DiskPromotes},
			{"recompute", n.Recomputes}, {"insert", n.Inserts}, {"evict", n.Evictions},
			{"purge", n.Purged}, {"prefetch_issued", n.PrefetchIssued},
			{"prefetch_used", n.PrefetchUsed}, {"prefetch_wasted", n.PrefetchWasted},
			{"task", n.Tasks}, {"crash", n.Crashes}, {"straggle", n.Stragglers},
		} {
			bw.printf("mrdspark_node_events{%s,kind=%q} %d\n", labels, c.kind, c.v)
		}
		bw.printf("mrdspark_node_bytes_moved{%s} %d\n", labels, n.BytesMoved)
		bw.printf("mrdspark_node_disk_busy_us{%s} %d\n", labels, n.DiskBusyUs)
		bw.printf("mrdspark_node_net_busy_us{%s} %d\n", labels, n.NetBusyUs)
	}

	for _, h := range a.Histograms() {
		writePromHistogram(bw, h)
	}
	return bw.err
}

// writePromHistogram renders one fixed-bucket histogram with the
// cumulative le convention Prometheus expects.
func writePromHistogram(bw *errWriter, h *metrics.Histogram) {
	name := "mrdspark_" + h.Name
	bw.printf("# HELP %s Distribution in %s.\n", name, h.Unit)
	bw.printf("# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		bw.printf("%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	bw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum+h.Overflow)
	bw.printf("%s_sum %d\n", name, h.Sum)
	bw.printf("%s_count %d\n", name, h.Count)
}

// errWriter folds write errors into one sticky error so the exposition
// loops stay flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
