package obs

import (
	"bytes"
	"strings"
	"testing"

	"mrdspark/internal/block"
)

// TestEventWireGolden pins the exact JSONL wire format. These strings
// are a compatibility contract: the legacy sim.TraceEvent consumer
// fields (at, node, kind, block, stage, job) must keep their names and
// the extension fields must stay omitempty. Changing any of them
// breaks recorded traces and external tooling.
func TestEventWireGolden(t *testing.T) {
	id := block.ID{RDD: 7, Partition: 3}
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{At: 120, Node: 2, Kind: KindHit, Stage: 5, Job: 1, Block: id, HasBlock: true, Bytes: 4096},
			`{"at":120,"node":2,"kind":"hit","block":"rdd_7_3","stage":5,"job":1,"bytes":4096}`,
		},
		{
			// The valid zero block rdd_0_0 must serialize (HasBlock).
			Event{At: 1, Node: 0, Kind: KindInsert, Block: block.ID{}, HasBlock: true},
			`{"at":1,"node":0,"kind":"insert","block":"rdd_0_0","stage":0,"job":0}`,
		},
		{
			// A block-less event must omit "block" even though the zero
			// ID would render as rdd_0_0.
			Event{At: 9, Node: ClusterScope, Kind: KindPurgeOrder, Value: 12},
			`{"at":9,"node":-1,"kind":"purge-order","stage":0,"job":0,"value":12}`,
		},
		{
			Event{At: 33, Node: 1, Kind: KindEvictVerdict, Stage: 2, Job: 2, Block: id, HasBlock: true, Value: -1, Verdict: "mrd"},
			`{"at":33,"node":1,"kind":"evict-verdict","block":"rdd_7_3","stage":2,"job":2,"value":-1,"verdict":"mrd"}`,
		},
	}
	for _, c := range cases {
		got, err := c.ev.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %+v: %v", c.ev, err)
		}
		if string(got) != c.want {
			t.Errorf("wire format drifted:\n got %s\nwant %s", got, c.want)
		}
		var back Event
		if err := back.UnmarshalJSON(got); err != nil {
			t.Fatalf("unmarshal %s: %v", got, err)
		}
		if back != c.ev {
			t.Errorf("round trip lost data:\n got %+v\nwant %+v", back, c.ev)
		}
	}
}

func TestReadJSONL(t *testing.T) {
	in := `{"at":1,"node":0,"kind":"hit","block":"rdd_2_1","stage":3,"job":1,"bytes":64}

{"at":2,"node":-1,"kind":"purge-order","stage":3,"job":1,"value":4}
`
	events, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2 (blank line must be skipped)", len(events))
	}
	if !events[0].HasBlock || events[0].Block != (block.ID{RDD: 2, Partition: 1}) {
		t.Errorf("block not recovered: %+v", events[0])
	}
	if events[1].Kind != KindPurgeOrder || events[1].Node != ClusterScope || events[1].Value != 4 {
		t.Errorf("cluster event not recovered: %+v", events[1])
	}

	if _, err := ReadJSONL(strings.NewReader("{\"at\":1}\nnot json\n")); err == nil {
		t.Error("malformed line did not error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err)
	}
}

func TestBusStampsClockAndStage(t *testing.T) {
	b := New()
	now := int64(100)
	b.SetClock(func() int64 { return now })
	var got []Event
	b.Subscribe(func(ev Event) { got = append(got, ev) })

	b.SetStage(4, 2)
	b.Emit(Ev(KindStageStart, ClusterScope))
	now = 250
	b.Emit(BlockEv(KindHit, 1, block.ID{RDD: 1}, 32))

	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	if got[0].At != 100 || got[1].At != 250 {
		t.Errorf("clock not stamped: at=%d,%d", got[0].At, got[1].At)
	}
	for _, ev := range got {
		if ev.Stage != 4 || ev.Job != 2 {
			t.Errorf("stage context not stamped on %s: stage=%d job=%d", ev.Kind, ev.Stage, ev.Job)
		}
	}
}

// TestEmitDisabledZeroAlloc is the hot-path guard: a nil or
// subscriber-less bus must make Emit free — no allocations, which also
// rules out the Event escaping to the heap.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	ev := BlockEv(KindHit, 3, block.ID{RDD: 7, Partition: 9}, 4096).WithValue(12).WithVerdict("mrd")

	var nilBus *Bus
	if n := testing.AllocsPerRun(1000, func() { nilBus.Emit(ev) }); n != 0 {
		t.Errorf("nil bus Emit allocates %.1f per call", n)
	}
	disabled := New()
	if n := testing.AllocsPerRun(1000, func() { disabled.Emit(ev) }); n != 0 {
		t.Errorf("disabled bus Emit allocates %.1f per call", n)
	}
	if disabled.Enabled() || nilBus.Enabled() {
		t.Error("bus enabled without subscribers")
	}
}

// synthEvents is a tiny deterministic run: two stages on two nodes
// with a hit, a miss, an insert, an eviction verdict and a prefetch
// that arrives and is used. Shared by the exporter golden tests.
func synthEvents() []Event {
	a, b := block.ID{RDD: 1, Partition: 0}, block.ID{RDD: 1, Partition: 1}
	return []Event{
		{At: 0, Kind: KindStageStart, Node: ClusterScope, Stage: 0, Job: 0, Value: 2, Verdict: "shuffleMap"},
		{At: 0, Kind: KindTaskStart, Node: 0, Stage: 0, Job: 0, Value: 50},
		{At: 10, Kind: KindMiss, Node: 0, Stage: 0, Job: 0, Block: a, HasBlock: true, Bytes: 100},
		{At: 20, Kind: KindInsert, Node: 0, Stage: 0, Job: 0, Block: a, HasBlock: true, Bytes: 100},
		{At: 30, Kind: KindPrefetchIssue, Node: 1, Stage: 0, Job: 0, Block: b, HasBlock: true, Bytes: 100},
		{At: 40, Kind: KindPrefetchArrive, Node: 1, Stage: 0, Job: 0, Block: b, HasBlock: true, Bytes: 100},
		{At: 50, Kind: KindTaskEnd, Node: 0, Stage: 0, Job: 0},
		{At: 60, Kind: KindStageEnd, Node: ClusterScope, Stage: 0, Job: 0, Value: 60},
		{At: 60, Kind: KindStageStart, Node: ClusterScope, Stage: 1, Job: 0, Value: 1, Verdict: "result"},
		{At: 70, Kind: KindHit, Node: 0, Stage: 1, Job: 0, Block: a, HasBlock: true, Bytes: 100},
		{At: 75, Kind: KindHit, Node: 1, Stage: 1, Job: 0, Block: b, HasBlock: true, Bytes: 100},
		{At: 80, Kind: KindEvictVerdict, Node: 0, Stage: 1, Job: 0, Block: a, HasBlock: true, Value: 3, Verdict: "mrd"},
		{At: 85, Kind: KindEvict, Node: 0, Stage: 1, Job: 0, Block: a, HasBlock: true, Bytes: 100},
		{At: 90, Kind: KindStageEnd, Node: ClusterScope, Stage: 1, Job: 0, Value: 30},
	}
}

func TestAggregatorOnSyntheticRun(t *testing.T) {
	a := Replay(synthEvents())

	stages := a.StageStats()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	s0, s1 := stages[0], stages[1]
	if s0.Misses != 1 || s0.Inserts != 1 || s0.PrefetchIssued != 1 {
		t.Errorf("stage 0 stats wrong: %+v", s0)
	}
	if s0.Kind != "shuffleMap" || s0.Tasks != 2 {
		t.Errorf("stage 0 identity wrong: %+v", s0)
	}
	if s1.Hits != 2 || s1.Evictions != 1 {
		t.Errorf("stage 1 stats wrong: %+v", s1)
	}
	// The prefetched block b was first hit at t=75, issued at t=30.
	if s1.PrefetchUsed != 1 {
		t.Errorf("prefetch use not credited to the hitting stage: %+v", s1)
	}
	if a.PrefetchLead.Count != 1 || a.PrefetchLead.Min != 45 {
		t.Errorf("prefetch lead histogram wrong: n=%d min=%d", a.PrefetchLead.Count, a.PrefetchLead.Min)
	}
	if a.EvictDistance.Count != 1 || a.EvictDistance.Min != 3 {
		t.Errorf("evict distance histogram wrong: n=%d min=%d", a.EvictDistance.Count, a.EvictDistance.Min)
	}

	nodes := a.NodeStats()
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2 (cluster scope must not become a node)", len(nodes))
	}
	if nodes[0].Tasks != 1 || nodes[0].Hits != 1 || nodes[1].Hits != 1 {
		t.Errorf("node stats wrong: %+v / %+v", nodes[0], nodes[1])
	}

	run := a.SynthesizeRun("synthetic", "TEST")
	if run.Hits != 2 || run.Misses != 1 || run.StagesExecuted != 2 || run.JCT != 90 {
		t.Errorf("synthesized run wrong: %+v", run)
	}
}

// TestPrometheusGolden pins the exposition format on the synthetic
// run: metric names, label sets and the cumulative-le histogram
// convention. Scraping configs depend on these names.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, Replay(synthEvents())); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mrdspark_stage_events counter",
		`mrdspark_stage_events{exec="0",stage="0",job="0",kind="miss"} 1`,
		`mrdspark_stage_events{exec="1",stage="1",job="0",kind="hit"} 2`,
		`mrdspark_stage_duration_us{exec="0",stage="0",job="0"} 60`,
		`mrdspark_node_events{node="0",kind="task"} 1`,
		`mrdspark_node_events{node="1",kind="prefetch_issued"} 1`,
		"# TYPE mrdspark_evict_ref_distance histogram",
		`mrdspark_evict_ref_distance_bucket{le="3"} 1`,
		`mrdspark_evict_ref_distance_bucket{le="+Inf"} 1`,
		"mrdspark_evict_ref_distance_sum 3",
		"mrdspark_evict_ref_distance_count 1",
		`mrdspark_prefetch_lead_time_bucket{le="+Inf"} 1`,
		"mrdspark_prefetch_lead_time_sum 45",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q", want)
		}
	}
	// Cumulative buckets must be monotonic within each histogram.
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Errorf("malformed exposition line %q", ln)
		}
	}
}

// TestJSONLGoldenStream pins the full serialized form of the synthetic
// run and its replay round trip: write → read → write must be
// byte-identical, so recorded traces are stable replay inputs.
func TestJSONLGoldenStream(t *testing.T) {
	events := synthEvents()
	var first bytes.Buffer
	if err := WriteJSONL(&first, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("write→read→write is not byte-identical")
	}
	if got := strings.SplitN(first.String(), "\n", 2)[0]; got !=
		`{"at":0,"node":-1,"kind":"stage-start","stage":0,"job":0,"value":2,"verdict":"shuffleMap"}` {
		t.Errorf("first golden line drifted: %s", got)
	}
}
