package obs

import (
	"fmt"
	"html/template"
	"io"
	"sort"

	"mrdspark/internal/obs/trace"
)

// Trace-waterfall rendering: turns a span export (spans.jsonl from
// mrdserver's -debug-addr endpoint or mrdload's -trace-out) into the
// same self-contained HTML style as the run report, one SVG Gantt per
// trace with spans nested under their parents. Router and shard
// exports concatenate into one file; the trace IDs stitch the hops of
// each request back together, so a waterfall row reads client →
// router-proxy → shard handler → advisor-compute top to bottom.

// waterfallMaxTraces bounds the report: the slowest traces are the
// ones worth reading, and a 64k-span export would otherwise produce an
// unusable document.
const waterfallMaxTraces = 40

// traceGroup is one trace's spans, ordered parent-before-child.
type traceGroup struct {
	ID      trace.TraceID
	Spans   []trace.Span
	StartNs int64
	EndNs   int64
}

func (g traceGroup) durNs() int64 { return g.EndNs - g.StartNs }

// groupTraces buckets spans by trace ID and orders each bucket
// depth-first under its roots (ties by start time), so waterfall rows
// read as a call tree.
func groupTraces(spans []trace.Span) []traceGroup {
	byTrace := map[trace.TraceID][]trace.Span{}
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	groups := make([]traceGroup, 0, len(byTrace))
	for id, ss := range byTrace {
		g := traceGroup{ID: id, StartNs: ss[0].StartNs, EndNs: ss[0].StartNs + ss[0].DurNs}
		for _, sp := range ss {
			if sp.StartNs < g.StartNs {
				g.StartNs = sp.StartNs
			}
			if end := sp.StartNs + sp.DurNs; end > g.EndNs {
				g.EndNs = end
			}
		}
		g.Spans = orderTree(ss)
		groups = append(groups, g)
	}
	// Slowest traces first: those are the ones a latency investigation
	// opens the waterfall for.
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].durNs() != groups[j].durNs() {
			return groups[i].durNs() > groups[j].durNs()
		}
		return groups[i].StartNs < groups[j].StartNs
	})
	return groups
}

// orderTree sorts one trace's spans depth-first: roots (and orphans
// whose parent span is missing from the export) by start time, each
// followed by its children recursively.
func orderTree(spans []trace.Span) []trace.Span {
	ids := map[trace.SpanID]bool{}
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	children := map[trace.SpanID][]trace.Span{}
	var roots []trace.Span
	for _, sp := range spans {
		if sp.Parent != 0 && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(ss []trace.Span) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].StartNs < ss[j].StartNs })
	}
	byStart(roots)
	for _, ss := range children {
		byStart(ss)
	}
	out := make([]trace.Span, 0, len(spans))
	var walk func(sp trace.Span)
	walk = func(sp trace.Span) {
		out = append(out, sp)
		for _, c := range children[sp.ID] {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// waterfallGantt renders one trace's span tree with the shared Gantt
// machinery: one row per span, x scaled to the trace's own duration.
func waterfallGantt(g traceGroup) svgData {
	sc := timeScale{t0: 0, t1: (g.durNs() + 999) / 1000} // µs, trace-relative
	if sc.t1 < 1 {
		sc.t1 = 1
	}
	d := svgData{Width: svgMarginLeft + svgContentW}
	for i, sp := range g.Spans {
		y := i * (svgRowH + svgRowGap)
		x := sc.x((sp.StartNs - g.StartNs) / 1000)
		w := sc.x((sp.StartNs-g.StartNs+sp.DurNs)/1000) - x
		if w < 1 {
			w = 1
		}
		tooltip := fmt.Sprintf("%s: %s", sp.Name, fmtUs(sp.DurNs/1000))
		if sp.Attr != "" {
			tooltip += " — " + sp.Attr
		}
		d.Rects = append(d.Rects, svgRect{
			X: x, Y: y, W: w, H: svgRowH,
			Fill:    palette[i%len(palette)],
			Tooltip: tooltip,
		})
		d.Labels = append(d.Labels, svgLabel{X: svgMarginLeft - 6, Y: y + svgRowH - 4, Text: sp.Name})
	}
	d.PlotH = len(g.Spans) * (svgRowH + svgRowGap)
	d.Height = d.PlotH + svgAxisH
	d.Ticks = sc.ticks()
	return d
}

// WriteTraceWaterfall renders a span export as one self-contained HTML
// waterfall document (slowest traces first, capped at
// waterfallMaxTraces).
func WriteTraceWaterfall(w io.Writer, spans []trace.Span, title string) error {
	groups := groupTraces(spans)
	shown := groups
	if len(shown) > waterfallMaxTraces {
		shown = shown[:waterfallMaxTraces]
	}
	type traceView struct {
		ID    string
		Dur   string
		Spans int
		Gantt svgData
	}
	data := struct {
		Title       string
		TotalSpans  int
		TotalTraces int
		Shown       int
		Traces      []traceView
	}{Title: title, TotalSpans: len(spans), TotalTraces: len(groups), Shown: len(shown)}
	for _, g := range shown {
		data.Traces = append(data.Traces, traceView{
			ID:    g.ID.String(),
			Dur:   fmtUs(g.durNs() / 1000),
			Spans: len(g.Spans),
			Gantt: waterfallGantt(g),
		})
	}
	return waterfallTmpl.Execute(w, data)
}

var waterfallTmpl = template.Must(template.New("waterfall").Parse(waterfallHTML + ganttTmplHTML))

const waterfallHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mrdspark trace waterfall — {{.Title}}</title>
<style>
body { font: 14px/1.45 -apple-system, "Segoe UI", Roboto, sans-serif; color: #1b1f24; margin: 2em auto; max-width: 960px; padding: 0 1em; }
h1 { font-size: 1.4em; border-bottom: 2px solid #4e79a7; padding-bottom: .3em; }
h2 { font-size: 1em; margin-top: 2em; font-family: ui-monospace, monospace; }
p.meta { color: #57606a; }
svg text { font: 11px sans-serif; fill: #57606a; }
svg .lane { stroke: #fff; stroke-width: .5; }
svg .grid { stroke: #e3e6ea; }
</style>
</head>
<body>
<h1>mrdspark trace waterfall — {{.Title}}</h1>
<p class="meta">{{.TotalSpans}} spans across {{.TotalTraces}} traces{{if lt .Shown .TotalTraces}}; showing the {{.Shown}} slowest{{end}}. Hover a bar for duration and annotation (advice spans carry the decision fingerprint).</p>
{{range .Traces}}
<h2>trace {{.ID}} — {{.Dur}}, {{.Spans}} spans</h2>
{{template "gantt" .Gantt}}
{{end}}
</body>
</html>`
