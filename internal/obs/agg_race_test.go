package obs

import (
	"bytes"
	"sync"
	"testing"

	"mrdspark/internal/block"
)

// TestAggregatorConcurrentSnapshot hammers one aggregator from several
// emitting buses while snapshot readers render Prometheus expositions —
// the advisory server's exact access pattern. Run under -race it proves
// the mutex covers every fold and read path.
func TestAggregatorConcurrentSnapshot(t *testing.T) {
	agg := NewAggregator()
	done := make(chan struct{})
	var emitters sync.WaitGroup
	for e := 0; e < 4; e++ {
		emitters.Add(1)
		go func(e int) {
			defer emitters.Done()
			b := New()
			agg.Attach(b)
			id := block.ID{RDD: e, Partition: e}
			for i := 0; i < 2000; i++ {
				b.SetStage(i%7, i%3)
				if i%100 == 0 {
					b.Emit(Ev(KindStageStart, ClusterScope).WithValue(4))
				}
				b.Emit(BlockEv(KindInsert, e, id, 64))
				b.Emit(BlockEv(KindHit, e, id, 64))
				b.Emit(BlockEv(KindMiss, e, id, 64))
				b.Emit(BlockEv(KindPrefetchIssue, e, id, 64))
				b.Emit(BlockEv(KindEvict, e, id, 64))
				b.Emit(Ev(KindEvictVerdict, ClusterScope).WithValue(int64(i % 8)).WithVerdict("mrd"))
				b.Emit(Ev(KindStageEnd, ClusterScope))
				agg.SetNodeBusy(e, int64(i), int64(i))
			}
		}(e)
	}
	go func() { emitters.Wait(); close(done) }()

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				snap := agg.Snapshot()
				_ = snap.StageStats()
				_ = snap.NodeStats()
				_ = snap.Lanes()
				_ = snap.SynthesizeRun("w", "p")
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, snap); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	readers.Wait()
	emitters.Wait()
}

// TestSnapshotIsDetached verifies a snapshot stops changing once taken:
// the deep copy shares no mutable state with the live aggregator.
func TestSnapshotIsDetached(t *testing.T) {
	agg := NewAggregator()
	b := New()
	agg.Attach(b)
	id := block.ID{RDD: 1, Partition: 0}
	b.SetStage(0, 0)
	b.Emit(BlockEv(KindHit, 0, id, 8))
	b.Emit(Ev(KindEvictVerdict, ClusterScope).WithValue(2).WithVerdict("mrd"))

	snap := agg.Snapshot()
	var before bytes.Buffer
	if err := WritePrometheus(&before, snap); err != nil {
		t.Fatal(err)
	}

	b.Emit(BlockEv(KindMiss, 0, id, 8))
	b.Emit(BlockEv(KindHit, 3, id, 8))
	b.Emit(Ev(KindEvictVerdict, ClusterScope).WithValue(5).WithVerdict("mrd"))

	var after bytes.Buffer
	if err := WritePrometheus(&after, snap); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Error("snapshot changed after further emits; copy is not detached")
	}
	if live := agg.Snapshot().NodeStats(); len(live) != 2 {
		t.Errorf("live aggregator nodes = %d, want 2", len(live))
	}
}
