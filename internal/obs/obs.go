// Package obs is the observability layer: a structured event bus that
// every cache, scheduling, shuffle and fault decision in the simulator
// and the MRD manager flows through, plus streaming aggregators and
// exporters (JSON-lines trace, Prometheus-style text exposition, and a
// self-contained Spark-UI-like HTML run report).
//
// The bus is disabled by default and adds nothing to the hot path: an
// Emit on a disabled (or nil) bus is two compares and no allocations.
// Subscribing anything — a Recorder for traces, an Aggregator for
// per-stage/per-node statistics — enables it.
package obs

import (
	"encoding/json"
	"fmt"

	"mrdspark/internal/block"
)

// Kind is the event taxonomy. The string names are the JSON wire
// values; the pre-existing trace kinds keep their exact names so old
// trace consumers read new streams unchanged.
type Kind uint8

const (
	// Scheduling events.
	KindStageStart Kind = iota // verdict = stage kind, value = task count
	KindStageEnd               // value = stage duration (µs)
	KindTaskStart
	KindTaskEnd

	// Cache events, emitted per block read/write.
	KindHit
	KindMiss // followed by the miss's outcome: promote, replica-hit or recompute
	KindPromote
	KindRecompute
	KindInsert
	KindEvict
	KindPurge
	KindPrefetchIssue
	KindPrefetchArrive

	// Fault and recovery events.
	KindNodeFail
	KindNodeRejoin
	KindStraggleBegin
	KindStraggleEnd
	KindBlockLost
	KindBlockCorrupt
	KindCorruptDetect
	KindReplicaWrite
	KindReplicaHit
	KindFetchRetry // value = backoff added (µs)
	KindFetchGiveUp
	KindRemoteFetch // value = modeled fetch service latency incl. retries (µs)

	// Policy decision events (the MRD manager and cache monitors).
	KindPurgeOrder    // value = blocks purged by the order
	KindPrefetchOrder // verdict = "fits" or "forced"
	KindTableReissue
	KindEvictVerdict  // value = victim's reference distance, verdict = selection mode
	KindStaleFallback // victim chosen by recency inside a stale-table window

	numKinds
)

var kindNames = [numKinds]string{
	KindStageStart:     "stage-start",
	KindStageEnd:       "stage-end",
	KindTaskStart:      "task-start",
	KindTaskEnd:        "task-end",
	KindHit:            "hit",
	KindMiss:           "miss",
	KindPromote:        "promote",
	KindRecompute:      "recompute",
	KindInsert:         "insert",
	KindEvict:          "evict",
	KindPurge:          "purge",
	KindPrefetchIssue:  "prefetch-issue",
	KindPrefetchArrive: "prefetch-arrive",
	KindNodeFail:       "node-fail",
	KindNodeRejoin:     "node-rejoin",
	KindStraggleBegin:  "straggle-begin",
	KindStraggleEnd:    "straggle-end",
	KindBlockLost:      "block-lost",
	KindBlockCorrupt:   "block-corrupt",
	KindCorruptDetect:  "corrupt-detect",
	KindReplicaWrite:   "replica-write",
	KindReplicaHit:     "replica-hit",
	KindFetchRetry:     "fetch-retry",
	KindFetchGiveUp:    "fetch-giveup",
	KindRemoteFetch:    "remote-fetch",
	KindPurgeOrder:     "purge-order",
	KindPrefetchOrder:  "prefetch-order",
	KindTableReissue:   "table-reissue",
	KindEvictVerdict:   "evict-verdict",
	KindStaleFallback:  "stale-fallback",
}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON writes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a wire name back into a Kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// ClusterScope is the Node value of events that concern the whole
// cluster (stage boundaries, manager decisions) rather than one
// worker.
const ClusterScope = -1

// Event is one observed decision. At, Stage and Job are stamped by the
// bus from its clock and stage context at emission, so every block
// event carries the stage and job that were executing.
type Event struct {
	At       int64 // simulated µs
	Node     int   // worker index, or ClusterScope
	Kind     Kind
	Stage    int
	Job      int
	Block    block.ID
	HasBlock bool   // distinguishes "no block" from the valid block rdd_0_0
	Bytes    int64  // byte size the event moved or concerns, 0 if n/a
	Value    int64  // kind-specific scalar (distance, latency, duration)
	Verdict  string // kind-specific label ("forced", "stale-fallback", ...)
}

// Ev builds a cluster- or node-scope event with no block.
func Ev(kind Kind, node int) Event { return Event{Kind: kind, Node: node} }

// BlockEv builds a block event.
func BlockEv(kind Kind, node int, id block.ID, bytes int64) Event {
	return Event{Kind: kind, Node: node, Block: id, HasBlock: true, Bytes: bytes}
}

// WithValue returns a copy of the event with the scalar set.
func (e Event) WithValue(v int64) Event { e.Value = v; return e }

// WithBytes returns a copy of the event with the byte size set (for
// block-less events like remote shuffle fetches).
func (e Event) WithBytes(n int64) Event { e.Bytes = n; return e }

// WithVerdict returns a copy of the event with the verdict label set.
func (e Event) WithVerdict(s string) Event { e.Verdict = s; return e }

// wireEvent is the JSON-lines wire shape shared by Marshal and
// Unmarshal.
type wireEvent struct {
	At      int64  `json:"at"`
	Node    int    `json:"node"`
	Kind    Kind   `json:"kind"`
	Block   string `json:"block,omitempty"`
	Stage   int    `json:"stage"`
	Job     int    `json:"job"`
	Bytes   int64  `json:"bytes,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Verdict string `json:"verdict,omitempty"`
}

// MarshalJSON renders the event in the JSON-lines wire format. Field
// names are a superset of the legacy sim.TraceEvent format: at, node,
// kind, block, stage, job exactly as before (stage and job now always
// present and correct), plus bytes, value and verdict when set.
func (e Event) MarshalJSON() ([]byte, error) {
	w := wireEvent{At: e.At, Node: e.Node, Kind: e.Kind, Stage: e.Stage, Job: e.Job,
		Bytes: e.Bytes, Value: e.Value, Verdict: e.Verdict}
	if e.HasBlock {
		w.Block = e.Block.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses one wire-format event back, e.g. when replaying
// a recorded JSONL trace through an Aggregator (cmd/mrdreport).
func (e *Event) UnmarshalJSON(data []byte) error {
	var w wireEvent
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*e = Event{At: w.At, Node: w.Node, Kind: w.Kind, Stage: w.Stage, Job: w.Job,
		Bytes: w.Bytes, Value: w.Value, Verdict: w.Verdict}
	if w.Block != "" {
		id, err := block.ParseID(w.Block)
		if err != nil {
			return err
		}
		e.Block, e.HasBlock = id, true
	}
	return nil
}

// Bus fans events out to subscribers, stamping each with the current
// simulated time and the executing stage/job. A nil or subscriber-less
// bus is disabled: Emit returns immediately without allocating, so
// emission sites need no guards of their own.
type Bus struct {
	enabled bool
	clock   func() int64
	stage   int
	job     int
	subs    []func(Event)
}

// New returns a disabled bus; Subscribe enables it.
func New() *Bus { return &Bus{} }

// Enabled reports whether events are being delivered.
func (b *Bus) Enabled() bool { return b != nil && b.enabled }

// SetClock installs the simulated-time source used to stamp events.
func (b *Bus) SetClock(fn func() int64) { b.clock = fn }

// SetStage sets the stage/job context stamped onto subsequent events.
// The simulator calls it at each stage boundary before anything else
// observes the stage.
func (b *Bus) SetStage(stage, job int) {
	if b == nil {
		return
	}
	b.stage, b.job = stage, job
}

// StageContext returns the current stage/job context (test helper).
func (b *Bus) StageContext() (stage, job int) { return b.stage, b.job }

// Subscribe registers a delivery function and enables the bus. It
// returns a detach function that removes the subscription again,
// disabling the bus when no subscribers remain. Subscribers run
// synchronously in subscription order; they must not emit back into
// the bus. The bus is not internally synchronized: detach must run
// under the same serialization as Emit (for a server session, the
// session lock).
func (b *Bus) Subscribe(fn func(Event)) (detach func()) {
	b.subs = append(b.subs, fn)
	b.enabled = true
	i := len(b.subs) - 1
	return func() {
		b.subs[i] = nil
		for _, s := range b.subs {
			if s != nil {
				return
			}
		}
		b.enabled = false
	}
}

// Emit stamps and delivers the event. On a disabled bus this is the
// hot-path no-op: two compares, no allocations, no writes.
func (b *Bus) Emit(ev Event) {
	if b == nil || !b.enabled {
		return
	}
	if b.clock != nil {
		ev.At = b.clock()
	}
	ev.Stage, ev.Job = b.stage, b.job
	for _, fn := range b.subs {
		if fn != nil {
			fn(ev)
		}
	}
}

// Attacher is implemented by policy factories (the MRD manager) that
// want to emit their decisions onto the run's bus. The simulator
// attaches its bus to any factory implementing it.
type Attacher interface {
	AttachBus(*Bus)
}
