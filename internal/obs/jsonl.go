package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Recorder is a bus subscriber that keeps the full event stream in
// emission order — the backing store for JSON-lines traces and the
// legacy sim trace API. A full SCC run produces tens of thousands of
// events, so recorders are opt-in.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Attach subscribes the recorder to the bus and returns the detach
// function that unsubscribes it again.
func (r *Recorder) Attach(b *Bus) (detach func()) { return b.Subscribe(r.Record) }

// Record appends one event (the subscriber function).
func (r *Recorder) Record(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded stream in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL writes the recorded stream as JSON lines.
func (r *Recorder) WriteJSONL(w io.Writer) error { return WriteJSONL(w, r.events) }

// WriteJSONL writes events as JSON lines, one event per line, in the
// wire format documented on Event.MarshalJSON.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: writing JSONL trace: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines event stream back (blank lines are
// skipped) — the input side of offline trace replay.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading JSONL trace: %w", err)
	}
	return out, nil
}

// Replay folds a recorded event stream through a fresh aggregator, the
// offline equivalent of subscribing it live.
func Replay(events []Event) *Aggregator {
	a := NewAggregator()
	for _, ev := range events {
		a.Observe(ev)
	}
	return a
}
