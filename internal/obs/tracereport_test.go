package obs

import (
	"bytes"
	"strings"
	"testing"

	"mrdspark/internal/obs/trace"
)

// buildSpans records a two-trace export with deterministic times: a
// slow request (root → proxy → compute) and a fast single-span one.
func buildSpans(t *testing.T) []trace.Span {
	t.Helper()
	tr := trace.NewTracer(64)
	var now int64
	tr.SetClock(func() int64 { now += 250_000; return now })

	root := tr.Start(trace.SpanContext{}, "router-proxy")
	proxy := tr.Start(root.Context(), "shard-handler")
	tr.Start(proxy.Context(), "advisor-compute").EndWith("fp=9f3a stage=4")
	proxy.End()
	root.End()

	tr.Start(trace.SpanContext{}, "fast-request").End()
	return tr.Spans()
}

// TestWaterfallGroupsAndOrders: traces are separated, the slower trace
// leads, and span rows within a trace come out parent-before-child.
func TestWaterfallGroupsAndOrders(t *testing.T) {
	groups := groupTraces(buildSpans(t))
	if len(groups) != 2 {
		t.Fatalf("grouped into %d traces, want 2", len(groups))
	}
	if groups[0].durNs() < groups[1].durNs() {
		t.Errorf("traces not sorted slowest-first: %d then %d", groups[0].durNs(), groups[1].durNs())
	}
	slow := groups[0]
	if len(slow.Spans) != 3 {
		t.Fatalf("slow trace has %d spans, want 3", len(slow.Spans))
	}
	for i, want := range []string{"router-proxy", "shard-handler", "advisor-compute"} {
		if slow.Spans[i].Name != want {
			t.Errorf("row %d = %q, want %q (depth-first parent-before-child)", i, slow.Spans[i].Name, want)
		}
	}
}

// TestOrderTreeOrphans: a span whose parent is missing from the export
// (e.g. the router's file wasn't concatenated in) still renders, as a
// root.
func TestOrderTreeOrphans(t *testing.T) {
	spans := []trace.Span{
		{Trace: trace.TraceID{Lo: 1}, ID: 5, Parent: 99, Name: "orphan", StartNs: 10, DurNs: 5},
		{Trace: trace.TraceID{Lo: 1}, ID: 6, Name: "root", StartNs: 1, DurNs: 20},
		{Trace: trace.TraceID{Lo: 1}, ID: 7, Parent: 6, Name: "child", StartNs: 2, DurNs: 3},
	}
	ordered := orderTree(spans)
	if len(ordered) != 3 {
		t.Fatalf("orderTree dropped spans: %d of 3", len(ordered))
	}
	if ordered[0].Name != "root" || ordered[1].Name != "child" || ordered[2].Name != "orphan" {
		t.Errorf("order = %q, %q, %q; want root, child, orphan",
			ordered[0].Name, ordered[1].Name, ordered[2].Name)
	}
}

// TestWriteTraceWaterfall renders the HTML and checks the pieces that
// matter: both traces present, every span named, fingerprint annotation
// in a tooltip, shared gantt SVG markup present.
func TestWriteTraceWaterfall(t *testing.T) {
	spans := buildSpans(t)
	var buf bytes.Buffer
	if err := WriteTraceWaterfall(&buf, spans, "unit"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mrdspark trace waterfall — unit",
		"4 spans across 2 traces",
		"router-proxy", "shard-handler", "advisor-compute", "fast-request",
		"fp=9f3a stage=4",
		"<svg", "<rect", "<title>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall HTML missing %q", want)
		}
	}
	for _, sp := range spans {
		if !strings.Contains(out, sp.Trace.String()) {
			t.Errorf("waterfall HTML missing trace ID %s", sp.Trace)
		}
	}
}

// TestWriteTraceWaterfallEmpty: an empty export still renders a valid
// document (mrdreport on a fresh server).
func TestWriteTraceWaterfallEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceWaterfall(&buf, nil, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 spans across 0 traces") {
		t.Error("empty waterfall lacks the zero-span summary line")
	}
}
