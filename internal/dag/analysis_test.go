package dag

import "testing"

func analysisGraph() (*Graph, *RDD, *RDD, *RDD, *RDD) {
	g := New()
	src := g.Source("in", 4, 1<<20, WithCost(100))
	a := src.Map("a", WithCost(10))
	b := a.Map("b", WithCost(20)).Cache()
	c := b.Map("c", WithCost(30))
	return g, src, a, b, c
}

func TestAncestors(t *testing.T) {
	_, src, a, b, c := analysisGraph()
	anc := c.Ancestors()
	if len(anc) != 3 || anc[0] != src || anc[1] != a || anc[2] != b {
		t.Errorf("ancestors of c = %v", anc)
	}
	if len(src.Ancestors()) != 0 {
		t.Error("source has ancestors")
	}
}

func TestAncestorsCrossShuffleAndDiamond(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20)
	left := src.Map("l")
	right := src.Map("r")
	joined := left.Join("j", right)
	anc := joined.Ancestors()
	if len(anc) != 3 {
		t.Fatalf("diamond ancestors = %v", anc)
	}
	// The shared source appears exactly once.
	seen := 0
	for _, r := range anc {
		if r == src {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("source counted %d times", seen)
	}
}

func TestLineageDepth(t *testing.T) {
	_, src, a, b, c := analysisGraph()
	for _, tt := range []struct {
		r    *RDD
		want int
	}{{src, 0}, {a, 1}, {b, 2}, {c, 3}} {
		if got := tt.r.LineageDepth(); got != tt.want {
			t.Errorf("depth(%v) = %d, want %d", tt.r, got, tt.want)
		}
	}
	// The longest path wins on diamonds.
	g := New()
	s := g.Source("in", 2, 1)
	short := s.Map("short")
	long := s.Map("l1").Map("l2").Map("l3")
	u := short.Union("u", long)
	if got := u.LineageDepth(); got != 4 {
		t.Errorf("diamond depth = %d, want 4", got)
	}
}

func TestRestoreCost(t *testing.T) {
	g, _, _, b, c := analysisGraph()
	// c's restore walks c (30) + b... b is cached: walk stops there
	// except b itself is c's parent: cached parents are skipped.
	if got := g.RestoreCost(c); got != 30 {
		t.Errorf("RestoreCost(c) = %d, want 30 (cached parent shields the chain)", got)
	}
	// b's own restore: b (20) + a (10) + src (100).
	if got := g.RestoreCost(b); got != 130 {
		t.Errorf("RestoreCost(b) = %d, want 130", got)
	}
	// Shuffle boundaries stop the walk.
	agg := c.ReduceByKey("agg", WithCost(7))
	if got := g.RestoreCost(agg); got != 7 {
		t.Errorf("RestoreCost(agg) = %d, want 7 (shuffle shields the map side)", got)
	}
}

func TestCriticalPath(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20, WithCost(5))
	deep := src.ReduceByKey("r1", WithCost(10)).ReduceByKey("r2", WithCost(20))
	shallow := src.ReduceByKey("r3", WithCost(1))
	final := deep.Join("j", shallow, WithCost(3))
	job := g.Count(final)

	stages, cost := job.CriticalPath()
	if len(stages) == 0 || stages[len(stages)-1] != job.ResultStage {
		t.Fatalf("critical path = %v", stages)
	}
	// Deep branch: r1 map stage (target src? no: map stage target is
	// the shuffle's parent) ... verify the path is strictly
	// ID-increasing and its cost sums the targets.
	var sum int64
	for i, s := range stages {
		if i > 0 && stages[i-1].ID >= s.ID {
			t.Errorf("critical path not ordered: %v", stages)
		}
		sum += s.Target.CostPerPart
	}
	if sum != cost {
		t.Errorf("cost = %d, want %d", cost, sum)
	}
	// It must take the deep branch (3 map stages + result) over the
	// shallow one (cost comparison).
	_, shallowCost := func() ([]*Stage, int64) {
		return nil, src.CostPerPart + 1 + 3
	}()
	if cost <= shallowCost {
		t.Errorf("critical path cost %d did not pick the deep branch", cost)
	}
}
