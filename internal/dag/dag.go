// Package dag models Spark's data-flow abstractions: RDDs with narrow
// and shuffle (wide) dependencies, actions that trigger jobs, and the
// DAGScheduler algorithm that splits each job into stages at shuffle
// boundaries. It is the substrate the MRD policy extracts reference
// distances from, and the structure the simulator executes.
//
// The model is cost-annotated rather than data-carrying: each RDD
// records how many partitions it has, how large each partition's output
// is, and how expensive each partition is to compute. That is exactly
// the information cache-management experiments need; the numerical
// kernels themselves are irrelevant to eviction and prefetching.
package dag

import (
	"fmt"

	"mrdspark/internal/block"
)

// DepType distinguishes Spark's two dependency classes.
type DepType int

const (
	// Narrow dependencies (map, filter, union, zip) pipeline within a
	// stage: each child partition depends on a bounded set of parent
	// partitions, with no data movement across the cluster.
	Narrow DepType = iota
	// Shuffle (wide) dependencies (reduceByKey, groupByKey, join)
	// require all-to-all data movement and split stages.
	Shuffle
)

// String names the dependency type.
func (t DepType) String() string {
	if t == Narrow {
		return "narrow"
	}
	return "shuffle"
}

// Dependency is an edge from a child RDD to one of its parents.
type Dependency struct {
	Parent *RDD
	Type   DepType
	// ShuffleID uniquely identifies the shuffle for Shuffle
	// dependencies; it keys the registry of materialized map outputs
	// that makes stage reuse (skipped stages) possible. Zero for
	// narrow dependencies.
	ShuffleID int
}

// RDD is a cost-annotated resilient distributed dataset. It carries no
// data, only the structural and cost metadata the scheduler, cache
// policies and simulator consume.
type RDD struct {
	ID   int
	Name string
	// Op records the transformation that created the RDD ("map",
	// "reduceByKey", "source", ...), for DOT rendering and debugging.
	Op            string
	NumPartitions int
	// PartSize is the size in bytes of each output partition.
	PartSize int64
	// CostPerPart is the compute time in microseconds to produce one
	// partition from its (already available) inputs.
	CostPerPart int64
	Deps        []Dependency

	// Cached marks the RDD as persisted by the program (rdd.cache()).
	// Only cached RDDs participate in cache management.
	Cached bool
	Level  block.StorageLevel

	graph *Graph
}

// Size returns the total size of the RDD across all partitions.
func (r *RDD) Size() int64 { return r.PartSize * int64(r.NumPartitions) }

// Block returns the block ID of partition p of this RDD.
func (r *RDD) Block(p int) block.ID { return block.ID{RDD: r.ID, Partition: p} }

// BlockInfo returns the cache metadata for partition p.
func (r *RDD) BlockInfo(p int) block.Info {
	return block.Info{ID: r.Block(p), Size: r.PartSize, Level: r.Level}
}

// IsSource reports whether the RDD reads from external storage (HDFS)
// rather than from parent RDDs.
func (r *RDD) IsSource() bool { return len(r.Deps) == 0 }

// String renders a short identity for error messages and DOT labels.
func (r *RDD) String() string {
	return fmt.Sprintf("RDD%d(%s)", r.ID, r.Name)
}

// Graph is the whole-application DAG: every RDD ever created plus the
// jobs triggered by actions. A Graph is built once by a workload
// generator and then shared read-only by the profiler, policies and
// simulator.
type Graph struct {
	RDDs []*RDD
	Jobs []*Job

	nextShuffleID int
	nextStageID   int
	// shuffleStages registers the ShuffleMapStage created for each
	// shuffle dependency, so later jobs referencing the same shuffle
	// reuse (and, at run time, skip) the stage — Spark's
	// shuffleIdToMapStage.
	shuffleStages map[int]*Stage
}

// New creates an empty application DAG.
func New() *Graph {
	return &Graph{shuffleStages: map[int]*Stage{}}
}

func (g *Graph) newRDD(op, name string, parts int, partSize, cost int64, deps []Dependency) *RDD {
	r := &RDD{
		ID:            len(g.RDDs),
		Name:          name,
		Op:            op,
		NumPartitions: parts,
		PartSize:      partSize,
		CostPerPart:   cost,
		Deps:          deps,
		graph:         g,
	}
	g.RDDs = append(g.RDDs, r)
	return r
}

// Opt configures a transformation. The zero behaviour (no options)
// inherits the parent's partition count, keeps the partition size, and
// charges a nominal per-partition compute cost.
type Opt func(*opts)

type opts struct {
	partitions int
	sizeFactor float64
	partSize   int64
	cost       int64
	costSet    bool
}

// WithPartitions sets the number of output partitions (used by wide
// transformations to model repartitioning).
func WithPartitions(n int) Opt { return func(o *opts) { o.partitions = n } }

// WithSizeFactor scales the output partition size relative to the
// input partition size (e.g. 0.1 for an aggressive aggregation).
func WithSizeFactor(f float64) Opt { return func(o *opts) { o.sizeFactor = f } }

// WithPartSize sets the output partition size in bytes directly,
// overriding any size factor.
func WithPartSize(b int64) Opt { return func(o *opts) { o.partSize = b } }

// WithCost sets the per-partition compute cost in microseconds.
func WithCost(us int64) Opt { return func(o *opts) { o.cost = us; o.costSet = true } }

func applyOpts(parent *RDD, options []Opt) (parts int, size, cost int64) {
	o := opts{sizeFactor: 1.0}
	for _, f := range options {
		f(&o)
	}
	parts = parent.NumPartitions
	if o.partitions > 0 {
		parts = o.partitions
	}
	size = int64(float64(parent.PartSize) * o.sizeFactor)
	if o.partSize > 0 {
		size = o.partSize
	}
	// Default compute cost: proportional to the input processed, at a
	// light 1 µs per 64 KiB — workloads override this to set their
	// CPU intensity.
	cost = parent.PartSize >> 16
	if o.costSet {
		cost = o.cost
	}
	return parts, size, cost
}

// Source creates an input RDD read from external storage (HDFS). The
// per-partition compute cost models deserialization; reading the bytes
// themselves is charged as I/O by the simulator.
func (g *Graph) Source(name string, partitions int, partSize int64, options ...Opt) *RDD {
	o := opts{}
	for _, f := range options {
		f(&o)
	}
	cost := partSize >> 16
	if o.costSet {
		cost = o.cost
	}
	return g.newRDD("source", name, partitions, partSize, cost, nil)
}

func (r *RDD) narrow(op, name string, options ...Opt) *RDD {
	parts, size, cost := applyOpts(r, options)
	dep := Dependency{Parent: r, Type: Narrow}
	return r.graph.newRDD(op, name, parts, size, cost, []Dependency{dep})
}

// Map applies a one-to-one narrow transformation.
func (r *RDD) Map(name string, options ...Opt) *RDD { return r.narrow("map", name, options...) }

// Filter applies a narrow transformation that typically shrinks data;
// callers set the selectivity via WithSizeFactor.
func (r *RDD) Filter(name string, options ...Opt) *RDD { return r.narrow("filter", name, options...) }

// FlatMap applies a one-to-many narrow transformation.
func (r *RDD) FlatMap(name string, options ...Opt) *RDD {
	return r.narrow("flatMap", name, options...)
}

// MapPartitions applies a per-partition narrow transformation (the
// workhorse of MLlib iteration bodies).
func (r *RDD) MapPartitions(name string, options ...Opt) *RDD {
	return r.narrow("mapPartitions", name, options...)
}

// MapValues applies a narrow transformation over pair-RDD values.
func (r *RDD) MapValues(name string, options ...Opt) *RDD {
	return r.narrow("mapValues", name, options...)
}

// Sample applies a narrow random-sampling transformation.
func (r *RDD) Sample(name string, options ...Opt) *RDD { return r.narrow("sample", name, options...) }

// Union concatenates this RDD with the others (narrow, multi-parent).
func (r *RDD) Union(name string, others ...*RDD) *RDD {
	deps := []Dependency{{Parent: r, Type: Narrow}}
	parts := r.NumPartitions
	var bytes int64 = r.Size()
	for _, o := range others {
		deps = append(deps, Dependency{Parent: o, Type: Narrow})
		parts += o.NumPartitions
		bytes += o.Size()
	}
	size := bytes / int64(parts)
	return r.graph.newRDD("union", name, parts, size, r.PartSize>>16, deps)
}

// ZipPartitions zips this RDD with another partition-wise (narrow,
// multi-parent, same partitioning) — GraphX uses this heavily.
func (r *RDD) ZipPartitions(name string, other *RDD, options ...Opt) *RDD {
	parts, size, cost := applyOpts(r, options)
	deps := []Dependency{
		{Parent: r, Type: Narrow},
		{Parent: other, Type: Narrow},
	}
	return r.graph.newRDD("zipPartitions", name, parts, size, cost, deps)
}

func (r *RDD) wide(op, name string, options ...Opt) *RDD {
	parts, size, cost := applyOpts(r, options)
	g := r.graph
	g.nextShuffleID++
	dep := Dependency{Parent: r, Type: Shuffle, ShuffleID: g.nextShuffleID}
	return g.newRDD(op, name, parts, size, cost, []Dependency{dep})
}

// ReduceByKey aggregates by key across the cluster (one shuffle).
func (r *RDD) ReduceByKey(name string, options ...Opt) *RDD {
	return r.wide("reduceByKey", name, options...)
}

// GroupByKey groups values by key (one shuffle, no map-side combine,
// so the output is typically as large as the input).
func (r *RDD) GroupByKey(name string, options ...Opt) *RDD {
	return r.wide("groupByKey", name, options...)
}

// SortByKey globally sorts the RDD (one shuffle).
func (r *RDD) SortByKey(name string, options ...Opt) *RDD {
	return r.wide("sortByKey", name, options...)
}

// Distinct deduplicates the RDD (one shuffle).
func (r *RDD) Distinct(name string, options ...Opt) *RDD {
	return r.wide("distinct", name, options...)
}

// PartitionBy re-partitions the RDD by key (one shuffle).
func (r *RDD) PartitionBy(name string, options ...Opt) *RDD {
	return r.wide("partitionBy", name, options...)
}

// AggregateByKey aggregates with a custom combiner (one shuffle).
func (r *RDD) AggregateByKey(name string, options ...Opt) *RDD {
	return r.wide("aggregateByKey", name, options...)
}

// Join shuffle-joins this RDD with another: both parents contribute a
// shuffle dependency, so two map stages feed the join's reduce stage.
func (r *RDD) Join(name string, other *RDD, options ...Opt) *RDD {
	parts, size, cost := applyOpts(r, options)
	g := r.graph
	g.nextShuffleID++
	d1 := Dependency{Parent: r, Type: Shuffle, ShuffleID: g.nextShuffleID}
	g.nextShuffleID++
	d2 := Dependency{Parent: other, Type: Shuffle, ShuffleID: g.nextShuffleID}
	return g.newRDD("join", name, parts, size, cost, []Dependency{d1, d2})
}

// CoGroup shuffle-cogroups this RDD with another, like Join but
// grouping rather than pairing.
func (r *RDD) CoGroup(name string, other *RDD, options ...Opt) *RDD {
	parts, size, cost := applyOpts(r, options)
	g := r.graph
	g.nextShuffleID++
	d1 := Dependency{Parent: r, Type: Shuffle, ShuffleID: g.nextShuffleID}
	g.nextShuffleID++
	d2 := Dependency{Parent: other, Type: Shuffle, ShuffleID: g.nextShuffleID}
	return g.newRDD("cogroup", name, parts, size, cost, []Dependency{d1, d2})
}

// Cache marks the RDD persisted at MEMORY_ONLY (Spark's rdd.cache()),
// making its blocks subject to cache management. Returns the receiver
// for chaining.
func (r *RDD) Cache() *RDD {
	r.Cached = true
	r.Level = block.MemoryOnly
	return r
}

// Persist marks the RDD persisted at the given storage level.
func (r *RDD) Persist(level block.StorageLevel) *RDD {
	r.Cached = true
	r.Level = level
	return r
}

// Unpersist clears the cached flag (the workload no longer wants the
// RDD managed). Existing jobs' reference schedules are unaffected.
func (r *RDD) Unpersist() *RDD {
	r.Cached = false
	return r
}

// CachedRDDs returns every RDD marked persisted, in creation order.
func (g *Graph) CachedRDDs() []*RDD {
	var out []*RDD
	for _, r := range g.RDDs {
		if r.Cached {
			out = append(out, r)
		}
	}
	return out
}

// NumStages returns the total number of stages created so far
// (the next stage ID to be assigned).
func (g *Graph) NumStages() int { return g.nextStageID }
