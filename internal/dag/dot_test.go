package dag

import (
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New()
	data := g.Source("in", 2, 1<<20).Map("parse").Cache()
	agg := data.ReduceByKey("agg")
	g.Count(agg)

	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{
		"digraph app",
		"subgraph cluster_stage0",
		"subgraph cluster_stage1",
		"fillcolor=lightblue",   // cached RDD shading
		"style=bold, color=red", // shuffle edge
		"r0 -> r1",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCharacterize(t *testing.T) {
	g := New()
	data := g.Source("in", 2, 1<<20).Map("parse").Cache()
	g.Count(data)           // creates data
	g.Count(data.Map("u1")) // reads data
	g.Count(data.Map("u2")) // reads data
	c := g.Characterize()
	if c.Jobs != 3 {
		t.Errorf("Jobs = %d", c.Jobs)
	}
	if c.Stages != 3 || c.ActiveStages != 3 {
		t.Errorf("Stages = %d/%d", c.Stages, c.ActiveStages)
	}
	if c.RDDs != 4 {
		t.Errorf("RDDs = %d", c.RDDs)
	}
	if c.CachedRDDs != 1 {
		t.Errorf("CachedRDDs = %d", c.CachedRDDs)
	}
	if c.RefsPerRDD != 2 {
		t.Errorf("RefsPerRDD = %v, want 2 (two reads, creation excluded)", c.RefsPerRDD)
	}
	if want := 2.0 / 3.0; c.RefsPerStage < want-1e-9 || c.RefsPerStage > want+1e-9 {
		t.Errorf("RefsPerStage = %v, want %v", c.RefsPerStage, want)
	}
}

func TestWriteDOTMultiJob(t *testing.T) {
	g := New()
	data := g.Source("in", 2, 1<<20).Map("parse").Cache()
	g.Count(data)
	agg := data.ReduceByKey("agg")
	g.Count(agg)
	g.Count(agg.Map("post")) // reuses the shuffle

	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	// Every executed stage gets a cluster; the reused stage appears
	// only once.
	if got := strings.Count(dot, "subgraph cluster_stage"); got != g.ActiveStages() {
		t.Errorf("stage clusters = %d, want %d", got, g.ActiveStages())
	}
	// Every RDD appears as a node.
	for _, r := range g.RDDs {
		if !strings.Contains(dot, fmt.Sprintf("r%d [", r.ID)) {
			t.Errorf("RDD %d missing from DOT", r.ID)
		}
	}
}
