package dag

import (
	"testing"

	"mrdspark/internal/block"
)

func TestSourceDefaults(t *testing.T) {
	g := New()
	src := g.Source("in", 8, 1<<20)
	if src.ID != 0 {
		t.Errorf("first RDD ID = %d, want 0", src.ID)
	}
	if !src.IsSource() {
		t.Error("source RDD must report IsSource")
	}
	if src.NumPartitions != 8 || src.PartSize != 1<<20 {
		t.Errorf("source shape = (%d, %d)", src.NumPartitions, src.PartSize)
	}
	if src.Size() != 8<<20 {
		t.Errorf("Size() = %d, want %d", src.Size(), int64(8<<20))
	}
}

func TestNarrowTransformInheritance(t *testing.T) {
	g := New()
	src := g.Source("in", 8, 1<<20)
	m := src.Map("m")
	if m.NumPartitions != 8 {
		t.Errorf("map partitions = %d, want inherited 8", m.NumPartitions)
	}
	if m.PartSize != 1<<20 {
		t.Errorf("map part size = %d, want inherited %d", m.PartSize, 1<<20)
	}
	if len(m.Deps) != 1 || m.Deps[0].Parent != src || m.Deps[0].Type != Narrow {
		t.Errorf("map deps wrong: %+v", m.Deps)
	}
	if m.IsSource() {
		t.Error("derived RDD must not report IsSource")
	}
}

func TestTransformOptions(t *testing.T) {
	g := New()
	src := g.Source("in", 8, 1<<20)
	f := src.Filter("f", WithSizeFactor(0.25))
	if f.PartSize != 1<<18 {
		t.Errorf("filter part size = %d, want %d", f.PartSize, 1<<18)
	}
	r := src.ReduceByKey("r", WithPartitions(4), WithPartSize(100), WithCost(777))
	if r.NumPartitions != 4 || r.PartSize != 100 || r.CostPerPart != 777 {
		t.Errorf("options not applied: %+v", r)
	}
	if r.Deps[0].Type != Shuffle || r.Deps[0].ShuffleID == 0 {
		t.Errorf("reduceByKey must be a shuffle dep with nonzero ID: %+v", r.Deps[0])
	}
}

func TestShuffleIDsAreUnique(t *testing.T) {
	g := New()
	src := g.Source("in", 8, 1<<20)
	seen := map[int]bool{}
	for _, r := range []*RDD{
		src.ReduceByKey("a"), src.GroupByKey("b"), src.SortByKey("c"),
		src.Distinct("d"), src.PartitionBy("e"), src.AggregateByKey("f"),
	} {
		id := r.Deps[0].ShuffleID
		if seen[id] {
			t.Errorf("shuffle ID %d reused", id)
		}
		seen[id] = true
	}
}

func TestJoinHasTwoShuffleDeps(t *testing.T) {
	g := New()
	a := g.Source("a", 4, 1<<20)
	b := g.Source("b", 4, 1<<20)
	j := a.Join("j", b)
	if len(j.Deps) != 2 {
		t.Fatalf("join deps = %d, want 2", len(j.Deps))
	}
	for i, d := range j.Deps {
		if d.Type != Shuffle {
			t.Errorf("join dep %d not shuffle", i)
		}
	}
	if j.Deps[0].ShuffleID == j.Deps[1].ShuffleID {
		t.Error("join sides must use distinct shuffles")
	}
	cg := a.CoGroup("cg", b)
	if len(cg.Deps) != 2 || cg.Deps[0].Type != Shuffle || cg.Deps[1].Type != Shuffle {
		t.Errorf("cogroup deps wrong: %+v", cg.Deps)
	}
}

func TestUnionCombinesPartitions(t *testing.T) {
	g := New()
	a := g.Source("a", 4, 1<<20)
	b := g.Source("b", 2, 2<<20)
	u := a.Union("u", b)
	if u.NumPartitions != 6 {
		t.Errorf("union partitions = %d, want 6", u.NumPartitions)
	}
	// Per-partition sizes round down, so the union's total may lose up
	// to one byte per partition.
	want := a.Size() + b.Size()
	if u.Size() > want || u.Size() < want-int64(u.NumPartitions) {
		t.Errorf("union size = %d, want ~%d", u.Size(), want)
	}
	if len(u.Deps) != 2 || u.Deps[0].Type != Narrow || u.Deps[1].Type != Narrow {
		t.Errorf("union deps wrong: %+v", u.Deps)
	}
}

func TestZipPartitionsIsNarrowMultiParent(t *testing.T) {
	g := New()
	a := g.Source("a", 4, 1<<20)
	b := a.Map("b")
	z := a.ZipPartitions("z", b)
	if len(z.Deps) != 2 {
		t.Fatalf("zip deps = %d", len(z.Deps))
	}
	for _, d := range z.Deps {
		if d.Type != Narrow {
			t.Error("zipPartitions must be narrow")
		}
	}
	if z.NumPartitions != 4 {
		t.Errorf("zip partitions = %d, want 4", z.NumPartitions)
	}
}

func TestCachePersistUnpersist(t *testing.T) {
	g := New()
	r := g.Source("a", 4, 1<<20).Map("m")
	if r.Cached {
		t.Fatal("fresh RDD must not be cached")
	}
	if r.Cache() != r {
		t.Error("Cache must return the receiver")
	}
	if !r.Cached || r.Level != block.MemoryOnly {
		t.Errorf("Cache() => cached=%v level=%v", r.Cached, r.Level)
	}
	r.Persist(block.MemoryAndDisk)
	if r.Level != block.MemoryAndDisk {
		t.Errorf("Persist level = %v", r.Level)
	}
	r.Unpersist()
	if r.Cached {
		t.Error("Unpersist must clear the cached flag")
	}
}

func TestCachedRDDsOrder(t *testing.T) {
	g := New()
	a := g.Source("a", 2, 1).Map("m1").Cache()
	b := a.Map("m2")
	c := b.Map("m3").Cache()
	got := g.CachedRDDs()
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Errorf("CachedRDDs = %v", got)
	}
}

func TestBlockIdentity(t *testing.T) {
	g := New()
	r := g.Source("a", 4, 99).Map("m").Persist(block.MemoryAndDisk)
	id := r.Block(3)
	if id.RDD != r.ID || id.Partition != 3 {
		t.Errorf("Block(3) = %v", id)
	}
	info := r.BlockInfo(3)
	if info.ID != id || info.Size != 99 || info.Level != block.MemoryAndDisk {
		t.Errorf("BlockInfo = %+v", info)
	}
}

func TestDefaultCostScalesWithInput(t *testing.T) {
	g := New()
	small := g.Source("s", 1, 1<<16)
	big := g.Source("b", 1, 1<<26)
	if small.Map("m").CostPerPart >= big.Map("m").CostPerPart {
		t.Error("default compute cost must grow with input partition size")
	}
}
