package dag

import "testing"

func TestEveryNarrowTransform(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20)
	for name, r := range map[string]*RDD{
		"Map":           src.Map("x"),
		"Filter":        src.Filter("x"),
		"FlatMap":       src.FlatMap("x"),
		"MapPartitions": src.MapPartitions("x"),
		"MapValues":     src.MapValues("x"),
		"Sample":        src.Sample("x"),
	} {
		if len(r.Deps) != 1 || r.Deps[0].Type != Narrow || r.Deps[0].Parent != src {
			t.Errorf("%s: deps = %+v", name, r.Deps)
		}
		if r.Deps[0].ShuffleID != 0 {
			t.Errorf("%s: narrow dep carries shuffle ID %d", name, r.Deps[0].ShuffleID)
		}
	}
}

func TestEveryWideTransform(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20)
	for name, r := range map[string]*RDD{
		"ReduceByKey":    src.ReduceByKey("x"),
		"GroupByKey":     src.GroupByKey("x"),
		"SortByKey":      src.SortByKey("x"),
		"Distinct":       src.Distinct("x"),
		"PartitionBy":    src.PartitionBy("x"),
		"AggregateByKey": src.AggregateByKey("x"),
	} {
		if len(r.Deps) != 1 || r.Deps[0].Type != Shuffle {
			t.Errorf("%s: deps = %+v", name, r.Deps)
		}
		if r.Deps[0].ShuffleID == 0 {
			t.Errorf("%s: shuffle dep without shuffle ID", name)
		}
	}
}

func TestWithPartitionsOnNarrow(t *testing.T) {
	g := New()
	src := g.Source("in", 8, 1<<20)
	r := src.Map("m", WithPartitions(3))
	if r.NumPartitions != 3 {
		t.Errorf("partitions = %d", r.NumPartitions)
	}
}

func TestActionsCreateDistinctJobs(t *testing.T) {
	g := New()
	r := g.Source("in", 2, 1<<10).Map("m")
	jobs := []*Job{
		g.Count(r), g.Collect(r), g.Reduce(r), g.SaveAsFile(r), g.Action(r, "custom"),
	}
	names := []string{"count", "collect", "reduce", "saveAsFile", "custom"}
	for i, j := range jobs {
		if j.ID != i {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if j.Name != names[i] {
			t.Errorf("job %d name = %q, want %q", i, j.Name, names[i])
		}
		if j.Target != r {
			t.Errorf("job %d target wrong", i)
		}
	}
	if len(g.Jobs) != 5 {
		t.Errorf("graph jobs = %d", len(g.Jobs))
	}
}

func TestNumStagesTracksCreation(t *testing.T) {
	g := New()
	r := g.Source("in", 2, 1<<10).ReduceByKey("r")
	if g.NumStages() != 0 {
		t.Errorf("stages before any action = %d", g.NumStages())
	}
	g.Count(r)
	if g.NumStages() != 2 {
		t.Errorf("stages after one action = %d", g.NumStages())
	}
	g.Count(r.Map("m")) // reuses the shuffle stage, adds one result stage
	if g.NumStages() != 3 {
		t.Errorf("stages after reuse = %d", g.NumStages())
	}
}

func TestCoGroupAndJoinIndependentShuffles(t *testing.T) {
	g := New()
	a := g.Source("a", 2, 1<<10)
	b := g.Source("b", 2, 1<<10)
	j := a.Join("j", b)
	cg := a.CoGroup("cg", b)
	ids := map[int]bool{}
	for _, r := range []*RDD{j, cg} {
		for _, d := range r.Deps {
			if ids[d.ShuffleID] {
				t.Errorf("shuffle ID %d reused across join/cogroup", d.ShuffleID)
			}
			ids[d.ShuffleID] = true
		}
	}
	// Join and cogroup of the same parents still create separate map
	// stages: shuffle dependencies are per-operation, as in Spark.
	g.Count(j)
	g.Count(cg)
	if g.ActiveStages() != 6 {
		t.Errorf("active stages = %d, want 6 (2 map + result, twice)", g.ActiveStages())
	}
}

func TestRDDStringAndDepString(t *testing.T) {
	g := New()
	r := g.Source("input", 2, 1<<10)
	if r.String() != "RDD0(input)" {
		t.Errorf("String() = %q", r.String())
	}
	if Narrow.String() != "narrow" || Shuffle.String() != "shuffle" {
		t.Error("DepType strings wrong")
	}
	if ShuffleMap.String() != "shuffleMap" || Result.String() != "result" {
		t.Error("StageKind strings wrong")
	}
	st := g.Count(r).ResultStage
	if st.String() == "" {
		t.Error("stage String empty")
	}
}
