package dag

import (
	"fmt"
	"sort"
)

// StageKind distinguishes Spark's two stage classes.
type StageKind int

const (
	// ShuffleMap stages compute the map side of a shuffle and write
	// their output to local disk for reduce-side fetches.
	ShuffleMap StageKind = iota
	// Result stages compute the action's target RDD and return
	// results to the driver.
	Result
)

// String names the stage kind.
func (k StageKind) String() string {
	if k == ShuffleMap {
		return "shuffleMap"
	}
	return "result"
}

// Stage is a pipelined set of narrow transformations bounded by
// shuffles, exactly as produced by Spark's DAGScheduler. Stage IDs are
// assigned globally in creation order, which is the coordinate system
// reference distances are measured in.
type Stage struct {
	ID   int
	Kind StageKind
	// Target is the last RDD the stage computes: the map-side parent
	// of the shuffle for ShuffleMap stages, the action's RDD for
	// Result stages.
	Target *RDD
	// ShuffleID identifies the shuffle this stage writes (ShuffleMap
	// stages only).
	ShuffleID int
	// Parents are the shuffle-map stages whose output this stage
	// fetches.
	Parents []*Stage
	// FirstJob is the job that created (and therefore executes) the
	// stage; later jobs that depend on the same shuffle reuse it as a
	// skipped stage.
	FirstJob *Job
	// Chain is the pipelined narrow closure: Target plus every
	// ancestor reachable without crossing a shuffle boundary, in
	// deterministic (ID) order.
	Chain []*RDD
	// NumTasks is one task per partition of Target.
	NumTasks int
}

// String renders a short identity for logs and errors.
func (s *Stage) String() string {
	return fmt.Sprintf("Stage%d(%s,%s)", s.ID, s.Kind, s.Target)
}

// StageFrontier computes, given which cached RDDs are already
// materialized, the cached RDDs the stage reads and the cached RDDs it
// creates. Reads are the stage's nearest cached frontier: walking from
// the target through narrow dependencies, the first materialized
// cached RDD on each path is read and the walk truncates there —
// exactly how Spark's RDD iterator consults the BlockManager. Cached
// chain members that are not yet materialized are computed by the
// stage and therefore created (the target included, when cached). A
// stage whose target is already materialized (a repeated action on a
// fully cached RDD) reads only the target.
func StageFrontier(s *Stage, created func(rddID int) bool) (reads, creates []*RDD) {
	if s.Target.Cached && created(s.Target.ID) {
		return []*RDD{s.Target}, nil
	}
	seen := map[int]bool{}
	var walk func(r *RDD)
	walk = func(r *RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		if r != s.Target && r.Cached && created(r.ID) {
			reads = append(reads, r)
			return
		}
		if r.Cached {
			creates = append(creates, r)
		}
		for _, d := range r.Deps {
			if d.Type == Narrow {
				walk(d.Parent)
			}
		}
	}
	walk(s.Target)
	sort.Slice(reads, func(a, b int) bool { return reads[a].ID < reads[b].ID })
	sort.Slice(creates, func(a, b int) bool { return creates[a].ID < creates[b].ID })
	return reads, creates
}

// Job is the unit of work triggered by one action.
type Job struct {
	ID     int
	Name   string
	Target *RDD
	// ResultStage is the job's final stage.
	ResultStage *Stage
	// Stages is the transitive closure of stages in the job's DAG,
	// including stages reused from earlier jobs (Spark UI's total
	// stage count, with reused ones shown as "skipped").
	Stages []*Stage
	// NewStages are the stages created by this job — the ones that
	// actually execute ("active stages" in the paper's Table 3) — in
	// stage-ID order, which is a valid topological execution order.
	NewStages []*Stage
}

// SkippedStages returns how many of the job's stages are reused from
// earlier jobs and therefore skipped at execution time.
func (j *Job) SkippedStages() int { return len(j.Stages) - len(j.NewStages) }

// narrowClosure collects Target plus all ancestors reachable through
// narrow dependencies, in deterministic RDD-ID order.
func narrowClosure(target *RDD) []*RDD {
	seen := map[int]bool{}
	var out []*RDD
	var walk func(r *RDD)
	walk = func(r *RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		out = append(out, r)
		for _, d := range r.Deps {
			if d.Type == Narrow {
				walk(d.Parent)
			}
		}
	}
	walk(target)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// shuffleDeps collects the shuffle dependencies reachable from target
// without crossing another shuffle boundary, in deterministic order.
func shuffleDeps(target *RDD) []Dependency {
	seen := map[int]bool{}
	var deps []Dependency
	var walk func(r *RDD)
	walk = func(r *RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		for _, d := range r.Deps {
			if d.Type == Shuffle {
				deps = append(deps, d)
			} else {
				walk(d.Parent)
			}
		}
	}
	walk(target)
	sort.Slice(deps, func(a, b int) bool { return deps[a].ShuffleID < deps[b].ShuffleID })
	return deps
}

// getOrCreateShuffleStage returns the registered map stage for dep,
// creating it (and, recursively, its ancestors) on first sight. This
// is the mechanism behind Spark's skipped stages: a later job that
// needs the same shuffle gets the already-registered stage back.
func (g *Graph) getOrCreateShuffleStage(dep Dependency, job *Job) *Stage {
	if s, ok := g.shuffleStages[dep.ShuffleID]; ok {
		return s
	}
	parents := g.parentStages(dep.Parent, job)
	s := &Stage{
		ID:        g.nextStageID,
		Kind:      ShuffleMap,
		Target:    dep.Parent,
		ShuffleID: dep.ShuffleID,
		Parents:   parents,
		FirstJob:  job,
		Chain:     narrowClosure(dep.Parent),
		NumTasks:  dep.Parent.NumPartitions,
	}
	g.nextStageID++
	g.shuffleStages[dep.ShuffleID] = s
	job.NewStages = append(job.NewStages, s)
	return s
}

// parentStages returns the map stages feeding rdd's narrow closure.
func (g *Graph) parentStages(rdd *RDD, job *Job) []*Stage {
	deps := shuffleDeps(rdd)
	stages := make([]*Stage, 0, len(deps))
	for _, d := range deps {
		stages = append(stages, g.getOrCreateShuffleStage(d, job))
	}
	return stages
}

// action runs the DAGScheduler for one action on target, creating the
// job and its stages.
func (g *Graph) action(target *RDD, name string) *Job {
	job := &Job{ID: len(g.Jobs), Name: name, Target: target}
	parents := g.parentStages(target, job)
	result := &Stage{
		ID:       g.nextStageID,
		Kind:     Result,
		Target:   target,
		Parents:  parents,
		FirstJob: job,
		Chain:    narrowClosure(target),
		NumTasks: target.NumPartitions,
	}
	g.nextStageID++
	job.ResultStage = result
	job.NewStages = append(job.NewStages, result)
	sort.Slice(job.NewStages, func(a, b int) bool { return job.NewStages[a].ID < job.NewStages[b].ID })

	// Transitive closure over parents gives the job's full stage set,
	// including reused (skipped) stages.
	seen := map[int]bool{}
	var walk func(s *Stage)
	walk = func(s *Stage) {
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		job.Stages = append(job.Stages, s)
		for _, p := range s.Parents {
			walk(p)
		}
	}
	walk(result)
	sort.Slice(job.Stages, func(a, b int) bool { return job.Stages[a].ID < job.Stages[b].ID })

	g.Jobs = append(g.Jobs, job)
	return job
}

// Count triggers a count action on the RDD, creating a job.
func (g *Graph) Count(target *RDD) *Job { return g.action(target, "count") }

// Collect triggers a collect action on the RDD, creating a job.
func (g *Graph) Collect(target *RDD) *Job { return g.action(target, "collect") }

// Reduce triggers a reduce action on the RDD, creating a job.
func (g *Graph) Reduce(target *RDD) *Job { return g.action(target, "reduce") }

// SaveAsFile triggers an output action on the RDD, creating a job.
func (g *Graph) SaveAsFile(target *RDD) *Job { return g.action(target, "saveAsFile") }

// Action triggers a named action on the RDD, creating a job. The
// specific action name is cosmetic; all actions schedule identically.
func (g *Graph) Action(target *RDD, name string) *Job { return g.action(target, name) }

// StageReads computes, by scanning executed stages in order while
// tracking which cached RDDs have been materialized, the cached RDDs
// each executed stage reads. Keys are stage IDs.
func (g *Graph) StageReads() map[int][]*RDD {
	created := map[int]bool{}
	out := map[int][]*RDD{}
	for _, s := range g.ExecutedStages() {
		reads, creates := StageFrontier(s, func(id int) bool { return created[id] })
		out[s.ID] = reads
		for _, r := range creates {
			created[r.ID] = true
		}
	}
	return out
}

// ExecutedStages returns every stage that actually executes across the
// whole application, in global stage-ID order (the execution order:
// jobs run serially and stage IDs are assigned parents-first).
func (g *Graph) ExecutedStages() []*Stage {
	var out []*Stage
	for _, j := range g.Jobs {
		out = append(out, j.NewStages...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// TotalStages returns the sum over jobs of each job's full stage set
// (Spark UI semantics: reused stages counted again as skipped).
func (g *Graph) TotalStages() int {
	n := 0
	for _, j := range g.Jobs {
		n += len(j.Stages)
	}
	return n
}

// ActiveStages returns the number of distinct stages that execute.
func (g *Graph) ActiveStages() int {
	n := 0
	for _, j := range g.Jobs {
		n += len(j.NewStages)
	}
	return n
}

// Validate checks structural invariants of the DAG: stage parents have
// lower IDs, chains contain the target, dependency edges are acyclic
// (guaranteed by construction, verified defensively), and every job's
// new stages are a subset of its stage closure. It returns the first
// violation found.
func (g *Graph) Validate() error {
	for _, j := range g.Jobs {
		inClosure := map[int]bool{}
		for _, s := range j.Stages {
			inClosure[s.ID] = true
		}
		for _, s := range j.NewStages {
			if !inClosure[s.ID] {
				return fmt.Errorf("job %d: new stage %d not in stage closure", j.ID, s.ID)
			}
			if s.FirstJob != j {
				return fmt.Errorf("job %d: new stage %d claims first job %d", j.ID, s.ID, s.FirstJob.ID)
			}
		}
		for _, s := range j.Stages {
			for _, p := range s.Parents {
				if p.ID >= s.ID {
					return fmt.Errorf("stage %d has parent %d with non-smaller ID", s.ID, p.ID)
				}
			}
			found := false
			for _, r := range s.Chain {
				if r == s.Target {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("stage %d chain does not contain target %s", s.ID, s.Target)
			}
		}
	}
	for _, r := range g.RDDs {
		for _, d := range r.Deps {
			if d.Parent.ID >= r.ID {
				return fmt.Errorf("%s depends on non-earlier %s", r, d.Parent)
			}
		}
	}
	return nil
}
