package dag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the application DAG in Graphviz DOT format: RDDs as
// nodes (cached ones shaded), dependencies as edges (shuffles bold),
// and executed stages as clusters. It is used by cmd/dagviz and is
// handy when debugging workload generators.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph app {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	stageOf := map[int]int{} // RDD ID -> stage ID that computes it
	for _, s := range g.ExecutedStages() {
		for _, r := range s.Chain {
			if _, ok := stageOf[r.ID]; !ok {
				stageOf[r.ID] = s.ID
			}
		}
	}
	byStage := map[int][]*RDD{}
	for _, r := range g.RDDs {
		byStage[stageOf[r.ID]] = append(byStage[stageOf[r.ID]], r)
	}
	for _, s := range g.ExecutedStages() {
		fmt.Fprintf(&b, "  subgraph cluster_stage%d {\n    label=\"stage %d (%s)\";\n    style=dotted;\n", s.ID, s.ID, s.Kind)
		for _, r := range byStage[s.ID] {
			style := ""
			if r.Cached {
				style = ", style=filled, fillcolor=lightblue"
			}
			fmt.Fprintf(&b, "    r%d [label=\"RDD%d %s\\n%s, %d parts\"%s];\n",
				r.ID, r.ID, r.Name, r.Op, r.NumPartitions, style)
		}
		b.WriteString("  }\n")
	}
	for _, r := range g.RDDs {
		for _, d := range r.Deps {
			attr := ""
			if d.Type == Shuffle {
				attr = " [style=bold, color=red]"
			}
			fmt.Fprintf(&b, "  r%d -> r%d%s;\n", d.Parent.ID, r.ID, attr)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Characteristics summarizes an application DAG in the shape of the
// paper's Table 3 "Characteristics" column.
type Characteristics struct {
	Jobs         int
	Stages       int // total including skipped (Spark UI semantics)
	ActiveStages int // stages that actually execute
	RDDs         int
	CachedRDDs   int
	// RefsPerRDD is the average number of read references per cached
	// RDD over the whole workflow.
	RefsPerRDD float64
	// RefsPerStage is the average number of cached-RDD read
	// references per active stage.
	RefsPerStage float64
}

// Characterize computes the Table 3 characteristics of the DAG.
func (g *Graph) Characterize() Characteristics {
	c := Characteristics{
		Jobs:         len(g.Jobs),
		Stages:       g.TotalStages(),
		ActiveStages: g.ActiveStages(),
		RDDs:         len(g.RDDs),
	}
	refs := 0
	for _, reads := range g.StageReads() {
		refs += len(reads)
	}
	for _, r := range g.RDDs {
		if r.Cached {
			c.CachedRDDs++
		}
	}
	if c.CachedRDDs > 0 {
		c.RefsPerRDD = float64(refs) / float64(c.CachedRDDs)
	}
	if c.ActiveStages > 0 {
		c.RefsPerStage = float64(refs) / float64(c.ActiveStages)
	}
	return c
}
