package dag

import "sort"

// Ancestors returns every RDD reachable from r through any dependency
// (narrow or shuffle), in ascending ID order, excluding r itself.
func (r *RDD) Ancestors() []*RDD {
	seen := map[int]bool{}
	var out []*RDD
	var walk func(x *RDD)
	walk = func(x *RDD) {
		for _, d := range x.Deps {
			if seen[d.Parent.ID] {
				continue
			}
			seen[d.Parent.ID] = true
			out = append(out, d.Parent)
			walk(d.Parent)
		}
	}
	walk(r)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// LineageDepth returns the length of the longest dependency chain from
// r back to a source (a source has depth 0).
func (r *RDD) LineageDepth() int {
	memo := map[int]int{}
	var depth func(x *RDD) int
	depth = func(x *RDD) int {
		if d, ok := memo[x.ID]; ok {
			return d
		}
		best := 0
		for _, dep := range x.Deps {
			if d := depth(dep.Parent) + 1; d > best {
				best = d
			}
		}
		memo[x.ID] = best
		return best
	}
	return depth(r)
}

// RestoreCost estimates the work, in compute microseconds, to rebuild
// one lost partition of r: its own compute cost plus that of every
// narrow ancestor up to the nearest materialized boundary. Shuffle
// dependencies stop the walk (map outputs stay on disk), as do cached
// ancestors (assumed present — this is an optimistic estimate) and
// sources (re-read is I/O, not compute). The estimate is what a
// restore-cost-aware tie-break trades off against block size.
func (g *Graph) RestoreCost(r *RDD) int64 {
	memo := map[int]int64{}
	var cost func(x *RDD) int64
	cost = func(x *RDD) int64 {
		if c, ok := memo[x.ID]; ok {
			return c
		}
		total := x.CostPerPart
		for _, d := range x.Deps {
			if d.Type != Narrow {
				continue
			}
			if d.Parent.Cached {
				continue
			}
			total += cost(d.Parent)
		}
		memo[x.ID] = total
		return total
	}
	return cost(r)
}

// CriticalPath returns the executed stages of the job ordered along
// its longest parent chain (result stage last) and the summed
// per-partition compute cost of their targets — a rough lower bound on
// the job's serial fraction.
func (j *Job) CriticalPath() (stages []*Stage, computeUs int64) {
	memo := map[int]struct {
		chain []*Stage
		cost  int64
	}{}
	var walk func(s *Stage) ([]*Stage, int64)
	walk = func(s *Stage) ([]*Stage, int64) {
		if m, ok := memo[s.ID]; ok {
			return m.chain, m.cost
		}
		var bestChain []*Stage
		var bestCost int64 = -1
		for _, p := range s.Parents {
			chain, cost := walk(p)
			if cost > bestCost {
				bestChain, bestCost = chain, cost
			}
		}
		if bestCost < 0 {
			bestCost = 0
		}
		chain := append(append([]*Stage{}, bestChain...), s)
		cost := bestCost + s.Target.CostPerPart
		memo[s.ID] = struct {
			chain []*Stage
			cost  int64
		}{chain, cost}
		return chain, cost
	}
	return walk(j.ResultStage)
}
