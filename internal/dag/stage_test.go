package dag

import (
	"math/rand"
	"testing"
)

// linearJob builds src -> map -> reduceByKey -> count: one shuffle-map
// stage and one result stage.
func linearJob(t *testing.T) (*Graph, *Job) {
	t.Helper()
	g := New()
	agg := g.Source("in", 4, 1<<20).Map("m").ReduceByKey("r")
	job := g.Count(agg)
	return g, job
}

func TestLinearJobStages(t *testing.T) {
	_, job := linearJob(t)
	if len(job.NewStages) != 2 {
		t.Fatalf("stages = %d, want 2", len(job.NewStages))
	}
	mapStage, result := job.NewStages[0], job.NewStages[1]
	if mapStage.Kind != ShuffleMap || result.Kind != Result {
		t.Errorf("stage kinds = %v, %v", mapStage.Kind, result.Kind)
	}
	if mapStage.ID >= result.ID {
		t.Errorf("parent stage ID %d must precede child %d", mapStage.ID, result.ID)
	}
	if len(result.Parents) != 1 || result.Parents[0] != mapStage {
		t.Errorf("result parents = %v", result.Parents)
	}
	if job.ResultStage != result {
		t.Error("ResultStage mismatch")
	}
	if mapStage.NumTasks != 4 || result.NumTasks != 4 {
		t.Errorf("task counts = %d, %d", mapStage.NumTasks, result.NumTasks)
	}
}

func TestChainContainsNarrowClosureOnly(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20)
	m := src.Map("m")
	r := m.ReduceByKey("r")
	m2 := r.Map("m2")
	job := g.Count(m2)
	mapStage := job.NewStages[0]
	wantChain := map[int]bool{src.ID: true, m.ID: true}
	if len(mapStage.Chain) != 2 {
		t.Fatalf("map stage chain = %v", mapStage.Chain)
	}
	for _, c := range mapStage.Chain {
		if !wantChain[c.ID] {
			t.Errorf("unexpected chain member %v", c)
		}
	}
	result := job.NewStages[1]
	wantChain = map[int]bool{r.ID: true, m2.ID: true}
	for _, c := range result.Chain {
		if !wantChain[c.ID] {
			t.Errorf("unexpected result chain member %v", c)
		}
	}
}

func TestJoinBuildsThreeStages(t *testing.T) {
	g := New()
	a := g.Source("a", 4, 1<<20).Map("ma")
	b := g.Source("b", 4, 1<<20).Map("mb")
	j := a.Join("j", b)
	job := g.Count(j)
	if len(job.NewStages) != 3 {
		t.Fatalf("join job stages = %d, want 3 (2 map + result)", len(job.NewStages))
	}
	result := job.ResultStage
	if len(result.Parents) != 2 {
		t.Fatalf("result parents = %d, want 2", len(result.Parents))
	}
}

func TestShuffleReuseProducesSkippedStages(t *testing.T) {
	g := New()
	agg := g.Source("in", 4, 1<<20).Map("m").ReduceByKey("r")
	j1 := g.Count(agg)
	j2 := g.Count(agg.Map("m2")) // reuses the same shuffle
	if j1.SkippedStages() != 0 {
		t.Errorf("first job skipped = %d, want 0", j1.SkippedStages())
	}
	if len(j2.Stages) != 2 {
		t.Fatalf("second job total stages = %d, want 2", len(j2.Stages))
	}
	if len(j2.NewStages) != 1 {
		t.Fatalf("second job new stages = %d, want 1 (the result stage)", len(j2.NewStages))
	}
	if j2.SkippedStages() != 1 {
		t.Errorf("second job skipped = %d, want 1", j2.SkippedStages())
	}
	if g.TotalStages() != 4 || g.ActiveStages() != 3 {
		t.Errorf("totals = %d/%d, want 4/3", g.TotalStages(), g.ActiveStages())
	}
}

func TestIterativeLineageClosureGrowsQuadratically(t *testing.T) {
	// Each iteration shuffles the previous result; job i's closure
	// contains all i map stages — the mechanism behind the paper's
	// 858-total/87-active LP stage counts.
	g := New()
	cur := g.Source("in", 4, 1<<20)
	const iters = 5
	for i := 0; i < iters; i++ {
		cur = cur.ReduceByKey("r")
		g.Count(cur)
	}
	if got := g.ActiveStages(); got != 2*iters {
		t.Errorf("active stages = %d, want %d", got, 2*iters)
	}
	// Job i has i+1 map stages (i of them skipped) + result.
	wantTotal := 0
	for i := 1; i <= iters; i++ {
		wantTotal += i + 1
	}
	if got := g.TotalStages(); got != wantTotal {
		t.Errorf("total stages = %d, want %d", got, wantTotal)
	}
}

func TestExecutedStagesOrdered(t *testing.T) {
	g := New()
	agg := g.Source("in", 4, 1<<20).ReduceByKey("r")
	g.Count(agg)
	g.Count(agg.ReduceByKey("r2"))
	stages := g.ExecutedStages()
	for i := 1; i < len(stages); i++ {
		if stages[i-1].ID >= stages[i].ID {
			t.Fatalf("executed stages out of order: %v", stages)
		}
	}
	if len(stages) != g.ActiveStages() {
		t.Errorf("executed count %d != active %d", len(stages), g.ActiveStages())
	}
}

func TestStageFrontierTruncatesAtNearestCached(t *testing.T) {
	g := New()
	src := g.Source("in", 4, 1<<20)
	a := src.Map("a").Cache()
	b := a.Map("b").Cache()
	c := b.Map("c")
	job := g.Count(c)
	st := job.ResultStage

	// Nothing created: the stage creates both cached RDDs.
	reads, creates := StageFrontier(st, func(int) bool { return false })
	if len(reads) != 0 {
		t.Errorf("reads with nothing created = %v", reads)
	}
	if len(creates) != 2 || creates[0] != a || creates[1] != b {
		t.Errorf("creates = %v, want [a b]", creates)
	}

	// Only a created: read a, create b.
	reads, creates = StageFrontier(st, func(id int) bool { return id == a.ID })
	if len(reads) != 1 || reads[0] != a {
		t.Errorf("reads = %v, want [a]", reads)
	}
	if len(creates) != 1 || creates[0] != b {
		t.Errorf("creates = %v, want [b]", creates)
	}

	// Both created: the walk truncates at b — a is shielded.
	reads, creates = StageFrontier(st, func(int) bool { return true })
	if len(reads) != 1 || reads[0] != b {
		t.Errorf("reads = %v, want [b] (nearest frontier only)", reads)
	}
	if len(creates) != 0 {
		t.Errorf("creates = %v, want none", creates)
	}
}

func TestStageFrontierCachedTarget(t *testing.T) {
	g := New()
	r := g.Source("in", 4, 1<<20).Map("m").Cache()
	job1 := g.Count(r)
	job2 := g.Count(r)

	// First action creates the target.
	reads, creates := StageFrontier(job1.ResultStage, func(int) bool { return false })
	if len(reads) != 0 || len(creates) != 1 || creates[0] != r {
		t.Errorf("first action: reads=%v creates=%v", reads, creates)
	}
	// Second action reads it and computes nothing.
	reads, creates = StageFrontier(job2.ResultStage, func(id int) bool { return id == r.ID })
	if len(reads) != 1 || reads[0] != r || len(creates) != 0 {
		t.Errorf("second action: reads=%v creates=%v", reads, creates)
	}
}

func TestStageReadsScan(t *testing.T) {
	g := New()
	data := g.Source("in", 4, 1<<20).Map("m").Cache()
	g.Count(data)
	g.Count(data.Map("use1"))
	g.Count(data.Map("use2"))
	reads := g.StageReads()
	stages := g.ExecutedStages()
	if len(reads[stages[0].ID]) != 0 {
		t.Errorf("creation stage should read nothing, got %v", reads[stages[0].ID])
	}
	for _, s := range stages[1:] {
		if len(reads[s.ID]) != 1 || reads[s.ID][0] != data {
			t.Errorf("stage %d reads = %v, want [data]", s.ID, reads[s.ID])
		}
	}
}

func TestValidateAcceptsWorkloadsAndRejectsCorruption(t *testing.T) {
	g, _ := linearJob(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// Corrupt: stage parent with higher ID.
	g.Jobs[0].NewStages[0].Parents = append(g.Jobs[0].NewStages[0].Parents, g.Jobs[0].ResultStage)
	if err := g.Validate(); err == nil {
		t.Error("corrupted stage parents not detected")
	}
}

// TestRandomGraphsValidate is a property test: arbitrary DAGs built
// through the public transformation API always validate, and their
// stage structure obeys the core invariants.
func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := New()
		rdds := []*RDD{g.Source("in", 1+rng.Intn(8), 1<<uint(10+rng.Intn(10)))}
		ops := 3 + rng.Intn(20)
		for i := 0; i < ops; i++ {
			p := rdds[rng.Intn(len(rdds))]
			var r *RDD
			switch rng.Intn(6) {
			case 0:
				r = p.Map("m")
			case 1:
				r = p.Filter("f", WithSizeFactor(0.5))
			case 2:
				r = p.ReduceByKey("r")
			case 3:
				q := rdds[rng.Intn(len(rdds))]
				r = p.Join("j", q)
			case 4:
				q := rdds[rng.Intn(len(rdds))]
				r = p.Union("u", q)
			case 5:
				r = p.GroupByKey("g")
			}
			if rng.Intn(3) == 0 {
				r.Cache()
			}
			rdds = append(rdds, r)
			if rng.Intn(4) == 0 {
				g.Count(r)
			}
		}
		g.Count(rdds[len(rdds)-1])
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.ActiveStages() > g.TotalStages() {
			t.Fatalf("trial %d: active %d > total %d", trial, g.ActiveStages(), g.TotalStages())
		}
		// Executed stages are distinct and each job's new stages are
		// disjoint from every other job's.
		seen := map[int]bool{}
		for _, s := range g.ExecutedStages() {
			if seen[s.ID] {
				t.Fatalf("trial %d: stage %d executed twice", trial, s.ID)
			}
			seen[s.ID] = true
		}
		// Frontier reads never include the creations of the same call.
		created := map[int]bool{}
		for _, s := range g.ExecutedStages() {
			reads, creates := StageFrontier(s, func(id int) bool { return created[id] })
			for _, r := range reads {
				for _, c := range creates {
					if r == c {
						t.Fatalf("trial %d: RDD %v both read and created", trial, r)
					}
				}
				if !created[r.ID] {
					t.Fatalf("trial %d: stage %d reads uncreated %v", trial, s.ID, r)
				}
			}
			for _, c := range creates {
				created[c.ID] = true
			}
		}
	}
}
