// Package profile persists the reference-distance profiles of
// recurring applications between runs (paper §4.1): after a first
// ad-hoc run, the AppProfiler's observed profile is saved under the
// application's identity; later runs load it and start with the whole
// application DAG visible. Interrupted first runs resume: the stored
// partial profile is extended on the next run (§4.4).
package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrdspark/internal/refdist"
)

// Entry is one stored application profile.
type Entry struct {
	// App identifies the recurring application (workload name plus
	// any parameters that change its DAG).
	App string `json:"app"`
	// Runs counts how many times the application has been profiled.
	Runs int `json:"runs"`
	// Complete marks profiles from runs that finished; incomplete
	// profiles are resumed rather than trusted as whole-DAG views.
	Complete bool `json:"complete"`
	// Discrepancies accumulates how often stored and observed
	// profiles disagreed (stale profile detection).
	Discrepancies int          `json:"discrepancies"`
	Profile       refdist.Data `json:"profile"`
}

// Store is a directory of JSON profile entries, one file per
// application.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a profile store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (s *Store) path(app string) string {
	// Sanitize the app name into a file name.
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, app)
	return filepath.Join(s.dir, clean+".json")
}

// Load returns the stored entry for the application, with ok=false
// when the application has never been profiled.
func (s *Store) Load(app string) (Entry, bool, error) {
	data, err := os.ReadFile(s.path(app))
	if os.IsNotExist(err) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, fmt.Errorf("profile: loading %q: %w", app, err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("profile: decoding %q: %w", app, err)
	}
	if e.App != app {
		return Entry{}, false, fmt.Errorf("profile: entry %q holds app %q", app, e.App)
	}
	return e, true, nil
}

// Save writes the observed profile for the application, merging run
// counters with any existing entry. complete marks whether the run
// finished; an incomplete save over a complete entry is ignored (the
// complete profile is strictly better).
func (s *Store) Save(app string, p *refdist.Profile, complete bool, discrepancies int) (Entry, error) {
	prev, ok, err := s.Load(app)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{App: app, Runs: 1, Complete: complete, Discrepancies: discrepancies, Profile: p.Data()}
	if ok {
		e.Runs = prev.Runs + 1
		e.Discrepancies += prev.Discrepancies
		if prev.Complete && !complete {
			// A complete stored profile beats a partial observation;
			// keep it and only bump the counters.
			e.Profile = prev.Profile
			e.Complete = true
		}
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return Entry{}, fmt.Errorf("profile: encoding %q: %w", app, err)
	}
	tmp := s.path(app) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return Entry{}, fmt.Errorf("profile: writing %q: %w", app, err)
	}
	if err := os.Rename(tmp, s.path(app)); err != nil {
		return Entry{}, fmt.Errorf("profile: committing %q: %w", app, err)
	}
	return e, nil
}

// Delete removes the application's stored profile (no error if
// absent).
func (s *Store) Delete(app string) error {
	err := os.Remove(s.path(app))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Apps lists the stored application names.
func (s *Store) Apps() ([]string, error) {
	glob, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	apps := make([]string, 0, len(glob))
	for _, f := range glob {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			continue // skip corrupt entries rather than failing the listing
		}
		apps = append(apps, e.App)
	}
	return apps, nil
}

// LoadProfile is the common fast path: the stored reference-distance
// profile of a complete prior run, or ok=false when the application
// must run ad-hoc.
func (s *Store) LoadProfile(app string) (*refdist.Profile, bool, error) {
	e, ok, err := s.Load(app)
	if err != nil || !ok || !e.Complete {
		return nil, false, err
	}
	return refdist.FromData(e.Profile), true, nil
}
