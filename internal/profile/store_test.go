package profile

import (
	"os"
	"path/filepath"
	"testing"

	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

func sampleProfile(reads int) *refdist.Profile {
	g := dag.New()
	data := g.Source("in", 2, 1<<20).Map("m").Cache()
	g.Count(data)
	for i := 0; i < reads; i++ {
		g.Count(data.Map("u"))
	}
	return refdist.FromGraph(g)
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadMissing(t *testing.T) {
	s := newTestStore(t)
	if _, ok, err := s.Load("nope"); ok || err != nil {
		t.Errorf("Load missing = ok:%v err:%v", ok, err)
	}
	if _, ok, err := s.LoadProfile("nope"); ok || err != nil {
		t.Errorf("LoadProfile missing = ok:%v err:%v", ok, err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	p := sampleProfile(3)
	if _, err := s.Save("KM-run", p, true, 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadProfile("KM-run")
	if err != nil || !ok {
		t.Fatalf("LoadProfile = ok:%v err:%v", ok, err)
	}
	if !got.Equal(p) {
		t.Error("profile changed across persistence")
	}
	e, ok, _ := s.Load("KM-run")
	if !ok || e.Runs != 1 || !e.Complete {
		t.Errorf("entry = %+v", e)
	}
}

func TestIncompleteProfileNotServedAsRecurring(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Save("app", sampleProfile(1), false, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LoadProfile("app"); ok {
		t.Error("incomplete profile served as a whole-DAG view")
	}
	// But the entry itself is there for resuming.
	if _, ok, _ := s.Load("app"); !ok {
		t.Error("incomplete entry lost")
	}
}

func TestCompleteBeatsLaterPartial(t *testing.T) {
	s := newTestStore(t)
	full := sampleProfile(3)
	s.Save("app", full, true, 0)
	s.Save("app", sampleProfile(1), false, 1) // later partial run
	got, ok, err := s.LoadProfile("app")
	if err != nil || !ok {
		t.Fatalf("complete profile lost: ok:%v err:%v", ok, err)
	}
	if !got.Equal(full) {
		t.Error("partial save overwrote the complete profile")
	}
	e, _, _ := s.Load("app")
	if e.Runs != 2 || e.Discrepancies != 1 {
		t.Errorf("counters = %+v", e)
	}
}

func TestResumeUpgradesPartial(t *testing.T) {
	s := newTestStore(t)
	s.Save("app", sampleProfile(1), false, 0)
	full := sampleProfile(3)
	s.Save("app", full, true, 0)
	got, ok, _ := s.LoadProfile("app")
	if !ok || !got.Equal(full) {
		t.Error("complete rerun did not upgrade the stored profile")
	}
}

func TestAppsAndDelete(t *testing.T) {
	s := newTestStore(t)
	s.Save("a", sampleProfile(1), true, 0)
	s.Save("b", sampleProfile(2), true, 0)
	apps, err := s.Apps()
	if err != nil || len(apps) != 2 {
		t.Fatalf("Apps = %v, %v", apps, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Errorf("double delete errored: %v", err)
	}
	apps, _ = s.Apps()
	if len(apps) != 1 || apps[0] != "b" {
		t.Errorf("Apps after delete = %v", apps)
	}
}

func TestAppNameSanitization(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Save("KM ../../../evil name", sampleProfile(1), true, 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadProfile("KM ../../../evil name")
	if err != nil || !ok || got == nil {
		t.Errorf("sanitized round trip failed: ok:%v err:%v", ok, err)
	}
}

func TestCorruptEntrySkippedInListing(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(dir)
	s.Save("good", sampleProfile(1), true, 0)
	os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644)
	apps, err := s.Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0] != "good" {
		t.Errorf("Apps with corruption = %v", apps)
	}
}

func TestWrongAppInEntryRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(dir)
	s.Save("alpha", sampleProfile(1), true, 0)
	// Copy alpha's file over beta's slot.
	data, _ := os.ReadFile(filepath.Join(dir, "alpha.json"))
	os.WriteFile(filepath.Join(dir, "beta.json"), data, 0o644)
	if _, _, err := s.Load("beta"); err == nil {
		t.Error("mismatched entry accepted")
	}
}
