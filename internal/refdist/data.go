package refdist

// Data is the serializable form of a Profile, used by the profile
// store to persist reference-distance profiles of recurring
// applications between runs (paper §4.1).
type Data struct {
	// Creation maps RDD ID to the stage/job that first computes it.
	Creation map[int]Ref `json:"creation"`
	// Reads maps RDD ID to its read references in stage order.
	Reads map[int][]Ref `json:"reads"`
}

// Data exports a deep copy of the profile's state.
func (p *Profile) Data() Data {
	d := Data{Creation: map[int]Ref{}, Reads: map[int][]Ref{}}
	for id, r := range p.creation {
		d.Creation[id] = r
	}
	for id, reads := range p.reads {
		cp := make([]Ref, len(reads))
		copy(cp, reads)
		d.Reads[id] = cp
	}
	return d
}

// FromData reconstructs a profile from its serialized form.
func FromData(d Data) *Profile {
	p := NewProfile()
	for id, r := range d.Creation {
		p.creation[id] = r
		p.created[id] = true
	}
	for id, reads := range d.Reads {
		cp := make([]Ref, len(reads))
		copy(cp, reads)
		p.reads[id] = cp
	}
	return p
}

// Equal reports whether two profiles record identical schedules. The
// AppProfiler uses it to detect discrepancies between a stored
// recurring profile and the DAG actually submitted.
func (p *Profile) Equal(q *Profile) bool {
	if len(p.creation) != len(q.creation) || len(p.reads) != len(q.reads) {
		return false
	}
	for id, r := range p.creation {
		if q.creation[id] != r {
			return false
		}
	}
	for id, reads := range p.reads {
		qr := q.reads[id]
		if len(qr) != len(reads) {
			return false
		}
		for i := range reads {
			if reads[i] != qr[i] {
				return false
			}
		}
	}
	return true
}
