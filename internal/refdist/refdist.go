// Package refdist computes reference distances from an application
// DAG: for every cached RDD, the schedule of stages (and jobs) at which
// its blocks will be read, and the distance from any point of execution
// to the next read. This is the metric at the heart of the MRD policy
// (paper §3.2, Definition 1) and of the Table 1 workload
// characterization.
package refdist

import (
	"fmt"
	"sort"

	"mrdspark/internal/dag"
)

// Infinite is the sentinel distance for a block with no remaining
// references. The paper represents infinity as a negative value
// (Algorithm 1, line 13); anything ordered after every finite distance
// works, and callers compare with IsInfinite.
const Infinite = -1

// IsInfinite reports whether d is the no-further-references sentinel.
func IsInfinite(d int) bool { return d < 0 }

// Ref is one read reference to a cached RDD: the stage (and its job)
// whose tasks consume the RDD's blocks.
type Ref struct {
	Stage int
	Job   int
}

// Less orders references by stage, breaking ties by job, so the order
// of a read schedule is a property of the references themselves and
// never of insertion order.
func (r Ref) Less(o Ref) bool {
	if r.Stage != o.Stage {
		return r.Stage < o.Stage
	}
	return r.Job < o.Job
}

// Profile holds the reference schedule of every cached RDD known so
// far. In recurring mode the profile covers the whole application DAG
// up front; in ad-hoc mode jobs are added one at a time as they are
// submitted, exactly as the paper's AppProfiler receives them from the
// DAGScheduler.
type Profile struct {
	reads    map[int][]Ref // rddID -> reads sorted by (stage, job)
	creation map[int]Ref   // rddID -> stage/job of first compute
	created  map[int]bool  // tracks creation while scanning stages in order
	// version counts mutations; incremental consumers (the manager's
	// MRD_Table cursors) use it to detect profile growth cheaply.
	version int
}

// NewProfile returns an empty profile ready for AddJob calls (ad-hoc
// mode).
func NewProfile() *Profile {
	return &Profile{
		reads:    map[int][]Ref{},
		creation: map[int]Ref{},
		created:  map[int]bool{},
	}
}

// FromGraph builds the complete application profile (recurring mode):
// every job's references are known before execution starts.
func FromGraph(g *dag.Graph) *Profile {
	p := NewProfile()
	for _, j := range g.Jobs {
		p.AddJob(j)
	}
	return p
}

// AddJob folds one job's executed stages into the profile. Jobs must
// be added in submission order; the profile tracks which cached RDDs
// have been materialized so each stage's reads are its nearest cached
// frontier (the same truncation Spark's iterator performs) and first
// computations are recorded as creations, not reads.
func (p *Profile) AddJob(j *dag.Job) {
	p.version++
	var resort []int
	for _, s := range j.NewStages {
		reads, creates := dag.StageFrontier(s, func(id int) bool { return p.created[id] })
		for _, r := range reads {
			rs := p.reads[r.ID]
			ref := Ref{Stage: s.ID, Job: j.ID}
			// Jobs arrive in submission order and stage IDs grow within
			// a job, so appends almost always keep the schedule sorted;
			// only an out-of-order arrival forces a re-sort below. The
			// old code re-sorted every RDD's schedule on every AddJob —
			// and with a non-stable sort comparing stages only, which
			// left the order of same-stage refs unspecified.
			if n := len(rs); n > 0 && ref.Less(rs[n-1]) {
				resort = append(resort, r.ID)
			}
			p.reads[r.ID] = append(rs, ref)
		}
		for _, r := range creates {
			p.created[r.ID] = true
			p.creation[r.ID] = Ref{Stage: s.ID, Job: j.ID}
		}
	}
	for _, id := range resort {
		rs := p.reads[id]
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].Less(rs[b]) })
	}
}

// Version returns the profile's mutation counter.
func (p *Profile) Version() int { return p.version }

// RDDs returns the IDs of every cached RDD the profile has seen, in
// ascending order.
func (p *Profile) RDDs() []int {
	ids := make([]int, 0, len(p.creation))
	for id := range p.creation {
		ids = append(ids, id)
	}
	for id := range p.reads {
		if _, ok := p.creation[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Reads returns the read references of the RDD in stage order. The
// returned slice is owned by the profile; callers must not modify it.
func (p *Profile) Reads(rddID int) []Ref { return p.reads[rddID] }

// Creation returns the stage/job that first computes the RDD and
// whether the profile knows it.
func (p *Profile) Creation(rddID int) (Ref, bool) {
	r, ok := p.creation[rddID]
	return r, ok
}

// NextRead returns the first read of the RDD at or after curStage.
func (p *Profile) NextRead(rddID, curStage int) (Ref, bool) {
	reads := p.reads[rddID]
	i := sort.Search(len(reads), func(i int) bool { return reads[i].Stage >= curStage })
	if i == len(reads) {
		return Ref{}, false
	}
	return reads[i], true
}

// StageDistance returns the stage reference distance of the RDD at
// curStage: the gap to its next read, or Infinite when no reads
// remain. A reference in the currently executing stage has distance 0.
func (p *Profile) StageDistance(rddID, curStage int) int {
	next, ok := p.NextRead(rddID, curStage)
	if !ok {
		return Infinite
	}
	return next.Stage - curStage
}

// StageDistanceConsumed is StageDistance with the currently executing
// stage's reference already consumed: "as the application execution
// moves beyond a point where there is a reference, that value is
// deleted, and the next lowest one is used" (paper §4.1). Policies use
// this form — a stage's reads resolve when the stage starts, so for
// eviction purposes a current-stage reference is already in the past.
func (p *Profile) StageDistanceConsumed(rddID, curStage int) int {
	next, ok := p.NextRead(rddID, curStage+1)
	if !ok {
		return Infinite
	}
	return next.Stage - curStage
}

// JobDistance returns the job reference distance of the RDD at
// curJob — the coarser metric the paper's §5.7 compares against.
func (p *Profile) JobDistance(rddID, curJob int) int {
	reads := p.reads[rddID]
	i := sort.Search(len(reads), func(i int) bool { return reads[i].Job >= curJob })
	if i == len(reads) {
		return Infinite
	}
	return reads[i].Job - curJob
}

// String summarizes the profile for debugging.
func (p *Profile) String() string {
	return fmt.Sprintf("Profile{%d cached RDDs, %d with reads}", len(p.creation), len(p.reads))
}

// Stats are the Table 1 distance characteristics of a workload: the
// average and maximum gaps, in jobs and in stages, between consecutive
// accesses (creation included) to each cached RDD. Averages come in
// two granularities: per reference event (every gap weighs equally)
// and per RDD (each RDD's mean gap weighs equally, so sparsely
// referenced long-gap RDDs count as much as hot ones — the
// granularity that reproduces Table 1's numbers).
type Stats struct {
	AvgJobDistance   float64 // per-RDD average (Table 1)
	MaxJobDistance   int
	AvgStageDistance float64 // per-RDD average (Table 1)
	MaxStageDistance int

	EventAvgJobDistance   float64 // per-event average
	EventAvgStageDistance float64
	Gaps                  int // number of consecutive-access pairs
}

// Stats computes the distance characteristics over the whole profile.
// Workloads whose cached RDDs are never re-read report zeros, matching
// the paper's HiBench rows.
func (p *Profile) Stats() Stats {
	var st Stats
	var stageSum, jobSum, n int
	var rddStage, rddJob float64
	rdds := 0
	for _, id := range p.RDDs() {
		events := make([]Ref, 0, len(p.reads[id])+1)
		if c, ok := p.creation[id]; ok {
			events = append(events, c)
		}
		events = append(events, p.reads[id]...)
		var sSum, jSum, k int
		for i := 1; i < len(events); i++ {
			sd := events[i].Stage - events[i-1].Stage
			jd := events[i].Job - events[i-1].Job
			sSum += sd
			jSum += jd
			k++
			if sd > st.MaxStageDistance {
				st.MaxStageDistance = sd
			}
			if jd > st.MaxJobDistance {
				st.MaxJobDistance = jd
			}
		}
		if k > 0 {
			rddStage += float64(sSum) / float64(k)
			rddJob += float64(jSum) / float64(k)
			rdds++
			stageSum += sSum
			jobSum += jSum
			n += k
		}
	}
	st.Gaps = n
	if n > 0 {
		st.EventAvgStageDistance = float64(stageSum) / float64(n)
		st.EventAvgJobDistance = float64(jobSum) / float64(n)
	}
	if rdds > 0 {
		st.AvgStageDistance = rddStage / float64(rdds)
		st.AvgJobDistance = rddJob / float64(rdds)
	}
	return st
}
