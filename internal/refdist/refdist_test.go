package refdist

import (
	"testing"

	"mrdspark/internal/dag"
)

// iterativeGraph builds: data cached, created by job 0, read by jobs
// 1..n (one single-stage job each).
func iterativeGraph(reads int) (*dag.Graph, *dag.RDD) {
	g := dag.New()
	data := g.Source("in", 4, 1<<20).Map("parse").Cache()
	g.Count(data)
	for i := 0; i < reads; i++ {
		g.Count(data.Map("use"))
	}
	return g, data
}

func TestProfileCreationAndReads(t *testing.T) {
	g, data := iterativeGraph(3)
	p := FromGraph(g)
	c, ok := p.Creation(data.ID)
	if !ok {
		t.Fatal("creation not recorded")
	}
	if c.Stage != 0 || c.Job != 0 {
		t.Errorf("creation = %+v, want stage 0 job 0", c)
	}
	reads := p.Reads(data.ID)
	if len(reads) != 3 {
		t.Fatalf("reads = %v, want 3", reads)
	}
	for i, r := range reads {
		if r.Stage != i+1 || r.Job != i+1 {
			t.Errorf("read %d = %+v", i, r)
		}
	}
}

func TestNextReadAndDistances(t *testing.T) {
	g, data := iterativeGraph(3)
	p := FromGraph(g)

	next, ok := p.NextRead(data.ID, 0)
	if !ok || next.Stage != 1 {
		t.Errorf("NextRead(0) = %+v, %v", next, ok)
	}
	if d := p.StageDistance(data.ID, 0); d != 1 {
		t.Errorf("StageDistance at 0 = %d, want 1", d)
	}
	if d := p.StageDistance(data.ID, 3); d != 0 {
		t.Errorf("StageDistance at own ref = %d, want 0 (being consumed now)", d)
	}
	if d := p.StageDistance(data.ID, 4); !IsInfinite(d) {
		t.Errorf("StageDistance past last read = %d, want infinite", d)
	}
	if d := p.JobDistance(data.ID, 1); d != 0 {
		t.Errorf("JobDistance at ref job = %d", d)
	}
	if d := p.JobDistance(data.ID, 99); !IsInfinite(d) {
		t.Errorf("JobDistance past end = %d, want infinite", d)
	}
}

func TestInfiniteSentinel(t *testing.T) {
	if !IsInfinite(Infinite) {
		t.Error("Infinite must be infinite")
	}
	if IsInfinite(0) || IsInfinite(7) {
		t.Error("finite distances flagged infinite")
	}
}

func TestUnknownRDDHasNoSchedule(t *testing.T) {
	p := NewProfile()
	if _, ok := p.NextRead(42, 0); ok {
		t.Error("unknown RDD must have no next read")
	}
	if d := p.StageDistance(42, 0); !IsInfinite(d) {
		t.Errorf("unknown RDD distance = %d, want infinite", d)
	}
}

// TestAdHocConvergesToRecurring is the key profile property: adding
// jobs one at a time (ad-hoc mode) ends at exactly the whole-graph
// profile (recurring mode).
func TestAdHocConvergesToRecurring(t *testing.T) {
	g, _ := iterativeGraph(5)
	adhoc := NewProfile()
	for _, j := range g.Jobs {
		adhoc.AddJob(j)
	}
	if !adhoc.Equal(FromGraph(g)) {
		t.Error("incremental profile differs from whole-graph profile")
	}
}

func TestAdHocPrefixSeesOnlySubmittedJobs(t *testing.T) {
	g, data := iterativeGraph(5)
	p := NewProfile()
	p.AddJob(g.Jobs[0]) // creation only
	if len(p.Reads(data.ID)) != 0 {
		t.Errorf("reads after job 0 = %v", p.Reads(data.ID))
	}
	if d := p.StageDistance(data.ID, 0); !IsInfinite(d) {
		t.Errorf("ad-hoc unknown future = %d, want infinite", d)
	}
	p.AddJob(g.Jobs[1])
	if d := p.StageDistance(data.ID, 0); d != 1 {
		t.Errorf("after job 1, distance = %d, want 1", d)
	}
}

// TestAddJobSameStageRefsDeterministic is the regression test for the
// AddJob sort bug: the old code re-sorted every schedule with a
// non-stable sort.Slice comparing stages only, so two references in
// the same stage (possible for hand-built or replayed jobs) landed in
// unspecified order. Schedules must be (Stage, Job)-sorted regardless
// of the order jobs are folded in.
func TestAddJobSameStageRefsDeterministic(t *testing.T) {
	// Hand-built jobs (bypassing the DAGScheduler, which never reuses a
	// stage ID): x is created by stage 0, then read by stage 5 in jobs
	// 1 and 2 — a same-stage tie — and by the out-of-order stage 3 in
	// job 3, which forces a re-sort.
	x := &dag.RDD{ID: 0, Cached: true}
	creator := &dag.Stage{ID: 0, Target: x}
	reader := func(stageID, rddID int) *dag.Stage {
		r := &dag.RDD{ID: rddID, Deps: []dag.Dependency{{Parent: x, Type: dag.Narrow}}}
		return &dag.Stage{ID: stageID, Target: r}
	}
	jobs := []*dag.Job{
		{ID: 0, NewStages: []*dag.Stage{creator}},
		{ID: 1, NewStages: []*dag.Stage{reader(5, 1)}},
		{ID: 2, NewStages: []*dag.Stage{reader(5, 2)}},
		{ID: 3, NewStages: []*dag.Stage{reader(3, 3)}},
	}

	want := []Ref{{Stage: 3, Job: 3}, {Stage: 5, Job: 1}, {Stage: 5, Job: 2}}
	for _, order := range [][]int{{0, 1, 2, 3}, {0, 3, 1, 2}, {0, 2, 3, 1}} {
		p := NewProfile()
		for _, i := range order {
			p.AddJob(jobs[i])
		}
		got := p.Reads(x.ID)
		if len(got) != len(want) {
			t.Fatalf("order %v: reads = %v, want %v", order, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v: reads = %v, want %v", order, got, want)
			}
		}
	}
}

func TestProfileVersionCountsMutations(t *testing.T) {
	g, _ := iterativeGraph(3)
	p := NewProfile()
	if p.Version() != 0 {
		t.Errorf("fresh profile version = %d", p.Version())
	}
	for i, j := range g.Jobs {
		p.AddJob(j)
		if p.Version() != i+1 {
			t.Errorf("after %d jobs version = %d", i+1, p.Version())
		}
	}
}

func TestStatsLinearCase(t *testing.T) {
	g, _ := iterativeGraph(3)
	st := FromGraph(g).Stats()
	// Events at stages 0,1,2,3: three gaps of 1.
	if st.AvgStageDistance != 1 || st.MaxStageDistance != 1 {
		t.Errorf("stage stats = %+v", st)
	}
	if st.AvgJobDistance != 1 || st.MaxJobDistance != 1 {
		t.Errorf("job stats = %+v", st)
	}
	if st.Gaps != 3 {
		t.Errorf("gaps = %d", st.Gaps)
	}
}

func TestStatsPerRDDWeighting(t *testing.T) {
	// Two cached RDDs: hot (gaps 1,1) and sparse (single gap 6).
	// Per-RDD average = (1 + 6) / 2; per-event = (1+1+6)/3.
	g := dag.New()
	hot := g.Source("in", 2, 1<<20).Map("hot").Cache()
	sparse := hot.Map("sparse").Cache()
	g.Count(sparse)                          // stage 0: creates both
	g.Count(hot.Map("u1"))                   // stage 1: reads hot
	g.Count(hot.Map("u2"))                   // stage 2: reads hot
	g.Count(g.Source("x", 2, 1).Map("pad1")) // stages 3..5: padding
	g.Count(g.Source("y", 2, 1).Map("pad2"))
	g.Count(g.Source("z", 2, 1).Map("pad3"))
	g.Count(sparse.Map("late")) // stage 6: reads sparse

	st := FromGraph(g).Stats()
	if st.AvgStageDistance != 3.5 {
		t.Errorf("per-RDD avg = %v, want 3.5", st.AvgStageDistance)
	}
	if want := 8.0 / 3.0; st.EventAvgStageDistance != want {
		t.Errorf("per-event avg = %v, want %v", st.EventAvgStageDistance, want)
	}
	if st.MaxStageDistance != 6 {
		t.Errorf("max = %d, want 6", st.MaxStageDistance)
	}
}

func TestStatsEmptyProfile(t *testing.T) {
	st := NewProfile().Stats()
	if st.AvgStageDistance != 0 || st.MaxStageDistance != 0 || st.Gaps != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestDataRoundTrip(t *testing.T) {
	g, _ := iterativeGraph(4)
	p := FromGraph(g)
	q := FromData(p.Data())
	if !p.Equal(q) {
		t.Error("Data/FromData round trip lost information")
	}
	// Mutating the copy must not affect the original (deep copy).
	d := p.Data()
	for id := range d.Reads {
		d.Reads[id][0].Stage = 9999
		break
	}
	if !p.Equal(q) {
		t.Error("Data() exposed internal state")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	g, _ := iterativeGraph(2)
	g2, _ := iterativeGraph(3)
	p, q := FromGraph(g), FromGraph(g2)
	if p.Equal(q) {
		t.Error("profiles with different read counts compare equal")
	}
	if !p.Equal(FromGraph(g)) {
		t.Error("identical profiles compare unequal")
	}
}

func TestRDDsSorted(t *testing.T) {
	g := dag.New()
	a := g.Source("in", 2, 1<<20).Map("a").Cache()
	b := a.Map("b").Cache()
	g.Count(b)
	ids := FromGraph(g).RDDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("RDDs() not sorted: %v", ids)
		}
	}
}
