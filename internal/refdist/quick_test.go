package refdist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomData builds a structurally valid Data value from a seed:
// creations precede reads, reads are stage-sorted and job-monotone.
func randomData(rng *rand.Rand) Data {
	d := Data{Creation: map[int]Ref{}, Reads: map[int][]Ref{}}
	nRDDs := 1 + rng.Intn(8)
	for id := 0; id < nRDDs; id++ {
		cStage := rng.Intn(10)
		d.Creation[id] = Ref{Stage: cStage, Job: cStage / 2}
		n := rng.Intn(6)
		stages := map[int]bool{}
		for len(stages) < n {
			stages[cStage+1+rng.Intn(30)] = true
		}
		var reads []Ref
		for st := range stages {
			reads = append(reads, Ref{Stage: st, Job: st / 2})
		}
		sort.Slice(reads, func(a, b int) bool { return reads[a].Stage < reads[b].Stage })
		if len(reads) > 0 {
			d.Reads[id] = reads
		}
	}
	return d
}

// TestQuickDataRoundTrip: FromData(p.Data()) is always Equal to p.
func TestQuickDataRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		d := randomData(rand.New(rand.NewSource(seed)))
		p := FromData(d)
		return p.Equal(FromData(p.Data()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDistanceLaws checks the distance algebra on random
// profiles:
//   - StageDistance(id, s) is non-increasing by exactly the advance
//     while no reference is crossed;
//   - the consumed variant never reports a smaller next-reference
//     stage than the inclusive one;
//   - distances are non-negative or infinite.
func TestQuickDistanceLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := FromData(randomData(rng))
		for _, id := range p.RDDs() {
			for s := 0; s < 45; s++ {
				d := p.StageDistance(id, s)
				dc := p.StageDistanceConsumed(id, s)
				if !IsInfinite(d) && d < 0 {
					return false
				}
				if !IsInfinite(dc) && dc < 1 {
					return false // consumed distance is always to a later stage
				}
				if IsInfinite(d) && !IsInfinite(dc) {
					return false // consuming can only lose references
				}
				if !IsInfinite(d) && !IsInfinite(dc) && dc < d {
					return false
				}
				// Advance one stage: the same next reference (if not
				// crossed) is now exactly one closer.
				if !IsInfinite(d) && d >= 1 {
					d2 := p.StageDistance(id, s+1)
					if IsInfinite(d2) || d2 != d-1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickNextReadIsFirstAtOrAfter: NextRead returns precisely the
// earliest read at or after the cursor.
func TestQuickNextReadIsFirstAtOrAfter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := FromData(randomData(rng))
		for _, id := range p.RDDs() {
			reads := p.Reads(id)
			for s := 0; s < 45; s++ {
				got, ok := p.NextRead(id, s)
				var want *Ref
				for i := range reads {
					if reads[i].Stage >= s {
						want = &reads[i]
						break
					}
				}
				if (want == nil) != !ok {
					return false
				}
				if want != nil && got != *want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsNonNegative: distance statistics are never negative
// and maxima bound the averages.
func TestQuickStatsNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		p := FromData(randomData(rand.New(rand.NewSource(seed))))
		st := p.Stats()
		if st.AvgStageDistance < 0 || st.AvgJobDistance < 0 {
			return false
		}
		if st.AvgStageDistance > float64(st.MaxStageDistance) {
			return false
		}
		if st.EventAvgStageDistance > float64(st.MaxStageDistance) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
