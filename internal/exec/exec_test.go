package exec

import (
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
	"mrdspark/internal/service"
	"mrdspark/internal/workload"
)

func mustBuild(t *testing.T, name string, p workload.Params) *workload.Spec {
	t.Helper()
	spec, err := workload.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return spec
}

func mustRun(t *testing.T, spec *workload.Spec, cfg Config) Result {
	t.Helper()
	e, err := New(spec, cfg)
	if err != nil {
		t.Fatalf("new engine for %s: %v", spec.Name, err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run %s: %v", spec.Name, err)
	}
	return res
}

// opSpec wraps one tiny single-operator DAG as a workload spec.
func opSpec(name string, p workload.Params, build func(g *dag.Graph)) *workload.Spec {
	g := dag.New()
	build(g)
	return &workload.Spec{Name: name, Graph: g, Params: p}
}

// TestOperatorGoldens pins every operator's executed output digest on a
// tiny fixed input. A moved digest means an operator's semantics
// changed — which silently re-baselines every executed workload.
func TestOperatorGoldens(t *testing.T) {
	p := workload.Params{DataRows: 64}
	const parts = 4
	src := func(g *dag.Graph) *dag.RDD { return g.Source("src", parts, cluster.MB) }
	cases := []struct {
		op    string
		build func(g *dag.Graph)
		want  uint64
	}{
		{"map", func(g *dag.Graph) { g.Collect(src(g).Map("m")) }, 0x338f4df6815073b0},
		{"filter", func(g *dag.Graph) { g.Collect(src(g).Filter("f")) }, 0x3d2bab9d4c0e94c3},
		{"flatMap", func(g *dag.Graph) { g.Collect(src(g).FlatMap("fm")) }, 0xe7541c142084ff9b},
		{"sample", func(g *dag.Graph) { g.Collect(src(g).Sample("s")) }, 0x3b59033cb1df8bda},
		{"union", func(g *dag.Graph) { g.Collect(src(g).Union("u", g.Source("src2", parts, cluster.MB))) }, 0x1389f68a89bf41b},
		{"zipPartitions", func(g *dag.Graph) {
			g.Collect(src(g).ZipPartitions("z", g.Source("src2", parts, cluster.MB)))
		}, 0xac52c25841d8de84},
		{"reduceByKey", func(g *dag.Graph) { g.Collect(src(g).ReduceByKey("rbk")) }, 0xf2aae7de9b390f1d},
		{"aggregateByKey", func(g *dag.Graph) { g.Collect(src(g).AggregateByKey("abk")) }, 0xf2aae7de9b390f1d},
		{"groupByKey", func(g *dag.Graph) { g.Collect(src(g).GroupByKey("gbk")) }, 0x29708076a6307a94},
		{"sortByKey", func(g *dag.Graph) { g.Collect(src(g).SortByKey("sbk")) }, 0x29708076a6307a94},
		{"distinct", func(g *dag.Graph) { g.Collect(src(g).Distinct("d")) }, 0x29708076a6307a94},
		{"partitionBy", func(g *dag.Graph) { g.Collect(src(g).PartitionBy("pb")) }, 0x29708076a6307a94},
		{"join", func(g *dag.Graph) {
			g.Collect(src(g).Join("j", g.Source("src2", parts, cluster.MB).Map("m2")))
		}, 0x7b152fc5617810d6},
		{"cogroup", func(g *dag.Graph) {
			g.Collect(src(g).CoGroup("cg", g.Source("src2", parts, cluster.MB).Map("m2")))
		}, 0xfc36de814c3d5938},
		{"narrow-repartition", func(g *dag.Graph) { g.Collect(src(g).Map("m", dag.WithPartitions(2))) }, 0xb5aa894d455fa56b},
	}
	for _, c := range cases {
		spec := opSpec("op-"+c.op, p, c.build)
		res := mustRun(t, spec, Config{Workers: 2, Policy: experiments.SpecLRU})
		if res.OutputDigest != c.want {
			t.Errorf("%s: output digest %#x, want %#x", c.op, res.OutputDigest, c.want)
		}
		// Same op twice must be byte-identical.
		again := mustRun(t, opSpec("op-"+c.op, p, c.build), Config{Workers: 2, Policy: experiments.SpecLRU})
		if again.OutputDigest != res.OutputDigest {
			t.Errorf("%s: second run digest %#x != first %#x", c.op, again.OutputDigest, res.OutputDigest)
		}
	}
}

// TestEngineDeterminism runs the same workload twice and demands
// byte-identical decision fingerprints, job digests and data counters.
func TestEngineDeterminism(t *testing.T) {
	for _, pol := range []experiments.PolicySpec{experiments.SpecMRD, experiments.SpecLRU} {
		spec := mustBuild(t, "SCC", workload.Params{DataRows: 64, Seed: 7})
		a := mustRun(t, spec, Config{Policy: pol})
		b := mustRun(t, mustBuild(t, "SCC", workload.Params{DataRows: 64, Seed: 7}), Config{Policy: pol})
		if a.OutputDigest != b.OutputDigest {
			t.Errorf("%s: output digests differ: %#x vs %#x", pol.Name(), a.OutputDigest, b.OutputDigest)
		}
		if len(a.History) != len(b.History) {
			t.Fatalf("%s: history lengths differ: %d vs %d", pol.Name(), len(a.History), len(b.History))
		}
		for i := range a.History {
			if a.History[i].Fingerprint() != b.History[i].Fingerprint() {
				t.Errorf("%s: stage %d fingerprints differ", pol.Name(), a.History[i].Stage)
			}
		}
		if a.TasksRun != b.TasksRun || a.Spills != b.Spills || a.LineageRecomputes != b.LineageRecomputes {
			t.Errorf("%s: data counters differ: %+v vs %+v", pol.Name(), a, b)
		}
	}
}

// TestEngineMatchesAdvisor is the in-package half of the sim-vs-exec
// differential: the engine's per-stage advice fingerprints must be
// byte-identical to service.Replay's over the same graph, policy and
// cluster shape — for every policy, since both sides run the same
// decision procedure.
func TestEngineMatchesAdvisor(t *testing.T) {
	policies := []experiments.PolicySpec{
		experiments.SpecMRD,
		experiments.SpecLRU,
		experiments.SpecLRC,
	}
	for _, name := range []string{"SCC", "PR", "KM"} {
		for _, pol := range policies {
			spec := mustBuild(t, name, workload.Params{DataRows: 32})
			res := mustRun(t, spec, Config{Workers: 4, CacheBytes: 64 * cluster.MB, Policy: pol})

			ref := mustBuild(t, name, workload.Params{DataRows: 32})
			adv, err := service.NewAdvisor(ref.Graph, service.AdvisorConfig{
				Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: pol,
			})
			if err != nil {
				t.Fatalf("%s/%s: advisor: %v", name, pol.Name(), err)
			}
			want, err := service.Replay(adv)
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", name, pol.Name(), err)
			}
			if len(res.History) != len(want) {
				t.Fatalf("%s/%s: %d executed stages vs %d advised", name, pol.Name(), len(res.History), len(want))
			}
			for i := range want {
				if got, exp := res.History[i].Fingerprint(), want[i].Fingerprint(); got != exp {
					t.Errorf("%s/%s: stage %d advice diverged:\n exec: %s\n advisor: %s",
						name, pol.Name(), want[i].Stage, got, exp)
				}
			}
		}
	}
}

// TestKillWorkerBoundary kills a worker at a stage boundary: the job
// must still complete with byte-identical output (lineage recompute
// resurrects the lost blocks), and a second killed run must reproduce
// the first's decision fingerprints exactly.
func TestKillWorkerBoundary(t *testing.T) {
	params := workload.Params{DataRows: 64, Seed: 3}
	clean := mustRun(t, mustBuild(t, "SCC", params), Config{Policy: experiments.SpecMRD})

	spec := mustBuild(t, "SCC", params)
	stages := spec.Graph.ExecutedStages()
	kill := &KillSpec{Worker: 1, Stage: stages[len(stages)/2].ID}
	killed := mustRun(t, mustBuild(t, "SCC", params), Config{Policy: experiments.SpecMRD, Kill: kill})
	if killed.OutputDigest != clean.OutputDigest {
		t.Fatalf("killed run output %#x != clean %#x", killed.OutputDigest, clean.OutputDigest)
	}
	for i := range clean.JobDigests {
		if killed.JobDigests[i] != clean.JobDigests[i] {
			t.Errorf("job %d digest diverged after kill", i)
		}
	}

	again := mustRun(t, mustBuild(t, "SCC", params), Config{Policy: experiments.SpecMRD, Kill: kill})
	if len(again.History) != len(killed.History) {
		t.Fatalf("killed histories differ in length")
	}
	for i := range killed.History {
		if killed.History[i].Fingerprint() != again.History[i].Fingerprint() {
			t.Errorf("killed run not reproducible at stage %d", killed.History[i].Stage)
		}
	}
	if again.OutputDigest != killed.OutputDigest {
		t.Errorf("killed runs disagree on output")
	}
}

// TestKillWorkerMid kills the worker while the stage's task wave is in
// flight: concurrent tasks lose bytes under their feet, retry, and
// recover through lineage — the output must still match a clean run.
func TestKillWorkerMid(t *testing.T) {
	params := workload.Params{DataRows: 64, Seed: 3}
	clean := mustRun(t, mustBuild(t, "SCC", params), Config{Policy: experiments.SpecMRD})

	spec := mustBuild(t, "SCC", params)
	stages := spec.Graph.ExecutedStages()
	kill := &KillSpec{Worker: 0, Stage: stages[len(stages)/2].ID, Mid: true}
	killed := mustRun(t, mustBuild(t, "SCC", params), Config{Policy: experiments.SpecMRD, Kill: kill})
	if killed.OutputDigest != clean.OutputDigest {
		t.Fatalf("mid-kill run output %#x != clean %#x", killed.OutputDigest, clean.OutputDigest)
	}
	if killed.LineageRecomputes == 0 && killed.Counters.Recomputes == 0 {
		t.Error("mid-kill run recorded no recompute anywhere")
	}
}

// TestSpillThenRecompute forces heavy memory pressure so cached blocks
// spill, then demands the run still deterministically completes and the
// prefetch ledger conserves.
func TestSpillThenRecompute(t *testing.T) {
	params := workload.Params{DataRows: 64, Seed: 5}
	cfg := Config{CacheBytes: 8 * cluster.MB, Policy: experiments.SpecMRD}
	a := mustRun(t, mustBuild(t, "PR", params), cfg)
	b := mustRun(t, mustBuild(t, "PR", params), cfg)
	if a.OutputDigest != b.OutputDigest {
		t.Fatalf("pressured runs diverge: %#x vs %#x", a.OutputDigest, b.OutputDigest)
	}
	if a.Counters.Evictions == 0 {
		t.Error("8MB cache forced no evictions — pressure test is vacuous")
	}
	if a.PrefetchIssued != a.PrefetchUsed+a.PrefetchWasted+a.PrefetchPending {
		t.Errorf("prefetch ledger leaks: issued=%d used=%d wasted=%d pending=%d",
			a.PrefetchIssued, a.PrefetchUsed, a.PrefetchWasted, a.PrefetchPending)
	}
}

// TestEngineRunsAllWorkloads smoke-runs every registered workload small
// and checks basic result sanity — every job produced output, counters
// are consistent.
func TestEngineRunsAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		spec := mustBuild(t, name, workload.Params{DataRows: 16})
		res := mustRun(t, spec, Config{Workers: 3, Policy: experiments.SpecMRD})
		if res.TasksRun == 0 {
			t.Errorf("%s: no tasks ran", name)
		}
		if res.Counters.Misses != res.Counters.Promotes+res.Counters.Recomputes {
			t.Errorf("%s: misses %d != promotes %d + recomputes %d",
				name, res.Counters.Misses, res.Counters.Promotes, res.Counters.Recomputes)
		}
	}
}
