package exec

import (
	"sort"
	"time"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
)

// blockKey memoizes one (RDD, partition) evaluation inside a task.
type blockKey struct{ rdd, part int }

// taskCtx is one task attempt's evaluation state.
type taskCtx struct {
	worker int
	memo   map[blockKey][]Row
}

// runTask executes one task of the stage on a worker goroutine:
// evaluate the target partition through the cached frontier, write
// shuffle output (map tasks) or digest the result (result tasks). If
// the worker dies under the task (mid-stage kill bumps its epoch), the
// task re-runs once — its recomputed output is byte-identical because
// every operator is a pure function.
func (e *Engine) runTask(s *dag.Stage, part, workerID int) (digest uint64, durUs int64) {
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		epoch := e.nodes[workerID].curEpoch()
		t := &taskCtx{worker: workerID, memo: map[blockKey][]Row{}}
		rows := e.eval(t, s.Target, part)
		if s.Kind == dag.ShuffleMap {
			e.writeBuckets(e.shuffles[s.ShuffleID], part, rows)
		} else {
			digest = DigestRows(rows)
		}
		e.ctr.add(func(c *counters) { c.tasksRun++ })
		if e.nodes[workerID].curEpoch() == epoch || attempt >= 1 {
			break
		}
		e.ctr.add(func(c *counters) { c.taskRetries++ })
	}
	e.maybeFireMidKill()
	return digest, time.Since(t0).Microseconds()
}

// maybeFireMidKill pulls the mid-stage kill trigger: the first task of
// the kill stage to complete wipes the victim worker's byte plane. The
// accounting half is deferred to the next stage boundary (the master's
// "next heartbeat").
func (e *Engine) maybeFireMidKill() {
	ch := e.midArmed
	if ch == nil {
		return
	}
	select {
	case <-ch:
		e.nodes[e.cfg.Kill.Worker].wipeData()
		e.pendingFail = true
	default:
	}
}

// eval produces the rows of partition p of r, consulting the cache for
// materialized cached RDDs and materializing the ones the current
// stage creates — the engine's equivalent of Spark's RDD.iterator
// asking the BlockManager before computing.
func (e *Engine) eval(t *taskCtx, r *dag.RDD, p int) []Row {
	k := blockKey{r.ID, p}
	if rows, ok := t.memo[k]; ok {
		return rows
	}
	var rows []Row
	if r.Cached && e.created[r.ID] && !e.curCreates[r.ID] {
		rows = e.readCached(t, r, p)
	} else {
		rows = e.computeRows(t, r, p)
		if r.Cached && e.curCreates[r.ID] {
			e.materialize(r.BlockInfo(p), rows)
		}
	}
	t.memo[k] = rows
	return rows
}

// readCached reads a materialized cached block: memory bytes, else
// disk bytes (promoting them into memory when the boundary decision
// re-admitted the block), else lineage recompute — the bytes are gone
// (a killed worker, or a MEMORY_ONLY eviction), so the block is
// rebuilt from its lineage, once, however many tasks need it.
func (e *Engine) readCached(t *taskCtx, r *dag.RDD, p int) []Row {
	id := r.Block(p)
	home := e.nodes[e.home(id)]
	if home.id != t.worker {
		e.ctr.add(func(c *counters) { c.remoteFetches++ })
	}
	if b, ok := home.loadMem(id); ok {
		rows, _ := DecodeRows(b)
		return rows
	}
	if b, ok := home.loadDisk(id); ok {
		if home.mem.Contains(id) {
			home.storeMem(id, b)
		}
		rows, _ := DecodeRows(b)
		return rows
	}
	rows, ran := e.flights.do(id, func() []Row { return e.computeRows(t, r, p) })
	if ran {
		e.ctr.add(func(c *counters) { c.lineageRecomputes++ })
		e.materialize(r.BlockInfo(p), rows)
	}
	return rows
}

// materialize lands a computed cached block's bytes where the
// accounting says the block lives: memory if resident, disk if the
// boundary spilled it before any task produced it, nowhere otherwise
// (the accounting refused or already dropped it — the next read
// recomputes).
func (e *Engine) materialize(info block.Info, rows []Row) {
	home := e.nodes[e.home(info.ID)]
	b := EncodeRows(rows)
	if home.mem.Contains(info.ID) {
		home.storeMem(info.ID, b)
		return
	}
	if home.disk.Has(info.ID) {
		if home.storeDisk(info.ID, b) {
			e.ctr.add(func(c *counters) { c.spills++; c.spillBytes += int64(len(b)) })
		}
	}
}

// computeRows computes partition p of r from its inputs: generated
// source data, gathered shuffle buckets, or narrow parents.
func (e *Engine) computeRows(t *taskCtx, r *dag.RDD, p int) []Row {
	if r.IsSource() {
		return GenPartition(e.seed, r.ID, p, e.rows, e.skew)
	}
	if r.Deps[0].Type == dag.Shuffle {
		return e.computeWide(t, r, p)
	}
	return e.computeNarrow(t, r, p)
}

// computeNarrow evaluates the narrow operators: unions concatenate,
// zips interleave partition-wise, and the map family transforms its
// parents' range of partitions.
func (e *Engine) computeNarrow(t *taskCtx, r *dag.RDD, p int) []Row {
	switch r.Op {
	case "union":
		di, pp := unionSlot(r.Deps, p)
		in := e.eval(t, r.Deps[di].Parent, pp)
		out := make([]Row, len(in))
		copy(out, in)
		return out
	case "zipPartitions":
		var out []Row
		for _, d := range r.Deps {
			out = append(out, e.eval(t, d.Parent, p%d.Parent.NumPartitions)...)
		}
		return out
	default:
		parent := r.Deps[0].Parent
		var in []Row
		for _, q := range narrowParents(parent.NumPartitions, r.NumPartitions, p) {
			in = append(in, e.eval(t, parent, q)...)
		}
		return transformNarrow(r.Op, in)
	}
}

// transformNarrow applies the per-row transformation of one narrow
// operator. Filters and samples keep deterministic subsets; the map
// family scrambles values and keeps keys (so joins downstream still
// align); flatMap doubles. Inputs are never mutated — memoized slices
// are shared across operators.
func transformNarrow(op string, in []Row) []Row {
	switch op {
	case "filter":
		out := make([]Row, 0, len(in))
		for _, row := range in {
			if splitmix64(row.Key^row.Val)%10 < 7 {
				out = append(out, row)
			}
		}
		return out
	case "sample":
		out := make([]Row, 0, len(in)/2)
		for _, row := range in {
			if splitmix64(row.Val^0xA5A5A5A5)%2 == 0 {
				out = append(out, row)
			}
		}
		return out
	case "flatMap":
		out := make([]Row, 0, 2*len(in))
		for _, row := range in {
			out = append(out, Row{Key: row.Key, Val: mixVal(row.Val)}, Row{Key: row.Key, Val: mixVal(row.Val + 1)})
		}
		return out
	default: // map, mapPartitions, mapValues, and anything map-shaped
		out := make([]Row, len(in))
		for i, row := range in {
			out[i] = Row{Key: row.Key, Val: mixVal(row.Val)}
		}
		return out
	}
}

// computeWide evaluates a shuffle operator's reduce side: gather the
// buckets every map task wrote for partition p, then aggregate, sort,
// dedup or join. Every result is key-sorted, so reduce outputs are
// independent of bucket arrival order.
func (e *Engine) computeWide(t *taskCtx, r *dag.RDD, p int) []Row {
	sides := make([][]Row, len(r.Deps))
	for i, d := range r.Deps {
		sides[i] = e.gather(t, d.ShuffleID, p)
	}
	switch r.Op {
	case "join":
		return joinRows(sides[0], sides[len(sides)-1], true)
	case "cogroup":
		return joinRows(sides[0], sides[len(sides)-1], false)
	case "reduceByKey", "aggregateByKey":
		return reduceRows(sides[0])
	case "distinct":
		sortRows(sides[0])
		out := sides[0][:0:0]
		for i, row := range sides[0] {
			if i == 0 || row != sides[0][i-1] {
				out = append(out, row)
			}
		}
		return out
	default: // groupByKey, sortByKey, partitionBy
		sortRows(sides[0])
		return sides[0]
	}
}

// reduceRows sums values per key (wrapping uint64 addition is
// order-independent, so the result is deterministic regardless of
// gather order), emitting one key-sorted row per key.
func reduceRows(in []Row) []Row {
	sums := map[uint64]uint64{}
	for _, row := range in {
		sums[row.Key] += row.Val
	}
	out := make([]Row, 0, len(sums))
	for k, v := range sums {
		out = append(out, Row{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// joinRows combines two shuffle sides per key: inner semantics for
// join (keys present on both sides), outer for cogroup (keys present
// on either).
func joinRows(a, b []Row, inner bool) []Row {
	as := map[uint64]uint64{}
	for _, row := range a {
		as[row.Key] += row.Val
	}
	bs := map[uint64]uint64{}
	for _, row := range b {
		bs[row.Key] += row.Val
	}
	var out []Row
	for k, av := range as {
		bv, ok := bs[k]
		if inner && !ok {
			continue
		}
		out = append(out, Row{Key: k, Val: mixVal(av + bv)})
	}
	if !inner {
		for k, bv := range bs {
			if _, ok := as[k]; !ok {
				out = append(out, Row{Key: k, Val: mixVal(bv)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// gather fetches and decodes every map task's bucket for reduce
// partition p of the shuffle.
func (e *Engine) gather(t *taskCtx, sid, p int) []Row {
	si := e.shuffles[sid]
	var out []Row
	for m := 0; m < si.mapParts; m++ {
		rows, _ := DecodeRows(e.fetchBucket(t, si, m, p))
		out = append(out, rows...)
	}
	return out
}

// fetchBucket reads one shuffle bucket from the worker that ran map
// task m. A missing bucket means that worker died since the map stage
// ran: the map task is recomputed from lineage (once, via
// singleflight) and its whole bucket row rewritten, then the read
// retries — Spark's FetchFailed → map-stage resubmission path,
// collapsed to the task that needs it.
func (e *Engine) fetchBucket(t *taskCtx, si *shuffleInfo, m, p int) []byte {
	w := e.nodes[cluster.HomePartition(m, len(e.nodes))]
	k := shuffleKey{sid: si.id, mapPart: m, reducePart: p}
	b, ok := w.getBucket(k)
	if !ok {
		_, ran := e.flights.do(mapFlightKey{sid: si.id, mapPart: m}, func() []Row {
			rows := e.eval(t, si.mapStage.Target, m)
			e.writeBuckets(si, m, rows)
			return nil
		})
		if ran {
			e.ctr.add(func(c *counters) { c.lineageRecomputes++ })
		}
		b, _ = w.getBucket(k)
	}
	e.ctr.add(func(c *counters) {
		c.shuffleBytes += int64(len(b))
		if w.id != t.worker {
			c.remoteFetches++
		}
	})
	return b
}

// writeBuckets partitions map task m's output rows by key hash and
// stores one encoded bucket per reduce partition in the map worker's
// shuffle store. Buckets are written even when empty, so a reducer can
// distinguish "no rows for you" from "output lost with its worker".
func (e *Engine) writeBuckets(si *shuffleInfo, m int, rows []Row) {
	buckets := make([][]Row, si.reduceParts)
	for _, row := range rows {
		q := bucketOf(row.Key, si.reduceParts)
		buckets[q] = append(buckets[q], row)
	}
	w := e.nodes[cluster.HomePartition(m, len(e.nodes))]
	for q, rs := range buckets {
		w.putBucket(shuffleKey{sid: si.id, mapPart: m, reducePart: q}, EncodeRows(rs))
	}
}
