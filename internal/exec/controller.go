package exec

import (
	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/service"
)

// This file is the engine's decision phase: the cache-management work
// the master does at every stage boundary, single-threaded, on the
// live stores. It deliberately mirrors service.(*Advisor).Advance
// operation for operation — same two-phase read resolution, same
// insert order, same ClusterOps semantics for the policy's purge and
// prefetch orders — because that exact mirroring is what the
// sim-vs-exec differential leg (internal/check) holds it to: an
// executed run's advice fingerprints must be byte-identical to the
// advisor's over the same graph, policy and cluster shape. Where the
// advisor only mutates accounting, the engine also moves the real
// bytes (spills, drops, prefetch loads) so the workers' data plane
// tracks the decisions.

// advance runs the boundary for one stage: pending worker-loss
// bookkeeping, the policy's stage-start phase (purges and prefetches
// through execOps), then the stage's frontier reads and cached-output
// inserts against the live stores.
func (e *Engine) advance(s *dag.Stage) service.Advice {
	if k := e.cfg.Kill; k != nil && !k.Mid && k.Stage == s.ID && !e.killApplied {
		// Boundary kill: both planes die at once, deterministically.
		e.nodes[k.Worker].wipeData()
		e.applyNodeFailure(k.Worker)
		e.killApplied = true
	}
	if e.pendingFail {
		// A mid-stage kill already destroyed the bytes; the master
		// "hears about it" now and settles the accounting.
		e.applyNodeFailure(e.cfg.Kill.Worker)
		e.pendingFail = false
		e.killApplied = true
	}

	e.cur = &service.Advice{Stage: s.ID, Job: s.FirstJob.ID, Decisions: []service.Decision{}}
	e.bus.SetStage(s.ID, s.FirstJob.ID)

	if e.stageObs != nil {
		e.stageObs.OnStageStart(s.ID, s.FirstJob.ID)
	}
	e.applyStage(s)

	adv := *e.cur
	e.cur = nil
	e.history = append(e.history, adv)
	return adv
}

// applyNodeFailure settles the accounting for a lost worker: stores
// cleared, pending prefetches wasted, the policy notified (MRD's §4.4
// table re-issue path).
func (e *Engine) applyNodeFailure(nodeID int) {
	n := e.nodes[nodeID]
	n.mem.Clear()
	n.disk.Clear()
	e.pfWaste += int64(len(n.prefetched))
	n.prefetched = map[block.ID]bool{}
	if e.failObs != nil {
		e.failObs.OnNodeFailure(nodeID)
	}
	e.bus.Emit(obs.Ev(obs.KindNodeFail, nodeID))
}

// applyStage folds the stage into the live cluster state: two-phase
// frontier reads (all reads resolved against stage-start state, then
// the missed blocks re-inserted), then the stage's cached outputs.
// curCreates is published here, before the task wave, so tasks know
// which cached RDDs to read and which to materialize.
func (e *Engine) applyStage(s *dag.Stage) {
	reads, creates := dag.StageFrontier(s, func(id int) bool { return e.created[id] })
	e.curCreates = map[int]bool{}
	for _, r := range creates {
		e.curCreates[r.ID] = true
	}
	var missed []block.Info
	for _, r := range reads {
		for p := 0; p < r.NumPartitions; p++ {
			if !e.resolveRead(r.BlockInfo(p)) {
				missed = append(missed, r.BlockInfo(p))
			}
		}
	}
	for _, info := range missed {
		e.insertBlock(e.home(info.ID), info, "evict")
	}
	for _, r := range creates {
		for p := 0; p < r.NumPartitions; p++ {
			e.insertBlock(e.home(r.Block(p)), r.BlockInfo(p), "evict")
		}
		e.created[r.ID] = true
	}
}

// resolveRead resolves one demand read of a cached block against the
// current accounting: hit, or miss classified as disk promote or
// lineage recompute. The data plane settles later, when the reading
// task actually touches the bytes.
func (e *Engine) resolveRead(info block.Info) bool {
	nodeID := e.home(info.ID)
	n := e.nodes[nodeID]
	if n.mem.Get(info.ID) {
		e.cur.Counters.Hits++
		if n.prefetched[info.ID] {
			e.pfUsed++
			delete(n.prefetched, info.ID)
		}
		e.bus.Emit(obs.BlockEv(obs.KindHit, nodeID, info.ID, info.Size))
		return true
	}
	e.cur.Counters.Misses++
	e.bus.Emit(obs.BlockEv(obs.KindMiss, nodeID, info.ID, info.Size))
	if n.disk.Has(info.ID) {
		e.cur.Counters.Promotes++
		e.bus.Emit(obs.BlockEv(obs.KindPromote, nodeID, info.ID, info.Size))
	} else {
		e.cur.Counters.Recomputes++
		e.bus.Emit(obs.BlockEv(obs.KindRecompute, nodeID, info.ID, info.Size))
	}
	return false
}

// insertBlock admits the block into the node's memory accounting,
// settling the demand evictions it forces.
func (e *Engine) insertBlock(nodeID int, info block.Info, evictKind string) {
	n := e.nodes[nodeID]
	if n.mem.Contains(info.ID) {
		return
	}
	evicted, ok := n.mem.Put(info)
	for _, v := range evicted {
		e.settleEviction(nodeID, v, evictKind)
	}
	if !ok {
		return // oversized or fully protected: the read stays uncached
	}
	e.cur.Counters.Inserts++
	e.bus.Emit(obs.BlockEv(obs.KindInsert, nodeID, info.ID, info.Size))
}

// settleEviction records one eviction's side effects on both planes:
// the accounting spill (MEMORY_AND_DISK) or loss (MEMORY_ONLY), the
// matching byte movement, and prefetch-waste accounting.
func (e *Engine) settleEviction(nodeID int, v block.Info, kind string) {
	n := e.nodes[nodeID]
	if v.Level == block.MemoryAndDisk {
		n.disk.Put(v.ID, v.Size)
		if moved, ok := n.spillToDisk(v.ID); ok {
			e.ctr.add(func(c *counters) { c.spills++; c.spillBytes += moved })
		}
	} else {
		n.dropMem(v.ID)
	}
	if n.prefetched[v.ID] {
		e.pfWaste++
		delete(n.prefetched, v.ID)
	}
	e.cur.Decisions = append(e.cur.Decisions, service.Decision{Kind: kind, Node: nodeID, Block: v.ID.String()})
	e.cur.Counters.Evictions++
	e.bus.Emit(obs.BlockEv(obs.KindEvict, nodeID, v.ID, v.Size))
}

// home returns the block's locality-preferred worker — the same single
// placement rule the simulator and the advisor use.
func (e *Engine) home(id block.ID) int { return cluster.HomeNode(id, len(e.nodes)) }

// blockInfo reconstructs a block's cache metadata from the DAG.
func (e *Engine) blockInfo(id block.ID) block.Info {
	if id.RDD < 0 || id.RDD >= len(e.graph.RDDs) {
		return block.Info{ID: id}
	}
	return e.graph.RDDs[id.RDD].BlockInfo(id.Partition)
}

// execOps is the policy.ClusterOps control surface over the engine's
// live cluster — the seam through which the MRD manager's purge and
// prefetch orders act on real stores and real bytes.
type execOps struct{ e *Engine }

var _ policy.ClusterOps = execOps{}

func (o execOps) NumNodes() int             { return len(o.e.nodes) }
func (o execOps) HomeNode(id block.ID) int  { return o.e.home(id) }
func (o execOps) FreeBytes(node int) int64  { return o.e.nodes[node].mem.Free() }
func (o execOps) CapacityBytes(n int) int64 { return o.e.nodes[n].mem.Capacity() }
func (o execOps) Resident(node int, id block.ID) bool {
	return o.e.nodes[node].mem.Contains(id)
}
func (o execOps) OnDisk(node int, id block.ID) bool {
	return o.e.nodes[node].disk.Has(id)
}

// Evict implements the manager's all-out purge order on both planes.
func (o execOps) Evict(nodeID int, id block.ID) bool {
	e := o.e
	n := e.nodes[nodeID]
	if !n.mem.Contains(id) {
		return false
	}
	info := e.blockInfo(id)
	if !n.mem.Remove(id) {
		return false
	}
	if info.Level == block.MemoryAndDisk {
		n.disk.Put(id, info.Size)
		if moved, ok := n.spillToDisk(id); ok {
			e.ctr.add(func(c *counters) { c.spills++; c.spillBytes += moved })
		}
	} else {
		n.dropMem(id)
	}
	if n.prefetched[id] {
		e.pfWaste++
		delete(n.prefetched, id)
	}
	if e.cur != nil {
		e.cur.Decisions = append(e.cur.Decisions, service.Decision{Kind: "purge", Node: nodeID, Block: id.String()})
		e.cur.Counters.Purged++
	}
	e.bus.Emit(obs.BlockEv(obs.KindPurge, nodeID, id, info.Size))
	return true
}

// Prefetch implements the manager's prefetch order: the block loads
// from local disk into memory — accounting through the policy's victim
// walk (arbitrated when supported), bytes by a disk-to-memory copy.
func (o execOps) Prefetch(nodeID int, info block.Info) {
	e := o.e
	n := e.nodes[nodeID]
	if n.mem.Contains(info.ID) || !n.disk.Has(info.ID) {
		return
	}
	var evicted []block.Info
	var ok bool
	if arb, isArb := n.pol.(policy.PrefetchArbiter); isArb {
		evicted, ok = n.mem.PutGuarded(info, func(v block.ID) bool {
			return arb.AllowPrefetchEviction(info, v)
		})
	} else {
		evicted, ok = n.mem.Put(info)
	}
	for _, v := range evicted {
		e.settleEviction(nodeID, v, "prefetch-evict")
	}
	if !ok {
		if e.cur != nil {
			e.cur.Decisions = append(e.cur.Decisions, service.Decision{Kind: "prefetch-drop", Node: nodeID, Block: info.ID.String()})
		}
		return
	}
	n.promoteToMem(info.ID)
	n.prefetched[info.ID] = true
	e.pfIssued++
	if e.cur != nil {
		e.cur.Decisions = append(e.cur.Decisions, service.Decision{Kind: "prefetch", Node: nodeID, Block: info.ID.String()})
		e.cur.Counters.Prefetches++
	}
	e.bus.Emit(obs.BlockEv(obs.KindPrefetchIssue, nodeID, info.ID, info.Size))
	e.bus.Emit(obs.BlockEv(obs.KindPrefetchArrive, nodeID, info.ID, info.Size))
}

// PrefetchOutcomes reports the cluster-wide prefetch feedback the
// dynamic-threshold controller consumes.
func (o execOps) PrefetchOutcomes() (used, wasted int64) {
	return o.e.pfUsed, o.e.pfWaste
}
