// Package exec is the real data plane: a master/worker execution
// runtime that actually runs the DAG's operators over deterministically
// generated partitioned data, with the live cluster BlockManager —
// memory stores driven by the configured cache policy, spill-to-disk
// under pressure, shuffle write/read between stages, and lineage
// recompute on worker loss — standing where the simulator only models
// one. The cache-decision phase at every stage boundary mirrors the
// online Advisor's semantics exactly (DESIGN.md §9), so an executed
// run's decision stream is directly comparable, byte for byte, with
// the simulator's and the advisor's: the sim is the oracle for the
// engine, and the engine is the measured ground truth for the sim.
package exec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"mrdspark/internal/dag"
)

// Row is one key/value record of an executed partition. Keys drive
// shuffle partitioning, joins and aggregations; values carry the
// payload the narrow operators transform. Both are opaque 64-bit
// words: cache management cares about data volume and movement, not
// arithmetic meaning, but every transformation is a pure function so
// recomputed partitions are byte-identical to their first run.
type Row struct {
	Key uint64
	Val uint64
}

// rowBytes is the encoded size of one Row.
const rowBytes = 16

// DefaultRows is the number of rows generated per source partition
// when workload.Params.DataRows is zero — small enough that full
// workloads execute in milliseconds, large enough that shuffles, joins
// and aggregations do real work.
const DefaultRows = 512

// DefaultSkew is the hot-key fraction when workload.Params.DataSkew is
// zero: a fifth of all rows land on a 16-key hot set, giving
// reduce-side skew without degenerate partitions.
const DefaultSkew = 0.2

// hotKeys is the size of the skewed hot-key set.
const hotKeys = 16

// keySpace bounds uniformly drawn keys.
const keySpace = 1 << 20

// splitmix64 is the project-standard bit mixer (same finalizer the
// fault RNG and shard router use): a bijective avalanche over one
// 64-bit word.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// mixVal is the value transformation every narrow "compute" applies: a
// cheap, invertibility-free scramble standing in for the numerical
// kernel (whose specific math is irrelevant to cache behaviour, but
// whose determinism is load-bearing for lineage recompute).
func mixVal(v uint64) uint64 { return splitmix64(v ^ 0xC2B2AE3D27D4EB4F) }

// GenPartition deterministically generates partition part of a source
// RDD: rows key/value pairs drawn from a splitmix64 stream seeded by
// (seed, rdd, part). skew is the probability a row's key comes from
// the hot set. The result is a pure function of its arguments — the
// engine's "HDFS": re-reading a source partition always yields the
// same bytes.
func GenPartition(seed int64, rdd, part, rows int, skew float64) []Row {
	if rows <= 0 {
		rows = DefaultRows
	}
	if skew <= 0 {
		skew = DefaultSkew
	}
	if skew >= 1 {
		skew = 1
	}
	// Hot-key threshold on the raw 64-bit draw avoids float state in
	// the stream itself; the comparison is exact and deterministic.
	threshold := uint64(float64(^uint64(0)) * skew)
	x := splitmix64(uint64(seed)) ^ splitmix64(uint64(rdd)<<20|uint64(part))
	out := make([]Row, rows)
	for i := range out {
		x = splitmix64(x)
		draw := x
		x = splitmix64(x)
		var key uint64
		if draw < threshold {
			key = x % hotKeys
		} else {
			key = x % keySpace
		}
		x = splitmix64(x)
		out[i] = Row{Key: key, Val: x}
	}
	return out
}

// EncodeRows renders rows in the canonical little-endian wire form the
// block manager stores and the digests cover.
func EncodeRows(rows []Row) []byte {
	out := make([]byte, len(rows)*rowBytes)
	for i, r := range rows {
		binary.LittleEndian.PutUint64(out[i*rowBytes:], r.Key)
		binary.LittleEndian.PutUint64(out[i*rowBytes+8:], r.Val)
	}
	return out
}

// DecodeRows parses the canonical encoding back into rows.
func DecodeRows(b []byte) ([]Row, error) {
	if len(b)%rowBytes != 0 {
		return nil, fmt.Errorf("exec: %d bytes is not a whole number of rows", len(b))
	}
	out := make([]Row, len(b)/rowBytes)
	for i := range out {
		out[i].Key = binary.LittleEndian.Uint64(b[i*rowBytes:])
		out[i].Val = binary.LittleEndian.Uint64(b[i*rowBytes+8:])
	}
	return out, nil
}

// DigestRows returns the FNV-64a digest of the canonical encoding —
// the unit the golden tests pin and the kill-parity leg compares.
func DigestRows(rows []Row) uint64 {
	h := fnv.New64a()
	var buf [rowBytes]byte
	for _, r := range rows {
		binary.LittleEndian.PutUint64(buf[:8], r.Key)
		binary.LittleEndian.PutUint64(buf[8:], r.Val)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// combineDigests folds per-partition digests (in partition order) into
// one job- or RDD-level digest.
func combineDigests(parts []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range parts {
		binary.LittleEndian.PutUint64(buf[:], d)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// sortRows orders rows by (Key, Val) — the canonical order every
// shuffle output is materialized in, which is what makes reduce-side
// results independent of bucket arrival order.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Key != rows[j].Key {
			return rows[i].Key < rows[j].Key
		}
		return rows[i].Val < rows[j].Val
	})
}

// bucketOf returns the reduce partition a key shuffles to.
func bucketOf(key uint64, parts int) int {
	return int(splitmix64(key) % uint64(parts))
}

// dataSeed resolves the engine's generation seed for a graph built
// with the given workload seed.
func dataSeed(seed int64) int64 {
	if seed == 0 {
		return 1 // keep generation distinct from the zero stream
	}
	return seed
}

// narrowParents returns the partition indices of parent that feed
// partition p of an RDD with childParts partitions through a narrow
// one-to-one-ish dependency. Same partition counts map identically;
// a repartitioning narrow edge gathers the proportional range (and a
// widening one duplicates the floor partition) — any fixed rule works,
// determinism is what matters.
func narrowParents(parentParts, childParts, p int) []int {
	if parentParts == childParts {
		return []int{p}
	}
	lo := p * parentParts / childParts
	hi := (p + 1) * parentParts / childParts
	if hi <= lo {
		return []int{lo}
	}
	out := make([]int, 0, hi-lo)
	for q := lo; q < hi; q++ {
		out = append(out, q)
	}
	return out
}

// unionSlot maps partition p of a union RDD onto (dependency index,
// parent partition) under the concatenation layout dag.Union uses.
func unionSlot(deps []dag.Dependency, p int) (depIdx, parentPart int) {
	for i, d := range deps {
		if p < d.Parent.NumPartitions {
			return i, p
		}
		p -= d.Parent.NumPartitions
	}
	// Partition count drifted from the concatenation layout (possible
	// only through WithPartitions on a union, which no workload does);
	// fall back to the first parent modulo its width.
	return 0, p % deps[0].Parent.NumPartitions
}
