package exec

import (
	"testing"
)

// TestGenPartitionGoldens pins the generated data: if these digests
// move, every executed workload's outputs, shuffles and goldens move
// with them — which is exactly the seed-stability the run cache and
// the sim-vs-exec differential legs depend on.
func TestGenPartitionGoldens(t *testing.T) {
	cases := []struct {
		name             string
		seed             int64
		rdd, part, rows  int
		skew             float64
		want             uint64
	}{
		{"defaults", 1, 0, 0, 0, 0, 0x608341f78a80b2ed},
		{"defaults-part1", 1, 0, 1, 0, 0, 0x9c8b45c9acf0a6e6},
		{"defaults-rdd2", 1, 2, 0, 0, 0, 0x74aca3f23e39accc},
		{"seed42", 42, 0, 0, 0, 0, 0x75b3edc9daee0cec},
		{"rows64", 1, 0, 0, 64, 0, 0x22b1e8374af95b80},
		{"uniform-ish", 7, 3, 2, 128, 0.01, 0xaf02abb6ce9418d7},
		{"heavy-skew", 7, 3, 2, 128, 0.9, 0x598a4c3c05a79f2a},
	}
	for _, c := range cases {
		got := DigestRows(GenPartition(c.seed, c.rdd, c.part, c.rows, c.skew))
		if got != c.want {
			t.Errorf("%s: digest %#x, want %#x", c.name, got, c.want)
		}
	}
}

// TestGenPartitionProperties checks the distribution knobs do what the
// engine assumes: determinism, row count, and that skew concentrates
// keys on the hot set.
func TestGenPartitionProperties(t *testing.T) {
	a := GenPartition(3, 1, 0, 1000, 0.5)
	b := GenPartition(3, 1, 0, 1000, 0.5)
	if len(a) != 1000 {
		t.Fatalf("got %d rows, want 1000", len(a))
	}
	if DigestRows(a) != DigestRows(b) {
		t.Fatal("same parameters produced different rows")
	}
	hot := 0
	for _, r := range a {
		if r.Key < hotKeys {
			hot++
		}
	}
	if hot < 400 || hot > 600 {
		t.Errorf("skew 0.5 put %d/1000 rows on the hot set, want ~500", hot)
	}
	uni := GenPartition(3, 1, 0, 1000, 0.001)
	hot = 0
	for _, r := range uni {
		if r.Key < hotKeys {
			hot++
		}
	}
	if hot > 100 {
		t.Errorf("near-uniform draw put %d/1000 rows on the hot set", hot)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rows := GenPartition(9, 4, 2, 33, 0.3)
	enc := EncodeRows(rows)
	if len(enc) != 33*rowBytes {
		t.Fatalf("encoded %d bytes, want %d", len(enc), 33*rowBytes)
	}
	dec, err := DecodeRows(enc)
	if err != nil {
		t.Fatal(err)
	}
	if DigestRows(dec) != DigestRows(rows) {
		t.Fatal("round trip changed the rows")
	}
	if _, err := DecodeRows(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated encoding decoded without error")
	}
}

func TestNarrowParents(t *testing.T) {
	cases := []struct {
		parent, child, p int
		want             []int
	}{
		{4, 4, 2, []int{2}},
		{8, 4, 1, []int{2, 3}},
		{4, 8, 5, []int{2}},
		{6, 4, 0, []int{0}},
		{6, 4, 3, []int{4, 5}},
	}
	for _, c := range cases {
		got := narrowParents(c.parent, c.child, c.p)
		if len(got) != len(c.want) {
			t.Errorf("narrowParents(%d,%d,%d) = %v, want %v", c.parent, c.child, c.p, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("narrowParents(%d,%d,%d) = %v, want %v", c.parent, c.child, c.p, got, c.want)
				break
			}
		}
	}
}

func TestBucketOfStable(t *testing.T) {
	for parts := 1; parts <= 8; parts++ {
		for key := uint64(0); key < 64; key++ {
			q := bucketOf(key, parts)
			if q < 0 || q >= parts {
				t.Fatalf("bucketOf(%d,%d) = %d out of range", key, parts, q)
			}
		}
	}
}
