package exec

import (
	"fmt"
	"sync"
	"time"

	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/service"
	"mrdspark/internal/workload"
)

// Engine defaults.
const (
	DefaultWorkers    = 4
	DefaultCacheBytes = 64 * cluster.MB
)

// KillSpec injects a worker loss into a run — the chaos path that
// exercises lineage recompute.
type KillSpec struct {
	// Worker is the worker index to kill.
	Worker int
	// Stage is the executed-stage ID the kill is tied to.
	Stage int
	// Mid kills the worker while the stage's task wave is running (the
	// first task to complete pulls the trigger): its bytes and shuffle
	// output vanish under the feet of concurrent tasks, which recover
	// through lineage recompute, and the cache accounting learns of the
	// loss at the next stage boundary — like a SIGKILLed executor whose
	// death the master only observes on the next heartbeat. When false
	// the kill lands deterministically at the stage's boundary, before
	// its decisions: both planes are wiped at once, so two runs with
	// the same KillSpec produce byte-identical decision fingerprints.
	Mid bool
}

// Config shapes one execution: the cluster (workers, per-worker cache
// budget), the cache policy advising the live stores, and optional
// chaos. Data-plane parameters (rows per partition, key skew, seed)
// come from the workload spec's Params.
type Config struct {
	// Workers is the worker count; 0 means DefaultWorkers. Each worker
	// is one goroutine with one memory/disk store pair, and block
	// placement follows cluster.HomeNode over this count.
	Workers int
	// CacheBytes is the per-worker memory-store capacity; 0 means
	// DefaultCacheBytes.
	CacheBytes int64
	// Policy selects the cache policy; the zero value means MRD.
	Policy experiments.PolicySpec
	// Kill, when non-nil, kills a worker during the run.
	Kill *KillSpec
}

// Result is one executed run: the measured wall-clock JCT, the
// decision-plane totals (the same counters the Advisor models), the
// data-plane counters only a real execution can measure, and the
// output digests the determinism and kill-parity checks compare.
type Result struct {
	Workload string
	Policy   string
	Workers  int

	// JCT is the measured wall-clock job-completion time.
	JCT time.Duration

	// Counters sums the per-stage decision counters; History holds the
	// per-stage advice, whose fingerprints are directly comparable with
	// service.Replay's.
	Counters service.Counters
	History  []service.Advice

	// JobDigests holds one output digest per job (over the result
	// stage's partitions, in partition order); OutputDigest folds them.
	JobDigests   []uint64
	OutputDigest uint64

	// Data-plane counters.
	TasksRun          int64 // tasks executed (retries included)
	TaskRetries       int64 // tasks re-run because their worker died under them
	Spills            int64 // blocks whose bytes moved (or landed) on disk under memory pressure
	SpillBytes        int64
	ShuffleBytes      int64 // bucket bytes read by reduce tasks
	RemoteFetches     int64 // cached-block and bucket reads served by another worker
	LineageRecomputes int64 // blocks/map outputs recomputed because their bytes were gone

	// Prefetch ledger (issued == used + wasted + pending).
	PrefetchIssued, PrefetchUsed, PrefetchWasted, PrefetchPending int64
}

// shuffleInfo is the engine's registry entry for one shuffle: the map
// stage that writes it and the two partition counts that shape its
// bucket matrix.
type shuffleInfo struct {
	id          int
	mapStage    *dag.Stage
	mapParts    int
	reduceParts int
}

// Engine executes one workload: a master (the caller of Run) that
// walks the DAG's stage graph, makes cache decisions on the live
// stores at every stage boundary, and schedules tasks onto worker
// goroutines that move real bytes. Not safe for concurrent use; Run
// may be called once.
type Engine struct {
	spec    *workload.Spec
	graph   *dag.Graph
	cfg     Config
	factory policy.Factory
	nodes   []*node

	stageObs policy.StageObserver
	jobObs   policy.JobObserver
	failObs  policy.NodeFailureObserver

	stages   map[int]*dag.Stage
	shuffles map[int]*shuffleInfo

	// created marks cached RDDs materialized at some past boundary;
	// curCreates marks the ones the current stage materializes. Both
	// are written only between task waves.
	created    map[int]bool
	curCreates map[int]bool

	seed int64
	rows int
	skew float64

	cur     *service.Advice
	history []service.Advice
	nextJob int

	pfIssued, pfUsed, pfWaste int64

	bus   *obs.Bus
	start time.Time

	workerCh []chan func()

	// Kill state. killApplied covers the accounting half; midArmed is
	// the loaded trigger a completing task of the kill stage fires;
	// pendingFail defers the accounting half of a mid-stage kill to the
	// next boundary.
	killApplied bool
	midArmed    chan struct{}
	midFired    bool
	pendingFail bool

	ctr counters

	flights flightGroup

	jobDigests []uint64
}

// counters is the data-plane tally, mutated under mu by worker
// goroutines (coarse enough that a single mutex beats per-field
// atomics for clarity).
type counters struct {
	mu                sync.Mutex
	tasksRun          int64
	taskRetries       int64
	spills            int64
	spillBytes        int64
	shuffleBytes      int64
	remoteFetches     int64
	lineageRecomputes int64
}

func (c *counters) add(f func(*counters)) {
	c.mu.Lock()
	f(c)
	c.mu.Unlock()
}

// New builds an engine over the workload. The policy factory is
// instantiated against the graph exactly as the simulator and the
// advisor instantiate it, and cluster-aware policies are attached to
// the engine's live stores.
func New(spec *workload.Spec, cfg Config) (*Engine, error) {
	if spec == nil || spec.Graph == nil {
		return nil, fmt.Errorf("exec: nil workload")
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Policy.Kind == "" {
		cfg.Policy.Kind = "MRD"
	}
	if cfg.Workers < 1 || cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("exec: bad cluster shape (workers=%d, cacheBytes=%d)", cfg.Workers, cfg.CacheBytes)
	}
	factory, err := buildFactory(cfg.Policy, spec.Graph)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		spec:     spec,
		graph:    spec.Graph,
		cfg:      cfg,
		factory:  factory,
		stages:   map[int]*dag.Stage{},
		shuffles: map[int]*shuffleInfo{},
		created:  map[int]bool{},
		seed:     dataSeed(spec.Params.Seed),
		rows:     spec.Params.DataRows,
		skew:     spec.Params.DataSkew,
		bus:      obs.New(),
	}
	for _, s := range e.graph.ExecutedStages() {
		e.stages[s.ID] = s
		if s.Kind == dag.ShuffleMap {
			e.shuffles[s.ShuffleID] = &shuffleInfo{id: s.ShuffleID, mapStage: s, mapParts: s.NumTasks}
		}
	}
	for _, r := range e.graph.RDDs {
		for _, d := range r.Deps {
			if d.Type == dag.Shuffle {
				if si, ok := e.shuffles[d.ShuffleID]; ok {
					si.reduceParts = r.NumPartitions
				}
			}
		}
	}
	e.stageObs, _ = factory.(policy.StageObserver)
	e.jobObs, _ = factory.(policy.JobObserver)
	e.failObs, _ = factory.(policy.NodeFailureObserver)
	if ca, ok := factory.(policy.ClusterAware); ok {
		ca.Attach(execOps{e})
	}
	for i := 0; i < cfg.Workers; i++ {
		e.nodes = append(e.nodes, newNode(i, cfg.CacheBytes, factory.NewNodePolicy(i)))
	}
	if k := cfg.Kill; k != nil {
		if k.Worker < 0 || k.Worker >= cfg.Workers {
			return nil, fmt.Errorf("exec: kill worker %d out of range [0,%d)", k.Worker, cfg.Workers)
		}
		if _, ok := e.stages[k.Stage]; !ok {
			return nil, fmt.Errorf("exec: kill stage %d is not an executed stage", k.Stage)
		}
	}
	return e, nil
}

// buildFactory instantiates the policy spec against the DAG, mapping
// the panic-on-unknown contract of experiments.PolicySpec.Factory into
// an error — the same wrapping the advisory tier applies, so both
// construct policies identically.
func buildFactory(spec experiments.PolicySpec, g *dag.Graph) (f policy.Factory, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: %v", r)
		}
	}()
	return spec.Factory(&workload.Spec{Graph: g}), nil
}

// AttachBus connects the run (and a bus-aware policy) to an
// observability bus. All events are emitted from the master goroutine;
// the engine stamps them with the elapsed wall-clock microseconds.
func (e *Engine) AttachBus(b *obs.Bus) {
	e.bus = b
	if at, ok := e.factory.(obs.Attacher); ok {
		at.AttachBus(b)
	}
}

// PolicyName returns the instantiated policy's display name.
func (e *Engine) PolicyName() string { return e.factory.Name() }

// History returns the per-stage decision log (valid after Run).
func (e *Engine) History() []service.Advice { return e.history }

// PrefetchLedger returns the run's prefetch conservation counters.
func (e *Engine) PrefetchLedger() (issued, used, wasted, pending int64) {
	for _, n := range e.nodes {
		pending += int64(len(n.prefetched))
	}
	return e.pfIssued, e.pfUsed, e.pfWaste, pending
}

// Run executes the whole application — every job, stage by stage — and
// returns the measured result.
func (e *Engine) Run() (Result, error) {
	e.start = time.Now()
	e.bus.SetClock(func() int64 { return time.Since(e.start).Microseconds() })
	e.jobDigests = make([]uint64, len(e.graph.Jobs))

	e.workerCh = make([]chan func(), len(e.nodes))
	var workerWG sync.WaitGroup
	for i := range e.workerCh {
		ch := make(chan func())
		e.workerCh[i] = ch
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for fn := range ch {
				fn()
			}
		}()
	}
	defer func() {
		for _, ch := range e.workerCh {
			close(ch)
		}
		workerWG.Wait()
	}()

	for _, st := range service.Schedule(e.graph) {
		if st.Stage < 0 {
			if err := e.submitJob(st.Job); err != nil {
				return Result{}, err
			}
			continue
		}
		if err := e.runStage(e.stages[st.Stage]); err != nil {
			return Result{}, err
		}
	}

	res := Result{
		Workload:   e.spec.Name,
		Policy:     e.factory.Name(),
		Workers:    len(e.nodes),
		JCT:        time.Since(e.start),
		History:    e.history,
		JobDigests: e.jobDigests,
	}
	res.OutputDigest = combineDigests(e.jobDigests)
	for _, a := range e.history {
		res.Counters.Hits += a.Counters.Hits
		res.Counters.Misses += a.Counters.Misses
		res.Counters.Promotes += a.Counters.Promotes
		res.Counters.Recomputes += a.Counters.Recomputes
		res.Counters.Inserts += a.Counters.Inserts
		res.Counters.Evictions += a.Counters.Evictions
		res.Counters.Purged += a.Counters.Purged
		res.Counters.Prefetches += a.Counters.Prefetches
	}
	res.TasksRun = e.ctr.tasksRun
	res.TaskRetries = e.ctr.taskRetries
	res.Spills = e.ctr.spills
	res.SpillBytes = e.ctr.spillBytes
	res.ShuffleBytes = e.ctr.shuffleBytes
	res.RemoteFetches = e.ctr.remoteFetches
	res.LineageRecomputes = e.ctr.lineageRecomputes
	res.PrefetchIssued, res.PrefetchUsed, res.PrefetchWasted, res.PrefetchPending = e.PrefetchLedger()
	return res, nil
}

// submitJob feeds the next job's DAG to the policy, mirroring the
// advisor's SubmitJob (jobs arrive in ID order by construction of the
// canonical schedule).
func (e *Engine) submitJob(jobID int) error {
	if jobID != e.nextJob {
		return fmt.Errorf("exec: job %d out of order (next is %d)", jobID, e.nextJob)
	}
	if e.jobObs != nil {
		e.jobObs.OnJobSubmit(e.graph.Jobs[jobID])
	}
	e.nextJob++
	return nil
}

// runStage executes one stage: the boundary decision phase on the
// master, then the task wave across the workers, then output
// collection.
func (e *Engine) runStage(s *dag.Stage) error {
	// StageStart goes out before the boundary decisions so the
	// aggregator binds them (and the kill bookkeeping) to this stage's
	// entry, the way the simulator orders its stream.
	e.bus.SetStage(s.ID, s.FirstJob.ID)
	e.bus.Emit(obs.Ev(obs.KindStageStart, obs.ClusterScope).
		WithValue(int64(s.NumTasks)).WithVerdict(s.Kind.String()))
	e.advance(s)
	stageStart := time.Now()

	if k := e.cfg.Kill; k != nil && k.Mid && k.Stage == s.ID && !e.midFired {
		e.midArmed = make(chan struct{}, 1)
		e.midArmed <- struct{}{}
		e.midFired = true
	}

	workers := make([]int, s.NumTasks)
	for t := 0; t < s.NumTasks; t++ {
		workers[t] = cluster.HomePartition(t, len(e.nodes))
		e.bus.Emit(obs.Ev(obs.KindTaskStart, workers[t]))
	}

	digests := make([]uint64, s.NumTasks)
	durs := make([]int64, s.NumTasks)
	var wg sync.WaitGroup
	for t := 0; t < s.NumTasks; t++ {
		t := t
		wg.Add(1)
		e.workerCh[workers[t]] <- func() {
			defer wg.Done()
			digests[t], durs[t] = e.runTask(s, t, workers[t])
		}
	}
	wg.Wait()
	e.flights.reset()

	for t := 0; t < s.NumTasks; t++ {
		e.bus.Emit(obs.Ev(obs.KindTaskEnd, workers[t]).WithValue(durs[t]))
	}
	e.bus.Emit(obs.Ev(obs.KindStageEnd, obs.ClusterScope).
		WithValue(time.Since(stageStart).Microseconds()))

	if s.Kind == dag.Result {
		e.jobDigests[s.FirstJob.ID] = combineDigests(digests)
	}
	return nil
}
