package exec

import (
	"sync"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/policy"
)

// shuffleKey addresses one map-output bucket: shuffle sid's map task
// mapPart wrote it for reduce partition reducePart.
type shuffleKey struct{ sid, mapPart, reducePart int }

// node is one worker's full storage stack, in two planes:
//
// The accounting plane — the live cluster.MemoryStore (policy-driven
// capacity accounting) and cluster.DiskStore — is mutated only by the
// master's stage-boundary decision phase, exactly as the online
// Advisor mutates its model stores, which is what keeps the engine's
// decision stream byte-comparable with the simulator's and the
// advisor's. Worker goroutines read residency (Contains/Has)
// concurrently; the stores' own locks make that safe.
//
// The byte plane — memBytes, diskBytes and the shuffle bucket map —
// holds the actual encoded rows and is read and written by worker
// goroutines under the node's mutex. Accounting leads, bytes follow:
// a block's bytes are stored where the accounting says it is resident,
// and a byte-plane lookup that comes up empty (worker killed, or a
// MEMORY_ONLY eviction dropped the bytes) falls back to lineage
// recompute.
type node struct {
	id int

	mem  *cluster.MemoryStore
	disk *cluster.DiskStore
	pol  policy.Policy
	// prefetched tracks blocks loaded by prefetch and not yet hit
	// (master-only, like the rest of the accounting plane).
	prefetched map[block.ID]bool

	mu        sync.Mutex
	memBytes  map[block.ID][]byte
	diskBytes map[block.ID][]byte
	shuffle   map[shuffleKey][]byte
	// epoch counts kill wipes. A task that observes a different epoch
	// at completion than at start ran over a dying worker and re-runs.
	epoch int
}

func newNode(id int, cacheBytes int64, pol policy.Policy) *node {
	return &node{
		id:         id,
		mem:        cluster.NewMemoryStore(cacheBytes, pol),
		disk:       cluster.NewDiskStore(),
		pol:        pol,
		prefetched: map[block.ID]bool{},
		memBytes:   map[block.ID][]byte{},
		diskBytes:  map[block.ID][]byte{},
		shuffle:    map[shuffleKey][]byte{},
	}
}

func (n *node) loadMem(id block.ID) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.memBytes[id]
	return b, ok
}

func (n *node) loadDisk(id block.ID) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.diskBytes[id]
	return b, ok
}

// storeMem stores the block's bytes in memory, reporting whether this
// call was the first to store them (concurrent tasks materializing the
// same block are deduplicated so data-plane counters stay
// deterministic).
func (n *node) storeMem(id block.ID, b []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.memBytes[id]; ok {
		return false
	}
	n.memBytes[id] = b
	return true
}

// storeDisk stores the block's bytes on disk (first-store semantics
// like storeMem).
func (n *node) storeDisk(id block.ID, b []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.diskBytes[id]; ok {
		return false
	}
	n.diskBytes[id] = b
	return true
}

// spillToDisk moves the block's bytes from memory to disk (an
// eviction of a MEMORY_AND_DISK block). It reports whether bytes were
// actually moved — a block can be evicted by the accounting before any
// task materialized it, in which case the spill happens later, at
// materialization, straight to disk.
func (n *node) spillToDisk(id block.ID) (int64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.memBytes[id]
	if !ok {
		return 0, false
	}
	delete(n.memBytes, id)
	if _, onDisk := n.diskBytes[id]; !onDisk {
		n.diskBytes[id] = b
		return int64(len(b)), true
	}
	return 0, false
}

// dropMem discards the block's in-memory bytes (a MEMORY_ONLY
// eviction: the bytes are simply lost and the next read recomputes).
func (n *node) dropMem(id block.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.memBytes, id)
}

// promoteToMem copies the block's on-disk bytes into memory (prefetch
// arrival; the disk copy remains, mirroring the accounting).
func (n *node) promoteToMem(id block.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if b, ok := n.diskBytes[id]; ok {
		if _, resident := n.memBytes[id]; !resident {
			n.memBytes[id] = b
		}
	}
}

func (n *node) putBucket(k shuffleKey, b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.shuffle[k]; !ok {
		n.shuffle[k] = b
	}
}

func (n *node) getBucket(k shuffleKey) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.shuffle[k]
	return b, ok
}

// wipeData destroys the worker's byte plane — cached bytes, spilled
// bytes, and every shuffle bucket it served — and bumps the kill
// epoch. This is the data half of a worker kill; the accounting half
// (store Clear, policy notification) is applied by the master, at the
// next stage boundary for mid-stage kills.
func (n *node) wipeData() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.memBytes = map[block.ID][]byte{}
	n.diskBytes = map[block.ID][]byte{}
	n.shuffle = map[shuffleKey][]byte{}
	n.epoch++
}

func (n *node) curEpoch() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// mapFlightKey deduplicates concurrent recomputes of one lost map
// task's shuffle output.
type mapFlightKey struct{ sid, mapPart int }

// flightGroup is the engine's singleflight: concurrent tasks that all
// find the same block's bytes (or the same map output) missing
// recompute it exactly once, which both bounds work and keeps the
// lineage-recompute counter deterministic. Flights are reset at every
// stage boundary.
type flightGroup struct {
	mu    sync.Mutex
	calls map[any]*flightCall
}

type flightCall struct {
	done chan struct{}
	rows []Row
}

// do runs fn for the key unless another goroutine already is (or did),
// in which case it waits for and shares that result. The boolean
// reports whether this caller executed fn.
func (g *flightGroup) do(key any, fn func() []Row) ([]Row, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[any]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.rows, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	c.rows = fn()
	close(c.done)
	return c.rows, true
}

// reset clears completed flights (called between stages, when no tasks
// are in flight).
func (g *flightGroup) reset() {
	g.mu.Lock()
	g.calls = nil
	g.mu.Unlock()
}
