package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestLimitInflightSheds holds one request inside the handler and
// checks the next one is shed with 503 + Retry-After instead of
// queueing.
func TestLimitInflightSheds(t *testing.T) {
	s := NewServer(ServerConfig{MaxInflight: 1})
	defer s.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.limitInflight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	first := make(chan int)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		first <- rec.Code
	}()
	<-entered // the slot is now occupied

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("second request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("first request: status %d, want 200", code)
	}
	if got := s.requests.Load(); got != 2 {
		t.Errorf("requests counter = %d, want 2", got)
	}
}
