package service

import (
	"strings"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/workload"
)

// buildAdvisor generates a workload and wraps it in an advisor with a
// deliberately small cache so evictions (and, for MRD, prefetches) are
// exercised.
func buildAdvisor(t *testing.T, name string, cfg AdvisorConfig) *Advisor {
	t.Helper()
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	a, err := NewAdvisor(spec.Graph, cfg)
	if err != nil {
		t.Fatalf("NewAdvisor(%s): %v", name, err)
	}
	return a
}

func smallCluster(spec experiments.PolicySpec) AdvisorConfig {
	// 128MB/node keeps SCC under enough pressure to evict, purge and
	// prefetch while still scoring hits.
	return AdvisorConfig{Nodes: 4, CacheBytes: 128 * cluster.MB, Policy: spec}
}

// TestReplayDeterministic is the parity property the whole subsystem
// rests on: two advisors over the same (workload, params, config) must
// produce byte-identical decision fingerprints.
func TestReplayDeterministic(t *testing.T) {
	for _, w := range []string{"SCC", "KM", "HB-PageRank"} {
		t.Run(w, func(t *testing.T) {
			a1 := buildAdvisor(t, w, smallCluster(experiments.SpecMRD))
			a2 := buildAdvisor(t, w, smallCluster(experiments.SpecMRD))
			adv1, err := Replay(a1)
			if err != nil {
				t.Fatal(err)
			}
			adv2, err := Replay(a2)
			if err != nil {
				t.Fatal(err)
			}
			if len(adv1) == 0 || len(adv1) != len(adv2) {
				t.Fatalf("advice counts differ or empty: %d vs %d", len(adv1), len(adv2))
			}
			for i := range adv1 {
				if f1, f2 := adv1[i].Fingerprint(), adv2[i].Fingerprint(); f1 != f2 {
					t.Fatalf("advance %d diverged:\n  %s\n  %s", i, f1, f2)
				}
			}
		})
	}
}

// TestReplayExercisesDecisions checks the small cluster actually forces
// cache management: a replay with no evictions or hits would make the
// parity oracle vacuous.
func TestReplayExercisesDecisions(t *testing.T) {
	a := buildAdvisor(t, "SCC", smallCluster(experiments.SpecMRD))
	advice, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	var c Counters
	decisions := 0
	for _, adv := range advice {
		c.Hits += adv.Counters.Hits
		c.Misses += adv.Counters.Misses
		c.Inserts += adv.Counters.Inserts
		c.Evictions += adv.Counters.Evictions
		decisions += len(adv.Decisions)
	}
	if c.Hits == 0 || c.Inserts == 0 {
		t.Errorf("replay touched no cache: %+v", c)
	}
	if c.Evictions == 0 || decisions == 0 {
		t.Errorf("64MB cluster forced no decisions (evictions=%d, decisions=%d)", c.Evictions, decisions)
	}
}

// TestPoliciesDiffer sanity-checks pluggability: MRD and LRU must make
// different decisions somewhere under pressure, or the policy plumbing
// is not actually reaching the model cluster.
func TestPoliciesDiffer(t *testing.T) {
	mrd, err := Replay(buildAdvisor(t, "SCC", smallCluster(experiments.SpecMRD)))
	if err != nil {
		t.Fatal(err)
	}
	lru, err := Replay(buildAdvisor(t, "SCC", smallCluster(experiments.SpecLRU)))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range mrd {
		if i >= len(lru) || mrd[i].Fingerprint() != lru[i].Fingerprint() {
			same = false
			break
		}
	}
	if same {
		t.Error("MRD and LRU replays are identical under cache pressure")
	}
}

// TestEveryPolicyKindReplays runs each registered policy spec end to
// end — pluggable means any of them can sit behind a session.
func TestEveryPolicyKindReplays(t *testing.T) {
	specs := []experiments.PolicySpec{
		{Kind: "LRU"}, {Kind: "FIFO"}, {Kind: "LFU"}, {Kind: "LRC"},
		{Kind: "GDS"}, {Kind: "Hyperbolic"}, {Kind: "MemTune"}, {Kind: "MIN"},
		experiments.SpecMRD, experiments.SpecMRDEvictOnly, experiments.SpecMRDPrefOnly,
	}
	for _, spec := range specs {
		t.Run(spec.Name(), func(t *testing.T) {
			if _, err := Replay(buildAdvisor(t, "KM", smallCluster(spec))); err != nil {
				t.Fatalf("replay under %s: %v", spec.Name(), err)
			}
		})
	}
}

func TestAdvisorOrderEnforcement(t *testing.T) {
	a := buildAdvisor(t, "KM", smallCluster(experiments.SpecMRD))
	steps := Schedule(a.Graph())
	firstStage := -1
	for _, st := range steps {
		if st.Stage >= 0 {
			firstStage = st.Stage
			break
		}
	}

	if _, err := a.Advance(firstStage); err == nil {
		t.Error("Advance before any SubmitJob should fail")
	}
	if err := a.SubmitJob(1); err == nil {
		t.Error("out-of-order SubmitJob(1) should fail")
	}
	if err := a.SubmitJob(0); err != nil {
		t.Fatalf("SubmitJob(0): %v", err)
	}
	if _, err := a.Advance(999999); err == nil {
		t.Error("Advance of a non-executed stage should fail")
	}
	if _, err := a.Advance(firstStage); err != nil {
		t.Fatalf("Advance(%d): %v", firstStage, err)
	}
	if _, err := a.Advance(firstStage); err == nil {
		t.Error("re-advancing the same stage should fail")
	}
}

func TestUnknownPolicyKind(t *testing.T) {
	spec, err := workload.Build("KM", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewAdvisor(spec.Graph, AdvisorConfig{Policy: experiments.PolicySpec{Kind: "NoSuchPolicy"}})
	if err == nil || !strings.Contains(err.Error(), "NoSuchPolicy") {
		t.Errorf("want unknown-policy error, got %v", err)
	}
}

// TestNodeFailureClearsState loses a worker mid-replay and checks the
// advisor keeps functioning with the node's stores wiped.
func TestNodeFailureClearsState(t *testing.T) {
	a := buildAdvisor(t, "KM", smallCluster(experiments.SpecMRD))
	steps := Schedule(a.Graph())
	half := len(steps) / 2
	run := func(part []Step) error {
		for _, st := range part {
			if st.Stage < 0 {
				if err := a.SubmitJob(st.Job); err != nil {
					return err
				}
				continue
			}
			if _, err := a.Advance(st.Stage); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(steps[:half]); err != nil {
		t.Fatal(err)
	}
	if err := a.OnNodeFailure(0); err != nil {
		t.Fatal(err)
	}
	if got := a.ResidentBlocks(0); len(got) != 0 {
		t.Errorf("node 0 still holds %d blocks after failure", len(got))
	}
	if err := a.OnNodeFailure(99); err == nil {
		t.Error("failing an out-of-range node should error")
	}
	if err := run(steps[half:]); err != nil {
		t.Fatalf("replay after node failure: %v", err)
	}
}
