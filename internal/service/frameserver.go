package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"mrdspark/internal/service/wire"
)

// The frame server: the binary wire protocol's listener side. One
// goroutine per persistent connection, requests dispatched serially in
// arrival order (a client wanting concurrency opens more connections),
// sharing the exact transport-independent cores the HTTP handlers use
// — createSession, submitJob, advance, runBatch — so the two
// transports cannot diverge in behavior, only in encoding.
//
// Hot-path discipline: one reused read buffer per connection (frames
// decode zero-copy out of it), one pooled encoder per connection for
// responses, and an interned session-ID string so the steady state of
// a session's advance loop allocates nothing in the transport.

// wireStats are the frame tier's counters behind /metrics.
type wireStats struct {
	conns    atomic.Int64 // connections accepted
	open     atomic.Int64 // connections currently open
	frames   atomic.Int64 // request frames served
	batches  atomic.Int64 // OpBatch requests served
	advices  atomic.Int64 // advice frames sent (single + batch-streamed)
	errs     atomic.Int64 // error frames sent or protocol violations
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

func (ws *wireStats) writePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP mrdserver_wire_connections_total Frame-protocol connections accepted.\n# TYPE mrdserver_wire_connections_total counter\nmrdserver_wire_connections_total %d\n", ws.conns.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_connections_open Frame-protocol connections currently open.\n# TYPE mrdserver_wire_connections_open gauge\nmrdserver_wire_connections_open %d\n", ws.open.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_frames_total Request frames served over the wire protocol.\n# TYPE mrdserver_wire_frames_total counter\nmrdserver_wire_frames_total %d\n", ws.frames.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_batches_total Batch requests served over the wire protocol.\n# TYPE mrdserver_wire_batches_total counter\nmrdserver_wire_batches_total %d\n", ws.batches.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_advices_total Advice frames sent over the wire protocol.\n# TYPE mrdserver_wire_advices_total counter\nmrdserver_wire_advices_total %d\n", ws.advices.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_errors_total Error frames sent plus protocol violations.\n# TYPE mrdserver_wire_errors_total counter\nmrdserver_wire_errors_total %d\n", ws.errs.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_bytes_in_total Bytes read off frame-protocol connections.\n# TYPE mrdserver_wire_bytes_in_total counter\nmrdserver_wire_bytes_in_total %d\n", ws.bytesIn.Load())
	fmt.Fprintf(w, "# HELP mrdserver_wire_bytes_out_total Bytes written to frame-protocol connections.\n# TYPE mrdserver_wire_bytes_out_total counter\nmrdserver_wire_bytes_out_total %d\n", ws.bytesOut.Load())
}

// encPool recycles response encoders across connections; each carries
// its grown buffer, so a busy server stops allocating encode slabs.
var encPool = sync.Pool{New: func() any { return new(wire.Enc) }}

// readBufPool recycles per-connection read slabs the same way.
var readBufPool = sync.Pool{New: func() any { return make([]byte, 16<<10) }}

// SetFrameAddr records the frame listener's advertised address
// (surfaced on /healthz for client discovery). ServeFrames calls it
// with the bound address; a fronting proxy may override afterwards.
func (s *Server) SetFrameAddr(addr string) { s.frameAddr.Store(addr) }

// FrameAddr is the advertised frame-listener address, "" when the
// wire transport is off.
func (s *Server) FrameAddr() string { return s.frameAddr.Load().(string) }

// Epoch is this server incarnation's wire-protocol session epoch.
func (s *Server) Epoch() uint32 { return s.epoch }

// ServeFrames serves the binary protocol on ln until the listener
// closes, advertising its address on /healthz. Run it in a goroutine
// next to the HTTP server; both speak to the same session registry.
func (s *Server) ServeFrames(ln net.Listener) error {
	s.SetFrameAddr(ln.Addr().String())
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveFrameConn(nc)
	}
}

// countReader / countWriter fold transport byte counts into the stats.
type countReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

type countWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// frameConnState is the per-connection reusable state.
type frameConnState struct {
	// Interned session ID: the overwhelmingly common case is one
	// session per connection (the router's splice affinity guarantees
	// it), so the []byte→string conversion happens once, not per frame.
	idBytes []byte
	id      string
}

// internID returns the string form of a session-ID view, reusing the
// previous conversion when the bytes match.
func (cs *frameConnState) internID(b []byte) string {
	if bytes.Equal(b, cs.idBytes) {
		return cs.id
	}
	cs.idBytes = append(cs.idBytes[:0], b...)
	cs.id = string(b)
	return cs.id
}

func (s *Server) serveFrameConn(nc net.Conn) {
	s.wire.conns.Add(1)
	s.wire.open.Add(1)
	defer s.wire.open.Add(-1)
	defer nc.Close()

	br := bufio.NewReaderSize(countReader{nc, &s.wire.bytesIn}, 32<<10)
	bw := bufio.NewWriterSize(countWriter{nc, &s.wire.bytesOut}, 32<<10)
	buf := readBufPool.Get().([]byte)
	enc := encPool.Get().(*wire.Enc)
	defer func() {
		readBufPool.Put(buf)
		encPool.Put(enc)
	}()
	var cs frameConnState
	ctx := context.Background()

	for {
		h, payload, nbuf, err := wire.ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			// Clean close between frames is the normal end of a
			// connection; anything else is a protocol violation.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.wire.errs.Add(1)
			}
			return
		}
		s.wire.frames.Add(1)
		s.requests.Add(1)
		if h.Version != wire.Version {
			s.writeErrorFrame(bw, h.Seq, 400, fmt.Sprintf("unsupported wire version %d (want %d)", h.Version, wire.Version))
			bw.Flush()
			return
		}
		fatal := s.dispatchFrame(ctx, bw, enc, h, payload, &cs)
		// Flush once the pipeline is drained: responses to back-to-back
		// pipelined frames coalesce into one write, a lone
		// request/response turns around immediately.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if fatal {
			bw.Flush()
			return
		}
	}
}

// respond begins a response frame mirroring the request's seq.
func (s *Server) respond(enc *wire.Enc, op byte, seq uint64) {
	enc.Begin(wire.Header{Version: wire.Version, Op: op, Epoch: s.epoch, Seq: seq})
}

func writeFrame(bw *bufio.Writer, enc *wire.Enc) error {
	frame, err := enc.Frame()
	if err != nil {
		return err
	}
	_, err = bw.Write(frame)
	return err
}

// writeErrorFrame sends OpError with an HTTP-equivalent status.
func (s *Server) writeErrorFrame(bw *bufio.Writer, seq uint64, status int, msg string) {
	s.wire.errs.Add(1)
	var e wire.Enc
	s.respond(&e, wire.OpError, seq)
	e.Uvarint(uint64(status))
	e.Str(msg)
	_ = writeFrame(bw, &e)
}

// dispatchFrame serves one request frame; true means the connection
// must close (unrecoverable protocol state).
func (s *Server) dispatchFrame(ctx context.Context, bw *bufio.Writer, enc *wire.Enc, h wire.Header, payload []byte, cs *frameConnState) bool {
	d := wire.NewDec(payload)
	switch h.Op {
	case wire.OpHello:
		// The hello's session ID is routing affinity (the router reads
		// it), not authentication; the shard just acknowledges with its
		// epoch so the client can detect restarts.
		_ = d.Bytes()
		if d.Err() != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed hello")
			return true
		}
		s.respond(enc, wire.OpHelloOK, h.Seq)
		return writeFrame(bw, enc) != nil

	case wire.OpCreate:
		// Create stays JSON-in-frame: it is once per session and its
		// payload (nested params, policy spec) is the one message where
		// schema flexibility beats encode speed.
		var req CreateSessionRequest
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "bad create body: "+err.Error())
			return false
		}
		resp, status, err := s.createSession(ctx, req)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		body, err := json.Marshal(resp)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, 500, err.Error())
			return false
		}
		s.respond(enc, wire.OpCreateOK, h.Seq)
		enc.Raw(body)
		return writeFrame(bw, enc) != nil

	case wire.OpSubmitJob:
		id := cs.internID(d.Bytes())
		job := int(d.Uvarint())
		if d.Err() != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed submit-job")
			return true
		}
		sess, status, err := s.lookupSession(ctx, id)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		resp, _, err := s.submitJob(ctx, sess, job)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, 409, err.Error())
			return false
		}
		s.respond(enc, wire.OpSubmitJobOK, h.Seq)
		enc.Uvarint(uint64(resp.Job))
		enc.Uvarint(uint64(resp.NextJob))
		if resp.Replayed {
			enc.U8(1)
		} else {
			enc.U8(0)
		}
		return writeFrame(bw, enc) != nil

	case wire.OpAdvance:
		id := cs.internID(d.Bytes())
		stage := int(d.Uvarint())
		if d.Err() != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed advance")
			return true
		}
		sess, status, err := s.lookupSession(ctx, id)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		advice, _, err := s.advance(ctx, sess, stage)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, 409, err.Error())
			return false
		}
		s.wire.advices.Add(1)
		s.respond(enc, wire.OpAdvice, h.Seq)
		AppendAdvicePayload(enc, &advice)
		return writeFrame(bw, enc) != nil

	case wire.OpBatch:
		idb, steps, err := DecodeBatchPayload(&d)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed batch: "+err.Error())
			return true
		}
		id := cs.internID(idb)
		sess, status, err := s.lookupSession(ctx, id)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		s.wire.batches.Add(1)
		jobs, advices := 0, 0
		_, status, err = s.runBatch(ctx, sess, steps, func(a Advice) error {
			// Stream each advice as its own frame the moment it exists;
			// bufio coalesces writes, the client reads until OpBatchEnd.
			s.wire.advices.Add(1)
			advices++
			s.respond(enc, wire.OpAdvice, h.Seq)
			AppendAdvicePayload(enc, &a)
			return writeFrame(bw, enc)
		}, &jobs)
		if err != nil {
			// Advice frames already streamed stay valid — the client
			// pairs the trailing OpError with the batch and retries; the
			// retry replays idempotently.
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		s.respond(enc, wire.OpBatchEnd, h.Seq)
		enc.Uvarint(uint64(jobs))
		enc.Uvarint(uint64(advices))
		return writeFrame(bw, enc) != nil

	case wire.OpDelete:
		id := cs.internID(d.Bytes())
		if d.Err() != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed delete")
			return true
		}
		if !s.deleteSession(id) {
			s.writeErrorFrame(bw, h.Seq, 404, fmt.Sprintf("no session %q", id))
			return false
		}
		s.respond(enc, wire.OpDeleteOK, h.Seq)
		return writeFrame(bw, enc) != nil

	case wire.OpStatus:
		id := cs.internID(d.Bytes())
		if d.Err() != nil {
			s.writeErrorFrame(bw, h.Seq, 400, "malformed status")
			return true
		}
		sess, status, err := s.lookupSession(ctx, id)
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, status, err.Error())
			return false
		}
		body, err := json.Marshal(s.sessionStatus(sess))
		if err != nil {
			s.writeErrorFrame(bw, h.Seq, 500, err.Error())
			return false
		}
		s.respond(enc, wire.OpStatusOK, h.Seq)
		enc.Raw(body)
		return writeFrame(bw, enc) != nil

	default:
		s.writeErrorFrame(bw, h.Seq, 400, fmt.Sprintf("unknown opcode %#x", h.Op))
		return false
	}
}
