package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// TestOversizedBodyRejected413: the request-body cap must actually be
// enforced (the original readJSON computed a limit and never installed
// it) and speak the API's error shape with a 413.
func TestOversizedBodyRejected413(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	// A syntactically valid JSON object padded past 1 MiB.
	big := `{"workload":"SCC","pad":"` + strings.Repeat("x", 1<<20) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("413 body is not the API error shape: %v", err)
	}
	if !strings.Contains(apiErr.Error, "exceeds") {
		t.Fatalf("413 error = %q, want a size-limit message", apiErr.Error)
	}
}

// TestRouterPreservesLargeSeed: ID injection must not round-trip the
// create body through map[string]any — float64 coercion silently
// corrupts integers above 2^53. The stub shard records the exact bytes
// the router forwarded.
func TestRouterPreservesLargeSeed(t *testing.T) {
	const bigSeed = "9007199254740993" // 2^53 + 1: not representable as float64

	var mu sync.Mutex
	var forwarded []byte
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		forwarded = append([]byte(nil), body...)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintln(w, `{"id":"stub","stages":1}`)
	}))
	t.Cleanup(shard.Close)

	rt := service.NewRouter(service.RouterConfig{Shards: []string{shard.URL}, ProbeEvery: -1})
	rts := httptest.NewServer(rt)
	t.Cleanup(func() {
		rts.Close()
		rt.Close()
	})

	// No client-chosen ID, so the router must inject one.
	body := `{"workload":"SCC","params":{"seed":` + bigSeed + `}}`
	resp, err := http.Post(rts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}

	mu.Lock()
	got := string(forwarded)
	mu.Unlock()
	if !strings.Contains(got, bigSeed) {
		t.Fatalf("forwarded body corrupted the seed:\n  %s\n(wanted literal %s)", got, bigSeed)
	}
	if !strings.Contains(got, `"id":"`) {
		t.Fatalf("forwarded body has no injected id: %s", got)
	}
	// The injected ID must decode as the routing ID (last-wins).
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(forwarded, &probe); err != nil || probe.ID == "" {
		t.Fatalf("forwarded body id = %q, err %v", probe.ID, err)
	}
}

// TestTimeout503IsJSONWithRetryAfter: http.TimeoutHandler's own 503 is
// plain text with no retry hint; the wrapper must rewrite it into the
// API's JSON error shape plus Retry-After, because clients key retries
// off both.
func TestTimeout503IsJSONWithRetryAfter(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (timeout)", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("timeout 503 Content-Type = %q, want application/json", ct)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout 503 carries no Retry-After")
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(body), &apiErr); err != nil {
		t.Fatalf("timeout 503 body is not JSON: %v (body %q)", err, body)
	}
	if apiErr.Error == "" {
		t.Fatalf("timeout 503 body = %q, want an error field", body)
	}
}

// TestTimedOutAdvanceRetryConverges: a timeout 503 can fire AFTER the
// advance mutated the session, so the client's blind retry is only
// safe because a re-advance of the same stage replays idempotently.
// This pins the semantics the retry policy depends on.
func TestTimedOutAdvanceRetryConverges(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: "retry-scc", Workload: "SCC", Advisor: testAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, "retry-scc", 0); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	stage := spec.Graph.Jobs[0].NewStages[0].ID
	// The "timed-out" first attempt: the mutation landed even though
	// (in the failure scenario) the client never saw the response.
	first, err := c.Advance(ctx, "retry-scc", stage)
	if err != nil {
		t.Fatal(err)
	}
	// The blind retry must converge on the identical advice.
	again, err := c.Advance(ctx, "retry-scc", stage)
	if err != nil {
		t.Fatalf("retried advance: %v", err)
	}
	if !again.Replayed {
		t.Fatal("retried advance not served as a replay")
	}
	if again.Fingerprint() != first.Fingerprint() {
		t.Fatalf("retry diverged:\n  first: %s\n  retry: %s", first.Fingerprint(), again.Fingerprint())
	}
}

// TestHeartbeatsReuseConnections: the heartbeat loop must drain each
// response body before closing it. On a loopback httptest peer the
// transport buffers the whole response, so the decoder sees EOF with
// the final data and the missing drain is invisible — the peer here is
// a raw socket speaking chunked HTTP whose terminating chunk arrives
// AFTER the JSON value, the shape the drain exists for. Without the
// drain, every heartbeat closes a half-read body, tears the connection
// down, and the next round pays a fresh TCP handshake.
func TestHeartbeatsReuseConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					req, err := http.ReadRequest(br)
					if err != nil {
						return
					}
					io.Copy(io.Discard, req.Body)
					req.Body.Close()
					io.WriteString(nc, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n3\r\n{}\n\r\n")
					// The delayed terminator: the client's decoder finishes
					// the value before EOF is observable.
					time.Sleep(15 * time.Millisecond)
					io.WriteString(nc, "0\r\n\r\n")
				}
			}(nc)
		}
	}()

	srv := service.NewServer(service.ServerConfig{
		Peers: service.PeerConfig{
			Self:  "http://self",
			Peers: []string{"http://" + ln.Addr().String()},
			Every: 5 * time.Millisecond,
		},
	})
	t.Cleanup(srv.Close)

	// ~20 heartbeat rounds; an undrained loop opens a connection per
	// round.
	time.Sleep(400 * time.Millisecond)
	if got := conns.Load(); got != 1 {
		t.Fatalf("peer saw %d TCP connections across heartbeat rounds, want 1 (bodies not drained?)", got)
	}
}

// countingStore wraps a SnapshotStore counting Load and Has calls.
type countingStore struct {
	service.SnapshotStore
	loads atomic.Int64
	has   atomic.Int64
}

func (c *countingStore) Load(id string) (*service.Snapshot, error) {
	c.loads.Add(1)
	return c.SnapshotStore.Load(id)
}

func (c *countingStore) Has(id string) (bool, error) {
	c.has.Add(1)
	return c.SnapshotStore.Has(id)
}

// TestDeleteProbesWithHasNotLoad: deciding whether a snapshot exists
// must not deserialize the full op-log snapshot.
func TestDeleteProbesWithHasNotLoad(t *testing.T) {
	store := &countingStore{SnapshotStore: service.NewMemStore()}
	srv := service.NewServer(service.ServerConfig{
		Snapshots: service.SnapshotPolicy{Store: store, EveryOps: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(client.Config{BaseURL: ts.URL})

	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: "probe-scc", Workload: "SCC", Advisor: testAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, "probe-scc", 0); err != nil {
		t.Fatal(err)
	}
	if ok, err := store.SnapshotStore.Has("probe-scc"); err != nil || !ok {
		t.Fatalf("snapshot not written before delete (ok=%v err=%v)", ok, err)
	}

	store.loads.Store(0)
	store.has.Store(0)
	if err := c.DeleteSession(ctx, "probe-scc"); err != nil {
		t.Fatal(err)
	}
	if store.has.Load() == 0 {
		t.Fatal("delete never probed the store with Has")
	}
	if n := store.loads.Load(); n != 0 {
		t.Fatalf("delete deserialized %d full snapshots; existence must use Has", n)
	}
}
