package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// ErrNoSnapshot is returned by SnapshotStore.Load when no snapshot
// exists for the session.
var ErrNoSnapshot = errors.New("service: no snapshot")

// SnapshotStore persists session snapshots. A store shared between
// shards (a shared directory first; an object store fits the same
// interface) is what lets a surviving shard adopt a dead shard's
// sessions. Implementations must be safe for concurrent use.
type SnapshotStore interface {
	// Save writes (or atomically replaces) the session's snapshot.
	Save(s *Snapshot) error
	// Load returns the session's snapshot, or ErrNoSnapshot.
	Load(sessionID string) (*Snapshot, error)
	// Has reports whether a snapshot exists without deserializing it —
	// existence probes (does this session have persisted state to
	// retire?) must not pay for a full op-log decode.
	Has(sessionID string) (bool, error)
	// Delete removes the session's snapshot; absent is not an error.
	Delete(sessionID string) error
	// List returns the stored session IDs in sorted order.
	List() ([]string, error)
}

// sessionIDPattern is the shape of session IDs that may name snapshot
// files (and that clients may supply at create time).
var sessionIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// ValidSessionID reports whether id is safe to use as a session key:
// nonempty, bounded, and free of path or header metacharacters.
func ValidSessionID(id string) bool {
	return sessionIDPattern.MatchString(id) && id != "." && id != ".."
}

// DirStore is a SnapshotStore over a local directory: one JSON file
// per session, written via temp-file + rename so readers never observe
// a torn snapshot even when shards share the directory.
type DirStore struct {
	dir string
}

const snapSuffix = ".snap.json"

// NewDirStore creates the directory if needed and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: snapshot dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

func (d *DirStore) path(id string) string { return filepath.Join(d.dir, id+snapSuffix) }

// Save implements SnapshotStore.
func (d *DirStore) Save(s *Snapshot) error {
	if !ValidSessionID(s.SessionID) {
		return fmt.Errorf("service: snapshot has unusable session ID %q", s.SessionID)
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, s.SessionID+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(s.SessionID)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load implements SnapshotStore.
func (d *DirStore) Load(sessionID string) (*Snapshot, error) {
	if !ValidSessionID(sessionID) {
		return nil, ErrNoSnapshot
	}
	data, err := os.ReadFile(d.path(sessionID))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("service: corrupt snapshot %q: %w", sessionID, err)
	}
	return &s, nil
}

// Has implements SnapshotStore with a stat, never reading the file.
func (d *DirStore) Has(sessionID string) (bool, error) {
	if !ValidSessionID(sessionID) {
		return false, nil
	}
	_, err := os.Stat(d.path(sessionID))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Delete implements SnapshotStore.
func (d *DirStore) Delete(sessionID string) error {
	if !ValidSessionID(sessionID) {
		return nil
	}
	err := os.Remove(d.path(sessionID))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements SnapshotStore.
func (d *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, snapSuffix) {
			ids = append(ids, strings.TrimSuffix(name, snapSuffix))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// MemStore is an in-memory SnapshotStore for tests and single-process
// multi-shard setups (several Servers sharing one MemStore model a
// shared snapshot service without touching disk).
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{snaps: map[string][]byte{}} }

// Save implements SnapshotStore.
func (m *MemStore) Save(s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[s.SessionID] = data
	return nil
}

// Load implements SnapshotStore.
func (m *MemStore) Load(sessionID string) (*Snapshot, error) {
	m.mu.Lock()
	data, ok := m.snaps[sessionID]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNoSnapshot
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Has implements SnapshotStore.
func (m *MemStore) Has(sessionID string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.snaps[sessionID]
	return ok, nil
}

// Delete implements SnapshotStore.
func (m *MemStore) Delete(sessionID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.snaps, sessionID)
	return nil
}

// List implements SnapshotStore.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.snaps))
	for id := range m.snaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}
