package service

import (
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"mrdspark/internal/metrics"
	"mrdspark/internal/obs/trace"
)

// Service telemetry: per-route latency histograms, the inflight gauge,
// slow-request logging, per-hop latency response headers, and the
// debug endpoints (pprof + span exports) gated behind a separate
// listener. The tracing side lives in internal/obs/trace; this file is
// where the service wires it to HTTP.

// TraceConfig attaches a tracer and slow-request logging to a server
// or router. The zero value disables both at zero per-request cost.
type TraceConfig struct {
	// Tracer records request spans; nil disables tracing (the hot path
	// then costs one nil compare per emission site, no allocations).
	Tracer *trace.Tracer
	// SlowRequest logs any request slower than this; 0 disables.
	SlowRequest time.Duration
	// Logf receives slow-request lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

func (c TraceConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Per-hop latency headers: each tier stamps its own wall time onto the
// response so the client can print a router/shard/compute breakdown
// without needing the span export.
const (
	// HeaderShardUs is the shard's total handler time in microseconds
	// (queue wait included), stamped by the shard middleware.
	HeaderShardUs = "X-Mrd-Shard-Us"
	// HeaderComputeUs is the advisor policy-compute time in
	// microseconds, stamped by the advance/submit handlers.
	HeaderComputeUs = "X-Mrd-Compute-Us"
	// HeaderRouterUs is the router's total proxy time in microseconds
	// (retries included), stamped by the routing tier.
	HeaderRouterUs = "X-Mrd-Router-Us"
)

// routeBucketBoundsUs are the fixed request-duration bucket bounds in
// microseconds (0.5 ms .. 10 s); rendered as seconds on /metrics per
// the Prometheus convention for *_duration_seconds.
var routeBucketBoundsUs = []int64{
	500, 1000, 2500, 5000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// httpStats aggregates the HTTP-tier telemetry: one fixed-bucket
// latency histogram per route plus the protection-middleware counters.
type httpStats struct {
	mu     sync.Mutex
	routes map[string]*metrics.Histogram // route -> duration histogram (µs)

	inflight   int64 // requests currently holding an inflight slot
	shed       int64 // requests refused with 503 at capacity
	queueWaits int64 // requests that waited for a slot under QueueGrace
	slow       int64 // requests logged as slow
}

func newHTTPStats() *httpStats {
	return &httpStats{routes: map[string]*metrics.Histogram{}}
}

// observe records one finished request for route.
func (h *httpStats) observe(route string, dur time.Duration) {
	us := dur.Microseconds()
	h.mu.Lock()
	hist, ok := h.routes[route]
	if !ok {
		hist = metrics.NewHistogram("request_duration_"+route, "us", routeBucketBoundsUs)
		h.routes[route] = hist
	}
	hist.Observe(us)
	h.mu.Unlock()
}

func (h *httpStats) add(field *int64, delta int64) {
	h.mu.Lock()
	*field += delta
	h.mu.Unlock()
}

// quantileUs estimates a quantile from the histogram's buckets: the
// upper bound of the bucket where the cumulative count crosses q.
func quantileUs(hist *metrics.Histogram, q float64) int64 {
	if hist.Count == 0 {
		return 0
	}
	target := int64(q * float64(hist.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range hist.Bounds {
		cum += hist.Counts[i]
		if cum >= target {
			return b
		}
	}
	return hist.Max
}

// writePrometheus renders the HTTP-tier metrics in the exposition
// format: cumulative-le duration histograms per route (le labels in
// seconds), quantile gauges, the inflight gauge, and the shed/slow
// counters. Routes render in sorted order so the output golden-tests.
func (h *httpStats) writePrometheus(bw *promWriter) {
	h.mu.Lock()
	defer h.mu.Unlock()

	names := make([]string, 0, len(h.routes))
	for name := range h.routes {
		names = append(names, name)
	}
	sort.Strings(names)

	bw.printf("# HELP mrdserver_request_duration_seconds Request duration by route.\n")
	bw.printf("# TYPE mrdserver_request_duration_seconds histogram\n")
	for _, name := range names {
		hist := h.routes[name]
		var cum int64
		for i, bound := range hist.Bounds {
			cum += hist.Counts[i]
			bw.printf("mrdserver_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				name, secondsLabel(bound), cum)
		}
		bw.printf("mrdserver_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum+hist.Overflow)
		bw.printf("mrdserver_request_duration_seconds_sum{route=%q} %s\n",
			name, strconv.FormatFloat(float64(hist.Sum)/1e6, 'g', -1, 64))
		bw.printf("mrdserver_request_duration_seconds_count{route=%q} %d\n", name, hist.Count)
	}

	bw.printf("# HELP mrdserver_request_duration_us_quantile Estimated request-duration quantiles by route (bucket upper bounds, microseconds).\n")
	bw.printf("# TYPE mrdserver_request_duration_us_quantile gauge\n")
	for _, name := range names {
		hist := h.routes[name]
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}} {
			bw.printf("mrdserver_request_duration_us_quantile{route=%q,quantile=%q} %d\n",
				name, q.label, quantileUs(hist, q.q))
		}
	}

	bw.printf("# HELP mrdserver_inflight Requests currently holding an inflight slot.\n# TYPE mrdserver_inflight gauge\nmrdserver_inflight %d\n", h.inflight)
	bw.printf("# HELP mrdserver_requests_shed_total Requests refused with 503 at capacity.\n# TYPE mrdserver_requests_shed_total counter\nmrdserver_requests_shed_total %d\n", h.shed)
	bw.printf("# HELP mrdserver_queue_waits_total Requests that waited for an inflight slot under the queue grace.\n# TYPE mrdserver_queue_waits_total counter\nmrdserver_queue_waits_total %d\n", h.queueWaits)
	bw.printf("# HELP mrdserver_slow_requests_total Requests logged as slower than the slow-request threshold.\n# TYPE mrdserver_slow_requests_total counter\nmrdserver_slow_requests_total %d\n", h.slow)
}

// secondsLabel renders a microsecond bound as a seconds le label
// ("0.0005", "0.25", "10").
func secondsLabel(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// promWriter folds write errors into one sticky error (the same shape
// internal/obs uses for its exposition).
type promWriter struct {
	w   interface{ Write([]byte) (int, error) }
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// statusWriter wraps the response writer to capture the status code
// and stamp the shard's per-hop latency header the moment the header
// section is flushed (headers are immutable after WriteHeader, so the
// stamp cannot wait for the handler to return). The route field is
// filled in by the route wrapper so the outer middleware can attribute
// the request after serving it.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	start       time.Time
	trace       trace.SpanContext // zero unless tracing is on
	route       string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.wroteHeader {
		return
	}
	sw.wroteHeader = true
	sw.status = code
	sw.Header().Set(HeaderShardUs, strconv.FormatInt(time.Since(sw.start).Microseconds(), 10))
	if !sw.trace.IsZero() {
		sw.Header().Set(trace.Header, sw.trace.Traceparent())
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wroteHeader {
		sw.WriteHeader(http.StatusOK)
	}
	return sw.ResponseWriter.Write(b)
}

// setRoute tags the response writer with the matched route name; the
// inflight middleware reads it back to attribute the request. A writer
// that is not ours (direct handler tests) is left alone.
func setRoute(w http.ResponseWriter, route string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.route = route
	}
}

// DebugHandler serves the debug endpoints meant for a separate,
// non-public listener (-debug-addr): the pprof suite plus the tracer's
// span exports (/debug/spans.jsonl and /debug/trace.json, the Chrome
// trace_event form). With a nil tracer the span endpoints return empty
// exports.
func DebugHandler(tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/spans.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = trace.WriteJSONL(w, tr.Spans())
	})
	mux.HandleFunc("GET /debug/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChromeTrace(w, tr.Spans())
	})
	return mux
}
