package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mrdspark/internal/obs/trace"
)

// TestQueueGraceAvoidsShed: with QueueGrace set, a request arriving at
// capacity waits for a slot instead of shedding, and the wait is
// recorded as a queue-wait span under the request's root.
func TestQueueGraceAvoidsShed(t *testing.T) {
	tr := trace.NewTracer(64)
	s := NewServer(ServerConfig{
		MaxInflight: 1,
		QueueGrace:  2 * time.Second,
		Trace:       TraceConfig{Tracer: tr},
	})
	defer s.Close()

	release := make(chan struct{})
	entered := make(chan struct{})
	h := s.limitInflight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/peers", nil))
			codes[i] = rec.Code
		}(i)
		if i == 0 {
			<-entered // first request holds the only slot
		}
	}
	// Give the second request time to reach the full-queue wait before
	// the slot frees up, so the queue-wait path actually runs.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("statuses %v; QueueGrace should let both requests through", codes)
	}
	var waited bool
	for _, sp := range tr.Spans() {
		if sp.Name == "queue-wait" && strings.HasPrefix(sp.Attr, "waited=") {
			waited = true
			if parent, ok := findSpan(tr, sp.Parent); !ok || parent.Name != "shard-handler" {
				t.Errorf("queue-wait's parent is %q, want shard-handler", parent.Name)
			}
		}
	}
	if !waited {
		t.Error("no queue-wait span with a waited= annotation was recorded")
	}
}

// TestShedRecordsSpanAndCounter: without QueueGrace a request at
// capacity sheds immediately — 503 + Retry-After as before — and the
// telemetry layer records a shed-annotated root span, echoes the
// traceparent, and counts the shed on /metrics.
func TestShedRecordsSpanAndCounter(t *testing.T) {
	tr := trace.NewTracer(64)
	s := NewServer(ServerConfig{MaxInflight: 1, Trace: TraceConfig{Tracer: tr}})
	defer s.Close()

	release := make(chan struct{})
	entered := make(chan struct{})
	h := s.limitInflight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/peers", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/peers", nil))
	close(release)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response lost its Retry-After hint")
	}
	if _, ok := trace.Parse(rec.Header().Get(trace.Header)); !ok {
		t.Error("shed response carries no valid traceparent")
	}
	var shed bool
	for _, sp := range tr.Spans() {
		if sp.Name == "shard-handler" && sp.Attr == "shed" {
			shed = true
		}
	}
	if !shed {
		t.Error("no shed-annotated root span was recorded")
	}

	mrec := httptest.NewRecorder()
	s.handleMetrics(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "mrdserver_requests_shed_total 1") {
		t.Error("/metrics does not count the shed request")
	}
}

// findSpan looks a recorded span up by ID.
func findSpan(tr *trace.Tracer, id trace.SpanID) (trace.Span, bool) {
	for _, sp := range tr.Spans() {
		if sp.ID == id {
			return sp, true
		}
	}
	return trace.Span{}, false
}

// TestTelemetryPrometheusGolden pins the /metrics text for the new
// HTTP-tier series the way internal/obs golden-tests its exposition:
// exact lines, deterministic ordering.
func TestTelemetryPrometheusGolden(t *testing.T) {
	tr := trace.NewTracer(64)
	s := NewServer(ServerConfig{Trace: TraceConfig{Tracer: tr}})
	defer s.Close()
	h := s.Handler()

	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()

	// The scrape itself holds the one inflight slot while rendering, so
	// the gauge deterministically reads 1.
	for _, want := range []string{
		"# TYPE mrdserver_request_duration_seconds histogram",
		`mrdserver_request_duration_seconds_bucket{route="healthz",le="0.0005"}`,
		`mrdserver_request_duration_seconds_bucket{route="healthz",le="+Inf"} 2`,
		`mrdserver_request_duration_seconds_count{route="healthz"} 2`,
		`mrdserver_request_duration_us_quantile{route="healthz",quantile="0.5"}`,
		`mrdserver_request_duration_us_quantile{route="healthz",quantile="0.95"}`,
		`mrdserver_request_duration_us_quantile{route="healthz",quantile="0.99"}`,
		"# TYPE mrdserver_inflight gauge\nmrdserver_inflight 1",
		"mrdserver_requests_shed_total 0",
		"mrdserver_queue_waits_total 0",
		"mrdserver_slow_requests_total 0",
		"mrdserver_trace_spans_total 2",
		"mrdserver_trace_spans_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestSlowRequestLogged: a request over the SlowRequest threshold is
// logged through the configured Logf and counted.
func TestSlowRequestLogged(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := NewServer(ServerConfig{Trace: TraceConfig{
		SlowRequest: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, strings.TrimSpace(format))
			mu.Unlock()
		},
	}})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "slow request:") {
		t.Fatalf("slow-request log = %q, want one 'slow request:' line", lines)
	}
}
