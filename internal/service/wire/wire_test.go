package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var e Enc
	h := Header{Version: Version, Op: OpAdvance, Flags: 0, Epoch: 0xdeadbeef, Seq: 42}
	e.Begin(h)
	e.Str("sess-1")
	e.Uvarint(7)
	e.Varint(-3)
	e.U8(0xaa)
	frame, err := e.Frame()
	if err != nil {
		t.Fatal(err)
	}

	gotH, payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header round-trip: got %+v want %+v", gotH, h)
	}
	d := NewDec(payload)
	if s := d.Str(); s != "sess-1" {
		t.Fatalf("str: %q", s)
	}
	if v := d.Uvarint(); v != 7 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := d.Varint(); v != -3 {
		t.Fatalf("varint: %d", v)
	}
	if v := d.U8(); v != 0xaa {
		t.Fatalf("u8: %#x", v)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining: %d", d.Remaining())
	}
}

// The read buffer must be reused when big enough and grown when not —
// and the returned payload must alias it, not a fresh allocation.
func TestReadFrameReusesBuffer(t *testing.T) {
	var e Enc
	e.Begin(Header{Version: Version, Op: OpHello})
	e.Str("abc")
	frame, _ := e.Frame()

	buf := make([]byte, 256)
	_, payload, got, err := ReadFrame(bytes.NewReader(frame), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("big-enough buffer was not reused")
	}
	if len(payload) != 4 { // uvarint len + "abc"
		t.Fatalf("payload len %d", len(payload))
	}

	_, _, grown, err := ReadFrame(bytes.NewReader(frame), make([]byte, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cap(grown) < HeaderLen+4 {
		t.Fatalf("buffer did not grow: cap %d", cap(grown))
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	over := make([]byte, 4)
	binary.BigEndian.PutUint32(over, MaxFrame+1)
	if _, _, _, err := ReadFrame(bytes.NewReader(over), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	under := make([]byte, 4)
	binary.BigEndian.PutUint32(under, HeaderLen-1)
	if _, _, _, err := ReadFrame(bytes.NewReader(under), nil); !errors.Is(err, ErrFrameTooSmall) {
		t.Fatalf("undersized: %v", err)
	}
	// A frame cut off mid-header is an unexpected EOF, not a silent nil.
	var e Enc
	e.Begin(Header{Version: Version, Op: OpHello})
	frame, _ := e.Frame()
	if _, _, _, err := ReadFrame(bytes.NewReader(frame[:10]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestEncFrameTooLarge(t *testing.T) {
	var e Enc
	e.Begin(Header{Version: Version, Op: OpCreate})
	e.Raw(make([]byte, MaxFrame))
	if _, err := e.Frame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// Every decode primitive must latch ErrTruncated on a short payload
// instead of panicking or returning garbage silently.
func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{0x05, 'a'}) // claims 5 bytes, has 1
	if b := d.Bytes(); b != nil {
		t.Fatalf("short Bytes returned %q", b)
	}
	if err := d.Err(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// Error is sticky: later reads keep failing cheaply.
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("post-error Uvarint: %d", v)
	}

	d = NewDec([]byte{0xff}) // unterminated varint
	d.Uvarint()
	if err := d.Err(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated varint: %v", err)
	}

	d = NewDec(nil)
	d.U8()
	if err := d.Err(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty U8: %v", err)
	}
}

// A connection's worth of pipelined frames decodes in sequence off one
// reader with one reused buffer.
func TestPipelinedFrames(t *testing.T) {
	var stream bytes.Buffer
	var e Enc
	for i := 0; i < 5; i++ {
		e.Begin(Header{Version: Version, Op: OpAdvance, Seq: uint64(i)})
		e.Uvarint(uint64(i * 10))
		frame, err := e.Frame()
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	var buf []byte
	for i := 0; i < 5; i++ {
		h, payload, nbuf, err := ReadFrame(&stream, buf)
		buf = nbuf
		if err != nil {
			t.Fatal(err)
		}
		if h.Seq != uint64(i) {
			t.Fatalf("frame %d: seq %d", i, h.Seq)
		}
		d := NewDec(payload)
		if v := d.Uvarint(); v != uint64(i*10) {
			t.Fatalf("frame %d: value %d", i, v)
		}
	}
	if _, _, _, err := ReadFrame(&stream, buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF after last frame, got %v", err)
	}
}
