// Package wire is the advisory service's binary framed protocol: the
// persistent-connection alternative to the JSON API for the
// per-stage-boundary hot path, where HTTP+JSON round-trip cost dwarfs
// policy compute. A connection carries length-prefixed frames with a
// fixed 16-byte header; payloads are compact varint encodings decoded
// zero-copy out of a reused per-connection buffer, and responses are
// built in pooled slabs — no per-request json.Marshal anywhere on the
// hot path.
//
// Frame layout (all integers big-endian):
//
//	u32  length   bytes after this word (header + payload), ≤ MaxFrame
//	u8   version  protocol version (Version)
//	u8   opcode   Op* constant
//	u16  flags    reserved, zero
//	u32  epoch    server session epoch (start time); 0 from clients
//	u64  seq      request sequence, echoed on the matching response
//
// The epoch lets a client holding a persistent connection detect a
// server restart across reconnects: a changed epoch means recorded
// replay state on the server side is gone (or snapshot-restored) and
// idempotent replay is what reconciles. The seq pairs responses with
// requests on a pipelined connection.
//
// This package holds only the framing and primitive codecs; the typed
// payload encodings live next to the API types in package service.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Version is the current protocol version; a server answers a
	// mismatched hello with OpError and closes.
	Version = 1
	// HeaderLen is the fixed header size after the length word.
	HeaderLen = 16
	// MaxFrame caps one frame's length field (header + payload),
	// matched to the HTTP tier's request-body cap so neither transport
	// accepts messages the other would refuse.
	MaxFrame = 1 << 20
)

// Opcodes. Requests are even-numbered ops from the client; each names
// the response op(s) it expects back. Any request may instead be
// answered by OpError.
const (
	// OpHello opens a connection: payload is a varstr session ID (may
	// be empty on direct shard connections). The router reads exactly
	// this first frame to pick the owning shard, then splices bytes.
	OpHello byte = 0x01
	// OpHelloOK acknowledges the hello; empty payload. Its header
	// carries the shard's session epoch.
	OpHelloOK byte = 0x02
	// OpCreate registers a session; payload is the JSON
	// CreateSessionRequest (the cold path keeps the one flexible,
	// nested message in JSON).
	OpCreate byte = 0x10
	// OpCreateOK carries the JSON CreateSessionResponse.
	OpCreateOK byte = 0x11
	// OpSubmitJob payload: varstr session ID, uvarint job.
	OpSubmitJob byte = 0x12
	// OpSubmitJobOK payload: uvarint job, uvarint nextJob, u8 replayed.
	OpSubmitJobOK byte = 0x13
	// OpAdvance payload: varstr session ID, uvarint stage.
	OpAdvance byte = 0x14
	// OpAdvice carries one binary-encoded Advice (see package service).
	OpAdvice byte = 0x15
	// OpDelete payload: varstr session ID.
	OpDelete byte = 0x16
	// OpDeleteOK has an empty payload.
	OpDeleteOK byte = 0x17
	// OpStatus payload: varstr session ID.
	OpStatus byte = 0x18
	// OpStatusOK carries the JSON SessionStatus.
	OpStatusOK byte = 0x19
	// OpBatch submits a whole job schedule in one frame: varstr session
	// ID, uvarint step count, then per step a zigzag-varint stage
	// (negative = job submit) and uvarint job. The server streams one
	// OpAdvice frame per advance, then OpBatchEnd.
	OpBatch byte = 0x1a
	// OpBatchEnd payload: uvarint jobs submitted, uvarint advices sent.
	OpBatchEnd byte = 0x1b
	// OpError payload: uvarint HTTP-equivalent status, varstr message.
	OpError byte = 0x7f
)

// Header is the fixed frame header.
type Header struct {
	Version byte
	Op      byte
	Flags   uint16
	Epoch   uint32
	Seq     uint64
}

// Framing errors.
var (
	// ErrFrameTooLarge means a length word exceeded MaxFrame; the
	// connection is unrecoverable (framing is lost).
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	// ErrFrameTooSmall means a length word didn't cover the header.
	ErrFrameTooSmall = errors.New("wire: frame shorter than header")
	// ErrTruncated means a payload decode ran past the frame end or hit
	// a malformed varint.
	ErrTruncated = errors.New("wire: truncated or malformed payload")
)

// ReadFrame reads one frame from r into buf, growing it as needed, and
// returns the header, the payload as a view into the (possibly grown)
// buffer, and the buffer for reuse on the next call. The payload is
// only valid until the next ReadFrame with the same buffer.
func ReadFrame(r io.Reader, buf []byte) (Header, []byte, []byte, error) {
	if cap(buf) < HeaderLen {
		buf = make([]byte, 4096)
	}
	b := buf[:4]
	if _, err := io.ReadFull(r, b); err != nil {
		return Header{}, nil, buf, err
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxFrame {
		return Header{}, nil, buf, ErrFrameTooLarge
	}
	if n < HeaderLen {
		return Header{}, nil, buf, ErrFrameTooSmall
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	b = buf[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, buf, err
	}
	h := Header{
		Version: b[0],
		Op:      b[1],
		Flags:   binary.BigEndian.Uint16(b[2:4]),
		Epoch:   binary.BigEndian.Uint32(b[4:8]),
		Seq:     binary.BigEndian.Uint64(b[8:16]),
	}
	return h, b[HeaderLen:n], buf, nil
}

// Enc builds one frame in a reusable buffer. Begin writes the length
// placeholder and header; the primitive appenders fill the payload;
// Frame patches the length and returns the encoded bytes, valid until
// the next Begin. An Enc is reused across requests (and pooled by the
// frame server), so the hot path allocates nothing once warm.
type Enc struct {
	b []byte
}

// Begin resets the encoder and writes the header for a new frame.
func (e *Enc) Begin(h Header) {
	e.b = append(e.b[:0],
		0, 0, 0, 0, // length, patched by Frame
		h.Version, h.Op,
		byte(h.Flags>>8), byte(h.Flags),
		byte(h.Epoch>>24), byte(h.Epoch>>16), byte(h.Epoch>>8), byte(h.Epoch),
		byte(h.Seq>>56), byte(h.Seq>>48), byte(h.Seq>>40), byte(h.Seq>>32),
		byte(h.Seq>>24), byte(h.Seq>>16), byte(h.Seq>>8), byte(h.Seq),
	)
}

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.b = append(e.b, v) }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a zigzag-encoded signed varint.
func (e *Enc) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

// Raw appends bytes verbatim (JSON payloads on the cold path).
func (e *Enc) Raw(p []byte) { e.b = append(e.b, p...) }

// Frame patches the length word and returns the whole frame. The slice
// aliases the encoder's buffer: write it out before the next Begin.
func (e *Enc) Frame() ([]byte, error) {
	n := len(e.b) - 4
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(e.b[:4], uint32(n))
	return e.b, nil
}

// Dec is a sticky-error cursor over one frame's payload. Reads past
// the end (or malformed varints) latch the error; callers check Err
// once after pulling every field, keeping decode loops branch-light.
type Dec struct {
	b   []byte
	off int
	bad bool
}

// NewDec starts a decoder over a payload view.
func NewDec(b []byte) Dec { return Dec{b: b} }

// Err reports whether any read ran past the payload.
func (d *Dec) Err() error {
	if d.bad {
		return ErrTruncated
	}
	return nil
}

// Remaining is how many bytes are left undecoded.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// U8 reads one byte.
func (d *Dec) U8() byte {
	if d.bad || d.off >= len(d.b) {
		d.bad = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

// Bytes reads a length-prefixed byte view — zero-copy: the slice
// aliases the frame buffer and is only valid until the next ReadFrame.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.bad || n > uint64(len(d.b)-d.off) {
		d.bad = true
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

// Str reads a length-prefixed string (copies; use Bytes plus interning
// where the copy matters).
func (d *Dec) Str() string { return string(d.Bytes()) }

// Rest returns the undecoded tail (JSON payloads on the cold path).
func (d *Dec) Rest() []byte {
	v := d.b[d.off:]
	d.off = len(d.b)
	return v
}
