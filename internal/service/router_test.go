package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// shardGroup boots n advisory shards over one shared snapshot store.
type shardGroup struct {
	servers []*service.Server
	tss     []*httptest.Server
	urls    []string
}

func newShardGroup(t *testing.T, n int, store service.SnapshotStore) *shardGroup {
	t.Helper()
	g := &shardGroup{}
	for i := 0; i < n; i++ {
		srv := service.NewServer(service.ServerConfig{Snapshots: service.SnapshotPolicy{Store: store}})
		ts := httptest.NewServer(srv.Handler())
		g.servers = append(g.servers, srv)
		g.tss = append(g.tss, ts)
		g.urls = append(g.urls, ts.URL)
	}
	t.Cleanup(func() {
		for i := range g.servers {
			g.tss[i].Close()
			g.servers[i].Close()
		}
	})
	return g
}

// kill closes one shard's listener abruptly — the httptest equivalent
// of SIGKILL as seen from the network.
func (g *shardGroup) kill(url string) {
	for i, u := range g.urls {
		if u == url {
			g.tss[i].Close()
			g.servers[i].Close()
		}
	}
}

// TestHeartbeatOverHTTP wires one shard to report on another via the
// real /v1/peers endpoints.
func TestHeartbeatOverHTTP(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{
		Peers: service.PeerConfig{
			Self:     "http://self",
			Peers:    []string{"http://peer"},
			Every:    time.Hour, // outbound heartbeats irrelevant here
			Deadline: 200 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	hb, _ := json.Marshal(service.HeartbeatRequest{From: "http://peer", Seq: 1})
	resp, err := ts.Client().Post(ts.URL+"/v1/peers/heartbeat", "application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	var hr service.HeartbeatResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.From != "http://self" {
		t.Errorf("heartbeat response From = %q", hr.From)
	}
	if _, ok := hr.View["http://peer"]; !ok {
		t.Error("heartbeat response view does not acknowledge the sender")
	}

	status := func() service.PeersStatus {
		resp, err := ts.Client().Get(ts.URL + "/v1/peers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st service.PeersStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := status(); len(st.Peers) != 1 || !st.Peers[0].Alive {
		t.Fatalf("peer should be alive right after heartbeat: %+v", st.Peers)
	}
	time.Sleep(250 * time.Millisecond)
	if st := status(); st.Peers[0].Alive {
		t.Fatalf("peer should be dead past the deadline: %+v", st.Peers)
	}
}

// TestRouterRoutesInjectsAndFailsOver drives a full workload through
// the router tier: session IDs are injected on create, every request
// lands on the rendezvous owner, and when that owner dies mid-run the
// router re-routes to the survivor, which restores the session from
// the shared snapshot store. The advice stream must stay byte-equal to
// the in-process oracle throughout.
func TestRouterRoutesInjectsAndFailsOver(t *testing.T) {
	const name = "SCC"
	store := service.NewMemStore()
	g := newShardGroup(t, 2, store)

	rt := service.NewRouter(service.RouterConfig{Shards: g.urls, ProbeEvery: -1})
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	c := client.New(client.Config{BaseURL: rts.URL, HTTPClient: rts.Client()})
	ctx := context.Background()

	created, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: name, Advisor: testAdvisorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if created.ID == "" {
		t.Fatal("router did not inject a session ID")
	}
	owner := rt.Shards().Owner(created.ID)
	if ownSrv := findShard(g, owner); ownSrv == nil || ownSrv.Registry().Len() != 1 {
		t.Fatalf("session did not land on its rendezvous owner %s", owner)
	}

	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	half := len(steps) / 2
	want := oracle(t, name)
	var got []service.Advice
	drive := func(from, to int) {
		for _, st := range steps[from:to] {
			if st.Stage < 0 {
				if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
					t.Fatal(err)
				}
				continue
			}
			adv, err := c.Advance(ctx, created.ID, st.Stage)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, adv)
		}
	}
	drive(0, half)

	// Kill the owner. The router's next proxy attempt fails at the
	// transport, marks it dead, and re-routes to the survivor.
	g.kill(owner)
	drive(half, len(steps))

	successor := rt.Shards().Owner(created.ID)
	if successor == owner || successor == "" {
		t.Fatalf("router still routes to the dead shard %q", successor)
	}
	if len(got) != len(want) {
		t.Fatalf("drove %d advices, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if gf, wf := got[i].Fingerprint(), want[i].Fingerprint(); gf != wf {
			t.Fatalf("advice %d diverges across router failover:\n  server %s\n  oracle %s", i, gf, wf)
		}
	}
}

// TestRouterHealthz checks the router reports its own status rather
// than proxying /healthz.
func TestRouterHealthz(t *testing.T) {
	rt := service.NewRouter(service.RouterConfig{Shards: []string{"http://unreachable:1"}, ProbeEvery: -1})
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.RouterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || len(st.Shards) != 1 {
		t.Fatalf("router status = %+v", st)
	}
}

func findShard(g *shardGroup, url string) *service.Server {
	for i, u := range g.urls {
		if u == url {
			return g.servers[i]
		}
	}
	return nil
}
