package service_test

import (
	"fmt"
	"testing"

	"mrdspark/internal/service"
)

func testShards() []string {
	return []string{"http://s1:7701", "http://s2:7702", "http://s3:7703"}
}

func keysOwned(m *service.ShardMap, n int) map[string]string {
	owners := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("session-%d", i)
		owners[k] = m.Owner(k)
	}
	return owners
}

// TestShardMapDeterministicAndBalanced: two independently built maps
// agree on every owner (clients and routers route consistently with no
// coordination), and rendezvous hashing spreads keys across all
// shards.
func TestShardMapDeterministicAndBalanced(t *testing.T) {
	a, b := service.NewShardMap(testShards()), service.NewShardMap(testShards())
	perShard := map[string]int{}
	for k, owner := range keysOwned(a, 1000) {
		if got := b.Owner(k); got != owner {
			t.Fatalf("maps disagree on %q: %q vs %q", k, owner, got)
		}
		perShard[owner]++
	}
	for _, s := range testShards() {
		if perShard[s] == 0 {
			t.Errorf("shard %s owns no keys out of 1000", s)
		}
	}
	// Rough balance: no shard should own more than half of the keys.
	for s, n := range perShard {
		if n > 500 {
			t.Errorf("shard %s owns %d/1000 keys — distribution is badly skewed", s, n)
		}
	}
}

// TestShardMapMinimalDisruption: killing one shard must move ONLY the
// keys it owned; every other key keeps its owner. Reviving it must
// restore the exact original assignment.
func TestShardMapMinimalDisruption(t *testing.T) {
	m := service.NewShardMap(testShards())
	before := keysOwned(m, 1000)
	dead := testShards()[1]

	if !m.MarkDead(dead) {
		t.Fatal("MarkDead returned false for a live shard")
	}
	if m.MarkDead(dead) {
		t.Error("MarkDead returned true twice")
	}
	if v := m.Version(); v != 1 {
		t.Errorf("version after MarkDead = %d, want 1", v)
	}
	moved := 0
	for k, owner := range keysOwned(m, 1000) {
		if before[k] == dead {
			moved++
			if owner == dead || owner == "" {
				t.Fatalf("key %q still routed to the dead shard", k)
			}
		} else if owner != before[k] {
			t.Fatalf("key %q moved from %q to %q although its owner survived", k, before[k], owner)
		}
	}
	if moved == 0 {
		t.Fatal("dead shard owned no keys — test is vacuous")
	}

	if !m.MarkAlive(dead) {
		t.Fatal("MarkAlive returned false for a dead shard")
	}
	for k, owner := range keysOwned(m, 1000) {
		if owner != before[k] {
			t.Fatalf("key %q did not return to %q after revival (got %q)", k, before[k], owner)
		}
	}
	if alive := m.Alive(); len(alive) != 3 {
		t.Errorf("Alive after revival = %v", alive)
	}
}

// TestShardMapAllDead: with no live shards Owner returns empty rather
// than inventing a destination.
func TestShardMapAllDead(t *testing.T) {
	m := service.NewShardMap(testShards())
	for _, s := range testShards() {
		m.MarkDead(s)
	}
	if owner := m.Owner("k"); owner != "" {
		t.Fatalf("Owner with all shards dead = %q, want empty", owner)
	}
}
