package service_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// traceflow_test drives the full client → router → shard path with a
// tracer on every tier and checks the spans stitch into one trace with
// the right parent/child nesting — the end-to-end contract behind the
// waterfall report.

func traceAdvisorConfig() service.AdvisorConfig {
	return service.AdvisorConfig{Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: experiments.SpecMRD}
}

// spanIndex merges span exports from several tracers into one lookup.
type spanIndex struct {
	byID map[trace.SpanID]trace.Span
	all  []trace.Span
}

func indexSpans(tracers ...*trace.Tracer) spanIndex {
	idx := spanIndex{byID: map[trace.SpanID]trace.Span{}}
	for _, tr := range tracers {
		for _, sp := range tr.Spans() {
			idx.byID[sp.ID] = sp
			idx.all = append(idx.all, sp)
		}
	}
	return idx
}

// find returns the first span with the given name whose attr contains
// substr.
func (idx spanIndex) find(name, substr string) (trace.Span, bool) {
	for _, sp := range idx.all {
		if sp.Name == name && strings.Contains(sp.Attr, substr) {
			return sp, true
		}
	}
	return trace.Span{}, false
}

func TestTracePropagationEndToEnd(t *testing.T) {
	shardTr := trace.NewTracer(2048)
	routerTr := trace.NewTracer(2048)
	clientTr := trace.NewTracer(2048)

	srv := service.NewServer(service.ServerConfig{Trace: service.TraceConfig{Tracer: shardTr}})
	defer srv.Close()
	shardTS := httptest.NewServer(srv.Handler())
	defer shardTS.Close()

	rt := service.NewRouter(service.RouterConfig{
		Shards: []string{shardTS.URL}, ProbeEvery: -1,
		Trace: service.TraceConfig{Tracer: routerTr},
	})
	defer rt.Close()
	routerTS := httptest.NewServer(rt)
	defer routerTS.Close()

	var mu sync.Mutex
	var hops []client.Hops
	c := client.New(client.Config{
		BaseURL: routerTS.URL,
		Tracer:  clientTr,
		OnHops: func(h client.Hops) {
			mu.Lock()
			hops = append(hops, h)
			mu.Unlock()
		},
	})
	ctx := context.Background()

	const id = "traceflow-1"
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: "SCC", Advisor: traceAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range service.Schedule(spec.Graph) {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, id, st.Job); err != nil {
				t.Fatalf("step %d job %d: %v", i, st.Job, err)
			}
			continue
		}
		if _, err := c.Advance(ctx, id, st.Stage); err != nil {
			t.Fatalf("step %d stage %d: %v", i, st.Stage, err)
		}
	}

	// Every advice response reported a trace ID and a full per-hop
	// breakdown, with each inner hop no larger than the one around it.
	mu.Lock()
	defer mu.Unlock()
	if len(hops) == 0 {
		t.Fatal("OnHops never fired")
	}
	for _, h := range hops {
		if h.TraceID == "" {
			t.Fatalf("call %s came back without a trace ID", h.Path)
		}
		if h.RouterUs < 0 || h.ShardUs < 0 {
			t.Fatalf("call %s missing hop headers: router=%d shard=%d", h.Path, h.RouterUs, h.ShardUs)
		}
		if h.RouterUs < h.ShardUs {
			t.Errorf("call %s: router time %dus < shard time %dus", h.Path, h.RouterUs, h.ShardUs)
		}
		if strings.HasSuffix(h.Path, "/stage") {
			if h.ComputeUs < 0 {
				t.Errorf("advance %s missing the compute hop header", h.Path)
			}
			if h.ShardUs < h.ComputeUs {
				t.Errorf("advance %s: shard time %dus < compute time %dus", h.Path, h.ShardUs, h.ComputeUs)
			}
		}
	}

	// The span chain for an advance nests advisor-compute under
	// shard-handler under the router's attempt under router-proxy under
	// the client's call — all in one trace.
	idx := indexSpans(shardTr, routerTr, clientTr)
	compute, ok := idx.find("advisor-compute", "stage=")
	if !ok {
		t.Fatal("no advisor-compute span carrying a decision fingerprint")
	}
	wantChain := []string{"shard-handler", "proxy-attempt", "router-proxy", "client-call"}
	sp := compute
	for _, wantName := range wantChain {
		parent, ok := idx.byID[sp.Parent]
		if !ok {
			t.Fatalf("span %s (%s) has no recorded parent; wanted %s", sp.Name, sp.ID, wantName)
		}
		if parent.Name != wantName {
			t.Fatalf("parent of %s is %s, want %s", sp.Name, parent.Name, wantName)
		}
		if parent.Trace != compute.Trace {
			t.Fatalf("span %s crossed into trace %s; the chain must share %s", parent.Name, parent.Trace, compute.Trace)
		}
		sp = parent
	}
	if sp.Parent != 0 {
		t.Errorf("client-call should be the trace root, has parent %s", sp.Parent)
	}
}

// TestSnapshotRestoreSpans: a successor shard adopting a session from
// the shared snapshot store records a snapshot-restore span with a
// replay child, both hanging off the request's shard-handler root.
func TestSnapshotRestoreSpans(t *testing.T) {
	store := service.NewMemStore()
	ctx := context.Background()

	src := service.NewServer(service.ServerConfig{Snapshots: service.SnapshotPolicy{Store: store}})
	srcTS := httptest.NewServer(src.Handler())
	c := client.New(client.Config{BaseURL: srcTS.URL})
	const id = "restore-span-1"
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: "SCC", Advisor: traceAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, id, 0); err != nil {
		t.Fatal(err)
	}
	srcTS.Close()
	src.Close()

	tr := trace.NewTracer(256)
	succ := service.NewServer(service.ServerConfig{
		Snapshots: service.SnapshotPolicy{Store: store},
		Trace:     service.TraceConfig{Tracer: tr},
	})
	defer succ.Close()
	succTS := httptest.NewServer(succ.Handler())
	defer succTS.Close()

	c2 := client.New(client.Config{BaseURL: succTS.URL})
	status, err := c2.GetSession(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Restored {
		t.Fatal("successor did not restore the session from the snapshot store")
	}

	idx := indexSpans(tr)
	restore, ok := idx.find("snapshot-restore", "session="+id)
	if !ok {
		t.Fatal("no snapshot-restore span for the adopted session")
	}
	root, ok := idx.byID[restore.Parent]
	if !ok || root.Name != "shard-handler" {
		t.Errorf("snapshot-restore's parent is %q, want the shard-handler root", root.Name)
	}
	replay, ok := idx.find("replay", "ops=")
	if !ok {
		t.Fatal("no replay span inside the restore")
	}
	if replay.Parent != restore.ID {
		t.Errorf("replay's parent is %s, want the snapshot-restore span %s", replay.Parent, restore.ID)
	}
	if replay.Trace != restore.Trace {
		t.Error("replay landed in a different trace than its restore")
	}
}
