package service

import "mrdspark/internal/dag"

// Step is one action in an application's canonical replay: a job
// submission (Stage < 0) or a stage-boundary advance. It is also the
// unit of the batch API (BatchRequest, OpBatch).
type Step struct {
	Job   int `json:"job"`
	Stage int `json:"stage"`
}

// Schedule returns the canonical replay order of an application: each
// job submitted in ID order, followed by the stages that job creates in
// stage-ID order (a valid topological execution order — the order the
// simulator executes them). The load generator drives server sessions
// with this schedule and its in-process oracle replays the same steps,
// so both sides ask the policy the same questions in the same order.
func Schedule(g *dag.Graph) []Step {
	var steps []Step
	for _, j := range g.Jobs {
		steps = append(steps, Step{Job: j.ID, Stage: -1})
		for _, s := range j.NewStages {
			steps = append(steps, Step{Job: j.ID, Stage: s.ID})
		}
	}
	return steps
}

// Replay drives the advisor through the full canonical schedule and
// returns every advice in order — the in-process side of the parity
// check.
func Replay(a *Advisor) ([]Advice, error) {
	var out []Advice
	for _, st := range Schedule(a.Graph()) {
		if st.Stage < 0 {
			if err := a.SubmitJob(st.Job); err != nil {
				return nil, err
			}
			continue
		}
		adv, err := a.Advance(st.Stage)
		if err != nil {
			return nil, err
		}
		out = append(out, adv)
	}
	return out, nil
}
