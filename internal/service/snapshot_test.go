package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// snapshotRoundTrip pushes a snapshot through its JSON wire format —
// the exact bytes a DirStore persists — before restoring from it.
func snapshotRoundTrip(t *testing.T, snap *service.Snapshot) *service.Snapshot {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back service.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return &back
}

// newOriginAdvisor builds an advisor that knows its workload origin,
// so snapshots can be restored without handing the graph back in.
func newOriginAdvisor(t *testing.T, name string) *service.Advisor {
	t.Helper()
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := service.NewAdvisor(spec.Graph, testAdvisorConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.SetOrigin(name, workload.Params{})
	return a
}

// TestSnapshotRestoreAtEveryStageBoundary kills and restores an SCC
// advisor at every stage boundary in turn: run to the boundary,
// snapshot, JSON round trip, restore from the origin workload (nil
// graph), finish the schedule, and demand the full advice stream is
// byte-identical to a run that never snapshotted.
func TestSnapshotRestoreAtEveryStageBoundary(t *testing.T) {
	const name = "SCC"
	baseline, err := service.Replay(newOriginAdvisor(t, name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)

	// Every index just after a stage advance is a boundary; 0 covers
	// the pathological snapshot-before-anything case.
	boundaries := []int{0}
	for i, st := range steps {
		if st.Stage >= 0 {
			boundaries = append(boundaries, i+1)
		}
	}

	for _, cut := range boundaries {
		t.Run(fmt.Sprintf("boundary@%d", cut), func(t *testing.T) {
			adv := newOriginAdvisor(t, name)
			var got []service.Advice
			run := func(a *service.Advisor, from, to int) *service.Advisor {
				for _, st := range steps[from:to] {
					if st.Stage < 0 {
						if err := a.SubmitJob(st.Job); err != nil {
							t.Fatal(err)
						}
						continue
					}
					adv, err := a.Advance(st.Stage)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, adv)
				}
				return a
			}
			run(adv, 0, cut)
			snap := snapshotRoundTrip(t, adv.Snapshot("s"))
			restored, err := service.RestoreAdvisor(snap, nil, nil)
			if err != nil {
				t.Fatalf("restore at step %d: %v", cut, err)
			}
			// The old advisor is dead; the restored one finishes the run.
			run(restored, cut, len(steps))

			if len(got) != len(baseline) {
				t.Fatalf("restored run returned %d advices, baseline %d", len(got), len(baseline))
			}
			for i := range got {
				if g, w := got[i].Fingerprint(), baseline[i].Fingerprint(); g != w {
					t.Fatalf("advice %d diverges after restore at step %d:\n  restored %s\n  baseline %s", i, cut, g, w)
				}
			}
		})
	}
}

// TestSnapshotRestoreWithNodeFailure proves node-failure operations
// survive the snapshot op log: a session that lost a node, was
// snapshotted, and restored behaves exactly like one that lost the
// node and never died.
func TestSnapshotRestoreWithNodeFailure(t *testing.T) {
	const name = "KM"
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	failAt := len(steps) / 2

	runLeg := func(restore bool) []service.Advice {
		adv := newOriginAdvisor(t, name)
		var got []service.Advice
		for i, st := range steps {
			if i == failAt {
				if err := adv.OnNodeFailure(1); err != nil {
					t.Fatal(err)
				}
				if restore {
					snap := snapshotRoundTrip(t, adv.Snapshot("s"))
					if adv, err = service.RestoreAdvisor(snap, nil, nil); err != nil {
						t.Fatalf("restore after node failure: %v", err)
					}
				}
			}
			if st.Stage < 0 {
				if err := adv.SubmitJob(st.Job); err != nil {
					t.Fatal(err)
				}
				continue
			}
			a, err := adv.Advance(st.Stage)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, a)
		}
		return got
	}

	baseline, restored := runLeg(false), runLeg(true)
	if len(baseline) != len(restored) {
		t.Fatalf("legs returned %d vs %d advices", len(baseline), len(restored))
	}
	for i := range baseline {
		if b, r := baseline[i].Fingerprint(), restored[i].Fingerprint(); b != r {
			t.Fatalf("advice %d diverges: baseline %s, restored-after-failure %s", i, b, r)
		}
	}
}

// TestSnapshotTamperFailsRestore checks restore refuses snapshots whose
// verification data no longer matches the op log — silent divergence
// after a failover would be far worse than a loud error.
func TestSnapshotTamperFailsRestore(t *testing.T) {
	adv := newOriginAdvisor(t, "SCC")
	if err := adv.SubmitJob(0); err != nil {
		t.Fatal(err)
	}
	good := adv.Snapshot("s")

	cases := []struct {
		name   string
		tamper func(s *service.Snapshot)
	}{
		{"version", func(s *service.Snapshot) { s.Version = 99 }},
		{"graph-hash", func(s *service.Snapshot) { s.GraphHash = "0000000000000000" }},
		{"residency", func(s *service.Snapshot) { s.Residency = "ffffffffffffffff" }},
		{"cursor", func(s *service.Snapshot) { s.NextJob++ }},
		{"dropped-op", func(s *service.Snapshot) { s.Ops = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := snapshotRoundTrip(t, good)
			tc.tamper(snap)
			if _, err := service.RestoreAdvisor(snap, nil, nil); err == nil {
				t.Fatalf("restore accepted a snapshot with tampered %s", tc.name)
			}
		})
	}
}

// TestDirStore exercises the on-disk store: round trip, list, delete,
// and rejection of IDs that could escape the directory.
func TestDirStore(t *testing.T) {
	ds, err := service.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	adv := newOriginAdvisor(t, "SCC")
	if err := ds.Save(adv.Snapshot("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(adv.Snapshot("beta")); err != nil {
		t.Fatal(err)
	}
	if ids, _ := ds.List(); len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Fatalf("List = %v, want [alpha beta]", ids)
	}
	back, err := ds.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if back.GraphHash != service.GraphHash(adv.Graph()) {
		t.Fatal("round-tripped snapshot lost its graph hash")
	}
	if _, err := ds.Load("missing"); err != service.ErrNoSnapshot {
		t.Fatalf("Load(missing) = %v, want ErrNoSnapshot", err)
	}
	if err := ds.Save(adv.Snapshot("../escape")); err == nil {
		t.Fatal("Save accepted a path-traversal session ID")
	}
	if _, err := ds.Load("../../etc/passwd"); err != service.ErrNoSnapshot {
		t.Fatalf("Load(traversal) = %v, want ErrNoSnapshot", err)
	}
	if err := ds.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := ds.List(); len(ids) != 1 || ids[0] != "beta" {
		t.Fatalf("List after delete = %v, want [beta]", ids)
	}
}

// TestRestoredSessionLockDiscipline proves a session adopted from a
// snapshot sits behind the same per-session mutual exclusion as a
// fresh one: concurrent WithAdvisor calls never overlap, and the
// session carries its restored marker and replayed advance count.
func TestRestoredSessionLockDiscipline(t *testing.T) {
	adv := newOriginAdvisor(t, "SCC")
	if err := adv.SubmitJob(0); err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Advance(0); err != nil {
		t.Fatal(err)
	}
	snap := snapshotRoundTrip(t, adv.Snapshot("s"))
	restored, err := service.RestoreAdvisor(snap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := service.NewRegistry(service.RegistryConfig{})
	sess, err := reg.CreateWithID("s", "SCC", restored, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Restored {
		t.Error("restored session not marked Restored")
	}
	if got := sess.Advances(); got != 1 {
		t.Errorf("restored session Advances = %d, want 1 (replayed history)", got)
	}

	var busy, overlaps atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = sess.WithAdvisor(func(a *service.Advisor) error {
				if !busy.CompareAndSwap(0, 1) {
					overlaps.Add(1)
				}
				time.Sleep(time.Millisecond)
				busy.Store(0)
				return nil
			})
		}()
	}
	wg.Wait()
	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d WithAdvisor calls overlapped on a restored session", n)
	}
}

// TestServerRestartRestoresSessions is the single-shard crash-restart
// path: drive half a session against one server, drop the server, boot
// a second one over the same snapshot store, and finish the schedule
// there. Every post-restart advice must match the uninterrupted oracle,
// and the restored session must admit it was restored.
func TestServerRestartRestoresSessions(t *testing.T) {
	const name = "SCC"
	store := service.NewMemStore()
	newShard := func() (*service.Server, *httptest.Server) {
		srv := service.NewServer(service.ServerConfig{Snapshots: service.SnapshotPolicy{Store: store}})
		ts := httptest.NewServer(srv.Handler())
		return srv, ts
	}

	srv1, ts1 := newShard()
	c1 := client.New(client.Config{BaseURL: ts1.URL, HTTPClient: ts1.Client()})
	ctx := context.Background()

	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	half := len(steps) / 2

	created, err := c1.CreateSession(ctx, service.CreateSessionRequest{
		ID: "restart-1", Workload: name, Advisor: testAdvisorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.Existing {
		t.Error("fresh create reported Existing")
	}

	want := oracle(t, name)
	var got []service.Advice
	drive := func(c *client.Client, from, to int) {
		for _, st := range steps[from:to] {
			if st.Stage < 0 {
				if _, err := c.SubmitJob(ctx, "restart-1", st.Job); err != nil {
					t.Fatal(err)
				}
				continue
			}
			adv, err := c.Advance(ctx, "restart-1", st.Stage)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, adv)
		}
	}
	drive(c1, 0, half)

	// The shard dies: no drain, no goodbye. The default every-op
	// snapshot cadence means the store already holds the latest state.
	ts1.Close()
	srv1.Close()

	srv2, ts2 := newShard()
	defer func() { ts2.Close(); srv2.Close() }()
	c2 := client.New(client.Config{BaseURL: ts2.URL, HTTPClient: ts2.Client()})

	st, err := c2.GetSession(ctx, "restart-1")
	if err != nil {
		t.Fatalf("GetSession on successor: %v", err)
	}
	if !st.Restored {
		t.Error("successor session not marked restored")
	}
	drive(c2, half, len(steps))

	if len(got) != len(want) {
		t.Fatalf("drove %d advices, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if g, w := got[i].Fingerprint(), want[i].Fingerprint(); g != w {
			t.Fatalf("advice %d diverges across restart:\n  server %s\n  oracle %s", i, g, w)
		}
	}

	// Idempotent re-create on the successor returns the restored
	// session rather than conflicting.
	again, err := c2.CreateSession(ctx, service.CreateSessionRequest{
		ID: "restart-1", Workload: name, Advisor: testAdvisorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existing {
		t.Error("re-create of a live session did not report Existing")
	}
}

// TestDrainSnapshotsAndMetrics checks the graceful-drain path persists
// every live session and surfaces the count on /metrics.
func TestDrainSnapshotsAndMetrics(t *testing.T) {
	store := service.NewMemStore()
	srv := service.NewServer(service.ServerConfig{
		// A huge cadence means nothing snapshots mid-run: only the drain
		// can have written the snapshots this test finds.
		Snapshots: service.SnapshotPolicy{Store: store, EveryOps: 1 << 30},
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(client.Config{BaseURL: ts.URL, HTTPClient: ts.Client()})
	ctx := context.Background()

	for i := 1; i <= 2; i++ {
		id := fmt.Sprintf("drain-%d", i)
		if _, err := c.CreateSession(ctx, service.CreateSessionRequest{ID: id, Workload: "SCC", Advisor: testAdvisorConfig()}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.SubmitJob(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if ids, _ := store.List(); len(ids) != 0 {
		t.Fatalf("store already holds %v before drain", ids)
	}
	if n := srv.DrainSnapshots(); n != 2 {
		t.Fatalf("DrainSnapshots = %d, want 2", n)
	}
	if ids, _ := store.List(); len(ids) != 2 {
		t.Fatalf("store holds %v after drain, want 2 snapshots", ids)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "mrdserver_drain_snapshots_written 2") {
		t.Errorf("metrics missing drain gauge:\n%s", body)
	}
	if !strings.Contains(body, "mrdserver_snapshots_written_total 2") {
		t.Errorf("metrics missing snapshot counter:\n%s", body)
	}
}
