package service

import (
	"testing"
	"time"
)

// hookClock drives a peerTable off the registry tests' fakeClock.
func hookClock(t *peerTable, c *fakeClock) { t.now = c.now }

// TestPeerTableLiveness walks a peer through the alive → silent → dead
// → revived cycle under a deterministic clock.
func TestPeerTableLiveness(t *testing.T) {
	clk := newFakeClock()
	tbl := newPeerTable(PeerConfig{
		Self:     "http://self",
		Peers:    []string{"http://peer"},
		Deadline: time.Second,
	})
	hookClock(tbl, clk)

	st := tbl.status()
	if len(st.Peers) != 1 || st.Peers[0].Alive || st.Peers[0].LastSeenMs != -1 {
		t.Fatalf("never-heard peer should be dead with lastSeen -1: %+v", st.Peers)
	}

	tbl.observe("http://peer")
	if st := tbl.status(); !st.Peers[0].Alive || st.Peers[0].LastSeenMs != 0 {
		t.Fatalf("just-observed peer should be alive: %+v", st.Peers[0])
	}

	clk.advance(999 * time.Millisecond)
	if st := tbl.status(); !st.Peers[0].Alive {
		t.Fatal("peer within deadline reported dead")
	}
	clk.advance(2 * time.Millisecond)
	if st := tbl.status(); st.Peers[0].Alive {
		t.Fatal("peer past deadline reported alive")
	}

	tbl.observe("http://peer")
	if st := tbl.status(); !st.Peers[0].Alive {
		t.Fatal("re-observed peer should be alive again")
	}
}

// TestPeerTableGossip checks merged views vouch for peers transitively
// and that stale gossip never rolls fresher direct evidence back.
func TestPeerTableGossip(t *testing.T) {
	clk := newFakeClock()
	tbl := newPeerTable(PeerConfig{
		Self:     "http://self",
		Peers:    []string{"http://a", "http://b"},
		Deadline: time.Second,
	})
	hookClock(tbl, clk)

	// a's heartbeat vouches for b: we have never heard from b directly,
	// but a has, recently.
	tbl.observe("http://a")
	tbl.merge(map[string]int64{"http://b": clk.now().Add(-100 * time.Millisecond).UnixMicro()})
	st := tbl.status()
	for _, p := range st.Peers {
		if !p.Alive {
			t.Fatalf("peer %s should be alive after gossip: %+v", p.Addr, p)
		}
	}

	// Stale gossip about a (older than our direct observation) must not
	// regress a's freshness.
	tbl.merge(map[string]int64{"http://a": clk.now().Add(-time.Hour).UnixMicro()})
	clk.advance(500 * time.Millisecond)
	if st := tbl.status(); !st.Peers[0].Alive {
		t.Fatal("stale gossip rolled back fresher direct evidence")
	}

	// Our own view must vouch for ourselves and everyone we know.
	v := tbl.view()
	if _, ok := v["http://self"]; !ok {
		t.Fatal("view does not vouch for self")
	}
	if _, ok := v["http://a"]; !ok {
		t.Fatal("view dropped a known-alive peer")
	}

	// A self-entry in incoming gossip is ignored: peers cannot vouch us
	// alive to ourselves.
	tbl.merge(map[string]int64{"http://self": 0})
}
