// Package service is the online cache-advisory subsystem: the paper's
// MRDmanager lifted out of the batch simulator and exposed as a
// long-running, multi-tenant server (cmd/mrdserver) that external
// applications consult over HTTP at every stage boundary, exactly the
// controller shape LRC and LERC deploy beside Spark's driver.
//
// The heart of the package is the Advisor: a deterministic advisory
// session that owns one application's DAG, a pluggable cache policy
// (experiments.PolicySpec — MRD and every baseline), and a model of the
// cluster's cache state built from the same cluster.MemoryStore /
// cluster.DiskStore components the simulator runs on. Feeding the same
// jobs and stage boundaries to two Advisors — one behind the server,
// one in-process — must produce byte-for-byte identical decision logs;
// cmd/mrdload uses exactly that as its parity oracle.
package service

import (
	"fmt"
	"sort"
	"strings"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/workload"
)

// AdvisorConfig shapes the advisory session's cluster model and
// policy. The zero value is normalized by Normalize.
type AdvisorConfig struct {
	// Nodes is the modeled worker count; 0 means DefaultNodes.
	Nodes int `json:"nodes,omitempty"`
	// CacheBytes is the per-node memory-store capacity; 0 means
	// DefaultCacheBytes.
	CacheBytes int64 `json:"cacheBytes,omitempty"`
	// Policy selects the cache policy; the zero value means full MRD in
	// recurring mode.
	Policy experiments.PolicySpec `json:"policy"`
}

// Advisory-model defaults.
const (
	DefaultNodes      = 8
	DefaultCacheBytes = 256 * cluster.MB
)

// Normalize fills zero fields with defaults and validates the rest.
func (c AdvisorConfig) Normalize() (AdvisorConfig, error) {
	if c.Nodes == 0 {
		c.Nodes = DefaultNodes
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.Policy.Kind == "" {
		c.Policy.Kind = "MRD"
	}
	if c.Nodes < 0 || c.CacheBytes < 0 {
		return c, fmt.Errorf("service: negative cluster shape (nodes=%d, cacheBytes=%d)", c.Nodes, c.CacheBytes)
	}
	return c, nil
}

// Decision is one cache-management action the advisor issued during a
// stage advance, in issue order. Kind is one of:
//
//	"purge"          — manager all-out purge of a dead block
//	"evict"          — demand eviction making room for an insert
//	"prefetch"       — prefetch order that landed in free memory
//	"prefetch-evict" — eviction performed by a forced prefetch arrival
//	"prefetch-drop"  — prefetch order refused by the arbiter/victim walk
type Decision struct {
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
	Block string `json:"block"`
}

// Counters summarize the modeled stage execution that followed the
// manager's decisions.
type Counters struct {
	Hits       int `json:"hits"`
	Misses     int `json:"misses"`
	Promotes   int `json:"promotes"`
	Recomputes int `json:"recomputes"`
	Inserts    int `json:"inserts"`
	Evictions  int `json:"evictions"`
	Purged     int `json:"purged"`
	Prefetches int `json:"prefetches"`
}

// Advice is the full response to one stage-boundary advance: the
// decisions in issue order plus the resulting model counters.
type Advice struct {
	Stage     int        `json:"stage"`
	Job       int        `json:"job"`
	Decisions []Decision `json:"decisions"`
	Counters  Counters   `json:"counters"`
	// Replayed marks advice served from the session's decision log
	// rather than freshly computed — the response to a retried advance
	// after a failover handover. Replayed advice is byte-identical to
	// the original (it is the original) and is excluded from the
	// fingerprint, which covers only the decision content.
	Replayed bool `json:"replayed,omitempty"`
}

// Fingerprint renders the advice in a canonical single-string form;
// equal fingerprints mean byte-for-byte identical decisions. This is
// the unit the load generator's parity oracle compares.
func (a Advice) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage=%d job=%d", a.Stage, a.Job)
	for _, d := range a.Decisions {
		fmt.Fprintf(&b, " %s:%d:%s", d.Kind, d.Node, d.Block)
	}
	fmt.Fprintf(&b, " | hits=%d misses=%d promotes=%d recomputes=%d inserts=%d evictions=%d purged=%d prefetches=%d",
		a.Counters.Hits, a.Counters.Misses, a.Counters.Promotes, a.Counters.Recomputes,
		a.Counters.Inserts, a.Counters.Evictions, a.Counters.Purged, a.Counters.Prefetches)
	return b.String()
}

// advNode is one modeled worker: the same memory/disk store pair the
// simulator schedules onto, minus the device queues (the advisor models
// state, not time).
type advNode struct {
	mem  *cluster.MemoryStore
	disk *cluster.DiskStore
	pol  policy.Policy
	// prefetched tracks blocks loaded by prefetch and not yet hit, for
	// the manager's reportCacheStatus feedback loop.
	prefetched map[block.ID]bool
}

// Advisor is one application's advisory session. It is not safe for
// concurrent use; the server serializes calls per session.
type Advisor struct {
	graph   *dag.Graph
	cfg     AdvisorConfig
	factory policy.Factory
	nodes   []*advNode

	// Optional factory capabilities, resolved once.
	stageObs policy.StageObserver
	jobObs   policy.JobObserver
	failObs  policy.NodeFailureObserver

	stages  map[int]*dag.Stage // executed stages by ID
	created map[int]bool       // cached RDDs materialized so far

	nextJob   int // next job index expected by SubmitJob
	lastStage int // last advanced stage ID (-1 before the first)

	// origin identifies the workload the graph was built from, when
	// known; snapshots of origin-bearing advisors can be restored on a
	// different process by rebuilding the graph from (Workload, Params).
	origin *Origin
	// ops is the session's operation log: every successfully applied
	// job submission, stage advance and node failure, in arrival order.
	// Replaying it against a fresh advisor over the same graph rebuilds
	// this advisor's exact state — the restore mechanism.
	ops []Op
	// history is the session's decision log: every advice ever issued,
	// in advance order. Deterministic replay regenerates it, so it is
	// never serialized; it makes post-failover retries idempotent (a
	// re-advanced stage is served its recorded advice).
	history []Advice

	// Current-advance state, plus the session-lifetime prefetch ledger:
	// every issued prefetch is eventually used (hit while resident),
	// wasted (evicted, purged or lost before use) or still pending
	// (resident, unused). issued == used + wasted + pending is the
	// conservation law the correctness harness audits.
	cur      *Advice
	pfIssued int64
	pfUsed   int64
	pfWaste  int64

	bus *obs.Bus // nil-safe; shared with the server's aggregator
}

// NewAdvisor builds a session over the application DAG. The config's
// policy is instantiated against the graph exactly as the simulator
// would instantiate it.
func NewAdvisor(g *dag.Graph, cfg AdvisorConfig) (*Advisor, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	factory, err := buildFactory(cfg.Policy, g)
	if err != nil {
		return nil, err
	}
	a := &Advisor{
		graph:     g,
		cfg:       cfg,
		factory:   factory,
		stages:    map[int]*dag.Stage{},
		created:   map[int]bool{},
		lastStage: -1,
	}
	for _, s := range g.ExecutedStages() {
		a.stages[s.ID] = s
	}
	a.stageObs, _ = factory.(policy.StageObserver)
	a.jobObs, _ = factory.(policy.JobObserver)
	a.failObs, _ = factory.(policy.NodeFailureObserver)
	if ca, ok := factory.(policy.ClusterAware); ok {
		ca.Attach(advOps{a})
	}
	for i := 0; i < cfg.Nodes; i++ {
		pol := factory.NewNodePolicy(i)
		a.nodes = append(a.nodes, &advNode{
			mem:        cluster.NewMemoryStore(cfg.CacheBytes, pol),
			disk:       cluster.NewDiskStore(),
			pol:        pol,
			prefetched: map[block.ID]bool{},
		})
	}
	return a, nil
}

// buildFactory instantiates the policy spec against the DAG, mapping
// the panic-on-unknown contract of experiments.PolicySpec.Factory into
// an error the server can return to the client.
func buildFactory(spec experiments.PolicySpec, g *dag.Graph) (f policy.Factory, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: %v", r)
		}
	}()
	return spec.Factory(&workload.Spec{Graph: g}), nil
}

// AttachBus connects the advisor (and, when the policy supports it, the
// policy itself) to an observability bus: every modeled cache event and
// manager decision is emitted for the server's live /metrics endpoint.
func (a *Advisor) AttachBus(b *obs.Bus) {
	a.bus = b
	if at, ok := a.factory.(obs.Attacher); ok {
		at.AttachBus(b)
	}
}

// Config returns the normalized session configuration.
func (a *Advisor) Config() AdvisorConfig { return a.cfg }

// SetOrigin records the workload identity the session's graph was
// built from, enabling cross-process snapshot restore (the graph is
// rebuilt by workload.Build, which is a pure function of the pair).
func (a *Advisor) SetOrigin(name string, p workload.Params) {
	a.origin = &Origin{Workload: name, Params: p}
}

// Origin returns the recorded workload identity, or nil when the
// advisor was built over a caller-supplied graph.
func (a *Advisor) Origin() *Origin { return a.origin }

// AdviceFor returns the recorded advice of an already-advanced stage.
// It lets the server serve idempotent retries: a client that re-issues
// an advance after a failover handover gets the byte-identical advice
// the original advance produced.
func (a *Advisor) AdviceFor(stageID int) (Advice, bool) {
	// history is ordered by strictly increasing stage ID.
	i := sort.Search(len(a.history), func(i int) bool { return a.history[i].Stage >= stageID })
	if i < len(a.history) && a.history[i].Stage == stageID {
		return a.history[i], true
	}
	return Advice{}, false
}

// History returns the session's full decision log in advance order.
func (a *Advisor) History() []Advice { return a.history }

// Ops returns the session's operation log (test and snapshot helper).
func (a *Advisor) Ops() []Op { return a.ops }

// PolicyName returns the instantiated policy's display name.
func (a *Advisor) PolicyName() string { return a.factory.Name() }

// Graph returns the session's application DAG.
func (a *Advisor) Graph() *dag.Graph { return a.graph }

// NextJob returns the next job index SubmitJob expects.
func (a *Advisor) NextJob() int { return a.nextJob }

// LastStage returns the last advanced stage ID (-1 before the first).
func (a *Advisor) LastStage() int { return a.lastStage }

// SubmitJob feeds the next job's DAG to the policy (the DAGScheduler →
// AppProfiler hand-off; Profile.AddJob runs underneath for DAG-aware
// policies). Jobs must be submitted in ID order.
func (a *Advisor) SubmitJob(jobID int) error {
	if jobID != a.nextJob {
		return fmt.Errorf("service: job %d out of order (next is %d)", jobID, a.nextJob)
	}
	if jobID < 0 || jobID >= len(a.graph.Jobs) {
		return fmt.Errorf("service: job %d does not exist (application has %d jobs)", jobID, len(a.graph.Jobs))
	}
	if a.jobObs != nil {
		a.jobObs.OnJobSubmit(a.graph.Jobs[jobID])
	}
	a.nextJob++
	a.ops = append(a.ops, Op{Kind: OpSubmitJob, Arg: jobID})
	return nil
}

// OnNodeFailure reports a worker loss to the policy (the §4.4 table
// re-issue path) and wipes the node's modeled stores.
func (a *Advisor) OnNodeFailure(node int) error {
	if node < 0 || node >= len(a.nodes) {
		return fmt.Errorf("service: node %d out of range [0,%d)", node, len(a.nodes))
	}
	n := a.nodes[node]
	n.mem.Clear()
	n.disk.Clear()
	// The wipe destroys the node's pending prefetches; settle them as
	// wasted so the prefetch ledger stays conserved across failures
	// (mirroring the simulator's crash-path ledger sweep).
	a.pfWaste += int64(len(n.prefetched))
	n.prefetched = map[block.ID]bool{}
	if a.failObs != nil {
		a.failObs.OnNodeFailure(node)
	}
	a.bus.Emit(obs.Ev(obs.KindNodeFail, node))
	a.ops = append(a.ops, Op{Kind: OpNodeFail, Arg: node})
	return nil
}

// Advance moves the session to the given stage boundary: the policy
// observes the stage start (the MRD manager purges and prefetches
// through the advisor's ClusterOps), then the stage's reads and cached
// outputs are applied to the model cluster. Stages must arrive in
// strictly increasing ID order and belong to an already-submitted job.
func (a *Advisor) Advance(stageID int) (Advice, error) {
	s, ok := a.stages[stageID]
	if !ok {
		return Advice{}, fmt.Errorf("service: stage %d is not an executed stage of this application", stageID)
	}
	if stageID <= a.lastStage {
		return Advice{}, fmt.Errorf("service: stage %d does not advance (last was %d)", stageID, a.lastStage)
	}
	jobID := s.FirstJob.ID
	if jobID >= a.nextJob {
		return Advice{}, fmt.Errorf("service: stage %d belongs to job %d, which has not been submitted", stageID, jobID)
	}
	a.cur = &Advice{Stage: stageID, Job: jobID, Decisions: []Decision{}}
	a.bus.SetStage(stageID, jobID)

	// Phase 1: the policy's stage-boundary work. For MRD this is Table
	// 2's newReferenceDistance followed by the purge and prefetch phases
	// of Algorithm 1, arriving here as Evict/Prefetch calls on advOps.
	if a.stageObs != nil {
		a.stageObs.OnStageStart(stageID, jobID)
	}

	// Phase 2: model the stage's execution — demand reads against the
	// caches, then materialization of the stage's cached outputs.
	a.applyStage(s)

	adv := *a.cur
	a.cur = nil
	a.lastStage = stageID
	a.ops = append(a.ops, Op{Kind: OpAdvance, Arg: stageID})
	a.history = append(a.history, adv)
	return adv, nil
}

// applyStage folds one executed stage into the model cluster state:
// its cached-frontier reads (hit, promote from disk, or recompute) and
// the cached RDDs it materializes, block by block in deterministic
// (RDD, partition) order.
//
// Reads run in two phases, matching the simulator's plan-time read
// resolution: every read of the stage is first resolved against the
// cache state at stage start, and only then are the miss re-inserts
// applied. A one-phase loop (insert on miss as reads are walked) let an
// early miss's eviction displace a block the stage had not read yet —
// a same-stage read the simulator counts as a hit — which is exactly
// the divergence the differential harness pinned down.
func (a *Advisor) applyStage(s *dag.Stage) {
	reads, creates := dag.StageFrontier(s, func(id int) bool { return a.created[id] })
	var missed []block.Info
	for _, r := range reads {
		for p := 0; p < r.NumPartitions; p++ {
			if !a.resolveRead(r.BlockInfo(p)) {
				missed = append(missed, r.BlockInfo(p))
			}
		}
	}
	for _, info := range missed {
		a.insertBlock(a.home(info.ID), info, "evict")
	}
	for _, r := range creates {
		for p := 0; p < r.NumPartitions; p++ {
			a.insertBlock(a.home(r.Block(p)), r.BlockInfo(p), "evict")
		}
		a.created[r.ID] = true
	}
}

// resolveRead models one demand read of a cached block on its home
// node against the current cache state, without mutating the store: it
// reports whether the read hit, and on a miss classifies the recovery
// (disk promote or lineage recompute). The caller re-inserts missed
// blocks after the whole read phase.
func (a *Advisor) resolveRead(info block.Info) bool {
	node := a.home(info.ID)
	n := a.nodes[node]
	if n.mem.Get(info.ID) {
		a.cur.Counters.Hits++
		if n.prefetched[info.ID] {
			a.pfUsed++
			delete(n.prefetched, info.ID)
		}
		a.bus.Emit(obs.BlockEv(obs.KindHit, node, info.ID, info.Size))
		return true
	}
	a.cur.Counters.Misses++
	a.bus.Emit(obs.BlockEv(obs.KindMiss, node, info.ID, info.Size))
	if n.disk.Has(info.ID) {
		a.cur.Counters.Promotes++
		a.bus.Emit(obs.BlockEv(obs.KindPromote, node, info.ID, info.Size))
	} else {
		a.cur.Counters.Recomputes++
		a.bus.Emit(obs.BlockEv(obs.KindRecompute, node, info.ID, info.Size))
	}
	return false
}

// insertBlock puts the block into the node's memory store, recording
// the demand evictions the insert forces. evictKind labels those
// evictions in the decision log.
func (a *Advisor) insertBlock(node int, info block.Info, evictKind string) {
	n := a.nodes[node]
	if n.mem.Contains(info.ID) {
		return
	}
	evicted, ok := n.mem.Put(info)
	for _, v := range evicted {
		a.settleEviction(node, v, evictKind)
	}
	if !ok {
		return // oversized or fully protected: the read stays uncached
	}
	a.cur.Counters.Inserts++
	a.bus.Emit(obs.BlockEv(obs.KindInsert, node, info.ID, info.Size))
}

// settleEviction records one eviction's side effects: the decision log
// entry, the MEMORY_AND_DISK spill, and prefetch-waste accounting.
func (a *Advisor) settleEviction(node int, v block.Info, kind string) {
	n := a.nodes[node]
	if v.Level == block.MemoryAndDisk {
		n.disk.Put(v.ID, v.Size)
	}
	if n.prefetched[v.ID] {
		a.pfWaste++
		delete(n.prefetched, v.ID)
	}
	a.record(Decision{Kind: kind, Node: node, Block: v.ID.String()})
	a.cur.Counters.Evictions++
	a.bus.Emit(obs.BlockEv(obs.KindEvict, node, v.ID, v.Size))
}

// record appends one decision to the current advance's log.
func (a *Advisor) record(d Decision) { a.cur.Decisions = append(a.cur.Decisions, d) }

// home returns the block's locality-preferred node — the cluster's one
// placement rule, so advisory decisions and simulated runs speak about
// the same cluster layout.
func (a *Advisor) home(id block.ID) int { return cluster.HomeNode(id, len(a.nodes)) }

// ResidentBlocks returns the node's resident block IDs in deterministic
// order (test and debug helper).
func (a *Advisor) ResidentBlocks(node int) []block.ID {
	ids := a.nodes[node].mem.Blocks()
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// advOps is the policy.ClusterOps control surface over the advisor's
// model cluster. Its Evict/Prefetch mutations are where the manager's
// orders become decision-log entries.
type advOps struct{ a *Advisor }

var _ policy.ClusterOps = advOps{}

func (o advOps) NumNodes() int             { return len(o.a.nodes) }
func (o advOps) HomeNode(id block.ID) int  { return o.a.home(id) }
func (o advOps) FreeBytes(node int) int64  { return o.a.nodes[node].mem.Free() }
func (o advOps) CapacityBytes(n int) int64 { return o.a.nodes[n].mem.Capacity() }
func (o advOps) Resident(node int, id block.ID) bool {
	return o.a.nodes[node].mem.Contains(id)
}
func (o advOps) OnDisk(node int, id block.ID) bool {
	return o.a.nodes[node].disk.Has(id)
}

// Evict implements the manager's all-out purge order.
func (o advOps) Evict(node int, id block.ID) bool {
	a := o.a
	n := a.nodes[node]
	if !n.mem.Contains(id) {
		return false
	}
	info := blockInfo(a.graph, id)
	if !n.mem.Remove(id) {
		return false
	}
	if info.Level == block.MemoryAndDisk {
		n.disk.Put(id, info.Size)
	}
	if n.prefetched[id] {
		a.pfWaste++
		delete(n.prefetched, id)
	}
	if a.cur != nil {
		a.record(Decision{Kind: "purge", Node: node, Block: id.String()})
		a.cur.Counters.Purged++
	}
	a.bus.Emit(obs.BlockEv(obs.KindPurge, node, id, info.Size))
	return true
}

// Prefetch implements the manager's prefetch order: the block loads
// from local disk, evicting through the node's policy (arbitrated when
// the policy implements PrefetchArbiter) when it must.
func (o advOps) Prefetch(node int, info block.Info) {
	a := o.a
	n := a.nodes[node]
	if n.mem.Contains(info.ID) || !n.disk.Has(info.ID) {
		return
	}
	var evicted []block.Info
	var ok bool
	if arb, isArb := n.pol.(policy.PrefetchArbiter); isArb {
		evicted, ok = n.mem.PutGuarded(info, func(v block.ID) bool {
			return arb.AllowPrefetchEviction(info, v)
		})
	} else {
		evicted, ok = n.mem.Put(info)
	}
	for _, v := range evicted {
		a.settleEviction(node, v, "prefetch-evict")
	}
	if !ok {
		if a.cur != nil {
			a.record(Decision{Kind: "prefetch-drop", Node: node, Block: info.ID.String()})
		}
		return
	}
	n.prefetched[info.ID] = true
	a.pfIssued++
	if a.cur != nil {
		a.record(Decision{Kind: "prefetch", Node: node, Block: info.ID.String()})
		a.cur.Counters.Prefetches++
	}
	a.bus.Emit(obs.BlockEv(obs.KindPrefetchIssue, node, info.ID, info.Size))
	a.bus.Emit(obs.BlockEv(obs.KindPrefetchArrive, node, info.ID, info.Size))
}

// PrefetchOutcomes reports the cluster-wide prefetch feedback the
// dynamic-threshold controller consumes.
func (o advOps) PrefetchOutcomes() (used, wasted int64) {
	return o.a.pfUsed, o.a.pfWaste
}

// PrefetchLedger returns the session's prefetch conservation counters:
// orders issued, prefetched blocks hit while resident (used), blocks
// evicted/purged/lost before use (wasted), and still-resident unused
// prefetched blocks (pending). used + wasted + pending == issued
// always holds; the correctness harness audits it after every replay.
func (a *Advisor) PrefetchLedger() (issued, used, wasted, pending int64) {
	for _, n := range a.nodes {
		pending += int64(len(n.prefetched))
	}
	return a.pfIssued, a.pfUsed, a.pfWaste, pending
}

// blockInfo reconstructs a block's cache metadata from the DAG.
func blockInfo(g *dag.Graph, id block.ID) block.Info {
	if id.RDD < 0 || id.RDD >= len(g.RDDs) {
		return block.Info{ID: id}
	}
	return g.RDDs[id.RDD].BlockInfo(id.Partition)
}
