package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"mrdspark/internal/service"
	"mrdspark/internal/service/wire"
)

// The client side of the binary frame protocol. The typed API is
// identical to the JSON path — Config.Binary just reroutes the session
// operations onto persistent frame connections, one per session (the
// router splices a connection to the shard owning the session named in
// its hello, so connection-per-session is what keeps routing affinity).
// Retries reuse the same backoff schedule as the HTTP path: transport
// and protocol errors poison the connection (it is closed and redialed
// on the next attempt), API errors keep it.

// frameConn is one persistent frame-protocol connection with its
// reusable encode/decode state. Calls on a connection are serialized
// under mu; a caller wanting concurrency uses more sessions.
type frameConn struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	enc   wire.Enc
	rbuf  []byte
	seq   uint64
	epoch uint32
}

// send writes one request frame and flushes it, returning the sequence
// number its response must echo.
func (fc *frameConn) send(op byte, build func(*wire.Enc)) (uint64, error) {
	fc.seq++
	fc.enc.Begin(wire.Header{Version: wire.Version, Op: op, Seq: fc.seq})
	if build != nil {
		build(&fc.enc)
	}
	frame, err := fc.enc.Frame()
	if err != nil {
		return 0, err
	}
	if _, err := fc.bw.Write(frame); err != nil {
		return 0, err
	}
	return fc.seq, fc.bw.Flush()
}

// recv reads one response frame, which must echo seq. The payload view
// aliases the connection's reused buffer — decode before the next recv.
func (fc *frameConn) recv(seq uint64) (wire.Header, []byte, error) {
	h, payload, nbuf, err := wire.ReadFrame(fc.br, fc.rbuf)
	fc.rbuf = nbuf
	if err != nil {
		return h, nil, err
	}
	if h.Seq != seq {
		return h, nil, fmt.Errorf("client: wire response seq %d, want %d", h.Seq, seq)
	}
	return h, payload, nil
}

// wireError decodes an OpError payload into the same *Error the JSON
// path returns, so Sharded failover and caller error handling are
// transport-blind.
func wireError(payload []byte) error {
	d := wire.NewDec(payload)
	status := int(d.Uvarint())
	msg := d.Str()
	if err := d.Err(); err != nil {
		return err
	}
	return &Error{Status: status, Msg: msg}
}

// frameConnFor returns the session's live frame connection, dialing on
// first use.
func (c *Client) frameConnFor(ctx context.Context, sessionID string) (*frameConn, error) {
	c.wmu.Lock()
	fc, ok := c.wconns[sessionID]
	c.wmu.Unlock()
	if ok {
		return fc, nil
	}
	fc, err := c.dialFrame(ctx, sessionID)
	if err != nil {
		return nil, err
	}
	c.wmu.Lock()
	if prev, ok := c.wconns[sessionID]; ok {
		c.wmu.Unlock()
		fc.nc.Close()
		return prev, nil
	}
	if c.wconns == nil {
		c.wconns = map[string]*frameConn{}
	}
	c.wconns[sessionID] = fc
	c.wmu.Unlock()
	return fc, nil
}

// dropFrameConn retires a poisoned connection; the next call redials.
func (c *Client) dropFrameConn(sessionID string, fc *frameConn) {
	fc.nc.Close()
	c.wmu.Lock()
	if c.wconns[sessionID] == fc {
		delete(c.wconns, sessionID)
	}
	c.wmu.Unlock()
}

// Close closes every open frame connection. The client stays usable —
// the next binary call redials.
func (c *Client) Close() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for id, fc := range c.wconns {
		fc.nc.Close()
		delete(c.wconns, id)
	}
}

// dialFrame resolves the frame listener address (pinned, cached, or
// discovered via /healthz) and performs the hello handshake. A stale
// cached address (server restarted onto a new port) gets one
// re-discovery.
func (c *Client) dialFrame(ctx context.Context, sessionID string) (*frameConn, error) {
	addr := c.framePin
	cached := false
	if addr == "" {
		if v, _ := c.frameAddrCache.Load().(string); v != "" {
			addr, cached = v, true
		}
	}
	if addr == "" {
		a, err := c.discoverFrameAddr(ctx)
		if err != nil {
			return nil, err
		}
		addr = a
	}
	fc, err := c.dialFrameAddr(ctx, addr, sessionID)
	if err != nil && cached {
		c.frameAddrCache.Store("")
		a, derr := c.discoverFrameAddr(ctx)
		if derr != nil {
			return nil, err
		}
		return c.dialFrameAddr(ctx, a, sessionID)
	}
	return fc, err
}

// discoverFrameAddr asks the server's /healthz (which both shards and
// routers serve, each advertising their own frame listener).
func (c *Client) discoverFrameAddr(ctx context.Context) (string, error) {
	hz, err := c.Healthz(ctx)
	if err != nil {
		return "", err
	}
	if hz.FrameAddr == "" {
		return "", errors.New("client: server advertises no frame listener")
	}
	c.frameAddrCache.Store(hz.FrameAddr)
	return hz.FrameAddr, nil
}

func (c *Client) dialFrameAddr(ctx context.Context, addr, sessionID string) (*frameConn, error) {
	d := net.Dialer{Timeout: 5 * time.Second}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	fc := &frameConn{
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 32<<10),
		bw:   bufio.NewWriterSize(nc, 32<<10),
		rbuf: make([]byte, 4<<10),
	}
	seq, err := fc.send(wire.OpHello, func(e *wire.Enc) { e.Str(sessionID) })
	if err != nil {
		nc.Close()
		return nil, err
	}
	h, payload, err := fc.recv(seq)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch h.Op {
	case wire.OpHelloOK:
	case wire.OpError:
		err := wireError(payload)
		nc.Close()
		return nil, err
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected hello response op %#x", h.Op)
	}
	fc.epoch = h.Epoch
	// A changed epoch across reconnects means the server restarted under
	// us; the count is observability for callers (state convergence is
	// the failover layer's job, via idempotent replay).
	if prev := c.wireEpoch.Swap(h.Epoch); prev != 0 && prev != h.Epoch {
		c.epochFlips.Add(1)
	}
	return fc, nil
}

// WireEpochFlips counts server-restart detections on the frame path:
// reconnects whose hello came back with a different session epoch.
func (c *Client) WireEpochFlips() int64 { return c.epochFlips.Load() }

// doWire is the binary path's analogue of do: the same retry budget and
// jittered backoff, with "the server answered an error frame" playing
// the role of an HTTP status. Only 503s retry; transport and protocol
// failures retry on a fresh connection.
func (c *Client) doWire(ctx context.Context, sessionID string, fn func(fc *frameConn) error) error {
	if c.maxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxWait)
		defer cancel()
	}
	var lastErr error
	for attempt := 0; attempt <= c.retry.Retries(); attempt++ {
		err := c.oneWire(ctx, sessionID, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		var apiErr *Error
		if errors.As(err, &apiErr) && apiErr.Status != http.StatusServiceUnavailable {
			return err
		}
		if attempt == c.retry.Retries() {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: retry budget exhausted: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(c.backoff(attempt)):
		}
	}
	return fmt.Errorf("client: retries exhausted: %w", lastErr)
}

func (c *Client) oneWire(ctx context.Context, sessionID string, fn func(fc *frameConn) error) error {
	fc, err := c.frameConnFor(ctx, sessionID)
	if err != nil {
		return err
	}
	fc.nc.SetDeadline(deadlineFrom(ctx))
	err = fn(fc)
	if err != nil && !isAPIError(err) {
		// Anything but a well-formed error frame leaves the connection's
		// framing in an unknown state; redial rather than resync.
		c.dropFrameConn(sessionID, fc)
	}
	return err
}

// deadlineFrom maps a context deadline onto a connection deadline (zero
// when the context has none).
func deadlineFrom(ctx context.Context) time.Time {
	if dl, ok := ctx.Deadline(); ok {
		return dl
	}
	return time.Time{}
}

// createWire is CreateSession over OpCreate (JSON-in-frame: create is
// once per session, schema flexibility beats encode speed there).
func (c *Client) createWire(ctx context.Context, req service.CreateSessionRequest) (service.CreateSessionResponse, error) {
	var resp service.CreateSessionResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	err = c.doWire(ctx, req.ID, func(fc *frameConn) error {
		seq, err := fc.send(wire.OpCreate, func(e *wire.Enc) { e.Raw(body) })
		if err != nil {
			return err
		}
		h, payload, err := fc.recv(seq)
		if err != nil {
			return err
		}
		switch h.Op {
		case wire.OpCreateOK:
			return json.Unmarshal(payload, &resp)
		case wire.OpError:
			return wireError(payload)
		default:
			return fmt.Errorf("client: unexpected create response op %#x", h.Op)
		}
	})
	return resp, err
}

// submitJobWire is SubmitJob over OpSubmitJob.
func (c *Client) submitJobWire(ctx context.Context, sessionID string, job int) (service.SubmitJobResponse, error) {
	var resp service.SubmitJobResponse
	err := c.doWire(ctx, sessionID, func(fc *frameConn) error {
		seq, err := fc.send(wire.OpSubmitJob, func(e *wire.Enc) {
			e.Str(sessionID)
			e.Uvarint(uint64(job))
		})
		if err != nil {
			return err
		}
		h, payload, err := fc.recv(seq)
		if err != nil {
			return err
		}
		switch h.Op {
		case wire.OpSubmitJobOK:
			d := wire.NewDec(payload)
			resp.Job = int(d.Uvarint())
			resp.NextJob = int(d.Uvarint())
			resp.Replayed = d.U8() != 0
			return d.Err()
		case wire.OpError:
			return wireError(payload)
		default:
			return fmt.Errorf("client: unexpected submit-job response op %#x", h.Op)
		}
	})
	return resp, err
}

// advanceWire is Advance over OpAdvance.
func (c *Client) advanceWire(ctx context.Context, sessionID string, stage int) (service.Advice, error) {
	var adv service.Advice
	err := c.doWire(ctx, sessionID, func(fc *frameConn) error {
		seq, err := fc.send(wire.OpAdvance, func(e *wire.Enc) {
			e.Str(sessionID)
			e.Uvarint(uint64(stage))
		})
		if err != nil {
			return err
		}
		h, payload, err := fc.recv(seq)
		if err != nil {
			return err
		}
		switch h.Op {
		case wire.OpAdvice:
			d := wire.NewDec(payload)
			adv, err = service.DecodeAdvicePayload(&d)
			return err
		case wire.OpError:
			return wireError(payload)
		default:
			return fmt.Errorf("client: unexpected advance response op %#x", h.Op)
		}
	})
	return adv, err
}

// batchWire is RunBatch over OpBatch: one request frame, a stream of
// advice frames, and an OpBatchEnd trailer carrying the totals.
func (c *Client) batchWire(ctx context.Context, sessionID string, steps []service.Step) (service.BatchResponse, error) {
	var resp service.BatchResponse
	err := c.doWire(ctx, sessionID, func(fc *frameConn) error {
		// Reset on retry: a batch that died mid-stream replays
		// idempotently, and its advices must not double up.
		resp = service.BatchResponse{}
		seq, err := fc.send(wire.OpBatch, func(e *wire.Enc) { service.AppendBatchPayload(e, sessionID, steps) })
		if err != nil {
			return err
		}
		for {
			h, payload, err := fc.recv(seq)
			if err != nil {
				return err
			}
			switch h.Op {
			case wire.OpAdvice:
				d := wire.NewDec(payload)
				a, err := service.DecodeAdvicePayload(&d)
				if err != nil {
					return err
				}
				resp.Advices = append(resp.Advices, a)
			case wire.OpBatchEnd:
				d := wire.NewDec(payload)
				resp.Jobs = int(d.Uvarint())
				n := int(d.Uvarint())
				if err := d.Err(); err != nil {
					return err
				}
				if n != len(resp.Advices) {
					return fmt.Errorf("client: batch trailer says %d advices, streamed %d", n, len(resp.Advices))
				}
				return nil
			case wire.OpError:
				return wireError(payload)
			default:
				return fmt.Errorf("client: unexpected frame op %#x in batch stream", h.Op)
			}
		}
	})
	return resp, err
}

// statusWire is GetSession over OpStatus (JSON-in-frame, cold path).
func (c *Client) statusWire(ctx context.Context, sessionID string) (service.SessionStatus, error) {
	var resp service.SessionStatus
	err := c.doWire(ctx, sessionID, func(fc *frameConn) error {
		seq, err := fc.send(wire.OpStatus, func(e *wire.Enc) { e.Str(sessionID) })
		if err != nil {
			return err
		}
		h, payload, err := fc.recv(seq)
		if err != nil {
			return err
		}
		switch h.Op {
		case wire.OpStatusOK:
			return json.Unmarshal(payload, &resp)
		case wire.OpError:
			return wireError(payload)
		default:
			return fmt.Errorf("client: unexpected status response op %#x", h.Op)
		}
	})
	return resp, err
}

// deleteWire is DeleteSession over OpDelete. The session's connection
// is closed afterwards — its routing affinity died with the session.
func (c *Client) deleteWire(ctx context.Context, sessionID string) error {
	err := c.doWire(ctx, sessionID, func(fc *frameConn) error {
		seq, err := fc.send(wire.OpDelete, func(e *wire.Enc) { e.Str(sessionID) })
		if err != nil {
			return err
		}
		h, payload, err := fc.recv(seq)
		if err != nil {
			return err
		}
		switch h.Op {
		case wire.OpDeleteOK:
			return nil
		case wire.OpError:
			return wireError(payload)
		default:
			return fmt.Errorf("client: unexpected delete response op %#x", h.Op)
		}
	})
	c.wmu.Lock()
	if fc, ok := c.wconns[sessionID]; ok {
		fc.nc.Close()
		delete(c.wconns, sessionID)
	}
	c.wmu.Unlock()
	return err
}
