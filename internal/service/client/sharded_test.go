package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/fault"
	"mrdspark/internal/service"
	"mrdspark/internal/workload"
)

func shardedAdvisorConfig() service.AdvisorConfig {
	return service.AdvisorConfig{Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: experiments.SpecMRD}
}

// bootShards starts n advisory servers over one shared snapshot store
// and returns their URLs plus a kill function that drops one abruptly.
func bootShards(t *testing.T, n int) (urls []string, kill func(url string)) {
	t.Helper()
	store := service.NewMemStore()
	servers := map[string]*service.Server{}
	tss := map[string]*httptest.Server{}
	for i := 0; i < n; i++ {
		srv := service.NewServer(service.ServerConfig{Snapshots: service.SnapshotPolicy{Store: store}})
		ts := httptest.NewServer(srv.Handler())
		urls = append(urls, ts.URL)
		servers[ts.URL] = srv
		tss[ts.URL] = ts
	}
	t.Cleanup(func() {
		for u, ts := range tss {
			ts.Close()
			servers[u].Close()
		}
	})
	return urls, func(url string) {
		tss[url].Close()
		servers[url].Close()
	}
}

// fastRetry keeps failover detection quick in tests.
func fastRetry() ShardedConfig {
	return ShardedConfig{
		Retry:        &fault.Schedule{MaxFetchRetries: 1, RetryBackoffUs: 50},
		MaxRetryWait: 2 * time.Second,
		JitterSeed:   1,
	}
}

// TestShardedFailoverParity is the in-process version of the CI chaos
// smoke: drive a session through the sharded client, kill its owning
// shard mid-schedule, and demand the run completes with every advice —
// including all post-failover ones served by a snapshot-restored
// session on the survivor — byte-identical to an uninterrupted
// in-process oracle.
func TestShardedFailoverParity(t *testing.T) {
	const name = "SCC"
	urls, kill := bootShards(t, 3)
	cfg := fastRetry()
	cfg.Shards = urls
	s := NewSharded(cfg)
	ctx := context.Background()

	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ospec, err := workload.Build(name, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := service.NewAdvisor(ospec.Graph, shardedAdvisorConfig())
	if err != nil {
		t.Fatal(err)
	}

	const id = "chaos-1"
	if _, err := s.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: name, Advisor: shardedAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	owner := s.Shards().Owner(id)

	steps := service.Schedule(spec.Graph)
	killAt := len(steps) / 2
	for i, st := range steps {
		if i == killAt {
			kill(owner)
		}
		if st.Stage < 0 {
			if _, err := s.SubmitJob(ctx, id, st.Job); err != nil {
				t.Fatalf("step %d job %d: %v", i, st.Job, err)
			}
			if err := oracle.SubmitJob(st.Job); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := s.Advance(ctx, id, st.Stage)
		if err != nil {
			t.Fatalf("step %d stage %d: %v", i, st.Stage, err)
		}
		want, err := oracle.Advance(st.Stage)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got.Fingerprint(), want.Fingerprint(); g != w {
			t.Fatalf("stage %d diverges across failover:\n  server %s\n  oracle %s", st.Stage, g, w)
		}
	}

	st := s.Stats()
	if st.Failovers < 1 {
		t.Errorf("Stats.Failovers = %d, want >= 1", st.Failovers)
	}
	if st.RerouteP50 <= 0 || st.RerouteP99 < st.RerouteP50 {
		t.Errorf("re-route percentiles look wrong: p50 %v p99 %v", st.RerouteP50, st.RerouteP99)
	}
	if successor := s.Shards().Owner(id); successor == owner || successor == "" {
		t.Errorf("session still routed to the dead shard %q", successor)
	}
	if n := st.SessionsPerShard[s.Shards().Owner(id)]; n != 1 {
		t.Errorf("SessionsPerShard = %v, want the session on its successor", st.SessionsPerShard)
	}

	if err := s.DeleteSession(ctx, id); err != nil {
		t.Errorf("delete after failover: %v", err)
	}
}

// TestShardedSpreadsSessions checks sessions land on different shards
// (rendezvous actually spreads) and per-shard counts add up.
func TestShardedSpreadsSessions(t *testing.T) {
	urls, _ := bootShards(t, 3)
	cfg := fastRetry()
	cfg.Shards = urls
	s := NewSharded(cfg)
	ctx := context.Background()

	const n = 12
	for i := 0; i < n; i++ {
		if _, err := s.CreateSession(ctx, service.CreateSessionRequest{
			ID: fmt.Sprintf("spread-%d", i), Workload: "SCC", Advisor: shardedAdvisorConfig(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	total, shardsUsed := 0, 0
	for _, c := range st.SessionsPerShard {
		total += c
		if c > 0 {
			shardsUsed++
		}
	}
	if total != n {
		t.Errorf("per-shard counts sum to %d, want %d", total, n)
	}
	if shardsUsed < 2 {
		t.Errorf("all %d sessions landed on %d shard(s); rendezvous is not spreading", n, shardsUsed)
	}
}

// TestShardedRequiresID: without a client-chosen ID there is no
// routing key, so create must fail fast.
func TestShardedRequiresID(t *testing.T) {
	s := NewSharded(ShardedConfig{Shards: []string{"http://unused:1"}})
	if _, err := s.CreateSession(context.Background(), service.CreateSessionRequest{Workload: "SCC"}); err == nil {
		t.Fatal("CreateSession without ID should fail")
	}
}

// TestRetryAfterHonored: a 503 carrying a fractional Retry-After must
// hold the retry back at least that long (lenient float parse).
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.2")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Retry: &fault.Schedule{MaxFetchRetries: 2, RetryBackoffUs: 10}, JitterSeed: 1})
	start := time.Now()
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("retry fired after %v, Retry-After asked for 200ms", elapsed)
	}
}

// TestMaxRetryWaitCapsTotalTime: a dead endpoint with a huge retry
// budget must still fail within MaxRetryWait.
func TestMaxRetryWaitCapsTotalTime(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:      ts.URL,
		Retry:        &fault.Schedule{MaxFetchRetries: 100, RetryBackoffUs: 1000},
		MaxRetryWait: 150 * time.Millisecond,
		JitterSeed:   1,
	})
	start := time.Now()
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("want error from a permanently shedding server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v despite a 150ms retry budget", elapsed)
	}
}

// TestParseRetryAfter covers the lenient header grammar.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"0.5", 500 * time.Millisecond},
		{" 2 ", 2 * time.Second},
		{"-1", 0},
		{"soon", 0},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// A future HTTP-date yields roughly the interval until then.
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 0 || got > 4*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~3s", got)
	}
}
