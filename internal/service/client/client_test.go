package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mrdspark/internal/fault"
	"mrdspark/internal/service"
)

// TestRetriesShedResponses verifies the client absorbs 503 sheds with
// backoff and succeeds once capacity frees up.
func TestRetriesShedResponses(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(service.Healthz{Status: "ok"})
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Retry: &fault.Schedule{MaxFetchRetries: 3, RetryBackoffUs: 10}})
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("Healthz after sheds: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Errorf("status=%q calls=%d, want ok after 3 calls", h.Status, calls.Load())
	}
}

// TestRetriesExhausted checks a persistent shed fails after the budget.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Retry: &fault.Schedule{MaxFetchRetries: 2, RetryBackoffUs: 10}})
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("err = %v, want wrapped 503", err)
	}
	if calls.Load() != 3 { // initial attempt + 2 retries
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// TestNoRetryOnClientError checks 4xx responses fail fast: retrying a
// semantic error would just replay the mistake.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no session"})
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Retry: &fault.Schedule{RetryBackoffUs: 10}})
	_, err := c.Advance(context.Background(), "s1", 0)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Msg != "no session" {
		t.Errorf("err = %v, want 404 'no session'", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want exactly 1 (no retry on 4xx)", calls.Load())
	}
}

// TestDefaultBackoffSchedule checks a nil schedule falls back to the
// fault package defaults.
func TestDefaultBackoffSchedule(t *testing.T) {
	c := New(Config{BaseURL: "http://invalid"})
	if got := c.retry.Retries(); got != fault.DefaultFetchRetries {
		t.Errorf("default retries = %d, want %d", got, fault.DefaultFetchRetries)
	}
	if got := c.retry.Backoff(); got != fault.DefaultRetryBackoffUs {
		t.Errorf("default backoff = %d, want %d", got, fault.DefaultRetryBackoffUs)
	}
}
