package client

import (
	"context"
	"sync"
	"testing"

	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
	"mrdspark/internal/workload"
)

// TestShardedFailoverRerouteSpan kills a session's owning shard
// mid-schedule and checks the failover is visible in the telemetry:
// a re-route span with the convergence client-calls nested under it,
// the same event in Stats().Reroutes with its trace ID, and per-hop
// breakdowns flowing through OnHops.
func TestShardedFailoverRerouteSpan(t *testing.T) {
	tr := trace.NewTracer(4096)
	urls, kill := bootShards(t, 3)
	cfg := fastRetry()
	cfg.Shards = urls
	cfg.Tracer = tr
	var mu sync.Mutex
	var hops []Hops
	cfg.OnHops = func(h Hops) {
		mu.Lock()
		hops = append(hops, h)
		mu.Unlock()
	}
	s := NewSharded(cfg)
	ctx := context.Background()

	const id = "trace-chaos-1"
	if _, err := s.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: "SCC", Advisor: shardedAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	owner := s.Shards().Owner(id)

	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	killAt := len(steps) / 2
	for i, st := range steps {
		if i == killAt {
			kill(owner)
		}
		if st.Stage < 0 {
			if _, err := s.SubmitJob(ctx, id, st.Job); err != nil {
				t.Fatalf("step %d job %d: %v", i, st.Job, err)
			}
			continue
		}
		if _, err := s.Advance(ctx, id, st.Stage); err != nil {
			t.Fatalf("step %d stage %d: %v", i, st.Stage, err)
		}
	}

	stats := s.Stats()
	if stats.Failovers < 1 || len(stats.Reroutes) != int(stats.Failovers) {
		t.Fatalf("Failovers=%d Reroutes=%d; want one event per failover >= 1",
			stats.Failovers, len(stats.Reroutes))
	}
	ev := stats.Reroutes[0]
	if ev.Session != id || ev.Owner == owner || ev.Owner == "" {
		t.Errorf("re-route event %+v: want session %s moved off %s", ev, id, owner)
	}
	if ev.Ops <= 0 || ev.Latency <= 0 {
		t.Errorf("re-route event %+v: want positive replayed-ops count and latency", ev)
	}
	if ev.Trace == "" {
		t.Fatal("re-route event carries no trace ID despite tracing being on")
	}

	// The re-route span exists under the reported trace, and the
	// convergence's client-calls nest inside it.
	var reroute trace.Span
	found := false
	for _, sp := range tr.Spans() {
		if sp.Name == "re-route" && sp.Trace.String() == ev.Trace {
			reroute, found = sp, true
			break
		}
	}
	if !found {
		t.Fatalf("no re-route span recorded under trace %s", ev.Trace)
	}
	nested := 0
	for _, sp := range tr.Spans() {
		if sp.Name == "client-call" && sp.Parent == reroute.ID {
			nested++
		}
	}
	if nested == 0 {
		t.Error("no convergence client-call spans nested under the re-route span")
	}

	// Per-hop breakdowns flowed for the successful calls (shard-direct,
	// so ShardUs reports and RouterUs stays -1).
	mu.Lock()
	defer mu.Unlock()
	if len(hops) == 0 {
		t.Fatal("OnHops never fired through the sharded client")
	}
	sawShard := false
	for _, h := range hops {
		if h.ShardUs >= 0 {
			sawShard = true
		}
		if h.RouterUs != -1 {
			t.Errorf("call %s reports router time %d with no router in the path", h.Path, h.RouterUs)
		}
	}
	if !sawShard {
		t.Error("no call reported a shard hop time")
	}
}
