// Sharded is the multi-shard client: rendezvous-hash routing by
// session ID over N advisory shards, with transparent failover. When a
// shard dies mid-session, the client marks it dead, re-routes the
// session to the rendezvous successor, converges the successor's copy
// (restored from the shared snapshot store) by replaying the session's
// recorded operation history — every replayed op is idempotent
// server-side — and then retries the operation that failed. Callers
// see a slow call, not an error.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"mrdspark/internal/fault"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
)

// ShardedConfig shapes a sharded client.
type ShardedConfig struct {
	// Shards are the shard base URLs.
	Shards []string
	// HTTPClient overrides the per-shard transport; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes each per-shard client's retry schedule.
	Retry *fault.Schedule
	// MaxRetryWait caps each per-shard call's retry wall-time (see
	// Config.MaxRetryWait). Keep it short: it is also the failover
	// detection latency.
	MaxRetryWait time.Duration
	// JitterSeed seeds backoff jitter (see Config.JitterSeed).
	JitterSeed uint64
	// Failovers bounds how many distinct shards one operation may try;
	// 0 means len(Shards).
	Failovers int
	// Tracer records client-call and re-route spans across every
	// per-shard client; nil disables tracing.
	Tracer *trace.Tracer
	// OnHops receives every successful call's per-hop breakdown (see
	// Config.OnHops).
	OnHops func(Hops)
	// Binary puts every per-shard client on the frame protocol (see
	// Config.Binary); each shard's frame address is discovered through
	// its /healthz.
	Binary bool
}

// opKind tags one recorded session operation.
type opKind uint8

const (
	opJob opKind = iota
	opAdvance
)

type op struct {
	kind opKind
	arg  int
}

// sessionState is the client-side replay source for one session: the
// create request (to re-materialize the session anywhere) and the op
// history (to fast-forward a restored copy past any snapshot lag).
type sessionState struct {
	mu     sync.Mutex
	create service.CreateSessionRequest
	ops    []op
}

// Sharded routes sessions across shards with failover. It is safe for
// concurrent use; operations on the same session are serialized.
type Sharded struct {
	cfg    ShardedConfig
	shards *service.ShardMap

	mu       sync.Mutex
	clients  map[string]*Client
	sessions map[string]*sessionState

	statsMu   sync.Mutex
	failovers int64
	reroutes  []time.Duration
	events    []RerouteEvent
}

// NewSharded builds a sharded client over the shard group.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Failovers == 0 {
		cfg.Failovers = len(cfg.Shards)
	}
	return &Sharded{
		cfg:      cfg,
		shards:   service.NewShardMap(cfg.Shards),
		clients:  map[string]*Client{},
		sessions: map[string]*sessionState{},
	}
}

// Shards exposes the routing map (tests, stats).
func (s *Sharded) Shards() *service.ShardMap { return s.shards }

// clientFor returns (building once) the per-shard client.
func (s *Sharded) clientFor(shard string) *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[shard]; ok {
		return c
	}
	seed := s.cfg.JitterSeed
	if seed != 0 {
		// Derive a distinct stream per shard so two shards' retry
		// timings don't collide even under a fixed seed.
		seed = seed*0x9e3779b97f4a7c15 + uint64(len(s.clients)+1)
	}
	c := New(Config{
		BaseURL:      shard,
		HTTPClient:   s.cfg.HTTPClient,
		Retry:        s.cfg.Retry,
		MaxRetryWait: s.cfg.MaxRetryWait,
		JitterSeed:   seed,
		Tracer:       s.cfg.Tracer,
		OnHops:       s.cfg.OnHops,
		Binary:       s.cfg.Binary,
	})
	s.clients[shard] = c
	return c
}

func (s *Sharded) state(id string) (*sessionState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	return st, ok
}

// CreateSession registers the session on its owning shard. The request
// must carry a client-chosen ID (consistent-hash routing needs the ID
// before the session exists); Sharded fails fast otherwise.
func (s *Sharded) CreateSession(ctx context.Context, req service.CreateSessionRequest) (service.CreateSessionResponse, error) {
	if req.ID == "" {
		return service.CreateSessionResponse{}, errors.New("client: sharded CreateSession requires a session ID")
	}
	st := &sessionState{create: req}
	s.mu.Lock()
	if _, dup := s.sessions[req.ID]; dup {
		s.mu.Unlock()
		return service.CreateSessionResponse{}, fmt.Errorf("client: session %q already created through this client", req.ID)
	}
	s.sessions[req.ID] = st
	s.mu.Unlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	var resp service.CreateSessionResponse
	err := s.withFailover(ctx, req.ID, st, func(c *Client) error {
		var err error
		resp, err = c.CreateSession(ctx, req)
		return err
	})
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, req.ID)
		s.mu.Unlock()
	}
	return resp, err
}

// SubmitJob feeds the next job to the session, recording it for
// post-failover replay.
func (s *Sharded) SubmitJob(ctx context.Context, sessionID string, job int) (service.SubmitJobResponse, error) {
	st, ok := s.state(sessionID)
	if !ok {
		return service.SubmitJobResponse{}, fmt.Errorf("client: unknown session %q", sessionID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var resp service.SubmitJobResponse
	err := s.withFailover(ctx, sessionID, st, func(c *Client) error {
		var err error
		resp, err = c.SubmitJob(ctx, sessionID, job)
		return err
	})
	if err == nil {
		st.ops = append(st.ops, op{opJob, job})
	}
	return resp, err
}

// Advance moves the session to a stage boundary, recording the op for
// post-failover replay.
func (s *Sharded) Advance(ctx context.Context, sessionID string, stage int) (service.Advice, error) {
	st, ok := s.state(sessionID)
	if !ok {
		return service.Advice{}, fmt.Errorf("client: unknown session %q", sessionID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var adv service.Advice
	err := s.withFailover(ctx, sessionID, st, func(c *Client) error {
		var err error
		adv, err = c.Advance(ctx, sessionID, stage)
		return err
	})
	if err == nil {
		st.ops = append(st.ops, op{opAdvance, stage})
	}
	return adv, err
}

// RunBatch drives a run of schedule steps in one call, recording each
// step for post-failover replay — a batch that died mid-stream on a
// shard failure replays step-by-step on the successor (each op is
// idempotent), then the whole batch retries there.
func (s *Sharded) RunBatch(ctx context.Context, sessionID string, steps []service.Step) (service.BatchResponse, error) {
	st, ok := s.state(sessionID)
	if !ok {
		return service.BatchResponse{}, fmt.Errorf("client: unknown session %q", sessionID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var resp service.BatchResponse
	err := s.withFailover(ctx, sessionID, st, func(c *Client) error {
		var err error
		resp, err = c.RunBatch(ctx, sessionID, steps)
		return err
	})
	if err == nil {
		for _, step := range steps {
			if step.Stage < 0 {
				st.ops = append(st.ops, op{opJob, step.Job})
			} else {
				st.ops = append(st.ops, op{opAdvance, step.Stage})
			}
		}
	}
	return resp, err
}

// DeleteSession tears the session down and drops its replay state.
func (s *Sharded) DeleteSession(ctx context.Context, sessionID string) error {
	st, ok := s.state(sessionID)
	if !ok {
		return fmt.Errorf("client: unknown session %q", sessionID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	err := s.withFailover(ctx, sessionID, st, func(c *Client) error {
		return c.DeleteSession(ctx, sessionID)
	})
	if err == nil {
		s.mu.Lock()
		delete(s.sessions, sessionID)
		s.mu.Unlock()
	}
	return err
}

// Close closes every per-shard client's frame connections (a no-op on
// the JSON transport).
func (s *Sharded) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		c.Close()
	}
}

// withFailover runs call against the session's current owner; on a
// transport-level failure it marks the owner dead, converges the
// session on the rendezvous successor, and tries again there. API
// errors (the server answered) pass through untouched — a 409 is the
// caller's bug, not a dead shard.
func (s *Sharded) withFailover(ctx context.Context, sessionID string, st *sessionState, call func(c *Client) error) error {
	var lastErr error
	for hop := 0; hop <= s.cfg.Failovers; hop++ {
		owner := s.shards.Owner(sessionID)
		if owner == "" {
			if lastErr != nil {
				return fmt.Errorf("client: no live shard for %q: %w", sessionID, lastErr)
			}
			return fmt.Errorf("client: no live shard for %q", sessionID)
		}
		c := s.clientFor(owner)
		if hop > 0 {
			// The successor may only have the session as a snapshot, and
			// that snapshot may trail the ops this client has had
			// acknowledged. Converge before retrying: adopt (or
			// re-create) the session, then replay the full recorded
			// history — every op is idempotent server-side, so replaying
			// already-applied ops is a cheap no-op.
			sp := s.cfg.Tracer.Start(trace.FromContext(ctx), "re-route")
			cctx := ctx
			if sp.Recording() {
				// The convergence replay's client-calls nest under the
				// re-route span, so a failover reads as one block in the
				// waterfall.
				cctx = trace.ContextWith(ctx, sp.Context())
			}
			start := time.Now()
			if err := s.converge(cctx, c, sessionID, st); err != nil {
				sp.EndWith("failed: " + owner)
				lastErr = err
				if isAPIError(err) {
					return fmt.Errorf("client: failover convergence for %q: %w", sessionID, err)
				}
				s.shards.MarkDead(owner)
				continue
			}
			sp.EndWith(fmt.Sprintf("session=%s successor=%s ops=%d", sessionID, owner, len(st.ops)))
			s.noteFailover(RerouteEvent{
				Session: sessionID,
				Owner:   owner,
				Ops:     len(st.ops),
				Latency: time.Since(start),
				Trace:   traceIDString(sp),
			})
		}
		err := call(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if isAPIError(err) {
			return err
		}
		s.shards.MarkDead(owner)
	}
	return fmt.Errorf("client: failovers exhausted for %q: %w", sessionID, lastErr)
}

// converge makes the shard's copy of the session catch up with
// everything this client has had acknowledged.
func (s *Sharded) converge(ctx context.Context, c *Client, sessionID string, st *sessionState) error {
	// Idempotent create: 200 with the restored/live session, 201 with a
	// fresh one (snapshot lost), either way the session exists.
	if _, err := c.CreateSession(ctx, st.create); err != nil {
		return err
	}
	for _, o := range st.ops {
		var err error
		switch o.kind {
		case opJob:
			_, err = c.SubmitJob(ctx, sessionID, o.arg)
		case opAdvance:
			_, err = c.Advance(ctx, sessionID, o.arg)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// isAPIError reports whether the server answered (any HTTP status):
// the shard is alive, so failing over would be wrong.
func isAPIError(err error) bool {
	var apiErr *Error
	return errors.As(err, &apiErr)
}

// traceIDString renders the span's trace ID, or "" for an inert span.
func traceIDString(sp trace.ActiveSpan) string {
	if !sp.Recording() {
		return ""
	}
	return sp.Context().Trace.String()
}

func (s *Sharded) noteFailover(ev RerouteEvent) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.failovers++
	s.reroutes = append(s.reroutes, ev.Latency)
	s.events = append(s.events, ev)
}

// RerouteEvent is one successful session failover: which session moved
// where, how much history the successor replayed, and the trace the
// re-route span was recorded under (empty when untraced).
type RerouteEvent struct {
	Session string
	Owner   string
	Ops     int
	Latency time.Duration
	Trace   string
}

// Stats summarizes the sharded client's failover activity.
type Stats struct {
	// Failovers counts successful session re-routes to a successor.
	Failovers int64
	// RerouteP50 and RerouteP99 are percentiles of the time one
	// re-route took (converging the successor, replay included).
	RerouteP50 time.Duration
	RerouteP99 time.Duration
	// Reroutes lists every failover in order: session, successor, ops
	// replayed, latency, and the re-route span's trace ID.
	Reroutes []RerouteEvent
	// SessionsPerShard maps each shard to the sessions it currently
	// owns under the client's live routing view.
	SessionsPerShard map[string]int
}

// Stats computes the current failover summary.
func (s *Sharded) Stats() Stats {
	s.statsMu.Lock()
	lat := append([]time.Duration(nil), s.reroutes...)
	events := append([]RerouteEvent(nil), s.events...)
	n := s.failovers
	s.statsMu.Unlock()

	st := Stats{Failovers: n, Reroutes: events, SessionsPerShard: map[string]int{}}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st.RerouteP50 = lat[len(lat)/2]
		st.RerouteP99 = lat[(len(lat)*99)/100]
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		if owner := s.shards.Owner(id); owner != "" {
			st.SessionsPerShard[owner]++
		}
	}
	return st
}
