// Package client is the typed Go client of the cache-advisory server's
// /v1 HTTP API, with retry/backoff on shed (503) and transport errors
// driven by the same fault.Schedule backoff parameters the simulator's
// fetch-retry path uses.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mrdspark/internal/fault"
	"mrdspark/internal/service"
)

// Config shapes a client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7788".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes the retry budget and exponential backoff base; nil
	// means the fault package defaults (3 retries, 1ms base, doubling
	// per attempt).
	Retry *fault.Schedule
}

// Client talks to one advisory server. It is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry *fault.Schedule
}

// New builds a client.
func New(cfg Config) *Client {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(cfg.BaseURL, "/"), hc: hc, retry: cfg.Retry}
}

// Error is a non-2xx API response.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mrdserver: %s (HTTP %d)", e.Msg, e.Status)
}

// CreateSession registers an application and returns its session.
func (c *Client) CreateSession(ctx context.Context, req service.CreateSessionRequest) (service.CreateSessionResponse, error) {
	var resp service.CreateSessionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp)
	return resp, err
}

// SubmitJob feeds the next job to the session.
func (c *Client) SubmitJob(ctx context.Context, sessionID string, job int) (service.SubmitJobResponse, error) {
	var resp service.SubmitJobResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/jobs", service.SubmitJobRequest{Job: job}, &resp)
	return resp, err
}

// Advance moves the session to a stage boundary and returns the
// server's advice.
func (c *Client) Advance(ctx context.Context, sessionID string, stage int) (service.Advice, error) {
	var resp service.Advice
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/stage", service.AdvanceRequest{Stage: stage}, &resp)
	return resp, err
}

// DeleteSession tears the session down.
func (c *Client) DeleteSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil)
}

// Healthz fetches the server's health summary.
func (c *Client) Healthz(ctx context.Context) (service.Healthz, error) {
	var resp service.Healthz
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// do issues one API call, retrying shed responses (503) and transport
// errors with the fault schedule's exponential backoff. 503s are safe
// to retry unconditionally — the bounded-concurrency middleware sheds
// before any handler state changes.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retry.Retries(); attempt++ {
		if attempt > 0 {
			backoff := time.Duration(c.retry.Backoff()<<(attempt-1)) * time.Microsecond
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
		}
		retryable, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	return fmt.Errorf("client: retries exhausted: %w", lastErr)
}

// attempt is one HTTP round trip; it reports whether a failure is worth
// retrying.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return false, nil
		}
		return false, json.NewDecoder(resp.Body).Decode(out)
	}
	apiErr := &Error{Status: resp.StatusCode, Msg: resp.Status}
	var wire struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&wire) == nil && wire.Error != "" {
		apiErr.Msg = wire.Error
	}
	return resp.StatusCode == http.StatusServiceUnavailable, apiErr
}
