// Package client is the typed Go client of the cache-advisory server's
// /v1 HTTP API, with retry/backoff on shed (503) and transport errors
// driven by the same fault.Schedule backoff parameters the simulator's
// fetch-retry path uses. Retries honor the server's Retry-After hint,
// spread under jittered exponential backoff, and are capped by a total
// retry wall-time so a dead server fails fast instead of hanging the
// caller. Sharded (sharded.go) layers consistent-hash routing and
// failover over several of these.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrdspark/internal/fault"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
)

// Config shapes a client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7788".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes the retry budget and exponential backoff base; nil
	// means the fault package defaults (3 retries, 1ms base, doubling
	// per attempt).
	Retry *fault.Schedule
	// MaxRetryWait caps the total wall-time one call may spend across
	// retries (enforced as a context deadline); 0 means
	// DefaultMaxRetryWait, negative disables the cap.
	MaxRetryWait time.Duration
	// JitterSeed seeds the backoff jitter; 0 derives one from the
	// clock. Fixed seeds make retry timing reproducible in tests.
	JitterSeed uint64
	// Tracer records a client-call span per HTTP attempt and injects
	// the traceparent header; nil disables tracing. Even with a nil
	// Tracer, a span context already on the call's context (e.g. from a
	// traced caller) is still propagated on the wire.
	Tracer *trace.Tracer
	// OnHops, when set, receives the per-hop latency breakdown of every
	// successful call, parsed from the X-Mrd-* response headers each
	// tier stamps.
	OnHops func(Hops)
	// Binary moves session operations onto the persistent-connection
	// frame protocol (wire.go); healthz and discovery stay HTTP. The
	// typed API and error values are identical on both transports.
	Binary bool
	// FrameAddr pins the frame listener's host:port, skipping /healthz
	// discovery. Only meaningful with Binary.
	FrameAddr string
}

// Hops is one successful call's per-hop latency breakdown. Hop fields
// are -1 when that tier didn't report (e.g. ShardUs without a router in
// the path is the whole server time; RouterUs is -1).
type Hops struct {
	// Path is the request path the breakdown belongs to.
	Path string
	// Total is this attempt's full round-trip as the client saw it.
	Total time.Duration
	// RouterUs is the routing tier's proxy time (retries included).
	RouterUs int64
	// ShardUs is the shard's total handler time (queue wait included).
	ShardUs int64
	// ComputeUs is the advisor policy-compute time inside the shard.
	ComputeUs int64
	// TraceID is the trace the response belongs to ("" when the service
	// ran untraced).
	TraceID string
}

// DefaultMaxRetryWait bounds one call's cumulative retry wall-time.
const DefaultMaxRetryWait = 30 * time.Second

// maxRetryAfter caps how long a server-sent Retry-After hint can make
// us sleep — a misbehaving (or clock-skewed) server must not pin the
// client down for minutes.
const maxRetryAfter = 5 * time.Second

// Client talks to one advisory server. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   *fault.Schedule
	maxWait time.Duration
	jitter  atomic.Uint64 // splitmix64 state
	tracer  *trace.Tracer
	onHops  func(Hops)

	// Frame-protocol state (Config.Binary; see wire.go).
	binary         bool
	framePin       string
	frameAddrCache atomic.Value // string
	wmu            sync.Mutex
	wconns         map[string]*frameConn
	wireEpoch      atomic.Uint32
	epochFlips     atomic.Int64
}

// New builds a client.
func New(cfg Config) *Client {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	maxWait := cfg.MaxRetryWait
	if maxWait == 0 {
		maxWait = DefaultMaxRetryWait
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	c := &Client{
		base: strings.TrimRight(cfg.BaseURL, "/"), hc: hc, retry: cfg.Retry,
		maxWait: maxWait, tracer: cfg.Tracer, onHops: cfg.OnHops,
		binary: cfg.Binary, framePin: cfg.FrameAddr,
	}
	c.jitter.Store(seed)
	return c
}

// Error is a non-2xx API response.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mrdserver: %s (HTTP %d)", e.Msg, e.Status)
}

// CreateSession registers an application and returns its session.
func (c *Client) CreateSession(ctx context.Context, req service.CreateSessionRequest) (service.CreateSessionResponse, error) {
	if c.binary {
		return c.createWire(ctx, req)
	}
	var resp service.CreateSessionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp)
	return resp, err
}

// GetSession fetches the session's replay cursor (restoring it from
// the snapshot store on demand server-side).
func (c *Client) GetSession(ctx context.Context, sessionID string) (service.SessionStatus, error) {
	if c.binary {
		return c.statusWire(ctx, sessionID)
	}
	var resp service.SessionStatus
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+sessionID, nil, &resp)
	return resp, err
}

// SubmitJob feeds the next job to the session.
func (c *Client) SubmitJob(ctx context.Context, sessionID string, job int) (service.SubmitJobResponse, error) {
	if c.binary {
		return c.submitJobWire(ctx, sessionID, job)
	}
	var resp service.SubmitJobResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/jobs", service.SubmitJobRequest{Job: job}, &resp)
	return resp, err
}

// Advance moves the session to a stage boundary and returns the
// server's advice.
func (c *Client) Advance(ctx context.Context, sessionID string, stage int) (service.Advice, error) {
	if c.binary {
		return c.advanceWire(ctx, sessionID, stage)
	}
	var resp service.Advice
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/stage", service.AdvanceRequest{Stage: stage}, &resp)
	return resp, err
}

// RunBatch drives a run of schedule steps (job submits and advances)
// in one call, returning every advice the run produced. Over the frame
// protocol the advices stream back as they are computed; over JSON the
// server buffers them into one response.
func (c *Client) RunBatch(ctx context.Context, sessionID string, steps []service.Step) (service.BatchResponse, error) {
	if c.binary {
		return c.batchWire(ctx, sessionID, steps)
	}
	var resp service.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/batch", service.BatchRequest{Steps: steps}, &resp)
	return resp, err
}

// DeleteSession tears the session down.
func (c *Client) DeleteSession(ctx context.Context, sessionID string) error {
	if c.binary {
		return c.deleteWire(ctx, sessionID)
	}
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil)
}

// Healthz fetches the server's health summary.
func (c *Client) Healthz(ctx context.Context) (service.Healthz, error) {
	var resp service.Healthz
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// do issues one API call, retrying shed responses (503) and transport
// errors. The wait before each retry is the larger of the schedule's
// jittered exponential backoff and the server's Retry-After hint; the
// whole call is bounded by MaxRetryWait via a context deadline, so
// "retries exhausted" and "dead server" both fail within a known
// budget. 503s are safe to retry because every mutating operation is
// idempotent server-side: a shed 503 never touched handler state, and
// a timeout 503 that raced a mutation which then completed converges
// on the retry's idempotent replay.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	if c.maxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxWait)
		defer cancel()
	}
	var lastErr error
	for attempt := 0; attempt <= c.retry.Retries(); attempt++ {
		retryable, retryAfter, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if attempt == c.retry.Retries() {
			break
		}
		wait := c.backoff(attempt)
		if retryAfter > wait {
			wait = min(retryAfter, maxRetryAfter)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: retry budget exhausted: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(wait):
		}
	}
	return fmt.Errorf("client: retries exhausted: %w", lastErr)
}

// backoff is the schedule's exponential base for this attempt with
// "equal jitter": half deterministic, half uniform-random, so a fleet
// of clients shed by the same spike doesn't retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	base := time.Duration(c.retry.Backoff()<<attempt) * time.Microsecond
	half := base / 2
	return half + time.Duration(c.rand()%uint64(half+1))
}

// rand steps the client's splitmix64 jitter stream.
func (c *Client) rand() uint64 {
	z := c.jitter.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// attempt is one HTTP round trip; it reports whether a failure is
// worth retrying and any server-sent Retry-After hint.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retryable bool, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// One client-call span per attempt (retries each get their own).
	// With tracing off, a span context already on ctx still propagates,
	// so an untraced client inside a traced caller keeps the chain.
	parent := trace.FromContext(ctx)
	sp := c.tracer.Start(parent, "client-call")
	hdr := parent
	if sp.Recording() {
		hdr = sp.Context()
	}
	if !hdr.IsZero() {
		req.Header.Set(trace.Header, hdr.Traceparent())
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		sp.EndWith("transport-error " + path)
		return ctx.Err() == nil, 0, err
	}
	defer resp.Body.Close()
	sp.EndWith(fmt.Sprintf("%s %s status=%d", method, path, resp.StatusCode))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if c.onHops != nil {
			c.onHops(parseHops(path, time.Since(start), resp.Header))
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return false, 0, nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		// Drain past the decoded value (at least the trailing newline):
		// a body closed with unread bytes kills the keep-alive
		// connection, turning every call into a fresh TCP handshake.
		io.Copy(io.Discard, resp.Body)
		return false, 0, err
	}
	apiErr := &Error{Status: resp.StatusCode, Msg: resp.Status}
	var errBody struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&errBody) == nil && errBody.Error != "" {
		apiErr.Msg = errBody.Error
	}
	io.Copy(io.Discard, resp.Body) // keep the connection reusable (see above)
	return resp.StatusCode == http.StatusServiceUnavailable, parseRetryAfter(resp.Header.Get("Retry-After")), apiErr
}

// parseHops reads the per-hop latency headers each tier stamped onto
// the response into one breakdown record.
func parseHops(path string, total time.Duration, h http.Header) Hops {
	hops := Hops{
		Path:      path,
		Total:     total,
		RouterUs:  hopUs(h, service.HeaderRouterUs),
		ShardUs:   hopUs(h, service.HeaderShardUs),
		ComputeUs: hopUs(h, service.HeaderComputeUs),
	}
	if sc, ok := trace.Parse(h.Get(trace.Header)); ok {
		hops.TraceID = sc.Trace.String()
	}
	return hops
}

// hopUs parses one microsecond hop header; -1 means the tier didn't
// report.
func hopUs(h http.Header, key string) int64 {
	v := h.Get(key)
	if v == "" {
		return -1
	}
	us, err := strconv.ParseInt(v, 10, 64)
	if err != nil || us < 0 {
		return -1
	}
	return us
}

// parseRetryAfter reads a Retry-After header leniently: RFC 9110
// allows delay-seconds or an HTTP-date; real servers also emit
// fractional seconds. Unparseable values mean no hint.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs * float64(time.Second))
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}
