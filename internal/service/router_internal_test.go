package service

import (
	"encoding/json"
	"testing"
)

func TestSpliceID(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"empty object", `{}`, true},
		{"empty with space", `  {  }  `, true},
		{"fields", `{"workload":"SCC"}`, true},
		{"big int preserved", `{"params":{"seed":9007199254740993}}`, true},
		{"explicit empty id overridden", `{"id":"","workload":"SCC"}`, true},
		{"nested trailing brace", `{"a":{"b":{}}}`, true},
		{"trailing whitespace", "{\"a\":1}\n\t ", true},
		{"array", `[1,2]`, false},
		{"scalar", `42`, false},
		{"invalid", `{"a":`, false},
		{"empty", ``, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, ok := spliceID([]byte(tc.body), "inj-1")
			if ok != tc.ok {
				t.Fatalf("spliceID(%q) ok = %v, want %v", tc.body, ok, tc.ok)
			}
			if !ok {
				return
			}
			if !json.Valid(out) {
				t.Fatalf("spliceID(%q) produced invalid JSON: %s", tc.body, out)
			}
			var probe struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(out, &probe); err != nil {
				t.Fatal(err)
			}
			if probe.ID != "inj-1" {
				t.Fatalf("spliceID(%q) id = %q (out %s)", tc.body, probe.ID, out)
			}
		})
	}
}

// TestSpliceIDPreservesBytes: everything except the injected field
// must pass through bit-for-bit (the map[string]any round-trip this
// replaced corrupted integers above 2^53).
func TestSpliceIDPreservesBytes(t *testing.T) {
	body := `{"workload":"SCC","params":{"seed":9007199254740993,"scale":1.00000000000000002}}`
	out, ok := spliceID([]byte(body), "x")
	if !ok {
		t.Fatal("spliceID refused a valid object")
	}
	want := `{"workload":"SCC","params":{"seed":9007199254740993,"scale":1.00000000000000002},"id":"x"}`
	if string(out) != want {
		t.Fatalf("spliceID output:\n  got  %s\n  want %s", out, want)
	}
}
