package service

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
)

// TestAdvanceResolvesReadsBeforeMissInserts pins the two-phase read
// resolution of applyStage. The scenario: a one-node cluster whose
// cache holds exactly two blocks, a stage that reads cached RDDs A
// (evicted earlier, so a miss) and B (still resident). Resolving reads
// against the stage-start state scores B a hit — the simulator's
// plan-time semantics. The old one-phase loop re-inserted A the moment
// it missed, which (under FIFO) evicted B before the stage read it,
// turning the hit into a second miss.
func TestAdvanceResolvesReadsBeforeMissInserts(t *testing.T) {
	g := dag.New()
	src := g.Source("src", 1, 4*cluster.MB)
	a := src.ReduceByKey("a_shuffle").Map("a").Cache()
	g.Count(a)
	b := a.ReduceByKey("b_shuffle").Map("b").Cache()
	g.Count(b)
	// The filler's insert fills the two-block cache past capacity and
	// evicts A (FIFO: oldest first), leaving {B, filler} resident.
	f := b.ReduceByKey("f_shuffle").Map("filler").Cache()
	g.Count(f)
	// The probe stage reads A (miss) and B (resident) in one frontier.
	g.Collect(a.ZipPartitions("probe", b))

	adv, err := NewAdvisor(g, AdvisorConfig{
		Nodes:      1,
		CacheBytes: 2 * 4 * cluster.MB,
		Policy:     experiments.PolicySpec{Kind: "FIFO"},
	})
	if err != nil {
		t.Fatal(err)
	}
	advice, err := Replay(adv)
	if err != nil {
		t.Fatal(err)
	}
	probe := advice[len(advice)-1]
	if probe.Counters.Hits != 1 || probe.Counters.Misses != 1 {
		t.Fatalf("probe stage counters = %+v; want 1 hit (B, resident at stage start) and 1 miss (A)",
			probe.Counters)
	}
	// A's re-insert still lands, evicting B after the read scored.
	wantEvict := block.ID{RDD: b.ID, Partition: 0}.String()
	found := false
	for _, d := range probe.Decisions {
		if d.Kind == "evict" && d.Block == wantEvict {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe stage decisions %v missing post-read eviction of %s", probe.Decisions, wantEvict)
	}
}
