package service

import (
	"sync"
	"time"
)

// PeerConfig wires one shard into its peer group. Shards gossip
// liveness over POST /v1/peers/heartbeat; a peer silent past Deadline
// is reported dead on GET /v1/peers, which routers and clients use to
// steer sessions to survivors.
type PeerConfig struct {
	// Self is this shard's advertised base URL (how peers and clients
	// reach it). Required when Peers is non-empty.
	Self string
	// Peers are the other shards' base URLs.
	Peers []string
	// Every is the heartbeat send period; 0 means DefaultHeartbeatEvery.
	Every time.Duration
	// Deadline is how long a peer may stay silent before it is
	// considered dead; 0 means DefaultPeerDeadline.
	Deadline time.Duration
}

// Peer liveness defaults.
const (
	DefaultHeartbeatEvery = 500 * time.Millisecond
	DefaultPeerDeadline   = 2 * time.Second
)

func (c PeerConfig) normalize() PeerConfig {
	if c.Every == 0 {
		c.Every = DefaultHeartbeatEvery
	}
	if c.Deadline == 0 {
		c.Deadline = DefaultPeerDeadline
	}
	return c
}

// HeartbeatRequest is one shard announcing liveness to a peer. View
// piggybacks the sender's full liveness table (advertised URL → unix
// microseconds the sender last heard from that shard), so liveness
// knowledge gossips transitively even when two shards cannot reach
// each other directly.
type HeartbeatRequest struct {
	From string           `json:"from"`
	Seq  int64            `json:"seq"`
	View map[string]int64 `json:"view,omitempty"`
}

// HeartbeatResponse carries the receiver's merged view back.
type HeartbeatResponse struct {
	From string           `json:"from"`
	View map[string]int64 `json:"view,omitempty"`
}

// PeerStatus is one row of the liveness table.
type PeerStatus struct {
	Addr string `json:"addr"`
	// LastSeenMs is how long ago the shard last heard from this peer,
	// in milliseconds; -1 means never.
	LastSeenMs int64 `json:"lastSeenMs"`
	Alive      bool  `json:"alive"`
}

// PeersStatus is the GET /v1/peers payload: this shard's view of the
// group.
type PeersStatus struct {
	Self       string       `json:"self"`
	DeadlineMs int64        `json:"deadlineMs"`
	Peers      []PeerStatus `json:"peers"`
}

// peerTable tracks when this shard last heard from each peer, either
// directly (a heartbeat arrived) or transitively (a gossiped view
// vouched for it).
type peerTable struct {
	cfg PeerConfig
	now func() time.Time // test hook

	mu       sync.Mutex
	lastSeen map[string]time.Time
	seq      int64
}

func newPeerTable(cfg PeerConfig) *peerTable {
	t := &peerTable{cfg: cfg.normalize(), now: time.Now, lastSeen: map[string]time.Time{}}
	for _, p := range cfg.Peers {
		t.lastSeen[p] = time.Time{} // known but never heard from
	}
	return t
}

// observe records a direct sign of life from addr.
func (t *peerTable) observe(addr string) {
	if addr == "" || addr == t.cfg.Self {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if now := t.now(); now.After(t.lastSeen[addr]) {
		t.lastSeen[addr] = now
	}
}

// merge folds a gossiped view (addr → unix micro) into the table,
// keeping the freshest evidence per peer.
func (t *peerTable) merge(view map[string]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, us := range view {
		if addr == t.cfg.Self {
			continue
		}
		when := time.UnixMicro(us)
		if when.After(t.lastSeen[addr]) {
			t.lastSeen[addr] = when
		}
	}
}

// view renders the table as gossip payload.
func (t *peerTable) view() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := make(map[string]int64, len(t.lastSeen)+1)
	for addr, when := range t.lastSeen {
		if !when.IsZero() {
			v[addr] = when.UnixMicro()
		}
	}
	// Vouch for ourselves: we are alive as of now.
	v[t.cfg.Self] = t.now().UnixMicro()
	return v
}

// nextSeq returns a monotonically increasing heartbeat sequence.
func (t *peerTable) nextSeq() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return t.seq
}

// status renders the liveness table for GET /v1/peers.
func (t *peerTable) status() PeersStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	st := PeersStatus{Self: t.cfg.Self, DeadlineMs: t.cfg.Deadline.Milliseconds()}
	for _, addr := range t.cfg.Peers {
		when := t.lastSeen[addr]
		row := PeerStatus{Addr: addr, LastSeenMs: -1}
		if !when.IsZero() {
			row.LastSeenMs = now.Sub(when).Milliseconds()
			row.Alive = now.Sub(when) <= t.cfg.Deadline
		}
		st.Peers = append(st.Peers, row)
	}
	return st
}
