package service

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// Session is one registered application: its advisor plus the
// bookkeeping the registry needs. All advisor access goes through the
// session's mutex; the registry's own lock is never held across an
// advisor call, so slow advice computations in one session never block
// another.
type Session struct {
	ID       string
	Workload string
	Created  time.Time
	// Restored marks a session rebuilt from a snapshot (server restart
	// or shard failover adoption) rather than created fresh.
	Restored bool

	mu       sync.Mutex
	advisor  *Advisor
	advances int64
	// opsSinceSnap counts mutations since the last snapshot write; the
	// server's snapshot cadence runs on it. Owned by the session lock.
	opsSinceSnap int
	// cleanup runs exactly once, under the session lock, after the
	// session leaves the registry (explicit delete, LRU bound, or idle
	// sweep). The server passes the obs-bus detach here so a retired
	// session's per-session series stop feeding the shared /metrics
	// aggregator.
	cleanup func()

	// retired is closed once the session has fully retired: it left the
	// registry, any in-flight advisor call finished, and cleanup ran.
	retired chan struct{}

	// lastUsed and lruElem are owned by the registry's lock.
	lastUsed time.Time
	lruElem  *list.Element
}

// WithAdvisor runs fn with the session's advisor under the session
// lock. The registry's eviction paths never interrupt a call in
// flight: a session dropped while fn runs finishes fn first and only
// then retires (see Retired).
func (s *Session) WithAdvisor(fn func(a *Advisor) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.advisor)
}

// Retired returns a channel closed once the session has fully retired
// after leaving the registry: any in-flight WithAdvisor call has
// completed and the session's cleanup (obs-bus detach) has run.
func (s *Session) Retired() <-chan struct{} { return s.retired }

// Advances returns how many stage advances the session has served.
func (s *Session) Advances() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advances
}

// RegistryConfig bounds the multi-tenant session registry.
type RegistryConfig struct {
	// MaxSessions is the LRU bound: creating a session beyond it evicts
	// the least-recently-used one. 0 means DefaultMaxSessions.
	MaxSessions int
	// IdleTimeout evicts sessions untouched for this long; 0 means
	// DefaultIdleTimeout, negative disables idle eviction.
	IdleTimeout time.Duration
}

// Registry defaults.
const (
	DefaultMaxSessions = 256
	DefaultIdleTimeout = 15 * time.Minute
)

func (c RegistryConfig) normalize() RegistryConfig {
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	return c
}

// Registry is the LRU-bounded, idle-evicting session table. It hands
// out *Session values; callers serialize advisor access through the
// session's own lock.
type Registry struct {
	cfg RegistryConfig
	now func() time.Time // test hook

	mu       sync.Mutex
	sessions map[string]*Session
	lru      *list.List // front = most recently used; values are *Session
	nextID   int64
	// Evicted counts sessions removed by the LRU bound or idle sweep
	// (not explicit deletes), for /healthz.
	evictedLRU  int64
	evictedIdle int64
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{
		cfg:      cfg.normalize(),
		now:      time.Now,
		sessions: map[string]*Session{},
		lru:      list.New(),
	}
}

// Create registers a new session around the advisor, evicting the
// least-recently-used session if the registry is full. cleanup (nil
// allowed) runs once, under the session lock, when the session later
// leaves the registry by any path — the caller's hook for detaching
// the session's observability from shared state.
func (r *Registry) Create(workloadName string, a *Advisor, cleanup func()) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		r.nextID++
		id := fmt.Sprintf("s%d", r.nextID)
		if _, taken := r.sessions[id]; taken {
			continue // a client-supplied ID squatted on the counter
		}
		return r.createLocked(id, workloadName, a, cleanup, false)
	}
}

// CreateWithID registers a session under a caller-chosen ID — the
// sharded deployment's contract, where the client (or router) picks
// IDs so that consistent-hash routing works before the session
// exists. restored marks sessions rebuilt from a snapshot. It fails
// if the ID is already live.
func (r *Registry) CreateWithID(id, workloadName string, a *Advisor, cleanup func(), restored bool) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.sessions[id]; taken {
		return nil, fmt.Errorf("service: session %q already exists", id)
	}
	return r.createLocked(id, workloadName, a, cleanup, restored), nil
}

func (r *Registry) createLocked(id, workloadName string, a *Advisor, cleanup func(), restored bool) *Session {
	s := &Session{
		ID:       id,
		Workload: workloadName,
		Created:  r.now(),
		Restored: restored,
		advisor:  a,
		cleanup:  cleanup,
		retired:  make(chan struct{}),
		lastUsed: r.now(),
	}
	// A restored advisor arrives with replayed history; seed the served
	// counter so /healthz and status agree with the pre-crash session.
	// (Registry fuzzing registers advisor-less sessions; tolerate nil.)
	if a != nil {
		s.advances = int64(len(a.History()))
	}
	for len(r.sessions) >= r.cfg.MaxSessions {
		oldest := r.lru.Back()
		if oldest == nil {
			break
		}
		r.dropLocked(oldest.Value.(*Session))
		r.evictedLRU++
	}
	r.sessions[s.ID] = s
	s.lruElem = r.lru.PushFront(s)
	return s
}

// Get returns the session and marks it most recently used.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, false
	}
	s.lastUsed = r.now()
	r.lru.MoveToFront(s.lruElem)
	return s, true
}

// Delete removes the session; it reports whether it existed.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return false
	}
	r.dropLocked(s)
	return true
}

// SweepIdle evicts every session idle longer than the configured
// timeout and returns how many it removed.
func (r *Registry) SweepIdle() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.IdleTimeout < 0 {
		return 0
	}
	cutoff := r.now().Add(-r.cfg.IdleTimeout)
	n := 0
	for e := r.lru.Back(); e != nil; {
		s := e.Value.(*Session)
		if !s.lastUsed.Before(cutoff) {
			break // LRU order: everything further front is newer
		}
		prev := e.Prev()
		r.dropLocked(s)
		r.evictedIdle++
		n++
		e = prev
	}
	return n
}

// Sessions returns every live session, in no particular order (the
// server's drain path snapshots them one by one under their own
// locks; the registry lock is released before any session is used).
func (r *Registry) Sessions() []*Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	return out
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Evicted returns the cumulative LRU- and idle-eviction counts.
func (r *Registry) Evicted() (lru, idle int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictedLRU, r.evictedIdle
}

// dropLocked unlinks the session from the registry's table and LRU
// list, then retires it asynchronously: retirement must take the
// session lock (to let an in-flight WithAdvisor call finish and to
// serialize the obs-bus detach against Emit), and the registry lock is
// never held across a session lock — a slow advice computation in the
// dropped session must not stall the whole registry.
func (r *Registry) dropLocked(s *Session) {
	delete(r.sessions, s.ID)
	r.lru.Remove(s.lruElem)
	s.lruElem = nil
	go s.retire()
}

// retire completes a dropped session's teardown: wait out any
// in-flight advisor call, run the cleanup hook, and signal Retired.
func (s *Session) retire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cleanup != nil {
		s.cleanup()
	}
	close(s.retired)
}
