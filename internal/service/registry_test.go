package service

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock lets registry tests advance time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testRegistry(cfg RegistryConfig) (*Registry, *fakeClock) {
	r := NewRegistry(cfg)
	c := newFakeClock()
	r.now = c.now
	return r, c
}

func TestRegistryLRUBound(t *testing.T) {
	r, _ := testRegistry(RegistryConfig{MaxSessions: 2, IdleTimeout: -1})
	s1 := r.Create("w", nil, nil)
	s2 := r.Create("w", nil, nil)
	if _, ok := r.Get(s1.ID); !ok { // touch s1: s2 becomes LRU
		t.Fatal("s1 missing")
	}
	s3 := r.Create("w", nil, nil)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.Get(s2.ID); ok {
		t.Error("s2 should have been LRU-evicted")
	}
	for _, id := range []string{s1.ID, s3.ID} {
		if _, ok := r.Get(id); !ok {
			t.Errorf("session %s should survive", id)
		}
	}
	if lru, _ := r.Evicted(); lru != 1 {
		t.Errorf("evictedLRU = %d, want 1", lru)
	}
}

func TestRegistryIdleSweep(t *testing.T) {
	r, clk := testRegistry(RegistryConfig{MaxSessions: 8, IdleTimeout: time.Minute})
	stale := r.Create("w", nil, nil)
	clk.advance(45 * time.Second)
	fresh := r.Create("w", nil, nil)
	clk.advance(30 * time.Second) // stale idle 75s, fresh idle 30s
	if n := r.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle = %d, want 1", n)
	}
	if _, ok := r.Get(stale.ID); ok {
		t.Error("stale session should be gone")
	}
	if _, ok := r.Get(fresh.ID); !ok {
		t.Error("fresh session should survive")
	}
	if _, idle := r.Evicted(); idle != 1 {
		t.Errorf("evictedIdle = %d, want 1", idle)
	}
}

func TestRegistrySweepDisabled(t *testing.T) {
	r, clk := testRegistry(RegistryConfig{MaxSessions: 8, IdleTimeout: -1})
	r.Create("w", nil, nil)
	clk.advance(24 * time.Hour)
	if n := r.SweepIdle(); n != 0 {
		t.Errorf("disabled sweep removed %d sessions", n)
	}
}

func TestRegistryDelete(t *testing.T) {
	r, _ := testRegistry(RegistryConfig{})
	s := r.Create("w", nil, nil)
	if !r.Delete(s.ID) {
		t.Fatal("Delete of live session returned false")
	}
	if r.Delete(s.ID) {
		t.Error("double Delete returned true")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after delete", r.Len())
	}
	// Explicit deletes are not counted as evictions.
	if lru, idle := r.Evicted(); lru != 0 || idle != 0 {
		t.Errorf("Evicted = (%d,%d), want (0,0)", lru, idle)
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	r, _ := testRegistry(RegistryConfig{MaxSessions: 4})
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		s := r.Create(fmt.Sprintf("w%d", i), nil, nil)
		if seen[s.ID] {
			t.Fatalf("duplicate session ID %s", s.ID)
		}
		seen[s.ID] = true
	}
}
