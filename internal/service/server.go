package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mrdspark/internal/obs"
	"mrdspark/internal/workload"
)

// ServerConfig tunes the advisory server's protection middleware.
type ServerConfig struct {
	Registry RegistryConfig
	// MaxInflight bounds concurrently served requests; excess requests
	// get 503 + Retry-After (the client library retries with backoff).
	// 0 means DefaultMaxInflight.
	MaxInflight int
	// RequestTimeout aborts requests that run longer; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SweepEvery is the idle-session janitor period; 0 means
	// DefaultSweepEvery.
	SweepEvery time.Duration
}

// Server middleware defaults.
const (
	DefaultMaxInflight    = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultSweepEvery     = time.Minute
)

func (c ServerConfig) normalize() ServerConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = DefaultSweepEvery
	}
	return c
}

// Server is the multi-tenant cache-advisory service: a session registry
// plus the HTTP API, with one shared observability pipeline (event bus
// -> concurrent-safe aggregator) behind the live /metrics endpoint.
type Server struct {
	cfg      ServerConfig
	registry *Registry
	agg      *obs.Aggregator
	started  time.Time
	inflight chan struct{}
	requests atomic.Int64
	stopJan  chan struct{}
	janDone  chan struct{}
}

// NewServer assembles a server. Call Close when done to stop the idle
// janitor.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.Registry),
		agg:      obs.NewAggregator(),
		started:  time.Now(),
		inflight: make(chan struct{}, cfg.MaxInflight),
		stopJan:  make(chan struct{}),
		janDone:  make(chan struct{}),
	}
	go s.janitor()
	return s
}

// Close stops the idle-session janitor.
func (s *Server) Close() {
	close(s.stopJan)
	<-s.janDone
}

// Registry exposes the session table (tests, health).
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) janitor() {
	defer close(s.janDone)
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopJan:
			return
		case <-t.C:
			s.registry.SweepIdle()
		}
	}
}

// Wire types of the /v1 JSON API.

// CreateSessionRequest registers an application. The server builds the
// workload's DAG itself from (Workload, Params) — generation is a pure
// function of the pair, which is what lets an in-process oracle
// reproduce the server's decisions bit for bit.
type CreateSessionRequest struct {
	// Workload is a benchmark name (workload.Names()).
	Workload string `json:"workload"`
	// Params tunes the generator (iterations, partitions, seed...).
	Params workload.Params `json:"params,omitempty"`
	// Advisor shapes the model cluster and selects the policy.
	Advisor AdvisorConfig `json:"advisor,omitempty"`
}

// CreateSessionResponse describes the registered session.
type CreateSessionResponse struct {
	ID         string `json:"id"`
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	Nodes      int    `json:"nodes"`
	CacheBytes int64  `json:"cacheBytes"`
	Jobs       int    `json:"jobs"`
	Stages     int    `json:"stages"`
	CachedRDDs int    `json:"cachedRdds"`
}

// SubmitJobRequest feeds one job DAG to the session's profiler
// (refdist.Profile.AddJob under MRD). Jobs must arrive in ID order.
type SubmitJobRequest struct {
	Job int `json:"job"`
}

// SubmitJobResponse acknowledges the submission.
type SubmitJobResponse struct {
	Job     int `json:"job"`
	NextJob int `json:"nextJob"`
}

// AdvanceRequest moves the session to a stage boundary.
type AdvanceRequest struct {
	Stage int `json:"stage"`
}

// Healthz is the health endpoint's payload.
type Healthz struct {
	Status      string `json:"status"`
	Sessions    int    `json:"sessions"`
	UptimeSec   int64  `json:"uptimeSec"`
	Requests    int64  `json:"requests"`
	EvictedLRU  int64  `json:"evictedLru"`
	EvictedIdle int64  `json:"evictedIdle"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the server's full HTTP handler with the protection
// middleware (bounded concurrency, request timeout) applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/jobs", s.handleSubmitJob)
	mux.HandleFunc("POST /v1/sessions/{id}/stage", s.handleAdvance)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	var h http.Handler = mux
	h = s.limitInflight(h)
	h = http.TimeoutHandler(h, s.cfg.RequestTimeout, "request timed out")
	return h
}

// limitInflight is the bounded-concurrency middleware: requests beyond
// the cap are shed immediately with 503 so a traffic spike degrades to
// client-side retries instead of queue collapse.
func (s *Server) limitInflight(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server at capacity"})
		}
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	spec, err := workload.Build(req.Workload, req.Params)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	adv, err := NewAdvisor(spec.Graph, req.Advisor)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// Each session gets its own bus — SetStage mutates bus state, so a
	// shared bus would race across concurrent sessions — but every bus
	// feeds the one concurrency-safe aggregator behind /metrics.
	bus := obs.New()
	bus.SetClock(func() int64 { return time.Since(s.started).Microseconds() })
	detach := s.agg.Attach(bus)
	adv.AttachBus(bus)
	// The detach runs when the session leaves the registry (delete, LRU
	// bound, idle sweep), under the session lock, so a retired session
	// stops feeding the shared aggregator the moment its last in-flight
	// request completes.
	sess := s.registry.Create(spec.Name, adv, detach)
	cfg := adv.Config()
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID:         sess.ID,
		Workload:   spec.Name,
		Policy:     adv.PolicyName(),
		Nodes:      cfg.Nodes,
		CacheBytes: cfg.CacheBytes,
		Jobs:       len(spec.Graph.Jobs),
		Stages:     spec.Graph.ActiveStages(),
		CachedRDDs: len(spec.Graph.CachedRDDs()),
	})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SubmitJobRequest
	if !readJSON(w, r, &req) {
		return
	}
	var next int
	err := sess.WithAdvisor(func(a *Advisor) error {
		if err := a.SubmitJob(req.Job); err != nil {
			return err
		}
		next = a.NextJob()
		return nil
	})
	if err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SubmitJobResponse{Job: req.Job, NextJob: next})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req AdvanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	var advice Advice
	err := sess.WithAdvisor(func(a *Advisor) error {
		var err error
		advice, err = a.Advance(req.Stage)
		if err == nil {
			sess.advances++
		}
		return err
	})
	if err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, advice)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Delete(id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no session %q", id)})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	lru, idle := s.registry.Evicted()
	writeJSON(w, http.StatusOK, Healthz{
		Status:      "ok",
		Sessions:    s.registry.Len(),
		UptimeSec:   int64(time.Since(s.started).Seconds()),
		Requests:    s.requests.Load(),
		EvictedLRU:  lru,
		EvictedIdle: idle,
	})
}

// handleMetrics renders the live Prometheus exposition from a detached
// snapshot of the shared aggregator, so scrapes never race sessions
// emitting advice events.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.agg.Snapshot()
	if err := obs.WritePrometheus(w, snap); err != nil {
		// Headers are gone; nothing recoverable to do but note it.
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
	fmt.Fprintf(w, "# HELP mrdserver_sessions Live advisory sessions.\n# TYPE mrdserver_sessions gauge\nmrdserver_sessions %d\n", s.registry.Len())
	fmt.Fprintf(w, "# HELP mrdserver_requests_total Requests received.\n# TYPE mrdserver_requests_total counter\nmrdserver_requests_total %d\n", s.requests.Load())
}

// session resolves the {id} path segment; a miss writes 404.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.registry.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no session %q", id)})
		return nil, false
	}
	return sess, true
}

// readJSON decodes the request body, rejecting unknown fields; a
// failure writes 400 and returns false.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		msg := err.Error()
		if errors.Is(err, errBodyTooLarge) {
			msg = "request body too large"
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + strings.TrimSpace(msg)})
		return false
	}
	return true
}

var errBodyTooLarge = errors.New("http: request body too large")

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
