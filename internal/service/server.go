package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrdspark/internal/obs"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/workload"
)

// ServerConfig tunes the advisory server's protection middleware,
// snapshot persistence and peer liveness.
type ServerConfig struct {
	Registry RegistryConfig
	// MaxInflight bounds concurrently served requests; excess requests
	// get 503 + Retry-After (the client library retries with backoff).
	// 0 means DefaultMaxInflight.
	MaxInflight int
	// RequestTimeout aborts requests that run longer; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SweepEvery is the idle-session janitor period; 0 means
	// DefaultSweepEvery.
	SweepEvery time.Duration
	// QueueGrace, when positive, lets a request at capacity wait up to
	// this long for an inflight slot (recorded as a queue-wait span)
	// before being shed. 0 preserves the immediate-shed behavior.
	QueueGrace time.Duration
	// Snapshots configures session persistence; a nil Store disables
	// both snapshotting and restore-on-demand.
	Snapshots SnapshotPolicy
	// Peers wires the server into a shard group for liveness gossip.
	Peers PeerConfig
	// Trace attaches the span recorder and slow-request logging.
	Trace TraceConfig
}

// SnapshotPolicy is the server's session-persistence cadence.
type SnapshotPolicy struct {
	// Store receives snapshots; nil disables persistence.
	Store SnapshotStore
	// EveryOps writes a snapshot after every N session mutations;
	// 0 means DefaultSnapshotEveryOps. 1 persists every acknowledged
	// operation, which is what gives shard failover exactly-resumed
	// sessions; larger values trade durability lag for fewer writes
	// (the sharded client's op replay covers the gap).
	EveryOps int
}

// Server middleware defaults.
const (
	DefaultMaxInflight      = 64
	DefaultRequestTimeout   = 30 * time.Second
	DefaultSweepEvery       = time.Minute
	DefaultSnapshotEveryOps = 1
)

func (c ServerConfig) normalize() ServerConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = DefaultSweepEvery
	}
	if c.Snapshots.EveryOps == 0 {
		c.Snapshots.EveryOps = DefaultSnapshotEveryOps
	}
	c.Peers = c.Peers.normalize()
	return c
}

// Server is the multi-tenant cache-advisory service: a session registry
// plus the HTTP API, with one shared observability pipeline (event bus
// -> concurrent-safe aggregator) behind the live /metrics endpoint.
type Server struct {
	cfg      ServerConfig
	registry *Registry
	agg      *obs.Aggregator
	started  time.Time
	inflight chan struct{}
	requests atomic.Int64
	stopJan  chan struct{}
	janDone  chan struct{}

	// HTTP-tier telemetry: the span recorder (nil when tracing is off)
	// and the per-route latency/shed/slow aggregates behind /metrics.
	tracer *trace.Tracer
	http   *httpStats

	// Snapshot persistence and failover adoption.
	snapStore    SnapshotStore
	restoreMu    sync.Mutex // serializes restore-on-demand per server
	snapsWritten atomic.Int64
	snapErrors   atomic.Int64
	restored     atomic.Int64
	drainSnaps   atomic.Int64

	// Peer liveness.
	peers    *peerTable
	hbClient *http.Client
	stopHB   chan struct{}
	hbDone   chan struct{}

	// Binary wire-protocol tier (frameserver.go): the session epoch
	// clients use to detect restarts, the advertised frame address, and
	// the wire-side counters behind /metrics.
	epoch     uint32
	frameAddr atomic.Value // string
	wire      wireStats

	// closeOnce makes Close idempotent: failover tests (and belt-and-
	// braces shutdown paths) may close a killed shard again.
	closeOnce sync.Once
}

// NewServer assembles a server. Call Close when done to stop the idle
// janitor and the peer heartbeater.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:       cfg,
		registry:  NewRegistry(cfg.Registry),
		agg:       obs.NewAggregator(),
		started:   time.Now(),
		inflight:  make(chan struct{}, cfg.MaxInflight),
		stopJan:   make(chan struct{}),
		janDone:   make(chan struct{}),
		tracer:    cfg.Trace.Tracer,
		http:      newHTTPStats(),
		snapStore: cfg.Snapshots.Store,
		peers:     newPeerTable(cfg.Peers),
		hbClient:  &http.Client{Timeout: time.Second},
		stopHB:    make(chan struct{}),
		hbDone:    make(chan struct{}),
	}
	// The session epoch identifies this server incarnation on the wire
	// protocol: a client that reconnects and sees a new epoch knows the
	// in-memory session table was rebuilt (restart or failover) and that
	// idempotent replay is what reconciles its state.
	s.epoch = uint32(s.started.Unix())
	s.frameAddr.Store("")
	go s.janitor()
	if len(cfg.Peers.Peers) > 0 {
		go s.heartbeater()
	} else {
		close(s.hbDone)
	}
	return s
}

// Close stops the idle-session janitor and the peer heartbeater. It
// is safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stopJan)
		<-s.janDone
		close(s.stopHB)
		<-s.hbDone
	})
}

// Registry exposes the session table (tests, health).
func (s *Server) Registry() *Registry { return s.registry }

// Tracer exposes the span recorder (nil when tracing is disabled), for
// drain-time exports and the debug listener.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

func (s *Server) janitor() {
	defer close(s.janDone)
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopJan:
			return
		case <-t.C:
			s.registry.SweepIdle()
		}
	}
}

// Wire types of the /v1 JSON API.

// CreateSessionRequest registers an application. The server builds the
// workload's DAG itself from (Workload, Params) — generation is a pure
// function of the pair, which is what lets an in-process oracle
// reproduce the server's decisions bit for bit.
type CreateSessionRequest struct {
	// Workload is a benchmark name (workload.Names()).
	Workload string `json:"workload"`
	// Params tunes the generator (iterations, partitions, seed...).
	Params workload.Params `json:"params,omitempty"`
	// Advisor shapes the model cluster and selects the policy.
	Advisor AdvisorConfig `json:"advisor,omitempty"`
	// ID, when set, is the client-chosen session ID (required for
	// consistent-hash shard routing, where the ID must determine the
	// owning shard before the session exists). Create is idempotent
	// per ID: re-creating a live or snapshotted session returns the
	// existing one instead of failing, so a client retrying across a
	// failover handover converges. Empty means the server assigns one.
	ID string `json:"id,omitempty"`
}

// CreateSessionResponse describes the registered session.
type CreateSessionResponse struct {
	ID         string `json:"id"`
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	Nodes      int    `json:"nodes"`
	CacheBytes int64  `json:"cacheBytes"`
	Jobs       int    `json:"jobs"`
	Stages     int    `json:"stages"`
	CachedRDDs int    `json:"cachedRdds"`
	// Existing marks an idempotent re-create: the session was already
	// live (or restorable from a snapshot) under this ID.
	Existing bool `json:"existing,omitempty"`
}

// SessionStatus is the GET /v1/sessions/{id} payload: the session's
// replay cursor, which a re-routing client uses to fast-forward after
// a failover handover.
type SessionStatus struct {
	ID        string `json:"id"`
	Workload  string `json:"workload"`
	Policy    string `json:"policy"`
	NextJob   int    `json:"nextJob"`
	LastStage int    `json:"lastStage"`
	Advances  int    `json:"advances"`
	// Restored marks a session rebuilt from a snapshot on this server.
	Restored bool `json:"restored,omitempty"`
}

// SubmitJobRequest feeds one job DAG to the session's profiler
// (refdist.Profile.AddJob under MRD). Jobs must arrive in ID order.
type SubmitJobRequest struct {
	Job int `json:"job"`
}

// SubmitJobResponse acknowledges the submission.
type SubmitJobResponse struct {
	Job     int `json:"job"`
	NextJob int `json:"nextJob"`
	// Replayed marks an idempotent re-submission of an
	// already-submitted job (a retry across a failover handover).
	Replayed bool `json:"replayed,omitempty"`
}

// AdvanceRequest moves the session to a stage boundary.
type AdvanceRequest struct {
	Stage int `json:"stage"`
}

// BatchRequest submits a run of schedule steps — typically one job
// submission followed by that job's stage advances — in a single call,
// replacing a round trip per step. Steps execute in order; the first
// failure aborts the rest. Every step is individually idempotent, so
// retrying a whole batch after a timeout or failover converges by
// replay exactly like retrying single calls does.
type BatchRequest struct {
	Steps []Step `json:"steps"`
}

// BatchResponse carries every advice the batch produced, in step
// order. (The binary transport streams them as individual frames
// instead of buffering; this JSON shape is the same data at rest.)
type BatchResponse struct {
	Jobs    int      `json:"jobs"`
	Advices []Advice `json:"advices"`
}

// maxBatchSteps bounds one batch call; a schedule larger than this is
// split by the client. Keeps worst-case response sizes (and the time a
// batch holds the session lock) bounded.
const maxBatchSteps = 4096

// Healthz is the health endpoint's payload.
type Healthz struct {
	Status      string `json:"status"`
	Sessions    int    `json:"sessions"`
	UptimeSec   int64  `json:"uptimeSec"`
	Requests    int64  `json:"requests"`
	EvictedLRU  int64  `json:"evictedLru"`
	EvictedIdle int64  `json:"evictedIdle"`
	// FrameAddr is the binary wire-protocol listener's address, empty
	// when the wire transport is disabled. Clients discover the frame
	// endpoint from here so -bin needs no extra configuration.
	FrameAddr string `json:"frameAddr,omitempty"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the server's full HTTP handler with the protection
// middleware (bounded concurrency, request timeout) applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.route("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", s.route("status", s.handleGetSession))
	mux.HandleFunc("POST /v1/sessions/{id}/jobs", s.route("submit_job", s.handleSubmitJob))
	mux.HandleFunc("POST /v1/sessions/{id}/stage", s.route("advance", s.handleAdvance))
	mux.HandleFunc("POST /v1/sessions/{id}/batch", s.route("batch", s.handleBatch))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/peers/heartbeat", s.route("heartbeat", s.handleHeartbeat))
	mux.HandleFunc("GET /v1/peers", s.route("peers", s.handlePeers))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	var h http.Handler = mux
	h = s.limitInflight(h)
	h = timeoutJSON(h, s.cfg.RequestTimeout)
	return h
}

// timeoutBody is the apiError JSON a timed-out request receives —
// pre-marshaled, since it is written from inside http.TimeoutHandler
// where no encoder runs.
const timeoutBody = `{"error":"request timed out"}` + "\n"

// timeoutJSON wraps http.TimeoutHandler so its 503 speaks the API's
// JSON error shape and carries Retry-After — without it, timeouts were
// the one error path emitting text/plain with no retry hint. The hint
// matters beyond politeness: a timeout can fire AFTER the handler
// mutated session state, so the retrying client converges only because
// every mutation is idempotent-replayable; the Retry-After keeps that
// retry on the same schedule as a shed.
func timeoutJSON(next http.Handler, d time.Duration) http.Handler {
	inner := http.TimeoutHandler(next, d, timeoutBody)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(&timeoutRewriter{ResponseWriter: w}, r)
	})
}

// timeoutRewriter distinguishes the TimeoutHandler's own 503 from an
// inner handler's (the shed path): inner responses always set
// Content-Type before WriteHeader, the TimeoutHandler's timeout write
// never does. Only the bare one gets the JSON headers stamped on.
type timeoutRewriter struct {
	http.ResponseWriter
}

func (t *timeoutRewriter) WriteHeader(status int) {
	if status == http.StatusServiceUnavailable && t.Header().Get("Content-Type") == "" {
		t.Header().Set("Content-Type", "application/json")
		t.Header().Set("Retry-After", "1")
	}
	t.ResponseWriter.WriteHeader(status)
}

// route tags the request with its matched route name (the histogram
// and slow-log label); the inflight middleware reads it back after
// serving. Requests that never match a route — mux 404/405 — keep the
// "other" label the middleware defaults to.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		setRoute(w, name)
		h(w, r)
	}
}

// limitInflight is the bounded-concurrency middleware and the shard's
// telemetry root: it opens the request's shard-handler span (continuing
// an incoming traceparent), echoes the span context on the response,
// and attributes the finished request to its route's latency histogram.
// Requests beyond the cap are shed with 503 — immediately by default,
// or after waiting up to QueueGrace for a slot (recorded as a
// queue-wait span) — so a traffic spike degrades to client-side
// retries instead of queue collapse.
func (s *Server) limitInflight(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		// The root span starts before slot acquisition so queue wait is
		// inside it; a disabled tracer makes Start a nil compare.
		parent, _ := trace.Parse(r.Header.Get(trace.Header))
		root := s.tracer.Start(parent, "shard-handler")

		acquired := false
		select {
		case s.inflight <- struct{}{}:
			acquired = true
		default:
			if s.cfg.QueueGrace > 0 {
				qs := s.tracer.Start(root.Context(), "queue-wait")
				timer := time.NewTimer(s.cfg.QueueGrace)
				start := time.Now()
				select {
				case s.inflight <- struct{}{}:
					acquired = true
					qs.EndWith(fmt.Sprintf("waited=%dus", time.Since(start).Microseconds()))
				case <-timer.C:
					qs.EndWith("gave-up")
				}
				timer.Stop()
				s.http.add(&s.http.queueWaits, 1)
			}
		}
		if !acquired {
			s.http.add(&s.http.shed, 1)
			root.EndWith("shed")
			w.Header().Set("Retry-After", "1")
			if root.Recording() {
				w.Header().Set(trace.Header, root.Context().Traceparent())
			}
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server at capacity"})
			return
		}
		defer func() { <-s.inflight }()

		s.http.add(&s.http.inflight, 1)
		defer s.http.add(&s.http.inflight, -1)

		sw := &statusWriter{ResponseWriter: w, start: time.Now()}
		if root.Recording() {
			sw.trace = root.Context()
			r = r.WithContext(trace.ContextWith(r.Context(), root.Context()))
		}
		next.ServeHTTP(sw, r)

		dur := time.Since(sw.start)
		route := sw.route
		if route == "" {
			route = "other"
		}
		s.http.observe(route, dur)
		if slow := s.cfg.Trace.SlowRequest; slow > 0 && dur >= slow {
			s.http.add(&s.http.slow, 1)
			s.cfg.Trace.logf("slow request: %s %s route=%s status=%d dur=%s trace=%s",
				r.Method, r.URL.Path, route, sw.status, dur, root.Context().Trace)
		}
		root.EndWith(fmt.Sprintf("route=%s status=%d", route, sw.status))
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, status, err := s.createSession(r.Context(), req)
	if err != nil {
		writeJSON(w, status, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, status, resp)
}

// createSession is the transport-independent create path, shared by
// the JSON handler and the frame server. It returns the response and
// the HTTP-equivalent status; a non-nil error's message is the API
// error body.
func (s *Server) createSession(ctx context.Context, req CreateSessionRequest) (CreateSessionResponse, int, error) {
	if req.ID != "" {
		if !ValidSessionID(req.ID) {
			return CreateSessionResponse{}, http.StatusBadRequest,
				fmt.Errorf("bad session ID %q (want %s)", req.ID, sessionIDPattern)
		}
		// Idempotent create: a live session under this ID — or one
		// restorable from the snapshot store — is returned instead of
		// conflicting, so a client retrying across a failover handover
		// converges on the surviving state.
		if sess, ok := s.registry.Get(req.ID); ok {
			return s.describeSession(sess), http.StatusOK, nil
		}
		if sess, err := s.restoreSession(ctx, req.ID); err == nil {
			return s.describeSession(sess), http.StatusOK, nil
		} else if !errors.Is(err, ErrNoSnapshot) {
			return CreateSessionResponse{}, http.StatusInternalServerError, err
		}
	}
	spec, err := workload.Build(req.Workload, req.Params)
	if err != nil {
		return CreateSessionResponse{}, http.StatusBadRequest, err
	}
	adv, err := NewAdvisor(spec.Graph, req.Advisor)
	if err != nil {
		return CreateSessionResponse{}, http.StatusBadRequest, err
	}
	adv.SetOrigin(req.Workload, req.Params)
	// Each session gets its own bus — SetStage mutates bus state, so a
	// shared bus would race across concurrent sessions — but every bus
	// feeds the one concurrency-safe aggregator behind /metrics.
	bus := obs.New()
	bus.SetClock(func() int64 { return time.Since(s.started).Microseconds() })
	detach := s.agg.Attach(bus)
	adv.AttachBus(bus)
	// The detach runs when the session leaves the registry (delete, LRU
	// bound, idle sweep), under the session lock, so a retired session
	// stops feeding the shared aggregator the moment its last in-flight
	// request completes.
	var sess *Session
	if req.ID != "" {
		sess, err = s.registry.CreateWithID(req.ID, spec.Name, adv, detach, false)
		if err != nil { // lost a create race for the same ID
			detach()
			if existing, ok := s.registry.Get(req.ID); ok {
				return s.describeSession(existing), http.StatusOK, nil
			}
			return CreateSessionResponse{}, http.StatusConflict, err
		}
	} else {
		sess = s.registry.Create(spec.Name, adv, detach)
	}
	resp := s.describeSession(sess)
	resp.Existing = false
	return resp, http.StatusCreated, nil
}

// describeSession renders the create-response view of a session.
func (s *Server) describeSession(sess *Session) CreateSessionResponse {
	var resp CreateSessionResponse
	_ = sess.WithAdvisor(func(a *Advisor) error {
		cfg := a.Config()
		g := a.Graph()
		resp = CreateSessionResponse{
			ID:         sess.ID,
			Workload:   sess.Workload,
			Policy:     a.PolicyName(),
			Nodes:      cfg.Nodes,
			CacheBytes: cfg.CacheBytes,
			Jobs:       len(g.Jobs),
			Stages:     g.ActiveStages(),
			CachedRDDs: len(g.CachedRDDs()),
			Existing:   true,
		}
		return nil
	})
	return resp
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SubmitJobRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, computeUs, err := s.submitJob(r.Context(), sess, req.Job)
	w.Header().Set(HeaderComputeUs, strconv.FormatInt(computeUs, 10))
	if err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitJob is the transport-independent job-submission core. Errors
// map to HTTP 409 (the session exists but rejected the op) on every
// transport.
func (s *Server) submitJob(ctx context.Context, sess *Session, job int) (SubmitJobResponse, int64, error) {
	var resp SubmitJobResponse
	sp := s.tracer.Start(trace.FromContext(ctx), "advisor-compute")
	computeStart := time.Now()
	err := sess.WithAdvisor(func(a *Advisor) error {
		// Idempotent replay: a job the session has already consumed is
		// acknowledged again rather than conflicting, so post-failover
		// op replay by the sharded client converges.
		if job >= 0 && job < a.NextJob() {
			resp = SubmitJobResponse{Job: job, NextJob: a.NextJob(), Replayed: true}
			return nil
		}
		if err := a.SubmitJob(job); err != nil {
			return err
		}
		resp = SubmitJobResponse{Job: job, NextJob: a.NextJob()}
		s.noteMutation(sess, a)
		return nil
	})
	computeUs := time.Since(computeStart).Microseconds()
	if err != nil {
		sp.EndWith("error: " + err.Error())
		return SubmitJobResponse{}, computeUs, err
	}
	sp.EndWith(fmt.Sprintf("job=%d replayed=%t", resp.Job, resp.Replayed))
	return resp, computeUs, nil
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req AdvanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	advice, computeUs, err := s.advance(r.Context(), sess, req.Stage)
	w.Header().Set(HeaderComputeUs, strconv.FormatInt(computeUs, 10))
	if err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, advice)
}

// advance is the transport-independent stage-advance core; errors map
// to HTTP 409 on every transport.
func (s *Server) advance(ctx context.Context, sess *Session, stage int) (Advice, int64, error) {
	var advice Advice
	// The policy-compute span is the one the waterfall reads the
	// decision off: its annotation is the advice Fingerprint, the same
	// canonical string the parity oracle compares.
	sp := s.tracer.Start(trace.FromContext(ctx), "advisor-compute")
	computeStart := time.Now()
	err := sess.WithAdvisor(func(a *Advisor) error {
		// Idempotent replay: an already-advanced stage is served its
		// recorded advice — byte-identical to the original response —
		// so a retry that lands after the original advance (or after a
		// failover handover) cannot fork the session.
		if recorded, ok := a.AdviceFor(stage); ok {
			advice = recorded
			advice.Replayed = true
			return nil
		}
		var err error
		advice, err = a.Advance(stage)
		if err == nil {
			sess.advances++
			s.noteMutation(sess, a)
		}
		return err
	})
	computeUs := time.Since(computeStart).Microseconds()
	if err != nil {
		sp.EndWith("error: " + err.Error())
		return Advice{}, computeUs, err
	}
	sp.EndWith(advice.Fingerprint())
	return advice, computeUs, nil
}

// handleBatch runs a whole run of schedule steps in one request and
// returns every advice. The wire transport's OpBatch streams the same
// execution as individual advice frames; here the advices buffer into
// one JSON response.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp := BatchResponse{Advices: make([]Advice, 0, len(req.Steps))}
	computeUs, status, err := s.runBatch(r.Context(), sess, req.Steps, func(a Advice) error {
		resp.Advices = append(resp.Advices, a)
		return nil
	}, &resp.Jobs)
	w.Header().Set(HeaderComputeUs, strconv.FormatInt(computeUs, 10))
	if err != nil {
		writeJSON(w, status, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runBatch executes schedule steps in order against one session,
// handing each advice to emit as it is produced (the frame server
// streams them; the JSON handler buffers). The first failing step
// aborts the batch — steps already applied stay applied, which is safe
// because a batch retry replays them idempotently. An emit error also
// aborts (the connection is gone; nothing to report to).
func (s *Server) runBatch(ctx context.Context, sess *Session, steps []Step, emit func(Advice) error, jobs *int) (int64, int, error) {
	if len(steps) > maxBatchSteps {
		return 0, http.StatusBadRequest, fmt.Errorf("batch of %d steps exceeds %d", len(steps), maxBatchSteps)
	}
	var computeUs int64
	for i, st := range steps {
		if st.Stage < 0 {
			_, us, err := s.submitJob(ctx, sess, st.Job)
			computeUs += us
			if err != nil {
				return computeUs, http.StatusConflict, fmt.Errorf("batch step %d (job %d): %w", i, st.Job, err)
			}
			*jobs++
			continue
		}
		advice, us, err := s.advance(ctx, sess, st.Stage)
		computeUs += us
		if err != nil {
			return computeUs, http.StatusConflict, fmt.Errorf("batch step %d (stage %d): %w", i, st.Stage, err)
		}
		if err := emit(advice); err != nil {
			return computeUs, http.StatusInternalServerError, err
		}
	}
	return computeUs, http.StatusOK, nil
}

// handleGetSession reports the session's replay cursor (and restores
// it on demand, like every session-scoped handler).
func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.sessionStatus(sess))
}

// sessionStatus renders the session's replay cursor.
func (s *Server) sessionStatus(sess *Session) SessionStatus {
	var st SessionStatus
	_ = sess.WithAdvisor(func(a *Advisor) error {
		st = SessionStatus{
			ID:        sess.ID,
			Workload:  sess.Workload,
			Policy:    a.PolicyName(),
			NextJob:   a.NextJob(),
			LastStage: a.LastStage(),
			Advances:  len(a.History()),
			Restored:  sess.Restored,
		}
		return nil
	})
	return st
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.deleteSession(r.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no session %q", r.PathValue("id"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// deleteSession tears a session down everywhere it exists, reporting
// whether anything was actually deleted.
func (s *Server) deleteSession(id string) bool {
	deleted := s.registry.Delete(id)
	// An explicit delete also retires the persisted snapshot: the
	// session is gone on purpose, not lost. The existence probe is Has,
	// not Load — deciding whether to delete must not deserialize a full
	// op-log snapshot.
	if s.snapStore != nil {
		if ok, err := s.snapStore.Has(id); err == nil && ok {
			_ = s.snapStore.Delete(id)
			deleted = true
		}
	}
	return deleted
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	lru, idle := s.registry.Evicted()
	writeJSON(w, http.StatusOK, Healthz{
		Status:      "ok",
		Sessions:    s.registry.Len(),
		UptimeSec:   int64(time.Since(s.started).Seconds()),
		Requests:    s.requests.Load(),
		EvictedLRU:  lru,
		EvictedIdle: idle,
		FrameAddr:   s.FrameAddr(),
	})
}

// handleMetrics renders the live Prometheus exposition from a detached
// snapshot of the shared aggregator, so scrapes never race sessions
// emitting advice events.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.agg.Snapshot()
	if err := obs.WritePrometheus(w, snap); err != nil {
		// Headers are gone; nothing recoverable to do but note it.
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
	fmt.Fprintf(w, "# HELP mrdserver_sessions Live advisory sessions.\n# TYPE mrdserver_sessions gauge\nmrdserver_sessions %d\n", s.registry.Len())
	fmt.Fprintf(w, "# HELP mrdserver_requests_total Requests received.\n# TYPE mrdserver_requests_total counter\nmrdserver_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP mrdserver_snapshots_written_total Session snapshots persisted.\n# TYPE mrdserver_snapshots_written_total counter\nmrdserver_snapshots_written_total %d\n", s.snapsWritten.Load())
	fmt.Fprintf(w, "# HELP mrdserver_snapshot_errors_total Snapshot writes that failed.\n# TYPE mrdserver_snapshot_errors_total counter\nmrdserver_snapshot_errors_total %d\n", s.snapErrors.Load())
	fmt.Fprintf(w, "# HELP mrdserver_sessions_restored_total Sessions rebuilt from snapshots (restart or failover adoption).\n# TYPE mrdserver_sessions_restored_total counter\nmrdserver_sessions_restored_total %d\n", s.restored.Load())
	fmt.Fprintf(w, "# HELP mrdserver_drain_snapshots_written Sessions snapshotted by the last graceful drain.\n# TYPE mrdserver_drain_snapshots_written gauge\nmrdserver_drain_snapshots_written %d\n", s.drainSnaps.Load())
	alive := 0
	for _, p := range s.peers.status().Peers {
		if p.Alive {
			alive++
		}
	}
	fmt.Fprintf(w, "# HELP mrdserver_peers_alive Peer shards currently within their liveness deadline.\n# TYPE mrdserver_peers_alive gauge\nmrdserver_peers_alive %d\n", alive)
	bw := &promWriter{w: w}
	s.http.writePrometheus(bw)
	s.wire.writePrometheus(w)
	total, dropped := s.tracer.Stats()
	fmt.Fprintf(w, "# HELP mrdserver_trace_spans_total Spans recorded by the tracer.\n# TYPE mrdserver_trace_spans_total counter\nmrdserver_trace_spans_total %d\n", total)
	fmt.Fprintf(w, "# HELP mrdserver_trace_spans_dropped_total Spans the trace ring overwrote (oldest-first).\n# TYPE mrdserver_trace_spans_dropped_total counter\nmrdserver_trace_spans_dropped_total %d\n", dropped)
}

// session resolves the {id} path segment, restoring the session from
// the snapshot store on demand — the failover adoption path: when a
// shard dies, its sessions' next requests land here on the successor,
// which rebuilds them from the shared store. A miss writes 404.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	sess, status, err := s.lookupSession(r.Context(), r.PathValue("id"))
	if err != nil {
		writeJSON(w, status, apiError{Error: err.Error()})
		return nil, false
	}
	return sess, true
}

// lookupSession is the transport-independent session resolver (the
// frame server shares it); a miss returns 404, a failed restore 500.
func (s *Server) lookupSession(ctx context.Context, id string) (*Session, int, error) {
	sess, ok := s.registry.Get(id)
	if ok {
		return sess, http.StatusOK, nil
	}
	sess, err := s.restoreSession(ctx, id)
	if err == nil {
		return sess, http.StatusOK, nil
	}
	if errors.Is(err, ErrNoSnapshot) {
		return nil, http.StatusNotFound, fmt.Errorf("no session %q", id)
	}
	return nil, http.StatusInternalServerError, fmt.Errorf("restore session %q: %w", id, err)
}

// restoreSession adopts a snapshotted session into this server's
// registry: rebuild the advisor by op-log replay, wire it to the
// shared metrics aggregator exactly like a fresh session, and publish
// it behind the same per-session lock discipline. Concurrent requests
// for the same orphaned session are serialized; the losers find the
// session already registered.
func (s *Server) restoreSession(ctx context.Context, id string) (*Session, error) {
	if s.snapStore == nil {
		return nil, ErrNoSnapshot
	}
	sp := s.tracer.Start(trace.FromContext(ctx), "snapshot-restore")
	s.restoreMu.Lock()
	defer s.restoreMu.Unlock()
	if sess, ok := s.registry.Get(id); ok {
		sp.EndWith("already-restored")
		return sess, nil // lost the race to a concurrent restore
	}
	snap, err := s.snapStore.Load(id)
	if err != nil {
		sp.EndWith("no-snapshot")
		return nil, err
	}
	bus := obs.New()
	bus.SetClock(func() int64 { return time.Since(s.started).Microseconds() })
	detach := s.agg.Attach(bus)
	// The replay span times the expensive part: rebuilding the advisor
	// by re-running the snapshot's op log.
	rsp := s.tracer.Start(sp.Context(), "replay")
	adv, err := RestoreAdvisor(snap, nil, bus)
	rsp.EndWith(fmt.Sprintf("ops=%d", len(snap.Ops)))
	if err != nil {
		detach()
		sp.EndWith("replay-error: " + err.Error())
		return nil, err
	}
	sess, err := s.registry.CreateWithID(id, snap.Workload, adv, detach, true)
	if err != nil {
		detach()
		sp.EndWith("register-error: " + err.Error())
		return nil, err
	}
	s.restored.Add(1)
	sp.EndWith("session=" + id)
	return sess, nil
}

// noteMutation ticks the session's snapshot cadence; called under the
// session lock right after a successful state change.
func (s *Server) noteMutation(sess *Session, a *Advisor) {
	if s.snapStore == nil {
		return
	}
	sess.opsSinceSnap++
	if sess.opsSinceSnap < s.cfg.Snapshots.EveryOps {
		return
	}
	sess.opsSinceSnap = 0
	s.writeSnapshot(sess.ID, a)
}

// writeSnapshot persists one session snapshot, counting the outcome.
func (s *Server) writeSnapshot(id string, a *Advisor) bool {
	if err := s.snapStore.Save(a.Snapshot(id)); err != nil {
		s.snapErrors.Add(1)
		return false
	}
	s.snapsWritten.Add(1)
	return true
}

// DrainSnapshots writes a final snapshot of every live session — the
// graceful-drain path, called while the listener is still accepting
// (so /metrics can report drain_snapshots_written before the process
// exits). It returns how many snapshots were written.
func (s *Server) DrainSnapshots() int {
	if s.snapStore == nil {
		return 0
	}
	n := 0
	for _, sess := range s.registry.Sessions() {
		_ = sess.WithAdvisor(func(a *Advisor) error {
			if s.writeSnapshot(sess.ID, a) {
				sess.opsSinceSnap = 0
				n++
			}
			return nil
		})
	}
	s.drainSnaps.Add(int64(n))
	return n
}

// heartbeater periodically announces liveness to every peer and folds
// their gossiped views back into the local table.
func (s *Server) heartbeater() {
	defer close(s.hbDone)
	t := time.NewTicker(s.cfg.Peers.Every)
	defer t.Stop()
	for {
		select {
		case <-s.stopHB:
			return
		case <-t.C:
			s.sendHeartbeats()
		}
	}
}

func (s *Server) sendHeartbeats() {
	hb := HeartbeatRequest{From: s.cfg.Peers.Self, Seq: s.peers.nextSeq(), View: s.peers.view()}
	body, err := json.Marshal(hb)
	if err != nil {
		return
	}
	for _, peer := range s.cfg.Peers.Peers {
		resp, err := s.hbClient.Post(peer+"/v1/peers/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		var hr HeartbeatResponse
		if json.NewDecoder(resp.Body).Decode(&hr) == nil {
			// A response is direct evidence the peer is alive; its view
			// vouches for shards we cannot reach ourselves.
			s.peers.observe(peer)
			s.peers.merge(hr.View)
		}
		// Drain before closing: json.Decoder stops at the end of the
		// value, leaving the body's trailing newline unread, and a body
		// closed with bytes left makes net/http tear the connection down
		// instead of returning it to the keep-alive pool — every
		// heartbeat round would pay a fresh TCP handshake per peer.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// handleHeartbeat receives a peer's liveness announcement and answers
// with this shard's merged view (the gossip exchange).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.peers.observe(req.From)
	s.peers.merge(req.View)
	writeJSON(w, http.StatusOK, HeartbeatResponse{From: s.cfg.Peers.Self, View: s.peers.view()})
}

// handlePeers reports this shard's liveness table.
func (s *Server) handlePeers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.peers.status())
}

// maxRequestBody caps request bodies at the shard itself, matched to
// the router's routerMaxBody so a shard hit directly accepts exactly
// what a routed request could carry — before this cap a direct hit
// could stream an unbounded body into the decoder.
const maxRequestBody = routerMaxBody

// readJSON decodes the request body, rejecting unknown fields and
// bodies over maxRequestBody; a failure writes 400 (or 413 for an
// oversized body) and returns false.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + strings.TrimSpace(err.Error())})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
