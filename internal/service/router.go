package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service/wire"
)

// RouterConfig wires a stateless routing front over a shard group.
type RouterConfig struct {
	// Shards are the shard base URLs the router fans out to.
	Shards []string
	// ProbeEvery is the health-probe period; 0 means DefaultProbeEvery,
	// negative disables the background prober (tests drive liveness via
	// the map directly).
	ProbeEvery time.Duration
	// Client performs the proxied requests; nil gets a 5 s-timeout
	// default.
	Client *http.Client
	// Trace attaches the routing tier's span recorder (router-proxy
	// root spans with proxy-attempt / re-route children). A nil Tracer
	// still passes an incoming traceparent through to the shard.
	Trace TraceConfig
}

// Router defaults.
const (
	DefaultProbeEvery = 500 * time.Millisecond
	// routerMaxBody bounds buffered request bodies; matched to the
	// server-side request bound.
	routerMaxBody = 1 << 20
	// routerRetries is how many distinct shards a request may try: the
	// owner plus fallbacks as shards get marked dead under it.
	routerRetries = 3
)

// Router is the lightweight routing tier: an http.Handler that owns a
// ShardMap and forwards every request to the shard that rendezvous
// hashing assigns its session ID. Creates without a client-chosen ID
// get one injected — the ID must exist before the session does for
// consistent routing. A transport failure marks the shard dead and
// retries against the re-computed owner, which (with the shards
// sharing a snapshot store) restores the session there; a background
// prober marks recovered shards alive again.
//
// The router itself keeps no session state, so any number of router
// replicas can front the same shard group.
type Router struct {
	cfg    RouterConfig
	shards *ShardMap
	client *http.Client
	tracer *trace.Tracer

	nextID    atomic.Int64
	idPrefix  string
	reroutes  atomic.Int64
	proxied   atomic.Int64
	stopProbe chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	// Frame pass-through state: this router's own frame listener
	// address, the per-shard frame addresses learned from /healthz, and
	// the splice count.
	frameAddr    atomic.Value // string
	fmu          sync.Mutex
	frameAddrs   map[string]string
	frameSplices atomic.Int64
}

// NewRouter builds a router over the shard group. Call Close to stop
// the health prober.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	r := &Router{
		cfg:       cfg,
		shards:    NewShardMap(cfg.Shards),
		client:    client,
		tracer:    cfg.Trace.Tracer,
		idPrefix:  fmt.Sprintf("r%x", time.Now().UnixNano()&0xffffff),
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	if cfg.ProbeEvery > 0 {
		go r.prober()
	} else {
		close(r.probeDone)
	}
	return r
}

// Close stops the background health prober; safe to call repeatedly.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.stopProbe)
		<-r.probeDone
	})
}

// Shards exposes the routing map (tests, status).
func (r *Router) Shards() *ShardMap { return r.shards }

// Tracer exposes the routing tier's span recorder (nil when tracing is
// disabled), for drain-time exports and the debug listener.
func (r *Router) Tracer() *trace.Tracer { return r.tracer }

// RouterStatus is the router's own GET /healthz payload.
type RouterStatus struct {
	Status       string   `json:"status"`
	Shards       []string `json:"shards"`
	Alive        []string `json:"alive"`
	Version      int64    `json:"version"`
	Proxied      int64    `json:"proxied"`
	Reroutes     int64    `json:"reroutes"`
	FrameAddr    string   `json:"frameAddr,omitempty"`
	FrameSplices int64    `json:"frameSplices"`
}

// FrameAddr returns the router's frame listener address, empty until
// ServeFrames is running.
func (r *Router) FrameAddr() string {
	if v := r.frameAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/healthz" && req.Method == http.MethodGet {
		status := "ok"
		if len(r.shards.Alive()) == 0 {
			status = "no-shards"
		}
		writeJSON(w, http.StatusOK, RouterStatus{
			Status:       status,
			Shards:       r.shards.Shards(),
			Alive:        r.shards.Alive(),
			Version:      r.shards.Version(),
			Proxied:      r.proxied.Load(),
			Reroutes:     r.reroutes.Load(),
			FrameAddr:    r.FrameAddr(),
			FrameSplices: r.frameSplices.Load(),
		})
		return
	}

	body, err := io.ReadAll(io.LimitReader(req.Body, routerMaxBody+1))
	if err != nil || len(body) > routerMaxBody {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body"})
		return
	}

	key, body, ok := r.routingKey(w, req, body)
	if !ok {
		return
	}
	r.forward(w, req, key, body)
}

// routingKey extracts (or injects) the session ID the request routes
// by. Session-scoped paths carry it in the URL; creates carry it in
// the JSON body, and get one injected when absent. Requests with no
// session affinity (peers, health, metrics) route by path so they at
// least land consistently.
func (r *Router) routingKey(w http.ResponseWriter, req *http.Request, body []byte) (string, []byte, bool) {
	if rest, found := strings.CutPrefix(req.URL.Path, "/v1/sessions/"); found {
		id := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			id = rest[:i]
		}
		return id, body, true
	}
	if req.URL.Path == "/v1/sessions" && req.Method == http.MethodPost {
		// Peek at the create body for a client-chosen ID; inject one
		// otherwise so the session is routable from birth.
		var probe struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(body, &probe)
		if probe.ID != "" {
			return probe.ID, body, true
		}
		id := fmt.Sprintf("%s-%d", r.idPrefix, r.nextID.Add(1))
		injected, ok := spliceID(body, id)
		if !ok {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body"})
			return "", nil, false
		}
		return id, injected, true
	}
	return req.URL.Path, body, true
}

// spliceID injects `"id":"<id>"` into a JSON object body without
// round-tripping it through Go values. The previous implementation
// unmarshalled into map[string]any and re-marshalled, which coerces
// every number to float64 — a workload seed above 2^53 came out the
// far side silently corrupted. Splicing into the raw bytes preserves
// every other field bit-for-bit. The field lands immediately before
// the closing brace, i.e. last in the object, so under Go's last-wins
// duplicate-key decoding it also overrides an explicit `"id":""`.
func spliceID(body []byte, id string) ([]byte, bool) {
	if !json.Valid(body) {
		return nil, false
	}
	i := 0
	for i < len(body) && isJSONSpace(body[i]) {
		i++
	}
	if i == len(body) || body[i] != '{' {
		return nil, false
	}
	j := len(body) - 1
	for j > i && isJSONSpace(body[j]) {
		j--
	}
	if body[j] != '}' {
		return nil, false
	}
	// Empty object ⇒ no leading comma. body is valid JSON whose first
	// and last tokens are braces, so anything between them is content.
	empty := true
	for k := i + 1; k < j; k++ {
		if !isJSONSpace(body[k]) {
			empty = false
			break
		}
	}
	out := make([]byte, 0, len(body)+len(id)+8)
	out = append(out, body[:j]...)
	if !empty {
		out = append(out, ',')
	}
	out = append(out, `"id":`...)
	out = strconv.AppendQuote(out, id)
	out = append(out, body[j:]...)
	return out, true
}

func isJSONSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// forward proxies the request to the key's owner, marking shards dead
// and re-routing on transport failure. The whole forward is one
// router-proxy span; each shard attempt is a child — named re-route
// after a failure — so a SIGKILL failover shows up in the waterfall as
// a dead proxy-attempt followed by a re-route to the successor.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, key string, body []byte) {
	parent, _ := trace.Parse(req.Header.Get(trace.Header))
	root := r.tracer.Start(parent, "router-proxy")
	start := time.Now()
	tried := map[string]bool{}
	for attempt := 0; attempt < routerRetries; attempt++ {
		owner := r.shards.Owner(key)
		if owner == "" || tried[owner] {
			break
		}
		tried[owner] = true
		out, err := http.NewRequestWithContext(req.Context(), req.Method, owner+req.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			root.EndWith("error: " + err.Error())
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		name := "proxy-attempt"
		if attempt > 0 {
			name = "re-route"
		}
		asp := r.tracer.Start(root.Context(), name)
		out.Header = req.Header.Clone()
		if asp.Recording() {
			// The attempt span becomes the shard handler's parent, so
			// nesting reads router-proxy → attempt → shard-handler. With
			// tracing off the incoming traceparent passes through as-is.
			out.Header.Set(trace.Header, asp.Context().Traceparent())
		}
		out.ContentLength = int64(len(body))
		resp, err := r.client.Do(out)
		if err != nil {
			// Transport failure: the shard is unreachable. Route its
			// keys to survivors and retry there; the shared snapshot
			// store lets the successor restore the session on demand.
			asp.EndWith("dead: " + owner)
			r.shards.MarkDead(owner)
			r.reroutes.Add(1)
			continue
		}
		asp.EndWith("shard=" + owner)
		r.proxied.Add(1)
		w.Header().Set(HeaderRouterUs, strconv.FormatInt(time.Since(start).Microseconds(), 10))
		copyResponse(w, resp)
		root.EndWith(fmt.Sprintf("shard=%s attempts=%d status=%d", owner, attempt+1, resp.StatusCode))
		return
	}
	root.EndWith("no-reachable-shard key=" + key)
	writeJSON(w, http.StatusBadGateway, apiError{Error: "no reachable shard for " + key})
}

// ServeFrames accepts binary-protocol connections and splices each to
// the shard that owns the session named in its hello frame. Unlike the
// HTTP path the router never re-buffers frames: after forwarding the
// hello it copies bytes in both directions until either side closes,
// so batch advice streams flow through at pipe speed.
func (r *Router) ServeFrames(ln net.Listener) error {
	r.frameAddr.Store(ln.Addr().String())
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go r.spliceFrames(nc)
	}
}

// readHelloFrame reads one frame and returns its raw bytes (length
// word included, ready to forward verbatim), parsed header, and the
// session ID carried by an OpHello payload.
func readHelloFrame(nc net.Conn) (raw []byte, h wire.Header, id string, err error) {
	var lenWord [4]byte
	if _, err = io.ReadFull(nc, lenWord[:]); err != nil {
		return nil, h, "", err
	}
	n := binary.BigEndian.Uint32(lenWord[:])
	if n < wire.HeaderLen || n > wire.MaxFrame {
		return nil, h, "", fmt.Errorf("service: bad hello frame length %d", n)
	}
	raw = make([]byte, 4+n)
	copy(raw, lenWord[:])
	if _, err = io.ReadFull(nc, raw[4:]); err != nil {
		return nil, h, "", err
	}
	h.Version = raw[4]
	h.Op = raw[5]
	h.Flags = binary.BigEndian.Uint16(raw[6:8])
	h.Epoch = binary.BigEndian.Uint32(raw[8:12])
	h.Seq = binary.BigEndian.Uint64(raw[12:20])
	if h.Version != wire.Version || h.Op != wire.OpHello {
		return nil, h, "", fmt.Errorf("service: expected hello frame, got version %d op %#x", h.Version, h.Op)
	}
	d := wire.NewDec(raw[4+wire.HeaderLen:])
	id = d.Str()
	if err := d.Err(); err != nil {
		return nil, h, "", err
	}
	return raw, h, id, nil
}

func (r *Router) spliceFrames(nc net.Conn) {
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, h, id, err := readHelloFrame(nc)
	if err != nil {
		return
	}
	nc.SetReadDeadline(time.Time{})
	key := id
	if key == "" {
		key = "frame"
	}
	tried := map[string]bool{}
	for attempt := 0; attempt < routerRetries; attempt++ {
		owner := r.shards.Owner(key)
		if owner == "" || tried[owner] {
			break
		}
		tried[owner] = true
		addr, err := r.frameAddrFor(owner)
		if err != nil {
			r.shards.MarkDead(owner)
			r.dropFrameAddr(owner)
			r.reroutes.Add(1)
			continue
		}
		sc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			r.shards.MarkDead(owner)
			r.dropFrameAddr(owner)
			r.reroutes.Add(1)
			continue
		}
		if _, err := sc.Write(raw); err != nil {
			sc.Close()
			r.shards.MarkDead(owner)
			r.dropFrameAddr(owner)
			r.reroutes.Add(1)
			continue
		}
		r.frameSplices.Add(1)
		go func() {
			io.Copy(sc, nc)
			if tc, ok := sc.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				sc.Close()
			}
		}()
		io.Copy(nc, sc)
		sc.Close()
		return
	}
	// No reachable shard: answer the hello with an error frame so the
	// client fails fast instead of timing out.
	var e wire.Enc
	e.Begin(wire.Header{Version: wire.Version, Op: wire.OpError, Seq: h.Seq})
	e.Uvarint(uint64(http.StatusBadGateway))
	e.Str("no reachable shard for " + key)
	if f, err := e.Frame(); err == nil {
		nc.Write(f)
	}
}

// frameAddrFor resolves a shard's frame listener address, from cache
// or by asking its /healthz.
func (r *Router) frameAddrFor(shard string) (string, error) {
	r.fmu.Lock()
	if addr, ok := r.frameAddrs[shard]; ok {
		r.fmu.Unlock()
		return addr, nil
	}
	r.fmu.Unlock()
	resp, err := r.client.Get(shard + "/healthz")
	if err != nil {
		return "", err
	}
	var hz Healthz
	err = json.NewDecoder(resp.Body).Decode(&hz)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if hz.FrameAddr == "" {
		return "", errors.New("service: shard has no frame listener")
	}
	r.setFrameAddr(shard, hz.FrameAddr)
	return hz.FrameAddr, nil
}

func (r *Router) setFrameAddr(shard, addr string) {
	r.fmu.Lock()
	if r.frameAddrs == nil {
		r.frameAddrs = map[string]string{}
	}
	r.frameAddrs[shard] = addr
	r.fmu.Unlock()
}

// dropFrameAddr forgets a shard's cached frame address; a restarted
// shard listens on a fresh port, so death invalidates the cache.
func (r *Router) dropFrameAddr(shard string) {
	r.fmu.Lock()
	delete(r.frameAddrs, shard)
	r.fmu.Unlock()
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// prober polls every shard's /healthz, resurrecting recovered shards
// and burying unresponsive ones.
func (r *Router) prober() {
	defer close(r.probeDone)
	t := time.NewTicker(r.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-t.C:
			r.probeOnce()
		}
	}
}

func (r *Router) probeOnce() {
	for _, shard := range r.shards.Shards() {
		resp, err := r.client.Get(shard + "/healthz")
		if err != nil {
			r.shards.MarkDead(shard)
			r.dropFrameAddr(shard)
			continue
		}
		// The probe doubles as frame-address discovery: a restarted
		// shard advertises a fresh frame listener here, which replaces
		// whatever the splice path had cached.
		var hz Healthz
		if json.NewDecoder(resp.Body).Decode(&hz) == nil && hz.FrameAddr != "" {
			r.setFrameAddr(shard, hz.FrameAddr)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			r.shards.MarkAlive(shard)
		} else {
			r.shards.MarkDead(shard)
		}
	}
}
