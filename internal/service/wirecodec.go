package service

import (
	"fmt"

	"mrdspark/internal/service/wire"
)

// Binary payload codecs for the frame protocol's hot messages. The
// cold-path messages (create, status) stay JSON inside their frames;
// everything on the per-stage-boundary path — submit, advance, advice,
// batch — is encoded here with varints and a decision-kind enum, so a
// typical advice payload is tens of bytes against ~1 KiB of JSON, and
// neither side runs a general-purpose marshaller.

// decisionKinds is the closed set of decision kinds in wire order; the
// codec sends a one-byte index for these and falls back to an inline
// string (decisionKindOther) for any kind a future policy adds, so old
// decoders fail loudly instead of misattributing.
var decisionKinds = [...]string{"purge", "evict", "prefetch", "prefetch-evict", "prefetch-drop"}

const decisionKindOther = 0xff

func decisionKindCode(kind string) (byte, bool) {
	for i, k := range decisionKinds {
		if k == kind {
			return byte(i), true
		}
	}
	return decisionKindOther, false
}

// AppendAdvicePayload encodes one Advice as an OpAdvice payload.
func AppendAdvicePayload(e *wire.Enc, a *Advice) {
	e.Uvarint(uint64(a.Stage))
	e.Uvarint(uint64(a.Job))
	if a.Replayed {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Uvarint(uint64(len(a.Decisions)))
	for _, d := range a.Decisions {
		code, ok := decisionKindCode(d.Kind)
		e.U8(code)
		if !ok {
			e.Str(d.Kind)
		}
		e.Uvarint(uint64(d.Node))
		e.Str(d.Block)
	}
	c := &a.Counters
	e.Uvarint(uint64(c.Hits))
	e.Uvarint(uint64(c.Misses))
	e.Uvarint(uint64(c.Promotes))
	e.Uvarint(uint64(c.Recomputes))
	e.Uvarint(uint64(c.Inserts))
	e.Uvarint(uint64(c.Evictions))
	e.Uvarint(uint64(c.Purged))
	e.Uvarint(uint64(c.Prefetches))
}

// DecodeAdvicePayload decodes an OpAdvice payload. Strings are copied
// out, so the Advice outlives the frame buffer.
func DecodeAdvicePayload(d *wire.Dec) (Advice, error) {
	var a Advice
	a.Stage = int(d.Uvarint())
	a.Job = int(d.Uvarint())
	a.Replayed = d.U8() != 0
	n := d.Uvarint()
	// Each decision is at least 3 bytes (kind, node, empty block), so a
	// count the remaining payload cannot hold is a forged length — caught
	// before allocating, which is what lets the fuzzer hammer this.
	if n > uint64(d.Remaining()) {
		return Advice{}, wire.ErrTruncated
	}
	if n > 0 {
		a.Decisions = make([]Decision, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var dec Decision
		code := d.U8()
		if int(code) < len(decisionKinds) {
			dec.Kind = decisionKinds[code]
		} else if code == decisionKindOther {
			dec.Kind = d.Str()
		} else {
			return Advice{}, fmt.Errorf("service: unknown decision-kind code %#x", code)
		}
		dec.Node = int(d.Uvarint())
		dec.Block = d.Str()
		if d.Err() != nil {
			return Advice{}, d.Err()
		}
		a.Decisions = append(a.Decisions, dec)
	}
	c := &a.Counters
	c.Hits = int(d.Uvarint())
	c.Misses = int(d.Uvarint())
	c.Promotes = int(d.Uvarint())
	c.Recomputes = int(d.Uvarint())
	c.Inserts = int(d.Uvarint())
	c.Evictions = int(d.Uvarint())
	c.Purged = int(d.Uvarint())
	c.Prefetches = int(d.Uvarint())
	if err := d.Err(); err != nil {
		return Advice{}, err
	}
	return a, nil
}

// AppendBatchPayload encodes an OpBatch request: the session ID and
// the schedule steps (zigzag stage so job submits keep their -1).
func AppendBatchPayload(e *wire.Enc, sessionID string, steps []Step) {
	e.Str(sessionID)
	e.Uvarint(uint64(len(steps)))
	for _, st := range steps {
		e.Varint(int64(st.Stage))
		e.Uvarint(uint64(st.Job))
	}
}

// DecodeBatchPayload decodes an OpBatch request. The session ID view
// aliases the frame buffer (the caller interns it); steps are copied.
func DecodeBatchPayload(d *wire.Dec) (id []byte, steps []Step, err error) {
	id = d.Bytes()
	n := d.Uvarint()
	// Two bytes minimum per step bounds a forged count.
	if n > uint64(d.Remaining()) {
		return nil, nil, wire.ErrTruncated
	}
	if n > uint64(maxBatchSteps) {
		return nil, nil, fmt.Errorf("service: batch of %d steps exceeds %d", n, maxBatchSteps)
	}
	steps = make([]Step, 0, n)
	for i := uint64(0); i < n; i++ {
		st := Step{Stage: int(d.Varint()), Job: int(d.Uvarint())}
		if d.Err() != nil {
			return nil, nil, d.Err()
		}
		steps = append(steps, st)
	}
	return id, steps, d.Err()
}
