package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

func newTestServer(t *testing.T) (*service.Server, *client.Client) {
	t.Helper()
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(client.Config{BaseURL: ts.URL, HTTPClient: ts.Client()})
}

func testAdvisorConfig() service.AdvisorConfig {
	return service.AdvisorConfig{Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: experiments.SpecMRD}
}

// driveSession creates a server session for the workload and replays
// the canonical schedule through the HTTP API, returning every advice.
func driveSession(t *testing.T, c *client.Client, workloadName string) []service.Advice {
	t.Helper()
	ctx := context.Background()
	spec, err := workload.Build(workloadName, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	created, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: workloadName,
		Advisor:  testAdvisorConfig(),
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if created.Stages != spec.Graph.ActiveStages() {
		t.Fatalf("created.Stages = %d, want %d", created.Stages, spec.Graph.ActiveStages())
	}
	var advice []service.Advice
	for _, st := range service.Schedule(spec.Graph) {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
				t.Fatalf("SubmitJob(%d): %v", st.Job, err)
			}
			continue
		}
		adv, err := c.Advance(ctx, created.ID, st.Stage)
		if err != nil {
			t.Fatalf("Advance(%d): %v", st.Stage, err)
		}
		advice = append(advice, adv)
	}
	if err := c.DeleteSession(ctx, created.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	return advice
}

// oracle replays the same workload in-process.
func oracle(t *testing.T, workloadName string) []service.Advice {
	t.Helper()
	spec, err := workload.Build(workloadName, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := service.NewAdvisor(spec.Graph, testAdvisorConfig())
	if err != nil {
		t.Fatal(err)
	}
	advice, err := service.Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	return advice
}

// TestServerParity is the end-to-end decision-parity oracle: advice
// served over HTTP must be byte-identical to an in-process replay.
func TestServerParity(t *testing.T) {
	_, c := newTestServer(t)
	for _, w := range []string{"SCC", "KM"} {
		t.Run(w, func(t *testing.T) {
			got := driveSession(t, c, w)
			want := oracle(t, w)
			if len(got) != len(want) {
				t.Fatalf("advice count %d, want %d", len(got), len(want))
			}
			for i := range got {
				if g, w := got[i].Fingerprint(), want[i].Fingerprint(); g != w {
					t.Fatalf("advance %d diverged:\nserver: %s\noracle: %s", i, g, w)
				}
			}
		})
	}
}

// TestServerConcurrentSessions drives several sessions in parallel and
// checks each still matches its oracle — the multi-tenant isolation
// property, and the -race workout for the registry, the session locks,
// and the shared aggregator.
func TestServerConcurrentSessions(t *testing.T) {
	_, c := newTestServer(t)
	workloads := []string{"SCC", "KM", "HB-Sort", "LinR"}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(workloads))
	for round := 0; round < 2; round++ {
		for _, w := range workloads {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				ctx := context.Background()
				spec, err := workload.Build(w, workload.Params{})
				if err != nil {
					errs <- err
					return
				}
				created, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: w, Advisor: testAdvisorConfig()})
				if err != nil {
					errs <- fmt.Errorf("%s: create: %w", w, err)
					return
				}
				a, err := service.NewAdvisor(spec.Graph, testAdvisorConfig())
				if err != nil {
					errs <- err
					return
				}
				for _, st := range service.Schedule(spec.Graph) {
					if st.Stage < 0 {
						if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
							errs <- fmt.Errorf("%s: job %d: %w", w, st.Job, err)
							return
						}
						if err := a.SubmitJob(st.Job); err != nil {
							errs <- err
							return
						}
						continue
					}
					got, err := c.Advance(ctx, created.ID, st.Stage)
					if err != nil {
						errs <- fmt.Errorf("%s: stage %d: %w", w, st.Stage, err)
						return
					}
					want, err := a.Advance(st.Stage)
					if err != nil {
						errs <- err
						return
					}
					if got.Fingerprint() != want.Fingerprint() {
						errs <- fmt.Errorf("%s: stage %d diverged", w, st.Stage)
						return
					}
				}
			}(w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerErrors(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "nope"}); !isStatus(err, http.StatusBadRequest) {
		t.Errorf("unknown workload: got %v, want 400", err)
	}
	if _, err := c.Advance(ctx, "s999", 0); !isStatus(err, http.StatusNotFound) {
		t.Errorf("unknown session: got %v, want 404", err)
	}
	if err := c.DeleteSession(ctx, "s999"); !isStatus(err, http.StatusNotFound) {
		t.Errorf("delete unknown session: got %v, want 404", err)
	}

	created, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "KM", Advisor: testAdvisorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, created.ID, 5); !isStatus(err, http.StatusConflict) {
		t.Errorf("out-of-order job: got %v, want 409", err)
	}
	if _, err := c.Advance(ctx, created.ID, 999999); !isStatus(err, http.StatusConflict) {
		t.Errorf("bogus stage: got %v, want 409", err)
	}
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "KM",
		Advisor:  service.AdvisorConfig{Policy: experiments.PolicySpec{Kind: "NoSuchPolicy"}},
	}); !isStatus(err, http.StatusBadRequest) {
		t.Errorf("unknown policy: got %v, want 400", err)
	}
}

func isStatus(err error, status int) bool {
	var apiErr *client.Error
	return errors.As(err, &apiErr) && apiErr.Status == status
}

func TestServerBadJSON(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewBufferString("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(client.Config{BaseURL: ts.URL, HTTPClient: ts.Client()})

	ctx := context.Background()
	created, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "KM", Advisor: testAdvisorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.Build("KM", workload.Params{})
	for _, st := range service.Schedule(spec.Graph) {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := c.Advance(ctx, created.ID, st.Stage); err != nil {
			t.Fatal(err)
		}
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if h.Status != "ok" || h.Sessions != 1 || h.Requests == 0 {
		t.Errorf("healthz = %+v", h)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"mrdspark_stage_events", "mrdspark_node_events", "mrdserver_sessions 1", "mrdserver_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestMetricsParseAsJSONFreeText(t *testing.T) {
	// /healthz must be JSON; a quick decode guards the wire shape.
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h service.Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
}
