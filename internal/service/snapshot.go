package service

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mrdspark/internal/dag"
	"mrdspark/internal/obs"
	"mrdspark/internal/workload"
)

// SnapshotVersion is the wire version of the Snapshot format. Restore
// refuses snapshots from a different version rather than guessing.
const SnapshotVersion = 1

// OpKind discriminates the entries of an advisor's operation log.
type OpKind string

const (
	// OpSubmitJob is a successful SubmitJob(Arg).
	OpSubmitJob OpKind = "job"
	// OpAdvance is a successful Advance(Arg).
	OpAdvance OpKind = "stage"
	// OpNodeFail is a successful OnNodeFailure(Arg).
	OpNodeFail OpKind = "fail"
)

// Op is one logged session operation. The log is the snapshot's
// payload: replaying it against a fresh advisor over the same graph
// reconstructs the session byte for byte, because every operation is
// deterministic.
type Op struct {
	Kind OpKind `json:"k"`
	Arg  int    `json:"a"`
}

// Origin identifies the workload a session's graph was generated from.
// Generation is a pure function of (Workload, Params), so the origin
// is all a remote process needs to rebuild the graph for restore.
type Origin struct {
	Workload string          `json:"workload"`
	Params   workload.Params `json:"params"`
}

// Ledger is the snapshot's copy of the prefetch conservation counters
// (issued == used + wasted + pending), used to verify a restore
// reproduced the prefetch state exactly.
type Ledger struct {
	Issued  int64 `json:"issued"`
	Used    int64 `json:"used"`
	Wasted  int64 `json:"wasted"`
	Pending int64 `json:"pending"`
}

// Snapshot is the compact, versioned serialized form of an advisory
// session. It does not serialize policy or store state directly —
// both are deterministic functions of the op log — so the snapshot
// stays small (a few bytes per operation) no matter how much cache
// state the session models. The cursor fields (NextJob, LastStage,
// Advices) and the Residency/Ledger digests are verification data:
// RestoreAdvisor replays the ops and then proves the rebuilt session
// matches them before handing it out.
type Snapshot struct {
	Version   int    `json:"version"`
	SessionID string `json:"sessionId"`
	// Workload/Params are the origin (empty Workload when the advisor
	// was built over a caller-supplied graph; such snapshots can only
	// be restored by a caller that supplies the graph again).
	Workload string          `json:"workload,omitempty"`
	Params   workload.Params `json:"params"`
	Advisor  AdvisorConfig   `json:"advisor"`
	// GraphHash pins the DAG the ops were recorded against; restore
	// refuses a graph whose hash differs (e.g. generator drift between
	// binary versions).
	GraphHash string `json:"graphHash"`
	NextJob   int    `json:"nextJob"`
	LastStage int    `json:"lastStage"`
	// Advices is the decision-log cursor: how many advances the
	// session has served.
	Advices   int    `json:"advices"`
	Ops       []Op   `json:"ops"`
	Residency string `json:"residency"`
	Ledger    Ledger `json:"ledger"`
}

// Snapshot captures the session's current state under the caller's
// serialization (the server snapshots inside the per-session lock).
func (a *Advisor) Snapshot(sessionID string) *Snapshot {
	issued, used, wasted, pending := a.PrefetchLedger()
	s := &Snapshot{
		Version:   SnapshotVersion,
		SessionID: sessionID,
		Advisor:   a.cfg,
		GraphHash: GraphHash(a.graph),
		NextJob:   a.nextJob,
		LastStage: a.lastStage,
		Advices:   len(a.history),
		Ops:       append([]Op(nil), a.ops...),
		Residency: a.residencyDigest(),
		Ledger:    Ledger{Issued: issued, Used: used, Wasted: wasted, Pending: pending},
	}
	if a.origin != nil {
		s.Workload = a.origin.Workload
		s.Params = a.origin.Params
	}
	return s
}

// RestoreAdvisor rebuilds a session from its snapshot by replaying the
// operation log against a fresh advisor, then verifies the rebuilt
// session against the snapshot's cursors, residency digest and
// prefetch ledger — a restored session either is byte-identical to
// the one that was snapshotted or the restore fails loudly.
//
// g supplies the application graph; nil means rebuild it from the
// snapshot's origin via workload.Build (which requires the snapshot to
// carry one). bus, when non-nil, is attached before the replay so the
// restored session's event stream covers its whole history — exactly
// the stream a never-moved session would have emitted.
func RestoreAdvisor(snap *Snapshot, g *dag.Graph, bus *obs.Bus) (*Advisor, error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("service: snapshot version %d, this build speaks %d", snap.Version, SnapshotVersion)
	}
	if g == nil {
		if snap.Workload == "" {
			return nil, fmt.Errorf("service: snapshot %q has no workload origin and no graph was supplied", snap.SessionID)
		}
		spec, err := workload.Build(snap.Workload, snap.Params)
		if err != nil {
			return nil, fmt.Errorf("service: rebuild workload for snapshot %q: %w", snap.SessionID, err)
		}
		g = spec.Graph
	}
	if h := GraphHash(g); h != snap.GraphHash {
		return nil, fmt.Errorf("service: snapshot %q graph hash %s != rebuilt graph hash %s", snap.SessionID, snap.GraphHash, h)
	}
	a, err := NewAdvisor(g, snap.Advisor)
	if err != nil {
		return nil, err
	}
	if snap.Workload != "" {
		a.SetOrigin(snap.Workload, snap.Params)
	}
	if bus != nil {
		a.AttachBus(bus)
	}
	for i, op := range snap.Ops {
		switch op.Kind {
		case OpSubmitJob:
			err = a.SubmitJob(op.Arg)
		case OpAdvance:
			_, err = a.Advance(op.Arg)
		case OpNodeFail:
			err = a.OnNodeFailure(op.Arg)
		default:
			err = fmt.Errorf("unknown op kind %q", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("service: snapshot %q replay op %d (%s %d): %w", snap.SessionID, i, op.Kind, op.Arg, err)
		}
	}
	return a, a.verifyAgainst(snap)
}

// verifyAgainst proves the advisor's rebuilt state matches the
// snapshot's recorded cursors and digests.
func (a *Advisor) verifyAgainst(snap *Snapshot) error {
	if a.nextJob != snap.NextJob || a.lastStage != snap.LastStage || len(a.history) != snap.Advices {
		return fmt.Errorf("service: snapshot %q cursor mismatch after replay: nextJob %d/%d lastStage %d/%d advices %d/%d",
			snap.SessionID, a.nextJob, snap.NextJob, a.lastStage, snap.LastStage, len(a.history), snap.Advices)
	}
	if got := a.residencyDigest(); got != snap.Residency {
		return fmt.Errorf("service: snapshot %q residency digest mismatch after replay: %s != %s", snap.SessionID, got, snap.Residency)
	}
	issued, used, wasted, pending := a.PrefetchLedger()
	if got := (Ledger{Issued: issued, Used: used, Wasted: wasted, Pending: pending}); got != snap.Ledger {
		return fmt.Errorf("service: snapshot %q prefetch ledger mismatch after replay: %+v != %+v", snap.SessionID, got, snap.Ledger)
	}
	return nil
}

// residencyDigest hashes the full modeled cluster cache state — every
// node's memory residency, disk contents, pending-prefetch set and
// free bytes — into one comparable token. Two advisors with equal
// digests hold identical store state.
func (a *Advisor) residencyDigest() string {
	h := fnv.New64a()
	for i, n := range a.nodes {
		mem := n.mem.Blocks()
		sort.Slice(mem, func(x, y int) bool { return mem[x].Less(mem[y]) })
		disk := n.disk.Blocks()
		sort.Slice(disk, func(x, y int) bool { return disk[x].Less(disk[y]) })
		fmt.Fprintf(h, "n%d free=%d mem=%v disk=%v pf=[", i, n.mem.Free(), mem, disk)
		pf := make([]string, 0, len(n.prefetched))
		for id := range n.prefetched {
			pf = append(pf, id.String())
		}
		sort.Strings(pf)
		fmt.Fprintf(h, "%v];", pf)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// GraphHash hashes an application DAG's full structure — RDD costs,
// sizes, storage levels, dependencies, jobs and their executed stages
// — into a short stable token. Snapshots record it so restore can
// prove the rebuilt graph is the one the op log was recorded against.
func GraphHash(g *dag.Graph) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "rdds=%d jobs=%d;", len(g.RDDs), len(g.Jobs))
	for _, r := range g.RDDs {
		fmt.Fprintf(h, "r%d %s %s p%d sz%d c%d cached=%v l%d:", r.ID, r.Op, r.Name,
			r.NumPartitions, r.PartSize, r.CostPerPart, r.Cached, int(r.Level))
		for _, d := range r.Deps {
			fmt.Fprintf(h, "d%d t%d s%d,", d.Parent.ID, int(d.Type), d.ShuffleID)
		}
		fmt.Fprintf(h, ";")
	}
	for _, j := range g.Jobs {
		fmt.Fprintf(h, "j%d %s t%d:", j.ID, j.Name, j.Target.ID)
		for _, s := range j.NewStages {
			fmt.Fprintf(h, "s%d k%d tasks%d,", s.ID, int(s.Kind), s.NumTasks)
		}
		fmt.Fprintf(h, ";")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
