package service_test

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// newFrameServer boots a server speaking both transports: HTTP via
// httptest, frames via a real TCP listener advertised on /healthz.
func newFrameServer(t *testing.T) (*service.Server, string, string) {
	t.Helper()
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeFrames(ln)
	t.Cleanup(func() {
		ln.Close()
		ts.Close()
		srv.Close()
	})
	return srv, ts.URL, ln.Addr().String()
}

// binClient builds a frame-protocol client pinned to addr.
func binClient(t *testing.T, baseURL, frameAddr string) *client.Client {
	t.Helper()
	c := client.New(client.Config{BaseURL: baseURL, Binary: true, FrameAddr: frameAddr})
	t.Cleanup(c.Close)
	return c
}

// driveBin replays the canonical schedule over the frame protocol.
func driveBin(t *testing.T, c *client.Client, id, workloadName string) []service.Advice {
	t.Helper()
	ctx := context.Background()
	spec, err := workload.Build(workloadName, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	created, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: workloadName, Advisor: testAdvisorConfig(),
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	var advice []service.Advice
	for _, st := range service.Schedule(spec.Graph) {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
				t.Fatalf("SubmitJob(%d): %v", st.Job, err)
			}
			continue
		}
		adv, err := c.Advance(ctx, created.ID, st.Stage)
		if err != nil {
			t.Fatalf("Advance(%d): %v", st.Stage, err)
		}
		advice = append(advice, adv)
	}
	if err := c.DeleteSession(ctx, created.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	return advice
}

// TestFrameTransportParity proves the binary transport returns
// byte-identical decisions to the in-process oracle (and therefore to
// the JSON path, which TestServerParity checks against the same
// oracle).
func TestFrameTransportParity(t *testing.T) {
	_, base, frameAddr := newFrameServer(t)
	c := binClient(t, base, frameAddr)
	got := driveBin(t, c, "frame-scc", "SCC")
	want := oracle(t, "SCC")
	if len(got) != len(want) {
		t.Fatalf("advice count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if g, w := got[i].Fingerprint(), want[i].Fingerprint(); g != w {
			t.Fatalf("advice %d:\n  frames: %s\n  oracle: %s", i, g, w)
		}
	}
}

// TestFrameBatchStreams proves one batch call returns exactly the
// advices of the per-step replay, in order.
func TestFrameBatchStreams(t *testing.T) {
	_, base, frameAddr := newFrameServer(t)
	c := binClient(t, base, frameAddr)
	ctx := context.Background()

	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: "batch-scc", Workload: "SCC", Advisor: testAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.RunBatch(ctx, "batch-scc", service.Schedule(spec.Graph))
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	want := oracle(t, "SCC")
	if len(resp.Advices) != len(want) {
		t.Fatalf("batch advices = %d, want %d", len(resp.Advices), len(want))
	}
	if resp.Jobs != len(spec.Graph.Jobs) {
		t.Fatalf("batch jobs = %d, want %d", resp.Jobs, len(spec.Graph.Jobs))
	}
	for i := range want {
		if g, w := resp.Advices[i].Fingerprint(), want[i].Fingerprint(); g != w {
			t.Fatalf("batch advice %d:\n  batch:  %s\n  oracle: %s", i, g, w)
		}
	}
}

// TestBatchOverJSON drives the same batch through POST
// /v1/sessions/{id}/batch — the HTTP fallback must match too.
func TestBatchOverJSON(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: "batch-json", Workload: "SCC", Advisor: testAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.RunBatch(ctx, "batch-json", service.Schedule(spec.Graph))
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	want := oracle(t, "SCC")
	if len(resp.Advices) != len(want) {
		t.Fatalf("batch advices = %d, want %d", len(resp.Advices), len(want))
	}
	for i := range want {
		if g, w := resp.Advices[i].Fingerprint(), want[i].Fingerprint(); g != w {
			t.Fatalf("batch advice %d:\n  batch:  %s\n  oracle: %s", i, g, w)
		}
	}
}

// TestFrameErrorsAreAPIErrors: error frames must decode into the same
// *client.Error the JSON path returns, so failover logic stays
// transport-blind.
func TestFrameErrorsAreAPIErrors(t *testing.T) {
	_, base, frameAddr := newFrameServer(t)
	c := binClient(t, base, frameAddr)
	_, err := c.Advance(context.Background(), "nope", 0)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("Advance on unknown session: %v (want *client.Error)", err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", apiErr.Status)
	}
}

// TestFrameStatusAndReplay: OpStatus round-trips the session cursor,
// and a re-advanced stage comes back replayed and byte-identical —
// the idempotence the frame client's retry path leans on.
func TestFrameStatusAndReplay(t *testing.T) {
	_, base, frameAddr := newFrameServer(t)
	c := binClient(t, base, frameAddr)
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: "replay-scc", Workload: "SCC", Advisor: testAdvisorConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, "replay-scc", 0); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	stage := spec.Graph.Jobs[0].NewStages[0].ID
	first, err := c.Advance(ctx, "replay-scc", stage)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Advance(ctx, "replay-scc", stage)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Replayed {
		t.Fatal("re-advanced stage not marked replayed")
	}
	if first.Fingerprint() != again.Fingerprint() {
		t.Fatalf("replayed advice diverged:\n  first: %s\n  again: %s", first.Fingerprint(), again.Fingerprint())
	}
	st, err := c.GetSession(ctx, "replay-scc")
	if err != nil {
		t.Fatalf("GetSession over frames: %v", err)
	}
	if st.ID != "replay-scc" {
		t.Fatalf("status ID = %q", st.ID)
	}
}

// TestRouterFrameSplice runs the full frame path through the routing
// tier: hello-routed splice to the owning shard, discovery of the
// router's frame address via its /healthz, and parity on the far side.
func TestRouterFrameSplice(t *testing.T) {
	store := service.NewMemStore()
	g := newShardGroup(t, 3, store)
	// Give every shard a frame listener; the router learns them from
	// the shards' /healthz.
	for _, srv := range g.servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeFrames(ln)
		t.Cleanup(func() { ln.Close() })
	}
	rt := service.NewRouter(service.RouterConfig{Shards: g.urls, ProbeEvery: -1})
	rts := httptest.NewServer(rt)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.ServeFrames(rln)
	t.Cleanup(func() {
		rln.Close()
		rts.Close()
		rt.Close()
	})

	// No pinned FrameAddr: the client must discover the router's frame
	// listener through the router's own /healthz.
	c := client.New(client.Config{BaseURL: rts.URL, Binary: true})
	t.Cleanup(c.Close)
	got := driveBin(t, c, "spliced-scc", "SCC")
	want := oracle(t, "SCC")
	if len(got) != len(want) {
		t.Fatalf("advice count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if g, w := got[i].Fingerprint(), want[i].Fingerprint(); g != w {
			t.Fatalf("advice %d over splice:\n  server: %s\n  oracle: %s", i, g, w)
		}
	}
	hz, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hz.FrameAddr == "" {
		t.Fatal("router /healthz advertises no frame address")
	}
}

// TestFrameMetricsCounters: the wire counters must move when the
// frame path serves traffic.
func TestFrameMetricsCounters(t *testing.T) {
	srv, base, frameAddr := newFrameServer(t)
	c := binClient(t, base, frameAddr)
	driveBin(t, c, "metrics-scc", "SCC")
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"mrdserver_wire_connections_total", "mrdserver_wire_frames_total", "mrdserver_wire_advices_total"} {
		if !metricAboveZero(string(body), metric) {
			t.Errorf("metric %s missing or zero after frame traffic", metric)
		}
	}
	if srv.FrameAddr() != frameAddr {
		t.Fatalf("FrameAddr = %q, want %q", srv.FrameAddr(), frameAddr)
	}
}

// metricAboveZero reports whether the Prometheus text contains the
// metric with a value above zero.
func metricAboveZero(text, metric string) bool {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == metric {
			v, err := strconv.ParseFloat(fields[1], 64)
			return err == nil && v > 0
		}
	}
	return false
}
