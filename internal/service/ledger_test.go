package service

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
)

// ledgerConserved checks the prefetch conservation law the auditor
// enforces over event streams: used + wasted + pending == issued.
func ledgerConserved(t *testing.T, a *Advisor, when string) (issued, used, wasted, pending int64) {
	t.Helper()
	issued, used, wasted, pending = a.PrefetchLedger()
	if used+wasted+pending != issued {
		t.Fatalf("%s: prefetch ledger broken: used %d + wasted %d + pending %d != issued %d",
			when, used, wasted, pending, issued)
	}
	return
}

// TestPrefetchLedgerConservedAcrossNodeFailure pins the advisor's
// crash-path ledger sweep: OnNodeFailure wipes the node's stores,
// destroying its pending prefetches — those must settle as wasted, not
// silently vanish from the used+wasted+pending == issued conservation
// law. (The original code wiped n.prefetched without settling.)
func TestPrefetchLedgerConservedAcrossNodeFailure(t *testing.T) {
	g := dag.New()
	src := g.Source("src", 1, cluster.MB)
	c := src.ReduceByKey("shuffle").Map("cached").Persist(block.MemoryAndDisk)
	g.Count(c)
	g.Count(c)

	adv, err := NewAdvisor(g, AdvisorConfig{
		Nodes:      1,
		CacheBytes: 4 * cluster.MB,
		Policy:     experiments.PolicySpec{Kind: "MRD"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the disk copy and drive a prefetch through the policy's
	// control surface, exactly as the MRD manager would at a stage
	// boundary.
	id := block.ID{RDD: c.ID, Partition: 0}
	info := block.Info{ID: id, Size: c.PartSize, Level: block.MemoryAndDisk}
	adv.nodes[0].disk.Put(id, info.Size)
	advOps{adv}.Prefetch(0, info)

	issued, _, _, pending := ledgerConserved(t, adv, "after prefetch")
	if issued != 1 || pending != 1 {
		t.Fatalf("after prefetch: issued %d pending %d; want 1 and 1", issued, pending)
	}

	if err := adv.OnNodeFailure(0); err != nil {
		t.Fatal(err)
	}
	issued, used, wasted, pending := ledgerConserved(t, adv, "after node failure")
	if issued != 1 || used != 0 || wasted != 1 || pending != 0 {
		t.Fatalf("after node failure: ledger (issued %d, used %d, wasted %d, pending %d); want (1, 0, 1, 0)",
			issued, used, wasted, pending)
	}
}
