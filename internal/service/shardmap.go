package service

import (
	"hash/fnv"
	"sort"
	"sync"
)

// ShardMap assigns session IDs to shards by rendezvous (highest
// random weight) hashing: every (shard, key) pair gets a pseudo-random
// score and the key belongs to the highest-scoring *live* shard.
// Rendezvous gives the two properties failover needs with no token
// rings or rebalancing state:
//
//   - deterministic: every client and router with the same shard list
//     and the same liveness view computes the same owner, so a session
//     created through one path is found through another;
//   - minimal disruption: marking a shard dead moves only the keys it
//     owned (each to its second-highest-scoring shard); every other
//     key keeps its owner, so a failover never stampedes the healthy
//     shards with re-creates.
//
// The map is safe for concurrent use. Version increments on every
// liveness change, letting callers detect that a previously computed
// owner may be stale.
type ShardMap struct {
	mu      sync.RWMutex
	shards  []string // all configured shards, sorted, dead ones included
	dead    map[string]bool
	version int64
}

// NewShardMap builds a map over the configured shard base URLs; all
// start alive. Duplicates are dropped.
func NewShardMap(shards []string) *ShardMap {
	seen := map[string]bool{}
	m := &ShardMap{dead: map[string]bool{}}
	for _, s := range shards {
		if s != "" && !seen[s] {
			seen[s] = true
			m.shards = append(m.shards, s)
		}
	}
	sort.Strings(m.shards)
	return m
}

// score is the rendezvous weight of (shard, key): fnv64a over the pair
// with a separator no valid session ID or URL contains, pushed through
// a splitmix64-style finalizer. The finalizer matters: raw FNV of
// near-identical strings ("load-1".."load-8" against shard URLs that
// differ by one digit) produces correlated comparisons, and every key
// picks the same winner; full avalanche decorrelates them.
func score(shard, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shard))
	h.Write([]byte{0})
	h.Write([]byte(key))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the live shard that owns key, or "" if every shard is
// dead (or the map is empty).
func (m *ShardMap) Owner(key string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ownerLocked(key)
}

func (m *ShardMap) ownerLocked(key string) string {
	var best string
	var bestScore uint64
	for _, s := range m.shards {
		if m.dead[s] {
			continue
		}
		if sc := score(s, key); best == "" || sc > bestScore || (sc == bestScore && s < best) {
			best, bestScore = s, sc
		}
	}
	return best
}

// OwnerVersioned returns the owner together with the map version it
// was computed under.
func (m *ShardMap) OwnerVersioned(key string) (string, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ownerLocked(key), m.version
}

// MarkDead removes a shard from routing; keys it owned re-route to
// their next-highest-scoring live shard. It reports whether the call
// changed anything.
func (m *ShardMap) MarkDead(shard string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead[shard] || !m.has(shard) {
		return false
	}
	m.dead[shard] = true
	m.version++
	return true
}

// MarkAlive returns a shard to routing (e.g. after its health probe
// recovers). It reports whether the call changed anything.
func (m *ShardMap) MarkAlive(shard string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dead[shard] {
		return false
	}
	delete(m.dead, shard)
	m.version++
	return true
}

func (m *ShardMap) has(shard string) bool {
	i := sort.SearchStrings(m.shards, shard)
	return i < len(m.shards) && m.shards[i] == shard
}

// Alive returns the live shards, sorted.
func (m *ShardMap) Alive() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.shards))
	for _, s := range m.shards {
		if !m.dead[s] {
			out = append(out, s)
		}
	}
	return out
}

// Shards returns every configured shard, sorted, dead ones included.
func (m *ShardMap) Shards() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.shards...)
}

// Version returns the liveness-change counter.
func (m *ShardMap) Version() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}
