package service

import (
	"testing"
	"time"

	"mrdspark/internal/block"
	"mrdspark/internal/obs"
)

// TestDeleteWaitsOutInFlightCallThenDetaches pins the session teardown
// seam: Delete returns immediately (the registry lock is never held
// across a session lock), the dropped session only retires after its
// in-flight WithAdvisor call completes, and retirement runs the
// cleanup hook — detaching the session's bus so it stops feeding the
// shared aggregator.
func TestDeleteWaitsOutInFlightCallThenDetaches(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	bus := obs.New()
	agg := obs.NewAggregator()
	detach := agg.Attach(bus)
	sess := r.Create("w", nil, detach)

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_ = sess.WithAdvisor(func(a *Advisor) error {
			close(entered)
			<-release
			// The bus is still attached while the call is in flight.
			bus.Emit(obs.BlockEv(obs.KindHit, 0, block.ID{RDD: 1}, 64))
			return nil
		})
		close(done)
	}()
	<-entered

	start := time.Now()
	if !r.Delete(sess.ID) {
		t.Fatal("Delete did not find the session")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Delete blocked %v on the in-flight call", elapsed)
	}
	select {
	case <-sess.Retired():
		t.Fatal("session retired while a WithAdvisor call was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	<-done
	select {
	case <-sess.Retired():
	case <-time.After(2 * time.Second):
		t.Fatal("session never retired after the in-flight call returned")
	}

	// The in-flight call's emit landed; anything after retirement must
	// not (the cleanup hook detached the bus from the aggregator).
	before := agg.SynthesizeRun("w", "p").Hits
	if before != 1 {
		t.Fatalf("aggregator saw %d hits before detach check; want the in-flight call's 1", before)
	}
	bus.Emit(obs.BlockEv(obs.KindHit, 0, block.ID{RDD: 2}, 64))
	if after := agg.SynthesizeRun("w", "p").Hits; after != before {
		t.Fatalf("retired session still feeds the aggregator: hits %d -> %d", before, after)
	}
}

// TestLRUBoundRetiresEvictee pins that sessions dropped by the LRU
// bound (not just explicit deletes) also run their cleanup and signal
// Retired.
func TestLRUBoundRetiresEvictee(t *testing.T) {
	r := NewRegistry(RegistryConfig{MaxSessions: 1})
	cleaned := make(chan struct{})
	first := r.Create("a", nil, func() { close(cleaned) })
	_ = r.Create("b", nil, nil)
	select {
	case <-first.Retired():
	case <-time.After(2 * time.Second):
		t.Fatal("LRU-evicted session never retired")
	}
	select {
	case <-cleaned:
	default:
		t.Fatal("Retired closed before cleanup ran")
	}
	if lru, _ := r.Evicted(); lru != 1 {
		t.Fatalf("evictedLRU = %d; want 1", lru)
	}
}
