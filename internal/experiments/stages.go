package experiments

import (
	"fmt"

	"mrdspark/internal/cluster"
	"mrdspark/internal/metrics"
	"mrdspark/internal/obs"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// StageBreakdown localizes where MRD's advantage comes from: the same
// workload is run under MRD and LRU with the observability aggregator
// attached, and each executed stage is compared side by side — cache
// outcomes and stage duration. The aggregate JCT ratios elsewhere say
// MRD wins; this table says in which stages.
type StageBreakdown struct {
	Workload string
	// Rows pair stage executions by position (both policies execute the
	// identical stage sequence — the DAG drives the schedule).
	Rows []StageBreakdownRow
	// EvictDistance is MRD's eviction-verdict reference-distance
	// histogram for the run — how far from reuse the victims were.
	EvictDistance *metrics.Histogram
	// PrefetchLead is MRD's prefetch issue→first-use lead-time
	// histogram.
	PrefetchLead *metrics.Histogram
}

// StageBreakdownRow is one executed stage under both policies.
type StageBreakdownRow struct {
	MRD metrics.StageStats
	LRU metrics.StageStats
}

// runObserved is runOne with the event-bus aggregator attached.
func runObserved(spec *workload.Spec, cfg cluster.Config, p PolicySpec) (metrics.Run, *obs.Aggregator) {
	s, err := sim.New(spec.Graph, cfg, p.Factory(spec), spec.Name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s: %v", p.Name(), spec.Name, err))
	}
	agg := s.Observe()
	run := s.Run()
	run.Policy = p.Name()
	return run, agg
}

// StageBreakdownStudy runs the workload at the given working-set cache
// fraction under MRD and LRU and pairs their per-stage aggregates.
func StageBreakdownStudy(cfg cluster.Config, name string, frac float64) StageBreakdown {
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		panic(err)
	}
	ws := workingSet(spec, cfg)
	c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))

	_, mrdAgg := runObserved(spec, c, SpecMRD)
	_, lruAgg := runObserved(spec, c, SpecLRU)

	out := StageBreakdown{
		Workload:      name,
		EvictDistance: mrdAgg.EvictDistance,
		PrefetchLead:  mrdAgg.PrefetchLead,
	}
	mrd, lru := mrdAgg.StageStats(), lruAgg.StageStats()
	n := len(mrd)
	if len(lru) < n {
		n = len(lru)
	}
	for i := 0; i < n; i++ {
		out.Rows = append(out.Rows, StageBreakdownRow{MRD: mrd[i], LRU: lru[i]})
	}
	return out
}

// RenderStageBreakdown formats the per-stage comparison table.
func RenderStageBreakdown(b StageBreakdown) string {
	t := Table{
		Title: fmt.Sprintf("Per-stage breakdown on %s: MRD vs LRU (same stage sequence, paired by execution order)", b.Workload),
		Header: []string{"Stage", "Job", "Kind", "Tasks",
			"MRD dur", "LRU dur", "Δdur",
			"MRD hit/miss", "LRU hit/miss", "MRD pf-used", "MRD purge", "LRU evict"},
	}
	var mrdTotal, lruTotal int64
	for _, r := range b.Rows {
		md, ld := r.MRD.DurationUs(), r.LRU.DurationUs()
		mrdTotal += md
		lruTotal += ld
		delta := "="
		if ld > 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*float64(md-ld)/float64(ld))
		}
		t.Rows = append(t.Rows, []string{
			itoa(r.MRD.StageID), itoa(r.MRD.JobID), r.MRD.Kind, itoa(r.MRD.Tasks),
			ms(md), ms(ld), delta,
			fmt.Sprintf("%d/%d", r.MRD.Hits, r.MRD.Misses),
			fmt.Sprintf("%d/%d", r.LRU.Hits, r.LRU.Misses),
			fmt.Sprint(r.MRD.PrefetchUsed),
			fmt.Sprint(r.MRD.Purged),
			fmt.Sprint(r.LRU.Evictions),
		})
	}
	t.Note = fmt.Sprintf("Summed stage time: MRD %s vs LRU %s.", ms(mrdTotal), ms(lruTotal))
	s := t.Render()
	if b.EvictDistance.Count > 0 {
		s += "\n" + b.EvictDistance.String()
	}
	if b.PrefetchLead.Count > 0 {
		s += "\n" + b.PrefetchLead.String()
	}
	return s
}

// ms renders simulated microseconds as milliseconds.
func ms(us int64) string { return fmt.Sprintf("%.0fms", float64(us)/1000) }
