// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), each regenerating the artifact's rows or
// series from the simulator, plus the ablations DESIGN.md adds. Every
// driver returns structured results and can render them as an aligned
// text table for cmd/experiments and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable result: a title, a header row and data rows.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteString("\n")
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

func pct1(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// human renders a byte count in the paper's style (934M, 5.5G).
func human(b int64) string {
	switch {
	case b >= 10<<30:
		return fmt.Sprintf("%.0fG", float64(b)/float64(1<<30))
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/float64(1<<30))
	case b >= 10<<20:
		return fmt.Sprintf("%.0fM", float64(b)/float64(1<<20))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fK", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
