package experiments

import (
	"fmt"
	"strings"

	"mrdspark/internal/refdist"
	"mrdspark/internal/workload"
)

// Fig2Cell is one (stage, cached RDD) point in the policy-behaviour
// comparison (paper Fig 2): the value each policy's metric assigns the
// RDD while that stage executes. Higher LRU age, lower LRC count and
// higher (or infinite) MRD distance all mean "more likely evicted".
type Fig2Cell struct {
	LRUAge      int  // stages since last access
	LRCCount    int  // remaining references
	MRDDistance int  // stage distance; refdist.Infinite when dead
	Referenced  bool // the stage reads this RDD
	Exists      bool // the RDD has been created by this stage
}

// Fig2Trace is the full matrix for one workload.
type Fig2Trace struct {
	Workload string
	RDDs     []int                    // cached RDD IDs, column order
	Stages   []int                    // executed stage IDs, row order
	Cells    map[int]map[int]Fig2Cell // stage -> rdd -> cell
}

// Fig2 traces the three policies' metrics across the CC workload, the
// workload the paper uses to contrast LRU, LRC and MRD behaviour.
func Fig2(name string) Fig2Trace {
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		panic(err)
	}
	g := spec.Graph
	profile := refdist.FromGraph(g)
	reads := g.StageReads()

	tr := Fig2Trace{Workload: name, RDDs: profile.RDDs(), Cells: map[int]map[int]Fig2Cell{}}
	lastAccess := map[int]int{}
	exists := map[int]bool{}
	for _, s := range g.ExecutedStages() {
		tr.Stages = append(tr.Stages, s.ID)
		readSet := map[int]bool{}
		for _, r := range reads[s.ID] {
			readSet[r.ID] = true
		}
		row := map[int]Fig2Cell{}
		for _, id := range tr.RDDs {
			cell := Fig2Cell{Referenced: readSet[id]}
			if c, ok := profile.Creation(id); ok && c.Stage <= s.ID {
				exists[id] = true
				if _, seen := lastAccess[id]; !seen || c.Stage > lastAccess[id] {
					lastAccess[id] = c.Stage
				}
			}
			if exists[id] {
				cell.Exists = true
				cell.LRUAge = s.ID - lastAccess[id]
				cell.LRCCount = remainingReads(profile, id, s.ID)
				cell.MRDDistance = profile.StageDistance(id, s.ID)
				if readSet[id] {
					lastAccess[id] = s.ID
					cell.LRUAge = 0
				}
			}
			row[id] = cell
		}
		tr.Cells[s.ID] = row
	}
	return tr
}

func remainingReads(p *refdist.Profile, rddID, curStage int) int {
	n := 0
	for _, r := range p.Reads(rddID) {
		if r.Stage >= curStage {
			n++
		}
	}
	return n
}

// RenderFig2 formats the trace for the first maxRDDs cached RDDs as a
// stage-by-RDD matrix of LRU/LRC/MRD values, referenced cells marked
// with '*'.
func RenderFig2(tr Fig2Trace, maxRDDs int) string {
	rdds := tr.RDDs
	if len(rdds) > maxRDDs {
		rdds = rdds[:maxRDDs]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: policy metric traces on %s (cells: LRUage/LRCcount/MRDdist, * = referenced, . = not yet created, inf = no further references)\n", tr.Workload)
	fmt.Fprintf(&b, "%-8s", "stage")
	for _, id := range rdds {
		fmt.Fprintf(&b, "%-16s", fmt.Sprintf("RDD%d", id))
	}
	b.WriteString("\n")
	for _, sid := range tr.Stages {
		fmt.Fprintf(&b, "%-8d", sid)
		for _, id := range rdds {
			c := tr.Cells[sid][id]
			switch {
			case !c.Exists:
				fmt.Fprintf(&b, "%-16s", ".")
			default:
				dist := "inf"
				if !refdist.IsInfinite(c.MRDDistance) {
					dist = itoa(c.MRDDistance)
				}
				mark := ""
				if c.Referenced {
					mark = "*"
				}
				fmt.Fprintf(&b, "%-16s", fmt.Sprintf("%d/%d/%s%s", c.LRUAge, c.LRCCount, dist, mark))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
