package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mrdspark/internal/metrics"
)

func testRun(name string, jct int64) metrics.Run {
	return metrics.Run{Workload: name, Policy: "LRU", JCT: jct, Hits: 10, Misses: 3}
}

func TestCacheStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", testRun("A", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", testRun("B", 200)); err != nil {
		t.Fatal(err)
	}
	// Re-putting the identical entry is a no-op, not a conflict.
	if err := s.Put("key-a", testRun("A", 100)); err != nil {
		t.Fatalf("idempotent re-put failed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	loaded, skipped, rebuilt := s2.LoadReport()
	if loaded != 2 || skipped != 0 || rebuilt {
		t.Fatalf("reopen: loaded=%d skipped=%d rebuilt=%v, want 2/0/false", loaded, skipped, rebuilt)
	}
	run, ok, err := s2.Get("key-a")
	if err != nil || !ok {
		t.Fatalf("Get(key-a) = ok=%v err=%v", ok, err)
	}
	if run != testRun("A", 100) {
		t.Fatalf("round-tripped run differs: %+v", run)
	}
	if _, ok, _ := s2.Get("key-missing"); ok {
		t.Fatal("Get of an unstored key reported a hit")
	}
}

// TestCacheStoreTruncated pins crash tolerance: a file cut mid-entry
// (a process died while appending) loads every whole entry and skips
// the torn one, without error.
func TestCacheStoreTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := s.Put(k, testRun(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, CacheFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last entry in half.
	lines := bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n"))
	last := lines[len(lines)-1]
	truncated := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	truncated = append(truncated, '\n')
	truncated = append(truncated, last[:len(last)/2]...)
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatalf("truncated store must open, got %v", err)
	}
	defer s2.Close()
	loaded, skipped, rebuilt := s2.LoadReport()
	if loaded != 2 || skipped != 1 || rebuilt {
		t.Fatalf("truncated reopen: loaded=%d skipped=%d rebuilt=%v, want 2/1/false", loaded, skipped, rebuilt)
	}
	if _, ok, _ := s2.Get("k3"); ok {
		t.Fatal("the torn entry must not be served")
	}
	// The store still accepts the re-simulated entry afterwards.
	if err := s2.Put("k3", testRun("k3", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestCacheStoreCorrupted pins the content-address check: an entry
// whose payload was altered on disk no longer matches its digest and
// is ignored, never trusted.
func TestCacheStoreCorrupted(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", testRun("G", 7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", testRun("B", 9)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, CacheFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the corrupt entry's workload name in place: still valid
	// JSON, but the digest no longer matches.
	edited := bytes.Replace(b, []byte(`"Workload":"B"`), []byte(`"Workload":"X"`), 1)
	if bytes.Equal(edited, b) {
		t.Fatal("test setup: corruption target not found")
	}
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatalf("corrupted store must open, got %v", err)
	}
	defer s2.Close()
	loaded, skipped, _ := s2.LoadReport()
	if loaded != 1 || skipped != 1 {
		t.Fatalf("corrupted reopen: loaded=%d skipped=%d, want 1/1", loaded, skipped)
	}
	if _, ok, _ := s2.Get("bad"); ok {
		t.Fatal("corrupted entry was served")
	}
	if _, ok, _ := s2.Get("good"); !ok {
		t.Fatal("intact entry was lost")
	}
}

// TestCacheStoreVersionMismatch pins the whole-file rule: any header
// mismatch (future version, wrong magic, not even a header) discards
// the file and rebuilds from nothing.
func TestCacheStoreVersionMismatch(t *testing.T) {
	for name, header := range map[string]string{
		"future-version": `{"magic":"mrdspark-run-cache","version":999}`,
		"wrong-magic":    `{"magic":"someone-elses-jsonl","version":1}`,
		"no-header":      `this is not even json`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, CacheFileName)
			content := header + "\n" + `{"key":"x","id":"y","run":{},"sum":"z"}` + "\n"
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := OpenCacheStore(dir)
			if err != nil {
				t.Fatalf("mismatched store must rebuild, got %v", err)
			}
			defer s.Close()
			_, _, rebuilt := s.LoadReport()
			if !rebuilt || s.Len() != 0 {
				t.Fatalf("rebuilt=%v len=%d, want true/0", rebuilt, s.Len())
			}
			// The rebuilt file round-trips.
			if err := s.Put("fresh", testRun("F", 1)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s2, err := OpenCacheStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if _, ok, _ := s2.Get("fresh"); !ok {
				t.Fatal("entry written after rebuild was lost")
			}
		})
	}
}

// TestCacheStoreCollisionFailsLoudly pins the one condition the store
// must never paper over: two different canonical keys claiming the
// same content address. A fabricated colliding entry (valid digest,
// different ID, same key hash) must fail the open, not silently win.
func TestCacheStoreCollisionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("real-key", testRun("R", 4)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append a forged entry under real-key's hash with a different
	// canonical ID and an internally consistent digest.
	forged := cacheEntry{
		Key: keyHash("real-key"),
		ID:  "forged-other-key",
		Run: testRun("F", 5),
		Sum: entrySum("forged-other-key", testRun("F", 5)),
	}
	line, err := json.Marshal(forged)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CacheFileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenCacheStore(dir); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("colliding entries must fail the open loudly, got %v", err)
	}
}

// TestCacheStorePutConflict pins the in-process half of the collision
// rule: the same canonical key with different run content is a loud
// error (a non-deterministic simulator or a stale key version), never
// a silent overwrite.
func TestCacheStorePutConflict(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCacheStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", testRun("A", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", testRun("A", 2)); err == nil {
		t.Fatal("conflicting run content under one key must fail loudly")
	}
}
