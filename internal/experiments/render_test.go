package experiments

import (
	"strings"
	"testing"

	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

func mkRun(jct int64, hits, misses int64) metrics.Run {
	return metrics.Run{JCT: jct, Hits: hits, Misses: misses}
}

func TestRenderFig4Synthetic(t *testing.T) {
	rows := []Fig4Row{
		{
			Workload: "XX", JobType: workload.IOIntensive,
			CacheFraction: 0.4, CachePerNode: 64 << 20,
			LRU: mkRun(1000, 5, 5), Full: mkRun(530, 9, 1),
			EvictJCT: 0.62, PrefetchJCT: 0.67, FullJCT: 0.53,
		},
	}
	out := RenderFig4(rows)
	for _, want := range []string{"XX", "62%", "67%", "53%", "Average", "shorter bar"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 render missing %q:\n%s", want, out)
		}
	}
	e, p, f := Fig4Averages(rows)
	if e != 0.62 || p != 0.67 || f != 0.53 {
		t.Errorf("averages = %v %v %v", e, p, f)
	}
}

func TestRenderFig5And6Synthetic(t *testing.T) {
	rows := []CompareRow{
		{Workload: "CC", BaselineJCT: 0.9, MRDJCT: 0.55, Improvement: 0.45, BaselineHit: 0.7, MRDHit: 0.9},
		{Workload: "KM", BaselineJCT: 1.0, MRDJCT: 1.0, Improvement: 0, BaselineHit: 0.5, MRDHit: 0.5},
	}
	out5 := RenderFig5(rows)
	for _, want := range []string{"LRC", "CC", "45.0%", "max 45.0% (CC)"} {
		if !strings.Contains(out5, want) {
			t.Errorf("Fig5 render missing %q:\n%s", want, out5)
		}
	}
	out6 := RenderFig6(rows)
	if !strings.Contains(out6, "MemTune") {
		t.Errorf("Fig6 render missing policy name:\n%s", out6)
	}
}

func TestRenderFig7Synthetic(t *testing.T) {
	res := Fig7Result{
		Workload:  "SVD",
		TargetHit: 0.68,
		Points: []Fig7Point{
			{CachePerNode: 32 << 20, TotalCache: 640 << 20,
				LRU: mkRun(2000, 4, 6), LRC: mkRun(1500, 6, 4), MRD: mkRun(1200, 7, 3)},
			{CachePerNode: 64 << 20, TotalCache: 1280 << 20,
				LRU: mkRun(1000, 7, 3), LRC: mkRun(900, 8, 2), MRD: mkRun(800, 9, 1)},
		},
		LRUCacheneed: 1280 << 20, LRCCacheneed: 1280 << 20, MRDCacheneed: 640 << 20,
	}
	out := RenderFig7(res)
	for _, want := range []string{"SVD", "Target hit ratio", "savings", "Hit ratio vs total cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "50.0% cache-space savings") {
		t.Errorf("savings math wrong:\n%s", out)
	}
}

func TestRenderVariantAndFig10Synthetic(t *testing.T) {
	vrows := []VariantRow{{
		Workload: "LP", Context: "activeStages/jobs=3.8", CachePer: 64 << 20,
		AJCT: 0.6, BJCT: 0.9, AHit: 0.95, BHit: 0.7, ALabel: "A", BLabel: "B",
	}}
	out8 := RenderFig8(vrows)
	if !strings.Contains(out8, "LP") || !strings.Contains(out8, "60%") || !strings.Contains(out8, "90%") {
		t.Errorf("Fig8 render wrong:\n%s", out8)
	}
	out9 := RenderFig9(vrows)
	if !strings.Contains(out9, "Ad-hoc") {
		t.Errorf("Fig9 render wrong:\n%s", out9)
	}

	frows := []Fig10Row{{
		Workload: "CC", Iters1: 8, Iters3: 24, Jobs1: 6, Jobs3: 14,
		Stages1: 16, Stages3: 40, JCT1: 0.65, JCT3: 0.53, Hit1: 0.87, Hit3: 0.84,
	}}
	out10 := RenderFig10(frows)
	for _, want := range []string{"CC", "65%", "53%", "jobs +133%"} {
		if !strings.Contains(out10, want) {
			t.Errorf("Fig10 render missing %q:\n%s", want, out10)
		}
	}
}

func TestRenderScatterSynthetic(t *testing.T) {
	pts := []ScatterPoint{{Workload: "A", X: 1, Reduction: 0.1}, {Workload: "B", X: 2, Reduction: 0.3}}
	out := RenderScatter("Title", "X", pts, OLS(pts), "note")
	for _, want := range []string{"Title", "A", "B", "R²=1.00", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAblationSynthetic(t *testing.T) {
	rows := []AblationRow{{
		Workload: "SCC", Variant: "MRD", NormJCT: 0.79,
		Run: metrics.Run{Hits: 9, Misses: 1, Evictions: 10, PurgedBlocks: 5, PrefetchUsed: 3, PrefetchIssued: 4},
	}}
	out := RenderAblation("Abl", rows, "n")
	for _, want := range []string{"Abl", "SCC", "MRD", "79%", "90.0%", "3/4", "n"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation render missing %q:\n%s", want, out)
		}
	}
}

func TestFig11Fig12FromSyntheticFig4(t *testing.T) {
	rows := []Fig4Row{}
	for _, name := range workload.SparkBenchNames()[:3] {
		rows = append(rows, Fig4Row{Workload: name, FullJCT: 0.8})
	}
	pts, _ := Fig11(rows)
	if len(pts) != 3 {
		t.Fatalf("Fig11 points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Reduction < 0.199 || p.Reduction > 0.201 {
			t.Errorf("reduction = %v, want ~0.2", p.Reduction)
		}
		if p.X <= 0 {
			t.Errorf("%s: non-positive stage distance %v", p.Workload, p.X)
		}
	}
	pts12, _ := Fig12(rows)
	if len(pts12) != 3 {
		t.Fatalf("Fig12 points = %d", len(pts12))
	}
}
