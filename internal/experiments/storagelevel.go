package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// StorageLevelRow is one (workload, storage level, policy) cell of the
// storage-level study.
type StorageLevelRow struct {
	Workload string
	Level    string // "MEMORY_AND_DISK" or "MEMORY_ONLY"
	Policy   string
	Run      metrics.Run
	NormJCT  float64 // vs LRU at the same level and cache size
}

// StorageLevelStudy contrasts the two caching substrates the simulator
// implements. Under MEMORY_AND_DISK (the evaluation default; a miss
// promotes the block back from local disk) every block access is
// visible in the reference schedule, and schedule-driven policies
// dominate. Under MEMORY_ONLY (Spark's default cache()) a miss
// recomputes through the lineage, which *reads cached ancestors the
// static schedule never mentions* — reference-distance and
// reference-count policies are blind to those reads, and even the
// stage-granular MIN oracle stops being an upper bound. This study
// quantifies the DESIGN.md/EXPERIMENTS.md deviation note.
func StorageLevelStudy(cfg cluster.Config) []StorageLevelRow {
	names := []string{"PR", "CC", "SVD", "LP"}
	policies := []PolicySpec{SpecLRU, SpecLRC, SpecMRDEvictOnly, SpecMIN}
	type variant struct {
		label string
		mo    bool
	}
	variants := []variant{{"MEMORY_AND_DISK", false}, {"MEMORY_ONLY", true}}

	rows := make([]StorageLevelRow, len(names)*len(variants)*len(policies))
	forEach(len(names), func(ni int) {
		name := names[ni]
		// Pick the cache size on the default (restorable) substrate.
		base, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(base, cfg)
		bestJCT := 1e18
		var bestCache int64
		for _, frac := range defaultFractions {
			c := cfg.WithCache(cacheForFraction(base, ws, frac, cfg))
			lru := runOne(base, c, SpecLRU)
			mrd := runOne(base, c, SpecMRD)
			if r := norm(mrd, lru); r < bestJCT {
				bestJCT, bestCache = r, c.CacheBytes
			}
		}
		c := cfg.WithCache(bestCache)
		for vi, v := range variants {
			spec, err := workload.Build(name, workload.Params{MemoryOnly: v.mo})
			if err != nil {
				panic(err)
			}
			lru := runOne(spec, c, SpecLRU)
			for pi, p := range policies {
				run := runOne(spec, c, p)
				rows[(ni*len(variants)+vi)*len(policies)+pi] = StorageLevelRow{
					Workload: name, Level: v.label, Policy: p.Name(),
					Run: run, NormJCT: norm(run, lru),
				}
			}
		}
	})
	return rows
}

// RenderStorageLevel formats the study.
func RenderStorageLevel(rows []StorageLevelRow) string {
	t := Table{
		Title: "Storage-level study: restorable (MEMORY_AND_DISK) vs recompute-on-miss (MEMORY_ONLY) caching",
		Header: []string{"Workload", "Level", "Policy", "NormJCT", "Hit",
			"Promotes", "Recomputes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Level, r.Policy, pct(r.NormJCT), pct1(r.Run.HitRatio()),
			itoa(int(r.Run.DiskPromotes)), itoa(int(r.Run.Recomputes)),
		})
	}
	t.Note = "Under MEMORY_ONLY, recompute cascades perform reads the static reference schedule cannot see;\n" +
		"distance- and count-based policies (and the stage-granular MIN oracle) lose their guarantee there —\n" +
		"the reason the evaluation substrate is MEMORY_AND_DISK, which the paper's prefetching requires anyway."
	return t.Render()
}
