package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// ChaosRow measures one policy on one workload under one fault
// schedule — the generalization of FailureRow from a single crash to
// arbitrary chaos presets and replication factors.
type ChaosRow struct {
	Workload    string
	Policy      string
	Preset      string
	Replication int
	Run         metrics.Run
	// Overhead is the JCT relative to the same policy's healthy run at
	// the same replication factor.
	Overhead float64
	// Reissues counts the MRD_Table re-sends (MRD only).
	Reissues int
	// StaleStages counts node-stages spent inside a stale-table window
	// (MRD with delayed re-issue only).
	StaleStages int
}

// DefaultChaosPresets is the escalation ladder the suite runs: one
// crash, a crash that heals, two rolling crashes, and the combined
// chaos schedule.
var DefaultChaosPresets = []string{"crash", "crash-rejoin", "rolling", "chaos"}

// ChaosSweep runs MRD against LRU and LRC under escalating fault
// schedules and replication factors 1 and 2. Every schedule is seeded,
// so each row is exactly reproducible; the healthy baseline per
// (workload, policy, replication) anchors the overhead column. MRD
// runs with a one-stage table re-issue delay, exercising the graceful
// recency fallback rather than the paper's instantaneous-reissue
// idealization. Nil slice arguments select the defaults: CC/KM/SVD,
// MRD/LRU/LRC, DefaultChaosPresets, replication 1 and 2.
func ChaosSweep(cfg cluster.Config, names, presets []string, repls []int) []ChaosRow {
	if names == nil {
		names = []string{"CC", "KM", "SVD"}
	}
	if presets == nil {
		presets = DefaultChaosPresets
	}
	if repls == nil {
		repls = []int{1, 2}
	}
	policies := []PolicySpec{
		{Kind: "MRD", MRD: core.Options{ReissueDelayStages: 1}, Label: "MRD"},
		SpecLRU,
		SpecLRC,
	}
	perName := len(policies) * len(repls) * (1 + len(presets))
	rows := make([]ChaosRow, len(names)*perName)
	forEach(len(names), func(ni int) {
		name := names[ni]
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(spec, cfg)
		c := cfg.WithCache(cacheForFraction(spec, ws, 0.85, cfg))
		stages := spec.Graph.ActiveStages()

		i := ni * perName
		for _, p := range policies {
			for _, repl := range repls {
				healthy, _, _ := runChaos(name, c, p, healthySchedule(repl))
				rows[i] = ChaosRow{Workload: name, Policy: p.Name(), Preset: "healthy",
					Replication: repl, Run: healthy, Overhead: 1}
				i++
				for _, preset := range presets {
					sched, err := faultFor(preset, c.Nodes, stages, repl)
					if err != nil {
						panic(err)
					}
					run, reissues, stale := runChaos(name, c, p, sched)
					rows[i] = ChaosRow{
						Workload: name, Policy: p.Name(), Preset: preset,
						Replication: repl, Run: run,
						Overhead:    float64(run.JCT) / float64(healthy.JCT),
						Reissues:    reissues,
						StaleStages: stale,
					}
					i++
				}
			}
		}
	})
	return rows
}

// healthySchedule is the no-event baseline at a replication factor:
// replication still costs replica writes, so the baseline must pay
// them too for the overhead column to isolate the faults.
func healthySchedule(repl int) *fault.Schedule {
	return &fault.Schedule{Seed: 42, Replication: repl}
}

// runChaos builds a fresh workload+policy pair (policies carry state
// across runs, so nothing is shared) and simulates it under the
// schedule.
func runChaos(name string, c cluster.Config, p PolicySpec, sched *fault.Schedule) (metrics.Run, int, int) {
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		panic(err)
	}
	factory := p.Factory(spec)
	s, err := sim.New(spec.Graph, c, factory, name)
	if err != nil {
		panic(err)
	}
	if err := s.SetOptions(sim.Options{Fault: sched}); err != nil {
		panic(err)
	}
	run := s.Run()
	run.Policy = p.Name()
	if mgr, ok := factory.(*core.Manager); ok {
		st := mgr.Stats()
		return run, st.TableReissues, st.StaleWindowStages
	}
	return run, 0, 0
}

// RenderChaos formats the chaos sweep.
func RenderChaos(rows []ChaosRow) string {
	t := Table{
		Title: "Chaos sweep: MRD vs LRU/LRC under escalating fault schedules (seeded, reproducible)",
		Header: []string{"Workload", "Policy", "Preset", "Repl", "JCT", "Overhead",
			"Recompute", "ReplicaHits", "Retries", "GiveUps", "Reissues", "Stale"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Policy, r.Preset, itoa(r.Replication),
			r.Run.JCTDuration().String(), pct(r.Overhead),
			human(r.Run.RecomputeBytes), itoa(int(r.Run.ReplicaHits)),
			itoa(int(r.Run.FetchRetries)), itoa(int(r.Run.FetchGiveUps)),
			itoa(r.Reissues), itoa(r.StaleStages),
		})
	}
	t.Note = "Overhead is JCT vs the same policy's healthy run at the same replication factor.\n" +
		"MRD runs with a 1-stage table re-issue delay (graceful recency fallback, §4.4 made\n" +
		"non-instantaneous); replication 2 turns lineage recomputation into replica re-fetches."
	return t.Render()
}
