package experiments

import (
	"strings"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 100} {
		hit := make([]bool, n)
		forEach(n, func(i int) { hit[i] = true })
		for i, h := range hit {
			if !h {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

func TestForEachEachIndexOnce(t *testing.T) {
	const n = 64
	counts := make([]int32, n)
	forEach(n, func(i int) { counts[i]++ })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSeedPerturbsCostsNotStructure(t *testing.T) {
	a, _ := workload.Build("CC", workload.Params{})
	b, _ := workload.Build("CC", workload.Params{Seed: 7})
	c, _ := workload.Build("CC", workload.Params{Seed: 7})

	if len(a.Graph.RDDs) != len(b.Graph.RDDs) || a.Graph.ActiveStages() != b.Graph.ActiveStages() {
		t.Fatal("seed changed DAG structure")
	}
	changed := false
	for i := range a.Graph.RDDs {
		ra, rb, rc := a.Graph.RDDs[i], b.Graph.RDDs[i], c.Graph.RDDs[i]
		if rb.PartSize != rc.PartSize || rb.CostPerPart != rc.CostPerPart {
			t.Fatal("same seed produced different perturbations")
		}
		if ra.PartSize != rb.PartSize {
			changed = true
			// Within ±10%.
			lo, hi := float64(ra.PartSize)*0.89, float64(ra.PartSize)*1.11
			if f := float64(rb.PartSize); f < lo || f > hi {
				t.Fatalf("RDD %d perturbed outside ±10%%: %d -> %d", i, ra.PartSize, rb.PartSize)
			}
		}
	}
	if !changed {
		t.Error("seed perturbed nothing")
	}
}

func TestVarianceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := Variance(cluster.Main(), []string{"SP"}, 3)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Seeds != 3 || r.MeanJCT <= 0 || r.MinJCT > r.MeanJCT || r.MaxJCT < r.MeanJCT {
		t.Errorf("degenerate variance row: %+v", r)
	}
	if r.StdDev < 0 {
		t.Errorf("negative stddev: %v", r.StdDev)
	}
	out := RenderVariance(rows)
	if !strings.Contains(out, "SP") {
		t.Error("render incomplete")
	}
}
