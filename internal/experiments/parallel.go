package experiments

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Simulations are independent and deterministic, so experiments that
// sweep workloads or cache sizes parallelize without changing results;
// fn must only write to its own index's slot.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
