package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Simulations are independent and deterministic, so experiments that
// sweep workloads or cache sizes parallelize without changing results;
// fn must only write to its own index's slot.
func forEach(n int, fn func(i int)) {
	forEachWorkers(0, n, fn)
}

// forEachWorkers is forEach with an explicit worker count (<= 0 means
// GOMAXPROCS). The sweep runner passes the -sweep-workers flag through
// here; the determinism differential proves the count cannot change
// results.
//
// A panic inside fn is recovered in the worker and re-raised from the
// caller with the failing index attached. Without this, a worker panic
// killed the process from a bare goroutine with no hint of which sweep
// entry failed — and left the caller's deferred cleanup unrun.
//
// Failure handling is fail-fast and deterministic on both paths: once
// any fn has panicked, no further index is dispatched (the sequential
// path breaks, the feeder stops), but work already handed to a worker
// still completes. The re-raised panic names the lowest failing index.
// That combination makes the report reproducible: indices are fed in
// increasing order, so the lowest failing index overall has always
// been dispatched before any later failure could stop the feed, and
// taking the minimum over every completed failure always finds it —
// unlike the old "first panic wins", which raced goroutines against
// each other and named a different index run to run.
func forEachWorkers(workers, n int, fn func(i int)) {
	var (
		mu      sync.Mutex
		failIdx = -1
		failVal any
		failed  atomic.Bool
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if failIdx < 0 || i < failIdx {
					failIdx, failVal = i, r
				}
				mu.Unlock()
				failed.Store(true)
			}
		}()
		fn(i)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !failed.Load(); i++ {
			call(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					call(i)
				}
			}()
		}
		for i := 0; i < n && !failed.Load(); i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if failIdx >= 0 {
		panic(fmt.Sprintf("experiments: forEach(%d): fn(%d) panicked: %v", n, failIdx, failVal))
	}
}
