package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Simulations are independent and deterministic, so experiments that
// sweep workloads or cache sizes parallelize without changing results;
// fn must only write to its own index's slot.
//
// A panic inside fn is recovered in the worker and re-raised from the
// caller with the failing index attached. Without this, a worker panic
// killed the process from a bare goroutine with no hint of which sweep
// entry failed — and left the caller's deferred cleanup unrun.
func forEach(n int, fn func(i int)) {
	var (
		mu      sync.Mutex
		failIdx = -1
		failVal any
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if failIdx < 0 {
					failIdx, failVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			call(i)
			if failIdx >= 0 {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					call(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if failIdx >= 0 {
		panic(fmt.Sprintf("experiments: forEach(%d): fn(%d) panicked: %v", n, failIdx, failVal))
	}
}
