package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

// SensitivityRow is one (workload, disk bandwidth) point of the
// I/O-intensity sensitivity sweep.
type SensitivityRow struct {
	Workload string
	DiskMBps int64
	// MRDJCT is full MRD's JCT normalized to LRU at the same
	// bandwidth and cache size.
	MRDJCT float64
	LRUHit float64
	MRDHit float64
}

// Sensitivity sweeps the per-node disk bandwidth and measures MRD's
// normalized JCT at each point. The paper's §5.10 claims MRD "works
// best for I/O-intensive workloads"; this sweep makes the claim
// causal: the same workload moves from I/O-bound (slow disks, big MRD
// wins) to compute-bound (fast disks, wins vanish) with nothing else
// changing.
func Sensitivity(base cluster.Config, names []string, diskMBps []int64) []SensitivityRow {
	rows := make([]SensitivityRow, len(names)*len(diskMBps))
	forEach(len(names), func(ni int) {
		name := names[ni]
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		// Fix the cache size once (at the base bandwidth) so only the
		// disk speed varies across the sweep.
		ws := workingSet(spec, base)
		cache := cacheForFraction(spec, ws, 0.85, base)
		for di, mbps := range diskMBps {
			cfg := base.WithCache(cache)
			cfg.DiskBytesPerSec = mbps * cluster.MB
			lru := runOne(spec, cfg, SpecLRU)
			mrd := runOne(spec, cfg, SpecMRD)
			rows[ni*len(diskMBps)+di] = SensitivityRow{
				Workload: name, DiskMBps: mbps,
				MRDJCT: norm(mrd, lru),
				LRUHit: lru.HitRatio(), MRDHit: mrd.HitRatio(),
			}
		}
	})
	return rows
}

// RenderSensitivity formats the sweep with a bar chart per workload.
func RenderSensitivity(rows []SensitivityRow) string {
	t := Table{
		Title:  "I/O-intensity sensitivity: MRD's gain vs disk bandwidth (cache fixed per workload)",
		Header: []string{"Workload", "Disk MB/s", "MRD JCT", "LRU hit", "MRD hit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, itoa(int(r.DiskMBps)), pct(r.MRDJCT), pct1(r.LRUHit), pct1(r.MRDHit),
		})
	}
	t.Note = "Slower disks make the same workload more I/O-bound; the paper's §5.10 claim predicts MRD's\n" +
		"normalized JCT falls (bigger win) as bandwidth drops and approaches 100% as compute dominates."
	return t.Render()
}
