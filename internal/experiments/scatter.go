package experiments

import (
	"fmt"

	"mrdspark/internal/refdist"
	"mrdspark/internal/workload"
)

// ScatterPoint is one workload in the performance-correlation plots
// (paper Figs 11 and 12): the workload property on X, the JCT
// reduction under full MRD on Y.
type ScatterPoint struct {
	Workload string
	X        float64
	// Reduction is 1 - normalized JCT: the fraction of LRU's runtime
	// MRD eliminated.
	Reduction float64
}

// Trend is an ordinary-least-squares fit of the scatter.
type Trend struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// OLS fits y = Slope*x + Intercept and computes R².
func OLS(points []ScatterPoint) Trend {
	n := float64(len(points))
	if n < 2 {
		return Trend{}
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range points {
		sx += p.X
		sy += p.Reduction
		sxx += p.X * p.X
		sxy += p.X * p.Reduction
		syy += p.Reduction * p.Reduction
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Trend{}
	}
	t := Trend{Slope: (n*sxy - sx*sy) / den}
	t.Intercept = (sy - t.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		t.R2 = 1
		return t
	}
	var ssRes float64
	for _, p := range points {
		e := p.Reduction - (t.Slope*p.X + t.Intercept)
		ssRes += e * e
	}
	t.R2 = 1 - ssRes/ssTot
	return t
}

// Fig11 relates each workload's JCT reduction to its average stage
// distance (paper §5.10, R²=0.46 trendline). It reuses the Fig 4 rows
// so both scatters describe the same runs.
func Fig11(rows []Fig4Row) ([]ScatterPoint, Trend) {
	var pts []ScatterPoint
	for _, r := range rows {
		spec, err := workload.Build(r.Workload, workload.Params{})
		if err != nil {
			panic(err)
		}
		st := refdist.FromGraph(spec.Graph).Stats()
		pts = append(pts, ScatterPoint{Workload: r.Workload, X: st.AvgStageDistance, Reduction: 1 - r.FullJCT})
	}
	return pts, OLS(pts)
}

// Fig12 relates each workload's JCT reduction to its average cached
// references per active stage (paper §5.10, R²=0.71 trendline).
func Fig12(rows []Fig4Row) ([]ScatterPoint, Trend) {
	var pts []ScatterPoint
	for _, r := range rows {
		spec, err := workload.Build(r.Workload, workload.Params{})
		if err != nil {
			panic(err)
		}
		c := spec.Graph.Characterize()
		pts = append(pts, ScatterPoint{Workload: r.Workload, X: c.RefsPerStage, Reduction: 1 - r.FullJCT})
	}
	return pts, OLS(pts)
}

// RenderScatter formats one correlation plot as a table plus its
// trendline.
func RenderScatter(title, xLabel string, pts []ScatterPoint, tr Trend, paperNote string) string {
	t := Table{
		Title:  title,
		Header: []string{"Workload", xLabel, "JCT reduction"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.Workload, f2(p.X), pct1(p.Reduction)})
	}
	t.Note = fmt.Sprintf("Trendline: reduction = %.4f*x + %.4f, R²=%.2f. %s",
		tr.Slope, tr.Intercept, tr.R2, paperNote)
	return t.Render()
}
