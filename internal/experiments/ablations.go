package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// The ablations are reproductions of design choices the paper asserts
// but does not isolate (DESIGN.md A1–A3): the all-out purge, the
// prefetch threshold and distance pre-check, and the gap to Belady's
// MIN oracle.

// AblationRow is one (workload, variant) measurement.
type AblationRow struct {
	Workload string
	Variant  string
	Run      metrics.Run
	NormJCT  float64 // vs LRU at the same cache size
}

// ablate runs the variants at the cache size where full MRD gains most.
func ablate(names []string, cfg cluster.Config, variants []PolicySpec) []AblationRow {
	rows := make([]AblationRow, len(names)*len(variants))
	forEach(len(names), func(ni int) {
		name := names[ni]
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(spec, cfg)
		bestJCT := 1e18
		var bestCache int64
		var bestLRU metrics.Run
		for _, frac := range defaultFractions {
			c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
			lru := runOne(spec, c, SpecLRU)
			mrd := runOne(spec, c, SpecMRD)
			if r := norm(mrd, lru); r < bestJCT {
				bestJCT, bestCache, bestLRU = r, c.CacheBytes, lru
			}
		}
		c := cfg.WithCache(bestCache)
		for vi, v := range variants {
			run := runOne(spec, c, v)
			rows[ni*len(variants)+vi] = AblationRow{
				Workload: name, Variant: v.Name(), Run: run, NormJCT: norm(run, bestLRU),
			}
		}
	})
	return rows
}

// AblationPurge isolates the all-out purge order (A1): full MRD vs MRD
// with the purge disabled, on the workloads with the most dead
// generations.
func AblationPurge(cfg cluster.Config) []AblationRow {
	return ablate([]string{"SCC", "LP", "PO"}, cfg, []PolicySpec{
		SpecMRD,
		{Kind: "MRD", MRD: core.Options{DisablePurge: true}, Label: "MRD-nopurge"},
	})
}

// AblationThreshold sweeps the prefetch memory threshold the paper
// fixes at 25% (§4.3, and its future-work note about making it
// dynamic), plus the issue-time distance pre-check of §4.4 (A2).
func AblationThreshold(cfg cluster.Config) []AblationRow {
	return ablate([]string{"SVD", "PR", "KM"}, cfg, []PolicySpec{
		{Kind: "MRD", MRD: core.Options{PrefetchThreshold: 0.10}, Label: "MRD-t10"},
		SpecMRD, // 25%
		{Kind: "MRD", MRD: core.Options{PrefetchThreshold: 0.50}, Label: "MRD-t50"},
		{Kind: "MRD", MRD: core.Options{PrefetchDistanceCheck: true}, Label: "MRD-precheck"},
	})
}

// AblationDynamicThreshold compares the fixed 25% threshold against
// the adaptive controller the paper's conclusion names as future work
// (A4), including a deliberately bad fixed setting as the case the
// controller should escape.
func AblationDynamicThreshold(cfg cluster.Config) []AblationRow {
	return ablate([]string{"SVD", "CC", "KM"}, cfg, []PolicySpec{
		SpecMRD,
		{Kind: "MRD", MRD: core.Options{PrefetchThreshold: 0.85}, Label: "MRD-t85"},
		{Kind: "MRD", MRD: core.Options{DynamicThreshold: true}, Label: "MRD-dynamic"},
		{Kind: "MRD", MRD: core.Options{DynamicThreshold: true, PrefetchThreshold: 0.85}, Label: "MRD-dyn-from85"},
	})
}

// AblationTieBreak compares the equal-distance tie-breaking strategies
// (§3.3 leaves the prioritization as future work) on workloads whose
// cached RDDs differ most in block size (A5).
func AblationTieBreak(cfg cluster.Config) []AblationRow {
	return ablate([]string{"KM", "TC", "SVD"}, cfg, []PolicySpec{
		SpecMRD, // LRU tie-break
		{Kind: "MRD", MRD: core.Options{TieBreak: core.TieLargestFirst}, Label: "MRD-tie-largest"},
		{Kind: "MRD", MRD: core.Options{TieBreak: core.TieSmallestFirst}, Label: "MRD-tie-smallest"},
		{Kind: "MRD", MRD: core.Options{TieBreak: core.TieCheapestRestore}, Label: "MRD-tie-cheapest"},
	})
}

// BaselineOblivious races MRD against the DAG-oblivious policies the
// paper's §2 cites as orthogonal (Hyperbolic caching) plus classic
// references (GreedyDual-Size, LFU), on the I/O-intensive workloads.
func BaselineOblivious(cfg cluster.Config) []AblationRow {
	return ablate([]string{"PR", "CC", "SVD", "LP"}, cfg, []PolicySpec{
		SpecLRU,
		{Kind: "LFU"},
		{Kind: "Hyperbolic"},
		{Kind: "GDS"},
		SpecMRD,
	})
}

// AblationMIN compares every policy against the Belady MIN oracle
// (A3): how much of the clairvoyant headroom MRD's stage-granular
// approximation captures.
func AblationMIN(cfg cluster.Config) []AblationRow {
	return ablate(workload.SparkBenchNames(), cfg, []PolicySpec{
		SpecLRU, SpecLRC, SpecMRDEvictOnly, SpecMIN,
	})
}

// RenderAblation formats ablation rows grouped by workload.
func RenderAblation(title string, rows []AblationRow, note string) string {
	t := Table{
		Title:  title,
		Header: []string{"Workload", "Variant", "NormJCT", "Hit", "Evictions", "Purged", "Prefetch used/issued"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Variant, pct(r.NormJCT), pct1(r.Run.HitRatio()),
			itoa(int(r.Run.Evictions)), itoa(int(r.Run.PurgedBlocks)),
			itoa(int(r.Run.PrefetchUsed)) + "/" + itoa(int(r.Run.PrefetchIssued)),
		})
	}
	t.Note = note
	return t.Render()
}
