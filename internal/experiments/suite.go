package experiments

import (
	"fmt"
	"io"
	"time"

	"mrdspark/internal/cluster"
)

// Experiment is one runnable artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func() string
}

// Suite returns every experiment in paper order. Figures that share
// runs (4, 11, 12) still execute independently so each ID is
// self-contained.
func Suite() []Experiment {
	main := cluster.Main
	return []Experiment{
		{"fig2", "Policy behaviour comparison on CC", func() string {
			return RenderFig2(Fig2("CC"), 10)
		}},
		{"table1", "Reference distance characteristics", func() string {
			return RenderTable1(Table1())
		}},
		{"table3", "SparkBench benchmark characteristics", func() string {
			return RenderTable3(Table3())
		}},
		{"fig4", "Overall performance of MRD", func() string {
			return RenderFig4(Fig4(main()))
		}},
		{"fig5", "Comparison to LRC", func() string {
			return RenderFig5(Fig5())
		}},
		{"fig6", "Comparison to MemTune", func() string {
			return RenderFig6(Fig6())
		}},
		{"fig7", "Impact of cache sizes (SVD++)", func() string {
			return RenderFig7(Fig7())
		}},
		{"fig8", "Stage distance vs job distance", func() string {
			return RenderFig8(Fig8(main()))
		}},
		{"fig9", "Ad-hoc vs recurring runs", func() string {
			return RenderFig9(Fig9(main()))
		}},
		{"fig10", "Impact of iterations", func() string {
			return RenderFig10(Fig10(main()))
		}},
		{"fig11", "Performance vs stage distance", func() string {
			pts, tr := Fig11(Fig4(main()))
			return RenderScatter(
				"Figure 11: Relationship of performance and stage distance",
				"AvgStageDist", pts, tr, "Paper trendline R²=0.46.")
		}},
		{"fig12", "Performance vs references per stage", func() string {
			pts, tr := Fig12(Fig4(main()))
			return RenderScatter(
				"Figure 12: Relationship of performance and references per stage",
				"Refs/Stage", pts, tr, "Paper trendline R²=0.71.")
		}},
		{"ablation-purge", "A1: all-out purge on/off", func() string {
			return RenderAblation("Ablation A1: infinite-distance purge",
				AblationPurge(main()),
				"Full MRD vs MRD without the cluster-wide purge order (paper asserts the aggressive purge frees space earlier; not isolated there).")
		}},
		{"ablation-threshold", "A2: prefetch threshold sweep", func() string {
			return RenderAblation("Ablation A2: prefetch threshold and distance pre-check",
				AblationThreshold(main()),
				"The paper fixes the threshold at 25% experimentally and leaves the pre-check as future work (§4.3, §4.4).")
		}},
		{"ablation-min", "A3: distance to Belady MIN", func() string {
			return RenderAblation("Ablation A3: eviction policies vs the MIN oracle",
				AblationMIN(main()),
				"MIN is Belady's clairvoyant bound (§3.1); MRD eviction approximates it at stage granularity.")
		}},
		{"ablation-dynamic", "A4: dynamic prefetch threshold", func() string {
			return RenderAblation("Ablation A4: fixed vs adaptive prefetch threshold (paper future work §6)",
				AblationDynamicThreshold(main()),
				"MRD-dynamic adapts the forced-prefetch threshold from prefetch-outcome reports; MRD-dyn-from85 must recover from a bad initial setting.")
		}},
		{"ablation-tiebreak", "A5: equal-distance tie-breaking", func() string {
			return RenderAblation("Ablation A5: tie-breaking among equal-distance victims (paper future work §3.3)",
				AblationTieBreak(main()),
				"LRU (paper's implicit behaviour) vs largest-first and smallest-first size-aware tie-breaks.")
		}},
		{"variance", "Multi-seed robustness (20 runs per config, as in §5.3)", func() string {
			return RenderVariance(Variance(main(), []string{"SCC", "PO", "CC", "SVD", "KM"}, 20))
		}},
		{"extensions", "Extension workloads beyond the paper's suites", func() string {
			return RenderExtensions(Extensions(main()))
		}},
		{"sensitivity", "I/O-intensity sensitivity (disk-bandwidth sweep)", func() string {
			return RenderSensitivity(Sensitivity(main(),
				[]string{"CC", "PO", "SVD"}, []int64{10, 20, 35, 70, 140, 280}))
		}},
		{"failure", "Fault tolerance under node loss (§4.4)", func() string {
			return RenderFailure(FailureSweep(main()))
		}},
		{"chaos", "Chaos schedules, replication and graceful degradation", func() string {
			return RenderChaos(ChaosSweep(main(), nil, nil, nil))
		}},
		{"stages", "Per-stage breakdown of MRD's win over LRU (event-bus aggregates)", func() string {
			return RenderStageBreakdown(StageBreakdownStudy(main(), "SCC", 0.4))
		}},
		{"storage-level", "Restorable vs recompute-on-miss caching", func() string {
			return RenderStorageLevel(StorageLevelStudy(main()))
		}},
		{"baseline-oblivious", "DAG-oblivious baselines (Hyperbolic, GDS, LFU)", func() string {
			return RenderAblation("DAG-oblivious baselines vs MRD (paper §2's orthogonal related work)",
				BaselineOblivious(main()),
				"Hyperbolic caching (Blankstein et al. 2017) and GreedyDual-Size have no DAG information; the gap to MRD is the value of the DAG.")
		}},
	}
}

// RunSuite executes the selected experiments (nil or empty selection
// means all), writing each section to w with timing lines and a final
// run-cache accounting line: the suite shares the same memoized (and,
// when installed, persistent) run cache as the sweep fabric, so the
// line shows how much of the suite replayed instead of simulating.
func RunSuite(w io.Writer, only map[string]bool) error {
	before := ReadCacheStats()
	for _, e := range Suite() {
		if len(only) > 0 && !only[e.ID] {
			continue
		}
		start := time.Now()
		body := e.Run()
		if _, err := fmt.Fprintf(w, "== %s: %s (ran in %v)\n\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), body); err != nil {
			return err
		}
	}
	stats := ReadCacheStats()
	stats.MemoHits -= before.MemoHits
	stats.DiskHits -= before.DiskHits
	stats.Simulated -= before.Simulated
	stats.Waits -= before.Waits
	_, err := fmt.Fprintf(w, "== run cache: %s\n", stats)
	return err
}
