package experiments

import (
	"fmt"
	"strings"
)

// barChart renders a horizontal ASCII bar chart: one row per label,
// bars scaled to scaleMax (0 = max value). It is how cmd/experiments
// approximates the paper's figures in a terminal.
func barChart(title string, labels []string, values []float64, render func(float64) string, scaleMax float64) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if scaleMax <= 0 {
		for _, v := range values {
			if v > scaleMax {
				scaleMax = v
			}
		}
	}
	if scaleMax <= 0 {
		scaleMax = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	const width = 44
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	for i, l := range labels {
		v := values[i]
		n := int(v / scaleMax * width)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "  %-*s %s%s %s\n", labelW, l,
			strings.Repeat("#", n), strings.Repeat(".", width-n), render(v))
	}
	return b.String()
}

// seriesChart renders several aligned series as grouped bars — one
// block per label with one bar per series.
func seriesChart(title string, labels []string, series map[string][]float64, order []string, render func(float64) string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	scaleMax := 0.0
	for _, vs := range series {
		for _, v := range vs {
			if v > scaleMax {
				scaleMax = v
			}
		}
	}
	if scaleMax <= 0 {
		scaleMax = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	const width = 36
	for i, l := range labels {
		for j, name := range order {
			vs := series[name]
			if i >= len(vs) {
				continue
			}
			v := vs[i]
			n := int(v / scaleMax * width)
			if n > width {
				n = width
			}
			if n < 0 {
				n = 0
			}
			lbl := ""
			if j == 0 {
				lbl = l
			}
			fmt.Fprintf(&b, "  %-*s %-*s %s%s %s\n", labelW, lbl, nameW, name,
				strings.Repeat("#", n), strings.Repeat(".", width-n), render(v))
		}
	}
	return b.String()
}
