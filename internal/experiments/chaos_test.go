package experiments

import (
	"math"
	"strings"
	"testing"

	"mrdspark/internal/cluster"
)

// TestChaosSweepSingleCrash is the acceptance check for the fault
// subsystem: under a single-node failure MRD's JCT overhead stays
// finite and bounded for CC, KM and SVD at replication factors 1 and
// 2, and replication turns lineage recomputation into replica hits.
func TestChaosSweepSingleCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := ChaosSweep(cluster.Main(), nil, []string{"crash"}, nil)
	// 3 workloads x 3 policies x 2 replications x (healthy + crash).
	if len(rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Run.Jobs == 0 {
			t.Errorf("%s/%s/%s repl=%d completed no jobs",
				r.Workload, r.Policy, r.Preset, r.Replication)
		}
		if math.IsInf(r.Overhead, 0) || math.IsNaN(r.Overhead) || r.Overhead <= 0 {
			t.Errorf("%s/%s/%s repl=%d overhead %v not finite",
				r.Workload, r.Policy, r.Preset, r.Replication, r.Overhead)
		}
		if r.Preset == "crash" && r.Overhead > 4 {
			t.Errorf("%s/%s repl=%d crash overhead %.2f unbounded",
				r.Workload, r.Policy, r.Replication, r.Overhead)
		}
		if r.Policy == "MRD" && r.Preset == "crash" {
			seen[r.Workload] = true
			if r.Reissues == 0 {
				t.Errorf("%s MRD crash run re-issued no tables", r.Workload)
			}
			if r.StaleStages == 0 {
				t.Errorf("%s MRD crash run saw no stale-table window", r.Workload)
			}
			if r.Replication == 2 && r.Run.ReplicaHits == 0 {
				t.Errorf("%s MRD crash at replication 2 hit no replicas", r.Workload)
			}
		}
	}
	for _, w := range []string{"CC", "KM", "SVD"} {
		if !seen[w] {
			t.Errorf("no MRD crash row for %s", w)
		}
	}

	out := RenderChaos(rows)
	for _, want := range []string{"Chaos sweep", "Overhead", "crash", "healthy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestChaosSweepDeterministic: the sweep is seeded end to end, so the
// same call produces identical rows — the reproducibility contract the
// chaos suite advertises.
func TestChaosSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	sweep := func() []ChaosRow {
		return ChaosSweep(cluster.Main(), []string{"KM"}, []string{"chaos"}, []int{2})
	}
	a, b := sweep(), sweep()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
