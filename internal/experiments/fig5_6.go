package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

// CompareRow is one workload's result in a policy-vs-MRD comparison
// (paper Figs 5 and 6): each policy's best normalized JCT over the
// cache sweep, taken independently — the paper compares "the best
// values from their experiments and ours".
type CompareRow struct {
	Workload string
	// BaselineJCT and MRDJCT are normalized to LRU at the same cache
	// size (lower is better).
	BaselineJCT float64
	MRDJCT      float64
	// Improvement is how much faster MRD is than the baseline policy
	// (1 - MRD/baseline as absolute runtimes).
	Improvement float64
	BaselineHit float64
	MRDHit      float64
}

// comparePolicies runs the baseline policy and full MRD across the
// cache sweep on the given cluster, picking each policy's best point.
func comparePolicies(baseline PolicySpec, cfg cluster.Config, names []string) []CompareRow {
	rows := make([]CompareRow, len(names))
	forEach(len(names), func(i int) {
		name := names[i]
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(spec, cfg)
		row := CompareRow{Workload: name, BaselineJCT: 1e18, MRDJCT: 1e18}
		for _, frac := range defaultFractions {
			c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
			lru := runOne(spec, c, SpecLRU)
			base := runOne(spec, c, baseline)
			mrd := runOne(spec, c, SpecMRD)
			// Each policy's best point is where it gains most over
			// LRU at the same cache size (the paper's "best values
			// from their experiments and ours").
			if r := norm(base, lru); r < row.BaselineJCT {
				row.BaselineJCT = r
				row.BaselineHit = base.HitRatio()
			}
			if r := norm(mrd, lru); r < row.MRDJCT {
				row.MRDJCT = r
				row.MRDHit = mrd.HitRatio()
			}
		}
		row.Improvement = 1 - row.MRDJCT/row.BaselineJCT
		rows[i] = row
	})
	return rows
}

// Fig5 compares MRD to LRC on the 20-node LRC cluster (paper §5.4:
// MRD better by up to 45%, 30% on average).
func Fig5() []CompareRow {
	return comparePolicies(SpecLRC, cluster.LRC(), workload.SparkBenchNames())
}

// Fig6 compares MRD to MemTune on the 6-node MemTune cluster (paper
// §5.5: MRD better by up to 68%, 33% on average, with LogR slightly
// behind).
func Fig6() []CompareRow {
	return comparePolicies(SpecMemTune, cluster.MemTune(), workload.SparkBenchNames())
}

func renderCompare(title, baseName string, rows []CompareRow, paperNote string) string {
	t := Table{
		Title: title,
		Header: []string{"Workload", baseName + " JCT", "MRD JCT",
			"MRD vs " + baseName, baseName + " hit", "MRD hit"},
	}
	var sum float64
	max := 0.0
	maxName := ""
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, pct(r.BaselineJCT), pct(r.MRDJCT),
			pct1(r.Improvement), pct1(r.BaselineHit), pct1(r.MRDHit),
		})
		sum += r.Improvement
		if r.Improvement > max {
			max, maxName = r.Improvement, r.Workload
		}
	}
	t.Note = "MRD improvement over " + baseName + ": average " + pct1(sum/float64(len(rows))) +
		", max " + pct1(max) + " (" + maxName + "). " + paperNote
	return t.Render()
}

// RenderFig5 formats the LRC comparison.
func RenderFig5(rows []CompareRow) string {
	return renderCompare(
		"Figure 5: Comparison to LRC policy (JCT normalized to LRU, LRC cluster)",
		"LRC", rows, "Paper: average 30%, up to 45% (CC).")
}

// RenderFig6 formats the MemTune comparison.
func RenderFig6(rows []CompareRow) string {
	return renderCompare(
		"Figure 6: Comparison to MemTune policy (JCT normalized to LRU, MemTune cluster)",
		"MemTune", rows, "Paper: average 33%, up to 68% (PR), LogR slightly negative.")
}
