package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

func TestForEachPanicAttachesIndex(t *testing.T) {
	for _, n := range []int{1, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected forEach to re-raise the worker panic")
				}
				s := fmt.Sprint(r)
				if !strings.Contains(s, fmt.Sprintf("fn(%d)", n-1)) || !strings.Contains(s, "boom") {
					t.Fatalf("panic %q does not name the failing index", s)
				}
			}()
			forEach(n, func(i int) {
				if i == n-1 {
					panic("boom")
				}
			})
		})
	}
}

// TestForEachReportsLowestFailingIndex pins the determinism half of
// the fail-fast contract: when several indices panic, the re-raised
// panic names the lowest one, regardless of which failure completed
// first. Index 9 panics immediately; index 1 panics only after a
// sleep, so "first panic wins" (the old behaviour) would name 9 on
// essentially every run.
func TestForEachReportsLowestFailingIndex(t *testing.T) {
	for name, workers := range map[string]int{"sequential": 1, "parallel": 4} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected forEach to re-raise the worker panic")
				}
				s := fmt.Sprint(r)
				if !strings.Contains(s, "fn(1) panicked") {
					t.Fatalf("panic %q does not name the lowest failing index 1", s)
				}
			}()
			forEachWorkers(workers, 16, func(i int) {
				switch i {
				case 1:
					time.Sleep(30 * time.Millisecond)
					panic("slow low failure")
				case 9:
					panic("fast high failure")
				default:
					time.Sleep(5 * time.Millisecond)
				}
			})
		})
	}
}

// TestForEachStopsFeedingAfterFailure pins the fail-fast half: after a
// panic, no further indices are dispatched on either path. The old
// parallel path kept feeding all remaining indices even though the
// sweep was already doomed.
func TestForEachStopsFeedingAfterFailure(t *testing.T) {
	for name, workers := range map[string]int{"sequential": 1, "parallel": 4} {
		t.Run(name, func(t *testing.T) {
			const n = 256
			var calls atomic.Int64
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("expected forEach to re-raise the worker panic")
					}
				}()
				forEachWorkers(workers, n, func(i int) {
					calls.Add(1)
					if i == 0 {
						panic("boom")
					}
					// Give the feeder time to observe the failure before the
					// workers could drain the whole range.
					time.Sleep(2 * time.Millisecond)
				})
			}()
			if got := calls.Load(); got > n/2 {
				t.Fatalf("dispatched %d of %d indices after the failure; feeding did not stop", got, n)
			}
		})
	}
}

func TestRunCacheMemoizes(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	spec, err := workload.Build("KM", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Main().WithCache(64 << 20)

	a := runOne(spec, cfg, SpecLRU)
	if n := RunCacheLen(); n != 1 {
		t.Fatalf("after first run: %d cache entries, want 1", n)
	}
	b := runOne(spec, cfg, SpecLRU)
	if a != b {
		t.Fatalf("cached replay differs from original run:\n a=%+v\n b=%+v", a, b)
	}
	if n := RunCacheLen(); n != 1 {
		t.Fatalf("repeat run grew the cache to %d entries", n)
	}

	// Distinct generation params, policies, and cluster configs must
	// key separately even for the same workload name.
	seeded, err := workload.Build("KM", workload.Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	runOne(seeded, cfg, SpecLRU)
	runOne(spec, cfg, SpecMRD)
	runOne(spec, cfg.WithCache(32<<20), SpecLRU)
	if n := RunCacheLen(); n != 4 {
		t.Fatalf("distinct configurations share entries: %d, want 4", n)
	}
}

// TestRunCachedSingleflight pins the concurrent-miss gate: N callers
// racing on one cold key must produce exactly one simulation, with
// everyone receiving the identical run. Before the gate, each racer
// simulated the full run and last-store won.
func TestRunCachedSingleflight(t *testing.T) {
	ResetRunCache()
	ResetCacheStats()
	defer ResetRunCache()
	defer ResetCacheStats()

	spec, err := workload.Build("KM", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Main().WithCache(64 << 20)

	// Widen the race window: every real simulation stalls long enough
	// for all racers to reach the miss path.
	simHook = func() { time.Sleep(50 * time.Millisecond) }
	defer func() { simHook = nil }()

	const racers = 16
	var wg sync.WaitGroup
	results := make([]string, racers)
	for k := 0; k < racers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			run, err := RunCached(spec, cfg, SpecLRU)
			if err != nil {
				results[k] = "error: " + err.Error()
				return
			}
			results[k] = run.String()
		}(k)
	}
	wg.Wait()

	for k := 1; k < racers; k++ {
		if results[k] != results[0] {
			t.Fatalf("racer %d saw a different run:\n %s\n vs\n %s", k, results[k], results[0])
		}
	}
	stats := ReadCacheStats()
	if stats.Simulated != 1 {
		t.Fatalf("concurrent misses on one key simulated %d times, want exactly 1 (stats: %s)",
			stats.Simulated, stats)
	}
	if got := stats.Simulated + stats.MemoHits + stats.Waits; got != racers {
		t.Fatalf("stats do not account for all %d racers: %s", racers, stats)
	}
	if n := RunCacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries after singleflight fill, want 1", n)
	}
}
