package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

func TestForEachPanicAttachesIndex(t *testing.T) {
	for _, n := range []int{1, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected forEach to re-raise the worker panic")
				}
				s := fmt.Sprint(r)
				if !strings.Contains(s, fmt.Sprintf("fn(%d)", n-1)) || !strings.Contains(s, "boom") {
					t.Fatalf("panic %q does not name the failing index", s)
				}
			}()
			forEach(n, func(i int) {
				if i == n-1 {
					panic("boom")
				}
			})
		})
	}
}

func TestRunCacheMemoizes(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	spec, err := workload.Build("KM", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Main().WithCache(64 << 20)

	a := runOne(spec, cfg, SpecLRU)
	if n := runCacheLen(); n != 1 {
		t.Fatalf("after first run: %d cache entries, want 1", n)
	}
	b := runOne(spec, cfg, SpecLRU)
	if a != b {
		t.Fatalf("cached replay differs from original run:\n a=%+v\n b=%+v", a, b)
	}
	if n := runCacheLen(); n != 1 {
		t.Fatalf("repeat run grew the cache to %d entries", n)
	}

	// Distinct generation params, policies, and cluster configs must
	// key separately even for the same workload name.
	seeded, err := workload.Build("KM", workload.Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	runOne(seeded, cfg, SpecLRU)
	runOne(spec, cfg, SpecMRD)
	runOne(spec, cfg.WithCache(32<<20), SpecLRU)
	if n := runCacheLen(); n != 4 {
		t.Fatalf("distinct configurations share entries: %d, want 4", n)
	}
}

func runCacheLen() int {
	n := 0
	runCache.Range(func(_, _ any) bool { n++; return true })
	return n
}
