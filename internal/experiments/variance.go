package experiments

import (
	"math"

	"mrdspark/internal/cluster"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// VarianceRow reports a workload's MRD-vs-LRU result averaged over
// several seeded runs — the paper's methodology of averaging each
// configuration over 20 runs (§5.3). Each seed perturbs data sizes and
// compute costs by ±10% ("recurring application, new data"), so the
// spread shows how robust the normalized-JCT result is.
type VarianceRow struct {
	Workload string
	Seeds    int
	// MeanJCT/MinJCT/MaxJCT are normalized (MRD / LRU, same seed).
	MeanJCT, MinJCT, MaxJCT float64
	StdDev                  float64
	MeanLRUHit, MeanMRDHit  float64
	// MRDJCTSigma is the population stddev of the MRD runs' absolute
	// JCTs in µs — how much the perturbed instances themselves spread,
	// as opposed to StdDev, which spreads the MRD/LRU ratio.
	MRDJCTSigma float64
	// MRDPrefetchAcc is the mean prefetch accuracy across the MRD runs.
	MRDPrefetchAcc float64
}

// Variance runs the given workloads over `seeds` perturbed instances
// at the workload's best cache fraction (determined once on the
// unperturbed instance) and aggregates the normalized JCTs.
func Variance(cfg cluster.Config, names []string, seeds int) []VarianceRow {
	rows := make([]VarianceRow, len(names))
	forEach(len(names), func(i int) {
		name := names[i]
		base, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(base, cfg)
		bestJCT := 1e18
		var bestCache int64
		for _, frac := range defaultFractions {
			c := cfg.WithCache(cacheForFraction(base, ws, frac, cfg))
			lru := runOne(base, c, SpecLRU)
			mrd := runOne(base, c, SpecMRD)
			if r := norm(mrd, lru); r < bestJCT {
				bestJCT, bestCache = r, c.CacheBytes
			}
		}
		c := cfg.WithCache(bestCache)

		row := VarianceRow{Workload: name, Seeds: seeds, MinJCT: math.Inf(1), MaxJCT: math.Inf(-1)}
		var ratios []float64
		var lruRuns, mrdRuns []metrics.Run
		for s := 1; s <= seeds; s++ {
			spec, err := workload.Build(name, workload.Params{Seed: int64(s)})
			if err != nil {
				panic(err)
			}
			lru := runOne(spec, c, SpecLRU)
			mrd := runOne(spec, c, SpecMRD)
			r := norm(mrd, lru)
			ratios = append(ratios, r)
			lruRuns = append(lruRuns, lru)
			mrdRuns = append(mrdRuns, mrd)
			if r < row.MinJCT {
				row.MinJCT = r
			}
			if r > row.MaxJCT {
				row.MaxJCT = r
			}
		}
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		row.MeanJCT = sum / float64(len(ratios))
		var ss float64
		for _, r := range ratios {
			ss += (r - row.MeanJCT) * (r - row.MeanJCT)
		}
		row.StdDev = math.Sqrt(ss / float64(len(ratios)))
		row.MeanLRUHit = metrics.Aggregate(lruRuns).MeanHit
		mrdSum := metrics.Aggregate(mrdRuns)
		row.MeanMRDHit = mrdSum.MeanHit
		row.MRDJCTSigma = mrdSum.StdDevJCT
		row.MRDPrefetchAcc = mrdSum.MeanPrefetchAcc
		rows[i] = row
	})
	return rows
}

// RenderVariance formats the multi-seed robustness table.
func RenderVariance(rows []VarianceRow) string {
	t := Table{
		Title: "Multi-seed robustness: MRD vs LRU over perturbed recurring runs (±10% data/cost jitter)",
		Header: []string{"Workload", "Seeds", "MeanJCT", "Min", "Max", "StdDev",
			"LRU hit", "MRD hit", "MRD σJCT", "MRD pf-acc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, itoa(r.Seeds), pct(r.MeanJCT), pct(r.MinJCT), pct(r.MaxJCT),
			f2(r.StdDev), pct1(r.MeanLRUHit), pct1(r.MeanMRDHit),
			ms(int64(r.MRDJCTSigma)), pct1(r.MRDPrefetchAcc),
		})
	}
	t.Note = "The paper averages every configuration over 20 runs; here each seed is a recurring run over new data."
	return t.Render()
}
