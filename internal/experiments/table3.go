package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/dag"
	"mrdspark/internal/metrics"
	"mrdspark/internal/policy"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// Table3Row is one SparkBench workload's characteristics (paper
// Table 3): static DAG shape plus I/O volumes measured from a run
// under the default LRU policy.
type Table3Row struct {
	Workload   string
	FullName   string
	Category   string
	JobType    workload.JobType
	InputBytes int64
	Chars      dag.Characteristics
	Run        metrics.Run
}

// Table3 builds each SparkBench workload, characterizes its DAG and
// measures its stage-input and shuffle volumes with a plain-LRU run on
// the main cluster.
func Table3() []Table3Row {
	var rows []Table3Row
	for _, name := range workload.SparkBenchNames() {
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		run, err := sim.Run(spec.Graph, cluster.Main(), policy.NewLRU(), spec.Name)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table3Row{
			Workload:   spec.Name,
			FullName:   spec.FullName,
			Category:   spec.Category,
			JobType:    spec.JobType,
			InputBytes: spec.InputBytes,
			Chars:      spec.Graph.Characterize(),
			Run:        run,
		})
	}
	return rows
}

// RenderTable3 formats the workload characteristics table.
func RenderTable3(rows []Table3Row) string {
	t := Table{
		Title: "Table 3: SparkBench benchmark characteristics (measured)",
		Header: []string{"Workload", "Category", "Input", "StageInputs", "ShuffleR/W",
			"Jobs", "Stages", "Active", "RDDs", "Refs/RDD", "Refs/Stage", "JobType"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Category, human(r.InputBytes), human(r.Run.StageInputBytes),
			human(r.Run.ShuffleReadBytes) + "/" + human(r.Run.ShuffleWriteBytes),
			itoa(r.Chars.Jobs), itoa(r.Chars.Stages), itoa(r.Chars.ActiveStages),
			itoa(r.Chars.RDDs), f2(r.Chars.RefsPerRDD), f2(r.Chars.RefsPerStage),
			string(r.JobType),
		})
	}
	return t.Render()
}
