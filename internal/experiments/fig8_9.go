package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// VariantRow compares two MRD variants on one workload, both
// normalized against LRU at the workload's best cache size.
type VariantRow struct {
	Workload string
	// Context carries the workload property the experiment varies on
	// (active-stages/jobs ratio for Fig 8, jobs and refs/RDD for
	// Fig 9).
	Context  string
	AJCT     float64 // variant A normalized JCT
	BJCT     float64 // variant B normalized JCT
	AHit     float64
	BHit     float64
	ALabel   string
	BLabel   string
	CachePer int64
}

// compareVariants runs two MRD variants at the cache size where
// variant A (the reference configuration) gains most vs LRU.
func compareVariants(name string, a, b PolicySpec, cfg cluster.Config, context func(*workload.Spec) string) VariantRow {
	spec, err := workload.Build(name, workload.Params{})
	if err != nil {
		panic(err)
	}
	ws := workingSet(spec, cfg)
	best := VariantRow{Workload: name, AJCT: 1e18, ALabel: a.Name(), BLabel: b.Name()}
	var bestLRU, bestA metrics.Run
	for _, frac := range defaultFractions {
		c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
		lru := runOne(spec, c, SpecLRU)
		ra := runOne(spec, c, a)
		if r := norm(ra, lru); r < best.AJCT {
			best.AJCT = r
			best.CachePer = c.CacheBytes
			bestLRU, bestA = lru, ra
		}
	}
	rb := runOne(spec, cfg.WithCache(best.CachePer), b)
	best.BJCT = norm(rb, bestLRU)
	best.AHit = bestA.HitRatio()
	best.BHit = rb.HitRatio()
	if context != nil {
		best.Context = context(spec)
	}
	return best
}

// Fig8 compares stage distance against job distance as the MRD metric
// (paper §5.7) on LP — many active stages per job, where job distance
// collapses the ordering — and KM, where stages and jobs are nearly
// one-to-one and the metrics tie.
func Fig8(cfg cluster.Config) []VariantRow {
	jobMetric := PolicySpec{Kind: "MRD", MRD: core.Options{Metric: core.JobDistance}}
	ctx := func(s *workload.Spec) string {
		c := s.Graph.Characterize()
		return "activeStages/jobs=" + f2(float64(c.ActiveStages)/float64(c.Jobs))
	}
	return []VariantRow{
		compareVariants("LP", SpecMRD, jobMetric, cfg, ctx),
		compareVariants("KM", SpecMRD, jobMetric, cfg, ctx),
	}
}

// RenderFig8 formats the metric comparison.
func RenderFig8(rows []VariantRow) string {
	return renderVariants(
		"Figure 8: Effects of reference distance metrics (stage vs job distance, JCT normalized to LRU)",
		"StageDist", "JobDist", rows,
		"Paper: job distance significantly degrades LP (87 active stages / 23 jobs); no discernible difference for KM (20/17).")
}

// Fig9 compares recurring mode (whole-application profile) against
// ad-hoc mode (profile built one job at a time) on KM — 17 jobs whose
// cross-job references ad-hoc mode keeps mistaking for dead data — and
// TC, whose 2 jobs leave nothing for recurrence to add (paper §5.8).
func Fig9(cfg cluster.Config) []VariantRow {
	adhoc := PolicySpec{Kind: "MRD", AdHoc: true}
	ctx := func(s *workload.Spec) string {
		c := s.Graph.Characterize()
		return "jobs=" + itoa(c.Jobs) + " refs/RDD=" + f2(c.RefsPerRDD)
	}
	return []VariantRow{
		compareVariants("KM", SpecMRD, adhoc, cfg, ctx),
		compareVariants("TC", SpecMRD, adhoc, cfg, ctx),
	}
}

// RenderFig9 formats the DAG-availability comparison.
func RenderFig9(rows []VariantRow) string {
	return renderVariants(
		"Figure 9: Effects of DAG information availability (recurring vs ad-hoc, JCT normalized to LRU)",
		"Recurring", "Ad-hoc", rows,
		"Paper: lacking the application-wide DAG is detrimental for KM (17 jobs, 5.57 refs/RDD); indiscernible for TC (2 jobs, 0.80 refs/RDD).")
}

func renderVariants(title, aName, bName string, rows []VariantRow, paperNote string) string {
	t := Table{
		Title: title,
		Header: []string{"Workload", "Context", "Cache/Node",
			aName + " JCT", bName + " JCT", aName + " hit", bName + " hit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Context, human(r.CachePer),
			pct(r.AJCT), pct(r.BJCT), pct1(r.AHit), pct1(r.BHit),
		})
	}
	t.Note = paperNote
	return t.Render()
}
