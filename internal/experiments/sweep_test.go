package experiments

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"mrdspark/internal/cluster"
)

// tinySweep is the differential-test grid: 8 points, small enough to
// simulate repeatedly but crossing every axis the renderer aggregates
// over (two workloads, the LRU anchor plus MRD, healthy plus a fault
// leg).
func tinySweep() SweepConfig {
	return SweepConfig{
		Workloads: []string{"KM", "CC"},
		Seeds:     []int64{0},
		Clusters:  []cluster.Config{cluster.Main()},
		Fractions: []float64{0.6},
		Policies:  []PolicySpec{SpecLRU, SpecMRD},
		Presets:   []string{"healthy", "crash"},
		Repls:     []int{1},
	}
}

// TestSweepDeterminism is the fabric's core acceptance proof: the
// consolidated report is byte-identical whether the grid ran on one
// worker, on GOMAXPROCS workers, or split across two "processes"
// (shards written to and re-read from disk, merged out of order).
func TestSweepDeterminism(t *testing.T) {
	cfg := tinySweep()

	render := func(res *SweepResult) []byte { return RenderSweepHTML(res) }

	ResetRunCache()
	defer ResetRunCache()
	one, err := RunSweep(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	htmlOne := render(one)

	ResetRunCache()
	many, err := RunSweep(cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	htmlMany := render(many)

	// Two-process split: each shard computed against a cold cache,
	// round-tripped through its shard file, merged in reverse order.
	ResetRunCache()
	dir := t.TempDir()
	paths := make([]string, 2)
	for shard := 0; shard < 2; shard++ {
		sf, err := RunSweepShard(cfg, shard, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		paths[shard] = filepath.Join(dir, sf.ConfigDigest+"-"+string(rune('a'+shard))+".json")
		if err := sf.WriteFile(paths[shard]); err != nil {
			t.Fatal(err)
		}
	}
	files := make([]*ShardFile, 0, 2)
	for i := len(paths) - 1; i >= 0; i-- {
		sf, err := ReadShardFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, sf)
	}
	merged, err := MergeShards(files)
	if err != nil {
		t.Fatal(err)
	}
	htmlMerged := render(merged)

	if !bytes.Equal(htmlOne, htmlMany) {
		t.Fatalf("1-worker and %d-worker reports differ (%d vs %d bytes)",
			runtime.GOMAXPROCS(0), len(htmlOne), len(htmlMany))
	}
	if !bytes.Equal(htmlOne, htmlMerged) {
		t.Fatalf("single-process and 2-shard merged reports differ (%d vs %d bytes)",
			len(htmlOne), len(htmlMerged))
	}
}

// TestSweepWarmStart is the persistence acceptance test: a second
// sweep over the same grid against the same store directory must
// replay entirely from disk — zero simulations — and render the
// byte-identical report.
func TestSweepWarmStart(t *testing.T) {
	cfg := tinySweep()
	dir := t.TempDir()

	runLeg := func() (*SweepResult, CacheStats, []byte) {
		store, err := OpenCacheStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		SetCacheStore(store)
		defer SetCacheStore(nil)
		ResetRunCache()
		ResetCacheStats()
		res, err := RunSweep(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res, ReadCacheStats(), RenderSweepHTML(res)
	}

	cold, coldStats, coldHTML := runLeg()
	if coldStats.Simulated == 0 {
		t.Fatal("cold leg simulated nothing; the store was not cold")
	}
	_, warmStats, warmHTML := runLeg()

	if warmStats.Simulated != 0 {
		t.Fatalf("warm leg re-simulated %d points (stats: %s)", warmStats.Simulated, warmStats)
	}
	if warmStats.DiskHits == 0 {
		t.Fatalf("warm leg served nothing from disk (stats: %s)", warmStats)
	}
	if w := warmStats.Warm(); w < 0.95 {
		t.Fatalf("warm leg replayed only %.0f%% from cache, want >= 95%% (stats: %s)", w*100, warmStats)
	}
	if !bytes.Equal(coldHTML, warmHTML) {
		t.Fatalf("cold and warm reports differ (%d vs %d bytes): cache state leaked into the HTML", len(coldHTML), len(warmHTML))
	}
	if len(cold.Rows) != len(cfg.Grid()) {
		t.Fatalf("sweep produced %d rows for a %d-point grid", len(cold.Rows), len(cfg.Grid()))
	}
}

func TestGridCanonicalIndices(t *testing.T) {
	grid := tinySweep().Grid()
	if len(grid) != 8 {
		t.Fatalf("tiny grid has %d points, want 8", len(grid))
	}
	for i, pt := range grid {
		if pt.Index != i {
			t.Fatalf("grid[%d].Index = %d", i, pt.Index)
		}
	}
	// Innermost axis varies fastest: adjacent points differ in preset
	// before policy.
	if grid[0].Preset != "healthy" || grid[1].Preset != "crash" {
		t.Fatalf("enumeration order changed: %+v, %+v", grid[0], grid[1])
	}
	if grid[0].Policy.Name() != grid[1].Policy.Name() {
		t.Fatal("preset must vary before policy in the canonical order")
	}
}

func TestShardRangePartitions(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 100} {
		for _, of := range []int{1, 2, 3, 7} {
			covered := 0
			prevHi := 0
			for shard := 0; shard < of; shard++ {
				lo, hi := shardRange(shard, of, n)
				if lo != prevHi {
					t.Fatalf("n=%d of=%d shard=%d: lo=%d, want %d (gap or overlap)", n, of, shard, lo, prevHi)
				}
				prevHi = hi
				covered += hi - lo
			}
			if prevHi != n || covered != n {
				t.Fatalf("n=%d of=%d: shards cover [0,%d) with %d points, want [0,%d)", n, of, prevHi, covered, n)
			}
		}
	}
}

func TestMergeShardsValidation(t *testing.T) {
	cfg := tinySweep()
	ResetRunCache()
	defer ResetRunCache()

	shards := make([]*ShardFile, 2)
	for i := range shards {
		sf, err := RunSweepShard(cfg, i, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sf
	}

	// clone deep-copies a shard so mutations don't leak between cases.
	clone := func(sf *ShardFile) *ShardFile {
		c := *sf
		c.Rows = append([]SweepRow(nil), sf.Rows...)
		return &c
	}

	if _, err := MergeShards([]*ShardFile{shards[0], shards[1]}); err != nil {
		t.Fatalf("complete merge failed: %v", err)
	}
	if _, err := MergeShards(nil); err == nil {
		t.Fatal("empty merge must fail")
	}
	if _, err := MergeShards([]*ShardFile{shards[0]}); err == nil {
		t.Fatal("merge with a missing shard must fail")
	}
	if _, err := MergeShards([]*ShardFile{shards[0], shards[0]}); err == nil {
		t.Fatal("merge with a duplicated shard must fail")
	}

	wrongGrid := clone(shards[1])
	wrongGrid.ConfigDigest = "feedfacefeedface"
	if _, err := MergeShards([]*ShardFile{shards[0], wrongGrid}); err == nil {
		t.Fatal("merge across different grid digests must fail")
	}

	badIndex := clone(shards[1])
	badIndex.Rows[0].Point.Index = 0
	if _, err := MergeShards([]*ShardFile{shards[0], badIndex}); err == nil {
		t.Fatal("merge with a mis-indexed row must fail")
	}

	short := clone(shards[1])
	short.Rows = short.Rows[:len(short.Rows)-1]
	if _, err := MergeShards([]*ShardFile{shards[0], short}); err == nil {
		t.Fatal("merge with a short shard must fail")
	}
}
