package experiments

import (
	"fmt"

	"mrdspark/internal/cluster"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// Fig7Point is one cache size in the SVD++ cache-size sweep (paper
// Fig 7): hit ratio and runtime for LRU, LRC and MRD.
type Fig7Point struct {
	CachePerNode int64
	TotalCache   int64
	LRU          metrics.Run
	LRC          metrics.Run
	MRD          metrics.Run
}

// Fig7Result is the sweep plus the paper's cache-savings readout: the
// smallest cache at which each policy reaches the target hit ratio.
type Fig7Result struct {
	Workload     string
	Points       []Fig7Point
	TargetHit    float64
	LRUCacheneed int64
	LRCCacheneed int64
	MRDCacheneed int64
}

// Fig7 sweeps cache sizes for the SVD++ workload on the LRC cluster
// with LRU, LRC and MRD (paper §5.6). The target hit ratio for the
// savings computation is LRU's hit ratio at the middle of the sweep
// (the paper uses 68%).
func Fig7() Fig7Result {
	cfg := cluster.LRC()
	spec, err := workload.Build("SVD", workload.Params{})
	if err != nil {
		panic(err)
	}
	ws := workingSet(spec, cfg)
	fracs := []float64{0.25, 0.4, 0.6, 0.85, 1.2, 1.8, 2.5}
	res := Fig7Result{Workload: spec.Name}
	for _, frac := range fracs {
		c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
		pt := Fig7Point{CachePerNode: c.CacheBytes, TotalCache: c.TotalCache()}
		pt.LRU = runOne(spec, c, SpecLRU)
		pt.LRC = runOne(spec, c, SpecLRC)
		pt.MRD = runOne(spec, c, SpecMRD)
		res.Points = append(res.Points, pt)
	}
	res.TargetHit = res.Points[len(res.Points)/2].LRU.HitRatio()
	res.LRUCacheneed = cacheNeeded(res.Points, res.TargetHit, func(p Fig7Point) float64 { return p.LRU.HitRatio() })
	res.LRCCacheneed = cacheNeeded(res.Points, res.TargetHit, func(p Fig7Point) float64 { return p.LRC.HitRatio() })
	res.MRDCacheneed = cacheNeeded(res.Points, res.TargetHit, func(p Fig7Point) float64 { return p.MRD.HitRatio() })
	return res
}

// cacheNeeded returns the smallest total cache in the sweep at which
// the policy's hit ratio reaches the target (0 when never reached).
func cacheNeeded(points []Fig7Point, target float64, hit func(Fig7Point) float64) int64 {
	for _, p := range points {
		if hit(p) >= target {
			return p.TotalCache
		}
	}
	return 0
}

// RenderFig7 formats the cache-size sweep.
func RenderFig7(res Fig7Result) string {
	t := Table{
		Title: "Figure 7: Effects of cache size on hit ratio and runtime, SVD++ (LRC cluster)",
		Header: []string{"TotalCache", "Cache/Node",
			"LRU hit", "LRC hit", "MRD hit", "LRU JCT", "LRC JCT", "MRD JCT"},
	}
	for _, p := range res.Points {
		t.Rows = append(t.Rows, []string{
			human(p.TotalCache), human(p.CachePerNode),
			pct1(p.LRU.HitRatio()), pct1(p.LRC.HitRatio()), pct1(p.MRD.HitRatio()),
			p.LRU.JCTDuration().String(), p.LRC.JCTDuration().String(), p.MRD.JCTDuration().String(),
		})
	}
	saving := 0.0
	if res.LRUCacheneed > 0 && res.MRDCacheneed > 0 {
		saving = 1 - float64(res.MRDCacheneed)/float64(res.LRUCacheneed)
	}
	t.Note = fmt.Sprintf("Target hit ratio %s: LRU needs %s, LRC needs %s, MRD needs %s — %s cache-space savings (paper: 68%% target, 0.88 GB vs 0.33 GB, 63%% savings)",
		pct1(res.TargetHit), human(res.LRUCacheneed), human(res.LRCCacheneed), human(res.MRDCacheneed), pct1(saving))

	labels := make([]string, len(res.Points))
	series := map[string][]float64{"LRU": nil, "LRC": nil, "MRD": nil}
	for i, p := range res.Points {
		labels[i] = human(p.TotalCache)
		series["LRU"] = append(series["LRU"], p.LRU.HitRatio())
		series["LRC"] = append(series["LRC"], p.LRC.HitRatio())
		series["MRD"] = append(series["MRD"], p.MRD.HitRatio())
	}
	chart := seriesChart("\nHit ratio vs total cache:", labels, series, []string{"LRU", "LRC", "MRD"}, pct1)
	return t.Render() + chart
}
