package experiments

import (
	"math"
	"strings"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/refdist"
	"mrdspark/internal/workload"
)

func TestOLSPerfectLine(t *testing.T) {
	pts := []ScatterPoint{{X: 1, Reduction: 3}, {X: 2, Reduction: 5}, {X: 3, Reduction: 7}}
	tr := OLS(pts)
	if math.Abs(tr.Slope-2) > 1e-9 || math.Abs(tr.Intercept-1) > 1e-9 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", tr)
	}
	if math.Abs(tr.R2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", tr.R2)
	}
}

func TestOLSKnownFit(t *testing.T) {
	// y = x with one outlier; R² strictly between 0 and 1.
	pts := []ScatterPoint{
		{X: 1, Reduction: 1}, {X: 2, Reduction: 2}, {X: 3, Reduction: 3}, {X: 4, Reduction: 0},
	}
	tr := OLS(pts)
	if tr.R2 <= 0 || tr.R2 >= 1 {
		t.Errorf("R² = %v, want in (0,1)", tr.R2)
	}
}

func TestOLSDegenerateInputs(t *testing.T) {
	if tr := OLS(nil); tr != (Trend{}) {
		t.Errorf("empty fit = %+v", tr)
	}
	if tr := OLS([]ScatterPoint{{X: 5, Reduction: 1}}); tr != (Trend{}) {
		t.Errorf("single-point fit = %+v", tr)
	}
	// Vertical line: zero denominator.
	pts := []ScatterPoint{{X: 2, Reduction: 1}, {X: 2, Reduction: 9}}
	if tr := OLS(pts); tr != (Trend{}) {
		t.Errorf("vertical fit = %+v", tr)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Note:   "note",
	}
	out := tbl.Render()
	for _, want := range []string{"T\n", "a", "bbbb", "xxxxx", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Errorf("columns not aligned: %q", lines[1])
	}
}

func TestHumanBytes(t *testing.T) {
	for _, tt := range []struct {
		in   int64
		want string
	}{
		{500, "500B"}, {2 << 10, "2K"}, {3 << 20, "3.0M"}, {934 << 20, "934M"},
		{5632 << 20, "5.5G"}, {20 << 30, "20G"},
	} {
		if got := human(tt.in); got != tt.want {
			t.Errorf("human(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTable1CoversAllWorkloadsWithPaperValues(t *testing.T) {
	rows := Table1()
	if len(rows) != 20 {
		t.Fatalf("Table1 rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if _, ok := paperTable1[r.Workload]; !ok {
			t.Errorf("no paper reference for %s", r.Workload)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "SCC") || !strings.Contains(out, "HB-KMeans") {
		t.Error("render incomplete")
	}
}

func TestFig2TraceInvariants(t *testing.T) {
	tr := Fig2("CC")
	if len(tr.RDDs) == 0 || len(tr.Stages) == 0 {
		t.Fatal("empty trace")
	}
	for _, sid := range tr.Stages {
		for _, rid := range tr.RDDs {
			c := tr.Cells[sid][rid]
			if !c.Exists {
				if c.Referenced {
					t.Fatalf("stage %d references non-existent RDD %d", sid, rid)
				}
				continue
			}
			if c.Referenced {
				// A referenced RDD has MRD distance 0 at that stage.
				if c.MRDDistance != 0 {
					t.Errorf("stage %d RDD %d referenced with distance %d", sid, rid, c.MRDDistance)
				}
				if c.LRCCount <= 0 {
					t.Errorf("stage %d RDD %d referenced with count %d", sid, rid, c.LRCCount)
				}
			}
			if c.LRUAge < 0 {
				t.Errorf("negative LRU age at stage %d RDD %d", sid, rid)
			}
			if !refdist.IsInfinite(c.MRDDistance) && c.LRCCount == 0 {
				t.Errorf("stage %d RDD %d: finite distance %d but zero count", sid, rid, c.MRDDistance)
			}
		}
	}
	out := RenderFig2(tr, 6)
	if !strings.Contains(out, "stage") || !strings.Contains(out, "inf") {
		t.Error("Fig2 render incomplete")
	}
}

func TestPolicySpecFactoryNames(t *testing.T) {
	spec, err := workload.Build("SP", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		p    PolicySpec
		want string
	}{
		{SpecLRU, "LRU"},
		{SpecLRC, "LRC"},
		{SpecMemTune, "MemTune"},
		{SpecMIN, "MIN"},
		{SpecMRD, "MRD"},
		{SpecMRDEvictOnly, "MRD-evict"},
		{SpecMRDPrefOnly, "MRD-prefetch"},
		{PolicySpec{Kind: "MRD", AdHoc: true}, "MRD(ad-hoc)"},
		{PolicySpec{Kind: "LRU", Label: "custom"}, "custom"},
	} {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
		if f := tt.p.Factory(spec); f == nil {
			t.Errorf("%s factory nil", tt.want)
		}
	}
}

func TestUnknownPolicyKindPanics(t *testing.T) {
	spec, _ := workload.Build("SP", workload.Params{})
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	PolicySpec{Kind: "bogus"}.Factory(spec)
}

func TestCacheForFractionFloors(t *testing.T) {
	spec, _ := workload.Build("KM", workload.Params{})
	cfg := cluster.Main()
	var maxBlock int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
	}
	if got := cacheForFraction(spec, 1, 0.0001, cfg); got < 2*maxBlock {
		t.Errorf("floor violated: %d < %d", got, 2*maxBlock)
	}
}

func TestSuiteIDsUniqueAndListed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Suite() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "table3", "fig2", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"ablation-purge", "ablation-threshold", "ablation-min",
		"ablation-dynamic", "ablation-tiebreak", "baseline-oblivious",
		"variance", "storage-level", "failure", "sensitivity", "extensions"} {
		if !seen[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestRunSuiteSelection(t *testing.T) {
	var b strings.Builder
	if err := RunSuite(&b, map[string]bool{"fig2": true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== fig2") {
		t.Error("selected experiment missing")
	}
	if strings.Contains(out, "== fig4") {
		t.Error("unselected experiment ran")
	}
}
