package experiments

import (
	"strconv"

	"mrdspark/internal/refdist"
	"mrdspark/internal/workload"
)

// Table1Row is one workload's reference-distance characteristics
// (paper Table 1).
type Table1Row struct {
	Workload string
	Suite    string
	Stats    refdist.Stats
	// Paper values for the side-by-side comparison (zero where the
	// paper reports zero).
	PaperAvgJob   float64
	PaperMaxJob   int
	PaperAvgStage float64
	PaperMaxStage int
}

// paperTable1 records the published Table 1 numbers.
var paperTable1 = map[string][4]float64{
	// name: avg job, max job, avg stage, max stage
	"KM":           {5.15, 16, 5.34, 19},
	"LinR":         {1.24, 5, 1.76, 8},
	"LogR":         {1.53, 6, 2.00, 9},
	"SVM":          {1.48, 6, 1.96, 10},
	"DT":           {2.71, 9, 4.38, 15},
	"MF":           {1.56, 7, 3.31, 18},
	"PR":           {1.74, 5, 6.08, 19},
	"TC":           {0.07, 1, 1.23, 6},
	"SP":           {0.19, 1, 1.19, 4},
	"LP":           {7.19, 22, 28.37, 85},
	"SVD":          {3.51, 11, 6.82, 23},
	"CC":           {1.30, 4, 5.31, 16},
	"SCC":          {7.77, 24, 29.96, 90},
	"PO":           {1.28, 4, 5.45, 16},
	"HB-Sort":      {0, 0, 0, 0},
	"HB-WordCount": {0, 0, 0, 0},
	"HB-TeraSort":  {0.22, 1, 0.22, 1},
	"HB-PageRank":  {0, 0, 0.09, 2},
	"HB-Bayes":     {2.09, 7, 3.23, 9},
	"HB-KMeans":    {6.08, 19, 6.60, 25},
}

// Table1 measures the reference-distance characteristics of all 20
// benchmark workloads from their DAGs.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, name := range workload.Names() {
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err) // registry names are always buildable
		}
		if spec.Suite != "SparkBench" && spec.Suite != "HiBench" {
			continue // the paper's Table 1 covers only its two suites
		}
		profile := refdist.FromGraph(spec.Graph)
		row := Table1Row{Workload: name, Suite: spec.Suite, Stats: profile.Stats()}
		if p, ok := paperTable1[name]; ok {
			row.PaperAvgJob, row.PaperMaxJob = p[0], int(p[1])
			row.PaperAvgStage, row.PaperMaxStage = p[2], int(p[3])
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 formats the measured characteristics next to the
// paper's values.
func RenderTable1(rows []Table1Row) string {
	t := Table{
		Title: "Table 1: Reference distance characteristics of benchmark workloads (measured vs paper)",
		Header: []string{"Workload", "Suite",
			"AvgJobDist", "(paper)", "MaxJobDist", "(paper)",
			"AvgStageDist", "(paper)", "MaxStageDist", "(paper)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Suite,
			f2(r.Stats.AvgJobDistance), f2(r.PaperAvgJob),
			itoa(r.Stats.MaxJobDistance), itoa(r.PaperMaxJob),
			f2(r.Stats.AvgStageDistance), f2(r.PaperAvgStage),
			itoa(r.Stats.MaxStageDistance), itoa(r.PaperMaxStage),
		})
	}
	return t.Render()
}

func itoa(v int) string { return strconv.Itoa(v) }
