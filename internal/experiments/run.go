package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// PolicySpec identifies one policy configuration under test.
type PolicySpec struct {
	// Kind selects the policy family: LRU, FIFO, LFU, LRC, MemTune,
	// MIN, or MRD.
	Kind string
	// MRD holds the MRD variant options (Kind == "MRD").
	MRD core.Options
	// AdHoc runs DAG-aware policies (MRD, LRC) without a recurring
	// profile: they learn the DAG one job at a time.
	AdHoc bool
	// Label overrides the reported policy name.
	Label string
}

// Common policy specs.
var (
	SpecLRU          = PolicySpec{Kind: "LRU"}
	SpecLRC          = PolicySpec{Kind: "LRC"}
	SpecMemTune      = PolicySpec{Kind: "MemTune"}
	SpecMIN          = PolicySpec{Kind: "MIN"}
	SpecMRD          = PolicySpec{Kind: "MRD"}
	SpecMRDEvictOnly = PolicySpec{Kind: "MRD", MRD: core.Options{DisablePrefetch: true}}
	SpecMRDPrefOnly  = PolicySpec{Kind: "MRD", MRD: core.Options{DisableEviction: true}}
)

// Factory builds the policy factory for a workload's DAG.
func (p PolicySpec) Factory(spec *workload.Spec) policy.Factory {
	g := spec.Graph
	switch p.Kind {
	case "LRU":
		return policy.NewLRU()
	case "FIFO":
		return policy.NewFIFO()
	case "LFU":
		return policy.NewLFU()
	case "Hyperbolic":
		return policy.NewHyperbolic()
	case "GDS":
		return policy.NewGDS()
	case "MemTune":
		return policy.NewMemTune(g)
	case "MIN":
		return policy.NewMIN(g)
	case "LRC":
		if p.AdHoc {
			return policy.NewLRCAdHoc()
		}
		return policy.NewLRC(g)
	case "MRD":
		var prof *core.AppProfiler
		if p.AdHoc {
			prof = core.NewAppProfiler()
		} else {
			prof = core.NewRecurringProfiler(refdist.FromGraph(g))
		}
		return core.NewManager(g, prof, p.MRD)
	default:
		panic(fmt.Sprintf("experiments: unknown policy kind %q", p.Kind))
	}
}

// Name returns the display name for result tables.
func (p PolicySpec) Name() string {
	if p.Label != "" {
		return p.Label
	}
	name := p.Kind
	if p.Kind == "MRD" {
		switch {
		case p.MRD.DisablePrefetch && p.MRD.DisableEviction:
			name = "MRD(off)"
		case p.MRD.DisablePrefetch:
			name = "MRD-evict"
		case p.MRD.DisableEviction:
			name = "MRD-prefetch"
		}
		if p.MRD.Metric == core.JobDistance {
			name += "(job)"
		}
		if p.AdHoc {
			name += "(ad-hoc)"
		}
	}
	return name
}

// faultKey identifies the fault schedule a run was simulated under.
// The zero value is the healthy, unreplicated run. Presets are seeded
// and scaled deterministically from (preset, nodes, stages), so the
// name plus the replication factor is a complete identity.
type faultKey struct {
	Preset string
	Repl   int
}

// runKey is the complete identity of one simulation: workload
// generation is a pure function of (Name, Params), fault presets are
// seeded pure functions of (name, nodes, stages), the simulator is
// deterministic, and nothing mutates a Spec's graph after Build — so
// equal keys always produce the same metrics.Run. Every field is
// comparable by construction (PolicySpec, Params and faultKey are flat
// structs; metrics.Run keeps FaultWarning a string for the same
// reason).
type runKey struct {
	workload string
	params   workload.Params
	cfg      cluster.Config
	policy   PolicySpec
	fault    faultKey
}

// canonical renders the key as a stable string: the persistent cache
// hashes it, and stores it next to the hash so collisions are
// detectable. %+v over flat structs prints every field by name in
// declaration order, so adding a field to any component type changes
// every canonical string — which retires stale on-disk entries
// automatically (they simply stop matching; the store rebuilds).
func (k runKey) canonical() string {
	return fmt.Sprintf("v%d|%s|%+v|%+v|%+v|%+v",
		cacheKeyVersion, k.workload, k.params, k.cfg, k.policy, k.fault)
}

// runCache memoizes completed simulations across the whole experiment
// suite, keyed by runKey. Suite entries sharing a configuration — most
// commonly the unbounded-cache working-set probe that several
// experiments issue for the same workload — simulate once.
var runCache sync.Map // runKey -> metrics.Run

// inflight gates concurrent cache fills per key (singleflight): the
// first miss becomes the leader and simulates; every concurrent miss
// on the same key waits for the leader's result instead of racing a
// duplicate simulation. Before the gate, racing misses each simulated
// the full run — harmless for correctness (the results are identical)
// but ruinous for the sweep fabric, where thousands of grid points
// share working-set probes.
var inflight sync.Map // runKey -> *flightCall

type flightCall struct {
	done chan struct{}
	run  metrics.Run
	err  error
}

// cacheStore, when set, persists simulated runs across processes.
var (
	cacheStoreMu sync.RWMutex
	cacheStore   *CacheStore
)

// SetCacheStore installs (or, with nil, removes) the persistent run
// store consulted and appended by every cache miss.
func SetCacheStore(s *CacheStore) {
	cacheStoreMu.Lock()
	cacheStore = s
	cacheStoreMu.Unlock()
}

func currentCacheStore() *CacheStore {
	cacheStoreMu.RLock()
	defer cacheStoreMu.RUnlock()
	return cacheStore
}

// CacheStats counts how runs were served. The three counters partition
// every RunCached/RunCachedFault call: a memoized replay, a persistent
// on-disk replay, or a real simulation. Waits counts callers that
// blocked on another goroutine's in-flight simulation of the same key
// (they are also memo hits in spirit, but are tallied separately so
// the singleflight test can pin "exactly one simulation").
type CacheStats struct {
	MemoHits  int64
	DiskHits  int64
	Simulated int64
	Waits     int64
}

var (
	statMemoHits  atomic.Int64
	statDiskHits  atomic.Int64
	statSimulated atomic.Int64
	statWaits     atomic.Int64
)

// ReadCacheStats returns the counters accumulated since the last
// reset.
func ReadCacheStats() CacheStats {
	return CacheStats{
		MemoHits:  statMemoHits.Load(),
		DiskHits:  statDiskHits.Load(),
		Simulated: statSimulated.Load(),
		Waits:     statWaits.Load(),
	}
}

// ResetCacheStats zeroes the counters.
func ResetCacheStats() {
	statMemoHits.Store(0)
	statDiskHits.Store(0)
	statSimulated.Store(0)
	statWaits.Store(0)
}

// Warm reports the fraction of runs served without simulating.
func (s CacheStats) Warm() float64 {
	total := s.MemoHits + s.DiskHits + s.Simulated + s.Waits
	if total == 0 {
		return 0
	}
	return float64(total-s.Simulated) / float64(total)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("simulated=%d memo-hits=%d disk-hits=%d waits=%d warm=%.1f%%",
		s.Simulated, s.MemoHits, s.DiskHits, s.Waits, 100*s.Warm())
}

// simHook, when non-nil, runs at the start of every real simulation
// (test seam: the singleflight test widens the race window with it).
var simHook func()

// ResetRunCache empties the memoized-run cache (test helper).
func ResetRunCache() {
	runCache.Range(func(k, _ any) bool {
		runCache.Delete(k)
		return true
	})
}

// RunCacheLen reports the number of memoized runs (test helper: the
// capacity planner's probes must populate the cache exactly once per
// distinct configuration).
func RunCacheLen() int {
	n := 0
	runCache.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// RunCached simulates the workload under the policy on the cluster
// through the suite-wide memoized cache: equal (workload, params,
// cluster, policy) keys simulate once and replay from cache after.
// This is the entry point for callers outside the experiment suite —
// the capacity planner's bisection probes in particular — that want
// the memoization without the suite's panic-on-error contract.
func RunCached(spec *workload.Spec, cfg cluster.Config, p PolicySpec) (metrics.Run, error) {
	return RunCachedFault(spec, cfg, p, "", 1)
}

// RunCachedFault is RunCached under a named fault preset at a
// replication factor — the sweep fabric's chaos axis. An empty or
// "healthy" preset at replication <= 1 normalizes to the plain healthy
// key, so the sweep's healthy leg and direct RunCached callers share
// cache entries.
func RunCachedFault(spec *workload.Spec, cfg cluster.Config, p PolicySpec, preset string, repl int) (metrics.Run, error) {
	if repl <= 0 {
		repl = 1
	}
	fk := faultKey{Preset: preset, Repl: repl}
	if (preset == "" || preset == "healthy") && repl == 1 {
		fk = faultKey{}
	}
	key := runKey{workload: spec.Name, params: spec.Params, cfg: cfg, policy: p, fault: fk}
	if v, ok := runCache.Load(key); ok {
		statMemoHits.Add(1)
		return v.(metrics.Run), nil
	}
	c := &flightCall{done: make(chan struct{})}
	if actual, loaded := inflight.LoadOrStore(key, c); loaded {
		ac := actual.(*flightCall)
		<-ac.done
		if ac.err != nil {
			return metrics.Run{}, ac.err
		}
		statWaits.Add(1)
		return ac.run, nil
	}
	c.run, c.err = fillCache(key, spec, p)
	if c.err == nil {
		runCache.Store(key, c.run)
	}
	inflight.Delete(key)
	close(c.done)
	return c.run, c.err
}

// fillCache resolves a cache miss as the singleflight leader: consult
// the persistent store first, simulate only on a true miss, and append
// fresh results back to the store.
func fillCache(key runKey, spec *workload.Spec, p PolicySpec) (metrics.Run, error) {
	store := currentCacheStore()
	canonical := ""
	if store != nil {
		canonical = key.canonical()
		if run, ok, err := store.Get(canonical); err != nil {
			return metrics.Run{}, err
		} else if ok {
			statDiskHits.Add(1)
			return run, nil
		}
	}
	if simHook != nil {
		simHook()
	}
	statSimulated.Add(1)
	run, err := simulate(key, spec, p)
	if err != nil {
		return metrics.Run{}, err
	}
	if store != nil {
		if err := store.Put(canonical, run); err != nil {
			return metrics.Run{}, err
		}
	}
	return run, nil
}

// simulate executes one run for real, honoring the key's fault
// dimension.
func simulate(key runKey, spec *workload.Spec, p PolicySpec) (metrics.Run, error) {
	var run metrics.Run
	if key.fault == (faultKey{}) {
		var err error
		run, err = sim.Run(spec.Graph, key.cfg, p.Factory(spec), spec.Name)
		if err != nil {
			return metrics.Run{}, err
		}
	} else {
		sched, err := faultFor(key.fault.Preset, key.cfg.Nodes, spec.Graph.ActiveStages(), key.fault.Repl)
		if err != nil {
			return metrics.Run{}, err
		}
		s, err := sim.New(spec.Graph, key.cfg, p.Factory(spec), spec.Name)
		if err != nil {
			return metrics.Run{}, err
		}
		if err := s.SetOptions(sim.Options{Fault: sched}); err != nil {
			return metrics.Run{}, err
		}
		run = s.Run()
	}
	run.Policy = p.Name()
	return run, nil
}

// faultFor builds the seeded schedule for a preset at a replication
// factor, scaled to the cluster and DAG. "healthy" (and "") skip the
// preset registry: the baseline schedule only pays replication writes,
// anchoring chaos overhead columns (see healthySchedule).
func faultFor(preset string, nodes, stages, repl int) (*fault.Schedule, error) {
	if preset == "" || preset == "healthy" {
		return healthySchedule(repl), nil
	}
	sched, err := fault.Preset(preset, nodes, stages)
	if err != nil {
		return nil, err
	}
	sched.Replication = repl
	return sched, nil
}

// runOne simulates the workload under the policy on the cluster,
// memoizing the result: repeated (workload, cluster, policy) triples
// replay from cache instead of re-simulating.
func runOne(spec *workload.Spec, cfg cluster.Config, p PolicySpec) metrics.Run {
	run, err := RunCached(spec, cfg, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s: %v", p.Name(), spec.Name, err))
	}
	return run
}

// workingSet measures the workload's peak *live* cached working set:
// the cluster-wide occupancy high-water mark under MRD eviction with
// effectively unbounded cache, where the purge of dead generations
// leaves exactly the blocks that still have references. This is the
// natural scale for cache-size sweeps: below it even a clairvoyant
// policy must miss; around and above it the policies differ only in
// how well they separate live data from garbage.
func workingSet(spec *workload.Spec, cfg cluster.Config) int64 {
	big := cfg.WithCache(1 << 42)
	run := runOne(spec, big, SpecMRDEvictOnly)
	return run.PeakCacheUsed
}

// cacheForFraction converts a working-set fraction to a per-node cache
// size, flooring at a few of the workload's largest cached blocks so
// every configuration can actually cache something.
func cacheForFraction(spec *workload.Spec, ws int64, frac float64, cfg cluster.Config) int64 {
	perNode := int64(frac * float64(ws) / float64(cfg.Nodes))
	var maxBlock int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
	}
	if floor := 2 * maxBlock; perNode < floor {
		perNode = floor
	}
	if perNode < 1*cluster.MB {
		perNode = 1 * cluster.MB
	}
	return perNode
}

// defaultFractions is the cache-size sweep used when an experiment
// reports "the best cache size per workload", mirroring the paper's
// methodology of running several cache sizes and reporting the best
// gain (§5.3).
var defaultFractions = []float64{0.4, 0.6, 0.85, 1.2, 1.8}
