package experiments

import (
	"fmt"
	"sync"

	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/metrics"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// PolicySpec identifies one policy configuration under test.
type PolicySpec struct {
	// Kind selects the policy family: LRU, FIFO, LFU, LRC, MemTune,
	// MIN, or MRD.
	Kind string
	// MRD holds the MRD variant options (Kind == "MRD").
	MRD core.Options
	// AdHoc runs DAG-aware policies (MRD, LRC) without a recurring
	// profile: they learn the DAG one job at a time.
	AdHoc bool
	// Label overrides the reported policy name.
	Label string
}

// Common policy specs.
var (
	SpecLRU          = PolicySpec{Kind: "LRU"}
	SpecLRC          = PolicySpec{Kind: "LRC"}
	SpecMemTune      = PolicySpec{Kind: "MemTune"}
	SpecMIN          = PolicySpec{Kind: "MIN"}
	SpecMRD          = PolicySpec{Kind: "MRD"}
	SpecMRDEvictOnly = PolicySpec{Kind: "MRD", MRD: core.Options{DisablePrefetch: true}}
	SpecMRDPrefOnly  = PolicySpec{Kind: "MRD", MRD: core.Options{DisableEviction: true}}
)

// Factory builds the policy factory for a workload's DAG.
func (p PolicySpec) Factory(spec *workload.Spec) policy.Factory {
	g := spec.Graph
	switch p.Kind {
	case "LRU":
		return policy.NewLRU()
	case "FIFO":
		return policy.NewFIFO()
	case "LFU":
		return policy.NewLFU()
	case "Hyperbolic":
		return policy.NewHyperbolic()
	case "GDS":
		return policy.NewGDS()
	case "MemTune":
		return policy.NewMemTune(g)
	case "MIN":
		return policy.NewMIN(g)
	case "LRC":
		if p.AdHoc {
			return policy.NewLRCAdHoc()
		}
		return policy.NewLRC(g)
	case "MRD":
		var prof *core.AppProfiler
		if p.AdHoc {
			prof = core.NewAppProfiler()
		} else {
			prof = core.NewRecurringProfiler(refdist.FromGraph(g))
		}
		return core.NewManager(g, prof, p.MRD)
	default:
		panic(fmt.Sprintf("experiments: unknown policy kind %q", p.Kind))
	}
}

// Name returns the display name for result tables.
func (p PolicySpec) Name() string {
	if p.Label != "" {
		return p.Label
	}
	name := p.Kind
	if p.Kind == "MRD" {
		switch {
		case p.MRD.DisablePrefetch && p.MRD.DisableEviction:
			name = "MRD(off)"
		case p.MRD.DisablePrefetch:
			name = "MRD-evict"
		case p.MRD.DisableEviction:
			name = "MRD-prefetch"
		}
		if p.MRD.Metric == core.JobDistance {
			name += "(job)"
		}
		if p.AdHoc {
			name += "(ad-hoc)"
		}
	}
	return name
}

// runKey is the complete identity of one simulation: workload
// generation is a pure function of (Name, Params), the simulator is
// deterministic, and nothing mutates a Spec's graph after Build — so
// equal keys always produce the same metrics.Run. Every field is
// comparable by construction (PolicySpec and Params are flat structs;
// metrics.Run keeps FaultWarning a string for the same reason).
type runKey struct {
	workload string
	params   workload.Params
	cfg      cluster.Config
	policy   PolicySpec
}

// runCache memoizes completed simulations across the whole experiment
// suite, keyed by runKey. Suite entries sharing a configuration — most
// commonly the unbounded-cache working-set probe that several
// experiments issue for the same workload — simulate once. Concurrent
// misses on the same key may race to simulate; both compute the
// identical Run, so last-store-wins is harmless.
var runCache sync.Map // runKey -> metrics.Run

// ResetRunCache empties the memoized-run cache (test helper).
func ResetRunCache() {
	runCache.Range(func(k, _ any) bool {
		runCache.Delete(k)
		return true
	})
}

// RunCacheLen reports the number of memoized runs (test helper: the
// capacity planner's probes must populate the cache exactly once per
// distinct configuration).
func RunCacheLen() int {
	n := 0
	runCache.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// RunCached simulates the workload under the policy on the cluster
// through the suite-wide memoized cache: equal (workload, params,
// cluster, policy) keys simulate once and replay from cache after.
// This is the entry point for callers outside the experiment suite —
// the capacity planner's bisection probes in particular — that want
// the memoization without the suite's panic-on-error contract.
func RunCached(spec *workload.Spec, cfg cluster.Config, p PolicySpec) (metrics.Run, error) {
	key := runKey{workload: spec.Name, params: spec.Params, cfg: cfg, policy: p}
	if v, ok := runCache.Load(key); ok {
		return v.(metrics.Run), nil
	}
	run, err := sim.Run(spec.Graph, cfg, p.Factory(spec), spec.Name)
	if err != nil {
		return metrics.Run{}, err
	}
	run.Policy = p.Name()
	runCache.Store(key, run)
	return run, nil
}

// runOne simulates the workload under the policy on the cluster,
// memoizing the result: repeated (workload, cluster, policy) triples
// replay from cache instead of re-simulating.
func runOne(spec *workload.Spec, cfg cluster.Config, p PolicySpec) metrics.Run {
	run, err := RunCached(spec, cfg, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s: %v", p.Name(), spec.Name, err))
	}
	return run
}

// workingSet measures the workload's peak *live* cached working set:
// the cluster-wide occupancy high-water mark under MRD eviction with
// effectively unbounded cache, where the purge of dead generations
// leaves exactly the blocks that still have references. This is the
// natural scale for cache-size sweeps: below it even a clairvoyant
// policy must miss; around and above it the policies differ only in
// how well they separate live data from garbage.
func workingSet(spec *workload.Spec, cfg cluster.Config) int64 {
	big := cfg.WithCache(1 << 42)
	run := runOne(spec, big, SpecMRDEvictOnly)
	return run.PeakCacheUsed
}

// cacheForFraction converts a working-set fraction to a per-node cache
// size, flooring at a few of the workload's largest cached blocks so
// every configuration can actually cache something.
func cacheForFraction(spec *workload.Spec, ws int64, frac float64, cfg cluster.Config) int64 {
	perNode := int64(frac * float64(ws) / float64(cfg.Nodes))
	var maxBlock int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
	}
	if floor := 2 * maxBlock; perNode < floor {
		perNode = floor
	}
	if perNode < 1*cluster.MB {
		perNode = 1 * cluster.MB
	}
	return perNode
}

// defaultFractions is the cache-size sweep used when an experiment
// reports "the best cache size per workload", mirroring the paper's
// methodology of running several cache sizes and reporting the best
// gain (§5.3).
var defaultFractions = []float64{0.4, 0.6, 0.85, 1.2, 1.8}
