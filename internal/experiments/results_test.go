package experiments

import (
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

// These are the headline reproduction assertions: the *shape* of the
// paper's results must hold in the simulator (who wins, where, in
// which direction), even though absolute factors differ from the
// authors' testbed. They run full experiment drivers and are skipped
// under -short.

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := Fig4(cluster.Main())
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.FullJCT <= 0 || r.EvictJCT <= 0 || r.PrefetchJCT <= 0 {
			t.Errorf("%s has non-positive normalized JCT", r.Workload)
		}
	}

	evict, prefetch, full := Fig4Averages(rows)
	if full >= 1 {
		t.Errorf("full MRD average %.2f >= 1: no overall win", full)
	}
	if evict >= 1 {
		t.Errorf("eviction-only average %.2f >= 1", evict)
	}
	// Paper: eviction provides the bulk of the improvement.
	if evict > prefetch+0.02 {
		t.Errorf("eviction-only (%.2f) much worse than prefetch-only (%.2f); paper has it stronger", evict, prefetch)
	}
	// Full MRD is at least as good as either single mechanism on average.
	if full > evict+0.02 || full > prefetch+0.02 {
		t.Errorf("full MRD (%.2f) worse than its parts (%.2f, %.2f)", full, evict, prefetch)
	}

	// I/O-intensive workloads gain substantially more than the
	// CPU-intensive ones (paper §5.10).
	var ioSum, cpuSum float64
	var ioN, cpuN int
	for _, r := range rows {
		switch r.JobType {
		case workload.IOIntensive:
			ioSum += r.FullJCT
			ioN++
		case workload.CPUIntensive:
			cpuSum += r.FullJCT
			cpuN++
		}
	}
	if ioSum/float64(ioN) >= cpuSum/float64(cpuN) {
		t.Errorf("I/O-intensive avg %.2f not better than CPU-intensive %.2f",
			ioSum/float64(ioN), cpuSum/float64(cpuN))
	}
	// DT is the paper's weakest case: nearly no improvement.
	if dt := byName["DT"]; dt.FullJCT < 0.85 {
		t.Errorf("DT improved too much (%.2f); paper has 88-100%%", dt.FullJCT)
	}
	// Hit ratio never degrades at the chosen operating points.
	for _, r := range rows {
		if r.Full.HitRatio() < r.LRU.HitRatio()-0.05 {
			t.Errorf("%s: MRD hit %.2f well below LRU %.2f", r.Workload, r.Full.HitRatio(), r.LRU.HitRatio())
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Fig7()
	if len(res.Points) < 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Hit ratios must not decrease as cache grows (monotone within
	// noise), and MRD dominates LRU at every size.
	for i, p := range res.Points {
		if p.MRD.HitRatio() < p.LRU.HitRatio()-0.02 {
			t.Errorf("point %d: MRD hit %.2f < LRU %.2f", i, p.MRD.HitRatio(), p.LRU.HitRatio())
		}
		if p.MRD.JCT > p.LRU.JCT*105/100 {
			t.Errorf("point %d: MRD JCT %d > LRU %d", i, p.MRD.JCT, p.LRU.JCT)
		}
		if i > 0 && p.LRU.HitRatio() < res.Points[i-1].LRU.HitRatio()-0.05 {
			t.Errorf("LRU hit ratio fell sharply with more cache at point %d", i)
		}
	}
	// The cache-savings readout: MRD reaches the target hit ratio with
	// no more cache than LRU needs (paper: 63% less).
	if res.MRDCacheneed == 0 {
		t.Error("MRD never reached the target hit ratio")
	}
	if res.LRUCacheneed != 0 && res.MRDCacheneed > res.LRUCacheneed {
		t.Errorf("MRD needs %d > LRU %d for the same hit ratio", res.MRDCacheneed, res.LRUCacheneed)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := Fig8(cluster.Main())
	lp, km := rows[0], rows[1]
	// Job distance degrades LP (many stages per job)...
	if lp.BJCT < lp.AJCT-0.02 {
		t.Errorf("LP: job distance (%.2f) beats stage distance (%.2f)", lp.BJCT, lp.AJCT)
	}
	// ...and the degradation is bigger than KM's, where stages≈jobs.
	if (lp.BJCT - lp.AJCT) < (km.BJCT-km.AJCT)-0.02 {
		t.Errorf("metric choice hurt KM (%.2f) more than LP (%.2f)",
			km.BJCT-km.AJCT, lp.BJCT-lp.AJCT)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := Fig9(cluster.Main())
	km, tc := rows[0], rows[1]
	// Ad-hoc mode must not beat recurring mode for KM (17 jobs)...
	if km.BJCT < km.AJCT-0.02 {
		t.Errorf("KM: ad-hoc (%.2f) beats recurring (%.2f)", km.BJCT, km.AJCT)
	}
	// ...while TC (2 jobs) is indifferent.
	if d := tc.BJCT - tc.AJCT; d > 0.1 || d < -0.1 {
		t.Errorf("TC: ad-hoc vs recurring differ by %.2f; paper: indiscernible", d)
	}
	// And KM's recurring benefit exceeds TC's.
	if (km.BJCT - km.AJCT) < (tc.BJCT-tc.AJCT)-0.02 {
		t.Errorf("recurrence helped TC more than KM")
	}
}

func TestAblationMINShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := AblationMIN(cluster.Main())
	byWorkload := map[string]map[string]AblationRow{}
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]AblationRow{}
		}
		byWorkload[r.Workload][r.Variant] = r
	}
	worse := 0
	for w, m := range byWorkload {
		min, lru := m["MIN"], m["LRU"]
		if min.Run.HitRatio() < lru.Run.HitRatio()-0.02 {
			t.Logf("%s: MIN hit %.2f below LRU %.2f", w, min.Run.HitRatio(), lru.Run.HitRatio())
			worse++
		}
	}
	// The stage-granular oracle may lose to LRU on task-granular
	// effects occasionally, but not broadly.
	if worse > 3 {
		t.Errorf("MIN below LRU on %d/14 workloads", worse)
	}
}

func TestStorageLevelStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := StorageLevelStudy(cluster.Main())
	if len(rows) != 4*2*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Level {
		case "MEMORY_AND_DISK":
			if r.Run.Recomputes != 0 {
				t.Errorf("%s/%s: recomputes under restorable caching", r.Workload, r.Policy)
			}
		case "MEMORY_ONLY":
			if r.Run.DiskPromotes != 0 {
				t.Errorf("%s/%s: promotes under MEMORY_ONLY", r.Workload, r.Policy)
			}
		default:
			t.Errorf("unknown level %q", r.Level)
		}
		if r.Policy == "LRU" && (r.NormJCT < 0.999 || r.NormJCT > 1.001) {
			t.Errorf("%s/%s LRU norm = %v, want 1", r.Workload, r.Level, r.NormJCT)
		}
	}
	// The informed policies beat LRU under both levels on these
	// I/O-intensive workloads.
	for _, r := range rows {
		if r.Policy == "MRD-evict" && r.NormJCT > 1.0 {
			t.Errorf("%s/%s: MRD-evict %v worse than LRU", r.Workload, r.Level, r.NormJCT)
		}
	}
}

func TestFailureSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := FailureSweep(cluster.Main())
	if len(rows) != 3*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FailStage < 0 {
			if r.Overhead != 1 || r.Reissues != 0 || r.Run.Recomputes != 0 {
				t.Errorf("%s healthy row wrong: %+v", r.Workload, r)
			}
			continue
		}
		if r.Overhead < 1 {
			t.Errorf("%s@%d: failure made the run faster (%.2f)", r.Workload, r.FailStage, r.Overhead)
		}
		if r.Overhead > 2 {
			t.Errorf("%s@%d: recovery overhead %.2f implausibly large", r.Workload, r.FailStage, r.Overhead)
		}
		if r.Reissues != 1 {
			t.Errorf("%s@%d: table reissues = %d, want 1", r.Workload, r.FailStage, r.Reissues)
		}
		if r.Run.Recomputes == 0 {
			t.Errorf("%s@%d: no recomputation after disk loss", r.Workload, r.FailStage)
		}
	}
}

func TestSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows := Sensitivity(cluster.Main(), []string{"CC", "PO"}, []int64{10, 70, 280})
	byWorkload := map[string][]SensitivityRow{}
	for _, r := range rows {
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for w, rs := range byWorkload {
		if len(rs) != 3 {
			t.Fatalf("%s: points = %d", w, len(rs))
		}
		slow, fast := rs[0], rs[2]
		// The §5.10 direction: more I/O-bound (slow disk) means a
		// bigger MRD win.
		if slow.MRDJCT > fast.MRDJCT+0.03 {
			t.Errorf("%s: slow-disk gain (%.2f) worse than fast-disk (%.2f)", w, slow.MRDJCT, fast.MRDJCT)
		}
		// Hit ratios are policy properties, not bandwidth properties.
		if slow.LRUHit != fast.LRUHit {
			t.Errorf("%s: LRU hit ratio changed with bandwidth (%.3f vs %.3f)", w, slow.LRUHit, fast.LRUHit)
		}
		for _, r := range rs {
			if r.MRDJCT > 1.02 {
				t.Errorf("%s@%dMBps: MRD worse than LRU (%.2f)", w, r.DiskMBps, r.MRDJCT)
			}
		}
	}
}
