package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/workload"
)

// Fig10Row compares one iteration-parameterized workload at its
// default iteration count against triple iterations (paper §5.9).
type Fig10Row struct {
	Workload   string
	Iters1     int
	Iters3     int
	Jobs1      int
	Jobs3      int
	Stages1    int
	Stages3    int
	JCT1       float64 // full MRD normalized to LRU, default iterations
	JCT3       float64 // same with tripled iterations
	Hit1, Hit3 float64
}

// Fig10 triples the iteration parameter of every workload that has one
// and measures how the extra jobs, stages and references change MRD's
// gains. The paper reports jobs +59%, stages +78%, average JCT 62%→54%
// and hit ratio 94%→96% — with diminishing returns.
func Fig10(cfg cluster.Config) []Fig10Row {
	var names []string
	for _, name := range workload.SparkBenchNames() {
		base, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		if base.Iterations == 0 {
			continue // not iteration-parameterized (e.g. TC)
		}
		names = append(names, name)
	}
	rows := make([]Fig10Row, len(names))
	forEach(len(names), func(i int) {
		name := names[i]
		base, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		tripled, err := workload.Build(name, workload.Params{Iterations: 3 * base.Iterations})
		if err != nil {
			panic(err)
		}
		r := Fig10Row{
			Workload: name,
			Iters1:   base.Iterations, Iters3: tripled.Iterations,
			Jobs1: len(base.Graph.Jobs), Jobs3: len(tripled.Graph.Jobs),
			Stages1: base.Graph.ActiveStages(), Stages3: tripled.Graph.ActiveStages(),
		}
		r.JCT1, r.Hit1 = bestMRDvsLRU(base, cfg)
		r.JCT3, r.Hit3 = bestMRDvsLRU(tripled, cfg)
		rows[i] = r
	})
	return rows
}

// bestMRDvsLRU sweeps cache sizes and returns full MRD's best
// normalized JCT and its hit ratio there.
func bestMRDvsLRU(spec *workload.Spec, cfg cluster.Config) (jct, hit float64) {
	ws := workingSet(spec, cfg)
	jct = 1e18
	for _, frac := range defaultFractions {
		c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
		lru := runOne(spec, c, SpecLRU)
		mrd := runOne(spec, c, SpecMRD)
		if r := norm(mrd, lru); r < jct {
			jct, hit = r, mrd.HitRatio()
		}
	}
	return jct, hit
}

// RenderFig10 formats the iteration-scaling table.
func RenderFig10(rows []Fig10Row) string {
	t := Table{
		Title: "Figure 10: Effects of iterations in workload (full MRD, JCT normalized to LRU)",
		Header: []string{"Workload", "Iters", "Iters x3", "Jobs", "Jobs x3",
			"Stages", "Stages x3", "JCT", "JCT x3", "Hit", "Hit x3"},
	}
	var j1, j3, h1, h3, jobGrowth, stageGrowth float64
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, itoa(r.Iters1), itoa(r.Iters3), itoa(r.Jobs1), itoa(r.Jobs3),
			itoa(r.Stages1), itoa(r.Stages3),
			pct(r.JCT1), pct(r.JCT3), pct1(r.Hit1), pct1(r.Hit3),
		})
		j1 += r.JCT1
		j3 += r.JCT3
		h1 += r.Hit1
		h3 += r.Hit3
		jobGrowth += float64(r.Jobs3)/float64(r.Jobs1) - 1
		stageGrowth += float64(r.Stages3)/float64(r.Stages1) - 1
	}
	n := float64(len(rows))
	t.Note = "Averages: jobs +" + pct(jobGrowth/n) + ", stages +" + pct(stageGrowth/n) +
		", JCT " + pct(j1/n) + " -> " + pct(j3/n) + ", hit " + pct1(h1/n) + " -> " + pct1(h3/n) +
		" (paper: jobs +59%, stages +78%, JCT 62% -> 54%, hit 94% -> 96%)"
	return t.Render()
}
