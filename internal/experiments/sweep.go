package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// The sweep fabric runs the full policy x workload x cluster x chaos
// grid — thousands of configurations — in one invocation, following a
// distribute-then-merge-once discipline: the grid is enumerated in one
// canonical order, partitioned into contiguous shards, each shard's
// rows are computed independently (by pool workers pulling indices, or
// by separate processes), and the per-shard row tables are merged
// exactly once into a single consolidated report. Because every row
// lands at its grid index and every aggregate is computed from the
// merged table in index order, the report is byte-identical regardless
// of worker count, shard count, or scheduling order — proven by
// TestSweepDeterminism.

// SweepConfig selects the grid axes. Empty slices take the full-sweep
// defaults (see FullSweep); the zero value is the full sweep.
type SweepConfig struct {
	// Workloads are generator names (workload.Names() subset).
	Workloads []string `json:"workloads"`
	// Seeds perturb workload generation (Params.Seed).
	Seeds []int64 `json:"seeds"`
	// Clusters are the testbeds swept.
	Clusters []cluster.Config `json:"clusters"`
	// Fractions are working-set fractions converted to per-node cache
	// sizes per workload (cacheForFraction).
	Fractions []float64 `json:"fractions"`
	// Policies are the cache policies under test.
	Policies []PolicySpec `json:"policies"`
	// Presets are fault-schedule names; "healthy" is the no-fault leg.
	Presets []string `json:"presets"`
	// Repls are replication factors applied to every preset.
	Repls []int `json:"repls"`
}

// FullSweep is the whole evaluation grid: every workload generator,
// the core policy families, the paper's cache-size sweep, two data
// seeds, and the chaos escalation on top of the healthy leg. On the
// default axes this enumerates thousands of grid points (23 workloads
// x 11 policies x 5 fractions x 2 seeds x 3 presets = 7590).
func FullSweep() SweepConfig {
	return SweepConfig{
		Workloads: workload.Names(),
		Seeds:     []int64{0, 101},
		Clusters:  []cluster.Config{cluster.Main()},
		Fractions: defaultFractions,
		Policies: []PolicySpec{
			SpecLRU,
			{Kind: "FIFO"},
			{Kind: "LFU"},
			{Kind: "Hyperbolic"},
			{Kind: "GDS"},
			SpecLRC,
			SpecMemTune,
			SpecMIN,
			SpecMRDEvictOnly,
			SpecMRDPrefOnly,
			SpecMRD,
		},
		Presets: []string{"healthy", "crash", "chaos"},
		Repls:   []int{1},
	}
}

// SmokeSweep is the reduced grid CI and the differential tests run:
// three workloads, three policies, two cache sizes, healthy plus one
// crash schedule (36 points).
func SmokeSweep() SweepConfig {
	return SweepConfig{
		Workloads: []string{"KM", "CC", "SVD"},
		Seeds:     []int64{0},
		Clusters:  []cluster.Config{cluster.Main()},
		Fractions: []float64{0.6, 1.2},
		Policies:  []PolicySpec{SpecLRU, SpecLRC, SpecMRD},
		Presets:   []string{"healthy", "crash"},
		Repls:     []int{1},
	}
}

// normalized fills empty axes from FullSweep so a zero SweepConfig is
// the full sweep and every grid consumer sees concrete axes.
func (c SweepConfig) normalized() SweepConfig {
	full := FullSweep()
	if len(c.Workloads) == 0 {
		c.Workloads = full.Workloads
	}
	if len(c.Seeds) == 0 {
		c.Seeds = full.Seeds
	}
	if len(c.Clusters) == 0 {
		c.Clusters = full.Clusters
	}
	if len(c.Fractions) == 0 {
		c.Fractions = full.Fractions
	}
	if len(c.Policies) == 0 {
		c.Policies = full.Policies
	}
	if len(c.Presets) == 0 {
		c.Presets = full.Presets
	}
	if len(c.Repls) == 0 {
		c.Repls = full.Repls
	}
	return c
}

// Digest fingerprints the normalized grid axes; shard files record it
// so a merge of shards cut from different grids fails instead of
// producing a frankenreport.
func (c SweepConfig) Digest() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("grid-v%d|%+v", cacheKeyVersion, c.normalized())))
	return hex.EncodeToString(sum[:8])
}

// GridPoint is one cell of the sweep grid. Index is the point's
// position in the canonical enumeration order — the merge key.
type GridPoint struct {
	Index    int            `json:"index"`
	Workload string         `json:"workload"`
	Seed     int64          `json:"seed"`
	Cluster  cluster.Config `json:"cluster"`
	Fraction float64        `json:"fraction"`
	Policy   PolicySpec     `json:"policy"`
	Preset   string         `json:"preset"`
	Repl     int            `json:"repl"`
}

// baseKey identifies a grid point minus its policy — what a policy's
// run is normalized against (the LRU run at the same point).
type baseKey struct {
	Workload string
	Seed     int64
	Cluster  string
	Fraction float64
	Preset   string
	Repl     int
}

func (p GridPoint) base() baseKey {
	return baseKey{p.Workload, p.Seed, p.Cluster.Name, p.Fraction, p.Preset, p.Repl}
}

// Grid enumerates the full grid in canonical order: workload, seed,
// cluster, fraction, policy, preset, replication — outermost to
// innermost. The order is part of the sweep's contract: shard
// boundaries, merge validation and report determinism all key on it.
func (c SweepConfig) Grid() []GridPoint {
	c = c.normalized()
	var grid []GridPoint
	for _, name := range c.Workloads {
		for _, seed := range c.Seeds {
			for _, cl := range c.Clusters {
				for _, frac := range c.Fractions {
					for _, p := range c.Policies {
						for _, preset := range c.Presets {
							for _, repl := range c.Repls {
								grid = append(grid, GridPoint{
									Index:    len(grid),
									Workload: name,
									Seed:     seed,
									Cluster:  cl,
									Fraction: frac,
									Policy:   p,
									Preset:   preset,
									Repl:     repl,
								})
							}
						}
					}
				}
			}
		}
	}
	return grid
}

// SweepRow is one computed grid cell.
type SweepRow struct {
	Point        GridPoint   `json:"point"`
	CachePerNode int64       `json:"cachePerNode"`
	Run          metrics.Run `json:"run"`
}

// SweepResult is the merged sweep: one row per grid point, in index
// order, plus the cache-serving stats accumulated while computing
// (stats are reported on stdout, never in the HTML, so warm and cold
// sweeps render byte-identical reports).
type SweepResult struct {
	Config SweepConfig
	Rows   []SweepRow
	Stats  CacheStats
}

// runPoint computes one grid cell through the memoized (and, when a
// CacheStore is installed, persistent) run cache.
func runPoint(pt GridPoint) SweepRow {
	spec, err := workload.Build(pt.Workload, workload.Params{Seed: pt.Seed})
	if err != nil {
		panic(err)
	}
	ws := workingSet(spec, pt.Cluster)
	c := pt.Cluster.WithCache(cacheForFraction(spec, ws, pt.Fraction, pt.Cluster))
	run, err := RunCachedFault(spec, c, pt.Policy, pt.Preset, pt.Repl)
	if err != nil {
		panic(fmt.Sprintf("sweep: %s seed=%d %s %s/%d: %v",
			pt.Workload, pt.Seed, pt.Policy.Name(), pt.Preset, pt.Repl, err))
	}
	return SweepRow{Point: pt, CachePerNode: c.CacheBytes, Run: run}
}

// shardRange returns the canonical contiguous [lo, hi) slice of an
// n-point grid owned by shard i of `of`.
func shardRange(shard, of, n int) (lo, hi int) {
	return shard * n / of, (shard + 1) * n / of
}

// runRows computes rows[i] = runPoint(grid[i]) for every point on a
// worker pool, converting a worker panic into an error so callers keep
// their cleanup (closing the cache store, flushing shard files).
func runRows(grid []GridPoint, workers int) (rows []SweepRow, err error) {
	rows = make([]SweepRow, len(grid))
	defer func() {
		if r := recover(); r != nil {
			rows, err = nil, fmt.Errorf("sweep: %v", r)
		}
	}()
	forEachWorkers(workers, len(grid), func(i int) {
		rows[i] = runPoint(grid[i])
	})
	return rows, nil
}

// RunSweep executes the whole grid on a single process's worker pool
// (workers <= 0 means GOMAXPROCS) and merges the rows once. The
// worker pool is work-stealing: idle workers pull the next grid index,
// so a shard of slow chaos runs cannot stall the rest of the grid.
func RunSweep(cfg SweepConfig, workers int) (*SweepResult, error) {
	cfg = cfg.normalized()
	grid := cfg.Grid()
	before := ReadCacheStats()
	rows, err := runRows(grid, workers)
	if err != nil {
		return nil, err
	}
	return &SweepResult{Config: cfg, Rows: rows, Stats: statsSince(before)}, nil
}

// shardFileVersion versions the shard interchange format.
const shardFileVersion = 1

// ShardFile is the interchange unit of a multi-process sweep: the rows
// of one contiguous shard of the grid, stamped with the grid digest so
// merges across mismatched grids fail loudly.
type ShardFile struct {
	Version      int         `json:"version"`
	ConfigDigest string      `json:"configDigest"`
	Shard        int         `json:"shard"`
	Of           int         `json:"of"`
	GridLen      int         `json:"gridLen"`
	Config       SweepConfig `json:"config"`
	Rows         []SweepRow  `json:"rows"`
	Stats        CacheStats  `json:"stats"`
}

// RunSweepShard computes shard `shard` of `of` over the grid and
// returns it as a mergeable shard file.
func RunSweepShard(cfg SweepConfig, shard, of, workers int) (*ShardFile, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("sweep: invalid shard %d/%d", shard, of)
	}
	cfg = cfg.normalized()
	grid := cfg.Grid()
	lo, hi := shardRange(shard, of, len(grid))
	before := ReadCacheStats()
	rows, err := runRows(grid[lo:hi], workers)
	if err != nil {
		return nil, err
	}
	return &ShardFile{
		Version:      shardFileVersion,
		ConfigDigest: cfg.Digest(),
		Shard:        shard,
		Of:           of,
		GridLen:      len(grid),
		Config:       cfg,
		Rows:         rows,
		Stats:        statsSince(before),
	}, nil
}

// WriteFile writes the shard as JSON.
func (sf *ShardFile) WriteFile(path string) error {
	b, err := json.MarshalIndent(sf, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadShardFile loads one shard file.
func ReadShardFile(path string) (*ShardFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var sf ShardFile
	if err := json.Unmarshal(b, &sf); err != nil {
		return nil, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	if sf.Version != shardFileVersion {
		return nil, fmt.Errorf("sweep: %s: shard file version %d, want %d", path, sf.Version, shardFileVersion)
	}
	return &sf, nil
}

// MergeShards merges per-shard row tables exactly once into the
// consolidated result. It validates the merge completely: every shard
// must come from the same grid (digest), the shard set must be exactly
// {0..of-1} with no duplicates, and the merged rows must cover every
// grid index exactly once. Stats sum across shards (they are
// order-independent counters).
func MergeShards(files []*ShardFile) (*SweepResult, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("sweep: nothing to merge")
	}
	first := files[0]
	seen := make(map[int]bool, len(files))
	var stats CacheStats
	rows := make([]SweepRow, first.GridLen)
	filled := 0
	for _, sf := range files {
		if sf.ConfigDigest != first.ConfigDigest {
			return nil, fmt.Errorf("sweep: merge of mismatched grids: digest %s vs %s",
				sf.ConfigDigest, first.ConfigDigest)
		}
		if sf.Of != first.Of || sf.GridLen != first.GridLen {
			return nil, fmt.Errorf("sweep: merge of mismatched shard layouts: %d/%d vs %d/%d",
				sf.Shard, sf.Of, first.Shard, first.Of)
		}
		if seen[sf.Shard] {
			return nil, fmt.Errorf("sweep: shard %d/%d supplied twice", sf.Shard, sf.Of)
		}
		seen[sf.Shard] = true
		lo, hi := shardRange(sf.Shard, sf.Of, sf.GridLen)
		if len(sf.Rows) != hi-lo {
			return nil, fmt.Errorf("sweep: shard %d/%d has %d rows, want %d",
				sf.Shard, sf.Of, len(sf.Rows), hi-lo)
		}
		for i, row := range sf.Rows {
			want := lo + i
			if row.Point.Index != want {
				return nil, fmt.Errorf("sweep: shard %d/%d row %d has grid index %d, want %d",
					sf.Shard, sf.Of, i, row.Point.Index, want)
			}
			rows[want] = row
			filled++
		}
		stats.MemoHits += sf.Stats.MemoHits
		stats.DiskHits += sf.Stats.DiskHits
		stats.Simulated += sf.Stats.Simulated
		stats.Waits += sf.Stats.Waits
	}
	if len(seen) != first.Of {
		missing := make([]int, 0, first.Of)
		for i := 0; i < first.Of; i++ {
			if !seen[i] {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("sweep: incomplete merge: missing shards %v of %d", missing, first.Of)
	}
	if filled != first.GridLen {
		return nil, fmt.Errorf("sweep: merged %d rows, grid has %d", filled, first.GridLen)
	}
	return &SweepResult{Config: first.Config.normalized(), Rows: rows, Stats: stats}, nil
}

// statsSince subtracts a snapshot from the current counters.
func statsSince(before CacheStats) CacheStats {
	now := ReadCacheStats()
	return CacheStats{
		MemoHits:  now.MemoHits - before.MemoHits,
		DiskHits:  now.DiskHits - before.DiskHits,
		Simulated: now.Simulated - before.Simulated,
		Waits:     now.Waits - before.Waits,
	}
}

// Summary is the scrapeable one-line account of a sweep (CI asserts
// warm re-runs on it).
func (r *SweepResult) Summary() string {
	return fmt.Sprintf("sweep: grid=%d %s", len(r.Rows), r.Stats)
}

// isLRU reports whether a policy spec is the plain LRU baseline the
// renderer normalizes against.
func isLRU(p PolicySpec) bool {
	return p.Kind == "LRU" && p.Label == "" && !p.AdHoc && p.MRD == (core.Options{})
}
