package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// FailureRow measures the cost of one worker-node loss at a given
// point in the run (paper §4.4's fault-tolerance path).
type FailureRow struct {
	Workload  string
	FailStage int // executed-stage index of the failure (-1 = healthy)
	Run       metrics.Run
	// Overhead is the JCT relative to the healthy run.
	Overhead float64
	// Reissues counts the MRD_Table re-sends the failure triggered.
	Reissues int
}

// FailureSweep kills one node at the 25%, 50% and 75% marks of each
// workload's executed stages and reports the recovery cost under full
// MRD: lost blocks recompute from lineage (or re-read from surviving
// replicas' shuffle data), and the manager re-issues the table. The
// paper describes the mechanism (§4.4) without measuring it; this is
// the measurement.
func FailureSweep(cfg cluster.Config) []FailureRow {
	names := []string{"CC", "KM", "SVD"}
	marks := []float64{0.25, 0.5, 0.75}
	rows := make([]FailureRow, len(names)*(1+len(marks)))
	forEach(len(names), func(ni int) {
		name := names[ni]
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		ws := workingSet(spec, cfg)
		c := cfg.WithCache(cacheForFraction(spec, ws, 0.85, cfg))
		stages := spec.Graph.ActiveStages()

		runAt := func(failStage int) (metrics.Run, int) {
			s2, err := workload.Build(name, workload.Params{})
			if err != nil {
				panic(err)
			}
			mgr := core.NewManager(s2.Graph,
				core.NewRecurringProfiler(refdist.FromGraph(s2.Graph)), core.Options{})
			simn, err := sim.New(s2.Graph, c, mgr, name)
			if err != nil {
				panic(err)
			}
			if failStage >= 0 {
				if err := simn.SetOptions(sim.Options{Fault: fault.Crash(1, failStage)}); err != nil {
					panic(err)
				}
			}
			run := simn.Run()
			return run, mgr.Stats().TableReissues
		}

		healthy, _ := runAt(-1)
		rows[ni*(1+len(marks))] = FailureRow{Workload: name, FailStage: -1, Run: healthy, Overhead: 1}
		for mi, m := range marks {
			at := int(float64(stages) * m)
			run, reissues := runAt(at)
			rows[ni*(1+len(marks))+1+mi] = FailureRow{
				Workload: name, FailStage: at, Run: run,
				Overhead: float64(run.JCT) / float64(healthy.JCT),
				Reissues: reissues,
			}
		}
	})
	return rows
}

// RenderFailure formats the fault-tolerance sweep.
func RenderFailure(rows []FailureRow) string {
	t := Table{
		Title:  "Fault tolerance: one worker lost mid-run (full MRD; paper §4.4's recovery path, measured)",
		Header: []string{"Workload", "FailAtStage", "JCT", "Overhead", "Hit", "Recomputes", "TableReissues"},
	}
	for _, r := range rows {
		at := "healthy"
		if r.FailStage >= 0 {
			at = itoa(r.FailStage)
		}
		t.Rows = append(t.Rows, []string{
			r.Workload, at, r.Run.JCTDuration().String(), pct(r.Overhead),
			pct1(r.Run.HitRatio()), itoa(int(r.Run.Recomputes)), itoa(r.Reissues),
		})
	}
	t.Note = "Overhead is JCT relative to the healthy run. Node loss wipes memory AND local disk,\n" +
		"so restorable blocks on the failed node recompute from lineage at their next reference."
	return t.Render()
}
