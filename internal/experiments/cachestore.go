package experiments

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mrdspark/internal/metrics"
)

// cacheKeyVersion versions the canonical runKey encoding. Bump it when
// the meaning of a key component changes without its printed form
// changing (a renamed policy kind, a re-tuned workload generator, a
// simulator fix that alters results) — every stored entry is keyed
// under the old version string and silently stops matching, so the
// store rebuilds instead of replaying stale runs.
const cacheKeyVersion = 1

// cacheFileVersion versions the on-disk container format (header +
// entry schema). A file with any other version is ignored wholesale
// and rebuilt.
const cacheFileVersion = 1

// cacheFileMagic guards against pointing -cache-dir at a directory
// holding some other JSONL file.
const cacheFileMagic = "mrdspark-run-cache"

// CacheFileName is the store's file name inside its directory.
const CacheFileName = "runs.jsonl"

// cacheHeader is the first line of the store file.
type cacheHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

// cacheEntry is one persisted run. Key is the hex SHA-256 of the
// canonical runKey string; ID is that canonical string itself, kept so
// a hash collision (same Key, different ID) is detectable instead of
// silently replaying the wrong run. Sum is the hex SHA-256 over the ID
// and the run's JSON encoding together: an entry whose payload no
// longer hashes to Sum was corrupted on disk and is ignored (the run
// re-simulates and re-appends).
type cacheEntry struct {
	Key string      `json:"key"`
	ID  string      `json:"id"`
	Run metrics.Run `json:"run"`
	Sum string      `json:"sum"`
}

// CacheStore persists memoized runs across processes: a single
// append-only JSONL file, loaded fully at open, appended one fsync-free
// O_APPEND write per new run (single-write appends do not interleave,
// so two sweep shards can share one store file). The store is
// content-addressed and never trusted: every entry carries its own
// payload digest, the loader skips anything truncated or corrupted,
// and a whole-file version or magic mismatch discards the file.
type CacheStore struct {
	path string

	mu      sync.Mutex
	f       *os.File
	mem     map[string]cacheEntry // key hash -> entry
	loaded  int                   // entries accepted at open
	skipped int                   // lines rejected at open (corrupt/truncated)
	rebuilt bool                  // file was discarded at open
}

// OpenCacheStore opens (creating if needed) the run store in dir. A
// file that fails the header check — wrong magic, wrong version, or an
// unparsable first line — is discarded and rewritten empty: a cache
// can always be rebuilt, so no mismatch is worth failing over, but it
// must never be trusted. A key-hash collision between two loaded
// entries is the one loud failure: it means two different
// configurations would replay the same run.
func OpenCacheStore(dir string) (*CacheStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &CacheStore{
		path: filepath.Join(dir, CacheFileName),
		mem:  make(map[string]cacheEntry),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(cacheHeader{Magic: cacheFileMagic, Version: cacheFileVersion})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("cachestore: writing header: %w", err)
		}
	}
	s.f = f
	return s, nil
}

// load reads the existing file into memory, tolerating damage.
func (s *CacheStore) load() error {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		// Empty file: treat as fresh.
		return nil
	}
	var hdr cacheHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.Magic != cacheFileMagic || hdr.Version != cacheFileVersion {
		// Version/format mismatch: never trust, discard and rebuild.
		s.rebuilt = true
		return os.Remove(s.path)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn or truncated line (a crash mid-append). Later lines
			// may still be whole — a concurrent shard's appends land after
			// ours — so skip, don't stop.
			s.skipped++
			continue
		}
		if entrySum(e.ID, e.Run) != e.Sum {
			// Content check failed: bytes rotted or were edited.
			s.skipped++
			continue
		}
		if prev, ok := s.mem[e.Key]; ok && prev.ID != e.ID {
			return fmt.Errorf("cachestore: key hash collision in %s: %q vs %q both hash to %s",
				s.path, prev.ID, e.ID, e.Key)
		}
		s.mem[e.Key] = e
		s.loaded++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cachestore: reading %s: %w", s.path, err)
	}
	return nil
}

// Get returns the stored run for the canonical key, if present. A
// stored entry whose canonical ID differs from the requested one under
// the same hash is a collision and fails loudly.
func (s *CacheStore) Get(canonical string) (metrics.Run, bool, error) {
	key := keyHash(canonical)
	s.mu.Lock()
	e, ok := s.mem[key]
	s.mu.Unlock()
	if !ok {
		return metrics.Run{}, false, nil
	}
	if e.ID != canonical {
		return metrics.Run{}, false, fmt.Errorf(
			"cachestore: key hash collision: stored %q, requested %q, both hash to %s",
			e.ID, canonical, key)
	}
	return e.Run, true, nil
}

// Put stores the run under the canonical key, appending it to the
// file. Re-putting an equal entry is a no-op; a different run under an
// already-stored key is a collision (or a non-deterministic simulator)
// and fails loudly.
func (s *CacheStore) Put(canonical string, run metrics.Run) error {
	e := cacheEntry{Key: keyHash(canonical), ID: canonical, Run: run, Sum: entrySum(canonical, run)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.mem[e.Key]; ok {
		if prev.ID != canonical {
			return fmt.Errorf("cachestore: key hash collision: %q vs %q both hash to %s",
				prev.ID, canonical, e.Key)
		}
		if prev.Sum != e.Sum {
			return fmt.Errorf("cachestore: conflicting runs for key %q (sums %s vs %s)",
				canonical, prev.Sum, e.Sum)
		}
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("cachestore: appending to %s: %w", s.path, err)
	}
	s.mem[e.Key] = e
	return nil
}

// Len reports the number of in-memory entries.
func (s *CacheStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// LoadReport describes what opening the store found: entries accepted,
// lines skipped as damaged, and whether the whole file was discarded
// for a version/format mismatch.
func (s *CacheStore) LoadReport() (loaded, skipped int, rebuilt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded, s.skipped, s.rebuilt
}

// Close releases the append handle. The store must not be used after.
func (s *CacheStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// keyHash is the store's content address for a canonical key string.
func keyHash(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// entrySum hashes an entry's canonical ID together with its run's JSON
// encoding (metrics.Run marshals deterministically: fixed field order,
// integer and string fields only), so damage to either is caught.
func entrySum(canonical string, run metrics.Run) string {
	b, err := json.Marshal(run)
	if err != nil {
		panic(fmt.Sprintf("cachestore: metrics.Run must marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(canonical))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
