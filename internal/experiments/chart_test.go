package experiments

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := barChart("T:", []string{"a", "bb"}, []float64{0.5, 1.0}, pct, 1.0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "T:" {
		t.Errorf("title = %q", lines[0])
	}
	aBars := strings.Count(lines[1], "#")
	bBars := strings.Count(lines[2], "#")
	if aBars*2 != bBars {
		t.Errorf("bar lengths not proportional: %d vs %d", aBars, bBars)
	}
	if !strings.Contains(lines[1], "50%") || !strings.Contains(lines[2], "100%") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	if out := barChart("T", nil, nil, pct, 0); out != "" {
		t.Errorf("empty chart rendered %q", out)
	}
	if out := barChart("T", []string{"a"}, []float64{1, 2}, pct, 0); out != "" {
		t.Errorf("mismatched chart rendered %q", out)
	}
	// All-zero values must not divide by zero.
	out := barChart("T", []string{"a"}, []float64{0}, pct, 0)
	if !strings.Contains(out, "0%") {
		t.Errorf("zero chart broken: %q", out)
	}
}

func TestBarChartClampsOverflow(t *testing.T) {
	out := barChart("T", []string{"a"}, []float64{5}, pct, 1.0) // 5x the scale
	if strings.Count(out, "#") != 44 {
		t.Errorf("overflow bar not clamped: %q", out)
	}
}

func TestSeriesChart(t *testing.T) {
	out := seriesChart("S:", []string{"x", "y"},
		map[string][]float64{"A": {0.2, 0.4}, "B": {0.4, 0.8}},
		[]string{"A", "B"}, pct1)
	for _, want := range []string{"S:", "x", "y", "A", "B", "20.0%", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("series chart missing %q:\n%s", want, out)
		}
	}
	// The label prints once per group, on the first series row.
	if strings.Count(out, "x") != 1 {
		t.Errorf("group label repeated:\n%s", out)
	}
}
