package experiments

import (
	"mrdspark/internal/cluster"
	"mrdspark/internal/metrics"
	"mrdspark/internal/workload"
)

// Fig4Row is one workload's overall-performance result (paper Fig 4):
// normalized JCT of each MRD variant against LRU, plus hit ratios, at
// the workload's best cache size.
type Fig4Row struct {
	Workload string
	JobType  workload.JobType
	// CacheFraction is the working-set fraction where full MRD gained
	// the most; CachePerNode is the resulting per-node size.
	CacheFraction float64
	CachePerNode  int64

	LRU      metrics.Run
	Evict    metrics.Run // MRD eviction only
	Prefetch metrics.Run // MRD prefetching only
	Full     metrics.Run

	// Normalized JCTs (fraction of LRU's JCT; lower is better).
	EvictJCT    float64
	PrefetchJCT float64
	FullJCT     float64
}

// Fig4 runs the overall-performance experiment: every SparkBench
// workload, each cache size in the sweep, LRU vs the three MRD
// configurations; the reported row for each workload is the cache size
// where full MRD helps most (the paper's "best overall performance
// gain for each workload-cache combination").
func Fig4(cfg cluster.Config) []Fig4Row {
	names := workload.SparkBenchNames()
	rows := make([]Fig4Row, len(names))
	forEach(len(names), func(i int) {
		spec, err := workload.Build(names[i], workload.Params{})
		if err != nil {
			panic(err)
		}
		rows[i] = fig4Workload(spec, cfg)
	})
	return rows
}

func fig4Workload(spec *workload.Spec, cfg cluster.Config) Fig4Row {
	ws := workingSet(spec, cfg)
	best := Fig4Row{Workload: spec.Name, JobType: spec.JobType, FullJCT: 2}
	for _, frac := range defaultFractions {
		c := cfg.WithCache(cacheForFraction(spec, ws, frac, cfg))
		lru := runOne(spec, c, SpecLRU)
		full := runOne(spec, c, SpecMRD)
		ratio := norm(full, lru)
		if ratio < best.FullJCT {
			best.CacheFraction = frac
			best.CachePerNode = c.CacheBytes
			best.LRU = lru
			best.Full = full
			best.FullJCT = ratio
		}
	}
	c := cfg.WithCache(best.CachePerNode)
	best.Evict = runOne(spec, c, SpecMRDEvictOnly)
	best.Prefetch = runOne(spec, c, SpecMRDPrefOnly)
	best.EvictJCT = norm(best.Evict, best.LRU)
	best.PrefetchJCT = norm(best.Prefetch, best.LRU)
	return best
}

// Extensions applies the Fig 4 treatment to the workloads beyond the
// paper's suites (the future-work "testing with more benchmarks",
// measured): best cache size per workload, LRU vs the MRD variants.
func Extensions(cfg cluster.Config) []Fig4Row {
	var names []string
	for _, name := range workload.Names() {
		spec, err := workload.Build(name, workload.Params{})
		if err != nil {
			panic(err)
		}
		if spec.Suite == "Extensions" {
			names = append(names, name)
		}
	}
	rows := make([]Fig4Row, len(names))
	forEach(len(names), func(i int) {
		spec, err := workload.Build(names[i], workload.Params{})
		if err != nil {
			panic(err)
		}
		rows[i] = fig4Workload(spec, cfg)
	})
	return rows
}

// RenderExtensions formats the extension-workload results.
func RenderExtensions(rows []Fig4Row) string {
	t := Table{
		Title: "Extension workloads (beyond the paper's suites): MRD vs LRU, best cache size each",
		Header: []string{"Workload", "JobType", "Cache/Node", "WS-frac",
			"EvictOnly", "PrefetchOnly", "FullMRD", "LRU hit", "MRD hit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, string(r.JobType), human(r.CachePerNode), f2(r.CacheFraction),
			pct(r.EvictJCT), pct(r.PrefetchJCT), pct(r.FullJCT),
			pct1(r.LRU.HitRatio()), pct1(r.Full.HitRatio()),
		})
	}
	t.Note = "BFS: frontier churn (purge-friendly); GBT: two-generation live window; StarJoin: idling dimensions."
	return t.Render()
}

// norm returns run JCT as a fraction of the baseline JCT.
func norm(run, baseline metrics.Run) float64 {
	return metrics.Normalize(run, baseline).JCT
}

// Fig4Averages summarizes the three variants across workloads (the
// paper's headline numbers: eviction-only 62%, prefetch-only 67%, full
// 53% of LRU's JCT on average).
func Fig4Averages(rows []Fig4Row) (evict, prefetch, full float64) {
	for _, r := range rows {
		evict += r.EvictJCT
		prefetch += r.PrefetchJCT
		full += r.FullJCT
	}
	n := float64(len(rows))
	return evict / n, prefetch / n, full / n
}

// RenderFig4 formats the overall-performance table.
func RenderFig4(rows []Fig4Row) string {
	t := Table{
		Title: "Figure 4: Overall performance of MRD vs LRU (normalized JCT, lower is better; best cache size per workload)",
		Header: []string{"Workload", "JobType", "Cache/Node", "WS-frac",
			"EvictOnly", "PrefetchOnly", "FullMRD", "LRU hit", "MRD hit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, string(r.JobType), human(r.CachePerNode), f2(r.CacheFraction),
			pct(r.EvictJCT), pct(r.PrefetchJCT), pct(r.FullJCT),
			pct1(r.LRU.HitRatio()), pct1(r.Full.HitRatio()),
		})
	}
	e, p, f := Fig4Averages(rows)
	t.Note = "Average normalized JCT: eviction-only " + pct(e) +
		", prefetch-only " + pct(p) + ", full MRD " + pct(f) +
		" (paper: 62%, 67%, 53%)"
	labels := make([]string, len(rows))
	vals := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Workload
		vals[i] = r.FullJCT
	}
	chart := barChart("\nFull MRD normalized JCT (shorter bar = bigger win):", labels, vals, pct, 1.0)
	return t.Render() + chart
}
