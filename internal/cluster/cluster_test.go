package cluster

import (
	"math/rand"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/policy"
)

func TestConfigValidate(t *testing.T) {
	good := Main()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := []Config{
		{Name: "x", Nodes: 0, CoresPerNode: 1, CacheBytes: 1, DiskBytesPerSec: 1, NetBytesPerSec: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 0, CacheBytes: 1, DiskBytesPerSec: 1, NetBytesPerSec: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, CacheBytes: 0, DiskBytesPerSec: 1, NetBytesPerSec: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, CacheBytes: 1, DiskBytesPerSec: 0, NetBytesPerSec: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, CacheBytes: 1, DiskBytesPerSec: 1, NetBytesPerSec: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPresetsMatchTable4(t *testing.T) {
	m := Main()
	if m.Nodes != 25 || m.CoresPerNode != 4 {
		t.Errorf("Main = %d nodes, %d cores; Table 4 says 25/4", m.Nodes, m.CoresPerNode)
	}
	l := LRC()
	if l.Nodes != 20 || l.CoresPerNode != 2 {
		t.Errorf("LRC = %d/%d; Table 4 says 20/2", l.Nodes, l.CoresPerNode)
	}
	mt := MemTune()
	if mt.Nodes != 6 || mt.CoresPerNode != 8 {
		t.Errorf("MemTune = %d/%d; Table 4 says 6/8", mt.Nodes, mt.CoresPerNode)
	}
	// Network ordering per Table 4: MemTune (1 Gbps) > Main (500) > LRC (450).
	if !(mt.NetBytesPerSec > m.NetBytesPerSec && m.NetBytesPerSec > l.NetBytesPerSec) {
		t.Error("network bandwidth ordering violates Table 4")
	}
}

func TestWithCacheAndTotal(t *testing.T) {
	c := Main().WithCache(128 * MB)
	if c.CacheBytes != 128*MB {
		t.Errorf("WithCache = %d", c.CacheBytes)
	}
	if Main().CacheBytes == 128*MB {
		t.Error("WithCache mutated the receiver")
	}
	if c.TotalCache() != 128*MB*25 {
		t.Errorf("TotalCache = %d", c.TotalCache())
	}
}

func bid(rdd, part int) block.ID { return block.ID{RDD: rdd, Partition: part} }

func info(rdd, part int, size int64) block.Info {
	return block.Info{ID: bid(rdd, part), Size: size, Level: block.MemoryAndDisk}
}

func newLRUStore(capacity int64) *MemoryStore {
	return NewMemoryStore(capacity, policy.NewLRU().NewNodePolicy(0))
}

func TestMemoryStorePutGetRemove(t *testing.T) {
	s := newLRUStore(10)
	if s.Get(bid(1, 0)) {
		t.Error("Get on empty store")
	}
	ev, ok := s.Put(info(1, 0, 4))
	if !ok || len(ev) != 0 {
		t.Fatalf("Put = %v, %v", ev, ok)
	}
	if !s.Contains(bid(1, 0)) || !s.Get(bid(1, 0)) {
		t.Error("block not resident after Put")
	}
	if s.Used() != 4 || s.Free() != 6 || s.Len() != 1 {
		t.Errorf("accounting: used=%d free=%d len=%d", s.Used(), s.Free(), s.Len())
	}
	if !s.Remove(bid(1, 0)) {
		t.Error("Remove failed")
	}
	if s.Remove(bid(1, 0)) {
		t.Error("double Remove succeeded")
	}
	if s.Used() != 0 {
		t.Errorf("used after remove = %d", s.Used())
	}
}

func TestMemoryStoreEvictsLRUUnderPressure(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 4))
	s.Put(info(2, 0, 4))
	s.Get(bid(1, 0)) // 2 is now LRU
	ev, ok := s.Put(info(3, 0, 4))
	if !ok {
		t.Fatal("Put failed")
	}
	if len(ev) != 1 || ev[0].ID != bid(2, 0) {
		t.Errorf("evicted %v, want rdd_2_0", ev)
	}
	if s.Evictions != 1 {
		t.Errorf("eviction counter = %d", s.Evictions)
	}
}

func TestMemoryStoreRejectsOversized(t *testing.T) {
	s := newLRUStore(10)
	if _, ok := s.Put(info(1, 0, 11)); ok {
		t.Error("oversized block accepted")
	}
	s.Put(info(2, 0, 10))
	if _, ok := s.Put(info(3, 0, 10)); !ok {
		t.Error("exact-fit replacement failed")
	}
}

func TestMemoryStoreResidentReinsertIsTouch(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 4))
	s.Put(info(2, 0, 4))
	s.Put(info(1, 0, 4)) // touch: 2 becomes LRU
	if s.Used() != 8 {
		t.Errorf("used after re-insert = %d, want 8", s.Used())
	}
	ev, _ := s.Put(info(3, 0, 4))
	if len(ev) != 1 || ev[0].ID != bid(2, 0) {
		t.Errorf("evicted %v, want rdd_2_0 (re-insert must refresh recency)", ev)
	}
}

func TestMemoryStorePutFailsWhenNothingEvictable(t *testing.T) {
	// A policy that refuses to name victims (here: empty resident set
	// seen through a filter that always rejects) must fail the Put.
	s := NewMemoryStore(10, refuseAll{})
	s.blocks[bid(9, 9)] = info(9, 9, 10)
	s.used = 10
	if _, ok := s.Put(info(1, 0, 4)); ok {
		t.Error("Put succeeded without space or victims")
	}
}

// refuseAll is a policy that never yields a victim.
type refuseAll struct{}

func (refuseAll) OnAdd(block.ID)                              {}
func (refuseAll) OnAccess(block.ID)                           {}
func (refuseAll) OnRemove(block.ID)                           {}
func (refuseAll) Victim(func(block.ID) bool) (block.ID, bool) { return block.ID{}, false }

func TestPutGuardedAllAllowed(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 5))
	s.Put(info(2, 0, 5))
	ev, ok := s.PutGuarded(info(3, 0, 7), func(block.ID) bool { return true })
	if !ok || len(ev) != 2 {
		t.Fatalf("guarded put = %v, %v", ev, ok)
	}
	if !s.Contains(bid(3, 0)) || s.Used() != 7 {
		t.Errorf("store state wrong: used=%d", s.Used())
	}
}

func TestPutGuardedAbortsWithoutPartialEviction(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 5))
	s.Put(info(2, 0, 5))
	// Allow evicting rdd 1 but not rdd 2: needs both, so it must
	// abort and leave everything resident.
	ev, ok := s.PutGuarded(info(3, 0, 7), func(v block.ID) bool { return v.RDD == 1 })
	if ok || len(ev) != 0 {
		t.Fatalf("guarded put should abort: %v, %v", ev, ok)
	}
	if !s.Contains(bid(1, 0)) || !s.Contains(bid(2, 0)) {
		t.Error("abort evicted blocks")
	}
	if s.Evictions != 0 {
		t.Errorf("evictions counted on abort: %d", s.Evictions)
	}
}

func TestPutGuardedResidentAndOversized(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 5))
	if _, ok := s.PutGuarded(info(1, 0, 5), func(block.ID) bool { return false }); !ok {
		t.Error("guarded re-insert of resident block failed")
	}
	if _, ok := s.PutGuarded(info(2, 0, 11), func(block.ID) bool { return true }); ok {
		t.Error("guarded put of oversized block succeeded")
	}
}

func TestClearEmptiesStore(t *testing.T) {
	s := newLRUStore(10)
	s.Put(info(1, 0, 4))
	s.Put(info(2, 0, 4))
	s.Clear()
	if s.Len() != 0 || s.Used() != 0 {
		t.Errorf("after Clear: len=%d used=%d", s.Len(), s.Used())
	}
	if _, ok := s.Put(info(3, 0, 10)); !ok {
		t.Error("store unusable after Clear")
	}
}

func TestDiskStore(t *testing.T) {
	d := NewDiskStore()
	if d.Has(bid(1, 0)) {
		t.Error("empty disk has block")
	}
	d.Put(bid(1, 0), 42)
	if !d.Has(bid(1, 0)) || d.Size(bid(1, 0)) != 42 || d.Len() != 1 {
		t.Error("disk put/get broken")
	}
	d.Remove(bid(1, 0))
	if d.Has(bid(1, 0)) {
		t.Error("remove failed")
	}
	d.Put(bid(2, 0), 1)
	d.Clear()
	if d.Len() != 0 {
		t.Error("clear failed")
	}
}

// TestStoreOccupancyInvariant is a property test: under random
// operations with any of the simple policies, occupancy never exceeds
// capacity and the byte accounting matches the resident set exactly.
func TestStoreOccupancyInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	factories := []policy.Factory{policy.NewLRU(), policy.NewFIFO(), policy.NewLFU()}
	for trial := 0; trial < 60; trial++ {
		capacity := int64(16 + rng.Intn(64))
		s := NewMemoryStore(capacity, factories[trial%len(factories)].NewNodePolicy(0))
		for op := 0; op < 500; op++ {
			id := bid(rng.Intn(6), rng.Intn(4))
			size := int64(1 + rng.Intn(20))
			switch rng.Intn(5) {
			case 0, 1, 2:
				s.Put(block.Info{ID: id, Size: size})
			case 3:
				s.Get(id)
			case 4:
				s.Remove(id)
			}
			if s.Used() > capacity {
				t.Fatalf("trial %d: used %d > capacity %d", trial, s.Used(), capacity)
			}
			var sum int64
			for _, rid := range s.Blocks() {
				if !s.Contains(rid) {
					t.Fatalf("trial %d: Blocks() lists non-resident %v", trial, rid)
				}
				sum += s.blocks[rid].Size
			}
			if sum != s.Used() {
				t.Fatalf("trial %d: accounting drift: sum %d != used %d", trial, sum, s.Used())
			}
		}
	}
}
