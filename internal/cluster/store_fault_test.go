package cluster

import (
	"sync"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/policy"
)

func TestDiskStoreReplicaSemantics(t *testing.T) {
	d := NewDiskStore()
	id := block.ID{RDD: 1, Partition: 0}

	d.PutReplica(id, 100)
	if !d.Has(id) || !d.HasReplica(id) {
		t.Fatal("replica copy not visible")
	}
	if d.ReplicaLen() != 1 || d.Len() != 1 {
		t.Errorf("len/replicaLen = %d/%d, want 1/1", d.Len(), d.ReplicaLen())
	}

	// A primary write promotes the copy; it is no longer a replica.
	d.Put(id, 100)
	if d.HasReplica(id) {
		t.Error("primary write left the copy marked replica")
	}
	if !d.Has(id) {
		t.Error("primary copy missing")
	}

	// PutReplica never downgrades a primary.
	d.PutReplica(id, 100)
	if d.HasReplica(id) {
		t.Error("PutReplica downgraded a primary copy")
	}

	d.Remove(id)
	if d.Has(id) || d.Len() != 0 {
		t.Error("Remove left the block behind")
	}
}

func TestDiskStoreClearDropsReplicas(t *testing.T) {
	d := NewDiskStore()
	d.Put(block.ID{RDD: 1}, 10)
	d.PutReplica(block.ID{RDD: 2}, 20)
	d.Clear()
	if d.Len() != 0 || d.ReplicaLen() != 0 {
		t.Errorf("Clear left %d blocks (%d replicas)", d.Len(), d.ReplicaLen())
	}
}

// TestDiskStoreConcurrentAccess exercises the mutex under -race: the
// experiments package runs simulations in parallel, and a shared-map
// DiskStore was previously a silent data race.
func TestDiskStoreConcurrentAccess(t *testing.T) {
	d := NewDiskStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := block.ID{RDD: w, Partition: i % 16}
				switch i % 5 {
				case 0:
					d.Put(id, int64(i))
				case 1:
					d.PutReplica(id, int64(i))
				case 2:
					d.Has(id)
					d.HasReplica(id)
					d.Size(id)
				case 3:
					d.Remove(id)
				case 4:
					d.Len()
					d.ReplicaLen()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMemoryStoreReplicaCounts(t *testing.T) {
	s := NewMemoryStore(1<<20, policy.NewLRU().NewNodePolicy(0))
	id := block.ID{RDD: 1, Partition: 0}
	info := block.Info{ID: id, Size: 100, Level: block.MemoryAndDisk}

	// Counting a non-resident block is ignored.
	s.SetReplicaCount(id, 2)
	if s.ReplicaCount(id) != 0 {
		t.Error("replica count recorded for non-resident block")
	}

	if _, ok := s.Put(info); !ok {
		t.Fatal("put failed")
	}
	s.SetReplicaCount(id, 2)
	if s.ReplicaCount(id) != 2 {
		t.Errorf("replica count = %d, want 2", s.ReplicaCount(id))
	}
	s.SetReplicaCount(id, 0)
	if s.ReplicaCount(id) != 0 {
		t.Error("zero count not cleared")
	}

	// Dropping the block clears its count.
	s.SetReplicaCount(id, 1)
	s.Remove(id)
	if s.ReplicaCount(id) != 0 {
		t.Error("replica count survived the block's removal")
	}
}
