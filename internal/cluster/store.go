package cluster

import (
	"fmt"
	"sync"

	"mrdspark/internal/block"
	"mrdspark/internal/policy"
)

// MemoryStore is one node's storage-memory pool (Spark's MemoryStore):
// a byte-capacity-bounded set of blocks whose evictions are decided by
// the attached policy. It is the component every cache policy
// ultimately drives.
//
// A mutex guards every method, making the store safe for concurrent
// use: the single-threaded simulator never contends, but the execution
// engine's worker goroutines consult residency (and a node kill wipes
// the store) while other executors run. The per-node policy is only
// ever called from inside store methods, so the store lock also
// serializes all policy callbacks — policies themselves stay
// single-threaded, as their contract requires.
type MemoryStore struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	blocks   map[block.ID]block.Info
	pol      policy.Policy

	// replicas tracks, per resident block, how many surviving off-node
	// disk replicas the simulator has placed for it — the home node's
	// view of how cheaply the block could be restored after loss. Pure
	// bookkeeping: the store never acts on it, but the simulator and
	// metrics read it back (NodeStats, audits).
	replicas map[block.ID]int

	// Evictions counts demand evictions (victim selection under
	// pressure); proactive removals via Remove are counted by the
	// caller.
	Evictions int64
}

// NewMemoryStore creates a store with the given capacity driven by the
// given per-node policy.
func NewMemoryStore(capacity int64, pol policy.Policy) *MemoryStore {
	return &MemoryStore{capacity: capacity, blocks: map[block.ID]block.Info{}, pol: pol}
}

// Capacity returns the store's byte capacity.
func (s *MemoryStore) Capacity() int64 { return s.capacity }

// Used returns the bytes currently occupied.
func (s *MemoryStore) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free returns the unoccupied bytes.
func (s *MemoryStore) Free() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.used
}

// Len returns the number of resident blocks.
func (s *MemoryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Contains reports residency without touching policy state.
func (s *MemoryStore) Contains(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[id]
	return ok
}

// Get reports a read: on a hit the policy's recency/accounting hooks
// fire and Get returns true.
func (s *MemoryStore) Get(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blocks[id]; !ok {
		return false
	}
	s.pol.OnAccess(id)
	return true
}

// Put inserts the block, evicting victims chosen by the policy until
// it fits. It returns the evicted blocks and whether the insert
// succeeded; a block larger than the whole store, or one that cannot
// fit because every resident block is protected, is rejected (Spark
// likewise refuses to cache oversized blocks). Re-inserting a resident
// block is a no-op touch.
func (s *MemoryStore) Put(info block.Info) (evicted []block.Info, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resident := s.blocks[info.ID]; resident {
		s.pol.OnAccess(info.ID)
		return nil, true
	}
	if info.Size > s.capacity {
		return nil, false
	}
	for s.used+info.Size > s.capacity {
		victim, found := s.pol.Victim(func(v block.ID) bool { return v != info.ID })
		if !found {
			// Roll back nothing: evictions already performed stand
			// (Spark frees the space it reclaimed); the insert fails.
			return evicted, false
		}
		vInfo, resident := s.blocks[victim]
		if !resident {
			panic(fmt.Sprintf("cluster: policy chose non-resident victim %v", victim))
		}
		s.dropLocked(vInfo)
		s.Evictions++
		evicted = append(evicted, vInfo)
	}
	s.blocks[info.ID] = info
	s.used += info.Size
	s.pol.OnAdd(info.ID)
	return evicted, true
}

// PutGuarded inserts like Put, but first plans the full victim set and
// aborts — evicting nothing — unless every victim passes allow. It is
// the arrival path for arbitrated prefetches: a prefetch should not
// displace blocks the policy considers at least as valuable.
func (s *MemoryStore) PutGuarded(info block.Info, allow func(victim block.ID) bool) (evicted []block.Info, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resident := s.blocks[info.ID]; resident {
		s.pol.OnAccess(info.ID)
		return nil, true
	}
	if info.Size > s.capacity {
		return nil, false
	}
	picked := map[block.ID]bool{}
	var plan []block.Info
	freed := s.capacity - s.used
	for freed < info.Size {
		victim, found := s.pol.Victim(func(v block.ID) bool {
			return v != info.ID && !picked[v]
		})
		if !found || !allow(victim) {
			return nil, false
		}
		picked[victim] = true
		vInfo := s.blocks[victim]
		plan = append(plan, vInfo)
		freed += vInfo.Size
	}
	for _, vInfo := range plan {
		s.dropLocked(vInfo)
		s.Evictions++
	}
	s.blocks[info.ID] = info
	s.used += info.Size
	s.pol.OnAdd(info.ID)
	return plan, true
}

// Remove drops the block without policy-initiated victim selection
// (purge orders, failure injection). It reports whether the block was
// resident.
func (s *MemoryStore) Remove(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.blocks[id]
	if !ok {
		return false
	}
	s.dropLocked(info)
	return true
}

// Clear empties the store (node failure).
func (s *MemoryStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, info := range s.blocks {
		_ = id
		s.dropLocked(info)
	}
}

func (s *MemoryStore) dropLocked(info block.Info) {
	delete(s.blocks, info.ID)
	delete(s.replicas, info.ID)
	s.used -= info.Size
	s.pol.OnRemove(info.ID)
}

// SetReplicaCount records how many off-node disk replicas a resident
// block currently has; non-resident blocks are ignored.
func (s *MemoryStore) SetReplicaCount(id block.ID, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blocks[id]; !ok {
		return
	}
	if s.replicas == nil {
		s.replicas = map[block.ID]int{}
	}
	if n <= 0 {
		delete(s.replicas, id)
		return
	}
	s.replicas[id] = n
}

// ReplicaCount returns the recorded off-node replica count for the
// block (0 when unknown or non-resident).
func (s *MemoryStore) ReplicaCount(id block.ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas[id]
}

// Blocks returns a snapshot of resident block IDs (test helper; order
// unspecified).
func (s *MemoryStore) Blocks() []block.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]block.ID, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	return out
}

// DiskStore is one node's local-disk block set: spilled cache blocks,
// HDFS-resident source data, and — under replication — replica copies
// of blocks homed on other nodes. Capacity is not modeled (the paper's
// nodes have 200 GB disks, never a constraint); bandwidth is charged
// by the simulator's device queues. Unlike MemoryStore, whose policy
// callbacks make it strictly single-owner, DiskStore has no reentrant
// callbacks, so its map is guarded by a mutex and it is safe for
// concurrent use (internal/experiments runs simulations in parallel).
type DiskStore struct {
	mu     sync.Mutex
	blocks map[block.ID]diskEntry
}

// diskEntry is one on-disk copy: its size and whether it is a replica
// of a block homed on another node.
type diskEntry struct {
	size    int64
	replica bool
}

// NewDiskStore creates an empty disk store.
func NewDiskStore() *DiskStore { return &DiskStore{blocks: map[block.ID]diskEntry{}} }

// Has reports whether any copy of the block's bytes — primary or
// replica — is on this disk.
func (d *DiskStore) Has(id block.ID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[id]
	return ok
}

// HasReplica reports whether this disk holds a replica copy of the
// block (a copy whose home node is elsewhere).
func (d *DiskStore) HasReplica(id block.ID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.blocks[id]
	return ok && e.replica
}

// Put records a primary copy of the block on disk. Putting a block
// that was a replica promotes it to primary.
func (d *DiskStore) Put(id block.ID, size int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks[id] = diskEntry{size: size}
}

// PutReplica records a replica copy (replication of a block homed on
// another node). A primary copy is never downgraded.
func (d *DiskStore) PutReplica(id block.ID, size int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.blocks[id]; ok && !e.replica {
		return
	}
	d.blocks[id] = diskEntry{size: size, replica: true}
}

// Size returns the block's on-disk size, or 0 if absent.
func (d *DiskStore) Size(id block.ID) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocks[id].size
}

// Remove drops the block (any copy) from disk.
func (d *DiskStore) Remove(id block.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.blocks, id)
}

// Clear empties the disk (node failure takes local data with it,
// replica copies included).
func (d *DiskStore) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks = map[block.ID]diskEntry{}
}

// Len returns the number of blocks on disk, replicas included.
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// Blocks returns the IDs of every block on disk (replicas included),
// in no particular order. Callers sort as needed.
func (d *DiskStore) Blocks() []block.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]block.ID, 0, len(d.blocks))
	for id := range d.blocks {
		ids = append(ids, id)
	}
	return ids
}

// ReplicaLen returns the number of replica copies on disk.
func (d *DiskStore) ReplicaLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.blocks {
		if e.replica {
			n++
		}
	}
	return n
}
